// Randomized configuration fuzzing: random federations (protocol mixes,
// scheme, workload shape, optional crash injection) must always finish,
// stay locally and globally serializable, and never see a conservative
// scheme abort. This is the catch-all net over the whole stack.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

const ProtocolKind kAllProtocols[] = {
    ProtocolKind::kTwoPhaseLocking,
    ProtocolKind::kTimestampOrdering,
    ProtocolKind::kSerializationGraph,
    ProtocolKind::kOptimistic,
    ProtocolKind::kMultiversionTO,
    ProtocolKind::kTwoPhaseLockingWoundWait,
    ProtocolKind::kTwoPhaseLockingWaitDie,
};

const SchemeKind kConservativeSchemes[] = {
    SchemeKind::kScheme0,
    SchemeKind::kScheme1,
    SchemeKind::kScheme2,
    SchemeKind::kScheme3,
};

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range<uint64_t>(1, 13),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(FuzzTest, RandomFederationStaysCorrect) {
  Rng rng(GetParam() * 7919);

  // Random federation: 2-5 sites with random protocols.
  int site_count = static_cast<int>(rng.NextInRange(2, 5));
  std::vector<ProtocolKind> protocols;
  for (int i = 0; i < site_count; ++i) {
    protocols.push_back(kAllProtocols[rng.NextBelow(7)]);
  }
  SchemeKind scheme = kConservativeSchemes[rng.NextBelow(4)];
  bool ticket_last = rng.NextBernoulli(0.2);
  bool crashes = rng.NextBernoulli(0.3);

  MdbsConfig config = MdbsConfig::Mixed(protocols, scheme);
  config.seed = GetParam();
  config.gtm.ticket_last = ticket_last;
  config.gtm.attempt_timeout =
      static_cast<sim::Time>(rng.NextInRange(20'000, 100'000));
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = static_cast<int>(rng.NextInRange(2, 10));
  driver.local_clients_per_site = static_cast<int>(rng.NextInRange(0, 3));
  driver.target_global_commits = 50;
  driver.global_workload.items_per_site = rng.NextInRange(5, 100);
  driver.global_workload.dav_min = 1;
  driver.global_workload.dav_max = static_cast<int>(rng.NextInRange(2, 4));
  driver.global_workload.read_ratio = rng.NextDouble();
  driver.global_workload.zipf_theta = rng.NextBernoulli(0.5) ? 0.0 : 0.9;
  driver.local_workload.items_per_site =
      driver.global_workload.items_per_site;
  driver.local_workload.read_ratio = driver.global_workload.read_ratio;
  if (crashes) {
    driver.crash_interval = 8000;
    driver.crash_duration = 2000;
  }

  DriverReport report = RunDriver(&system, driver, GetParam());

  SCOPED_TRACE("scheme=" + std::string(gtm::SchemeKindName(scheme)) +
               " sites=" + std::to_string(site_count) +
               " crashes=" + std::to_string(report.crashes) +
               " ticket_last=" + std::to_string(ticket_last));
  // Liveness: the run finished the requested work.
  EXPECT_GE(report.global_committed + report.global_failed, 50);
  EXPECT_GT(report.global_committed, 0);
  // Correctness: everything the checkers can see.
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckSerializationKeyProperty().ok());
  Status strict = system.CheckStrictness();
  EXPECT_TRUE(strict.ok()) << strict;
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  // Conservative schemes never abort from the GTM.
  EXPECT_EQ(report.gtm1.scheme_aborts, 0);
  EXPECT_EQ(report.gtm2.scheme_aborts, 0);
  // The runtime invariant auditor (on by default, fail-fast) saw nothing;
  // the assertion documents that the hooks were live during the run.
  if (system.audit_enabled()) {
    EXPECT_TRUE(system.auditor().clean());
  }
}

}  // namespace
}  // namespace mdbs
