// Durable chaos: long-horizon runs with repeated site crashes on durable
// sites, both engines, judged by three oracles. (1) Zero committed-data
// loss: after the run quiesces, every site's store holds exactly the value
// of the last committed write per item in the recorded schedule — a crash
// may only lose unacknowledged work. (2) The audit oracle's global
// serializability verdict must hold across restarts. (3) A differential:
// with zero modeled recovery time, a durable run must replay byte-for-byte
// against the same seeded run with non-durable sites, whose in-memory store
// doubles as stable storage — recovery is only correct if it is invisible.
#include <cstdint>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"
#include "sched/schedule.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

const std::vector<ProtocolKind> kMixedProtocols = {
    ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
    ProtocolKind::kMultiversionTO, ProtocolKind::kOptimistic};

/// Marks every site durable with the given checkpoint interval.
void MakeDurable(MdbsConfig* config, int64_t checkpoint_interval) {
  for (site::SiteConfig& site : config->sites) {
    site.durable = true;
    site.checkpoint_interval = checkpoint_interval;
  }
}

/// Two rounds of crashes over every site plus light network chaos.
fault::FaultPlan RepeatedCrashPlan(int num_sites, sim::Time first_at,
                                   sim::Time gap, sim::Time duration) {
  fault::FaultPlan plan =
      fault::FaultPlan::CrashSweep(num_sites, first_at, gap, duration);
  sim::Time second_round = first_at + gap * num_sites + gap / 2;
  for (int site = 0; site < num_sites; ++site) {
    plan.crashes.push_back(fault::CrashEvent{
        SiteId{site}, second_round + gap * site, duration});
  }
  return plan;
}

/// Oracle (1): the store must hold the last committed write per item.
/// "Last" is by the writer's commit position (finish_seq): deferred
/// protocols install at commit, and strictness orders in-place writers'
/// commits consistently with their writes — so commit order decides which
/// value must survive every crash and recovery. Items written only by
/// aborted transactions must read 0 (the rolled-back initial value).
void ExpectZeroCommittedDataLoss(Mdbs* system) {
  for (SiteId site : system->site_ids()) {
    // item -> (finish_seq of writer, op seq, value): lexicographic max wins.
    std::unordered_map<int64_t, std::tuple<int64_t, int64_t, int64_t>> last;
    std::unordered_set<int64_t> universe;
    for (const sched::RecordedOp& op : system->recorder().ops()) {
      if (op.site != site || op.op.type != OpType::kWrite) continue;
      universe.insert(op.op.item.value());
      const sched::TxnRecord* txn = system->recorder().FindTxn(op.txn);
      ASSERT_NE(txn, nullptr);
      if (txn->outcome != TxnOutcome::kCommitted) continue;
      std::tuple<int64_t, int64_t, int64_t> candidate{txn->finish_seq,
                                                      op.seq, op.op.value};
      auto [it, inserted] = last.try_emplace(op.op.item.value(), candidate);
      if (!inserted && candidate > it->second) it->second = candidate;
    }
    for (int64_t item : universe) {
      auto it = last.find(item);
      int64_t expected = it == last.end() ? 0 : std::get<2>(it->second);
      EXPECT_EQ(system->site(site).UnsafePeek(DataItemId{item}), expected)
          << ToString(site) << " item " << item
          << ": committed data lost (or a loser leaked) across recovery";
    }
  }
}

class DurableChaosTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, DurableChaosTest,
    ::testing::Values(SchemeKind::kScheme1, SchemeKind::kScheme3),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

// Simulated engine: every site crashes twice while the log-driven recovery
// brings it back each time. The run must finish, commit most of its load,
// lose no committed data, and stay globally serializable.
TEST_P(DurableChaosTest, RepeatedCrashesLoseNoCommittedData) {
  MdbsConfig config = MdbsConfig::Mixed(kMixedProtocols, GetParam());
  config.seed = 97;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  config.fault_plan = RepeatedCrashPlan(/*num_sites=*/4, /*first_at=*/2000,
                                        /*gap=*/4000, /*duration=*/2000);
  config.fault_plan.request_loss = 0.01;
  config.fault_plan.response_loss = 0.01;
  config.fault_plan.seed = 3;
  MakeDurable(&config, 64);
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 120;
  driver.global_workload.items_per_site = 25;
  driver.local_workload.items_per_site = 25;
  driver.retry.max_resubmissions = 3;
  driver.retry.backoff = 400;
  DriverReport report = RunDriver(&system, driver, 97);

  EXPECT_EQ(report.faults.plan_crashes, 8) << "every site must crash twice";
  EXPECT_EQ(report.durability.recoveries, 8);
  EXPECT_GT(report.durability.replay_records, 0);
  EXPECT_GE(report.global_committed, 80);
  EXPECT_TRUE(system.RunAuditOracle().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_TRUE(system.CheckStrictness().ok());
  ExpectZeroCommittedDataLoss(&system);
}

// Oracle (3): with recovery time zero, durable and non-durable runs of the
// same seed must be indistinguishable — same recorded schedule, same final
// stores, same report (minus the WAL summary line durable runs append).
// Any divergence means recovery resurrected or dropped something.
TEST_P(DurableChaosTest, DurableRunIsByteIdenticalToNonDurableReference) {
  auto run = [&](bool durable, std::string* dump,
                 std::vector<int64_t>* peeks) {
    MdbsConfig config = MdbsConfig::Mixed(kMixedProtocols, GetParam());
    config.seed = 133;
    config.gtm.attempt_timeout = 8'000;
    config.gtm.retry_backoff = 250;
    config.health.probe_interval = 300;
    config.health.suspect_after = 600;
    config.health.down_after = 1200;
    config.fault_plan = RepeatedCrashPlan(/*num_sites=*/4, /*first_at=*/1500,
                                          /*gap=*/3500, /*duration=*/1800);
    if (durable) MakeDurable(&config, 32);
    Mdbs system(config);
    DriverConfig driver;
    driver.global_clients = 5;
    driver.local_clients_per_site = 1;
    driver.target_global_commits = 80;
    driver.global_workload.items_per_site = 20;
    driver.local_workload.items_per_site = 20;
    driver.retry.max_resubmissions = 2;
    DriverReport report = RunDriver(&system, driver, 133);
    EXPECT_TRUE(system.RunAuditOracle().ok());
    *dump = system.recorder().Dump(1'000'000);
    for (SiteId site : system.site_ids()) {
      for (int64_t item = 0; item < 20; ++item) {
        peeks->push_back(system.site(site).UnsafePeek(DataItemId{item}));
      }
    }
    if (durable) {
      EXPECT_GT(report.durability.recoveries, 0)
          << "the differential never exercised recovery";
    }
    std::string text = report.ToString();
    size_t wal = text.find("wal: ");
    if (wal != std::string::npos) {
      text.erase(wal, text.find('\n', wal) - wal + 1);
    }
    return text;
  };

  std::string durable_dump, reference_dump;
  std::vector<int64_t> durable_peeks, reference_peeks;
  std::string durable_report = run(true, &durable_dump, &durable_peeks);
  std::string reference_report =
      run(false, &reference_dump, &reference_peeks);
  EXPECT_EQ(durable_report, reference_report);
  EXPECT_EQ(durable_dump, reference_dump)
      << "recovery perturbed the recorded schedule";
  EXPECT_EQ(durable_peeks, reference_peeks)
      << "recovered stores diverged from the crash-free reference";
}

// Modeled replay latency: recovery holds the site down longer, which the
// rest of the system must tolerate (parking, retries) — and the run still
// loses nothing. Also proves recovery_ticks surfaces in the report.
TEST(DurableChaosCostTest, NonZeroReplayCostStillLosesNothing) {
  MdbsConfig config =
      MdbsConfig::Mixed(kMixedProtocols, SchemeKind::kScheme3);
  config.seed = 41;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/4, /*first_at=*/2000, /*gap=*/4000, /*duration=*/2000);
  MakeDurable(&config, 64);
  for (site::SiteConfig& site : config.sites) {
    site.recovery_base_time = 200;
    site.recovery_time_per_record = 3;
  }
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 5;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 80;
  driver.global_workload.items_per_site = 25;
  driver.local_workload.items_per_site = 25;
  driver.retry.max_resubmissions = 3;
  DriverReport report = RunDriver(&system, driver, 41);

  EXPECT_EQ(report.durability.recoveries, 4);
  EXPECT_GT(report.durability.recovery_ticks,
            4 * 200 + report.durability.replay_records)
      << "replay cost must scale with scanned records";
  EXPECT_GE(report.global_committed, 60);
  EXPECT_TRUE(system.RunAuditOracle().ok());
  ExpectZeroCommittedDataLoss(&system);
}

// Compound outage: the durable GTM crashes twice while a site-crash sweep
// is in flight. GTM recovery must replay through the quarantine churn the
// sweep logged, hand the health monitor's *current* down set to the
// restarted scheme state, and still lose no committed data anywhere — the
// hardest interleaving the fault language can express in one plan.
TEST_P(DurableChaosTest, GtmCrashDuringSiteSweepLosesNothing) {
  MdbsConfig config = MdbsConfig::Mixed(kMixedProtocols, GetParam());
  config.seed = 71;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = 64;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/4, /*first_at=*/2000, /*gap=*/4000, /*duration=*/2000);
  config.fault_plan.gtm_crashes.push_back(fault::GtmCrashEvent{6000, 2500});
  config.fault_plan.gtm_crashes.push_back(
      fault::GtmCrashEvent{15'000, 1500});
  MakeDurable(&config, 64);
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 100;
  driver.global_workload.items_per_site = 25;
  driver.local_workload.items_per_site = 25;
  driver.retry.max_resubmissions = 3;
  driver.retry.backoff = 400;
  DriverReport report = RunDriver(&system, driver, 71);

  EXPECT_EQ(report.gtm_durability.crashes, 2);
  EXPECT_EQ(report.gtm_durability.recoveries, 2);
  EXPECT_GT(report.gtm_durability.replayed_records, 0);
  EXPECT_EQ(report.faults.plan_crashes, 4) << "the site sweep must run too";
  EXPECT_EQ(report.durability.recoveries, 4);
  EXPECT_GE(report.global_committed, 60);
  EXPECT_TRUE(system.RunAuditOracle().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_TRUE(system.CheckStrictness().ok());
  ExpectZeroCommittedDataLoss(&system);
}

// Compound availability event: the primary GTM dies and the warm standby
// takes over while a site-crash sweep is still knocking sites down. The
// promotion must seed the scheme state with the health monitor's current
// down set, the fenced old primary must stay dead, the sweep's recoveries
// must proceed under the new epoch — and still no committed data is lost
// anywhere in the federation.
TEST_P(DurableChaosTest, FailoverDuringSiteSweepLosesNothing) {
  MdbsConfig config = MdbsConfig::Mixed(kMixedProtocols, GetParam());
  config.seed = 89;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = 64;
  config.gtm_standby = true;
  config.standby_lag = 50;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  // The sweep brackets the failover: sites are still crashing when the
  // standby promotes, so the new primary starts life with a partial down
  // set and quarantined work in its inherited queue state.
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/4, /*first_at=*/550'000, /*gap=*/4000,
      /*duration=*/2000);
  config.fault_plan.gtm_failovers.push_back(
      fault::GtmFailoverEvent{556'000, 2500});
  MakeDurable(&config, 64);
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 100;
  driver.global_workload.items_per_site = 25;
  driver.local_workload.items_per_site = 25;
  driver.retry.max_resubmissions = 3;
  driver.retry.backoff = 400;
  DriverReport report = RunDriver(&system, driver, 89);

  EXPECT_EQ(report.gtm_standby.promotions, 1);
  EXPECT_EQ(report.gtm_standby.fencing_epoch, 1);
  EXPECT_EQ(report.gtm_durability.crashes, 1);
  EXPECT_EQ(report.faults.plan_crashes, 4) << "the site sweep must run too";
  EXPECT_EQ(report.durability.recoveries, 4);
  EXPECT_GE(report.global_committed, 60);
  EXPECT_TRUE(system.primary_gtm().IsDown())
      << "the fenced old primary must stay dead";
  EXPECT_TRUE(system.RunAuditOracle().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_TRUE(system.CheckStrictness().ok());
  ExpectZeroCommittedDataLoss(&system);
}

// Threaded engine: real strands, real clocks, durable sites crashing in a
// sweep. Timing is nondeterministic, but the oracles are not: no committed
// data loss, a serializable audit verdict, and every crash recovered.
TEST_P(DurableChaosTest, ThreadedCrashSweepLosesNoCommittedData) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kMultiversionTO},
      GetParam());
  config.threaded = true;
  config.seed = 59;
  config.gtm.retry_backoff = 300;
  config.gtm.attempt_timeout = 50'000;
  config.health.probe_interval = 400;
  config.health.suspect_after = 1000;
  config.health.down_after = 2000;
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/3, /*first_at=*/8000, /*gap=*/12'000,
      /*duration=*/5000);
  MakeDurable(&config, 128);
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  driver.retry.max_resubmissions = 2;
  driver.retry.backoff = 500;
  DriverReport report = RunThreadedDriver(&system, driver, 59);

  EXPECT_GE(report.global_committed, 20);
  EXPECT_GE(report.faults.plan_crashes, 1)
      << "the run outlived every crash window";
  EXPECT_EQ(report.durability.recoveries, report.faults.plan_crashes)
      << "some crash never ran recovery";
  EXPECT_GT(report.durability.wal_records, 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  ExpectZeroCommittedDataLoss(&system);
}

// Threaded engine, durable GTM: a real-time GTM outage mid-run. Clients
// keep their submissions and callbacks across the crash (closures are not
// serializable, so the registry models clients that survive the outage);
// the restarted GTM replays its WAL on its own strand while site strands
// keep serving local work. Oracles: the outage happened, every crash
// recovered, and the federation stays globally serializable.
TEST_P(DurableChaosTest, ThreadedGtmCrashRidesOutTheOutage) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kMultiversionTO},
      GetParam());
  config.threaded = true;
  config.seed = 83;
  config.gtm.retry_backoff = 300;
  config.gtm.attempt_timeout = 50'000;
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = 128;
  config.fault_plan.gtm_crashes.push_back(
      fault::GtmCrashEvent{20'000, 15'000});
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  driver.retry.max_resubmissions = 2;
  driver.retry.backoff = 500;
  DriverReport report = RunThreadedDriver(&system, driver, 83);

  EXPECT_GE(report.global_committed, 40);
  EXPECT_EQ(report.gtm_durability.crashes, 1);
  EXPECT_EQ(report.gtm_durability.recoveries, 1);
  EXPECT_GT(report.gtm_durability.wal_records, 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

// Threaded engine, compound event: failover mid-sweep under real strands.
// The shipping tap, the shadow apply, the promotion, and the site
// recoveries all race on real clocks; the oracles stay exact — one
// promotion, a monotone epoch, every site crash recovered, no committed
// data loss, and a serializable federation.
TEST_P(DurableChaosTest, ThreadedFailoverDuringSiteSweepLosesNothing) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kMultiversionTO},
      GetParam());
  config.threaded = true;
  config.seed = 101;
  config.gtm.retry_backoff = 300;
  config.gtm.attempt_timeout = 50'000;
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = 128;
  config.gtm_standby = true;
  config.standby_lag = 2000;
  config.health.probe_interval = 400;
  config.health.suspect_after = 1000;
  config.health.down_after = 2000;
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/3, /*first_at=*/8000, /*gap=*/12'000,
      /*duration=*/5000);
  config.fault_plan.gtm_failovers.push_back(
      fault::GtmFailoverEvent{25'000, 5000});
  MakeDurable(&config, 128);
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  driver.retry.max_resubmissions = 2;
  driver.retry.backoff = 500;
  DriverReport report = RunThreadedDriver(&system, driver, 101);

  EXPECT_GE(report.global_committed, 20);
  EXPECT_EQ(report.gtm_standby.promotions, 1);
  EXPECT_EQ(report.gtm_standby.fencing_epoch, 1);
  EXPECT_GE(report.faults.plan_crashes, 1)
      << "the run outlived every crash window";
  EXPECT_EQ(report.durability.recoveries, report.faults.plan_crashes)
      << "some crash never ran recovery";
  EXPECT_TRUE(system.primary_gtm().IsDown())
      << "the fenced old primary must stay dead";
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  ExpectZeroCommittedDataLoss(&system);
}

}  // namespace
}  // namespace mdbs
