#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"

namespace mdbs {
namespace {

// --------------------------------------------------------------------------
// Status / StatusOr
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::TransactionAborted("x").IsTransactionAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status status = Status::TransactionAborted("deadlock victim");
  EXPECT_EQ(status.ToString(), "TransactionAborted: deadlock victim");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    MDBS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("nope"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// --------------------------------------------------------------------------
// Ids
// --------------------------------------------------------------------------

TEST(IdsTest, DefaultIsInvalid) {
  SiteId site;
  EXPECT_FALSE(site.valid());
  EXPECT_TRUE(SiteId(0).valid());
}

TEST(IdsTest, ComparisonAndHash) {
  EXPECT_EQ(TxnId(3), TxnId(3));
  EXPECT_NE(TxnId(3), TxnId(4));
  EXPECT_LT(TxnId(3), TxnId(4));
  std::set<GlobalTxnId> ids{GlobalTxnId(1), GlobalTxnId(2), GlobalTxnId(1)};
  EXPECT_EQ(ids.size(), 2u);
}

TEST(IdsTest, DistinctTagsAreDistinctTypes) {
  // SiteId and TxnId with the same value are different, incomparable types;
  // this is a compile-time property, exercised by ToString prefixes here.
  EXPECT_EQ(ToString(SiteId(7)), "s7");
  EXPECT_EQ(ToString(TxnId(7)), "T7");
  EXPECT_EQ(ToString(GlobalTxnId(7)), "G7");
  EXPECT_EQ(ToString(DataItemId(7)), "x7");
}

TEST(IdsTest, StreamOutput) {
  std::ostringstream os;
  os << SiteId(3) << " " << TxnId();
  EXPECT_EQ(os.str(), "s3 T<invalid>");
}

// --------------------------------------------------------------------------
// DataOp
// --------------------------------------------------------------------------

TEST(DataOpTest, ConflictRules) {
  DataOp r0 = DataOp::Read(DataItemId(0));
  DataOp w0 = DataOp::Write(DataItemId(0), 5);
  DataOp r1 = DataOp::Read(DataItemId(1));
  EXPECT_FALSE(r0.ConflictsWith(r0));     // Read-read never conflicts.
  EXPECT_TRUE(r0.ConflictsWith(w0));
  EXPECT_TRUE(w0.ConflictsWith(r0));
  EXPECT_TRUE(w0.ConflictsWith(w0));
  EXPECT_FALSE(r0.ConflictsWith(r1));     // Different items.
  EXPECT_FALSE(w0.ConflictsWith(DataOp::Write(DataItemId(1), 1)));
}

TEST(DataOpTest, ToStringFormats) {
  EXPECT_EQ(DataOp::Read(DataItemId(3)).ToString(), "r[x3]");
  EXPECT_EQ(DataOp::Write(DataItemId(3), 9).ToString(), "w[x3=9]");
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(13), 13u);
  }
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All five values hit.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.NextExponential(50.0);
  EXPECT_NEAR(sum / 20000.0, 50.0, 3.0);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // Overwhelmingly likely with this seed.
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Child stream differs from parent's continued stream.
  EXPECT_NE(child.Next(), parent.Next());
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Rng rng(17);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Next(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 200);
}

TEST(ZipfTest, SkewedFavorsSmallKeys) {
  Rng rng(17);
  ZipfGenerator zipf(100, 0.99);
  int head = 0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next(&rng) < 10) ++head;
  }
  // Under theta=0.99 the top-10% of keys draw well over half the accesses.
  EXPECT_GT(head, kSamples / 2);
}

TEST(ZipfTest, AllValuesWithinRange) {
  Rng rng(23);
  ZipfGenerator zipf(7, 0.5);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Next(&rng), 7u);
}

// --------------------------------------------------------------------------
// Logging
// --------------------------------------------------------------------------

TEST(LoggingTest, LevelFilterRoundTrip) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(old_level);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  MDBS_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH({ MDBS_CHECK(false) << "expected failure"; },
               "Check failed");
}

}  // namespace
}  // namespace mdbs
