#include <gtest/gtest.h>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

const SiteId kS0{0};
const DataItemId kX{1};

TEST(CrashTest, CrashAbortsActiveTxnsAndRollsBack) {
  MdbsConfig config =
      MdbsConfig::Uniform(1, ProtocolKind::kTwoPhaseLocking,
                          SchemeKind::kScheme0);
  Mdbs system(config);
  auto& site = system.site(kS0);
  site.UnsafePoke(kX, 7);

  StatusOr<TxnId> txn = system.BeginLocal(kS0);
  ASSERT_TRUE(txn.ok());
  Status write_status = Status::Internal("pending");
  site.Submit(*txn, DataOp::Write(kX, 99),
              [&](const Status& s, int64_t) { write_status = s; });
  system.RunUntilIdle();
  ASSERT_TRUE(write_status.ok());
  EXPECT_EQ(site.UnsafePeek(kX), 99);  // In-place, uncommitted.

  site.Crash();
  EXPECT_EQ(site.UnsafePeek(kX), 7);  // Rolled back.
  EXPECT_FALSE(site.IsActive(*txn));
  EXPECT_TRUE(site.IsDown());

  // Requests while down are refused.
  EXPECT_TRUE(system.BeginLocal(kS0).status().IsTransactionAborted());
  Status op_status = Status::Internal("pending");
  site.Submit(*txn, DataOp::Read(kX),
              [&](const Status& s, int64_t) { op_status = s; });
  system.RunUntilIdle();
  EXPECT_TRUE(op_status.IsTransactionAborted());

  site.Recover();
  EXPECT_FALSE(site.IsDown());
  EXPECT_TRUE(system.BeginLocal(kS0).ok());
}

TEST(CrashTest, GlobalTxnRetriesThroughSiteCrash) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering},
      SchemeKind::kScheme3);
  config.gtm.retry_backoff = 100;
  Mdbs system(config);
  const SiteId kS1{1};

  // Crash site 1 shortly after start, recover later; the transaction's
  // first attempts die and a retry succeeds.
  system.loop().Schedule(5, [&] { system.site(kS1).Crash(); });
  system.loop().Schedule(2000, [&] { system.site(kS1).Recover(); });

  gtm::GlobalTxnSpec spec;
  spec.ops.push_back(gtm::GlobalOp::Write(kS0, kX, 1));
  spec.ops.push_back(gtm::GlobalOp::Write(kS1, kX, 2));
  gtm::GlobalTxnResult result;
  system.gtm().Submit(std::move(spec),
                      [&](const gtm::GlobalTxnResult& r) { result = r; });
  system.RunUntilIdle();
  EXPECT_TRUE(result.status.ok()) << result.status;
  EXPECT_GT(result.attempts, 1);
  EXPECT_EQ(system.site(kS0).UnsafePeek(kX), 1);
  EXPECT_EQ(system.site(kS1).UnsafePeek(kX), 2);
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

TEST(LossyNetworkTest, RetriesThroughLostResponses) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      SchemeKind::kScheme3);
  config.seed = 21;
  config.response_loss_probability = 0.05;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 5;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 50;
  driver.local_workload.items_per_site = 50;
  DriverReport report = RunDriver(&system, driver, 21);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_GT(report.gtm1.timeouts, 0) << "no response was ever lost?";
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
  EXPECT_TRUE(system.CheckStrictness().ok());
}

class CrashWorkloadTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, CrashWorkloadTest,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme2, SchemeKind::kScheme3),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

TEST_P(CrashWorkloadTest, WorkloadSurvivesCrashesSerializably) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      GetParam());
  config.seed = 77;
  config.gtm.retry_backoff = 200;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  driver.crash_interval = 5000;
  driver.crash_duration = 1500;
  DriverReport report = RunDriver(&system, driver, 77);

  EXPECT_GT(report.crashes, 0) << "no crash was injected";
  EXPECT_GE(report.global_committed, 40);
  // The committed projection stays serializable even across crashes.
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_EQ(report.gtm1.scheme_aborts, 0);
}

}  // namespace
}  // namespace mdbs
