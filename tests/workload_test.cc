#include <set>

#include <gtest/gtest.h>

#include "gtm/serialization_function.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/workload.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

std::vector<SiteId> Sites(int count) {
  std::vector<SiteId> sites;
  for (int i = 0; i < count; ++i) sites.push_back(SiteId(i));
  return sites;
}

// --------------------------------------------------------------------------
// Global workload generator
// --------------------------------------------------------------------------

TEST(GlobalWorkloadTest, RespectsDavBounds) {
  GlobalWorkloadConfig config;
  config.dav_min = 2;
  config.dav_max = 3;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    gtm::GlobalTxnSpec spec = MakeGlobalTxn(config, Sites(6), &rng);
    size_t sites = spec.Sites().size();
    EXPECT_GE(sites, 2u);
    EXPECT_LE(sites, 3u);
  }
}

TEST(GlobalWorkloadTest, DavClampedToSiteCount) {
  GlobalWorkloadConfig config;
  config.dav_min = 4;
  config.dav_max = 8;
  Rng rng(1);
  gtm::GlobalTxnSpec spec = MakeGlobalTxn(config, Sites(2), &rng);
  EXPECT_LE(spec.Sites().size(), 2u);
}

TEST(GlobalWorkloadTest, OpsPerSiteBounds) {
  GlobalWorkloadConfig config;
  config.dav_min = config.dav_max = 2;
  config.ops_per_site_min = 3;
  config.ops_per_site_max = 3;
  Rng rng(7);
  gtm::GlobalTxnSpec spec = MakeGlobalTxn(config, Sites(4), &rng);
  EXPECT_EQ(spec.ops.size(), 6u);
}

TEST(GlobalWorkloadTest, ItemsWithinRangeAndBelowTicket) {
  GlobalWorkloadConfig config;
  config.items_per_site = 10;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    gtm::GlobalTxnSpec spec = MakeGlobalTxn(config, Sites(3), &rng);
    for (const auto& op : spec.ops) {
      EXPECT_GE(op.op.item.value(), 0);
      EXPECT_LT(op.op.item.value(), 10);
      EXPECT_LT(op.op.item.value(), gtm::kTicketItem.value());
    }
  }
}

TEST(GlobalWorkloadTest, ReadRatioExtremes) {
  GlobalWorkloadConfig config;
  config.read_ratio = 1.0;
  Rng rng(5);
  gtm::GlobalTxnSpec spec = MakeGlobalTxn(config, Sites(3), &rng);
  for (const auto& op : spec.ops) EXPECT_EQ(op.op.type, OpType::kRead);
  config.read_ratio = 0.0;
  spec = MakeGlobalTxn(config, Sites(3), &rng);
  for (const auto& op : spec.ops) EXPECT_EQ(op.op.type, OpType::kWrite);
}

TEST(GlobalWorkloadTest, GroupedModeKeepsSitesContiguous) {
  GlobalWorkloadConfig config;
  config.interleave_sites = false;
  config.dav_min = config.dav_max = 3;
  Rng rng(9);
  gtm::GlobalTxnSpec spec = MakeGlobalTxn(config, Sites(5), &rng);
  // Once a site changes, it never reappears.
  std::set<int64_t> closed;
  SiteId current = spec.ops.front().site;
  for (const auto& op : spec.ops) {
    if (op.site != current) {
      closed.insert(current.value());
      EXPECT_FALSE(closed.contains(op.site.value()));
      current = op.site;
    }
  }
}

TEST(LocalWorkloadTest, BoundsHold) {
  LocalWorkloadConfig config;
  config.ops_min = 1;
  config.ops_max = 4;
  config.items_per_site = 20;
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::vector<DataOp> ops = MakeLocalTxn(config, &rng);
    EXPECT_GE(ops.size(), 1u);
    EXPECT_LE(ops.size(), 4u);
    for (const DataOp& op : ops) {
      EXPECT_LT(op.item.value(), 20);
    }
  }
}

// --------------------------------------------------------------------------
// Driver
// --------------------------------------------------------------------------

TEST(DriverTest, DeterministicForSameSeed) {
  auto run = []() {
    MdbsConfig config = MdbsConfig::Mixed(
        {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering},
        SchemeKind::kScheme3);
    config.seed = 10;
    Mdbs system(config);
    DriverConfig driver;
    driver.global_clients = 4;
    driver.local_clients_per_site = 1;
    driver.target_global_commits = 40;
    return RunDriver(&system, driver, 10);
  };
  DriverReport a = run();
  DriverReport b = run();
  EXPECT_EQ(a.global_committed, b.global_committed);
  EXPECT_EQ(a.local_committed, b.local_committed);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.gtm2.processed_ops, b.gtm2.processed_ops);
}

TEST(DriverTest, ReportContainsAllSections) {
  MdbsConfig config =
      MdbsConfig::Uniform(2, ProtocolKind::kTwoPhaseLocking,
                          SchemeKind::kScheme0);
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 2;
  driver.target_global_commits = 10;
  DriverReport report = RunDriver(&system, driver, 1);
  std::string text = report.ToString();
  EXPECT_NE(text.find("global:"), std::string::npos);
  EXPECT_NE(text.find("local:"), std::string::npos);
  EXPECT_NE(text.find("gtm1:"), std::string::npos);
  EXPECT_NE(text.find("gtm2:"), std::string::npos);
  EXPECT_GT(report.duration, 0);
  EXPECT_GT(report.global_throughput, 0.0);
}

TEST(DriverTest, NoLocalClientsMeansNoLocalTxns) {
  MdbsConfig config =
      MdbsConfig::Uniform(2, ProtocolKind::kTwoPhaseLocking,
                          SchemeKind::kScheme0);
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 2;
  driver.local_clients_per_site = 0;
  driver.target_global_commits = 10;
  DriverReport report = RunDriver(&system, driver, 1);
  EXPECT_EQ(report.local_committed, 0);
  EXPECT_GE(report.global_committed, 10);
}

// --------------------------------------------------------------------------
// Serialization functions
// --------------------------------------------------------------------------

TEST(SerializationFunctionTest, KindsPerProtocol) {
  using gtm::SerPointKind;
  EXPECT_EQ(gtm::SerPointKindFor(ProtocolKind::kTimestampOrdering),
            SerPointKind::kBegin);
  EXPECT_EQ(gtm::SerPointKindFor(ProtocolKind::kTwoPhaseLocking),
            SerPointKind::kLastOp);
  EXPECT_EQ(gtm::SerPointKindFor(ProtocolKind::kSerializationGraph),
            SerPointKind::kTicket);
  EXPECT_EQ(gtm::SerPointKindFor(ProtocolKind::kOptimistic),
            SerPointKind::kTicket);
}

TEST(SerializationFunctionTest, Names) {
  using gtm::SerPointKind;
  EXPECT_STREQ(gtm::SerPointKindName(SerPointKind::kBegin), "begin");
  EXPECT_STREQ(gtm::SerPointKindName(SerPointKind::kLastOp), "last-op");
  EXPECT_STREQ(gtm::SerPointKindName(SerPointKind::kTicket), "ticket");
}

// --------------------------------------------------------------------------
// QueueOp formatting
// --------------------------------------------------------------------------

TEST(QueueOpTest, ToStringFormats) {
  EXPECT_EQ(gtm::QueueOp::Init(GlobalTxnId(3), {SiteId(0)}).ToString(),
            "init(G3)");
  EXPECT_EQ(gtm::QueueOp::Ser(GlobalTxnId(3), SiteId(2)).ToString(),
            "ser(G3@s2)");
  EXPECT_EQ(gtm::QueueOp::Ack(GlobalTxnId(3), SiteId(2)).ToString(),
            "ack(G3@s2)");
  EXPECT_EQ(gtm::QueueOp::Fin(GlobalTxnId(3)).ToString(), "fin(G3)");
  EXPECT_EQ(gtm::QueueOp::Validate(GlobalTxnId(3)).ToString(),
            "validate(G3)");
}

}  // namespace
}  // namespace mdbs
