#include <vector>

#include <gtest/gtest.h>

#include "lcc/occ.h"
#include "lcc/sgt.h"
#include "lcc/timestamp_ordering.h"
#include "lcc/two_phase_locking.h"

namespace mdbs::lcc {
namespace {

const TxnId kT1{1};
const TxnId kT2{2};
const TxnId kT3{3};
const DataItemId kX{10};
const DataItemId kY{11};

class FakeHost : public ProtocolHost {
 public:
  void ResumeTransaction(TxnId txn) override { resumed.push_back(txn); }
  std::vector<TxnId> resumed;
};

// Convenience: access that is expected to proceed, with bookkeeping applied.
void MustProceed(ConcurrencyControl* cc, TxnId txn, const DataOp& op) {
  ASSERT_EQ(cc->OnAccess(txn, op), AccessDecision::kProceed)
      << ToString(txn) << " " << op.ToString();
  cc->OnAccessApplied(txn, op);
}

// --------------------------------------------------------------------------
// Strict TO
// --------------------------------------------------------------------------

TEST(TimestampOrderingTest, TimestampsAssignedAtBeginInOrder) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  to.OnBegin(kT2);
  EXPECT_LT(to.TimestampOf(kT1), to.TimestampOf(kT2));
  EXPECT_EQ(to.SerializationKey(kT1), to.TimestampOf(kT1));
}

TEST(TimestampOrderingTest, LateReadAborts) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);  // ts 0
  to.OnBegin(kT2);  // ts 1
  MustProceed(&to, kT2, DataOp::Write(kX, 5));
  to.OnFinish(kT2, TxnOutcome::kCommitted);
  // T1 (older) now reads an item written by a younger txn: too late.
  EXPECT_EQ(to.OnAccess(kT1, DataOp::Read(kX)), AccessDecision::kAbort);
}

TEST(TimestampOrderingTest, LateWriteAbortsOnNewerRead) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  to.OnBegin(kT2);
  MustProceed(&to, kT2, DataOp::Read(kX));
  EXPECT_EQ(to.OnAccess(kT1, DataOp::Write(kX, 1)), AccessDecision::kAbort);
}

TEST(TimestampOrderingTest, LateWriteAbortsOnNewerWrite) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  to.OnBegin(kT2);
  MustProceed(&to, kT2, DataOp::Write(kX, 5));
  to.OnFinish(kT2, TxnOutcome::kCommitted);
  EXPECT_EQ(to.OnAccess(kT1, DataOp::Write(kX, 1)), AccessDecision::kAbort);
}

TEST(TimestampOrderingTest, YoungerReaderBlocksOnUncommittedWrite) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  to.OnBegin(kT2);
  MustProceed(&to, kT1, DataOp::Write(kX, 5));
  // T2 is younger, so no timestamp violation — but the write is uncommitted.
  EXPECT_EQ(to.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kBlock);
  to.OnFinish(kT1, TxnOutcome::kCommitted);
  ASSERT_EQ(host.resumed.size(), 1u);
  EXPECT_EQ(host.resumed[0], kT2);
  // After the writer committed, the read proceeds.
  MustProceed(&to, kT2, DataOp::Read(kX));
}

TEST(TimestampOrderingTest, OwnWriteDoesNotBlockSelf) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  MustProceed(&to, kT1, DataOp::Write(kX, 5));
  MustProceed(&to, kT1, DataOp::Read(kX));
  MustProceed(&to, kT1, DataOp::Write(kX, 6));
}

TEST(TimestampOrderingTest, AbortedWriterWakesWaiters) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  to.OnBegin(kT2);
  MustProceed(&to, kT1, DataOp::Write(kX, 5));
  EXPECT_EQ(to.OnAccess(kT2, DataOp::Write(kX, 6)), AccessDecision::kBlock);
  to.OnFinish(kT1, TxnOutcome::kAborted);
  ASSERT_EQ(host.resumed.size(), 1u);
  // The aborted write's timestamp is conservatively retained, but T2 is
  // younger so its write still proceeds.
  MustProceed(&to, kT2, DataOp::Write(kX, 6));
}

TEST(TimestampOrderingTest, CommitAlwaysValidates) {
  FakeHost host;
  TimestampOrdering to(&host);
  to.OnBegin(kT1);
  EXPECT_EQ(to.OnValidate(kT1), AccessDecision::kProceed);
}

// --------------------------------------------------------------------------
// SGT
// --------------------------------------------------------------------------

TEST(SgtTest, NoSerializationKey) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  sgt.OnBegin(kT1);
  EXPECT_FALSE(sgt.SerializationKey(kT1).has_value());
}

TEST(SgtTest, SimpleCycleAborts) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  sgt.OnBegin(kT1);
  sgt.OnBegin(kT2);
  // r1(x) r2(y) w2(x)... w2(x) would give T1 -> T2 (r-w). Then w1(y) gives
  // T2 -> T1: cycle, abort.
  MustProceed(&sgt, kT1, DataOp::Read(kX));
  MustProceed(&sgt, kT2, DataOp::Read(kY));
  MustProceed(&sgt, kT2, DataOp::Write(kX, 1));
  EXPECT_EQ(sgt.OnAccess(kT1, DataOp::Write(kY, 1)), AccessDecision::kAbort);
}

TEST(SgtTest, AcyclicInterleavingProceeds) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  sgt.OnBegin(kT1);
  sgt.OnBegin(kT2);
  MustProceed(&sgt, kT1, DataOp::Read(kX));
  MustProceed(&sgt, kT2, DataOp::Write(kX, 1));  // T1 -> T2
  MustProceed(&sgt, kT1, DataOp::Read(kY));
  MustProceed(&sgt, kT2, DataOp::Write(kY, 1));  // T1 -> T2 again: fine.
  sgt.OnFinish(kT1, TxnOutcome::kCommitted);
  sgt.OnFinish(kT2, TxnOutcome::kCommitted);
}

TEST(SgtTest, UncommittedWriteLatchBlocksOtherAccessors) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  sgt.OnBegin(kT1);
  sgt.OnBegin(kT2);
  MustProceed(&sgt, kT1, DataOp::Write(kX, 1));
  EXPECT_EQ(sgt.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kBlock);
  sgt.OnFinish(kT1, TxnOutcome::kCommitted);
  ASSERT_EQ(host.resumed.size(), 1u);
  MustProceed(&sgt, kT2, DataOp::Read(kX));
}

TEST(SgtTest, LatchWaitCycleAborts) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  sgt.OnBegin(kT1);
  sgt.OnBegin(kT2);
  MustProceed(&sgt, kT1, DataOp::Write(kX, 1));
  MustProceed(&sgt, kT2, DataOp::Write(kY, 1));
  EXPECT_EQ(sgt.OnAccess(kT1, DataOp::Read(kY)), AccessDecision::kBlock);
  // T2 -> x would wait on T1 which waits on T2: deadlock, abort requester.
  EXPECT_EQ(sgt.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kAbort);
}

TEST(SgtTest, AbortedTxnEdgesVanish) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  sgt.OnBegin(kT1);
  sgt.OnBegin(kT2);
  MustProceed(&sgt, kT1, DataOp::Read(kX));
  MustProceed(&sgt, kT2, DataOp::Write(kX, 1));  // T1 -> T2.
  sgt.OnFinish(kT1, TxnOutcome::kAborted);
  // With T1 gone, the reverse edge no longer closes a cycle.
  MustProceed(&sgt, kT2, DataOp::Read(kY));
  sgt.OnBegin(kT3);
  MustProceed(&sgt, kT3, DataOp::Read(kY));
  sgt.OnFinish(kT2, TxnOutcome::kCommitted);
  sgt.OnFinish(kT3, TxnOutcome::kCommitted);
}

TEST(SgtTest, GarbageCollectionBoundsGraph) {
  FakeHost host;
  SerializationGraphTesting sgt(&host);
  // Many sequential committed transactions; the graph must not grow without
  // bound.
  for (int i = 0; i < 1000; ++i) {
    TxnId txn{100 + i};
    sgt.OnBegin(txn);
    DataOp write = DataOp::Write(kX, i);
    ASSERT_EQ(sgt.OnAccess(txn, write), AccessDecision::kProceed);
    sgt.OnAccessApplied(txn, write);
    sgt.OnFinish(txn, TxnOutcome::kCommitted);
  }
  EXPECT_LT(sgt.GraphSize(), 200u);
}

// --------------------------------------------------------------------------
// OCC
// --------------------------------------------------------------------------

TEST(OccTest, WritesAreDeferred) {
  OptimisticConcurrencyControl occ;
  EXPECT_FALSE(occ.WritesInPlace());
}

TEST(OccTest, AccessAlwaysProceeds) {
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT1);
  EXPECT_EQ(occ.OnAccess(kT1, DataOp::Read(kX)), AccessDecision::kProceed);
  EXPECT_EQ(occ.OnAccess(kT1, DataOp::Write(kX, 1)),
            AccessDecision::kProceed);
}

TEST(OccTest, ValidationFailsOnReadWriteOverlap) {
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT1);
  occ.OnBegin(kT2);
  occ.OnAccessApplied(kT1, DataOp::Read(kX));
  occ.OnAccessApplied(kT2, DataOp::Write(kX, 1));
  EXPECT_EQ(occ.OnValidate(kT2), AccessDecision::kProceed);
  occ.OnFinish(kT2, TxnOutcome::kCommitted);
  // T1 read x, and T2 wrote x and committed during T1's lifetime.
  EXPECT_EQ(occ.OnValidate(kT1), AccessDecision::kAbort);
}

TEST(OccTest, ValidationPassesWithoutOverlap) {
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT1);
  occ.OnBegin(kT2);
  occ.OnAccessApplied(kT1, DataOp::Read(kX));
  occ.OnAccessApplied(kT2, DataOp::Write(kY, 1));
  occ.OnFinish(kT2, TxnOutcome::kCommitted);
  EXPECT_EQ(occ.OnValidate(kT1), AccessDecision::kProceed);
}

TEST(OccTest, CommitsBeforeStartDoNotInvalidate) {
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT2);
  occ.OnAccessApplied(kT2, DataOp::Write(kX, 1));
  occ.OnFinish(kT2, TxnOutcome::kCommitted);
  // T1 starts after T2 committed: no conflict window.
  occ.OnBegin(kT1);
  occ.OnAccessApplied(kT1, DataOp::Read(kX));
  EXPECT_EQ(occ.OnValidate(kT1), AccessDecision::kProceed);
}

TEST(OccTest, WriteWriteOverlapAlonePasses) {
  // BOCC validates read sets only; blind write-write overlap is ordered by
  // commit order and passes.
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT1);
  occ.OnBegin(kT2);
  occ.OnAccessApplied(kT1, DataOp::Write(kX, 1));
  occ.OnAccessApplied(kT2, DataOp::Write(kX, 2));
  occ.OnFinish(kT2, TxnOutcome::kCommitted);
  EXPECT_EQ(occ.OnValidate(kT1), AccessDecision::kProceed);
}

TEST(OccTest, CommitNumbersOrderCommits) {
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT1);
  occ.OnBegin(kT2);
  occ.OnFinish(kT1, TxnOutcome::kCommitted);
  occ.OnFinish(kT2, TxnOutcome::kCommitted);
  ASSERT_TRUE(occ.SerializationKey(kT1).has_value());
  ASSERT_TRUE(occ.SerializationKey(kT2).has_value());
  EXPECT_LT(*occ.SerializationKey(kT1), *occ.SerializationKey(kT2));
}

TEST(OccTest, AbortedTxnGetsNoCommitNumber) {
  OptimisticConcurrencyControl occ;
  occ.OnBegin(kT1);
  occ.OnFinish(kT1, TxnOutcome::kAborted);
  EXPECT_FALSE(occ.SerializationKey(kT1).has_value());
}

TEST(OccTest, ValidationLogIsGarbageCollected) {
  OptimisticConcurrencyControl occ;
  for (int i = 0; i < 100; ++i) {
    TxnId txn{100 + i};
    occ.OnBegin(txn);
    occ.OnAccessApplied(txn, DataOp::Write(kX, i));
    occ.OnFinish(txn, TxnOutcome::kCommitted);
  }
  // With no active transactions, the log prunes completely.
  EXPECT_EQ(occ.LogSize(), 0u);
}

// --------------------------------------------------------------------------
// 2PL protocol adapter
// --------------------------------------------------------------------------

TEST(TwoPhaseLockingTest, ConflictBlocksAndResumes) {
  FakeHost host;
  TwoPhaseLocking tpl(&host);
  tpl.OnBegin(kT1);
  tpl.OnBegin(kT2);
  MustProceed(&tpl, kT1, DataOp::Write(kX, 1));
  EXPECT_EQ(tpl.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kBlock);
  tpl.OnFinish(kT1, TxnOutcome::kCommitted);
  ASSERT_EQ(host.resumed.size(), 1u);
  EXPECT_EQ(host.resumed[0], kT2);
  MustProceed(&tpl, kT2, DataOp::Read(kX));
}

TEST(TwoPhaseLockingTest, DeadlockAbortsRequester) {
  FakeHost host;
  TwoPhaseLocking tpl(&host);
  tpl.OnBegin(kT1);
  tpl.OnBegin(kT2);
  MustProceed(&tpl, kT1, DataOp::Write(kX, 1));
  MustProceed(&tpl, kT2, DataOp::Write(kY, 1));
  EXPECT_EQ(tpl.OnAccess(kT1, DataOp::Read(kY)), AccessDecision::kBlock);
  EXPECT_EQ(tpl.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kAbort);
}

TEST(TwoPhaseLockingTest, SerializationKeySurvivesCommit) {
  FakeHost host;
  TwoPhaseLocking tpl(&host);
  tpl.OnBegin(kT1);
  tpl.OnBegin(kT2);
  MustProceed(&tpl, kT1, DataOp::Write(kX, 1));
  tpl.OnFinish(kT1, TxnOutcome::kCommitted);
  MustProceed(&tpl, kT2, DataOp::Write(kX, 2));
  tpl.OnFinish(kT2, TxnOutcome::kCommitted);
  ASSERT_TRUE(tpl.SerializationKey(kT1).has_value());
  ASSERT_TRUE(tpl.SerializationKey(kT2).has_value());
  EXPECT_LT(*tpl.SerializationKey(kT1), *tpl.SerializationKey(kT2));
}

}  // namespace
}  // namespace mdbs::lcc
