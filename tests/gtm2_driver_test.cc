#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "gtm/gtm2.h"
#include "gtm/scheme0.h"
#include "gtm/synthetic.h"

namespace mdbs::gtm {
namespace {

const SiteId kA{0};
const SiteId kB{1};
const GlobalTxnId kG1{1};
const GlobalTxnId kG2{2};

/// A scheme whose conds are scripted, for exercising the driver itself.
class ScriptedScheme : public ConservativeSchemeBase {
 public:
  SchemeKind kind() const override { return SchemeKind::kNone; }
  const char* Name() const override { return "scripted"; }

  void ActInit(const QueueOp& op) override { log.push_back("init"); (void)op; }
  Verdict CondSer(GlobalTxnId, SiteId) override { return ser_verdict; }
  void ActSer(GlobalTxnId, SiteId) override { log.push_back("ser"); }
  void ActAck(GlobalTxnId, SiteId) override { log.push_back("ack"); }
  Verdict CondFin(GlobalTxnId) override { return fin_verdict; }
  void ActFin(GlobalTxnId) override { log.push_back("fin"); }
  void ActAbortCleanup(GlobalTxnId) override { log.push_back("cleanup"); }

  Verdict ser_verdict = Verdict::kReady;
  Verdict fin_verdict = Verdict::kReady;
  std::vector<std::string> log;
};

struct DriverFixture : public ::testing::Test {
  DriverFixture() {
    auto owned = std::make_unique<ScriptedScheme>();
    scheme = owned.get();
    Gtm2::Callbacks callbacks;
    callbacks.release_ser = [this](GlobalTxnId txn, SiteId site) {
      released.push_back({txn, site});
    };
    callbacks.forward_ack = [this](GlobalTxnId txn, SiteId site) {
      acked.push_back({txn, site});
    };
    callbacks.abort_txn = [this](GlobalTxnId txn) { aborted.push_back(txn); };
    callbacks.fin_done = [this](GlobalTxnId txn) { finished.push_back(txn); };
    gtm2 = std::make_unique<Gtm2>(std::move(owned), std::move(callbacks));
  }

  ScriptedScheme* scheme;
  std::unique_ptr<Gtm2> gtm2;
  std::vector<std::pair<GlobalTxnId, SiteId>> released;
  std::vector<std::pair<GlobalTxnId, SiteId>> acked;
  std::vector<GlobalTxnId> aborted;
  std::vector<GlobalTxnId> finished;
};

TEST_F(DriverFixture, ReadyOpsRunActAndSideEffects) {
  gtm2->Enqueue(QueueOp::Init(kG1, {kA}));
  gtm2->Enqueue(QueueOp::Ser(kG1, kA));
  gtm2->Enqueue(QueueOp::Ack(kG1, kA));
  gtm2->Enqueue(QueueOp::Fin(kG1));
  EXPECT_EQ(scheme->log,
            (std::vector<std::string>{"init", "ser", "ack", "fin"}));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].first, kG1);
  ASSERT_EQ(acked.size(), 1u);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(gtm2->stats().processed_ops, 4);
  EXPECT_EQ(gtm2->stats().wait_additions, 0);
}

TEST_F(DriverFixture, WaitingOpJoinsWaitAndRetriesAfterNextAct) {
  scheme->ser_verdict = Verdict::kWait;
  gtm2->Enqueue(QueueOp::Init(kG1, {kA}));
  gtm2->Enqueue(QueueOp::Ser(kG1, kA));
  EXPECT_EQ(gtm2->wait_size(), 1u);
  EXPECT_EQ(gtm2->stats().wait_additions, 1);
  EXPECT_EQ(gtm2->stats().ser_wait_additions, 1);
  EXPECT_TRUE(released.empty());
  // Any successful act triggers a WAIT rescan.
  scheme->ser_verdict = Verdict::kReady;
  gtm2->Enqueue(QueueOp::Init(kG2, {kB}));
  EXPECT_EQ(gtm2->wait_size(), 0u);
  ASSERT_EQ(released.size(), 1u);
}

TEST_F(DriverFixture, WaitCountsInsertionOnce) {
  scheme->ser_verdict = Verdict::kWait;
  gtm2->Enqueue(QueueOp::Ser(kG1, kA));
  // Failed rescans must not recount the same waiting op.
  gtm2->Enqueue(QueueOp::Init(kG2, {kB}));
  gtm2->Enqueue(QueueOp::Init(kG1, {kA}));
  EXPECT_EQ(gtm2->stats().wait_additions, 1);
  EXPECT_EQ(gtm2->wait_size(), 1u);
}

TEST_F(DriverFixture, AbortVerdictInvokesCallbackAndConsumesOp) {
  scheme->fin_verdict = Verdict::kAbort;
  gtm2->Enqueue(QueueOp::Init(kG1, {kA}));
  gtm2->Enqueue(QueueOp::Fin(kG1));
  ASSERT_EQ(aborted.size(), 1u);
  EXPECT_EQ(aborted[0], kG1);
  EXPECT_EQ(gtm2->wait_size(), 0u);
  EXPECT_EQ(gtm2->stats().scheme_aborts, 1);
}

TEST_F(DriverFixture, DeadTxnOpsArePurged) {
  scheme->ser_verdict = Verdict::kWait;
  gtm2->Enqueue(QueueOp::Init(kG1, {kA}));
  gtm2->Enqueue(QueueOp::Ser(kG1, kA));
  EXPECT_EQ(gtm2->wait_size(), 1u);
  gtm2->AbortCleanup(kG1);
  EXPECT_EQ(gtm2->wait_size(), 0u);
  EXPECT_EQ(scheme->log.back(), "cleanup");
  // Late operations of the dead transaction are dropped silently.
  gtm2->Enqueue(QueueOp::Ack(kG1, kA));
  gtm2->Enqueue(QueueOp::Fin(kG1));
  EXPECT_TRUE(finished.empty());
  for (const std::string& entry : scheme->log) {
    EXPECT_NE(entry, "ack");
    EXPECT_NE(entry, "fin");
  }
}

TEST_F(DriverFixture, FailedRescanStepsAreAttributed) {
  scheme->ser_verdict = Verdict::kWait;
  gtm2->Enqueue(QueueOp::Ser(kG1, kA));
  gtm2->Enqueue(QueueOp::Init(kG2, {kB}));  // act -> rescan fails again.
  EXPECT_EQ(gtm2->stats().failed_rescan_steps, 0);  // Scripted adds none.
  EXPECT_GT(gtm2->stats().cond_evaluations, 2);
}

// --------------------------------------------------------------------------
// Synthetic harness
// --------------------------------------------------------------------------

TEST(SyntheticHarnessTest, RunsPopulationToCompletion) {
  SyntheticConfig config;
  config.sites = 4;
  config.active_txns = 6;
  config.total_txns = 100;
  config.seed = 3;
  SyntheticGtmHarness harness(MakeScheme(SchemeKind::kScheme0), config);
  SyntheticReport report = harness.Run();
  EXPECT_EQ(report.completed, 100);
  EXPECT_TRUE(report.ser_schedule_serializable);
  EXPECT_GT(report.ser_ops, 100);  // dav >= 1 each.
  EXPECT_EQ(report.scheme_aborts, 0);
}

TEST(SyntheticHarnessTest, DeterministicForSameSeed) {
  SyntheticConfig config;
  config.total_txns = 200;
  config.seed = 11;
  SyntheticGtmHarness a(MakeScheme(SchemeKind::kScheme3), config);
  SyntheticGtmHarness b(MakeScheme(SchemeKind::kScheme3), config);
  SyntheticReport ra = a.Run();
  SyntheticReport rb = b.Run();
  EXPECT_EQ(ra.ser_waits, rb.ser_waits);
  EXPECT_EQ(ra.scheme_steps, rb.scheme_steps);
  EXPECT_EQ(ra.ser_ops, rb.ser_ops);
}

TEST(SyntheticHarnessTest, StepsScaleWithTheoryShapes) {
  // Scheme 0 scheduling steps are flat in n; Scheme 2's grow superlinearly
  // (Theorems 4/6 in miniature).
  auto run = [](SchemeKind kind, int n) {
    SyntheticConfig config;
    config.sites = 8;
    config.active_txns = n;
    config.dav_min = config.dav_max = 3;
    config.total_txns = 200;
    config.seed = 5;
    SyntheticGtmHarness harness(MakeScheme(kind), config);
    return harness.Run().SchedulingStepsPerTxn();
  };
  double s0_small = run(SchemeKind::kScheme0, 4);
  double s0_large = run(SchemeKind::kScheme0, 64);
  EXPECT_LT(s0_large, s0_small * 2.0);  // Flat-ish.
  double s2_small = run(SchemeKind::kScheme2, 4);
  double s2_large = run(SchemeKind::kScheme2, 64);
  EXPECT_GT(s2_large, s2_small * 10.0);  // Quadratic-ish.
}

}  // namespace
}  // namespace mdbs::gtm
