// Always-on metrics engine (src/obs/metrics): the per-transaction phase
// decomposition must partition each measured lifetime exactly (the balance
// invariant), in both engines and across schemes; the timeline and
// bottleneck must be deterministic per seed; durable-recovery stalls must
// be attributed to the recovery phase; and the sharded site-exec summaries
// must fold multi-threaded records losslessly.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"
#include "obs/metrics.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;
using obs::MetricsSnapshot;
using obs::TxnPhase;

const SiteId kS0{0};
const SiteId kS1{1};
const DataItemId kX{1};
const DataItemId kY{2};

int64_t PhaseTicks(const MetricsSnapshot& snapshot, TxnPhase phase) {
  return snapshot.phase_ticks[static_cast<size_t>(phase)];
}

int64_t TotalPhaseTicks(const MetricsSnapshot& snapshot) {
  int64_t total = 0;
  for (int64_t t : snapshot.phase_ticks) total += t;
  return total;
}

/// The core acceptance checks every snapshot must pass, regardless of
/// engine, scheme or fault plan.
void ExpectBalancedSnapshot(const MetricsSnapshot& snapshot) {
  EXPECT_TRUE(snapshot.enabled);
  EXPECT_EQ(snapshot.balance_violations, 0)
      << "phase decomposition failed to partition some lifetime (max error "
      << snapshot.max_balance_error << " ticks)";
  EXPECT_EQ(snapshot.max_balance_error, 0);
  EXPECT_EQ(TotalPhaseTicks(snapshot), snapshot.lifetime_ticks)
      << "aggregate phase ticks must equal aggregate lifetime ticks";
  EXPECT_EQ(snapshot.lifetime.count(), snapshot.finished);
  EXPECT_GE(snapshot.finished, snapshot.committed);
  // Every finished transaction contributes one observation (possibly zero)
  // to every phase, so the per-phase counts all equal `finished`.
  for (const sim::Summary& phase : snapshot.phases) {
    EXPECT_EQ(phase.count(), snapshot.finished);
  }
  // Timeline windows are strictly increasing and their counters reconcile
  // with the run totals.
  int64_t submitted = 0;
  int64_t committed = 0;
  for (size_t i = 0; i < snapshot.timeline.size(); ++i) {
    if (i > 0) {
      EXPECT_GT(snapshot.timeline[i].window, snapshot.timeline[i - 1].window);
    }
    submitted += snapshot.timeline[i].submitted;
    committed += snapshot.timeline[i].committed;
  }
  EXPECT_EQ(submitted, snapshot.finished)
      << "every submitted job finishes by the end of a drained run";
  EXPECT_EQ(committed, snapshot.committed);
  if (snapshot.lifetime_ticks > 0) {
    EXPECT_GT(snapshot.bottleneck_share, 0.0);
    EXPECT_LE(snapshot.bottleneck_share, 1.0);
    for (int64_t t : snapshot.phase_ticks) {
      EXPECT_LE(t, PhaseTicks(snapshot, snapshot.bottleneck));
    }
  }
}

DriverConfig ContendedWorkload() {
  DriverConfig config;
  config.global_clients = 6;
  config.local_clients_per_site = 2;
  config.target_global_commits = 60;
  config.global_workload.items_per_site = 20;
  config.global_workload.dav_min = 2;
  config.global_workload.dav_max = 3;
  config.local_workload.items_per_site = 20;
  return config;
}

// --------------------------------------------------------------------------
// ShardedSummary
// --------------------------------------------------------------------------

TEST(ShardedSummaryTest, ConcurrentRecordsFoldLosslessly) {
  obs::ShardedSummary sharded;
  const int kThreads = 8;
  const int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sharded, t] {
      for (int i = 0; i < kPerThread; ++i) {
        sharded.Record(static_cast<double>(t * kPerThread + i));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  sim::Summary merged = sharded.Drain();
  const int64_t n = int64_t{kThreads} * kPerThread;
  EXPECT_EQ(merged.count(), n);
  EXPECT_DOUBLE_EQ(merged.sum(), static_cast<double>(n * (n - 1) / 2));
  EXPECT_DOUBLE_EQ(merged.min(), 0.0);
  EXPECT_DOUBLE_EQ(merged.max(), static_cast<double>(n - 1));
}

// --------------------------------------------------------------------------
// Balance invariant, simulation engine, all schemes
// --------------------------------------------------------------------------

class MetricsBalanceTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, MetricsBalanceTest,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme2, SchemeKind::kScheme3,
                      SchemeKind::kTicketOptimistic),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

TEST_P(MetricsBalanceTest, PhasesPartitionLifetimeExactly) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
      GetParam());
  config.seed = 17;
  Mdbs system(config);
  ASSERT_NE(system.metrics(), nullptr) << "metrics must be on by default";
  DriverReport report = RunDriver(&system, ContendedWorkload(), 17);
  MetricsSnapshot snapshot = system.metrics()->Snapshot();
  ExpectBalancedSnapshot(snapshot);
  EXPECT_EQ(snapshot.committed, report.global_committed);
  EXPECT_EQ(snapshot.finished,
            report.global_committed + report.global_failed);
  EXPECT_GT(snapshot.lifetime_ticks, 0);
  // Site-exec shards saw every data/commit round trip.
  EXPECT_EQ(snapshot.site_exec.size(), 4u);
  int64_t site_records = 0;
  for (const auto& [site, summary] : snapshot.site_exec) {
    site_records += summary.count();
  }
  EXPECT_GT(site_records, 0);
}

TEST(MetricsDisabledTest, OptOutLeavesNoEngine) {
  MdbsConfig config =
      MdbsConfig::Uniform(2, ProtocolKind::kTwoPhaseLocking,
                          SchemeKind::kScheme3);
  config.metrics.enabled = false;
  Mdbs system(config);
  EXPECT_EQ(system.metrics(), nullptr);
  DriverConfig driver = ContendedWorkload();
  driver.target_global_commits = 20;
  DriverReport report = RunDriver(&system, driver, 3);
  EXPECT_GE(report.global_committed, 20);
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

// --------------------------------------------------------------------------
// Determinism: same seed, same timeline, same breakdown
// --------------------------------------------------------------------------

TEST(MetricsDeterminismTest, TimelineAndBottleneckAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    MdbsConfig config = MdbsConfig::Mixed(
        {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
         ProtocolKind::kSerializationGraph},
        SchemeKind::kScheme3);
    config.seed = seed;
    config.metrics.timeline_window = 2000;
    Mdbs system(config);
    DriverConfig driver = ContendedWorkload();
    driver.target_global_commits = 40;
    RunDriver(&system, driver, seed);
    return system.metrics()->Snapshot();
  };
  MetricsSnapshot a = run(23);
  MetricsSnapshot b = run(23);
  EXPECT_EQ(a.lifetime_ticks, b.lifetime_ticks);
  EXPECT_EQ(a.phase_ticks, b.phase_ticks);
  EXPECT_EQ(a.bottleneck, b.bottleneck);
  EXPECT_DOUBLE_EQ(a.bottleneck_share, b.bottleneck_share);
  EXPECT_EQ(a.BreakdownTable(), b.BreakdownTable());
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    const obs::TimelinePoint& pa = a.timeline[i];
    const obs::TimelinePoint& pb = b.timeline[i];
    EXPECT_EQ(pa.window, pb.window) << i;
    EXPECT_EQ(pa.submitted, pb.submitted) << i;
    EXPECT_EQ(pa.committed, pb.committed) << i;
    EXPECT_EQ(pa.failed, pb.failed) << i;
    EXPECT_EQ(pa.attempt_aborts, pb.attempt_aborts) << i;
    EXPECT_EQ(pa.max_queue_depth, pb.max_queue_depth) << i;
    EXPECT_EQ(pa.max_wait_depth, pb.max_wait_depth) << i;
    EXPECT_EQ(pa.max_parked, pb.max_parked) << i;
    EXPECT_EQ(pa.site_down_events, pb.site_down_events) << i;
    EXPECT_DOUBLE_EQ(pa.p99_latency, pb.p99_latency) << i;
  }
  // A different seed must (for this contended workload) produce a different
  // execution — guards against the snapshot being constant.
  MetricsSnapshot c = run(24);
  EXPECT_NE(a.lifetime_ticks, c.lifetime_ticks);
}

// --------------------------------------------------------------------------
// Threaded engine
// --------------------------------------------------------------------------

TEST(MetricsThreadedTest, BalanceHoldsUnderRealThreads) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      SchemeKind::kScheme3);
  config.seed = 31;
  config.threaded = true;
  Mdbs system(config);
  DriverConfig driver = ContendedWorkload();
  driver.target_global_commits = 40;
  DriverReport report = RunThreadedDriver(&system, driver, 31);
  MetricsSnapshot snapshot = system.metrics()->Snapshot();
  ExpectBalancedSnapshot(snapshot);
  EXPECT_EQ(snapshot.committed, report.global_committed);
  // Real threads make admission queueing (client thread -> GTM strand)
  // observable; it is part of the partition, never negative.
  EXPECT_GE(PhaseTicks(snapshot, TxnPhase::kAdmission), 0);
}

// --------------------------------------------------------------------------
// Durable-crash recovery attribution
// --------------------------------------------------------------------------

TEST(MetricsRecoveryTest, DurableReplayStallIsAttributedToRecoveryPhase) {
  // A durable site crashes with a non-zero modeled replay cost while a
  // two-site global is in flight: the monitor quarantines the site, the job
  // parks, and the portion of the park overlapping the WAL replay window
  // must surface as kRecovery (not kParked) ticks.
  MdbsConfig config = MdbsConfig::Uniform(
      2, ProtocolKind::kTwoPhaseLocking, SchemeKind::kScheme3);
  config.gtm.attempt_timeout = 0;
  config.gtm.retry_backoff = 100;
  config.health.probe_interval = 100;
  config.health.suspect_after = 200;
  config.health.down_after = 400;
  config.fault_plan.crashes.push_back(fault::CrashEvent{kS0, 300, 2500});
  for (site::SiteConfig& site : config.sites) {
    site.durable = true;
    site.checkpoint_interval = 4;
    site.recovery_base_time = 1500;
    site.recovery_time_per_record = 10;
  }
  Mdbs system(config);

  // A local lock holder keeps the global blocked at s0 until the crash.
  StatusOr<TxnId> lock_holder = system.BeginLocal(kS0);
  ASSERT_TRUE(lock_holder.ok());
  system.site(kS0).Submit(*lock_holder, DataOp::Write(kX, 7),
                          [](const Status&, int64_t) {});

  gtm::GlobalTxnResult g1;
  gtm::GlobalTxnSpec spec;
  spec.ops.push_back(gtm::GlobalOp::Write(kS0, kX, 1));
  spec.ops.push_back(gtm::GlobalOp::Write(kS1, kY, 2));
  system.gtm().Submit(std::move(spec),
                      [&](const gtm::GlobalTxnResult& r) { g1 = r; });
  system.RunUntilIdle();

  ASSERT_TRUE(g1.status.ok()) << g1.status;
  MetricsSnapshot snapshot = system.metrics()->Snapshot();
  ExpectBalancedSnapshot(snapshot);
  EXPECT_GT(PhaseTicks(snapshot, TxnPhase::kRecovery), 0)
      << "the replay window the job parked through was not attributed";
  EXPECT_GT(PhaseTicks(snapshot, TxnPhase::kParked) +
                PhaseTicks(snapshot, TxnPhase::kRecovery),
            1000)
      << "the quarantine park barely registered";
  const site::SiteDurabilityStats stats = system.site(kS0).durability_stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_GT(stats.recovery_ticks, 0);
  // The recovery attribution can never exceed the modeled replay time
  // summed over recoveries (a job cannot stall on a window longer than the
  // window itself).
  EXPECT_LE(PhaseTicks(snapshot, TxnPhase::kRecovery), stats.recovery_ticks);
}

}  // namespace
}  // namespace mdbs
