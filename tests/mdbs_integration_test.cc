#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gtm/scheme2.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

std::vector<ProtocolKind> AllProtocolMix() {
  return {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
          ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic};
}

DriverConfig SmallConflictHeavyWorkload() {
  DriverConfig config;
  config.global_clients = 6;
  config.local_clients_per_site = 2;
  config.target_global_commits = 60;
  config.global_workload.items_per_site = 20;  // Hot items.
  config.global_workload.dav_min = 2;
  config.global_workload.dav_max = 3;
  config.local_workload.items_per_site = 20;
  return config;
}

// --------------------------------------------------------------------------
// End-to-end serializability across schemes and protocol mixes
// --------------------------------------------------------------------------

struct IntegrationCase {
  SchemeKind scheme;
  uint64_t seed;
};

class MdbsEndToEnd : public ::testing::TestWithParam<IntegrationCase> {};

std::string IntegrationName(
    const ::testing::TestParamInfo<IntegrationCase>& info) {
  return std::string(gtm::SchemeKindName(info.param.scheme)) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<IntegrationCase> IntegrationCases() {
  std::vector<IntegrationCase> cases;
  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme1, SchemeKind::kScheme2,
        SchemeKind::kScheme3, SchemeKind::kTicketOptimistic}) {
    for (uint64_t seed : {11u, 22u}) {
      cases.push_back(IntegrationCase{scheme, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MdbsEndToEnd,
                         ::testing::ValuesIn(IntegrationCases()),
                         IntegrationName);

TEST_P(MdbsEndToEnd, MixedProtocolWorkloadStaysGloballySerializable) {
  MdbsConfig config = MdbsConfig::Mixed(AllProtocolMix(), GetParam().scheme);
  config.seed = GetParam().seed;
  Mdbs system(config);
  DriverReport report =
      RunDriver(&system, SmallConflictHeavyWorkload(), GetParam().seed);
  // The driver stops after 60 finished global transactions; a few may fail
  // (e.g. OCC partial commits — atomic commitment is out of scope).
  EXPECT_GE(report.global_committed + report.global_failed, 60);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_GT(report.local_committed, 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckSerializationKeyProperty().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  // Conservative schemes never abort from the GTM scheduler itself.
  if (GetParam().scheme != SchemeKind::kTicketOptimistic) {
    EXPECT_EQ(report.gtm1.scheme_aborts, 0);
    EXPECT_EQ(report.gtm2.scheme_aborts, 0);
  }
}

TEST(MdbsEndToEndSingle, TicketOptimisticAbortsUnderContention) {
  // The non-conservative baseline trades waiting for aborts (paper §3(1)).
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kSerializationGraph, ProtocolKind::kSerializationGraph,
       ProtocolKind::kOptimistic},
      SchemeKind::kTicketOptimistic);
  config.seed = 5;
  Mdbs system(config);
  DriverConfig driver = SmallConflictHeavyWorkload();
  driver.target_global_commits = 120;
  driver.global_workload.dav_min = 2;
  driver.global_workload.dav_max = 3;
  driver.local_clients_per_site = 0;
  driver.global_clients = 10;
  DriverReport report = RunDriver(&system, driver, 5);
  EXPECT_GT(report.gtm1.scheme_aborts, 0)
      << "expected optimistic certification aborts under contention";
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

TEST(MdbsEndToEndSingle, NoControlEventuallyViolatesGlobalSerializability) {
  // E4's strawman: without GTM2 control, indirect conflicts and races
  // produce globally non-serializable executions. (Local schedules remain
  // serializable — each local DBMS guarantees that on its own.)
  bool violated = false;
  for (uint64_t seed = 1; seed <= 10 && !violated; ++seed) {
    MdbsConfig config = MdbsConfig::Mixed(
        {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
         ProtocolKind::kTwoPhaseLocking},
        SchemeKind::kNone);
    config.seed = seed;
    Mdbs system(config);
    DriverConfig driver;
    driver.global_clients = 10;
    driver.local_clients_per_site = 0;
    driver.target_global_commits = 150;
    driver.global_workload.items_per_site = 3;  // Extremely hot.
    driver.global_workload.dav_min = 2;
    driver.global_workload.dav_max = 3;
    driver.global_workload.read_ratio = 0.3;
    DriverReport report = RunDriver(&system, driver, seed);
    EXPECT_TRUE(system.CheckLocallySerializable().ok());
    if (!system.CheckGloballySerializable().ok()) violated = true;
  }
  EXPECT_TRUE(violated)
      << "no-control MDBS unexpectedly stayed serializable on all seeds";
}

TEST(MdbsEndToEndSingle, Scheme2AcyclicityInvariantHoldsUnderStress) {
  // Run Scheme 2 with its exhaustive TSGD-acyclicity self-check enabled:
  // after every Eliminate_Cycles the TSGD must have no cycle through the
  // incoming transaction (a violation aborts the process via MDBS_CHECK).
  MdbsConfig config = MdbsConfig::Mixed(AllProtocolMix(), SchemeKind::kScheme2);
  config.seed = 99;
  config.gtm.scheme_factory = []() {
    auto scheme = std::make_unique<gtm::Scheme2>();
    scheme->set_validate_acyclicity(true);
    return scheme;
  };
  Mdbs system(config);
  DriverConfig driver = SmallConflictHeavyWorkload();
  driver.target_global_commits = 80;
  driver.global_workload.dav_max = 4;
  DriverReport report = RunDriver(&system, driver, 99);
  EXPECT_GE(report.global_committed, 50);
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

TEST(MdbsEndToEndSingle, UniformTwoPlManySites) {
  MdbsConfig config =
      MdbsConfig::Uniform(6, ProtocolKind::kTwoPhaseLocking,
                          SchemeKind::kScheme1);
  config.seed = 3;
  Mdbs system(config);
  DriverConfig driver = SmallConflictHeavyWorkload();
  driver.global_workload.dav_max = 4;
  DriverReport report = RunDriver(&system, driver, 3);
  EXPECT_GE(report.global_committed, 60);
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

TEST(MdbsEndToEndSingle, LocalOnlyWorkloadNeedsNoGtm) {
  MdbsConfig config = MdbsConfig::Mixed(AllProtocolMix(), SchemeKind::kScheme3);
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 0;
  driver.local_clients_per_site = 3;
  driver.target_global_commits = 0;  // Stops immediately for globals...
  driver.local_workload.items_per_site = 10;
  // With target 0, global clients never run; drive local clients manually
  // for a fixed horizon instead.
  for (SiteId site : system.site_ids()) {
    (void)site;
  }
  // Simplest: run the driver with a tiny global target and 1 client.
  driver.global_clients = 1;
  driver.target_global_commits = 5;
  DriverReport report = RunDriver(&system, driver, 9);
  EXPECT_GT(report.local_committed, 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

// --------------------------------------------------------------------------
// Value correctness: cross-site transfers conserve total balance
// --------------------------------------------------------------------------

class BankingTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, BankingTest,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme2, SchemeKind::kScheme3),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

TEST_P(BankingTest, TransfersConserveTotalBalance) {
  // Abort-free protocols at every site (2PL/TO/SGT) so commits are atomic
  // across sites (no OCC partial-commit risk; see DESIGN.md on atomic
  // commitment being out of the paper's scope).
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      GetParam());
  config.seed = 17;
  Mdbs system(config);

  const int kAccountsPerSite = 4;
  const int64_t kInitialBalance = 1000;
  for (SiteId site : system.site_ids()) {
    for (int account = 0; account < kAccountsPerSite; ++account) {
      system.site(site).UnsafePoke(DataItemId(account), kInitialBalance);
    }
  }
  int64_t expected_total = static_cast<int64_t>(system.site_ids().size()) *
                           kAccountsPerSite * kInitialBalance;

  // 40 random cross-site transfers: debit (site_a, acct_a), credit
  // (site_b, acct_b) with read-modify-write semantics.
  Rng rng(4242);
  int committed = 0;
  int failed = 0;
  for (int i = 0; i < 40; ++i) {
    SiteId from = system.site_ids()[rng.NextBelow(3)];
    SiteId to = system.site_ids()[rng.NextBelow(3)];
    if (from == to) to = system.site_ids()[(from.value() + 1) % 3];
    DataItemId src{static_cast<int64_t>(rng.NextBelow(kAccountsPerSite))};
    DataItemId dst{static_cast<int64_t>(rng.NextBelow(kAccountsPerSite))};
    int64_t amount = static_cast<int64_t>(1 + rng.NextBelow(50));
    gtm::GlobalTxnSpec spec;
    spec.ops.push_back(gtm::GlobalOp::Read(from, src));
    spec.ops.push_back(gtm::GlobalOp::WriteFn(
        from, src, [from, src, amount](const gtm::ReadContext& reads) {
          return reads.at({from, src}) - amount;
        }));
    spec.ops.push_back(gtm::GlobalOp::Read(to, dst));
    spec.ops.push_back(gtm::GlobalOp::WriteFn(
        to, dst, [to, dst, amount](const gtm::ReadContext& reads) {
          return reads.at({to, dst}) + amount;
        }));
    system.gtm().Submit(std::move(spec),
                        [&](const gtm::GlobalTxnResult& result) {
                          if (result.status.ok()) {
                            ++committed;
                          } else {
                            ++failed;
                          }
                        });
  }
  system.RunUntilIdle();
  EXPECT_EQ(committed + failed, 40);
  EXPECT_GT(committed, 0);

  int64_t total = 0;
  for (SiteId site : system.site_ids()) {
    for (int account = 0; account < kAccountsPerSite; ++account) {
      total += system.site(site).UnsafePeek(DataItemId(account));
    }
  }
  EXPECT_EQ(total, expected_total);
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

}  // namespace
}  // namespace mdbs
