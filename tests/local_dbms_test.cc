#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/serializability.h"
#include "sim/event_loop.h"
#include "site/local_dbms.h"

namespace mdbs::site {
namespace {

const SiteId kSite{0};
const DataItemId kX{1};
const DataItemId kY{2};

struct Harness {
  explicit Harness(lcc::ProtocolKind protocol) {
    SiteConfig config;
    config.id = kSite;
    config.protocol = protocol;
    dbms = std::make_unique<LocalDbms>(config, &loop, &recorder);
  }

  TxnId Begin() {
    TxnId txn{next_id_++};
    EXPECT_TRUE(dbms->Begin(txn, GlobalTxnId()).ok());
    return txn;
  }

  /// Submits and runs to completion; returns (status, value).
  std::pair<Status, int64_t> Do(TxnId txn, const DataOp& op) {
    Status status = Status::Internal("callback never ran");
    int64_t value = 0;
    dbms->Submit(txn, op, [&](const Status& s, int64_t v) {
      status = s;
      value = v;
    });
    loop.Run();
    return {status, value};
  }

  /// Submits without running the loop (for blocking scenarios).
  void DoAsync(TxnId txn, const DataOp& op, Status* out) {
    *out = Status::Internal("pending");
    dbms->Submit(txn, op,
                 [out](const Status& s, int64_t) { *out = s; });
  }

  Status Commit(TxnId txn) {
    Status status = Status::Internal("callback never ran");
    dbms->Commit(txn, [&](const Status& s) { status = s; });
    loop.Run();
    return status;
  }

  Status Abort(TxnId txn) {
    Status status = Status::Internal("callback never ran");
    dbms->Abort(txn, [&](const Status& s) { status = s; });
    loop.Run();
    return status;
  }

  sim::EventLoop loop;
  sched::ScheduleRecorder recorder;
  std::unique_ptr<LocalDbms> dbms;
  int64_t next_id_ = 1;
};

// --------------------------------------------------------------------------
// Basic execution, all protocols (parameterized)
// --------------------------------------------------------------------------

class LocalDbmsAllProtocols
    : public ::testing::TestWithParam<lcc::ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(
    Protocols, LocalDbmsAllProtocols,
    ::testing::Values(lcc::ProtocolKind::kTwoPhaseLocking,
                      lcc::ProtocolKind::kTimestampOrdering,
                      lcc::ProtocolKind::kSerializationGraph,
                      lcc::ProtocolKind::kOptimistic,
                      lcc::ProtocolKind::kMultiversionTO,
                      lcc::ProtocolKind::kTwoPhaseLockingWoundWait,
                      lcc::ProtocolKind::kTwoPhaseLockingWaitDie),
    [](const auto& info) {
      std::string name = lcc::ProtocolKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(LocalDbmsAllProtocols, WriteThenReadRoundTrip) {
  Harness h(GetParam());
  TxnId txn = h.Begin();
  EXPECT_TRUE(h.Do(txn, DataOp::Write(kX, 42)).first.ok());
  auto [status, value] = h.Do(txn, DataOp::Read(kX));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(value, 42);  // Read-your-own-writes, even with deferred writes.
  EXPECT_TRUE(h.Commit(txn).ok());
  EXPECT_EQ(h.dbms->UnsafePeek(kX), 42);
}

TEST_P(LocalDbmsAllProtocols, AbortUndoesWrites) {
  Harness h(GetParam());
  h.dbms->UnsafePoke(kX, 7);
  TxnId txn = h.Begin();
  EXPECT_TRUE(h.Do(txn, DataOp::Write(kX, 99)).first.ok());
  EXPECT_TRUE(h.Abort(txn).ok());
  EXPECT_EQ(h.dbms->UnsafePeek(kX), 7);
  EXPECT_FALSE(h.dbms->IsActive(txn));
}

TEST_P(LocalDbmsAllProtocols, SequentialTxnsAllCommit) {
  Harness h(GetParam());
  for (int i = 0; i < 20; ++i) {
    TxnId txn = h.Begin();
    EXPECT_TRUE(h.Do(txn, DataOp::Read(kX)).first.ok());
    EXPECT_TRUE(h.Do(txn, DataOp::Write(kX, i)).first.ok());
    EXPECT_TRUE(h.Commit(txn).ok());
  }
  EXPECT_EQ(h.dbms->UnsafePeek(kX), 19);
  EXPECT_EQ(h.recorder.CommittedCount(), 20);
}

TEST_P(LocalDbmsAllProtocols, DoubleBeginFails) {
  Harness h(GetParam());
  TxnId txn = h.Begin();
  EXPECT_TRUE(h.dbms->Begin(txn, GlobalTxnId()).IsFailedPrecondition());
}

TEST_P(LocalDbmsAllProtocols, OpOnFinishedTxnReportsAborted) {
  Harness h(GetParam());
  TxnId txn = h.Begin();
  ASSERT_TRUE(h.Commit(txn).ok());
  auto [status, value] = h.Do(txn, DataOp::Read(kX));
  EXPECT_TRUE(status.IsTransactionAborted());
}

// --------------------------------------------------------------------------
// Protocol-specific site behavior
// --------------------------------------------------------------------------

TEST(LocalDbms2plTest, ConflictingOpBlocksUntilCommit) {
  Harness h(lcc::ProtocolKind::kTwoPhaseLocking);
  TxnId t1 = h.Begin();
  TxnId t2 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Write(kX, 1)).first.ok());
  Status blocked;
  h.DoAsync(t2, DataOp::Read(kX), &blocked);
  h.loop.Run();
  EXPECT_TRUE(blocked.IsInternal()) << "should still be pending";
  EXPECT_EQ(h.dbms->blocked_count(), 1);
  EXPECT_TRUE(h.Commit(t1).ok());  // Releases the lock, resumes T2.
  EXPECT_TRUE(blocked.ok());
}

TEST(LocalDbms2plTest, DeadlockVictimGetsAborted) {
  Harness h(lcc::ProtocolKind::kTwoPhaseLocking);
  TxnId t1 = h.Begin();
  TxnId t2 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Write(kX, 1)).first.ok());
  ASSERT_TRUE(h.Do(t2, DataOp::Write(kY, 1)).first.ok());
  Status t1_blocked;
  h.DoAsync(t1, DataOp::Read(kY), &t1_blocked);
  h.loop.Run();
  auto [status, value] = h.Do(t2, DataOp::Read(kX));
  EXPECT_TRUE(status.IsTransactionAborted());
  EXPECT_EQ(h.dbms->abort_count(), 1);
  // T2's abort released Y, so T1 resumed.
  EXPECT_TRUE(t1_blocked.ok());
  EXPECT_TRUE(h.Commit(t1).ok());
}

TEST(LocalDbms2plTest, AbortWhileBlockedFailsPendingOp) {
  Harness h(lcc::ProtocolKind::kTwoPhaseLocking);
  TxnId t1 = h.Begin();
  TxnId t2 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Write(kX, 1)).first.ok());
  Status blocked;
  h.DoAsync(t2, DataOp::Read(kX), &blocked);
  h.loop.Run();
  EXPECT_TRUE(h.Abort(t2).ok());
  EXPECT_TRUE(blocked.IsTransactionAborted());
  EXPECT_TRUE(h.Commit(t1).ok());
}

TEST(LocalDbmsOccTest, ValidationFailureAtCommit) {
  Harness h(lcc::ProtocolKind::kOptimistic);
  TxnId t1 = h.Begin();
  TxnId t2 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Read(kX)).first.ok());
  ASSERT_TRUE(h.Do(t2, DataOp::Write(kX, 5)).first.ok());
  ASSERT_TRUE(h.Commit(t2).ok());
  EXPECT_TRUE(h.Commit(t1).IsTransactionAborted());
  EXPECT_EQ(h.recorder.AbortedCount(), 1);
}

TEST(LocalDbmsOccTest, DeferredWritesInvisibleUntilCommit) {
  Harness h(lcc::ProtocolKind::kOptimistic);
  TxnId t1 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Write(kX, 5)).first.ok());
  EXPECT_EQ(h.dbms->UnsafePeek(kX), 0);  // Still buffered.
  TxnId t2 = h.Begin();
  EXPECT_EQ(h.Do(t2, DataOp::Read(kX)).second, 0);
  ASSERT_TRUE(h.Commit(t1).ok());
  EXPECT_EQ(h.dbms->UnsafePeek(kX), 5);
}

TEST(LocalDbmsToTest, OldReaderAbortsAfterYoungerWriteCommits) {
  Harness h(lcc::ProtocolKind::kTimestampOrdering);
  TxnId t1 = h.Begin();  // Older.
  TxnId t2 = h.Begin();  // Younger.
  ASSERT_TRUE(h.Do(t2, DataOp::Write(kX, 5)).first.ok());
  ASSERT_TRUE(h.Commit(t2).ok());
  EXPECT_TRUE(h.Do(t1, DataOp::Read(kX)).first.IsTransactionAborted());
}

// --------------------------------------------------------------------------
// Recorder integration
// --------------------------------------------------------------------------

TEST(LocalDbmsRecorderTest, OpsRecordedInExecutionOrder) {
  Harness h(lcc::ProtocolKind::kTwoPhaseLocking);
  TxnId t1 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Write(kX, 1)).first.ok());
  ASSERT_TRUE(h.Do(t1, DataOp::Read(kY)).first.ok());
  ASSERT_TRUE(h.Commit(t1).ok());
  const auto& ops = h.recorder.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].op.type, OpType::kWrite);
  EXPECT_EQ(ops[1].op.type, OpType::kRead);
  EXPECT_LT(ops[0].seq, ops[1].seq);
  const sched::TxnRecord* record = h.recorder.FindTxn(t1);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(record->serialization_key.has_value());
}

TEST(LocalDbmsRecorderTest, OccWritesRecordedAtCommit) {
  Harness h(lcc::ProtocolKind::kOptimistic);
  TxnId t1 = h.Begin();
  TxnId t2 = h.Begin();
  ASSERT_TRUE(h.Do(t1, DataOp::Write(kX, 1)).first.ok());
  ASSERT_TRUE(h.Do(t2, DataOp::Write(kY, 1)).first.ok());
  ASSERT_TRUE(h.Commit(t2).ok());
  ASSERT_TRUE(h.Commit(t1).ok());
  // T2's write applied (and was recorded) first even though T1 buffered
  // its write earlier.
  const auto& ops = h.recorder.ops();
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].txn, t2);
  EXPECT_EQ(ops[1].txn, t1);
}

// --------------------------------------------------------------------------
// Property: random single-site stress keeps local schedules serializable
// and consistent with the protocol's serialization keys.
// --------------------------------------------------------------------------

struct StressCase {
  lcc::ProtocolKind protocol;
  uint64_t seed;
};

class LocalDbmsStress : public ::testing::TestWithParam<StressCase> {};

std::string StressName(const ::testing::TestParamInfo<StressCase>& info) {
  std::string name = lcc::ProtocolKindName(info.param.protocol);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(info.param.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LocalDbmsStress,
    ::testing::Values(
        StressCase{lcc::ProtocolKind::kTwoPhaseLocking, 1},
        StressCase{lcc::ProtocolKind::kTwoPhaseLocking, 2},
        StressCase{lcc::ProtocolKind::kTimestampOrdering, 1},
        StressCase{lcc::ProtocolKind::kTimestampOrdering, 2},
        StressCase{lcc::ProtocolKind::kSerializationGraph, 1},
        StressCase{lcc::ProtocolKind::kSerializationGraph, 2},
        StressCase{lcc::ProtocolKind::kOptimistic, 1},
        StressCase{lcc::ProtocolKind::kOptimistic, 2},
        StressCase{lcc::ProtocolKind::kTwoPhaseLockingWoundWait, 1},
        StressCase{lcc::ProtocolKind::kTwoPhaseLockingWoundWait, 2},
        StressCase{lcc::ProtocolKind::kTwoPhaseLockingWaitDie, 1},
        StressCase{lcc::ProtocolKind::kTwoPhaseLockingWaitDie, 2}),
    StressName);

// A minimal closed-loop local client used by the stress test.
struct StressClient {
  Harness* h;
  Rng rng;
  int remaining;
  TxnId txn;
  std::vector<DataOp> ops;
  size_t next = 0;

  StressClient(Harness* harness, uint64_t seed, int txns)
      : h(harness), rng(seed), remaining(txns) {}

  void StartTxn() {
    if (remaining-- <= 0) return;
    txn = h->Begin();
    ops.clear();
    int n = static_cast<int>(rng.NextInRange(1, 4));
    for (int i = 0; i < n; ++i) {
      DataItemId item{static_cast<int64_t>(rng.NextBelow(6))};
      ops.push_back(rng.NextBernoulli(0.5)
                        ? DataOp::Read(item)
                        : DataOp::Write(item, static_cast<int64_t>(
                                                  rng.NextBelow(1000))));
    }
    next = 0;
    Step();
  }

  void Step() {
    if (next == ops.size()) {
      h->dbms->Commit(txn, [this](const Status&) { StartTxn(); });
      return;
    }
    h->dbms->Submit(txn, ops[next], [this](const Status& status, int64_t) {
      if (!status.ok()) {
        StartTxn();  // Abort: move on to the next transaction.
        return;
      }
      ++next;
      Step();
    });
  }
};

TEST_P(LocalDbmsStress, ConcurrentClientsStaySerializable) {
  Harness h(GetParam().protocol);
  std::vector<std::unique_ptr<StressClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<StressClient>(
        &h, GetParam().seed * 100 + i, 50));
    clients.back()->StartTxn();
  }
  h.loop.Run();
  EXPECT_GT(h.recorder.CommittedCount(), 50);
  sched::SerializabilityResult result =
      sched::CheckLocalSerializability(h.recorder, kSite);
  EXPECT_TRUE(result.serializable) << result.ToString();
  EXPECT_TRUE(
      sched::CheckSerializationKeyProperty(h.recorder, kSite).ok());
}

}  // namespace
}  // namespace mdbs::site
