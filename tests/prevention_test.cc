// Wound-wait / wait-die deadlock prevention for 2PL sites: protocol-level
// behavior, site-level preemption mechanics, and end-to-end federation
// runs. These extend the paper's substrate with two more heterogeneous
// local protocols; both keep the last-operation serialization function of
// strict 2PL.

#include <string>

#include <gtest/gtest.h>

#include "lcc/two_phase_locking.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "sim/event_loop.h"
#include "site/local_dbms.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::AccessDecision;
using lcc::DeadlockPolicy;
using lcc::ProtocolKind;
using lcc::TwoPhaseLocking;

const TxnId kT1{1};
const TxnId kT2{2};
const TxnId kT3{3};
const DataItemId kX{10};
const DataItemId kY{11};

/// Host that emulates preemption for protocol-level tests: the wound is
/// reflected straight back into the protocol as an abort-finish.
class WoundHost : public lcc::ProtocolHost {
 public:
  void ResumeTransaction(TxnId txn) override { resumed.push_back(txn); }
  void AbortTransaction(TxnId txn, const std::string&) override {
    wounded.push_back(txn);
    if (protocol != nullptr) protocol->OnFinish(txn, TxnOutcome::kAborted);
  }
  TwoPhaseLocking* protocol = nullptr;
  std::vector<TxnId> resumed;
  std::vector<TxnId> wounded;
};

// --------------------------------------------------------------------------
// Wait-die
// --------------------------------------------------------------------------

TEST(WaitDieTest, OlderRequesterWaits) {
  WoundHost host;
  TwoPhaseLocking tpl(&host, DeadlockPolicy::kWaitDie);
  host.protocol = &tpl;
  tpl.OnBegin(kT1);  // Older.
  tpl.OnBegin(kT2);  // Younger.
  ASSERT_EQ(tpl.OnAccess(kT2, DataOp::Write(kX, 1)),
            AccessDecision::kProceed);
  tpl.OnAccessApplied(kT2, DataOp::Write(kX, 1));
  // Older T1 blocked by younger T2: waits.
  EXPECT_EQ(tpl.OnAccess(kT1, DataOp::Read(kX)), AccessDecision::kBlock);
  tpl.OnFinish(kT2, TxnOutcome::kCommitted);
  ASSERT_EQ(host.resumed.size(), 1u);
  EXPECT_EQ(host.resumed[0], kT1);
}

TEST(WaitDieTest, YoungerRequesterDies) {
  WoundHost host;
  TwoPhaseLocking tpl(&host, DeadlockPolicy::kWaitDie);
  host.protocol = &tpl;
  tpl.OnBegin(kT1);
  tpl.OnBegin(kT2);
  ASSERT_EQ(tpl.OnAccess(kT1, DataOp::Write(kX, 1)),
            AccessDecision::kProceed);
  tpl.OnAccessApplied(kT1, DataOp::Write(kX, 1));
  // Younger T2 blocked by older T1: dies.
  EXPECT_EQ(tpl.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kAbort);
  EXPECT_TRUE(host.wounded.empty());
}

// --------------------------------------------------------------------------
// Wound-wait
// --------------------------------------------------------------------------

TEST(WoundWaitTest, YoungerRequesterWaits) {
  WoundHost host;
  TwoPhaseLocking tpl(&host, DeadlockPolicy::kWoundWait);
  host.protocol = &tpl;
  tpl.OnBegin(kT1);
  tpl.OnBegin(kT2);
  ASSERT_EQ(tpl.OnAccess(kT1, DataOp::Write(kX, 1)),
            AccessDecision::kProceed);
  tpl.OnAccessApplied(kT1, DataOp::Write(kX, 1));
  EXPECT_EQ(tpl.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kBlock);
  EXPECT_TRUE(host.wounded.empty());
}

TEST(WoundWaitTest, OlderRequesterWoundsYoungerHolder) {
  WoundHost host;
  TwoPhaseLocking tpl(&host, DeadlockPolicy::kWoundWait);
  host.protocol = &tpl;
  tpl.OnBegin(kT1);  // Older.
  tpl.OnBegin(kT2);  // Younger.
  ASSERT_EQ(tpl.OnAccess(kT2, DataOp::Write(kX, 1)),
            AccessDecision::kProceed);
  tpl.OnAccessApplied(kT2, DataOp::Write(kX, 1));
  // Older T1 wounds T2 and takes the lock immediately (the wound released
  // it synchronously).
  EXPECT_EQ(tpl.OnAccess(kT1, DataOp::Write(kX, 2)),
            AccessDecision::kProceed);
  ASSERT_EQ(host.wounded.size(), 1u);
  EXPECT_EQ(host.wounded[0], kT2);
  EXPECT_EQ(tpl.wounds_inflicted(), 1);
}

TEST(WoundWaitTest, UpgradingHolderIsWoundedOnlyOnce) {
  // A holder queued behind its own lock upgrade blocks an exclusive
  // requester twice over — once from the granted list, once from the wait
  // queue. Wounding it on the first occurrence erases its age; the repeat
  // occurrence used to throw (regression caught by the threaded stress
  // run).
  WoundHost host;
  TwoPhaseLocking tpl(&host, DeadlockPolicy::kWoundWait);
  host.protocol = &tpl;
  tpl.OnBegin(kT1);  // Oldest: will wound everyone.
  tpl.OnBegin(kT3);
  tpl.OnBegin(kT2);  // Youngest: waits for its upgrade behind T3.
  ASSERT_EQ(tpl.OnAccess(kT3, DataOp::Read(kX)), AccessDecision::kProceed);
  ASSERT_EQ(tpl.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kProceed);
  ASSERT_EQ(tpl.OnAccess(kT2, DataOp::Write(kX, 1)), AccessDecision::kBlock);
  EXPECT_EQ(tpl.OnAccess(kT1, DataOp::Write(kX, 2)),
            AccessDecision::kProceed);
  EXPECT_EQ(host.wounded, (std::vector<TxnId>{kT3, kT2}));
  EXPECT_EQ(tpl.wounds_inflicted(), 2);
}

// --------------------------------------------------------------------------
// Site-level: preemption through the LocalDbms host
// --------------------------------------------------------------------------

TEST(WoundWaitSiteTest, WoundRollsBackVictimAndFailsItsNextOp) {
  site::SiteConfig config;
  config.id = SiteId(0);
  config.protocol = ProtocolKind::kTwoPhaseLockingWoundWait;
  sim::EventLoop loop;
  sched::ScheduleRecorder recorder;
  site::LocalDbms dbms(config, &loop, &recorder);
  dbms.UnsafePoke(kX, 7);

  TxnId older{1}, younger{2};
  ASSERT_TRUE(dbms.Begin(older, GlobalTxnId()).ok());
  ASSERT_TRUE(dbms.Begin(younger, GlobalTxnId()).ok());
  Status status = Status::Internal("pending");
  dbms.Submit(younger, DataOp::Write(kX, 99),
              [&](const Status& s, int64_t) { status = s; });
  loop.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(dbms.UnsafePeek(kX), 99);

  // The older transaction's conflicting access wounds the younger one.
  Status older_status = Status::Internal("pending");
  int64_t value = -1;
  dbms.Submit(older, DataOp::Read(kX), [&](const Status& s, int64_t v) {
    older_status = s;
    value = v;
  });
  loop.Run();
  EXPECT_TRUE(older_status.ok());
  EXPECT_EQ(value, 7);  // The victim's write rolled back first.
  EXPECT_FALSE(dbms.IsActive(younger));
  // The victim's next operation reports the abort.
  dbms.Submit(younger, DataOp::Read(kY),
              [&](const Status& s, int64_t) { status = s; });
  loop.Run();
  EXPECT_TRUE(status.IsTransactionAborted());
}

TEST(WaitDieSiteTest, NoDeadlockUnderCrossLocking) {
  site::SiteConfig config;
  config.id = SiteId(0);
  config.protocol = ProtocolKind::kTwoPhaseLockingWaitDie;
  sim::EventLoop loop;
  site::LocalDbms dbms(config, &loop, /*recorder=*/nullptr);

  TxnId t1{1}, t2{2};
  ASSERT_TRUE(dbms.Begin(t1, GlobalTxnId()).ok());
  ASSERT_TRUE(dbms.Begin(t2, GlobalTxnId()).ok());
  Status s1 = Status::Internal("pending"), s2 = s1, s3 = s1, s4 = s1;
  dbms.Submit(t1, DataOp::Write(kX, 1),
              [&](const Status& s, int64_t) { s1 = s; });
  dbms.Submit(t2, DataOp::Write(kY, 1),
              [&](const Status& s, int64_t) { s2 = s; });
  loop.Run();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // Cross access: t1 (older) waits on y; t2 (younger) dies on x.
  dbms.Submit(t1, DataOp::Read(kY), [&](const Status& s, int64_t) { s3 = s; });
  dbms.Submit(t2, DataOp::Read(kX), [&](const Status& s, int64_t) { s4 = s; });
  loop.Run();
  EXPECT_TRUE(s4.IsTransactionAborted());  // Younger died...
  EXPECT_TRUE(s3.ok());                    // ...freeing the older to finish.
  Status commit = Status::Internal("pending");
  dbms.Commit(t1, [&](const Status& s) { commit = s; });
  loop.Run();
  EXPECT_TRUE(commit.ok());
}

// --------------------------------------------------------------------------
// End-to-end federation with prevention sites
// --------------------------------------------------------------------------

class PreventionIntegration
    : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(
    Policies, PreventionIntegration,
    ::testing::Values(ProtocolKind::kTwoPhaseLockingWoundWait,
                      ProtocolKind::kTwoPhaseLockingWaitDie),
    [](const auto& info) {
      std::string name = lcc::ProtocolKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_P(PreventionIntegration, FederationStaysSerializable) {
  MdbsConfig config = MdbsConfig::Mixed(
      {GetParam(), ProtocolKind::kTimestampOrdering, GetParam()},
      SchemeKind::kScheme3);
  config.seed = 55;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 2;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 15;
  driver.local_workload.items_per_site = 15;
  DriverReport report = RunDriver(&system, driver, 55);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_GT(report.local_committed, 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckSerializationKeyProperty().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

}  // namespace
}  // namespace mdbs
