#include <gtest/gtest.h>

#include "common/ids.h"
#include "lcc/lock_manager.h"
#include "storage/kv_store.h"

namespace mdbs::lcc {
namespace {

const TxnId kT1{1};
const TxnId kT2{2};
const TxnId kT3{3};
const DataItemId kX{10};
const DataItemId kY{11};

// --------------------------------------------------------------------------
// KvStore (small enough to share the file)
// --------------------------------------------------------------------------

TEST(KvStoreTest, AbsentItemsReadZero) {
  storage::KvStore store;
  EXPECT_EQ(store.Get(kX), 0);
  EXPECT_EQ(store.MaterializedCount(), 0u);
}

TEST(KvStoreTest, PutReturnsBeforeImage) {
  storage::KvStore store;
  EXPECT_EQ(store.Put(kX, 5), 0);
  EXPECT_EQ(store.Put(kX, 9), 5);
  EXPECT_EQ(store.Get(kX), 9);
}

TEST(KvStoreTest, RestoreRollsBack) {
  storage::KvStore store;
  int64_t before = store.Put(kX, 5);
  store.Restore(kX, before);
  EXPECT_EQ(store.Get(kX), 0);
}

// --------------------------------------------------------------------------
// LockManager: grants and conflicts
// --------------------------------------------------------------------------

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager lm;
  EXPECT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT2, kX, LockMode::kShared), LockResult::kGranted);
  EXPECT_TRUE(lm.Holds(kT1, kX, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(kT2, kX, LockMode::kShared));
}

TEST(LockManagerTest, ExclusiveConflictsWithShared) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_FALSE(lm.Holds(kT2, kX, LockMode::kExclusive));
  EXPECT_EQ(lm.WaitingOn(kT2), kX);
}

TEST(LockManagerTest, ExclusiveConflictsWithExclusive) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive), LockResult::kWaiting);
}

TEST(LockManagerTest, ReacquiringHeldModeIsGranted) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kY, LockMode::kExclusive), LockResult::kGranted);
  // X covers S.
  EXPECT_EQ(lm.Acquire(kT2, kY, LockMode::kShared), LockResult::kGranted);
  EXPECT_TRUE(lm.Holds(kT2, kY, LockMode::kShared));
}

TEST(LockManagerTest, ReleaseGrantsNextWaiterFifo) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive), LockResult::kWaiting);
  ASSERT_EQ(lm.Acquire(kT3, kX, LockMode::kExclusive), LockResult::kWaiting);
  std::vector<TxnId> granted = lm.ReleaseAll(kT1);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], kT2);
  EXPECT_TRUE(lm.Holds(kT2, kX, LockMode::kExclusive));
  granted = lm.ReleaseAll(kT2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], kT3);
}

TEST(LockManagerTest, ReleaseGrantsMultipleSharedWaiters) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kShared), LockResult::kWaiting);
  ASSERT_EQ(lm.Acquire(kT3, kX, LockMode::kShared), LockResult::kWaiting);
  std::vector<TxnId> granted = lm.ReleaseAll(kT1);
  EXPECT_EQ(granted.size(), 2u);
  EXPECT_TRUE(lm.Holds(kT2, kX, LockMode::kShared));
  EXPECT_TRUE(lm.Holds(kT3, kX, LockMode::kShared));
}

TEST(LockManagerTest, FifoFairnessBlocksLaterSharedBehindExclusive) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive), LockResult::kWaiting);
  // A later shared request queues behind the exclusive one (no starvation).
  EXPECT_EQ(lm.Acquire(kT3, kX, LockMode::kShared), LockResult::kWaiting);
  std::vector<TxnId> granted = lm.ReleaseAll(kT1);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], kT2);
}

TEST(LockManagerTest, ReleaseRemovesWaitingRequest) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive), LockResult::kWaiting);
  lm.ReleaseAll(kT2);  // Abort while waiting.
  EXPECT_FALSE(lm.WaitingOn(kT2).has_value());
  std::vector<TxnId> granted = lm.ReleaseAll(kT1);
  EXPECT_TRUE(granted.empty());
  EXPECT_EQ(lm.ActiveItemCount(), 0u);
}

// --------------------------------------------------------------------------
// Upgrades
// --------------------------------------------------------------------------

TEST(LockManagerTest, UpgradeSoleHolderIsImmediate) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  EXPECT_TRUE(lm.Holds(kT1, kX, LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeWaitsForOtherSharedHolders) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kWaiting);
  std::vector<TxnId> granted = lm.ReleaseAll(kT2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], kT1);
  EXPECT_TRUE(lm.Holds(kT1, kX, LockMode::kExclusive));
}

TEST(LockManagerTest, UpgradeJumpsAheadOfQueuedRequests) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT3, kX, LockMode::kExclusive), LockResult::kWaiting);
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kWaiting);
  // T2 releases: the upgrade (queue front) wins over T3.
  std::vector<TxnId> granted = lm.ReleaseAll(kT2);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], kT1);
  EXPECT_TRUE(lm.Holds(kT1, kX, LockMode::kExclusive));
}

// --------------------------------------------------------------------------
// Deadlock detection
// --------------------------------------------------------------------------

TEST(LockManagerTest, SimpleTwoTxnDeadlockDetected) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kY, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT1, kY, LockMode::kExclusive), LockResult::kWaiting);
  // T2 requesting X would close the cycle T2 -> T1 -> T2.
  EXPECT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive),
            LockResult::kDeadlock);
  // The failed request must not have been queued.
  EXPECT_FALSE(lm.WaitingOn(kT2).has_value());
}

TEST(LockManagerTest, ThreeTxnDeadlockDetected) {
  LockManager lm;
  const DataItemId kZ{12};
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kY, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT3, kZ, LockMode::kExclusive), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT1, kY, LockMode::kExclusive), LockResult::kWaiting);
  ASSERT_EQ(lm.Acquire(kT2, kZ, LockMode::kExclusive), LockResult::kWaiting);
  EXPECT_EQ(lm.Acquire(kT3, kX, LockMode::kExclusive),
            LockResult::kDeadlock);
}

TEST(LockManagerTest, UpgradeUpgradeDeadlockDetected) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kExclusive), LockResult::kWaiting);
  // Second upgrader deadlocks against the first.
  EXPECT_EQ(lm.Acquire(kT2, kX, LockMode::kExclusive),
            LockResult::kDeadlock);
}

TEST(LockManagerTest, NoFalseDeadlockOnSharedChains) {
  LockManager lm;
  ASSERT_EQ(lm.Acquire(kT1, kX, LockMode::kShared), LockResult::kGranted);
  ASSERT_EQ(lm.Acquire(kT2, kY, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT1, kY, LockMode::kShared), LockResult::kGranted);
  EXPECT_EQ(lm.Acquire(kT2, kX, LockMode::kShared), LockResult::kGranted);
}

// --------------------------------------------------------------------------
// Lock points
// --------------------------------------------------------------------------

TEST(LockManagerTest, LockPointAdvancesWithGrants) {
  LockManager lm;
  EXPECT_FALSE(lm.LockPoint(kT1).has_value());
  lm.Acquire(kT1, kX, LockMode::kShared);
  auto p1 = lm.LockPoint(kT1);
  ASSERT_TRUE(p1.has_value());
  lm.Acquire(kT1, kY, LockMode::kShared);
  auto p2 = lm.LockPoint(kT1);
  ASSERT_TRUE(p2.has_value());
  EXPECT_GT(*p2, *p1);
}

TEST(LockManagerTest, LockPointOrderMatchesGrantOrderAcrossTxns) {
  LockManager lm;
  lm.Acquire(kT1, kX, LockMode::kExclusive);
  lm.Acquire(kT2, kY, LockMode::kExclusive);
  EXPECT_LT(*lm.LockPoint(kT1), *lm.LockPoint(kT2));
}

TEST(LockManagerTest, DelayedGrantCountsAsLaterLockPoint) {
  LockManager lm;
  lm.Acquire(kT1, kX, LockMode::kExclusive);
  lm.Acquire(kT2, kX, LockMode::kExclusive);  // Waits.
  lm.Acquire(kT3, kY, LockMode::kExclusive);
  lm.ReleaseAll(kT1);  // Grants T2 now.
  ASSERT_TRUE(lm.LockPoint(kT2).has_value());
  EXPECT_GT(*lm.LockPoint(kT2), *lm.LockPoint(kT3));
}

}  // namespace
}  // namespace mdbs::lcc
