// Thread-sanitizer stress: every scheme of the paper, all seven local
// protocols mixed, 8 global client threads + 2 local client threads per
// site + a crash injector thread, all hammering one Mdbs through real
// strands. The test has two oracles:
//   - TSan (the `tsan` preset builds this with -fsanitize=thread): any
//     data race in the strands, the gateway, the auditor or the recorder
//     fails the run;
//   - the audit subsystem: scheme discipline and lock-table invariants are
//     checked inline (fail-fast aborts at the faulty event), and the
//     end-of-run oracle replays the recorded real interleaving through the
//     serializability checkers.
// Labeled `stress` (not tier1): minutes under TSan, not milliseconds.
#include <gtest/gtest.h>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

MdbsConfig StressSystem(SchemeKind scheme, uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic,
       ProtocolKind::kMultiversionTO, ProtocolKind::kTwoPhaseLockingWoundWait,
       ProtocolKind::kTwoPhaseLockingWaitDie},
      scheme);
  config.seed = seed;
  config.threaded = true;
  return config;
}

DriverConfig StressWorkload() {
  DriverConfig config;
  config.global_clients = 8;
  config.local_clients_per_site = 2;  // 8 + 7*2 + injector = 23 threads.
  config.target_global_commits = 60;
  config.global_workload.items_per_site = 20;  // Hot items: real conflicts.
  config.global_workload.dav_min = 2;
  config.global_workload.dav_max = 3;
  config.local_workload.items_per_site = 20;
  config.crash_interval = 1000;  // Crash a site roughly every millisecond.
  config.crash_duration = 1000;
  return config;
}

class ThreadedStress : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ThreadedStress,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme2, SchemeKind::kScheme3),
    [](const ::testing::TestParamInfo<SchemeKind>& info) {
      return gtm::SchemeKindName(info.param);
    });

TEST_P(ThreadedStress, MixedProtocolsWithCrashesStayCleanUnderRealThreads) {
  uint64_t seed = 100 + static_cast<uint64_t>(GetParam());
  Mdbs system(StressSystem(GetParam(), seed));
  DriverConfig workload = StressWorkload();
  DriverReport report = RunThreadedDriver(&system, workload, seed);

  // Crashes make individual global transactions fail (attempts exhausted,
  // partial commits at the OCC site), and the crash injector runs on real
  // time while transaction progress slows ~10x under TSan — committed
  // counts are timing-dependent (Scheme 0, fully serial, commits
  // single-digit numbers under TSan with 1ms crash cadence). Assert the
  // run reaches the target of *finished* transactions and that commits
  // happen at all; the serializability oracles below are the substance.
  EXPECT_GE(report.global_committed + report.global_failed,
            workload.target_global_commits);
  EXPECT_GT(report.global_committed, 0);
  EXPECT_GT(report.local_committed, 0);
  EXPECT_GE(report.crashes, 1) << "crash injector never fired";

  // The inline auditors (scheme discipline, ser graph, lock tables) and the
  // end-of-run oracle all went through concurrent code paths; fail-fast
  // would have aborted mid-run, but assert the verdict explicitly so a
  // non-fail-fast configuration still fails here.
  EXPECT_TRUE(system.auditor().clean());
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

// Back-to-back runs against fresh systems: strand startup/shutdown (worker
// join, quiescence sweep, stale-timer discard) is exercised repeatedly —
// the classic place for shutdown races.
TEST(ThreadedStressLifecycle, RepeatedRunsStartAndStopCleanly) {
  for (int round = 0; round < 3; ++round) {
    Mdbs system(StressSystem(SchemeKind::kScheme2, 7 + round));
    DriverConfig workload = StressWorkload();
    workload.target_global_commits = 15;
    DriverReport report = RunThreadedDriver(&system, workload, 7 + round);
    EXPECT_GE(report.global_committed + report.global_failed, 15);
    EXPECT_TRUE(system.auditor().clean());
  }
}

}  // namespace
}  // namespace mdbs
