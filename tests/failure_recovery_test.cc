// Failure-aware GTM paths: site-down declarations from the health monitor,
// quarantine parking/unparking, park timeouts, and full crash-sweep runs in
// both engines. The crash-during-WAIT tests disable the attempt timeout so
// that only the failure detector can rescue a stranded global transaction —
// RunUntilIdle returning at all is the no-hang proof.
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

const SiteId kS0{0};
const SiteId kS1{1};
const DataItemId kX{1};
const DataItemId kY{2};

class FailureRecoveryTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, FailureRecoveryTest,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme2, SchemeKind::kScheme3),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

// A local transaction holds a write lock, so the first global blocks at the
// site and the second waits behind it in the GTM. The site then crashes for
// longer than the down threshold: the monitor declares it down, affected
// attempts abort, the jobs park on the quarantine, and recovery unparks
// them. With attempt_timeout disabled, nothing else can rescue them.
TEST_P(FailureRecoveryTest, CrashDuringWaitParksAndRecovers) {
  MdbsConfig config =
      MdbsConfig::Uniform(2, ProtocolKind::kTwoPhaseLocking, GetParam());
  config.gtm.attempt_timeout = 0;
  config.gtm.retry_backoff = 100;
  config.health.probe_interval = 100;
  config.health.suspect_after = 200;
  config.health.down_after = 400;
  ASSERT_TRUE(config.fault_plan.Empty());
  config.fault_plan.crashes.push_back(fault::CrashEvent{kS0, 300, 2500});
  Mdbs system(config);

  // The lock holder: a local write on X at site 0, never committed; the
  // crash aborts it.
  StatusOr<TxnId> lock_holder = system.BeginLocal(kS0);
  ASSERT_TRUE(lock_holder.ok());
  Status holder_status = Status::Internal("pending");
  system.site(kS0).Submit(*lock_holder, DataOp::Write(kX, 7),
                          [&](const Status& s, int64_t) { holder_status = s; });

  auto two_site_spec = []() {
    gtm::GlobalTxnSpec spec;
    spec.ops.push_back(gtm::GlobalOp::Write(kS0, kX, 1));
    spec.ops.push_back(gtm::GlobalOp::Write(kS1, kY, 2));
    return spec;
  };
  gtm::GlobalTxnResult g1, g2, g3;
  system.gtm().Submit(two_site_spec(),
                      [&](const gtm::GlobalTxnResult& r) { g1 = r; });
  system.gtm().Submit(two_site_spec(),
                      [&](const gtm::GlobalTxnResult& r) { g2 = r; });
  // Submitted while site 0 is already quarantined: must park immediately
  // instead of burning attempts against a dead site.
  system.loop().Schedule(900, [&] {
    system.gtm().Submit(two_site_spec(),
                        [&](const gtm::GlobalTxnResult& r) { g3 = r; });
  });

  system.RunUntilIdle();  // Returning at all proves nothing hung.

  EXPECT_TRUE(g1.status.ok()) << g1.status;
  EXPECT_TRUE(g2.status.ok()) << g2.status;
  EXPECT_TRUE(g3.status.ok()) << g3.status;
  EXPECT_GT(g1.attempts, 1) << "the crash should have cost G1 an attempt";
  EXPECT_EQ(system.gtm().InFlight(), 0);
  EXPECT_EQ(system.gtm().ParkedJobs(), 0);
  EXPECT_FALSE(system.gtm().IsQuarantined(kS0));
  const gtm::Gtm1Stats stats = system.gtm().stats();
  EXPECT_GE(stats.parked, 3) << "all three globals should have parked";
  EXPECT_EQ(stats.unparked, stats.parked);
  EXPECT_EQ(stats.park_timeouts, 0);
  EXPECT_FALSE(holder_status.ok() && system.site(kS0).IsActive(*lock_holder))
      << "the crash should have aborted the local lock holder";
  EXPECT_TRUE(system.RunAuditOracle().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

// The durable variant of the park-and-recover path: a committed write must
// survive the crash (volatile state demonstrably dies with the site — the
// store reads 0 mid-crash), and the first post-recovery readers — both a
// global transaction routed through the GTM and a direct peek — must
// observe it again. The parked-global bookkeeping must be untouched by
// replay.
TEST_P(FailureRecoveryTest, DurableCrashRestoresCommittedWritesForReaders) {
  const DataItemId kZ{9};  // Never touched by the global specs below.
  MdbsConfig config =
      MdbsConfig::Uniform(2, ProtocolKind::kTwoPhaseLocking, GetParam());
  config.gtm.attempt_timeout = 0;
  config.gtm.retry_backoff = 100;
  config.health.probe_interval = 100;
  config.health.suspect_after = 200;
  config.health.down_after = 400;
  config.fault_plan.crashes.push_back(fault::CrashEvent{kS0, 300, 2500});
  for (site::SiteConfig& site : config.sites) {
    site.durable = true;
    site.checkpoint_interval = 4;
  }
  Mdbs system(config);

  // Committed before the crash: must be durable.
  StatusOr<TxnId> writer = system.BeginLocal(kS0);
  ASSERT_TRUE(writer.ok());
  system.site(kS0).Submit(*writer, DataOp::Write(kZ, 99),
                          [](const Status&, int64_t) {});
  Status committed = Status::Internal("pending");
  system.site(kS0).Commit(*writer, [&](const Status& s) { committed = s; });

  // Uncommitted at the crash: the lock holder must be rolled back.
  StatusOr<TxnId> lock_holder = system.BeginLocal(kS0);
  ASSERT_TRUE(lock_holder.ok());
  system.site(kS0).Submit(*lock_holder, DataOp::Write(kX, 7),
                          [](const Status&, int64_t) {});

  gtm::GlobalTxnResult g1;
  gtm::GlobalTxnSpec spec;
  spec.ops.push_back(gtm::GlobalOp::Write(kS0, kX, 1));
  spec.ops.push_back(gtm::GlobalOp::Write(kS1, kY, 2));
  system.gtm().Submit(std::move(spec),
                      [&](const gtm::GlobalTxnResult& r) { g1 = r; });

  // Mid-crash probe: the volatile store is gone until replay rebuilds it.
  bool probed_down = false;
  system.loop().Schedule(1000, [&] {
    probed_down = system.site(kS0).IsDown();
    EXPECT_TRUE(probed_down) << "probe landed outside the crash window";
    EXPECT_EQ(system.site(kS0).UnsafePeek(kZ), 0)
        << "the crash left volatile state behind";
  });
  system.RunUntilIdle();

  ASSERT_TRUE(committed.ok()) << committed;
  ASSERT_TRUE(probed_down);
  EXPECT_TRUE(g1.status.ok()) << g1.status;
  const site::SiteDurabilityStats stats =
      system.site(kS0).durability_stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_GT(stats.replay_records, 0);
  EXPECT_EQ(system.site(kS0).UnsafePeek(kZ), 99)
      << "recovery lost a pre-crash committed write";
  EXPECT_EQ(system.site(kS0).UnsafePeek(kX), 1)
      << "the parked global's write should land after recovery";
  EXPECT_FALSE(system.site(kS0).IsActive(*lock_holder));

  // A fresh global read — the first post-recovery transaction a client
  // would actually run — must observe the pre-crash committed value.
  gtm::GlobalTxnSpec read_spec;
  read_spec.ops.push_back(gtm::GlobalOp::Read(kS0, kZ));
  gtm::GlobalTxnResult reader;
  system.gtm().Submit(std::move(read_spec),
                      [&](const gtm::GlobalTxnResult& r) { reader = r; });
  system.RunUntilIdle();
  ASSERT_TRUE(reader.status.ok()) << reader.status;
  EXPECT_EQ(reader.reads.at({kS0, kZ}), 99);
  EXPECT_TRUE(system.RunAuditOracle().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

// A site that stays down past quarantine_park_timeout must fail the parked
// job back to the client (retry-safe, so a driver may resubmit) instead of
// holding it forever.
TEST(FailureRecoveryTimeoutTest, ParkTimeoutFailsJobBack) {
  MdbsConfig config = MdbsConfig::Uniform(
      1, ProtocolKind::kTwoPhaseLocking, SchemeKind::kScheme3);
  config.gtm.attempt_timeout = 0;
  config.gtm.retry_backoff = 100;
  config.gtm.quarantine_park_timeout = 300;
  config.health.probe_interval = 100;
  config.health.suspect_after = 200;
  config.health.down_after = 400;
  config.fault_plan.crashes.push_back(fault::CrashEvent{kS0, 50, 20'000});
  Mdbs system(config);

  gtm::GlobalTxnResult result;
  bool done = false;
  system.loop().Schedule(100, [&] {
    gtm::GlobalTxnSpec spec;
    spec.ops.push_back(gtm::GlobalOp::Write(kS0, kX, 1));
    system.gtm().Submit(std::move(spec), [&](const gtm::GlobalTxnResult& r) {
      result = r;
      done = true;
    });
  });
  system.RunUntilIdle();

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.status.IsTransactionAborted()) << result.status;
  EXPECT_TRUE(result.retry_safe);
  const gtm::Gtm1Stats stats = system.gtm().stats();
  EXPECT_EQ(stats.park_timeouts, 1);
  EXPECT_EQ(stats.parked, 1);
  EXPECT_EQ(stats.failed, 1);
  EXPECT_EQ(system.gtm().InFlight(), 0);
  EXPECT_TRUE(system.gtm().IsQuarantined(kS0))
      << "nothing lifted the quarantine; the site never answered";
}

// Every site crashes mid-run (a full sweep) while the network loses,
// duplicates and delays messages; the driver's retry layer resubmits
// retry-safe failures. The run must finish, mostly commit, and stay
// globally serializable under every scheme.
TEST_P(FailureRecoveryTest, CrashSweepAllSitesFinishesSerializably) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      GetParam());
  config.seed = 11;
  config.gtm.retry_backoff = 200;
  config.gtm.attempt_timeout = 10'000;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  fault::FaultPlan plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/3, /*first_at=*/2000, /*gap=*/4000, /*duration=*/2500);
  plan.request_loss = 0.02;
  plan.response_loss = 0.02;
  plan.duplicate = 0.02;
  plan.delay_spike = 0.05;
  plan.spike_ticks = 100;
  plan.seed = 5;
  config.fault_plan = plan;
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 50;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  driver.retry.max_resubmissions = 3;
  driver.retry.backoff = 500;
  DriverReport report = RunDriver(&system, driver, 11);

  EXPECT_EQ(report.faults.plan_crashes, 3) << "every site must crash once";
  EXPECT_GE(report.global_committed, 30);
  EXPECT_GE(report.global_committed + report.global_failed, 50);
  EXPECT_EQ(system.gtm().InFlight(), 0);
  EXPECT_EQ(system.gtm().ParkedJobs(), 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_TRUE(system.CheckStrictness().ok());
}

// Same acceptance shape on the threaded engine: real strands, real clocks,
// plan crashes armed on the site strands. RunThreadedDriver returning (all
// clients joined, strands quiesced) is the no-hang proof.
TEST_P(FailureRecoveryTest, ThreadedCrashSweepFinishesSerializably) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      GetParam());
  config.threaded = true;
  config.seed = 23;
  config.gtm.retry_backoff = 300;
  config.gtm.attempt_timeout = 50'000;
  config.health.probe_interval = 400;
  config.health.suspect_after = 1000;
  config.health.down_after = 2000;
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/3, /*first_at=*/8000, /*gap=*/12'000,
      /*duration=*/5000);
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 30;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  driver.retry.max_resubmissions = 2;
  driver.retry.backoff = 500;
  DriverReport report = RunThreadedDriver(&system, driver, 23);

  EXPECT_GE(report.global_committed + report.global_failed, 30);
  EXPECT_GE(report.global_committed, 15);
  EXPECT_GE(report.faults.plan_crashes, 1)
      << "the run outlived no crash window at all";
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

// Duplicate delivery must be absorbed by the receiver-side dedup guard:
// every injected duplicate is suppressed, and the committed projection is
// unaffected.
TEST(FaultDeliveryTest, DuplicatesNeverDoubleApply) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering},
      SchemeKind::kScheme3);
  config.seed = 31;
  config.fault_plan.duplicate = 0.3;
  config.fault_plan.seed = 8;
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 30;
  driver.local_workload.items_per_site = 30;
  DriverReport report = RunDriver(&system, driver, 31);

  EXPECT_GT(report.faults.duplicates_injected, 0);
  EXPECT_EQ(report.faults.duplicates_suppressed,
            report.faults.duplicates_injected);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
  EXPECT_TRUE(system.CheckStrictness().ok());
}

// Request-side loss (the request never reaches the site) must be rescued by
// the attempt timeout exactly like the pre-existing response-side loss.
TEST(FaultDeliveryTest, RequestLossIsRescuedByTimeouts) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      SchemeKind::kScheme3);
  config.seed = 43;
  config.fault_plan.request_loss = 0.05;
  config.fault_plan.seed = 9;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 5;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 50;
  driver.local_workload.items_per_site = 50;
  DriverReport report = RunDriver(&system, driver, 43);

  EXPECT_GT(report.faults.requests_lost, 0) << "no request was ever lost?";
  EXPECT_GT(report.gtm1.timeouts, 0);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
  EXPECT_TRUE(system.CheckStrictness().ok());
}

}  // namespace
}  // namespace mdbs
