// Warm-standby GTM availability battery: WAL shipping, fenced failover.
//
// The headline claims under test (EXPERIMENTS E16):
//   (1) Failover unavailability is bounded by the shipping lag (the durable
//       tail the standby has not yet applied), NOT by the log length —
//       unlike PR 8's cold replay, which scans the whole log from the last
//       checkpoint.
//   (2) Zero committed-transaction loss: every commit acknowledged to a
//       client before the crash stays committed after the promotion.
//   (3) No split brain: every post-failover response carries the new
//       fencing epoch, the fenced old primary cannot recover, and frames
//       the dead primary shipped in its final strand turns are discarded
//       and counted.
//   (4) The serializability battery stays green across Schemes 0-3 in both
//       engines with a failover mid-run.
#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gtm/gtm1.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"
#include "storage/log_device.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

const std::vector<ProtocolKind> kProtocols = {
    ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
    ProtocolKind::kSerializationGraph};

MdbsConfig StandbyConfig(SchemeKind scheme, uint64_t seed, sim::Time at,
                         sim::Time detection, sim::Time lag) {
  MdbsConfig config = MdbsConfig::Mixed(kProtocols, scheme);
  config.seed = seed;
  config.gtm.durable = true;
  config.gtm_standby = true;
  config.standby_lag = lag;
  fault::FaultPlan plan;
  plan.gtm_failovers.push_back(fault::GtmFailoverEvent{at, detection});
  config.fault_plan = plan;
  return config;
}

// Claim (2) + (3), simulated engine: clients submit across the failover;
// commits acknowledged before the crash stay committed, and every response
// produced after the promotion carries the bumped fencing epoch. The
// committed counter is continuous across the failover: Crash() wipes the
// primary's volatile stats, and Promote() restores them on the standby
// from the durable log analysis — so the promoted instance's tally covers
// pre-crash and post-promotion commits alike and must equal the
// client-observed total exactly.
TEST(GtmFailoverTest, NothingCommittedIsLostAndEpochBumpsOnEveryResponse) {
  constexpr sim::Time kCrashAt = 600000;  // mid-run: commits span ~1.5Mtk
  MdbsConfig config = StandbyConfig(SchemeKind::kScheme3, 11, kCrashAt,
                                    /*detection=*/1500, /*lag=*/25);
  Mdbs system(config);
  // Sample the primary's own commit tally one tick before it dies; Crash()
  // wipes it, so this is the only window where it is observable.
  int64_t committed_before_crash = -1;
  system.loop().Schedule(kCrashAt - 1, [&]() {
    committed_before_crash = system.primary_gtm().stats().committed;
  });
  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 20;
  driver.local_workload.items_per_site = 20;
  driver.retry.max_resubmissions = 3;
  DriverReport report = RunDriver(&system, driver, 11);

  gtm::GtmStandbyStats standby = system.gtm_standby_stats();
  ASSERT_EQ(standby.promotions, 1);
  EXPECT_EQ(standby.fencing_epoch, 1);
  // The promoted standby is the active GTM; the old primary stays down.
  EXPECT_EQ(&system.gtm(), system.standby_gtm());
  EXPECT_TRUE(system.primary_gtm().IsDown());

  // Zero committed loss: the continuous commit counter equals the
  // client-side tally — nothing acknowledged pre-crash was re-run or
  // undone, and nothing committed post-promotion went unacknowledged.
  EXPECT_EQ(report.global_committed, system.gtm().stats().committed);
  EXPECT_GT(committed_before_crash, 0)
      << "no commits before the crash: the crash point is too early to "
         "exercise loss";
  EXPECT_GT(system.gtm().stats().committed, committed_before_crash)
      << "no commits after the promotion: the run ended too early";
  EXPECT_TRUE(system.CheckGloballySerializable().ok());

  // Every result the promoted standby produces carries epoch 1. Submit one
  // more transaction directly to make the check airtight.
  gtm::GlobalTxnSpec spec;
  spec.ops.push_back(gtm::GlobalOp::Write(SiteId(0), DataItemId(1), 7));
  spec.ops.push_back(gtm::GlobalOp::Read(SiteId(1), DataItemId(2)));
  int done = 0;
  system.SubmitGlobal(spec, [&](const gtm::GlobalTxnResult& result) {
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.gtm_epoch, 1);
    ++done;
  });
  system.RunUntilIdle();
  EXPECT_EQ(done, 1);
}

// Claim (1), the E16 mechanism: with the same workload and crash point, a
// warm-standby promotion charges modeled recovery time proportional to the
// unshipped WAL tail, while PR 8's cold replay scans the entire log (no
// checkpoints here, to make the contrast exact). The promotion must be at
// least 5x cheaper.
TEST(GtmFailoverTest, UnavailabilityBoundedByShippingLagNotLogLength) {
  constexpr sim::Time kPerRecord = 5;
  constexpr sim::Time kBase = 100;
  constexpr sim::Time kCrashAt = 800000;  // mid-run: a long log exists
  constexpr sim::Time kDetection = 1000;
  auto drive = [](Mdbs* system) {
    DriverConfig driver;
    driver.global_clients = 6;
    driver.local_clients_per_site = 0;
    driver.target_global_commits = 80;
    driver.global_workload.items_per_site = 30;
    driver.retry.max_resubmissions = 3;
    return RunDriver(system, driver, 31);
  };

  // Cold replay: gtm_crash against a durable, checkpoint-free GTM.
  MdbsConfig cold_config = MdbsConfig::Mixed(kProtocols, SchemeKind::kScheme3);
  cold_config.seed = 31;
  cold_config.gtm.durable = true;
  cold_config.gtm.checkpoint_interval = 0;  // replay from the log head
  cold_config.gtm.recovery_base_time = kBase;
  cold_config.gtm.recovery_time_per_record = kPerRecord;
  fault::FaultPlan cold_plan;
  cold_plan.gtm_crashes.push_back(
      fault::GtmCrashEvent{kCrashAt, kDetection});
  cold_config.fault_plan = cold_plan;
  Mdbs cold(cold_config);
  drive(&cold);
  gtm::GtmDurabilityStats cold_stats = cold.gtm_durability_stats();
  ASSERT_EQ(cold_stats.recoveries, 1);
  ASSERT_GT(cold_stats.replayed_records, 0);

  // Warm standby: same workload, same crash point, same modeled costs.
  MdbsConfig warm_config =
      StandbyConfig(SchemeKind::kScheme3, 31, kCrashAt, kDetection,
                    /*lag=*/10);
  warm_config.gtm.checkpoint_interval = 0;
  warm_config.gtm.recovery_base_time = kBase;
  warm_config.gtm.recovery_time_per_record = kPerRecord;
  Mdbs warm(warm_config);
  drive(&warm);
  gtm::GtmStandbyStats standby = warm.gtm_standby_stats();
  ASSERT_EQ(standby.promotions, 1);
  gtm::GtmDurabilityStats warm_stats = warm.gtm_durability_stats();

  // The promotion replayed only the unshipped tail; cold replay scanned the
  // whole log. The tail is bounded by the frames in flight during one
  // shipping delay, not by how long the run had been going.
  EXPECT_EQ(warm_stats.replayed_records, standby.lag_records);
  EXPECT_LT(standby.lag_records, cold_stats.replayed_records / 5)
      << "the standby's tail should be a small fraction of the full log";
  EXPECT_LE(5 * warm_stats.recovery_ticks, cold_stats.recovery_ticks)
      << "failover unavailability must be >=5x shorter than cold replay "
         "(warm "
      << warm_stats.recovery_ticks << " ticks vs cold "
      << cold_stats.recovery_ticks << " ticks)";
}

// Claim (3), fencing: after the promotion the old primary's Recover() is
// refused (it no longer holds the epoch), and WAL frames it shipped in its
// final turns — still in flight across the modeled network when the
// standby took over — are discarded and counted, never applied.
TEST(GtmFailoverTest, FencedOldPrimaryCannotRecoverAndLateFramesDrop) {
  // The workload logs in lockstep bursts roughly every 200k ticks, so a
  // shipping lag above the burst period guarantees the latest burst is
  // still in flight — durable but unapplied — whenever the crash lands,
  // and the detection delay far below the lag guarantees those frames
  // arrive only after the promotion.
  MdbsConfig config = StandbyConfig(SchemeKind::kScheme2, 17, /*at=*/600000,
                                    /*detection=*/500, /*lag=*/250000);
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 5;
  driver.local_clients_per_site = 0;
  driver.target_global_commits = 50;
  driver.global_workload.items_per_site = 20;
  driver.retry.max_resubmissions = 3;
  RunDriver(&system, driver, 17);

  gtm::GtmStandbyStats standby = system.gtm_standby_stats();
  ASSERT_EQ(standby.promotions, 1);
  EXPECT_GT(standby.dropped_frames, 0)
      << "with lag >> detection delay, some shipped frames must arrive "
         "after the promotion and be discarded";
  EXPECT_GT(standby.lag_records, 0)
      << "the promotion should have had a durable tail to read back";

  // The fenced old primary refuses to recover: it lost the epoch.
  ASSERT_TRUE(system.primary_gtm().IsDown());
  int64_t rejections_before = system.gtm_standby_stats().stale_rejections;
  system.primary_gtm().Recover({});
  system.RunUntilIdle();
  EXPECT_TRUE(system.primary_gtm().IsDown())
      << "a fenced GTM must stay dead — recovering it would be split brain";
  EXPECT_EQ(system.gtm_standby_stats().stale_rejections,
            rejections_before + 1);
  EXPECT_EQ(&system.gtm(), system.standby_gtm());
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

// Claim (4): the serializability battery stays green with a mid-run
// failover, across Schemes 0-3 and both engines.
class GtmFailoverSrBatteryTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    SchemesAndEngines, GtmFailoverSrBatteryTest,
    ::testing::Combine(::testing::Values(SchemeKind::kScheme0,
                                         SchemeKind::kScheme1,
                                         SchemeKind::kScheme2,
                                         SchemeKind::kScheme3),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_Threaded" : "_Sim");
    });

TEST_P(GtmFailoverSrBatteryTest, StaysSerializableAcrossFailover) {
  const SchemeKind scheme = std::get<0>(GetParam());
  const bool threaded = std::get<1>(GetParam());
  MdbsConfig config = StandbyConfig(scheme, 29, /*at=*/50000,
                                    /*detection=*/1200, /*lag=*/30);
  config.threaded = threaded;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 5;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 20;
  driver.local_workload.items_per_site = 20;
  driver.retry.max_resubmissions = 3;
  DriverReport report = threaded ? RunThreadedDriver(&system, driver, 29)
                                 : RunDriver(&system, driver, 29);

  EXPECT_GE(report.global_committed, driver.target_global_commits);
  EXPECT_EQ(report.gtm_standby.promotions, 1);
  EXPECT_EQ(report.gtm_standby.fencing_epoch, 1);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
  EXPECT_TRUE(system.CheckStrictness().ok());
}

// The standby continuously mirrors the primary: in a quiescent moment the
// shadow applied everything shipped, and the shipped stream is exactly the
// primary's durable log.
TEST(GtmFailoverTest, StandbyShadowKeepsUpWithThePrimary) {
  auto device = std::make_shared<storage::MemLogDevice>();
  MdbsConfig config = MdbsConfig::Mixed(kProtocols, SchemeKind::kScheme3);
  config.seed = 41;
  config.gtm.durable = true;
  config.gtm.wal_device = device;
  config.gtm_standby = true;
  config.standby_lag = 15;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 0;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 20;
  RunDriver(&system, driver, 41);

  gtm::GtmStandbyStats standby = system.gtm_standby_stats();
  EXPECT_EQ(standby.promotions, 0);
  EXPECT_GT(standby.shipped_records, 0);
  // Quiescent: everything shipped has been applied, nothing dropped.
  EXPECT_EQ(standby.applied_records, standby.shipped_records);
  EXPECT_EQ(standby.applied_bytes, standby.shipped_bytes);
  EXPECT_EQ(standby.dropped_frames, 0);
  // The shipped stream is the durable log, record for record.
  gtm::GtmDurabilityStats primary = system.primary_gtm().durability_stats();
  EXPECT_EQ(standby.shipped_records, primary.wal_records);
  EXPECT_EQ(standby.shipped_bytes, primary.wal_bytes);
}

}  // namespace
}  // namespace mdbs
