#include <gtest/gtest.h>

#include "common/rng.h"
#include "gtm/tsg.h"
#include "gtm/tsgd.h"

namespace mdbs::gtm {
namespace {

const GlobalTxnId kG1{1};
const GlobalTxnId kG2{2};
const GlobalTxnId kG3{3};
const GlobalTxnId kG4{4};
const SiteId kA{0};
const SiteId kB{1};
const SiteId kC{2};

// --------------------------------------------------------------------------
// TransactionSiteGraph (Scheme 1)
// --------------------------------------------------------------------------

TEST(TsgTest, InsertAndRemove) {
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  EXPECT_TRUE(tsg.HasTxn(kG1));
  EXPECT_EQ(tsg.EdgeCount(), 2u);
  EXPECT_EQ(tsg.SitesOf(kG1).size(), 2u);
  tsg.RemoveTxn(kG1);
  EXPECT_FALSE(tsg.HasTxn(kG1));
  EXPECT_EQ(tsg.EdgeCount(), 0u);
  EXPECT_EQ(tsg.SiteCount(), 0u);
}

TEST(TsgTest, SingleTxnHasNoCycle) {
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  EXPECT_FALSE(tsg.EdgeOnCycle(kG1, kA, nullptr));
  EXPECT_FALSE(tsg.EdgeOnCycle(kG1, kB, nullptr));
}

TEST(TsgTest, TwoTxnsSharingTwoSitesFormCycle) {
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  tsg.InsertTxn(kG2, {kA, kB});
  // Cycle G1 - A - G2 - B - G1: all four edges lie on it.
  EXPECT_TRUE(tsg.EdgeOnCycle(kG1, kA, nullptr));
  EXPECT_TRUE(tsg.EdgeOnCycle(kG1, kB, nullptr));
  EXPECT_TRUE(tsg.EdgeOnCycle(kG2, kA, nullptr));
  EXPECT_TRUE(tsg.EdgeOnCycle(kG2, kB, nullptr));
}

TEST(TsgTest, SharingOneSiteIsAcyclic) {
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  tsg.InsertTxn(kG2, {kB, kC});
  EXPECT_FALSE(tsg.EdgeOnCycle(kG2, kB, nullptr));
  EXPECT_FALSE(tsg.EdgeOnCycle(kG2, kC, nullptr));
}

TEST(TsgTest, TriangleThroughThreeTxns) {
  // G1: {A,B}, G2: {B,C}, G3: {C,A} — cycle through all three.
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  tsg.InsertTxn(kG2, {kB, kC});
  tsg.InsertTxn(kG3, {kC, kA});
  EXPECT_TRUE(tsg.EdgeOnCycle(kG3, kC, nullptr));
  EXPECT_TRUE(tsg.EdgeOnCycle(kG3, kA, nullptr));
  EXPECT_TRUE(tsg.EdgeOnCycle(kG1, kA, nullptr));
}

TEST(TsgTest, EdgeNotOnCycleWhenBranchOnly) {
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  tsg.InsertTxn(kG2, {kA, kB, kC});
  // Edges at A and B are on the cycle; the C edge is a dead-end branch.
  EXPECT_TRUE(tsg.EdgeOnCycle(kG2, kA, nullptr));
  EXPECT_FALSE(tsg.EdgeOnCycle(kG2, kC, nullptr));
}

TEST(TsgTest, StepsAreCounted) {
  TransactionSiteGraph tsg;
  tsg.InsertTxn(kG1, {kA, kB});
  tsg.InsertTxn(kG2, {kA, kB});
  int64_t steps = 0;
  tsg.EdgeOnCycle(kG1, kA, &steps);
  EXPECT_GT(steps, 0);
}

// --------------------------------------------------------------------------
// TSGD (Scheme 2) — dependency semantics
// --------------------------------------------------------------------------

TEST(TsgdTest, DependencyBookkeeping) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA});
  tsgd.InsertTxn(kG2, {kA});
  tsgd.AddDependency(kA, kG1, kG2);
  EXPECT_TRUE(tsgd.HasDependency(kA, kG1, kG2));
  EXPECT_FALSE(tsgd.HasDependency(kA, kG2, kG1));
  EXPECT_TRUE(tsgd.HasDependenciesInto(kG2, kA));
  EXPECT_FALSE(tsgd.HasDependenciesInto(kG1, kA));
  ASSERT_EQ(tsgd.DependenciesInto(kG2, kA).size(), 1u);
  EXPECT_EQ(tsgd.DependenciesInto(kG2, kA)[0], kG1);
  EXPECT_EQ(tsgd.DependencyCount(), 1u);
}

TEST(TsgdTest, RemoveTxnDropsDependenciesBothDirections) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA});
  tsgd.InsertTxn(kG2, {kA});
  tsgd.InsertTxn(kG3, {kA});
  tsgd.AddDependency(kA, kG1, kG2);
  tsgd.AddDependency(kA, kG2, kG3);
  tsgd.RemoveTxn(kG2);
  EXPECT_EQ(tsgd.DependencyCount(), 0u);
  EXPECT_FALSE(tsgd.HasDependenciesInto(kG3, kA));
  EXPECT_FALSE(tsgd.HasTxn(kG2));
}

TEST(TsgdTest, NoDependenciesMeansGraphCycleIsTsgdCycle) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG1));
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG2));
}

TEST(TsgdTest, OneDependencyBreaksOneOrientationOnly) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  // Committing G1 before G2 at A blocks the orientation G2 -> A -> G1 but
  // the cycle remains realizable the other way (G1 before G2 at A, G2
  // before G1 at B).
  tsgd.AddDependency(kA, kG1, kG2);
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG1));
}

TEST(TsgdTest, ConsistentDependenciesEliminateCycle) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  // G1 before G2 at both junctions: only a consistent serialization
  // remains; no TSGD cycle.
  tsgd.AddDependency(kA, kG1, kG2);
  tsgd.AddDependency(kB, kG1, kG2);
  EXPECT_FALSE(tsgd.HasCycleInvolving(kG1));
  EXPECT_FALSE(tsgd.HasCycleInvolving(kG2));
}

TEST(TsgdTest, InconsistentCrossSiteDependenciesRealizeCycle) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  // G1 before G2 at A and G2 before G1 at B is exactly a serialization
  // cycle: the orientation G1 -> A -> G2 -> B -> G1 is opposed by no
  // dependency (both *support* it). The checker must report it. Scheme 2
  // never reaches this state — Eliminate_Cycles blocks one orientation
  // before the other can be committed.
  tsgd.AddDependency(kA, kG1, kG2);
  tsgd.AddDependency(kB, kG2, kG1);
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG1));
}

TEST(TsgdTest, ThreeTxnTriangleCycle) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kB, kC});
  tsgd.InsertTxn(kG3, {kC, kA});
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG1));
  // Break it at one junction per orientation.
  tsgd.AddDependency(kB, kG1, kG2);
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG1));  // Reverse orientation remains.
  tsgd.AddDependency(kC, kG2, kG3);
  tsgd.AddDependency(kA, kG3, kG1);
  // Now the remaining orientation is G1 -> G2 -> G3 consistently; wait —
  // those dependencies orient the triangle consistently, which is exactly
  // a realizable serialization ordering around the cycle... but a TSGD
  // cycle requires an orientation NOT contradicted by dependencies, and
  // traversing G1,B,G2,C,G3,A forward is contradicted by none of them?
  // No: a dependency (G1,B)->(B,G2) *supports* G1 before G2; the cycle
  // definition only forbids orientations with an opposing dependency.
  // A fully forward-supported cycle would mean ser(S) is already
  // non-serializable — Scheme 2 prevents it by construction. The checker
  // must still report it:
  EXPECT_TRUE(tsgd.HasCycleInvolving(kG1));
}

// --------------------------------------------------------------------------
// Eliminate_Cycles (Figure 4)
// --------------------------------------------------------------------------

TEST(EliminateCyclesTest, NoCycleReturnsEmptyDelta) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kB, kC});
  EXPECT_TRUE(tsgd.EliminateCycles(kG2, nullptr).empty());
}

TEST(EliminateCyclesTest, TwoTxnCycleBroken) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  std::vector<Dependency> delta = tsgd.EliminateCycles(kG2, nullptr);
  EXPECT_FALSE(delta.empty());
  for (const Dependency& dep : delta) {
    EXPECT_EQ(dep.to, kG2);  // All Δ dependencies point into the new txn.
    tsgd.AddDependency(dep.site, dep.from, dep.to);
  }
  EXPECT_FALSE(tsgd.HasCycleInvolving(kG2));
}

TEST(EliminateCyclesTest, RespectsExistingDependencies) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  // Both junctions already committed G1 before G2: no cycle remains, so
  // Δ must be empty.
  tsgd.AddDependency(kA, kG1, kG2);
  tsgd.AddDependency(kB, kG1, kG2);
  EXPECT_TRUE(tsgd.EliminateCycles(kG2, nullptr).empty());
}

TEST(EliminateCyclesTest, CountsSteps) {
  Tsgd tsgd;
  tsgd.InsertTxn(kG1, {kA, kB});
  tsgd.InsertTxn(kG2, {kA, kB});
  int64_t steps = 0;
  tsgd.EliminateCycles(kG2, &steps);
  EXPECT_GT(steps, 0);
}

// Property test: on random TSGDs, adding Δ from Eliminate_Cycles leaves no
// cycle involving the new transaction — the Scheme 2 safety invariant
// (Theorem 5 rests on it).
TEST(EliminateCyclesTest, PropertyRandomGraphsBecomeAcyclic) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    Tsgd tsgd;
    int sites = static_cast<int>(rng.NextInRange(2, 5));
    int txns = static_cast<int>(rng.NextInRange(1, 6));
    // Existing transactions with random site sets and random consistent
    // dependencies (simulate processing order at each site).
    for (int t = 0; t < txns; ++t) {
      GlobalTxnId txn{t};
      std::vector<SiteId> txn_sites;
      for (int s = 0; s < sites; ++s) {
        if (rng.NextBernoulli(0.6)) txn_sites.push_back(SiteId(s));
      }
      if (txn_sites.empty()) txn_sites.push_back(SiteId(0));
      tsgd.InsertTxn(txn, txn_sites);
    }
    // Random dependencies consistent with a random per-site execution
    // prefix (as ActSer would create them): pick a random global priority
    // and at each site add deps from a random executed prefix.
    for (int s = 0; s < sites; ++s) {
      std::vector<GlobalTxnId> at_site(tsgd.TxnsAt(SiteId(s)).begin(),
                                       tsgd.TxnsAt(SiteId(s)).end());
      rng.Shuffle(&at_site);
      size_t executed =
          at_site.empty() ? 0 : rng.NextBelow(at_site.size() + 1);
      for (size_t i = 0; i < executed; ++i) {
        for (size_t j = i + 1; j < at_site.size(); ++j) {
          tsgd.AddDependency(SiteId(s), at_site[i], at_site[j]);
        }
      }
    }
    // New transaction arrives.
    GlobalTxnId newcomer{1000};
    std::vector<SiteId> newcomer_sites;
    for (int s = 0; s < sites; ++s) {
      if (rng.NextBernoulli(0.7)) newcomer_sites.push_back(SiteId(s));
    }
    if (newcomer_sites.empty()) newcomer_sites.push_back(SiteId(0));
    tsgd.InsertTxn(newcomer, newcomer_sites);

    std::vector<Dependency> delta = tsgd.EliminateCycles(newcomer, nullptr);
    for (const Dependency& dep : delta) {
      EXPECT_EQ(dep.to, newcomer);
      tsgd.AddDependency(dep.site, dep.from, dep.to);
    }
    EXPECT_FALSE(tsgd.HasCycleInvolving(newcomer))
        << "trial " << trial << ": cycle survived Eliminate_Cycles";
  }
}

// Non-minimality demonstration (Theorem 7 context): Eliminate_Cycles may
// return more dependencies than strictly necessary; minimal Δ computation
// is NP-hard, so the paper accepts this.
TEST(EliminateCyclesTest, DeltaNeedNotBeMinimal) {
  Rng rng(77);
  int64_t total_delta = 0;
  int64_t trials_with_delta = 0;
  for (int trial = 0; trial < 50; ++trial) {
    Tsgd tsgd;
    for (int t = 0; t < 3; ++t) {
      tsgd.InsertTxn(GlobalTxnId(t), {kA, kB, kC});
    }
    GlobalTxnId newcomer{1000};
    tsgd.InsertTxn(newcomer, {kA, kB, kC});
    std::vector<Dependency> delta = tsgd.EliminateCycles(newcomer, nullptr);
    if (!delta.empty()) {
      ++trials_with_delta;
      total_delta += static_cast<int64_t>(delta.size());
    }
  }
  EXPECT_GT(trials_with_delta, 0);
  // Non-trivial Δ sizes occur; exact minimality is not required.
  EXPECT_GT(total_delta, trials_with_delta);
}

}  // namespace
}  // namespace mdbs::gtm
