// Unit tests for the static robustness analyzer (src/analysis): template
// language parsing, capability rows, interference-graph construction, the
// 2-copy-lift robustness decision with certificate/witness output, and
// witness checkability.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/capability.h"
#include "analysis/interference.h"
#include "analysis/robustness.h"
#include "analysis/template.h"
#include "common/rng.h"
#include "gtm/scheme.h"
#include "lcc/protocol.h"
#include "site/local_dbms.h"

namespace mdbs::analysis {
namespace {

using lcc::ProtocolKind;

std::vector<SiteCapability> Matrix(const std::vector<ProtocolKind>& kinds) {
  std::vector<site::SiteConfig> sites;
  for (size_t i = 0; i < kinds.size(); ++i) {
    site::SiteConfig config;
    config.id = SiteId(static_cast<int64_t>(i));
    config.protocol = kinds[i];
    sites.push_back(config);
  }
  return BuildCapabilityMatrix(sites);
}

TemplateMix Parse(const std::string& text) {
  StatusOr<TemplateMix> mix = ParseTemplateMix(text);
  EXPECT_TRUE(mix.ok()) << mix.status();
  return *mix;
}

// ---------------------------------------------------------------------------
// Template language.

TEST(TemplateParseTest, ParsesMixLineTemplatesAndWeights) {
  TemplateMix mix = Parse(
      "# comment\n"
      "mix keys_per_class=4 local_txns=1\n"
      "template transfer weight=3 : r0@s0 w0@s0 r1@s1 w1@s1\n"
      "\n"
      "template audit : r0@s0 r1@s1\n");
  EXPECT_EQ(mix.keys_per_class, 4);
  EXPECT_TRUE(mix.local_txns);
  ASSERT_EQ(mix.templates.size(), 2u);
  EXPECT_EQ(mix.templates[0].name, "transfer");
  EXPECT_DOUBLE_EQ(mix.templates[0].weight, 3.0);
  ASSERT_EQ(mix.templates[0].ops.size(), 4u);
  EXPECT_EQ(mix.templates[0].ops[0].type, OpType::kRead);
  EXPECT_EQ(mix.templates[0].ops[1].type, OpType::kWrite);
  EXPECT_EQ(mix.templates[0].ops[2].site, SiteId(1));
  EXPECT_EQ(mix.templates[0].ops[2].key_class, 1);
  EXPECT_EQ(mix.templates[1].name, "audit");
  EXPECT_DOUBLE_EQ(mix.templates[1].weight, 1.0);
}

TEST(TemplateParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseTemplateMix("template broken : x0@s0\n").ok());
  EXPECT_FALSE(ParseTemplateMix("template t : r0s0\n").ok());
  EXPECT_FALSE(ParseTemplateMix("template t weight=zero : r0@s0\n").ok());
  EXPECT_FALSE(ParseTemplateMix("mix keys_per_class=0\n"
                                "template t : r0@s0\n")
                   .ok());
  EXPECT_FALSE(ParseTemplateMix("template t :\n").ok());
  EXPECT_FALSE(ParseTemplateMix("").ok());  // No templates at all.
}

TEST(TemplateParseTest, TemplateSiteHelpers) {
  TemplateMix mix = Parse("template t : r0@s1 w1@s0 r2@s1\n");
  const TxnTemplate& tmpl = mix.templates[0];
  EXPECT_EQ(tmpl.Sites(), (std::vector<SiteId>{SiteId(1), SiteId(0)}));
  EXPECT_TRUE(tmpl.TouchesSite(SiteId(0)));
  EXPECT_FALSE(tmpl.TouchesSite(SiteId(2)));
  EXPECT_TRUE(tmpl.ReadOnlyAt(SiteId(1)));
  EXPECT_FALSE(tmpl.ReadOnlyAt(SiteId(0)));
}

TEST(TemplateInstantiateTest, DrawsItemsInsideKeyClassRanges) {
  TemplateMix mix = Parse(
      "mix keys_per_class=8\n"
      "template t : r2@s0 w5@s1\n");
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    gtm::GlobalTxnSpec spec = Instantiate(mix.templates[0], mix, &rng);
    ASSERT_EQ(spec.ops.size(), 2u);
    EXPECT_EQ(spec.ops[0].site, SiteId(0));
    EXPECT_EQ(spec.ops[0].op.type, OpType::kRead);
    EXPECT_GE(spec.ops[0].op.item.value(), 16);
    EXPECT_LT(spec.ops[0].op.item.value(), 24);
    EXPECT_EQ(spec.ops[1].site, SiteId(1));
    EXPECT_EQ(spec.ops[1].op.type, OpType::kWrite);
    EXPECT_GE(spec.ops[1].op.item.value(), 40);
    EXPECT_LT(spec.ops[1].op.item.value(), 48);
  }
}

TEST(TemplateInstantiateTest, SampleRespectsWeights) {
  TemplateMix mix = Parse(
      "template heavy weight=9 : r0@s0\n"
      "template light weight=1 : r1@s0\n");
  Rng rng(13);
  int heavy = 0;
  for (int i = 0; i < 1000; ++i) {
    if (SampleTemplate(mix, &rng) == 0) ++heavy;
  }
  EXPECT_GT(heavy, 800);
  EXPECT_LT(heavy, 980);
}

// ---------------------------------------------------------------------------
// Capability matrix.

TEST(CapabilityTest, RowsFollowProtocolKind) {
  std::vector<SiteCapability> matrix =
      Matrix({ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
              ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic,
              ProtocolKind::kMultiversionTO});
  ASSERT_EQ(matrix.size(), 5u);
  EXPECT_EQ(matrix[0].ser_point, gtm::SerPointKind::kLastOp);
  EXPECT_EQ(matrix[1].ser_point, gtm::SerPointKind::kBegin);
  EXPECT_EQ(matrix[2].ser_point, gtm::SerPointKind::kTicket);
  EXPECT_EQ(matrix[3].ser_point, gtm::SerPointKind::kTicket);
  EXPECT_TRUE(matrix[2].needs_ticket);
  EXPECT_TRUE(matrix[3].needs_ticket);
  EXPECT_FALSE(matrix[0].needs_ticket);
  EXPECT_TRUE(matrix[4].multiversion);
  for (const SiteCapability& row : matrix) {
    EXPECT_TRUE(row.certifies_csr);
    EXPECT_TRUE(row.certifies_strict);
  }
}

// ---------------------------------------------------------------------------
// Interference graph.

bool HasEdge(const InterferenceGraph& graph, size_t a, size_t b, SiteId site,
             InterferenceCause cause) {
  for (const InterferenceEdge& edge : graph.edges) {
    if (edge.a == a && edge.b == b && edge.site == site &&
        edge.cause == cause) {
      return true;
    }
  }
  return false;
}

TEST(InterferenceTest, DirectEdgesNeedSharedClassAndAWrite) {
  TemplateMix mix = Parse(
      "template writer : w0@s0\n"
      "template reader : r0@s0\n"
      "template other : r1@s0\n");
  InterferenceGraph graph =
      BuildInterferenceGraph(mix, Matrix({ProtocolKind::kTwoPhaseLocking}));
  // writer-writer (self), writer-reader share class 0 with a write.
  EXPECT_TRUE(HasEdge(graph, 0, 0, SiteId(0), InterferenceCause::kDirect));
  EXPECT_TRUE(HasEdge(graph, 0, 1, SiteId(0), InterferenceCause::kDirect));
  // reader-reader and reader-other never conflict: no write / no shared
  // class.
  EXPECT_FALSE(HasEdge(graph, 1, 1, SiteId(0), InterferenceCause::kDirect));
  EXPECT_FALSE(HasEdge(graph, 1, 2, SiteId(0), InterferenceCause::kDirect));
  EXPECT_FALSE(HasEdge(graph, 0, 2, SiteId(0), InterferenceCause::kDirect));
}

TEST(InterferenceTest, LocalTxnsAddIndirectEdges) {
  TemplateMix mix = Parse(
      "mix local_txns=1\n"
      "template a : r0@s0\n"
      "template b : r1@s0\n");
  InterferenceGraph graph =
      BuildInterferenceGraph(mix, Matrix({ProtocolKind::kTwoPhaseLocking}));
  // Disjoint read-only templates, but undeclared locals can bridge them.
  EXPECT_TRUE(HasEdge(graph, 0, 1, SiteId(0), InterferenceCause::kIndirect));
  EXPECT_TRUE(HasEdge(graph, 0, 0, SiteId(0), InterferenceCause::kIndirect));
}

TEST(InterferenceTest, TicketSitesForceTicketEdges) {
  TemplateMix mix = Parse(
      "template a : r0@s0\n"
      "template b : r1@s0\n");
  InterferenceGraph graph =
      BuildInterferenceGraph(mix, Matrix({ProtocolKind::kSerializationGraph}));
  EXPECT_TRUE(HasEdge(graph, 0, 1, SiteId(0), InterferenceCause::kTicket));
  EXPECT_TRUE(HasEdge(graph, 0, 0, SiteId(0), InterferenceCause::kTicket));
  // Same mix at a 2PL site: no ticket edges, and no direct ones either.
  InterferenceGraph no_tickets =
      BuildInterferenceGraph(mix, Matrix({ProtocolKind::kTwoPhaseLocking}));
  EXPECT_TRUE(no_tickets.edges.empty());
}

// ---------------------------------------------------------------------------
// Robustness verdicts.

TEST(RobustnessTest, SingleConflictSiteMixIsRobustWithCertificate) {
  TemplateMix mix = Parse(
      "template hot_update : r0@s0 w0@s0 r1@s1\n"
      "template hot_audit : r0@s0 w0@s0 r2@s2\n"
      "template far_report : r3@s1 r4@s2\n");
  AnalysisReport report =
      Analyze(mix, Matrix({ProtocolKind::kTimestampOrdering,
                           ProtocolKind::kTimestampOrdering,
                           ProtocolKind::kTimestampOrdering}));
  EXPECT_TRUE(report.fast_path_robust);
  EXPECT_FALSE(report.certificate.empty());
  EXPECT_FALSE(report.witness.has_value());
  for (const SchemeVerdict& verdict : report.per_scheme) {
    EXPECT_TRUE(verdict.robust) << gtm::SchemeKindName(verdict.scheme);
  }
}

TEST(RobustnessTest, CrossSiteWriteMixYieldsCheckableWitness) {
  TemplateMix mix = Parse(
      "template transfer : r0@s0 w0@s0 r1@s1 w1@s1\n"
      "template report : r0@s0 r1@s1\n");
  AnalysisReport report = Analyze(
      mix, Matrix({ProtocolKind::kTimestampOrdering,
                   ProtocolKind::kTwoPhaseLocking}));
  EXPECT_FALSE(report.fast_path_robust);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(CheckWitness(*report.witness, report.graph));
  EXPECT_GE(report.witness->Sites().size(), 2u);
}

// The counter-example that rules out any template-level bridge/articulation
// criterion: the cross-site template B only bridges the two hot writers, yet
// two concurrent B instances realize a global cycle (B2 reads at s0 after
// A's write, B1 reads at s1 before C's write, with B1 before B2 impossible
// to order consistently at TO sites). The 2-copy lift merges both copies of
// B into one mixed component, so the analyzer must say non-robust.
TEST(RobustnessTest, BridgeTemplateAcrossSitesIsNotRobust) {
  TemplateMix mix = Parse(
      "template a : w0@s0\n"
      "template b : r0@s0 r1@s1\n"
      "template c : w1@s1\n");
  AnalysisReport report =
      Analyze(mix, Matrix({ProtocolKind::kTimestampOrdering,
                           ProtocolKind::kTimestampOrdering}));
  EXPECT_FALSE(report.fast_path_robust);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(CheckWitness(*report.witness, report.graph));
}

TEST(RobustnessTest, TicketEdgesOnlyCountAgainstNoControl) {
  // Disjoint single-site writers at two SGT sites: nothing conflicts
  // directly, so dropping ser ops AND tickets is safe (schemes 0-3 robust).
  // The no-control strawman keeps injecting tickets, whose forced ww
  // conflicts span both sites — kNone must be non-robust.
  TemplateMix mix = Parse(
      "template left : w0@s0 r1@s1\n"
      "template right : r0@s0 w1@s1\n");
  AnalysisReport report =
      Analyze(mix, Matrix({ProtocolKind::kSerializationGraph,
                           ProtocolKind::kSerializationGraph}));
  // Direct edges alone already make this non-robust; use a conflict-free
  // variant instead.
  TemplateMix disjoint = Parse(
      "template left : w0@s0\n"
      "template right : w1@s1 r2@s0\n");
  report = Analyze(disjoint, Matrix({ProtocolKind::kSerializationGraph,
                                     ProtocolKind::kSerializationGraph}));
  EXPECT_TRUE(report.fast_path_robust);
  bool saw_none = false;
  for (const SchemeVerdict& verdict : report.per_scheme) {
    if (verdict.scheme == gtm::SchemeKind::kNone) {
      saw_none = true;
      EXPECT_FALSE(verdict.robust);
      ASSERT_TRUE(verdict.witness.has_value());
      EXPECT_TRUE(CheckWitness(*verdict.witness, report.graph));
    } else {
      EXPECT_TRUE(verdict.robust);
    }
  }
  EXPECT_TRUE(saw_none);
}

TEST(RobustnessTest, LocalTxnsVoidCrossSiteCertificates) {
  TemplateMix mix = Parse(
      "mix local_txns=1\n"
      "template hot_update : r0@s0 w0@s0 r1@s1\n"
      "template hot_audit : r0@s0 w0@s0 r2@s2\n");
  AnalysisReport report =
      Analyze(mix, Matrix({ProtocolKind::kTimestampOrdering,
                           ProtocolKind::kTimestampOrdering,
                           ProtocolKind::kTimestampOrdering}));
  EXPECT_FALSE(report.fast_path_robust);
  ASSERT_TRUE(report.witness.has_value());
  EXPECT_TRUE(CheckWitness(*report.witness, report.graph));
}

TEST(CheckWitnessTest, RejectsTamperedWitnesses) {
  TemplateMix mix = Parse(
      "template transfer : w0@s0 w1@s1\n"
      "template report : r0@s0 r1@s1\n");
  AnalysisReport report =
      Analyze(mix, Matrix({ProtocolKind::kTimestampOrdering,
                           ProtocolKind::kTimestampOrdering}));
  ASSERT_TRUE(report.witness.has_value());
  Witness witness = *report.witness;
  ASSERT_TRUE(CheckWitness(witness, report.graph));

  // All hops relabeled to one site: no longer a cross-site cycle.
  Witness same_site = witness;
  for (WitnessHop& hop : same_site.hops) hop.site = SiteId(0);
  EXPECT_FALSE(CheckWitness(same_site, report.graph));

  // A hop pointing at an edge the graph does not contain.
  Witness bogus_edge = witness;
  bogus_edge.hops[0].site = SiteId(99);
  EXPECT_FALSE(CheckWitness(bogus_edge, report.graph));

  // Too short to be a cycle.
  Witness short_cycle = witness;
  short_cycle.hops.resize(1);
  EXPECT_FALSE(CheckWitness(short_cycle, report.graph));
}

}  // namespace
}  // namespace mdbs::analysis
