// The discrete-event engine must stay bit-for-bit deterministic: the
// threaded engine (threaded_driver) deliberately gives up reproducibility,
// so the simulator is the only place a schedule can be replayed exactly —
// any nondeterminism creeping in (iteration-order dependence, shared
// mutable state, wall-clock reads) breaks differential debugging.
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

MdbsConfig SystemConfig(uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
      SchemeKind::kScheme3);
  config.seed = seed;
  return config;
}

DriverConfig Workload() {
  DriverConfig config;
  config.global_clients = 6;
  config.local_clients_per_site = 2;
  config.target_global_commits = 50;
  config.global_workload.items_per_site = 25;
  config.local_workload.items_per_site = 25;
  return config;
}

std::string RunOnce(uint64_t system_seed, uint64_t driver_seed) {
  Mdbs system(SystemConfig(system_seed));
  return RunDriver(&system, Workload(), driver_seed).ToString();
}

TEST(DeterminismTest, SameSeedReproducesTheReportExactly) {
  std::string first = RunOnce(7, 13);
  std::string second = RunOnce(7, 13);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, DifferentDriverSeedChangesTheRun) {
  // Guards against the opposite failure: a report that ignores the seed
  // (e.g. counters frozen at config values) would pass the test above.
  std::string first = RunOnce(7, 13);
  std::string other = RunOnce(7, 14);
  EXPECT_NE(first, other);
}

TEST(DeterminismTest, CrashInjectionStaysDeterministic) {
  DriverConfig workload = Workload();
  workload.crash_interval = 3000;
  workload.crash_duration = 1500;
  auto run = [&workload]() {
    Mdbs system(SystemConfig(21));
    return RunDriver(&system, workload, 34).ToString();
  };
  EXPECT_EQ(run(), run());
}

// The whole fault pipeline — plan crashes, request/response loss,
// duplication, delay spikes, quarantine parking and the driver's retry
// layer — must replay byte-for-byte from the same plan and seeds.
TEST(DeterminismTest, FaultPlanReplaysByteForByte) {
  auto run = []() {
    MdbsConfig config = SystemConfig(9);
    fault::FaultPlan plan = fault::FaultPlan::CrashSweep(
        /*num_sites=*/4, /*first_at=*/2000, /*gap=*/3000,
        /*duration=*/1500);
    plan.request_loss = 0.03;
    plan.response_loss = 0.03;
    plan.duplicate = 0.03;
    plan.delay_spike = 0.05;
    plan.spike_ticks = 150;
    plan.seed = 123;
    config.fault_plan = plan;
    config.gtm.attempt_timeout = 10'000;
    config.health.probe_interval = 300;
    config.health.suspect_after = 600;
    config.health.down_after = 1200;
    DriverConfig workload = Workload();
    workload.global_retry_max = 2;
    Mdbs system(config);
    return RunDriver(&system, workload, 17).ToString();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mdbs
