// The discrete-event engine must stay bit-for-bit deterministic: the
// threaded engine (threaded_driver) deliberately gives up reproducibility,
// so the simulator is the only place a schedule can be replayed exactly —
// any nondeterminism creeping in (iteration-order dependence, shared
// mutable state, wall-clock reads) breaks differential debugging.
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "obs/report.h"
#include "sim/metrics.h"
#include "storage/log_device.h"
#include "storage/recovery.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

MdbsConfig SystemConfig(uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
      SchemeKind::kScheme3);
  config.seed = seed;
  return config;
}

DriverConfig Workload() {
  DriverConfig config;
  config.global_clients = 6;
  config.local_clients_per_site = 2;
  config.target_global_commits = 50;
  config.global_workload.items_per_site = 25;
  config.local_workload.items_per_site = 25;
  return config;
}

std::string RunOnce(uint64_t system_seed, uint64_t driver_seed) {
  Mdbs system(SystemConfig(system_seed));
  return RunDriver(&system, Workload(), driver_seed).ToString();
}

TEST(DeterminismTest, SameSeedReproducesTheReportExactly) {
  std::string first = RunOnce(7, 13);
  std::string second = RunOnce(7, 13);
  EXPECT_EQ(first, second);
}

TEST(DeterminismTest, DifferentDriverSeedChangesTheRun) {
  // Guards against the opposite failure: a report that ignores the seed
  // (e.g. counters frozen at config values) would pass the test above.
  std::string first = RunOnce(7, 13);
  std::string other = RunOnce(7, 14);
  EXPECT_NE(first, other);
}

TEST(DeterminismTest, CrashInjectionStaysDeterministic) {
  DriverConfig workload = Workload();
  workload.crash_interval = 3000;
  workload.crash_duration = 1500;
  auto run = [&workload]() {
    Mdbs system(SystemConfig(21));
    return RunDriver(&system, workload, 34).ToString();
  };
  EXPECT_EQ(run(), run());
}

// The whole fault pipeline — plan crashes, request/response loss,
// duplication, delay spikes, quarantine parking and the driver's retry
// layer — must replay byte-for-byte from the same plan and seeds.
TEST(DeterminismTest, FaultPlanReplaysByteForByte) {
  auto run = []() {
    MdbsConfig config = SystemConfig(9);
    fault::FaultPlan plan = fault::FaultPlan::CrashSweep(
        /*num_sites=*/4, /*first_at=*/2000, /*gap=*/3000,
        /*duration=*/1500);
    plan.request_loss = 0.03;
    plan.response_loss = 0.03;
    plan.duplicate = 0.03;
    plan.delay_spike = 0.05;
    plan.spike_ticks = 150;
    plan.seed = 123;
    config.fault_plan = plan;
    config.gtm.attempt_timeout = 10'000;
    config.health.probe_interval = 300;
    config.health.suspect_after = 600;
    config.health.down_after = 1200;
    DriverConfig workload = Workload();
    workload.retry.max_resubmissions = 2;
    Mdbs system(config);
    return RunDriver(&system, workload, 17).ToString();
  };
  EXPECT_EQ(run(), run());
}

// Durability must not cost determinism: the same seeded run with durable
// sites, a crash plan, and tracing enabled must reproduce the full JSON
// report — counters, latency summaries, and the recovery events the crash
// plan generates — byte for byte.
TEST(DeterminismTest, DurableRecoveryReplaysTheJsonReportByteForByte) {
  if (!obs::kTraceCompiledIn) {
    GTEST_SKIP() << "tracing not compiled in (MDBS_TRACE off)";
  }
  auto run = []() {
    MdbsConfig config = SystemConfig(11);
    config.fault_plan = fault::FaultPlan::CrashSweep(
        /*num_sites=*/4, /*first_at=*/2000, /*gap=*/3000,
        /*duration=*/1500);
    config.gtm.attempt_timeout = 10'000;
    config.health.probe_interval = 300;
    config.health.suspect_after = 600;
    config.health.down_after = 1200;
    config.trace.enabled = true;
    for (site::SiteConfig& site : config.sites) {
      site.durable = true;
      site.checkpoint_interval = 48;
      site.recovery_time_per_record = 1;
    }
    DriverConfig workload = Workload();
    workload.retry.max_resubmissions = 2;
    Mdbs system(config);
    DriverReport report = RunDriver(&system, workload, 23);
    EXPECT_GT(report.durability.recoveries, 0)
        << "the crash plan never exercised recovery";

    sim::MetricsRegistry registry;
    report.AddToRegistry(&registry);
    obs::AggregateTrace(system.trace_sink()->Drain(), &registry);
    std::ostringstream json;
    obs::WriteJsonReport(json, {{"test", "durable-determinism"}}, registry);
    std::string text = json.str();
    EXPECT_NE(text.find("recover"), std::string::npos)
        << "no recovery events made it into the report";
    return text;
  };
  EXPECT_EQ(run(), run());
}

// A mid-run GTM crash — WAL replay, scheme-state reconstruction, aborted
// and forward-rolled attempts, buffered submissions — must also replay
// byte for byte from the same seeds: recovery is part of the simulated
// schedule, not an out-of-band event.
TEST(DeterminismTest, GtmCrashRecoveryReplaysByteForByte) {
  auto run = []() {
    MdbsConfig config = SystemConfig(13);
    config.gtm.durable = true;
    config.gtm.checkpoint_interval = 64;
    config.gtm.recovery_time_per_record = 2;
    config.gtm.attempt_timeout = 10'000;
    fault::FaultPlan plan;
    plan.gtm_crashes.push_back(fault::GtmCrashEvent{4000, 2500});
    plan.gtm_crashes.push_back(fault::GtmCrashEvent{20'000, 1500});
    config.fault_plan = plan;
    DriverConfig workload = Workload();
    Mdbs system(config);
    DriverReport report = RunDriver(&system, workload, 19);
    EXPECT_EQ(report.gtm_durability.crashes, 2);
    EXPECT_EQ(report.gtm_durability.recoveries, 2);
    EXPECT_GT(report.gtm_durability.replayed_records, 0);
    EXPECT_TRUE(system.CheckGloballySerializable().ok());
    return report.ToString();
  };
  EXPECT_EQ(run(), run());
}

// A warm-standby failover — WAL shipping across the modeled network, the
// shadow's continuous apply, the fenced promotion, and the post-promotion
// drain — must replay byte for byte from the same seeds, for every seed:
// the standby's strand is part of the simulated schedule like any other.
TEST(DeterminismTest, GtmFailoverReplaysByteForByte) {
  for (uint64_t seed : {3u, 17u, 41u}) {
    auto run = [seed]() {
      MdbsConfig config = SystemConfig(seed);
      config.gtm.durable = true;
      config.gtm.checkpoint_interval = 64;
      config.gtm.recovery_time_per_record = 2;
      config.gtm_standby = true;
      config.standby_lag = 40;
      fault::FaultPlan plan;
      plan.gtm_failovers.push_back(fault::GtmFailoverEvent{600'000, 1500});
      config.fault_plan = plan;
      DriverConfig workload = Workload();
      workload.retry.max_resubmissions = 2;
      Mdbs system(config);
      DriverReport report = RunDriver(&system, workload, seed + 100);
      EXPECT_EQ(report.gtm_standby.promotions, 1);
      EXPECT_EQ(report.gtm_standby.fencing_epoch, 1);
      EXPECT_TRUE(system.CheckGloballySerializable().ok());
      return report.ToString();
    };
    EXPECT_EQ(run(), run()) << "seed " << seed;
  }
}

// Replay itself must be a pure function of the log image: recovering the
// same device twice yields identical stores, tables, and statistics.
TEST(DeterminismTest, RecoveryFromTheSameLogIsIdentical) {
  auto device = std::make_shared<storage::MemLogDevice>();
  MdbsConfig config = SystemConfig(31);
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/4, /*first_at=*/2000, /*gap=*/3000, /*duration=*/1500);
  config.gtm.attempt_timeout = 10'000;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  for (site::SiteConfig& site : config.sites) {
    site.durable = true;
    site.checkpoint_interval = 32;
  }
  config.sites[3].wal_device = device;  // s3 is multiversion-adjacent OCC.
  DriverConfig workload = Workload();
  workload.retry.max_resubmissions = 2;
  Mdbs system(config);
  RunDriver(&system, workload, 29);
  ASSERT_GT(device->bytes().size(), 0u);

  storage::RecoveredState first, second;
  ASSERT_TRUE(storage::RecoverWal(*device, false, &first).ok());
  ASSERT_TRUE(storage::RecoverWal(*device, false, &second).ok());
  EXPECT_EQ(first.store, second.store);
  EXPECT_EQ(first.last_writer, second.last_writer);
  EXPECT_EQ(first.clock, second.clock);
  EXPECT_EQ(first.scanned_records, second.scanned_records);
  EXPECT_EQ(first.scanned_bytes, second.scanned_bytes);
  EXPECT_EQ(first.redo_writes, second.redo_writes);
  EXPECT_EQ(first.undone_writes, second.undone_writes);
  EXPECT_EQ(first.committed_txns, second.committed_txns);
  EXPECT_EQ(first.loser_txns, second.loser_txns);
  EXPECT_GT(first.scanned_records, 0);
}

}  // namespace
}  // namespace mdbs
