#include <gtest/gtest.h>

#include "lcc/mvto.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "sched/serializability.h"
#include "sim/event_loop.h"
#include "site/local_dbms.h"

namespace mdbs {
namespace {

using lcc::AccessDecision;
using lcc::MultiversionTimestampOrdering;
using lcc::ProtocolKind;
using gtm::SchemeKind;

const TxnId kT1{1};
const TxnId kT2{2};
const TxnId kT3{3};
const DataItemId kX{10};
const DataItemId kY{11};

class FakeHost : public lcc::ProtocolHost {
 public:
  void ResumeTransaction(TxnId txn) override { resumed.push_back(txn); }
  std::vector<TxnId> resumed;
};

void MustProceed(lcc::ConcurrencyControl* cc, TxnId txn, const DataOp& op) {
  ASSERT_EQ(cc->OnAccess(txn, op), AccessDecision::kProceed)
      << ToString(txn) << " " << op.ToString();
  cc->OnAccessApplied(txn, op);
}

// --------------------------------------------------------------------------
// Protocol-level
// --------------------------------------------------------------------------

TEST(MvtoTest, Basics) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  EXPECT_FALSE(mvto.WritesInPlace());
  EXPECT_TRUE(mvto.IsMultiversion());
  mvto.OnBegin(kT1);
  mvto.OnBegin(kT2);
  ASSERT_TRUE(mvto.SerializationKey(kT1).has_value());
  EXPECT_LT(*mvto.SerializationKey(kT1), *mvto.SerializationKey(kT2));
}

TEST(MvtoTest, ReaderSeesVersionAtItsTimestamp) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  mvto.OnBegin(kT1);  // ts 0
  mvto.OnBegin(kT2);  // ts 1
  mvto.OnBegin(kT3);  // ts 2
  // T2 writes x=20 and commits.
  MustProceed(&mvto, kT2, DataOp::Write(kX, 20));
  mvto.OnFinish(kT2, TxnOutcome::kCommitted);
  // T3 (younger) sees T2's version.
  MustProceed(&mvto, kT3, DataOp::Read(kX));
  auto v3 = mvto.ResolveRead(kT3, kX);
  ASSERT_TRUE(v3.has_value());
  EXPECT_EQ(v3->value, 20);
  EXPECT_EQ(v3->writer, kT2);
  // T1 (older than the writer) sees the INITIAL version — this is exactly
  // what single-version TO would have aborted.
  MustProceed(&mvto, kT1, DataOp::Read(kX));
  EXPECT_FALSE(mvto.ResolveRead(kT1, kX).has_value());
}

TEST(MvtoTest, LateWriteUnderReadAborts) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  mvto.OnBegin(kT1);  // ts 0
  mvto.OnBegin(kT2);  // ts 1
  // T2 reads the initial version of x (rts 1 on initial version).
  MustProceed(&mvto, kT2, DataOp::Read(kX));
  // T1's write would produce the version T2 *should* have read: abort.
  EXPECT_EQ(mvto.OnAccess(kT1, DataOp::Write(kX, 5)),
            AccessDecision::kAbort);
}

TEST(MvtoTest, WriteBehindNewerVersionAllowedWhenUnread) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  mvto.OnBegin(kT1);  // ts 0
  mvto.OnBegin(kT2);  // ts 1
  MustProceed(&mvto, kT2, DataOp::Write(kX, 20));
  mvto.OnFinish(kT2, TxnOutcome::kCommitted);
  // T1 writes an OLDER version behind T2's — fine in MVTO (nobody between
  // ts 0 and ts 1 read the initial version).
  MustProceed(&mvto, kT1, DataOp::Write(kX, 10));
  mvto.OnFinish(kT1, TxnOutcome::kCommitted);
  // A new reader sees the newest version (T2's), not commit order.
  mvto.OnBegin(kT3);
  MustProceed(&mvto, kT3, DataOp::Read(kX));
  auto v = mvto.ResolveRead(kT3, kX);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->value, 20);
}

TEST(MvtoTest, ReaderBlocksOnUncommittedVersion) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  mvto.OnBegin(kT1);  // ts 0
  mvto.OnBegin(kT2);  // ts 1
  MustProceed(&mvto, kT1, DataOp::Write(kX, 5));
  EXPECT_EQ(mvto.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kBlock);
  mvto.OnFinish(kT1, TxnOutcome::kCommitted);
  ASSERT_EQ(host.resumed.size(), 1u);
  MustProceed(&mvto, kT2, DataOp::Read(kX));
  EXPECT_EQ(mvto.ResolveRead(kT2, kX)->value, 5);
}

TEST(MvtoTest, AbortedWriterVersionDisappears) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  mvto.OnBegin(kT1);
  mvto.OnBegin(kT2);
  MustProceed(&mvto, kT1, DataOp::Write(kX, 5));
  EXPECT_EQ(mvto.OnAccess(kT2, DataOp::Read(kX)), AccessDecision::kBlock);
  mvto.OnFinish(kT1, TxnOutcome::kAborted);
  ASSERT_EQ(host.resumed.size(), 1u);
  // After the abort the version is gone: the reader sees the initial one.
  MustProceed(&mvto, kT2, DataOp::Read(kX));
  EXPECT_FALSE(mvto.ResolveRead(kT2, kX).has_value());
  EXPECT_EQ(mvto.VersionCount(), 0u);
}

TEST(MvtoTest, ReadOwnWrites) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  mvto.OnBegin(kT1);
  MustProceed(&mvto, kT1, DataOp::Write(kX, 5));
  MustProceed(&mvto, kT1, DataOp::Read(kX));
  auto v = mvto.ResolveRead(kT1, kX);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->value, 5);
  EXPECT_EQ(v->writer, kT1);
  MustProceed(&mvto, kT1, DataOp::Write(kX, 6));  // Own overwrite.
  EXPECT_EQ(mvto.ResolveRead(kT1, kX)->value, 6);
}

TEST(MvtoTest, VersionsGarbageCollected) {
  FakeHost host;
  MultiversionTimestampOrdering mvto(&host);
  for (int i = 0; i < 2000; ++i) {
    TxnId txn{100 + i};
    mvto.OnBegin(txn);
    DataOp write = DataOp::Write(kX, i);
    ASSERT_EQ(mvto.OnAccess(txn, write), AccessDecision::kProceed);
    mvto.OnAccessApplied(txn, write);
    mvto.OnFinish(txn, TxnOutcome::kCommitted);
  }
  EXPECT_LT(mvto.VersionCount(), 600u);
}

// --------------------------------------------------------------------------
// Site-level: old readers survive where strict TO aborts them
// --------------------------------------------------------------------------

TEST(MvtoSiteTest, OldReaderSurvivesYoungerCommittedWrite) {
  site::SiteConfig config;
  config.id = SiteId(0);
  config.protocol = ProtocolKind::kMultiversionTO;
  sim::EventLoop loop;
  sched::ScheduleRecorder recorder;
  site::LocalDbms dbms(config, &loop, &recorder);
  dbms.UnsafePoke(kX, 7);

  TxnId t1{1}, t2{2};
  ASSERT_TRUE(dbms.Begin(t1, GlobalTxnId()).ok());
  ASSERT_TRUE(dbms.Begin(t2, GlobalTxnId()).ok());
  // Younger T2 writes x and commits.
  Status status = Status::Internal("pending");
  dbms.Submit(t2, DataOp::Write(kX, 99),
              [&](const Status& s, int64_t) { status = s; });
  loop.Run();
  ASSERT_TRUE(status.ok());
  dbms.Commit(t2, [&](const Status& s) { status = s; });
  loop.Run();
  ASSERT_TRUE(status.ok());
  // Older T1 still reads the pre-T2 value — single-version strict TO
  // aborts here (LocalDbmsToTest.OldReaderAbortsAfterYoungerWriteCommits).
  int64_t value = -1;
  dbms.Submit(t1, DataOp::Read(kX), [&](const Status& s, int64_t v) {
    status = s;
    value = v;
  });
  loop.Run();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(value, 7);
  dbms.Commit(t1, [&](const Status& s) { status = s; });
  loop.Run();
  EXPECT_TRUE(status.ok());
  // One-copy serializable via the MVSG, with T1 ordered before T2 (its
  // read observed the pre-T2 version).
  sched::SerializabilityResult mvsg =
      sched::CheckMultiversionSerializability(recorder, SiteId(0));
  EXPECT_TRUE(mvsg.serializable);
  sched::DirectedGraph graph =
      sched::BuildMultiversionSerializationGraph(recorder, SiteId(0));
  EXPECT_TRUE(graph.HasEdge(t1.value(), t2.value()));  // r-before-version.
  EXPECT_FALSE(graph.HasEdge(t2.value(), t1.value()));
}

// --------------------------------------------------------------------------
// MVSG checker on hand-built histories
// --------------------------------------------------------------------------

TEST(MvsgCheckerTest, DetectsInconsistentReadsFrom) {
  sched::ScheduleRecorder recorder;
  const SiteId kSite{0};
  // T1 (ts 10) writes x; T2 (ts 20) writes x; T3 reads T1's version but
  // also reads T2's version of y written BEFORE T2... construct a cycle:
  // T3 reads x from T1 (so T3 -> T2 via next-version rule) and T2 -> T3
  // via reads-from on y.
  recorder.RecordBegin(kSite, kT1, GlobalTxnId());
  recorder.RecordBegin(kSite, kT2, GlobalTxnId());
  recorder.RecordBegin(kSite, kT3, GlobalTxnId());
  recorder.RecordOp(kSite, kT1, DataOp::Write(kX, 1), 0);
  recorder.RecordOp(kSite, kT2, DataOp::Write(kX, 2), 1);
  recorder.RecordOp(kSite, kT2, DataOp::Write(kY, 2), 2);
  recorder.RecordOp(kSite, kT3, DataOp::Read(kX), 3, kT1);  // Old version.
  recorder.RecordOp(kSite, kT3, DataOp::Read(kY), 4, kT2);  // New version.
  recorder.RecordFinish(kT1, TxnOutcome::kCommitted, 10);
  recorder.RecordFinish(kT2, TxnOutcome::kCommitted, 20);
  recorder.RecordFinish(kT3, TxnOutcome::kCommitted, 15);
  // MVSG: T1 -> T2 (version order), T3 -> T2 (read old x before T2's
  // version), T2 -> T3 (reads-from y): cycle T2 -> T3 -> T2.
  EXPECT_FALSE(sched::CheckMultiversionSerializability(recorder, kSite)
                   .serializable);
}

TEST(MvsgCheckerTest, ConsistentSnapshotPasses) {
  sched::ScheduleRecorder recorder;
  const SiteId kSite{0};
  recorder.RecordBegin(kSite, kT1, GlobalTxnId());
  recorder.RecordBegin(kSite, kT2, GlobalTxnId());
  recorder.RecordBegin(kSite, kT3, GlobalTxnId());
  recorder.RecordOp(kSite, kT1, DataOp::Write(kX, 1), 0);
  recorder.RecordOp(kSite, kT2, DataOp::Write(kX, 2), 1);
  recorder.RecordOp(kSite, kT2, DataOp::Write(kY, 2), 2);
  recorder.RecordOp(kSite, kT3, DataOp::Read(kX), 3, kT1);
  recorder.RecordOp(kSite, kT3, DataOp::Read(kY), 4, TxnId());  // Initial.
  recorder.RecordFinish(kT1, TxnOutcome::kCommitted, 10);
  recorder.RecordFinish(kT2, TxnOutcome::kCommitted, 20);
  recorder.RecordFinish(kT3, TxnOutcome::kCommitted, 15);
  EXPECT_TRUE(sched::CheckMultiversionSerializability(recorder, kSite)
                  .serializable);
}

// --------------------------------------------------------------------------
// End-to-end with an MVTO site in the federation
// --------------------------------------------------------------------------

class MvtoIntegration : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, MvtoIntegration,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme3),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

TEST_P(MvtoIntegration, MixedFederationStaysOneCopySerializable) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kMultiversionTO, ProtocolKind::kTwoPhaseLocking,
       ProtocolKind::kMultiversionTO},
      GetParam());
  config.seed = 33;
  Mdbs system(config);
  EXPECT_EQ(system.MultiversionSites().size(), 2u);
  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 2;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 20;
  driver.local_workload.items_per_site = 20;
  DriverReport report = RunDriver(&system, driver, 33);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_GT(report.local_committed, 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckSerializationKeyProperty().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_EQ(report.gtm1.scheme_aborts, 0);
}

}  // namespace
}  // namespace mdbs
