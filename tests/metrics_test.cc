#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

namespace mdbs::sim {
namespace {

/// Sorted-vector oracle for quantiles: the linear-interpolation definition
/// (pos = q * (n - 1)) the histogram reproduces exactly inside the exact
/// region and approximates within bucket resolution beyond.
double OracleQuantile(std::vector<int64_t> values, double q) {
  std::sort(values.begin(), values.end());
  if (values.empty()) return 0.0;
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return static_cast<double>(values[lo]) +
         frac * static_cast<double>(values[hi] - values[lo]);
}

// --------------------------------------------------------------------------
// LogLinearHistogram
// --------------------------------------------------------------------------

TEST(LogLinearHistogramTest, BucketGeometryRoundTrips) {
  for (int64_t v : {0, 1, 5, 63, 64, 65, 127, 128, 1000, 123456789}) {
    size_t index = LogLinearHistogram::BucketIndex(v);
    EXPECT_GE(v, LogLinearHistogram::BucketLower(index)) << v;
    EXPECT_LT(v, LogLinearHistogram::BucketUpper(index)) << v;
  }
  // Values below the sub-bucket count get width-1 buckets (exact region).
  for (int64_t v = 0; v < LogLinearHistogram::kSubBucketCount; ++v) {
    size_t index = LogLinearHistogram::BucketIndex(v);
    EXPECT_EQ(LogLinearHistogram::BucketUpper(index) -
                  LogLinearHistogram::BucketLower(index),
              1);
  }
  // Relative bucket width beyond the exact region is at most 1/64.
  for (int64_t v : {int64_t{1} << 10, int64_t{1} << 30, int64_t{1} << 50}) {
    size_t index = LogLinearHistogram::BucketIndex(v);
    int64_t width = LogLinearHistogram::BucketUpper(index) -
                    LogLinearHistogram::BucketLower(index);
    EXPECT_LE(width * LogLinearHistogram::kSubBucketCount,
              LogLinearHistogram::BucketLower(index));
  }
}

TEST(LogLinearHistogramTest, MergeEqualsBulkRecordAgainstOracle) {
  // Two disjoint streams recorded separately then merged must match one
  // histogram fed both streams, and both must track the sorted oracle.
  LogLinearHistogram a;
  LogLinearHistogram b;
  LogLinearHistogram all;
  std::vector<int64_t> values;
  for (int i = 0; i < 20'000; ++i) {
    // Deterministic long-tailed series spanning the exact and log regions.
    int64_t v = (i % 97) + ((i * i) % 1009) * ((i % 13 == 0) ? 517 : 1);
    values.push_back(v);
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.total(), static_cast<int64_t>(values.size()));
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    double pos = q * static_cast<double>(values.size() - 1);
    EXPECT_DOUBLE_EQ(a.ValueAtRank(pos), all.ValueAtRank(pos)) << q;
    double oracle = OracleQuantile(values, q);
    // Resolution bound: one bucket of relative error (1/64), plus one more
    // for cross-bucket interpolation at rank boundaries.
    EXPECT_NEAR(a.ValueAtRank(pos), oracle,
                2.0 * oracle / LogLinearHistogram::kSubBucketCount + 1.0)
        << q;
  }
}

// --------------------------------------------------------------------------
// Summary
// --------------------------------------------------------------------------

TEST(SummaryTest, EmptyIsAllZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0);
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.max(), 0.0);
  EXPECT_EQ(summary.Quantile(0.5), 0.0);
  EXPECT_TRUE(summary.histogram().empty());
}

TEST(SummaryTest, ExactQuantilesInExactRegion) {
  Summary summary;
  // 1..50 in a scrambled order; quantiles must not depend on it. All values
  // sit in the histogram's width-1 buckets, so interpolation reproduces the
  // sorted-vector definition exactly.
  std::vector<int64_t> values;
  for (int i = 0; i < 50; ++i) {
    int64_t v = ((i * 37) % 50) + 1;
    values.push_back(v);
    summary.Add(static_cast<double>(v));
  }
  EXPECT_EQ(summary.count(), 50);
  EXPECT_DOUBLE_EQ(summary.mean(), 25.5);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 50.0);
  EXPECT_DOUBLE_EQ(summary.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.Quantile(1.0), 50.0);
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(summary.Quantile(q), OracleQuantile(values, q)) << q;
  }
}

TEST(SummaryTest, FullSeriesCountedWithBoundedQuantileError) {
  // No reservoir: count stays exact at any volume and quantiles track the
  // oracle within the histogram's relative-error bound, p999 included.
  Summary summary;
  std::vector<int64_t> values;
  const int n = 200'000;
  for (int i = 1; i <= n; ++i) {
    int64_t v = (i % 317 == 0) ? i * 41 : (i % 4096);  // heavy tail
    values.push_back(v);
    summary.Add(static_cast<double>(v));
  }
  EXPECT_EQ(summary.count(), n);
  EXPECT_DOUBLE_EQ(summary.min(), 0.0);
  for (double q : {0.5, 0.95, 0.99, 0.999}) {
    double oracle = OracleQuantile(values, q);
    EXPECT_NEAR(summary.Quantile(q), oracle,
                2.0 * oracle / LogLinearHistogram::kSubBucketCount + 1.0)
        << q;
  }
}

TEST(SummaryTest, MergeMatchesSingleStream) {
  Summary parts[4];
  Summary whole;
  for (int i = 0; i < 50'000; ++i) {
    double v = static_cast<double>(i % 9973);
    parts[i % 4].Add(v);
    whole.Add(v);
  }
  Summary merged;
  for (const Summary& part : parts) merged.Merge(part);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_DOUBLE_EQ(merged.sum(), whole.sum());
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  for (double q : {0.5, 0.99, 0.999}) {
    EXPECT_DOUBLE_EQ(merged.Quantile(q), whole.Quantile(q)) << q;
  }
  EXPECT_EQ(merged.ToString(), whole.ToString());
}

TEST(SummaryTest, DeterministicAcrossInsertionOrder) {
  Summary forward;
  Summary scrambled;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) forward.Add(i % 9973);
  for (int i = 0; i < n; ++i) scrambled.Add(((i * 7919) % n) % 9973);
  EXPECT_DOUBLE_EQ(forward.Quantile(0.5), scrambled.Quantile(0.5));
  EXPECT_DOUBLE_EQ(forward.Quantile(0.99), scrambled.Quantile(0.99));
  EXPECT_DOUBLE_EQ(forward.Quantile(0.999), scrambled.Quantile(0.999));
  EXPECT_EQ(forward.ToString(), scrambled.ToString());
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, EmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Counter("missing"), 0);
  EXPECT_EQ(registry.GetSummary("missing"), nullptr);
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.summaries().empty());
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Increment("a");
  registry.Increment("a", 4);
  registry.Increment("b", -2);
  EXPECT_EQ(registry.Counter("a"), 5);
  EXPECT_EQ(registry.Counter("b"), -2);
}

TEST(MetricsRegistryTest, ObserveBuildsSummaries) {
  MetricsRegistry registry;
  registry.Observe("lat", 10);
  registry.Observe("lat", 30);
  const Summary* summary = registry.GetSummary("lat");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count(), 2);
  EXPECT_DOUBLE_EQ(summary->mean(), 20.0);
}

TEST(MetricsRegistryTest, PutInstallsForeignSummary) {
  Summary external;
  for (int i = 1; i <= 10; ++i) external.Add(i);
  MetricsRegistry registry;
  registry.Put("driver.response", external);
  const Summary* summary = registry.GetSummary("driver.response");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count(), 10);
  EXPECT_DOUBLE_EQ(summary->max(), 10.0);
}

}  // namespace
}  // namespace mdbs::sim
