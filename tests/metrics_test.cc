#include "sim/metrics.h"

#include <gtest/gtest.h>

namespace mdbs::sim {
namespace {

// --------------------------------------------------------------------------
// Summary
// --------------------------------------------------------------------------

TEST(SummaryTest, EmptyIsAllZero) {
  Summary summary;
  EXPECT_EQ(summary.count(), 0);
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.max(), 0.0);
  EXPECT_EQ(summary.Quantile(0.5), 0.0);
  EXPECT_TRUE(summary.retained_samples().empty());
}

TEST(SummaryTest, ExactQuantilesBelowReservoirCapacity) {
  Summary summary;
  // 1..100 in a scrambled order; quantiles must not depend on it.
  for (int i = 0; i < 100; ++i) summary.Add(((i * 37) % 100) + 1);
  EXPECT_EQ(summary.count(), 100);
  EXPECT_DOUBLE_EQ(summary.mean(), 50.5);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 100.0);
  EXPECT_DOUBLE_EQ(summary.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.Quantile(1.0), 100.0);
  // Nearest-rank style estimates within one sample of the true value.
  EXPECT_NEAR(summary.Median(), 50.0, 1.0);
  EXPECT_NEAR(summary.P95(), 95.0, 1.0);
  EXPECT_NEAR(summary.P99(), 99.0, 1.0);
}

TEST(SummaryTest, ReservoirBoundsMemoryButKeepsExactMoments) {
  Summary summary;
  const int n = 100'000;
  for (int i = 1; i <= n; ++i) summary.Add(i);
  EXPECT_EQ(summary.count(), n);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), n);
  EXPECT_DOUBLE_EQ(summary.mean(), (n + 1) / 2.0);
  EXPECT_EQ(summary.retained_samples().size(), Summary::kReservoirCapacity);
  // Quantiles are estimates over a uniform sample: ~1.6% expected error,
  // so a 5% tolerance makes the test robust without losing its teeth.
  EXPECT_NEAR(summary.Median(), n / 2.0, 0.05 * n);
  EXPECT_NEAR(summary.Quantile(0.9), 0.9 * n, 0.05 * n);
}

TEST(SummaryTest, ReservoirIsDeterministic) {
  Summary a;
  Summary b;
  for (int i = 0; i < 50'000; ++i) {
    a.Add(i % 9973);
    b.Add(i % 9973);
  }
  EXPECT_EQ(a.retained_samples(), b.retained_samples());
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), b.Quantile(0.5));
  EXPECT_DOUBLE_EQ(a.Quantile(0.99), b.Quantile(0.99));
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, EmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Counter("missing"), 0);
  EXPECT_EQ(registry.GetSummary("missing"), nullptr);
  EXPECT_TRUE(registry.counters().empty());
  EXPECT_TRUE(registry.summaries().empty());
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  registry.Increment("a");
  registry.Increment("a", 4);
  registry.Increment("b", -2);
  EXPECT_EQ(registry.Counter("a"), 5);
  EXPECT_EQ(registry.Counter("b"), -2);
}

TEST(MetricsRegistryTest, ObserveBuildsSummaries) {
  MetricsRegistry registry;
  registry.Observe("lat", 10);
  registry.Observe("lat", 30);
  const Summary* summary = registry.GetSummary("lat");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count(), 2);
  EXPECT_DOUBLE_EQ(summary->mean(), 20.0);
}

TEST(MetricsRegistryTest, PutInstallsForeignSummary) {
  Summary external;
  for (int i = 1; i <= 10; ++i) external.Add(i);
  MetricsRegistry registry;
  registry.Put("driver.response", external);
  const Summary* summary = registry.GetSummary("driver.response");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->count(), 10);
  EXPECT_DOUBLE_EQ(summary->max(), 10.0);
}

}  // namespace
}  // namespace mdbs::sim
