#include <atomic>
#include <cstddef>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/metrics.h"

namespace mdbs {
namespace {

using obs::TraceConfig;
using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TraceSink;

// --------------------------------------------------------------------------
// TraceSink
// --------------------------------------------------------------------------

TraceConfig EnabledConfig(size_t capacity = 1 << 12) {
  TraceConfig config;
  config.enabled = true;
  config.buffer_capacity = capacity;
  return config;
}

/// Most of this suite needs the hooks compiled in; with -DMDBS_TRACE=OFF
/// those tests skip rather than fail.
#define MDBS_SKIP_WITHOUT_TRACE()                                   \
  if (!obs::kTraceCompiledIn) {                                     \
    GTEST_SKIP() << "tracing compiled out (-DMDBS_TRACE=OFF)";      \
  }

TEST(TraceSinkTest, RecordsAndDrainsInTimeSeqOrder) {
  MDBS_SKIP_WITHOUT_TRACE();
  sim::Time now = 0;
  TraceSink sink(EnabledConfig(), [&now]() { return now; });
  ASSERT_TRUE(sink.enabled());
  now = 30;
  sink.Record(TraceEventKind::kSubmit, 1, -1);
  now = 10;
  sink.Record(TraceEventKind::kInit, 2, -1);
  now = 10;
  sink.Record(TraceEventKind::kFin, 3, -1);
  EXPECT_EQ(sink.recorded(), 3);

  std::vector<TraceEvent> events = sink.Drain();
  ASSERT_EQ(events.size(), 3u);
  // Time-sorted; equal times break by recording sequence.
  EXPECT_EQ(events[0].txn, 2);
  EXPECT_EQ(events[1].txn, 3);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(events[2].txn, 1);
  EXPECT_EQ(events[2].time, 30);
  // Drain clears.
  EXPECT_TRUE(sink.Drain().empty());
}

TEST(TraceSinkTest, DisabledSinkRecordsNothing) {
  TraceConfig config;  // enabled = false
  TraceSink sink(config, []() { return sim::Time{0}; });
  EXPECT_FALSE(sink.enabled());
  sink.Record(TraceEventKind::kSubmit, 1, -1);
  EXPECT_EQ(sink.recorded(), 0);
  EXPECT_TRUE(sink.Drain().empty());
}

TEST(TraceSinkTest, FullBufferDropsAndCounts) {
  MDBS_SKIP_WITHOUT_TRACE();
  TraceSink sink(EnabledConfig(/*capacity=*/4), []() { return sim::Time{0}; });
  for (int i = 0; i < 10; ++i) {
    sink.Record(TraceEventKind::kSubmit, i, -1);
  }
  EXPECT_EQ(sink.recorded(), 4);
  EXPECT_EQ(sink.dropped(), 6);
  EXPECT_EQ(sink.Drain().size(), 4u);
}

TEST(TraceSinkTest, ConcurrentRecordersKeepEveryEventWithUniqueSeq) {
  MDBS_SKIP_WITHOUT_TRACE();
  TraceSink sink(EnabledConfig(1 << 14), []() { return sim::Time{7}; });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        sink.Record(TraceEventKind::kSiteBegin, t * kPerThread + i, t);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<TraceEvent> events = sink.Drain();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  std::unordered_set<int64_t> seqs;
  std::unordered_set<int64_t> txns;
  for (const TraceEvent& event : events) {
    seqs.insert(event.seq);
    txns.insert(event.txn);
  }
  EXPECT_EQ(seqs.size(), events.size());  // Process-wide unique sequence.
  EXPECT_EQ(txns.size(), events.size());  // No event lost or duplicated.
}

// --------------------------------------------------------------------------
// JSON well-formedness (no parser available; check balance and structure)
// --------------------------------------------------------------------------

/// True when every brace/bracket outside string literals balances and the
/// document is one value. Catches the classic exporter bugs (trailing
/// commas are not caught, but unbalanced nesting and unterminated strings
/// are).
bool JsonNestingBalanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') return false;
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') return false;
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(ChromeTraceExportTest, EmitsBalancedJsonWithTracks) {
  std::vector<TraceEvent> events;
  auto add = [&events](TraceEventKind kind, sim::Time time, int64_t txn,
                       int64_t site, int64_t a = 0, int64_t b = 0,
                       const char* detail = nullptr) {
    TraceEvent event;
    event.kind = kind;
    event.time = time;
    event.seq = static_cast<int64_t>(events.size());
    event.txn = txn;
    event.site = site;
    event.a = a;
    event.b = b;
    event.detail = detail;
    events.push_back(event);
  };
  add(TraceEventKind::kSubmit, 0, 1, -1, 2);
  add(TraceEventKind::kAttemptStart, 1, 10, -1, 1, 1);
  add(TraceEventKind::kInit, 2, 10, -1, 2);
  add(TraceEventKind::kWaitEnter, 3, 10, 0, 1, 0, "ser");
  add(TraceEventKind::kWaitExit, 5, 10, 0, 0, 0, "ser");
  add(TraceEventKind::kSiteBegin, 6, 100, 0, 10);
  add(TraceEventKind::kOpBlocked, 7, 100, 0, 10, 42);
  add(TraceEventKind::kOpResumed, 8, 100, 0, 10, 42);
  add(TraceEventKind::kSiteCommit, 9, 100, 0, 10);
  add(TraceEventKind::kQueueDepth, 9, 10, -1, 3, 1);
  add(TraceEventKind::kTxnCommit, 10, 10, -1, 1, 1);
  // A span left open at the end must be force-closed by the exporter.
  add(TraceEventKind::kSiteBegin, 11, 101, 1, 11);

  obs::ChromeTraceOptions options;
  options.site_names = {{0, "s0 (2PL)"}, {1, "s1 (TO)"}};
  std::ostringstream os;
  obs::WriteChromeTrace(os, events, options);
  std::string text = os.str();

  EXPECT_TRUE(JsonNestingBalanced(text)) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("thread_name"), std::string::npos);
  EXPECT_NE(text.find("s0 (2PL)"), std::string::npos);
  // Async span begin/end pairs balance (the trailing open span got closed).
  size_t begins = 0;
  size_t ends = 0;
  for (size_t pos = 0; (pos = text.find("\"ph\":\"b\"", pos)) !=
                       std::string::npos;
       pos += 8) {
    ++begins;
  }
  for (size_t pos = 0; (pos = text.find("\"ph\":\"e\"", pos)) !=
                       std::string::npos;
       pos += 8) {
    ++ends;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
}

TEST(JsonReportTest, EmitsBalancedJsonWithSummaries) {
  sim::MetricsRegistry registry;
  registry.Increment("events.submit", 12);
  for (int i = 1; i <= 100; ++i) {
    registry.Observe("phase.submit_to_commit", i * 10.0);
  }
  obs::ReportInfo info = {{"scheme", "Scheme3"}, {"engine", "sim"}};
  std::ostringstream os;
  obs::WriteJsonReport(os, info, registry);
  std::string text = os.str();

  EXPECT_TRUE(JsonNestingBalanced(text)) << text;
  EXPECT_NE(text.find("\"info\""), std::string::npos);
  EXPECT_NE(text.find("\"Scheme3\""), std::string::npos);
  EXPECT_NE(text.find("\"events.submit\":12"), std::string::npos);
  EXPECT_NE(text.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(text.find("\"histogram\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Lifecycle span schema: submit < attempt < init <= ser <= ack <= fin for
// every committed attempt, in both engines. Ordering is positional over the
// drained (time, seq)-sorted stream.
// --------------------------------------------------------------------------

struct AttemptSpan {
  int64_t job = -1;
  size_t start = 0;
  size_t init = 0;
  size_t first_ser = SIZE_MAX;
  size_t last_ack = 0;
  size_t fin = 0;
  bool has_start = false;
  bool has_init = false;
  bool has_ack = false;
  bool has_fin = false;
  bool committed = false;
};

void CheckLifecycleSchema(const std::vector<TraceEvent>& events) {
  std::unordered_map<int64_t, size_t> submit_pos;  // job id -> position
  std::map<int64_t, AttemptSpan> attempts;         // attempt id -> span
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    switch (event.kind) {
      case TraceEventKind::kSubmit:
        submit_pos[event.txn] = i;
        break;
      case TraceEventKind::kAttemptStart: {
        AttemptSpan& span = attempts[event.txn];
        span.job = event.a;
        span.start = i;
        span.has_start = true;
        break;
      }
      case TraceEventKind::kInit: {
        AttemptSpan& span = attempts[event.txn];
        span.init = i;
        span.has_init = true;
        break;
      }
      case TraceEventKind::kSerRelease: {
        AttemptSpan& span = attempts[event.txn];
        if (span.first_ser == SIZE_MAX) span.first_ser = i;
        break;
      }
      case TraceEventKind::kAck: {
        AttemptSpan& span = attempts[event.txn];
        span.last_ack = i;
        span.has_ack = true;
        break;
      }
      case TraceEventKind::kFin: {
        AttemptSpan& span = attempts[event.txn];
        span.fin = i;
        span.has_fin = true;
        break;
      }
      case TraceEventKind::kTxnCommit:
        attempts[event.txn].committed = true;
        break;
      default:
        break;
    }
  }

  int checked = 0;
  for (const auto& [attempt, span] : attempts) {
    if (!span.committed) continue;
    ++checked;
    ASSERT_TRUE(span.has_start) << "attempt " << attempt;
    ASSERT_TRUE(span.has_init) << "attempt " << attempt;
    ASSERT_TRUE(span.has_fin) << "attempt " << attempt;
    ASSERT_TRUE(submit_pos.contains(span.job)) << "attempt " << attempt;
    EXPECT_LT(submit_pos.at(span.job), span.start) << "attempt " << attempt;
    EXPECT_LT(span.start, span.init) << "attempt " << attempt;
    if (span.first_ser != SIZE_MAX) {
      EXPECT_LE(span.init, span.first_ser) << "attempt " << attempt;
      if (span.has_ack) {
        EXPECT_LE(span.first_ser, span.last_ack) << "attempt " << attempt;
      }
    }
    if (span.has_ack) {
      EXPECT_LT(span.last_ack, span.fin) << "attempt " << attempt;
    }
  }
  EXPECT_GT(checked, 0) << "no committed attempts traced";
}

DriverConfig SmallDriver(int64_t commits) {
  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = commits;
  return driver;
}

TEST(LifecycleSchemaTest, SimEngineAllSchemes) {
  MDBS_SKIP_WITHOUT_TRACE();
  for (gtm::SchemeKind scheme :
       {gtm::SchemeKind::kScheme0, gtm::SchemeKind::kScheme1,
        gtm::SchemeKind::kScheme2, gtm::SchemeKind::kScheme3}) {
    SCOPED_TRACE(gtm::SchemeKindName(scheme));
    MdbsConfig config = MdbsConfig::Mixed(
        {lcc::ProtocolKind::kTwoPhaseLocking,
         lcc::ProtocolKind::kTimestampOrdering,
         lcc::ProtocolKind::kSerializationGraph},
        scheme);
    config.trace.enabled = true;
    Mdbs mdbs(config);
    ASSERT_NE(mdbs.trace_sink(), nullptr);
    DriverReport report = RunDriver(&mdbs, SmallDriver(20), /*seed=*/7);
    ASSERT_GT(report.global_committed, 0);

    std::vector<TraceEvent> events = mdbs.trace_sink()->Drain();
    ASSERT_FALSE(events.empty());
    CheckLifecycleSchema(events);
  }
}

TEST(LifecycleSchemaTest, ThreadedEngine) {
  MDBS_SKIP_WITHOUT_TRACE();
  MdbsConfig config = MdbsConfig::Mixed(
      {lcc::ProtocolKind::kTwoPhaseLocking,
       lcc::ProtocolKind::kOptimistic},
      gtm::SchemeKind::kScheme3);
  config.threaded = true;
  config.trace.enabled = true;
  Mdbs mdbs(config);
  ASSERT_NE(mdbs.trace_sink(), nullptr);
  DriverReport report = RunThreadedDriver(&mdbs, SmallDriver(10), /*seed=*/7);
  ASSERT_GT(report.global_committed, 0);

  std::vector<TraceEvent> events = mdbs.trace_sink()->Drain();
  ASSERT_FALSE(events.empty());
  CheckLifecycleSchema(events);
}

// --------------------------------------------------------------------------
// AggregateTrace
// --------------------------------------------------------------------------

TEST(AggregateTraceTest, DerivesCountersAndPhaseLatencies) {
  MDBS_SKIP_WITHOUT_TRACE();
  MdbsConfig config = MdbsConfig::Uniform(
      2, lcc::ProtocolKind::kTwoPhaseLocking, gtm::SchemeKind::kScheme1);
  config.trace.enabled = true;
  Mdbs mdbs(config);
  DriverReport report = RunDriver(&mdbs, SmallDriver(20), /*seed=*/3);
  ASSERT_GT(report.global_committed, 0);

  std::vector<TraceEvent> events = mdbs.trace_sink()->Drain();
  sim::MetricsRegistry registry;
  report.AddToRegistry(&registry);
  obs::AggregateTrace(events, &registry);

  EXPECT_GT(registry.Counter("events.submit"), 0);
  EXPECT_GT(registry.Counter("events.txn_commit"), 0);
  const sim::Summary* submit_to_commit =
      registry.GetSummary("phase.submit_to_commit");
  ASSERT_NE(submit_to_commit, nullptr);
  EXPECT_EQ(submit_to_commit->count(), report.global_committed);
  EXPECT_GT(submit_to_commit->min(), 0.0);
  const sim::Summary* init_to_ser = registry.GetSummary("phase.init_to_ser");
  ASSERT_NE(init_to_ser, nullptr);
  EXPECT_GT(init_to_ser->count(), 0);
  // Driver-side stats merged alongside the trace-derived series.
  EXPECT_EQ(registry.Counter("driver.global_committed"),
            report.global_committed);
}

TEST(MdbsTraceTest, DisabledByDefaultAndSinkIsNull) {
  MdbsConfig config = MdbsConfig::Uniform(
      2, lcc::ProtocolKind::kTwoPhaseLocking, gtm::SchemeKind::kScheme1);
  Mdbs mdbs(config);
  EXPECT_EQ(mdbs.trace_sink(), nullptr);
  DriverReport report = RunDriver(&mdbs, SmallDriver(5), /*seed=*/1);
  EXPECT_GT(report.global_committed, 0);
}

}  // namespace
}  // namespace mdbs
