// Mutation-style tests of the invariant auditor (src/audit): each test
// injects one specific violation — through a deliberately broken scheme, a
// corrupted data structure, or a lock-table backdoor — and proves the
// corresponding audit invariant detects exactly it. A final test runs a
// full federation with the fail-fast auditor live and proves a healthy
// system reports nothing.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "audit/ser_graph.h"
#include "gtm/gtm2.h"
#include "gtm/scheme0.h"
#include "gtm/scheme1.h"
#include "gtm/tsgd.h"
#include "lcc/lock_manager.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace mdbs {
namespace {

audit::AuditConfig Collecting() {
  audit::AuditConfig config;
  config.fail_fast = false;  // Collect violations instead of aborting.
  return config;
}

// --------------------------------------------------------------------
// conservative-discipline: a scheme claiming the conservative guarantee
// (Theorems 3/5/8: Schemes 0-3 never abort) demands an abort anyway.
// --------------------------------------------------------------------

class AbortingConservativeScheme : public gtm::SchemeNone {
 public:
  bool IsConservative() const override { return true; }
  gtm::Verdict CondSer(GlobalTxnId, SiteId) override {
    return gtm::Verdict::kAbort;
  }
};

TEST(AuditMutationTest, ConservativeSchemeAbortIsFlagged) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  audit::Auditor collector(Collecting());
  gtm::Gtm2 driver(std::make_unique<AbortingConservativeScheme>(), {});
  driver.EnableAudit(Collecting(), &collector);

  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(1), {SiteId(0)}));
  ASSERT_TRUE(collector.clean());
  driver.Enqueue(gtm::QueueOp::Ser(GlobalTxnId(1), SiteId(0)));

  EXPECT_EQ(collector.CountFor("conservative-discipline"), 1);
  EXPECT_EQ(collector.total_reported(), 1);
  // The report names the offending transaction — under threaded execution
  // that attribution is what makes a concurrent failure debuggable.
  const audit::AuditViolation& violation = collector.violations().back();
  EXPECT_EQ(violation.offending_txn, 1);
  EXPECT_NE(violation.ToString().find("txn=1"), std::string::npos)
      << violation.ToString();
}

// --------------------------------------------------------------------
// ser-release-discipline: Scheme 1 with its cond(ser) sabotaged to always
// fire. The inherited release-rule re-derivation must notice that a marked
// operation was released while not at the front of its insert queue.
// --------------------------------------------------------------------

class BrokenScheme1 : public gtm::Scheme1 {
 public:
  gtm::Verdict CondSer(GlobalTxnId, SiteId) override {
    return gtm::Verdict::kReady;  // Sabotage: ignore the marking rule.
  }
};

TEST(AuditMutationTest, MarkedOpReleasedOutOfOrderIsFlagged) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  audit::Auditor collector(Collecting());
  gtm::Gtm2 driver(std::make_unique<BrokenScheme1>(), {});
  driver.EnableAudit(Collecting(), &collector);

  // Two transactions over the same two sites form a TSG cycle, so both of
  // G2's edges are marked at its init. G1 heads both insert queues.
  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(1), {SiteId(0), SiteId(1)}));
  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(2), {SiteId(0), SiteId(1)}));
  ASSERT_TRUE(collector.clean());
  // Releasing marked ser(G2@s0) ahead of G1 violates Scheme 1's rule.
  driver.Enqueue(gtm::QueueOp::Ser(GlobalTxnId(2), SiteId(0)));

  EXPECT_GE(collector.CountFor("ser-release-discipline"), 1);
}

// --------------------------------------------------------------------
// ser-graph-acyclic: a permissive "conservative" scheme releases ser
// operations in opposite orders at two sites; the incremental abstract
// ser(S) graph must report the cycle with its witness (Theorem 1).
// --------------------------------------------------------------------

class PermissiveScheme : public gtm::SchemeNone {
 public:
  bool IsConservative() const override { return true; }
};

TEST(AuditMutationTest, OppositeReleaseOrdersCloseSerGraphCycle) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  audit::Auditor collector(Collecting());
  gtm::Gtm2 driver(std::make_unique<PermissiveScheme>(), {});
  driver.EnableAudit(Collecting(), &collector);

  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(1), {SiteId(0), SiteId(1)}));
  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(2), {SiteId(0), SiteId(1)}));
  driver.Enqueue(gtm::QueueOp::Ser(GlobalTxnId(1), SiteId(0)));
  driver.Enqueue(gtm::QueueOp::Ser(GlobalTxnId(2), SiteId(1)));
  ASSERT_TRUE(collector.clean());
  // G1 before G2 at s0, G2 before G1 at s1: the second order closes the
  // cycle the moment ser(G1@s1) is released.
  driver.Enqueue(gtm::QueueOp::Ser(GlobalTxnId(2), SiteId(0)));
  driver.Enqueue(gtm::QueueOp::Ser(GlobalTxnId(1), SiteId(1)));

  ASSERT_EQ(collector.CountFor("ser-graph-acyclic"), 1);
  // The witness names both transactions, starting and ending at the same
  // node.
  const audit::AuditViolation& violation = collector.violations().back();
  ASSERT_GE(violation.witness.size(), 3u);
  EXPECT_EQ(violation.witness.front(), violation.witness.back());
}

// --------------------------------------------------------------------
// scheme-structure: a TSGD with an injected dependency cycle — the state
// Eliminate_Cycles exists to prevent (paper §6) — must fail its structural
// self-check, and the audited driver must report it after the next act.
// --------------------------------------------------------------------

class CorruptibleTsgdScheme : public gtm::SchemeNone {
 public:
  Status CheckStructuralInvariants() const override {
    return tsgd_.Validate();
  }
  void ActInit(const gtm::QueueOp& op) override {
    tsgd_.InsertTxn(op.txn, op.sites);
  }
  void ActFin(GlobalTxnId txn) override { tsgd_.RemoveTxn(txn); }
  void ActAbortCleanup(GlobalTxnId txn) override {
    if (tsgd_.HasTxn(txn)) tsgd_.RemoveTxn(txn);
  }

  /// The mutation: a directed dependency cycle G1 -> G2 (at s0) -> G1
  /// (at s1), as if Eliminate_Cycles had been skipped.
  void InjectDependencyCycle() {
    tsgd_.AddDependency(SiteId(0), GlobalTxnId(1), GlobalTxnId(2));
    tsgd_.AddDependency(SiteId(1), GlobalTxnId(2), GlobalTxnId(1));
  }

 private:
  gtm::Tsgd tsgd_;
};

TEST(AuditMutationTest, TsgdDependencyCycleIsFlagged) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  audit::Auditor collector(Collecting());
  auto scheme = std::make_unique<CorruptibleTsgdScheme>();
  CorruptibleTsgdScheme* handle = scheme.get();
  gtm::Gtm2 driver(std::move(scheme), {});
  driver.EnableAudit(Collecting(), &collector);

  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(1), {SiteId(0), SiteId(1)}));
  driver.Enqueue(gtm::QueueOp::Init(GlobalTxnId(2), {SiteId(0), SiteId(1)}));
  ASSERT_TRUE(collector.clean());

  handle->InjectDependencyCycle();
  // Any subsequent act makes the driver re-run the structural self-check.
  driver.Enqueue(gtm::QueueOp::Ack(GlobalTxnId(1), SiteId(0)));

  EXPECT_GE(collector.CountFor("scheme-structure"), 1);
}

// The same injected cycle is caught by the TSGD validator directly.
TEST(AuditMutationTest, TsgdValidatorDetectsInjectedDependencyCycle) {
  gtm::Tsgd tsgd;
  tsgd.InsertTxn(GlobalTxnId(1), {SiteId(0), SiteId(1)});
  tsgd.InsertTxn(GlobalTxnId(2), {SiteId(0), SiteId(1)});
  ASSERT_TRUE(tsgd.Validate().ok());

  tsgd.AddDependency(SiteId(0), GlobalTxnId(1), GlobalTxnId(2));
  ASSERT_TRUE(tsgd.Validate().ok());
  tsgd.AddDependency(SiteId(1), GlobalTxnId(2), GlobalTxnId(1));

  EXPECT_FALSE(tsgd.Validate().ok());
}

// --------------------------------------------------------------------
// lock-table: a grant injected behind the bookkeeping's back (S/X
// co-grant) must fail the table self-check at the next lock event.
// --------------------------------------------------------------------

TEST(AuditMutationTest, CorruptedGrantIsFlagged) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  audit::Auditor collector(Collecting());
  lcc::LockManager lm;
  lm.EnableAudit(&collector);

  ASSERT_EQ(lm.Acquire(TxnId(1), DataItemId(7), lcc::LockMode::kShared),
            lcc::LockResult::kGranted);
  ASSERT_TRUE(collector.clean());

  // Mutation: grant an exclusive lock to T2 alongside T1's shared lock,
  // without going through Acquire's bookkeeping.
  lm.TestOnlyCorruptGrant(TxnId(2), DataItemId(7),
                          lcc::LockMode::kExclusive);
  EXPECT_FALSE(lm.CheckTableInvariants().ok());

  // The next audited lock event reports it, attributed to the transaction
  // whose request triggered the audited check.
  (void)lm.Acquire(TxnId(3), DataItemId(8), lcc::LockMode::kShared);
  EXPECT_GE(collector.CountFor("lock-table"), 1);
  EXPECT_EQ(collector.violations().back().offending_txn, 3);
}

// --------------------------------------------------------------------
// strict-2pl-phase: acquiring after the shrink phase began.
// --------------------------------------------------------------------

TEST(AuditMutationTest, AcquireAfterReleaseIsFlagged) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  audit::Auditor collector(Collecting());
  lcc::LockManager lm;
  lm.EnableAudit(&collector);

  ASSERT_EQ(lm.Acquire(TxnId(1), DataItemId(1), lcc::LockMode::kExclusive),
            lcc::LockResult::kGranted);
  lm.ReleaseAll(TxnId(1));
  ASSERT_TRUE(collector.clean());

  (void)lm.Acquire(TxnId(1), DataItemId(2), lcc::LockMode::kShared);
  EXPECT_EQ(collector.CountFor("strict-2pl-phase"), 1);
  EXPECT_EQ(collector.violations().back().offending_txn, 1);
}

// --------------------------------------------------------------------
// The ser-graph checker in isolation: consistent orders stay clean,
// removal of an aborted transaction unblocks its edges.
// --------------------------------------------------------------------

TEST(SerGraphAuditTest, ConsistentOrdersStayAcyclic) {
  audit::SerGraphAudit graph;
  EXPECT_FALSE(graph.RecordRelease(1, 0).has_value());
  EXPECT_FALSE(graph.RecordRelease(2, 0).has_value());
  EXPECT_FALSE(graph.RecordRelease(1, 1).has_value());
  EXPECT_FALSE(graph.RecordRelease(2, 1).has_value());
}

TEST(SerGraphAuditTest, RemovedTxnNoLongerConstrains) {
  audit::SerGraphAudit graph;
  EXPECT_FALSE(graph.RecordRelease(1, 0).has_value());
  EXPECT_FALSE(graph.RecordRelease(2, 0).has_value());  // 1 -> 2 at s0.
  graph.RemoveTxn(1);                                   // 1 aborted.
  EXPECT_FALSE(graph.RecordRelease(2, 1).has_value());
  // With 1 gone, releasing it afresh cannot close a cycle.
  EXPECT_FALSE(graph.RecordRelease(1, 1).has_value());
}

// --------------------------------------------------------------------
// A healthy federation under the default fail-fast auditor: every hook is
// live (GTM2 driver, lock tables, end-of-run oracle) and nothing fires.
// --------------------------------------------------------------------

TEST(AuditIntegrationTest, HealthyFederationReportsNothing) {
  if (!audit::kAuditCompiledIn) GTEST_SKIP() << "audit compiled out";
  MdbsConfig config = MdbsConfig::Mixed(
      {lcc::ProtocolKind::kTwoPhaseLocking,
       lcc::ProtocolKind::kTimestampOrdering,
       lcc::ProtocolKind::kTwoPhaseLocking},
      gtm::SchemeKind::kScheme2);
  config.seed = 7;
  Mdbs system(config);
  ASSERT_TRUE(system.audit_enabled());

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  DriverReport report = RunDriver(&system, driver, /*seed=*/7);

  EXPECT_GT(report.global_committed, 0);
  EXPECT_TRUE(system.auditor().clean());
  EXPECT_TRUE(system.RunAuditOracle().ok());
}

}  // namespace
}  // namespace mdbs
