// Model-based randomized testing of the LockManager: after every random
// Acquire/ReleaseAll step, structural invariants of a correct S/X lock
// table must hold. Complements the scenario tests in lock_manager_test.cc.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lcc/lock_manager.h"

namespace mdbs::lcc {
namespace {

constexpr int kTxns = 8;
constexpr int kItems = 5;

class Model {
 public:
  explicit Model(uint64_t seed) : rng_(seed) {}

  void Run(int steps) {
    for (int step = 0; step < steps; ++step) {
      if (rng_.NextBernoulli(0.25)) {
        ReleaseRandom();
      } else {
        AcquireRandom();
      }
      CheckInvariants(step);
      if (::testing::Test::HasFatalFailure()) return;
    }
    // Drain: everyone releases; the table must empty out.
    for (int t = 0; t < kTxns; ++t) Release(TxnId(t));
    ASSERT_EQ(lm_.ActiveItemCount(), 0u);
  }

 private:
  void AcquireRandom() {
    TxnId txn{static_cast<int64_t>(rng_.NextBelow(kTxns))};
    if (waiting_.contains(txn)) return;  // One outstanding request only.
    DataItemId item{static_cast<int64_t>(rng_.NextBelow(kItems))};
    LockMode mode =
        rng_.NextBernoulli(0.5) ? LockMode::kShared : LockMode::kExclusive;
    switch (lm_.Acquire(txn, item, mode)) {
      case LockResult::kGranted:
        held_[txn][item] = Covers(txn, item, LockMode::kExclusive)
                               ? LockMode::kExclusive
                               : mode;
        break;
      case LockResult::kWaiting:
        waiting_[txn] = {item, mode};
        break;
      case LockResult::kDeadlock:
        // The model treats deadlock as an abort.
        Release(txn);
        break;
    }
  }

  void ReleaseRandom() {
    Release(TxnId(static_cast<int64_t>(rng_.NextBelow(kTxns))));
  }

  void Release(TxnId txn) {
    std::vector<TxnId> granted = lm_.ReleaseAll(txn);
    held_.erase(txn);
    waiting_.erase(txn);
    for (TxnId woken : granted) {
      auto it = waiting_.find(woken);
      ASSERT_TRUE(it != waiting_.end())
          << ToString(woken) << " granted but was not waiting";
      held_[woken][it->second.first] = it->second.second;
      // An upgrade grant supersedes a previously held shared lock.
      if (it->second.second == LockMode::kExclusive) {
        held_[woken][it->second.first] = LockMode::kExclusive;
      }
      waiting_.erase(it);
    }
  }

  bool Covers(TxnId txn, DataItemId item, LockMode mode) {
    auto txn_it = held_.find(txn);
    if (txn_it == held_.end()) return false;
    auto item_it = txn_it->second.find(item);
    if (item_it == txn_it->second.end()) return false;
    return item_it->second == LockMode::kExclusive ||
           mode == LockMode::kShared;
  }

  void CheckInvariants(int step) {
    // 1. The manager's view matches the model's: every modeled grant is
    //    reported held, and waiting txns are reported waiting.
    for (const auto& [txn, items] : held_) {
      for (const auto& [item, mode] : items) {
        ASSERT_TRUE(lm_.Holds(txn, item, mode))
            << "step " << step << ": " << ToString(txn)
            << " lost its lock on " << ToString(item);
      }
    }
    for (const auto& [txn, request] : waiting_) {
      ASSERT_EQ(lm_.WaitingOn(txn), request.first)
          << "step " << step << ": " << ToString(txn) << " wait mismatch";
    }
    // 2. Mutual exclusion: at most one exclusive holder per item, and no
    //    shared holder alongside it.
    for (int i = 0; i < kItems; ++i) {
      DataItemId item{i};
      int exclusive = 0;
      int shared = 0;
      for (const auto& [txn, items] : held_) {
        auto it = items.find(item);
        if (it == items.end()) continue;
        (it->second == LockMode::kExclusive ? exclusive : shared) += 1;
      }
      ASSERT_LE(exclusive, 1) << "two exclusive holders on "
                              << ToString(item) << " at step " << step;
      if (exclusive == 1) {
        ASSERT_EQ(shared, 0) << "shared+exclusive on " << ToString(item)
                             << " at step " << step;
      }
    }
    // 3. No waiter waits for nothing: each waiting request genuinely
    //    conflicts with a holder or queued request.
    for (const auto& [txn, request] : waiting_) {
      ASSERT_FALSE(lm_.BlockersOf(txn, request.first, request.second).empty())
          << "step " << step << ": " << ToString(txn)
          << " waits with no blockers";
    }
  }

  Rng rng_;
  LockManager lm_;
  std::map<TxnId, std::map<DataItemId, LockMode>> held_;
  std::map<TxnId, std::pair<DataItemId, LockMode>> waiting_;
};

class LockManagerModelTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerModelTest,
                         ::testing::Range<uint64_t>(1, 9),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(LockManagerModelTest, InvariantsHoldOverRandomHistories) {
  Model model(GetParam() * 131);
  model.Run(2000);
}

}  // namespace
}  // namespace mdbs::lcc
