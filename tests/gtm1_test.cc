#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "gtm/gtm1.h"
#include "sim/event_loop.h"

namespace mdbs::gtm {
namespace {

const SiteId kA{0};
const SiteId kB{1};
const SiteId kC{2};
const DataItemId kX{1};

/// A scriptable in-memory gateway: protocol kinds per site, per-op logs,
/// and programmable failures.
class MockGateway : public SiteGateway {
 public:
  explicit MockGateway(sim::EventLoop* loop) : loop_(loop) {}

  void SetProtocol(SiteId site, lcc::ProtocolKind kind) {
    protocols_[site] = kind;
  }

  lcc::ProtocolKind ProtocolAt(SiteId site) const override {
    auto it = protocols_.find(site);
    return it == protocols_.end() ? lcc::ProtocolKind::kTwoPhaseLocking
                                  : it->second;
  }

  void Begin(SiteId site, TxnId txn, GlobalTxnId, TxnCallback cb) override {
    log.push_back({"begin", site, txn, DataOp{}});
    loop_->Schedule(1, [cb = std::move(cb)]() { cb(Status::OK()); });
  }

  void Submit(SiteId site, TxnId txn, const DataOp& op,
              OpCallback cb) override {
    log.push_back({"op", site, txn, op});
    ++ops_seen_;
    if (ops_seen_ == abort_on_op_) {
      loop_->Schedule(1, [cb = std::move(cb)]() {
        cb(Status::TransactionAborted("scripted abort"), 0);
      });
      return;
    }
    if (swallow_ops_from_ > 0 && ops_seen_ >= swallow_ops_from_) {
      return;  // Never answer: simulates a stuck site (timeout path).
    }
    // A tiny store so ticket read-increment-write chains see their
    // predecessors; reads of untouched items return 0, writes echo the
    // written value, matching the real sites.
    int64_t value = op.type == OpType::kWrite
                        ? (store_[op.item.value()] = op.value)
                        : store_[op.item.value()];
    loop_->Schedule(1, [cb = std::move(cb), value]() {
      cb(Status::OK(), value);
    });
  }

  void Commit(SiteId site, TxnId txn, TxnCallback cb) override {
    log.push_back({"commit", site, txn, DataOp{}});
    bool fail = fail_commits_at_.contains(site.value()) &&
                commit_failures_remaining_-- > 0;
    loop_->Schedule(1, [cb = std::move(cb), fail]() {
      cb(fail ? Status::TransactionAborted("validation failed")
              : Status::OK());
    });
  }

  void Abort(SiteId site, TxnId txn, TxnCallback cb) override {
    log.push_back({"abort", site, txn, DataOp{}});
    aborts_issued.push_back({site, txn});
    loop_->Schedule(1, [cb = std::move(cb)]() { cb(Status::OK()); });
  }

  struct Entry {
    std::string what;
    SiteId site;
    TxnId txn;
    DataOp op;
  };
  std::vector<Entry> log;
  std::vector<std::pair<SiteId, TxnId>> aborts_issued;

  void AbortOnNthOp(int n) { abort_on_op_ = n; }
  void SwallowOpsFrom(int n) { swallow_ops_from_ = n; }
  void FailCommitsAt(SiteId site, int count) {
    fail_commits_at_.insert(site.value());
    commit_failures_remaining_ = count;
  }

 private:
  sim::EventLoop* loop_;
  std::map<SiteId, lcc::ProtocolKind> protocols_;
  int ops_seen_ = 0;
  int abort_on_op_ = -1;
  int swallow_ops_from_ = -1;
  std::set<int64_t> fail_commits_at_;
  int commit_failures_remaining_ = 0;
  std::map<int64_t, int64_t> store_;
};

struct Gtm1Fixture : public ::testing::Test {
  Gtm1Fixture() : gateway(&loop) {}

  Gtm1* MakeGtm(Gtm1Config config = {}) {
    gtm = std::make_unique<Gtm1>(config, &loop, &gateway, /*seed=*/1);
    return gtm.get();
  }

  GlobalTxnResult SubmitAndRun(GlobalTxnSpec spec) {
    GlobalTxnResult result;
    bool done = false;
    gtm->Submit(std::move(spec), [&](const GlobalTxnResult& r) {
      result = r;
      done = true;
    });
    loop.Run();
    EXPECT_TRUE(done) << "transaction never completed";
    return result;
  }

  sim::EventLoop loop;
  MockGateway gateway;
  std::unique_ptr<Gtm1> gtm;
};

// Counts log entries of a kind.
int Count(const MockGateway& gw, const std::string& what) {
  int n = 0;
  for (const auto& entry : gw.log) {
    if (entry.what == what) ++n;
  }
  return n;
}

// --------------------------------------------------------------------------
// Step construction / serialization points
// --------------------------------------------------------------------------

TEST_F(Gtm1Fixture, TwoPlSiteTicketFreeAndBeginsOnce) {
  gateway.SetProtocol(kA, lcc::ProtocolKind::kTwoPhaseLocking);
  MakeGtm();
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Read(kA, kX));
  spec.ops.push_back(GlobalOp::Write(kA, kX, 5));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(Count(gateway, "begin"), 1);
  EXPECT_EQ(Count(gateway, "op"), 2);       // No ticket injected.
  EXPECT_EQ(Count(gateway, "commit"), 1);
}

TEST_F(Gtm1Fixture, TicketInjectedForSgtSite) {
  gateway.SetProtocol(kA, lcc::ProtocolKind::kSerializationGraph);
  MakeGtm();
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Read(kA, kX));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.ok());
  // Take-a-ticket is a read + an incremented write, then the data read.
  ASSERT_EQ(Count(gateway, "op"), 3);
  const auto& ticket_read = gateway.log[1];
  EXPECT_EQ(ticket_read.what, "op");
  EXPECT_EQ(ticket_read.op.type, OpType::kRead);
  EXPECT_EQ(ticket_read.op.item, kTicketItem);
  const auto& ticket_write = gateway.log[2];
  EXPECT_EQ(ticket_write.what, "op");
  EXPECT_EQ(ticket_write.op.type, OpType::kWrite);
  EXPECT_EQ(ticket_write.op.item, kTicketItem);
}

TEST_F(Gtm1Fixture, TicketInjectedForOccSiteButNotToSite) {
  gateway.SetProtocol(kA, lcc::ProtocolKind::kOptimistic);
  gateway.SetProtocol(kB, lcc::ProtocolKind::kTimestampOrdering);
  MakeGtm();
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Read(kA, kX));
  spec.ops.push_back(GlobalOp::Read(kB, kX));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.ok());
  int tickets = 0;
  for (const auto& entry : gateway.log) {
    if (entry.what == "op" && entry.op.item == kTicketItem) {
      ++tickets;
      EXPECT_EQ(entry.site, kA);
    }
  }
  EXPECT_EQ(tickets, 2);  // The OCC site's ticket read + write, nothing at B.
}

TEST_F(Gtm1Fixture, TicketWritesIncrementWhatTheyRead) {
  gateway.SetProtocol(kA, lcc::ProtocolKind::kSerializationGraph);
  MakeGtm();
  for (int i = 0; i < 3; ++i) {
    GlobalTxnSpec spec;
    spec.ops.push_back(GlobalOp::Read(kA, kX));
    EXPECT_TRUE(SubmitAndRun(std::move(spec)).status.ok());
  }
  std::vector<int64_t> tickets;
  for (const auto& entry : gateway.log) {
    if (entry.what == "op" && entry.op.item == kTicketItem &&
        entry.op.type == OpType::kWrite) {
      tickets.push_back(entry.op.value);
    }
  }
  // Each transaction read the previous ticket and wrote it incremented —
  // the read half is what makes two tickets conflict under backward
  // validation (a blind write would let OCC commit them in either order).
  EXPECT_EQ(tickets, (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(Gtm1Fixture, OperationsAreStrictlySequential) {
  // The paper's GTM1 rule: never submit an operation before the previous
  // one acked. With the mock's 1-tick latency, operations must appear in
  // spec order in the log.
  gateway.SetProtocol(kA, lcc::ProtocolKind::kTwoPhaseLocking);
  gateway.SetProtocol(kB, lcc::ProtocolKind::kTwoPhaseLocking);
  MakeGtm();
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Write(kA, DataItemId(1), 1));
  spec.ops.push_back(GlobalOp::Write(kB, DataItemId(2), 2));
  spec.ops.push_back(GlobalOp::Write(kA, DataItemId(3), 3));
  EXPECT_TRUE(SubmitAndRun(std::move(spec)).status.ok());
  std::vector<int64_t> data_items;
  for (const auto& entry : gateway.log) {
    if (entry.what == "op") data_items.push_back(entry.op.item.value());
  }
  EXPECT_EQ(data_items, (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(Gtm1Fixture, ValueFunctionSeesEarlierReads) {
  gateway.SetProtocol(kA, lcc::ProtocolKind::kTwoPhaseLocking);
  MakeGtm();
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Read(kA, kX));
  spec.ops.push_back(GlobalOp::WriteFn(
      kA, DataItemId(2), [](const ReadContext& reads) {
        return reads.at({kA, kX}) + 100;
      }));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.ok());
  // The mock echoes op.value (0) for reads, so the write sees 0 + 100.
  for (const auto& entry : gateway.log) {
    if (entry.what == "op" && entry.op.item == DataItemId(2)) {
      EXPECT_EQ(entry.op.value, 100);
    }
  }
  EXPECT_EQ(result.reads.at({kA, kX}), 0);
}

// --------------------------------------------------------------------------
// Failure handling
// --------------------------------------------------------------------------

TEST_F(Gtm1Fixture, LocalAbortTriggersRetryAndSucceeds) {
  MakeGtm();
  gateway.AbortOnNthOp(1);  // First data op fails once.
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Write(kA, kX, 5));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(gtm->stats().aborted_attempts, 1);
  EXPECT_EQ(gtm->stats().committed, 1);
  // The failed attempt's subtransaction was aborted at the site.
  EXPECT_EQ(Count(gateway, "abort"), 1);
}

TEST_F(Gtm1Fixture, GivesUpAfterMaxAttempts) {
  Gtm1Config config;
  config.max_attempts = 3;
  config.retry_backoff = 10;
  MakeGtm(config);
  gateway.AbortOnNthOp(-2);  // Never equal: use commit failures instead.
  gateway.FailCommitsAt(kA, 1000000);
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Write(kA, kX, 5));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.IsTransactionAborted());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(gtm->stats().failed, 1);
  EXPECT_EQ(gtm->stats().committed, 0);
}

TEST_F(Gtm1Fixture, TimeoutAbortsStuckAttempt) {
  Gtm1Config config;
  config.attempt_timeout = 500;
  config.max_attempts = 2;
  config.retry_backoff = 10;
  MakeGtm(config);
  gateway.SwallowOpsFrom(1);  // Site never answers.
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Write(kA, kX, 5));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.IsTransactionAborted());
  EXPECT_EQ(gtm->stats().timeouts, 2);
}

TEST_F(Gtm1Fixture, PartialCommitReportedNotRetried) {
  MakeGtm();
  // Commit fails at site B only; site A commits first.
  gateway.FailCommitsAt(kB, 1);
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Write(kA, kX, 5));
  spec.ops.push_back(GlobalOp::Write(kB, kX, 6));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.IsTransactionAborted());
  EXPECT_NE(result.status.message().find("partial"), std::string::npos);
  EXPECT_EQ(result.attempts, 1);  // No retry after a partial commit.
  EXPECT_EQ(gtm->stats().partial_commits, 1);
}

TEST_F(Gtm1Fixture, CleanCommitFailureAtFirstSiteRetries) {
  MakeGtm();
  gateway.FailCommitsAt(kA, 1);  // Only the first commit attempt fails.
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Write(kA, kX, 5));
  spec.ops.push_back(GlobalOp::Write(kB, kX, 6));
  GlobalTxnResult result = SubmitAndRun(std::move(spec));
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 2);
  EXPECT_EQ(gtm->stats().partial_commits, 0);
}

TEST_F(Gtm1Fixture, ManyConcurrentTxnsAllComplete) {
  MakeGtm();
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    GlobalTxnSpec spec;
    spec.ops.push_back(GlobalOp::Write(kA, DataItemId(i), i));
    spec.ops.push_back(GlobalOp::Write(kB, DataItemId(i), i));
    spec.ops.push_back(GlobalOp::Read(kC, DataItemId(i)));
    gtm->Submit(std::move(spec),
                [&done](const GlobalTxnResult& r) {
                  EXPECT_TRUE(r.status.ok());
                  ++done;
                });
  }
  loop.Run();
  EXPECT_EQ(done, 50);
  EXPECT_EQ(gtm->InFlight(), 0);
  EXPECT_EQ(gtm->stats().committed, 50);
}

}  // namespace
}  // namespace mdbs::gtm
