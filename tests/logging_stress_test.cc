// Regression for the MDBS_LOG sink race: SetLogSink used to assign a plain
// std::function that every logging thread read without synchronization, so
// swapping the sink while worker strands logged was a data race (torn
// function reads). The sink pointer is now swapped atomically; under TSan
// (the stress preset) the old code fails this test.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace mdbs {
namespace {

TEST(LoggingStressTest, ConcurrentLoggingSurvivesSinkSwaps) {
  std::atomic<int64_t> delivered{0};
  auto counting_sink = [&delivered](LogLevel, const std::string& line) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), '\n');
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  // Installed before the loggers start so no line hits stderr.
  SetLogSink(counting_sink);

  std::atomic<bool> stop{false};
  std::vector<std::thread> loggers;
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([&stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        MDBS_LOG(Warning) << "stress line from logger " << t;
      }
    });
  }
  // Swap sinks continuously while the loggers run — the race window the
  // atomic pointer closes.
  for (int i = 0; i < 200; ++i) {
    SetLogSink(counting_sink);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& logger : loggers) logger.join();

  // Restore the default sink BEFORE `delivered` leaves scope — installed
  // sinks live for the process lifetime.
  SetLogSink(nullptr);
  EXPECT_GT(delivered.load(), 0);
}

}  // namespace
}  // namespace mdbs
