#include <gtest/gtest.h>

#include "sched/graph.h"
#include "sched/schedule.h"
#include "sched/serializability.h"

namespace mdbs::sched {
namespace {

const SiteId kS0{0};
const SiteId kS1{1};
const TxnId kT1{1};
const TxnId kT2{2};
const TxnId kT3{3};
const DataItemId kX{10};
const DataItemId kY{11};

// --------------------------------------------------------------------------
// DirectedGraph
// --------------------------------------------------------------------------

TEST(DirectedGraphTest, EmptyGraphIsAcyclic) {
  DirectedGraph g;
  EXPECT_FALSE(g.HasCycle());
  EXPECT_TRUE(g.TopologicalOrder().has_value());
}

TEST(DirectedGraphTest, AddEdgeCreatesNodes) {
  DirectedGraph g;
  g.AddEdge(1, 2);
  EXPECT_EQ(g.NodeCount(), 2u);
  EXPECT_EQ(g.EdgeCount(), 1u);
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 1));
}

TEST(DirectedGraphTest, DuplicateEdgesNotCounted) {
  DirectedGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.EdgeCount(), 1u);
}

TEST(DirectedGraphTest, DetectsSelfLoop) {
  DirectedGraph g;
  g.AddEdge(1, 1);
  EXPECT_TRUE(g.HasCycle());
}

TEST(DirectedGraphTest, DetectsTwoCycle) {
  DirectedGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(2, 1);
  auto cycle = g.FindCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->front(), cycle->back());
  EXPECT_GE(cycle->size(), 3u);
}

TEST(DirectedGraphTest, ChainIsAcyclic) {
  DirectedGraph g;
  for (int i = 0; i < 100; ++i) g.AddEdge(i, i + 1);
  EXPECT_FALSE(g.HasCycle());
}

TEST(DirectedGraphTest, DiamondIsAcyclic) {
  DirectedGraph g;
  g.AddEdge(1, 2);
  g.AddEdge(1, 3);
  g.AddEdge(2, 4);
  g.AddEdge(3, 4);
  EXPECT_FALSE(g.HasCycle());
}

TEST(DirectedGraphTest, LongCycleDetected) {
  DirectedGraph g;
  for (int i = 0; i < 50; ++i) g.AddEdge(i, (i + 1) % 50);
  EXPECT_TRUE(g.HasCycle());
  EXPECT_FALSE(g.TopologicalOrder().has_value());
}

TEST(DirectedGraphTest, TopologicalOrderRespectsEdges) {
  DirectedGraph g;
  g.AddEdge(3, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 2);
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.has_value());
  auto pos = [&](int64_t node) {
    for (size_t i = 0; i < order->size(); ++i) {
      if ((*order)[i] == node) return i;
    }
    return order->size();
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(1), pos(2));
}

// --------------------------------------------------------------------------
// ScheduleRecorder
// --------------------------------------------------------------------------

struct RecorderFixture : public ::testing::Test {
  void Begin(TxnId txn, SiteId site, GlobalTxnId global = GlobalTxnId()) {
    recorder.RecordBegin(site, txn, global);
  }
  void Op(TxnId txn, SiteId site, const DataOp& op) {
    recorder.RecordOp(site, txn, op, /*time=*/0);
  }
  void Commit(TxnId txn, std::optional<int64_t> key = std::nullopt) {
    recorder.RecordFinish(txn, TxnOutcome::kCommitted, key);
  }
  void Abort(TxnId txn) {
    recorder.RecordFinish(txn, TxnOutcome::kAborted, std::nullopt);
  }
  ScheduleRecorder recorder;
};

TEST_F(RecorderFixture, CountsOutcomes) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Begin(kT3, kS0);
  Commit(kT1);
  Abort(kT2);
  EXPECT_EQ(recorder.CommittedCount(), 1);
  EXPECT_EQ(recorder.AbortedCount(), 1);
  EXPECT_EQ(recorder.FindTxn(kT3)->outcome, TxnOutcome::kActive);
}

TEST_F(RecorderFixture, TxnsAtSiteFilters) {
  Begin(kT1, kS0);
  Begin(kT2, kS1);
  EXPECT_EQ(recorder.TxnsAtSite(kS0).size(), 1u);
  EXPECT_EQ(recorder.TxnsAtSite(kS1).size(), 1u);
}

// --------------------------------------------------------------------------
// Local serializability checking — classic textbook schedules
// --------------------------------------------------------------------------

TEST_F(RecorderFixture, SerialScheduleIsSerializable) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Read(kX));
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Read(kX));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Commit(kT1);
  Commit(kT2);
  EXPECT_TRUE(CheckLocalSerializability(recorder, kS0).serializable);
}

TEST_F(RecorderFixture, LostUpdateAnomalyDetected) {
  // r1(x) r2(x) w1(x) w2(x): T2 -> T1 (r2 before w1) and T1 -> T2: cycle.
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Read(kX));
  Op(kT2, kS0, DataOp::Read(kX));
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Commit(kT1);
  Commit(kT2);
  SerializabilityResult result = CheckLocalSerializability(recorder, kS0);
  EXPECT_FALSE(result.serializable);
  ASSERT_TRUE(result.cycle.has_value());
}

TEST_F(RecorderFixture, InconsistentAnalysisDetected) {
  // r1(x) w2(x) w2(y) r1(y): T1 -> T2 (x) and T2 -> T1 (y): cycle.
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Read(kX));
  Op(kT2, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kY, 1));
  Op(kT1, kS0, DataOp::Read(kY));
  Commit(kT1);
  Commit(kT2);
  EXPECT_FALSE(CheckLocalSerializability(recorder, kS0).serializable);
}

TEST_F(RecorderFixture, AbortedTxnsExcludedFromConflictGraph) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Read(kX));
  Op(kT2, kS0, DataOp::Read(kX));
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Commit(kT1);
  Abort(kT2);  // The cycle partner aborted: schedule is serializable.
  EXPECT_TRUE(CheckLocalSerializability(recorder, kS0).serializable);
}

TEST_F(RecorderFixture, ReadReadDoesNotConflict) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Read(kX));
  Op(kT2, kS0, DataOp::Read(kX));
  Op(kT1, kS0, DataOp::Read(kX));
  Commit(kT1);
  Commit(kT2);
  DirectedGraph g = BuildLocalConflictGraph(recorder, kS0);
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST_F(RecorderFixture, ReducedEdgesPreserveTransitiveConflicts) {
  // w1(x) w2(x) r3(x): the w1->r3 conflict must be implied via w2.
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Begin(kT3, kS0);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Op(kT3, kS0, DataOp::Read(kX));
  Commit(kT1);
  Commit(kT2);
  Commit(kT3);
  DirectedGraph g = BuildLocalConflictGraph(recorder, kS0);
  EXPECT_TRUE(g.HasEdge(kT1.value(), kT2.value()));
  EXPECT_TRUE(g.HasEdge(kT2.value(), kT3.value()));
}

// --------------------------------------------------------------------------
// Global serializability — the paper's indirect-conflict example
// --------------------------------------------------------------------------

TEST_F(RecorderFixture, GloballyNonSerializableViaIndirectConflicts) {
  // Global G1 (subtxns T1@s0, T11@s1), G2 (T2@s0, T12@s1).
  // Local-only conflicts order G1 before G2 at s0 and G2 before G1 at s1.
  const GlobalTxnId kG1{100};
  const GlobalTxnId kG2{200};
  const TxnId kT11{11};
  const TxnId kT12{12};
  Begin(kT1, kS0, kG1);
  Begin(kT2, kS0, kG2);
  Begin(kT11, kS1, kG1);
  Begin(kT12, kS1, kG2);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));   // G1 -> G2 at s0.
  Op(kT12, kS1, DataOp::Write(kY, 1));
  Op(kT11, kS1, DataOp::Write(kY, 2));  // G2 -> G1 at s1.
  Commit(kT1);
  Commit(kT2);
  Commit(kT11);
  Commit(kT12);
  // Each local schedule alone is serializable...
  EXPECT_TRUE(CheckLocalSerializability(recorder, kS0).serializable);
  EXPECT_TRUE(CheckLocalSerializability(recorder, kS1).serializable);
  // ...but the global schedule is not (the MDBS problem, paper §1).
  SerializabilityResult result = CheckGlobalSerializability(recorder);
  EXPECT_FALSE(result.serializable);
}

TEST_F(RecorderFixture, IndirectConflictThroughLocalTxn) {
  // At s0: G1 writes x; local L reads x and writes y; G2 reads y.
  // => G1 -> L -> G2, an indirect conflict invisible to a GTM.
  const GlobalTxnId kG1{100};
  const GlobalTxnId kG2{200};
  const TxnId kL{50};
  Begin(kT1, kS0, kG1);
  Begin(kL, kS0);  // Local.
  Begin(kT2, kS0, kG2);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kL, kS0, DataOp::Read(kX));
  Op(kL, kS0, DataOp::Write(kY, 1));
  Op(kT2, kS0, DataOp::Read(kY));
  Commit(kT1);
  Commit(kL);
  Commit(kT2);
  DirectedGraph g = BuildGlobalConflictGraph(recorder);
  int64_t g1 = GlobalNodeKey(*recorder.FindTxn(kT1));
  int64_t g2 = GlobalNodeKey(*recorder.FindTxn(kT2));
  int64_t local = GlobalNodeKey(*recorder.FindTxn(kL));
  EXPECT_TRUE(g.HasEdge(g1, local));
  EXPECT_TRUE(g.HasEdge(local, g2));
  EXPECT_NE(g1 % 2, 1);  // Globals get even keys.
  EXPECT_EQ(local % 2, 1);
}

TEST_F(RecorderFixture, SubtransactionsCollapseIntoGlobalNode) {
  const GlobalTxnId kG1{100};
  const TxnId kT11{11};
  Begin(kT1, kS0, kG1);
  Begin(kT11, kS1, kG1);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT11, kS1, DataOp::Write(kY, 1));
  Commit(kT1);
  Commit(kT11);
  DirectedGraph g = BuildGlobalConflictGraph(recorder);
  EXPECT_EQ(g.NodeCount(), 1u);
}

// --------------------------------------------------------------------------
// Serialization-key property
// --------------------------------------------------------------------------

TEST_F(RecorderFixture, KeyPropertyHoldsWhenKeysMatchOrder) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Commit(kT1, 10);
  Commit(kT2, 20);
  EXPECT_TRUE(CheckSerializationKeyProperty(recorder, kS0).ok());
}

TEST_F(RecorderFixture, KeyPropertyViolationReported) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Commit(kT1, 20);
  Commit(kT2, 10);  // Keys contradict the conflict order.
  EXPECT_FALSE(CheckSerializationKeyProperty(recorder, kS0).ok());
}

TEST_F(RecorderFixture, KeyPropertyIgnoresKeylessTxns) {
  Begin(kT1, kS0);
  Begin(kT2, kS0);
  Op(kT1, kS0, DataOp::Write(kX, 1));
  Op(kT2, kS0, DataOp::Write(kX, 2));
  Commit(kT1);  // No key (e.g. SGT site).
  Commit(kT2);
  EXPECT_TRUE(CheckSerializationKeyProperty(recorder, kS0).ok());
}

}  // namespace
}  // namespace mdbs::sched
