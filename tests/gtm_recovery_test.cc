// GTM durability battery: crash-point fuzzing over WAL prefixes plus
// end-to-end gtm_crash outages.
//
// The fuzz core treats every frame boundary of a real run's GTM log as a
// potential crash point and checks, with oracles independent of the code
// under test's own bookkeeping:
//   (1) State oracle — a standalone GTM2 rebuilt from the prefix (latest
//       checkpoint + logged mutation suffix) must fingerprint-match the
//       live GTM2 captured at exactly that mutation during the original
//       run (via the mutation observer hook).
//   (2) Committed-prefix oracle — a job that reached its committed kFinish
//       record within the prefix is never resurrected as unfinished, and
//       the committed count never regresses as the prefix grows.
//   (3) Torn tails — truncating mid-frame (what a crash during an append
//       leaves) is admitted and ignored, never an error and never a
//       phantom record.
// The end-to-end tests crash the whole GTM mid-run through the fault plan
// and assert clients ride out the outage: buffered submissions drain in
// order, nothing is lost, and the federation stays serializable.
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gtm/gtm1.h"
#include "gtm/gtm2.h"
#include "gtm/gtm_log.h"
#include "gtm/queue_op.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "storage/framing.h"
#include "storage/log_device.h"

namespace mdbs {
namespace {

using gtm::GtmFinishOutcome;
using gtm::GtmLogAnalysis;
using gtm::GtmLogRecord;
using gtm::GtmLogRecordType;
using gtm::GtmLogScan;
using gtm::SchemeKind;
using lcc::ProtocolKind;

const std::vector<ProtocolKind> kProtocols = {
    ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
    ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic};

/// A standalone GTM2 with muted callbacks: the replay target. Its internal
/// state transitions are a pure function of the mutation sequence, which is
/// exactly what the fingerprint oracle relies on.
std::unique_ptr<gtm::Gtm2> MakeReplayGtm2(SchemeKind scheme) {
  gtm::Gtm2::Callbacks callbacks;
  callbacks.release_ser = [](GlobalTxnId, SiteId) {};
  callbacks.forward_ack = [](GlobalTxnId, SiteId) {};
  callbacks.validate_passed = [](GlobalTxnId) {};
  callbacks.abort_txn = [](GlobalTxnId) {};
  return std::make_unique<gtm::Gtm2>(gtm::MakeScheme(scheme),
                                     std::move(callbacks));
}

/// Rebuilds GTM2 state from a log prefix the way Gtm1::Recover does:
/// restore the latest checkpoint, replay the logged mutation suffix.
std::vector<uint8_t> ReplayPrefixFingerprint(
    const std::vector<GtmLogRecord>& prefix, SchemeKind scheme) {
  GtmLogAnalysis analysis;
  Status ok = AnalyzeGtmLog(prefix, &analysis);
  EXPECT_TRUE(ok.ok()) << ok.ToString();
  std::unique_ptr<gtm::Gtm2> gtm2 = MakeReplayGtm2(scheme);
  if (analysis.checkpoint_index != GtmLogAnalysis::kNoCheckpoint) {
    const gtm::GtmCheckpoint& cp =
        prefix[analysis.checkpoint_index].checkpoint;
    gtm::Gtm2::VolatileImage image;
    image.wait = cp.wait;
    image.dead_txns = cp.dead_txns;
    image.stats = cp.gtm2_stats;
    image.scheme_steps = cp.scheme_steps;
    image.scheme_state = cp.scheme_state;
    gtm2->RestoreFromCheckpoint(image);
  }
  for (size_t index : analysis.gtm2_replay) {
    const GtmLogRecord& record = prefix[index];
    if (record.type == GtmLogRecordType::kEnqueue) {
      gtm::QueueOp op;
      op.kind = static_cast<gtm::QueueOpKind>(record.code);
      op.txn = GlobalTxnId(record.attempt);
      op.site = SiteId(record.site);
      op.sites.reserve(record.sites.size());
      for (int64_t site : record.sites) op.sites.emplace_back(site);
      gtm2->Enqueue(std::move(op));
    } else {
      gtm2->AbortCleanup(GlobalTxnId(record.attempt));
    }
  }
  return gtm2->StateFingerprint();
}

class GtmCrashPointFuzzTest
    : public ::testing::TestWithParam<std::tuple<SchemeKind, int64_t>> {};

INSTANTIATE_TEST_SUITE_P(
    SchemesAndCheckpoints, GtmCrashPointFuzzTest,
    ::testing::Combine(::testing::Values(SchemeKind::kScheme0,
                                         SchemeKind::kScheme1,
                                         SchemeKind::kScheme2,
                                         SchemeKind::kScheme3),
                       ::testing::Values<int64_t>(0, 32)),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == 0 ? "_NoCheckpoint"
                                           : "_Checkpoint32");
    });

// The battery: run a faulty workload against a durable GTM while capturing
// a live GTM2 fingerprint after every logged mutation, then truncate the
// log at 100+ frame boundaries and replay each prefix into a standalone
// GTM2. Every replayed fingerprint must equal the live capture at the same
// mutation count — over schemes 0-3, with and without checkpoints, so
// crash points straddle checkpoint records in both directions.
TEST_P(GtmCrashPointFuzzTest, EveryLogPrefixReplaysToTheLiveState) {
  const SchemeKind scheme = std::get<0>(GetParam());
  const int64_t checkpoint_interval = std::get<1>(GetParam());

  auto device = std::make_shared<storage::MemLogDevice>();
  MdbsConfig config = MdbsConfig::Mixed(kProtocols, scheme);
  config.seed = 101;
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = checkpoint_interval;
  config.gtm.wal_device = device;
  config.gtm.attempt_timeout = 10'000;
  config.gtm.retry_backoff = 200;
  config.health.probe_interval = 300;
  config.health.suspect_after = 600;
  config.health.down_after = 1200;
  // One crash sweep: quarantine churn puts park/unpark/site_down records
  // into the log so analysis covers the whole record taxonomy.
  config.fault_plan = fault::FaultPlan::CrashSweep(
      /*num_sites=*/4, /*first_at=*/2000, /*gap=*/4000, /*duration=*/1500);
  Mdbs system(config);

  // Live captures: fingerprint after the k-th GTM2 mutation. The observer
  // fires after each logged enqueue / abort-cleanup once the synchronous
  // pump quiesced — the same positions the log's mutation records mark.
  std::vector<std::vector<uint8_t>> captures;
  system.gtm().SetGtm2MutationObserverForTest([&]() {
    captures.push_back(system.gtm().gtm2().StateFingerprint());
  });

  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 20;
  driver.local_workload.items_per_site = 20;
  driver.retry.max_resubmissions = 2;
  RunDriver(&system, driver, 101);

  GtmLogScan scan;
  ASSERT_TRUE(ReadGtmLog(*device, &scan).ok());
  ASSERT_FALSE(scan.torn_tail);
  ASSERT_GT(scan.records.size(), 150u)
      << "workload too small for a meaningful crash-point sweep";
  if (checkpoint_interval > 0) {
    int64_t checkpoints = 0;
    for (const GtmLogRecord& r : scan.records) {
      if (r.type == GtmLogRecordType::kCheckpoint) ++checkpoints;
    }
    ASSERT_GT(checkpoints, 1) << "sweep never straddled a checkpoint";
  }

  // Truncation points: every frame boundary, strided down to ~150 probes
  // (always including the empty log and the full log).
  const size_t n = scan.records.size();
  const size_t stride = std::max<size_t>(1, n / 150);
  size_t probes = 0;
  int64_t last_committed = 0;
  std::vector<int64_t> committed_jobs;  // in log order
  size_t consumed = 0;                  // records folded into the oracles
  for (size_t cut = 0;; cut += stride) {
    if (cut > n) break;
    std::vector<GtmLogRecord> prefix(scan.records.begin(),
                                     scan.records.begin() + cut);
    for (; consumed < cut; ++consumed) {
      const GtmLogRecord& r = scan.records[consumed];
      if (r.type == GtmLogRecordType::kFinish &&
          r.code == static_cast<uint8_t>(GtmFinishOutcome::kCommitted)) {
        committed_jobs.push_back(r.job);
      }
    }
    size_t mutations = 0;
    for (const GtmLogRecord& r : prefix) {
      if (r.type == GtmLogRecordType::kEnqueue ||
          r.type == GtmLogRecordType::kAbortCleanup) {
        ++mutations;
      }
    }
    ASSERT_LE(mutations, captures.size());

    // Oracle (1): replayed state == live state at the same mutation.
    std::vector<uint8_t> replayed = ReplayPrefixFingerprint(prefix, scheme);
    std::vector<uint8_t> expected =
        mutations == 0 ? MakeReplayGtm2(scheme)->StateFingerprint()
                       : captures[mutations - 1];
    EXPECT_EQ(replayed, expected)
        << "prefix of " << cut << " records (mutation " << mutations
        << ") replayed to a different GTM2 state";

    // Oracle (2): committed jobs stay committed and never reappear.
    GtmLogAnalysis analysis;
    ASSERT_TRUE(AnalyzeGtmLog(prefix, &analysis).ok());
    EXPECT_GE(analysis.stats.committed, last_committed)
        << "committed count regressed at cut " << cut;
    last_committed = analysis.stats.committed;
    for (int64_t job : committed_jobs) {
      EXPECT_EQ(analysis.jobs.count(job), 0u)
          << "committed job " << job << " resurrected as unfinished at cut "
          << cut;
    }
    ++probes;
    if (cut == n) break;
    if (cut + stride > n) cut = n - stride;  // force the full-log probe
  }
  EXPECT_GE(probes, 100u) << "not enough crash points exercised";
  EXPECT_EQ(last_committed, system.gtm().stats().committed)
      << "full-log analysis disagrees with the live run";
}

// Oracle (3): a crash mid-append leaves a torn tail. Truncating anywhere
// inside a frame must yield exactly the preceding records, flagged torn —
// recovery then starts from a consistent prefix instead of failing.
TEST(GtmRecoveryTest, TornTailIsIgnoredNotFatal) {
  auto device = std::make_shared<storage::MemLogDevice>();
  MdbsConfig config = MdbsConfig::Mixed(kProtocols, SchemeKind::kScheme3);
  config.seed = 5;
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = 64;
  config.gtm.wal_device = device;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 0;
  driver.target_global_commits = 20;
  driver.global_workload.items_per_site = 20;
  RunDriver(&system, driver, 5);

  std::vector<uint8_t> image;
  ASSERT_TRUE(device->ReadAll(&image).ok());
  storage::FrameScan frames;
  ASSERT_TRUE(storage::ScanFrames(image, &frames).ok());
  ASSERT_GT(frames.boundaries.size(), 10u);

  for (size_t keep : {size_t{0}, frames.boundaries.size() / 2,
                      frames.boundaries.size() - 2}) {
    // boundaries[keep] is the offset just past frame `keep`; +5 bytes is
    // always inside the next frame's 8-byte header.
    size_t torn_at = frames.boundaries[keep] + 5;
    ASSERT_LT(torn_at, image.size());
    storage::MemLogDevice torn(
        std::vector<uint8_t>(image.begin(), image.begin() + torn_at));
    GtmLogScan scan;
    Status status = ReadGtmLog(torn, &scan);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(scan.torn_tail);
    EXPECT_EQ(scan.records.size(), keep + 1);
    EXPECT_EQ(scan.valid_bytes, frames.boundaries[keep]);
    GtmLogAnalysis analysis;
    EXPECT_TRUE(AnalyzeGtmLog(scan.records, &analysis).ok());
  }
}

// End to end, simulated engine: the GTM crashes while transactions are in
// flight and while a client submits *during* the outage. The outage-time
// submission is buffered and drained at recovery; both transactions
// commit, and the run stays serializable.
TEST(GtmRecoveryTest, SubmissionsDuringOutageAreBufferedAndDrained) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering},
      SchemeKind::kScheme3);
  config.seed = 3;
  config.gtm.durable = true;
  fault::FaultPlan plan;
  plan.gtm_crashes.push_back(fault::GtmCrashEvent{1000, 5000});
  config.fault_plan = plan;
  Mdbs system(config);

  gtm::GlobalTxnSpec before;  // in flight when the GTM dies
  before.ops.push_back(gtm::GlobalOp::Write(SiteId(0), DataItemId(1), 10));
  before.ops.push_back(gtm::GlobalOp::Write(SiteId(1), DataItemId(2), 20));
  gtm::GlobalTxnSpec during;  // submitted while the GTM is down
  during.ops.push_back(gtm::GlobalOp::Read(SiteId(0), DataItemId(1)));
  during.ops.push_back(gtm::GlobalOp::Write(SiteId(1), DataItemId(3), 30));

  int before_done = 0, during_done = 0;
  system.loop().Schedule(500, [&]() {
    system.SubmitGlobal(before, [&](const gtm::GlobalTxnResult& result) {
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      ++before_done;
    });
  });
  system.loop().Schedule(3000, [&]() {
    EXPECT_TRUE(system.gtm().IsDown());
    system.SubmitGlobal(during, [&](const gtm::GlobalTxnResult& result) {
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      ++during_done;
    });
  });
  system.RunUntilIdle();

  EXPECT_EQ(before_done, 1);
  EXPECT_EQ(during_done, 1);
  EXPECT_FALSE(system.gtm().IsDown());
  gtm::GtmDurabilityStats stats = system.gtm().durability_stats();
  EXPECT_EQ(stats.crashes, 1);
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_EQ(stats.buffered_submits, 1);
  EXPECT_EQ(system.gtm().InFlight(), 0);
  EXPECT_TRUE(system.CheckGloballySerializable().ok());
}

// Modeled replay cost: recovery must charge base + per-record ticks before
// the GTM resumes, and the charge must surface in the stats.
TEST(GtmRecoveryTest, RecoveryCostScalesWithLogLength) {
  auto run = [](sim::Time per_record) {
    MdbsConfig config = MdbsConfig::Mixed(
        {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering},
        SchemeKind::kScheme3);
    config.seed = 23;
    config.gtm.durable = true;
    config.gtm.checkpoint_interval = 0;  // replay the whole log
    config.gtm.recovery_base_time = 100;
    config.gtm.recovery_time_per_record = per_record;
    fault::FaultPlan plan;
    plan.gtm_crashes.push_back(fault::GtmCrashEvent{5000, 2000});
    config.fault_plan = plan;
    Mdbs system(config);
    DriverConfig driver;
    driver.global_clients = 4;
    driver.local_clients_per_site = 0;
    driver.target_global_commits = 30;
    driver.global_workload.items_per_site = 20;
    DriverReport report = RunDriver(&system, driver, 23);
    EXPECT_EQ(report.gtm_durability.recoveries, 1);
    EXPECT_GT(report.gtm_durability.replayed_records, 0);
    return report.gtm_durability;
  };
  gtm::GtmDurabilityStats cheap = run(0);
  EXPECT_EQ(cheap.recovery_ticks, 100);
  gtm::GtmDurabilityStats costly = run(3);
  EXPECT_GE(costly.recovery_ticks,
            100 + 3 * costly.replayed_records)
      << "replay cost must scale with the scanned log";
}

// Attempt numbering must stay monotonic across a restart: the recovered
// GTM allocates ids strictly above everything the log has seen, so trace
// consumers (check_trace.py gtm-recovery schema) can rely on it.
TEST(GtmRecoveryTest, IdAllocationResumesAboveTheLog) {
  auto device = std::make_shared<storage::MemLogDevice>();
  MdbsConfig config = MdbsConfig::Mixed(kProtocols, SchemeKind::kScheme3);
  config.seed = 47;
  config.gtm.durable = true;
  config.gtm.wal_device = device;
  fault::FaultPlan plan;
  plan.gtm_crashes.push_back(fault::GtmCrashEvent{4000, 2000});
  config.fault_plan = plan;
  Mdbs system(config);
  DriverConfig driver;
  driver.global_clients = 6;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = 40;
  driver.global_workload.items_per_site = 20;
  driver.local_workload.items_per_site = 20;
  DriverReport report = RunDriver(&system, driver, 47);
  ASSERT_EQ(report.gtm_durability.crashes, 1);

  GtmLogScan scan;
  ASSERT_TRUE(ReadGtmLog(*device, &scan).ok());
  // Replaying the full log must never see an attempt id reused for a new
  // attempt: AnalyzeGtmLog errors on an attempt_start for a live id, and
  // next_attempt_id grows monotonically. The same holds for job ids.
  GtmLogAnalysis analysis;
  ASSERT_TRUE(AnalyzeGtmLog(scan.records, &analysis).ok());
  int64_t max_attempt = -1;
  for (const GtmLogRecord& r : scan.records) {
    if (r.type != GtmLogRecordType::kAttemptStart) continue;
    EXPECT_GT(r.attempt, max_attempt)
        << "attempt ids must be strictly increasing across the restart";
    max_attempt = r.attempt;
  }
  EXPECT_EQ(analysis.next_attempt_id, max_attempt + 1);
}

}  // namespace
}  // namespace mdbs
