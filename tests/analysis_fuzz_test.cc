// Differential soundness battery for the static robustness analyzer: over
// 120 seeded random template mixes and federations, every robust verdict is
// put on trial — the mix actually runs with the certified fast path (no
// ser-op delays, no tickets) in BOTH execution engines and must pass the
// full end-of-run serializability battery (local CSR, ser-key property,
// global ser(S)/MVSG, strictness, runtime auditor). Every non-robust
// verdict must instead carry a witness cycle that checks out against the
// interference graph. An unsound analyzer fails here loudly.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/capability.h"
#include "analysis/robustness.h"
#include "analysis/template.h"
#include "common/rng.h"
#include "gtm/robust_fast_path.h"
#include "gtm/scheme.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

const ProtocolKind kAllProtocols[] = {
    ProtocolKind::kTwoPhaseLocking,
    ProtocolKind::kTimestampOrdering,
    ProtocolKind::kSerializationGraph,
    ProtocolKind::kOptimistic,
    ProtocolKind::kMultiversionTO,
    ProtocolKind::kTwoPhaseLockingWoundWait,
    ProtocolKind::kTwoPhaseLockingWaitDie,
};

const SchemeKind kConservativeSchemes[] = {
    SchemeKind::kScheme0,
    SchemeKind::kScheme1,
    SchemeKind::kScheme2,
    SchemeKind::kScheme3,
};

struct FuzzCase {
  std::vector<ProtocolKind> protocols;
  analysis::TemplateMix mix;
  SchemeKind scheme = SchemeKind::kScheme3;
};

/// Draws a random federation plus template mix. Half the draws confine all
/// writes to one designated site (reads roam) — the shape the certificate
/// exists for — so the battery exercises both verdicts in quantity instead
/// of drowning in easy non-robust mixes.
FuzzCase MakeCase(uint64_t seed) {
  Rng rng(seed * 2654435761u + 17);
  FuzzCase result;
  int site_count = static_cast<int>(rng.NextInRange(2, 4));
  for (int i = 0; i < site_count; ++i) {
    result.protocols.push_back(kAllProtocols[rng.NextBelow(7)]);
  }
  result.scheme = kConservativeSchemes[rng.NextBelow(4)];

  result.mix.keys_per_class = rng.NextInRange(4, 16);
  result.mix.local_txns = rng.NextBernoulli(0.15);
  bool siloed = rng.NextBernoulli(0.5);
  int write_site = static_cast<int>(rng.NextBelow(
      static_cast<uint64_t>(site_count)));
  int template_count = static_cast<int>(rng.NextInRange(2, 4));
  int64_t class_pool = rng.NextInRange(2, 6);
  for (int t = 0; t < template_count; ++t) {
    analysis::TxnTemplate tmpl;
    tmpl.name = "t" + std::to_string(t);
    tmpl.weight = 1.0 + static_cast<double>(rng.NextBelow(3));
    int op_count = static_cast<int>(rng.NextInRange(1, 4));
    for (int o = 0; o < op_count; ++o) {
      analysis::TemplateOp op;
      bool write = rng.NextBernoulli(0.4);
      int site = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(site_count)));
      if (siloed && write) site = write_site;
      op.site = SiteId(site);
      op.key_class = static_cast<int64_t>(rng.NextBelow(
          static_cast<uint64_t>(class_pool)));
      op.type = write ? OpType::kWrite : OpType::kRead;
      tmpl.ops.push_back(op);
    }
    result.mix.templates.push_back(tmpl);
  }
  return result;
}

/// Runs `fuzz_case` delay-free (certified fast path) on one engine and
/// asserts the full correctness battery. The analyzer promised this cannot
/// go wrong; hold it to that.
void RunCertified(const FuzzCase& fuzz_case, bool threaded, uint64_t seed) {
  MdbsConfig config = MdbsConfig::Mixed(fuzz_case.protocols, fuzz_case.scheme);
  config.seed = seed;
  config.threaded = threaded;
  config.gtm.attempt_timeout = threaded ? 2'000'000 : 200'000;
  config.gtm.certified_fast_path = true;
  config.gtm.scheme_factory = [scheme = fuzz_case.scheme]() {
    return gtm::MakeRobustFastPath(scheme);
  };
  Mdbs system(config);

  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = fuzz_case.mix.local_txns ? 1 : 0;
  driver.target_global_commits = threaded ? 20 : 40;
  driver.templates = fuzz_case.mix;
  DriverReport report = threaded ? RunThreadedDriver(&system, driver, seed)
                                 : RunDriver(&system, driver, seed);

  SCOPED_TRACE(std::string(threaded ? "threaded" : "sim") + " engine");
  EXPECT_GT(report.global_committed, 0);
  // The fast path really ran: every attempt took it, and not one ser
  // operation was delayed in GTM2.
  EXPECT_EQ(report.gtm1.fast_path_attempts, report.gtm1.attempts);
  EXPECT_EQ(report.gtm2.ser_wait_additions, 0);
  // The full battery the verdict certified.
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckSerializationKeyProperty().ok());
  Status strict = system.CheckStrictness();
  EXPECT_TRUE(strict.ok()) << strict;
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  if (system.audit_enabled()) {
    EXPECT_TRUE(system.auditor().clean());
  }
}

TEST(AnalysisFuzzTest, RobustVerdictsSurviveDelayFreeRunsWitnessesCheckOut) {
  int robust_cases = 0;
  int witness_cases = 0;
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    FuzzCase fuzz_case = MakeCase(seed);
    std::vector<site::SiteConfig> sites;
    for (size_t i = 0; i < fuzz_case.protocols.size(); ++i) {
      site::SiteConfig site;
      site.id = SiteId(static_cast<int64_t>(i));
      site.protocol = fuzz_case.protocols[i];
      sites.push_back(site);
    }
    analysis::AnalysisReport report = analysis::Analyze(
        fuzz_case.mix, analysis::BuildCapabilityMatrix(sites));

    SCOPED_TRACE("seed=" + std::to_string(seed) + " mix:\n" +
                 fuzz_case.mix.ToString());
    if (report.fast_path_robust) {
      ++robust_cases;
      EXPECT_FALSE(report.certificate.empty());
      EXPECT_FALSE(report.witness.has_value());
      RunCertified(fuzz_case, /*threaded=*/false, seed);
      // The threaded engine is real time on one core; spot-check every
      // third robust mix there rather than all of them.
      if (robust_cases % 3 == 1) {
        RunCertified(fuzz_case, /*threaded=*/true, seed);
      }
    } else {
      ++witness_cases;
      // Every non-robust verdict must be explainable: a concrete cycle,
      // checkable against the interference graph, spanning >= 2 sites.
      ASSERT_TRUE(report.witness.has_value());
      EXPECT_TRUE(analysis::CheckWitness(*report.witness, report.graph));
      EXPECT_GE(report.witness->Sites().size(), 2u);
    }
    // Per-scheme verdicts carry the same witness obligation.
    for (const analysis::SchemeVerdict& verdict : report.per_scheme) {
      if (!verdict.robust) {
        ASSERT_TRUE(verdict.witness.has_value())
            << gtm::SchemeKindName(verdict.scheme);
        EXPECT_TRUE(analysis::CheckWitness(*verdict.witness, report.graph));
      }
    }
  }
  // The battery only means something if both verdicts showed up in force.
  EXPECT_GE(robust_cases, 20);
  EXPECT_GE(witness_cases, 20);
}

}  // namespace
}  // namespace mdbs
