#include <gtest/gtest.h>

#include "sched/stats.h"

namespace mdbs::sched {
namespace {

const SiteId kS0{0};
const SiteId kS1{1};

TEST(ScheduleStatsTest, EmptyRecorder) {
  ScheduleRecorder recorder;
  ScheduleStats stats = ComputeScheduleStats(recorder);
  EXPECT_EQ(stats.total_ops, 0);
  EXPECT_EQ(stats.committed_global_txns, 0);
  EXPECT_TRUE(stats.per_site.empty());
}

TEST(ScheduleStatsTest, AggregatesPerSite) {
  ScheduleRecorder recorder;
  TxnId local{1}, sub_a{2}, sub_b{3};
  GlobalTxnId global{10};
  recorder.RecordBegin(kS0, local, GlobalTxnId());
  recorder.RecordBegin(kS0, sub_a, global);
  recorder.RecordBegin(kS1, sub_b, global);
  recorder.RecordOp(kS0, local, DataOp::Read(DataItemId(1)), 0);
  recorder.RecordOp(kS0, local, DataOp::Write(DataItemId(1), 5), 1);
  recorder.RecordOp(kS0, sub_a, DataOp::Write(DataItemId(2), 5), 2);
  recorder.RecordOp(kS1, sub_b, DataOp::Read(DataItemId(3)), 3);
  recorder.RecordFinish(local, TxnOutcome::kCommitted, std::nullopt);
  recorder.RecordFinish(sub_a, TxnOutcome::kCommitted, std::nullopt);
  recorder.RecordFinish(sub_b, TxnOutcome::kAborted, std::nullopt);

  ScheduleStats stats = ComputeScheduleStats(recorder);
  EXPECT_EQ(stats.total_ops, 4);
  EXPECT_EQ(stats.committed_local_txns, 1);
  EXPECT_EQ(stats.committed_global_txns, 1);  // One distinct global id.
  const SiteScheduleStats& s0 = stats.per_site.at(kS0);
  EXPECT_EQ(s0.reads, 1);
  EXPECT_EQ(s0.writes, 2);
  EXPECT_EQ(s0.committed_txns, 2);
  EXPECT_EQ(s0.global_subtxns, 1);
  EXPECT_EQ(s0.distinct_items, 2);
  const SiteScheduleStats& s1 = stats.per_site.at(kS1);
  EXPECT_EQ(s1.aborted_txns, 1);
  EXPECT_EQ(s1.committed_txns, 0);
}

TEST(ScheduleStatsTest, ToStringListsSites) {
  ScheduleRecorder recorder;
  TxnId txn{1};
  recorder.RecordBegin(kS0, txn, GlobalTxnId());
  recorder.RecordOp(kS0, txn, DataOp::Read(DataItemId(1)), 0);
  recorder.RecordFinish(txn, TxnOutcome::kCommitted, std::nullopt);
  std::string text = ComputeScheduleStats(recorder).ToString();
  EXPECT_NE(text.find("s0"), std::string::npos);
  EXPECT_NE(text.find("r=1"), std::string::npos);
}

TEST(ScheduleDumpTest, TruncatesAndFormats) {
  ScheduleRecorder recorder;
  TxnId txn{1};
  recorder.RecordBegin(kS0, txn, GlobalTxnId());
  for (int i = 0; i < 10; ++i) {
    recorder.RecordOp(kS0, txn, DataOp::Read(DataItemId(i)), i);
  }
  std::string dump = recorder.Dump(/*limit=*/3);
  EXPECT_NE(dump.find("#0"), std::string::npos);
  EXPECT_NE(dump.find("7 more"), std::string::npos);
  EXPECT_EQ(dump.find("#5"), std::string::npos);
}

TEST(ScheduleDumpTest, FinishSeqOrdersAgainstOps) {
  ScheduleRecorder recorder;
  TxnId t1{1}, t2{2};
  recorder.RecordBegin(kS0, t1, GlobalTxnId());
  recorder.RecordBegin(kS0, t2, GlobalTxnId());
  recorder.RecordOp(kS0, t1, DataOp::Write(DataItemId(1), 5), 0);
  recorder.RecordFinish(t1, TxnOutcome::kCommitted, std::nullopt);
  recorder.RecordOp(kS0, t2, DataOp::Read(DataItemId(1)), 1);
  const TxnRecord* r1 = recorder.FindTxn(t1);
  ASSERT_NE(r1, nullptr);
  EXPECT_GT(r1->finish_seq, recorder.ops()[0].seq);
  EXPECT_LT(r1->finish_seq, recorder.ops()[1].seq);
}

}  // namespace
}  // namespace mdbs::sched
