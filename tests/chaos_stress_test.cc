// Chaos tier (ctest -L chaos): heavy deterministic fault plans — repeated
// crash sweeps plus aggressive message loss, duplication and delay spikes —
// against larger workloads, on both engines. In CI this runs under TSan as
// well, so the threaded runs double as data-race probes for the failure
// paths (health monitor, quarantine, dedup guards).
#include <string>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

/// Two full crash sweeps across all four sites plus every message fault the
/// plan language knows, at rates well above the tier-1 tests.
fault::FaultPlan HeavyPlan(sim::Time first_at, sim::Time gap,
                           sim::Time duration) {
  fault::FaultPlan plan;
  plan.sweeps.push_back(fault::SweepEvent{first_at, gap, duration});
  plan.sweeps.push_back(fault::SweepEvent{first_at + 4 * gap, gap, duration});
  plan.request_loss = 0.04;
  plan.response_loss = 0.04;
  plan.duplicate = 0.05;
  plan.delay_spike = 0.10;
  plan.spike_ticks = 200;
  plan.seed = 99;
  return plan;
}

MdbsConfig ChaosSystem(SchemeKind scheme, bool threaded) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph, ProtocolKind::kTwoPhaseLocking},
      scheme);
  config.threaded = threaded;
  config.seed = 97;
  config.gtm.retry_backoff = 200;
  config.gtm.attempt_timeout = threaded ? 50'000 : 10'000;
  config.health.probe_interval = threaded ? 400 : 300;
  config.health.suspect_after = threaded ? 1000 : 600;
  config.health.down_after = threaded ? 2000 : 1200;
  return config;
}

DriverConfig ChaosWorkload(int target) {
  DriverConfig driver;
  driver.global_clients = 8;
  driver.local_clients_per_site = 1;
  driver.target_global_commits = target;
  driver.global_workload.items_per_site = 40;
  driver.local_workload.items_per_site = 40;
  driver.retry.max_resubmissions = 4;
  driver.retry.backoff = 400;
  return driver;
}

class ChaosStressTest : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schemes, ChaosStressTest,
    ::testing::Values(SchemeKind::kScheme0, SchemeKind::kScheme1,
                      SchemeKind::kScheme2, SchemeKind::kScheme3),
    [](const auto& info) {
      return std::string(gtm::SchemeKindName(info.param));
    });

TEST_P(ChaosStressTest, SimulatedHeavyChaosStaysCorrect) {
  MdbsConfig config = ChaosSystem(GetParam(), /*threaded=*/false);
  config.fault_plan = HeavyPlan(/*first_at=*/2000, /*gap=*/3000,
                                /*duration=*/2000);
  Mdbs system(config);
  DriverConfig driver = ChaosWorkload(/*target=*/80);
  DriverReport report = RunDriver(&system, driver, 97);

  EXPECT_EQ(report.faults.plan_crashes, 8) << "two sweeps over four sites";
  EXPECT_GT(report.faults.requests_lost + report.faults.responses_lost, 0);
  EXPECT_EQ(report.faults.duplicates_suppressed,
            report.faults.duplicates_injected);
  EXPECT_GE(report.global_committed + report.global_failed, 80);
  EXPECT_GE(report.global_committed, 40);
  EXPECT_EQ(system.gtm().InFlight(), 0);
  EXPECT_EQ(system.gtm().ParkedJobs(), 0);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
  EXPECT_TRUE(system.CheckStrictness().ok());
}

TEST_P(ChaosStressTest, ThreadedHeavyChaosStaysCorrect) {
  MdbsConfig config = ChaosSystem(GetParam(), /*threaded=*/true);
  config.fault_plan = HeavyPlan(/*first_at=*/6000, /*gap=*/8000,
                                /*duration=*/4000);
  Mdbs system(config);
  DriverConfig driver = ChaosWorkload(/*target=*/60);
  DriverReport report = RunThreadedDriver(&system, driver, 97);

  EXPECT_GE(report.global_committed + report.global_failed, 60);
  EXPECT_GE(report.global_committed, 30);
  EXPECT_GE(report.faults.plan_crashes, 1);
  EXPECT_EQ(report.faults.duplicates_suppressed,
            report.faults.duplicates_injected);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

// Failover under fire, threaded: the warm standby promotes mid-run while
// both sweeps, message loss, duplication and delay spikes are all active.
// Under TSan this stresses the shipping tap (log append on the GTM strand,
// delivery rescheduled on the same strand), the fence handoff, and the
// facade's active-GTM swap racing real site strands. The oracles stay
// exact: one promotion, epoch 1, a dead fenced primary, duplicates all
// suppressed, and a serializable federation.
TEST_P(ChaosStressTest, ThreadedFailoverUnderHeavyChaosStaysCorrect) {
  MdbsConfig config = ChaosSystem(GetParam(), /*threaded=*/true);
  config.gtm.durable = true;
  config.gtm.checkpoint_interval = 128;
  config.gtm_standby = true;
  config.standby_lag = 1500;
  config.fault_plan = HeavyPlan(/*first_at=*/6000, /*gap=*/8000,
                                /*duration=*/4000);
  config.fault_plan.gtm_failovers.push_back(
      fault::GtmFailoverEvent{30'000, 5000});
  Mdbs system(config);
  DriverConfig driver = ChaosWorkload(/*target=*/60);
  DriverReport report = RunThreadedDriver(&system, driver, 97);

  EXPECT_GE(report.global_committed + report.global_failed, 60);
  EXPECT_GE(report.global_committed, 30);
  EXPECT_EQ(report.gtm_standby.promotions, 1);
  EXPECT_EQ(report.gtm_standby.fencing_epoch, 1);
  EXPECT_TRUE(system.primary_gtm().IsDown());
  EXPECT_EQ(report.faults.duplicates_suppressed,
            report.faults.duplicates_injected);
  EXPECT_TRUE(system.CheckLocallySerializable().ok());
  EXPECT_TRUE(system.CheckGloballySerializable().ok())
      << system.GlobalSerializabilityResult().ToString();
}

}  // namespace
}  // namespace mdbs
