// Differential test between the two execution engines: one workload
// configuration, run once through the deterministic simulator (RunDriver)
// and once through real threads (RunThreadedDriver), must agree on the
// audit verdict — clean under both — and both complete the target number
// of global transactions. Ticks mean virtual time in the first run and
// real microseconds in the second; the configuration carries over
// unchanged.
#include <string>

#include <gtest/gtest.h>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;

// No OCC in the mix: its partial commits (atomic commitment is out of
// scope, paper §6) would make `global_failed == 0` engine-dependent.
MdbsConfig SystemConfig(SchemeKind scheme, bool threaded) {
  MdbsConfig config = MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      scheme);
  config.seed = 17;
  config.threaded = threaded;
  // Identical in both engines, but sized for the threaded one: with ~20
  // client threads on one core a thread can starve past the default 200ms
  // attempt timeout, and repeated timeouts read as `global_failed` noise.
  // 2s keeps the cross-site-deadlock escape hatch without the starvation
  // flake, so `global_failed == 0` stays a strict differential claim.
  config.gtm.attempt_timeout = 2'000'000;
  return config;
}

DriverConfig Workload() {
  DriverConfig config;
  config.global_clients = 6;
  config.local_clients_per_site = 2;
  config.target_global_commits = 40;
  config.global_workload.items_per_site = 30;
  config.local_workload.items_per_site = 30;
  return config;
}

class ThreadedVsSim : public ::testing::TestWithParam<SchemeKind> {};

INSTANTIATE_TEST_SUITE_P(Schemes, ThreadedVsSim,
                         ::testing::Values(SchemeKind::kScheme0,
                                           SchemeKind::kScheme3),
                         [](const ::testing::TestParamInfo<SchemeKind>& info) {
                           return gtm::SchemeKindName(info.param);
                         });

TEST_P(ThreadedVsSim, EnginesAgreeOnOutcomeAndAuditVerdict) {
  DriverConfig workload = Workload();

  Mdbs sim_system(SystemConfig(GetParam(), /*threaded=*/false));
  DriverReport sim_report = RunDriver(&sim_system, workload, 23);

  Mdbs threaded_system(SystemConfig(GetParam(), /*threaded=*/true));
  DriverReport threaded_report =
      RunThreadedDriver(&threaded_system, workload, 23);

  for (const DriverReport* report : {&sim_report, &threaded_report}) {
    EXPECT_GE(report->global_committed, workload.target_global_commits);
    EXPECT_EQ(report->global_failed, 0);
    EXPECT_GT(report->local_committed, 0);
  }
  // Audit ran inside each driver (fail-fast would have aborted already);
  // assert the verdicts agree on clean anyway for noaudit builds' sake.
  EXPECT_TRUE(sim_system.auditor().clean());
  EXPECT_TRUE(threaded_system.auditor().clean());
  EXPECT_TRUE(sim_system.CheckGloballySerializable().ok());
  EXPECT_TRUE(threaded_system.CheckGloballySerializable().ok())
      << threaded_system.GlobalSerializabilityResult().ToString();
}

TEST(ThreadedEngineTest, ReportsWallClockThroughput) {
  Mdbs system(SystemConfig(SchemeKind::kScheme3, /*threaded=*/true));
  DriverConfig workload = Workload();
  workload.target_global_commits = 10;
  DriverReport report = RunThreadedDriver(&system, workload, 5);
  EXPECT_GE(report.global_committed, 10);
  EXPECT_GT(report.duration, 0);  // Real microseconds elapsed.
  EXPECT_GT(report.global_throughput, 0);  // Committed txns per second.
}

}  // namespace
}  // namespace mdbs
