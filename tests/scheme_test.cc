#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gtm/baselines.h"
#include "gtm/gtm2.h"
#include "gtm/scheme0.h"
#include "gtm/scheme1.h"
#include "gtm/scheme2.h"
#include "gtm/scheme3.h"
#include "sched/graph.h"

namespace mdbs::gtm {
namespace {

const SiteId kA{0};
const SiteId kB{1};
const SiteId kC{2};

/// Drives a Gtm2 instance as GTM1 + the servers would: inits, sequential
/// ser operations per transaction (next enqueued only after the previous
/// ack was forwarded), acks delivered when the harness chooses (modeling
/// site/network latency), then validate and fin. Records the per-site ser
/// execution (release) order for ser(S) checking.
class SchemeDriver {
 public:
  explicit SchemeDriver(std::unique_ptr<Scheme> scheme) {
    Gtm2::Callbacks callbacks;
    callbacks.release_ser = [this](GlobalTxnId txn, SiteId site) {
      site_order_[site].push_back(txn);
      pending_acks_.push_back(QueueOp::Ack(txn, site));
    };
    callbacks.forward_ack = [this](GlobalTxnId txn, SiteId site) {
      auto& state = txns_.at(txn);
      ASSERT_LT(state.next_ser, state.sites.size());
      ASSERT_EQ(state.sites[state.next_ser], site);
      ++state.next_ser;
    };
    callbacks.validate_passed = [this](GlobalTxnId txn) {
      txns_.at(txn).validated = true;
    };
    callbacks.abort_txn = [this](GlobalTxnId txn) {
      aborted_.push_back(txn);
      txns_.at(txn).finished = true;  // The attempt is dead.
      gtm2_->AbortCleanup(txn);       // As GTM1 would.
    };
    callbacks.fin_done = [this](GlobalTxnId txn) {
      txns_.at(txn).finished = true;
    };
    gtm2_ = std::make_unique<Gtm2>(std::move(scheme), std::move(callbacks));
  }

  void AddTxn(GlobalTxnId txn, std::vector<SiteId> sites) {
    txns_[txn] = TxnState{std::move(sites)};
    order_.push_back(txn);
  }

  void Init(GlobalTxnId txn) {
    auto& state = txns_.at(txn);
    ASSERT_FALSE(state.inited);
    state.inited = true;
    gtm2_->Enqueue(QueueOp::Init(txn, state.sites));
  }

  /// Enqueues the transaction's next ser operation. GTM1 sequencing: only
  /// legal when the previous one was acked (EnqueueableSer true).
  void EnqueueNextSer(GlobalTxnId txn) {
    auto& state = txns_.at(txn);
    ASSERT_TRUE(state.inited);
    ASSERT_LT(state.enqueued_sers, state.sites.size());
    ASSERT_EQ(state.enqueued_sers, state.next_ser);
    SiteId site = state.sites[state.enqueued_sers++];
    gtm2_->Enqueue(QueueOp::Ser(txn, site));
  }

  /// EnqueueNextSer if another ser remains and the previous was acked;
  /// returns false otherwise.
  bool TryEnqueueNextSer(GlobalTxnId txn) {
    auto& state = txns_.at(txn);
    if (!state.inited || state.enqueued_sers >= state.sites.size() ||
        state.enqueued_sers != state.next_ser) {
      return false;
    }
    SiteId site = state.sites[state.enqueued_sers++];
    gtm2_->Enqueue(QueueOp::Ser(txn, site));
    return true;
  }

  /// Delivers the most recently produced ack.
  void DeliverLastAck() {
    ASSERT_FALSE(pending_acks_.empty());
    DeliverAck(pending_acks_.size() - 1);
  }

  /// Delivers the pending ack at `index`.
  void DeliverAck(size_t index) {
    ASSERT_LT(index, pending_acks_.size());
    QueueOp ack = pending_acks_[index];
    pending_acks_.erase(pending_acks_.begin() +
                        static_cast<ptrdiff_t>(index));
    gtm2_->Enqueue(ack);
  }

  void Validate(GlobalTxnId txn) { gtm2_->Enqueue(QueueOp::Validate(txn)); }
  void Fin(GlobalTxnId txn) { gtm2_->Enqueue(QueueOp::Fin(txn)); }

  /// Runs a full randomized execution of all registered transactions.
  /// Returns true when everything finished (liveness).
  bool RunRandomized(uint64_t seed) {
    Rng rng(seed);
    for (;;) {
      // Collect available actions.
      std::vector<std::function<void()>> actions;
      for (GlobalTxnId txn : order_) {
        TxnState& state = txns_.at(txn);
        if (!state.inited) {
          actions.push_back([this, txn] { Init(txn); });
          continue;
        }
        if (state.enqueued_sers < state.sites.size() &&
            state.enqueued_sers == state.next_ser) {
          actions.push_back([this, txn] { EnqueueNextSer(txn); });
        }
        if (state.next_ser == state.sites.size() && !state.validate_sent) {
          actions.push_back([this, txn] {
            txns_.at(txn).validate_sent = true;
            Validate(txn);
          });
        }
        if (state.validated && !state.fin_sent) {
          actions.push_back([this, txn] {
            txns_.at(txn).fin_sent = true;
            Fin(txn);
          });
        }
      }
      for (size_t i = 0; i < pending_acks_.size(); ++i) {
        actions.push_back([this, i] { DeliverAck(i); });
      }
      if (actions.empty()) break;
      actions[rng.NextBelow(actions.size())]();
    }
    for (const auto& [txn, state] : txns_) {
      if (!state.finished) return false;
    }
    return true;
  }

  /// Builds the ser(S) serialization graph from the observed per-site ser
  /// execution orders and checks acyclicity (Theorems 3, 5, 8).
  bool SerScheduleSerializable() const {
    sched::DirectedGraph graph;
    for (const auto& [site, txns] : site_order_) {
      for (size_t i = 1; i < txns.size(); ++i) {
        graph.AddEdge(txns[i - 1].value(), txns[i].value());
      }
    }
    return !graph.HasCycle();
  }

  Gtm2& gtm2() { return *gtm2_; }
  const std::map<SiteId, std::vector<GlobalTxnId>>& site_order() const {
    return site_order_;
  }
  const std::vector<GlobalTxnId>& aborted() const { return aborted_; }

 private:
  struct TxnState {
    std::vector<SiteId> sites;
    bool inited = false;
    size_t enqueued_sers = 0;  // Sers placed into QUEUE.
    size_t next_ser = 0;       // Sers acked (forwarded to GTM1).
    bool validate_sent = false;
    bool validated = false;
    bool fin_sent = false;
    bool finished = false;
  };

  std::unique_ptr<Gtm2> gtm2_;
  std::map<GlobalTxnId, TxnState> txns_;
  std::vector<GlobalTxnId> order_;
  std::map<SiteId, std::vector<GlobalTxnId>> site_order_;
  std::vector<QueueOp> pending_acks_;
  std::vector<GlobalTxnId> aborted_;
};

// --------------------------------------------------------------------------
// Scheme 0 — FIFO per site
// --------------------------------------------------------------------------

TEST(Scheme0Test, SerializesInInitOrderAtEachSite) {
  SchemeDriver d(std::make_unique<Scheme0>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.Init(g2);
  // G2's ser arrives first but must wait for G1 (FIFO).
  d.EnqueueNextSer(g2);
  EXPECT_EQ(d.site_order().count(kA), 0u);
  EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 1);
  d.EnqueueNextSer(g1);
  ASSERT_EQ(d.site_order().at(kA).size(), 1u);
  EXPECT_EQ(d.site_order().at(kA)[0], g1);
  d.DeliverAck(0);  // Ack for G1 releases G2.
  ASSERT_EQ(d.site_order().at(kA).size(), 2u);
  EXPECT_EQ(d.site_order().at(kA)[1], g2);
}

TEST(Scheme0Test, OneOutstandingSerPerSite) {
  SchemeDriver d(std::make_unique<Scheme0>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g1);
  d.EnqueueNextSer(g2);
  // G1 executed but not acked: G2 must not run yet.
  EXPECT_EQ(d.site_order().at(kA).size(), 1u);
  d.DeliverAck(0);
  EXPECT_EQ(d.site_order().at(kA).size(), 2u);
}

TEST(Scheme0Test, DisjointSitesRunIndependently) {
  SchemeDriver d(std::make_unique<Scheme0>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kB});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g2);
  d.EnqueueNextSer(g1);
  EXPECT_EQ(d.site_order().at(kA).size(), 1u);
  EXPECT_EQ(d.site_order().at(kB).size(), 1u);
  EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 0);
}

// --------------------------------------------------------------------------
// Scheme 1 — TSG
// --------------------------------------------------------------------------

TEST(Scheme1Test, UnmarkedOpsExecuteOutOfInitOrder) {
  // Two txns sharing one site: no TSG cycle, nothing marked, so unlike
  // Scheme 0 the later-inited transaction may execute first.
  SchemeDriver d(std::make_unique<Scheme1>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g2);
  ASSERT_EQ(d.site_order().at(kA).size(), 1u);
  EXPECT_EQ(d.site_order().at(kA)[0], g2);
  EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 0);
}

TEST(Scheme1Test, CycleMarksOperations) {
  auto scheme = std::make_unique<Scheme1>();
  Scheme1* raw = scheme.get();
  SchemeDriver d(std::move(scheme));
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA, kB});
  d.AddTxn(g2, {kA, kB});
  d.Init(g1);
  EXPECT_FALSE(raw->IsMarked(g1, kA));
  d.Init(g2);  // Closes the TSG cycle G1-A-G2-B-G1.
  EXPECT_TRUE(raw->IsMarked(g2, kA));
  EXPECT_TRUE(raw->IsMarked(g2, kB));
}

TEST(Scheme1Test, MarkedOpWaitsForQueueFront) {
  SchemeDriver d(std::make_unique<Scheme1>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA, kB});
  d.AddTxn(g2, {kA, kB});
  d.Init(g1);
  d.Init(g2);
  // G2@A is marked and G1@A is ahead in the insert queue: must wait.
  d.EnqueueNextSer(g2);
  EXPECT_EQ(d.site_order().count(kA), 0u);
  // G1 runs A (ack) then B (ack); each ack removes G1 from that insert
  // queue, letting the marked G2 reach the front.
  d.EnqueueNextSer(g1);       // ser G1@A executes.
  d.DeliverAck(0);            // ack G1@A: G2@A now front -> executes.
  ASSERT_EQ(d.site_order().at(kA).size(), 2u);
  EXPECT_EQ(d.site_order().at(kA)[0], g1);
  EXPECT_EQ(d.site_order().at(kA)[1], g2);
}

TEST(Scheme1Test, FinWaitsForDeleteQueueHead) {
  SchemeDriver d(std::make_unique<Scheme1>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g2);  // Unmarked: executes first.
  d.DeliverAck(0);       // G2 acked; delete queue at A: [G2].
  d.EnqueueNextSer(g1);
  d.DeliverAck(0);       // Delete queue: [G2, G1].
  // G1's fin must wait behind G2's.
  d.Validate(g1);
  d.Fin(g1);
  EXPECT_EQ(d.gtm2().wait_size(), 1u);  // fin(G1) waiting.
  d.Validate(g2);
  d.Fin(g2);  // Unblocks fin(G1) as well.
  EXPECT_EQ(d.gtm2().wait_size(), 0u);
}

// --------------------------------------------------------------------------
// Scheme 2 — TSGD
// --------------------------------------------------------------------------

TEST(Scheme2Test, DependencyFromExecutedSerDelaysSuccessor) {
  SchemeDriver d(std::make_unique<Scheme2>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA, kB});
  d.AddTxn(g2, {kA, kB});
  d.Init(g1);
  d.EnqueueNextSer(g1);  // ser G1@A executes (not yet acked).
  d.Init(g2);            // Dep (G1 -> G2)@A recorded; Δ may add more.
  d.EnqueueNextSer(g2);  // ser G2@A: must wait for ack(G1@A).
  ASSERT_EQ(d.site_order().at(kA).size(), 1u);
  d.DeliverAck(0);
  ASSERT_EQ(d.site_order().at(kA).size(), 2u);
  EXPECT_EQ(d.site_order().at(kA)[1], g2);
}

TEST(Scheme2Test, SingleSharedSiteNeedsNoDelta) {
  auto scheme = std::make_unique<Scheme2>();
  Scheme2* raw = scheme.get();
  SchemeDriver d(std::move(scheme));
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA, kB});
  d.Init(g1);
  d.Init(g2);
  EXPECT_EQ(raw->tsgd().DependencyCount(), 0u);
  // And the later transaction may execute first (no constraints yet).
  d.EnqueueNextSer(g2);
  EXPECT_EQ(d.site_order().at(kA)[0], g2);
}

TEST(Scheme2Test, FinWaitsForPredecessorFin) {
  SchemeDriver d(std::make_unique<Scheme2>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.EnqueueNextSer(g1);
  d.DeliverAck(0);
  d.Init(g2);  // Dep (G1 -> G2)@A from the executed rule.
  d.EnqueueNextSer(g2);
  d.DeliverAck(0);
  d.Validate(g2);
  d.Fin(g2);  // Must wait: dependency into G2 still present.
  EXPECT_EQ(d.gtm2().wait_size(), 1u);
  d.Validate(g1);
  d.Fin(g1);
  EXPECT_EQ(d.gtm2().wait_size(), 0u);
}

// --------------------------------------------------------------------------
// Scheme 3 — O-scheme
// --------------------------------------------------------------------------

TEST(Scheme3Test, AllowsOutOfInitOrderWhereScheme0Waits) {
  SchemeDriver d(std::make_unique<Scheme3>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g2);  // No serialized-before relation: executes.
  ASSERT_EQ(d.site_order().at(kA).size(), 1u);
  EXPECT_EQ(d.site_order().at(kA)[0], g2);
  EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 0);
  d.DeliverAck(0);
  d.EnqueueNextSer(g1);  // G1 after G2 at A: consistent, fine.
  EXPECT_EQ(d.site_order().at(kA)[1], g1);
}

TEST(Scheme3Test, BlocksSerializationCycle) {
  auto scheme = std::make_unique<Scheme3>();
  Scheme3* raw = scheme.get();
  SchemeDriver d(std::move(scheme));
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA, kB});
  d.AddTxn(g2, {kB, kA});  // Opposite site order.
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g1);  // G1@A executes: G1 serialized before G2.
  EXPECT_TRUE(raw->SerBef(g2).contains(g1));
  d.DeliverAck(0);
  d.EnqueueNextSer(g2);  // G2@B would serialize G2 before G1: must wait.
  EXPECT_EQ(d.site_order().count(kB), 0u);
  EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 1);
  d.EnqueueNextSer(g1);  // G1@B executes...
  d.DeliverAck(0);       // ...and its ack releases G2@B.
  ASSERT_EQ(d.site_order().at(kB).size(), 2u);
  EXPECT_EQ(d.site_order().at(kB)[0], g1);
  EXPECT_EQ(d.site_order().at(kB)[1], g2);
}

TEST(Scheme3Test, SerBefMaintainsTransitiveClosure) {
  auto scheme = std::make_unique<Scheme3>();
  Scheme3* raw = scheme.get();
  SchemeDriver d(std::move(scheme));
  GlobalTxnId g1{1}, g2{2}, g3{3};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA, kB});
  d.AddTxn(g3, {kB});
  d.Init(g1);
  d.Init(g2);
  d.Init(g3);
  d.EnqueueNextSer(g1);  // G1 before G2 (G2 pending at A).
  d.DeliverAck(0);
  EXPECT_TRUE(raw->SerBef(g2).contains(g1));
  d.EnqueueNextSer(g2);  // G2@A.
  d.DeliverAck(0);
  d.EnqueueNextSer(g2);  // G2@B: G2 before G3, so G1 before G3 too.
  EXPECT_TRUE(raw->SerBef(g3).contains(g2));
  EXPECT_TRUE(raw->SerBef(g3).contains(g1));
}

TEST(Scheme3Test, FinWaitsUntilSerBefEmpty) {
  SchemeDriver d(std::make_unique<Scheme3>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA});
  d.AddTxn(g2, {kA});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g1);
  d.DeliverAck(0);
  d.EnqueueNextSer(g2);
  d.DeliverAck(0);
  d.Validate(g2);
  d.Fin(g2);  // G1 ∈ ser_bef(G2): must wait for G1's fin.
  EXPECT_EQ(d.gtm2().wait_size(), 1u);
  d.Validate(g1);
  d.Fin(g1);
  EXPECT_EQ(d.gtm2().wait_size(), 0u);
}

// --------------------------------------------------------------------------
// Cross-scheme property tests
// --------------------------------------------------------------------------

struct SchemeCase {
  SchemeKind kind;
  uint64_t seed;
};

class ConservativeSchemeProperty
    : public ::testing::TestWithParam<SchemeCase> {};

std::string CaseName(const ::testing::TestParamInfo<SchemeCase>& info) {
  return std::string(SchemeKindName(info.param.kind)) + "_seed" +
         std::to_string(info.param.seed);
}

std::vector<SchemeCase> AllCases() {
  std::vector<SchemeCase> cases;
  for (SchemeKind kind : {SchemeKind::kScheme0, SchemeKind::kScheme1,
                          SchemeKind::kScheme2, SchemeKind::kScheme3}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      cases.push_back(SchemeCase{kind, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConservativeSchemeProperty,
                         ::testing::ValuesIn(AllCases()), CaseName);

void AddRandomPopulation(SchemeDriver* d, Rng* rng, int txns, int sites) {
  for (int t = 0; t < txns; ++t) {
    std::vector<SiteId> all;
    for (int s = 0; s < sites; ++s) all.push_back(SiteId(s));
    rng->Shuffle(&all);
    size_t count = 1 + rng->NextBelow(static_cast<uint64_t>(sites));
    all.resize(count);
    d->AddTxn(GlobalTxnId(t), all);
  }
}

// Theorems 3, 5, 8 (and trivially Scheme 0): every conservative scheme
// keeps ser(S) serializable, never aborts, and always completes (no
// scheduler-induced deadlock) for arbitrary interleavings.
TEST_P(ConservativeSchemeProperty, SerScheduleSerializableAndLive) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 30; ++trial) {
    SchemeDriver d(MakeScheme(GetParam().kind));
    AddRandomPopulation(&d, &rng, /*txns=*/8, /*sites=*/4);
    ASSERT_TRUE(d.RunRandomized(rng.Next()))
        << SchemeKindName(GetParam().kind) << " stalled in trial " << trial;
    EXPECT_TRUE(d.SerScheduleSerializable())
        << SchemeKindName(GetParam().kind) << " produced a ser(S) cycle";
    EXPECT_TRUE(d.aborted().empty()) << "conservative scheme aborted a txn";
    EXPECT_EQ(d.gtm2().stats().scheme_aborts, 0);
    EXPECT_EQ(d.gtm2().wait_size(), 0u);
    EXPECT_EQ(d.gtm2().queue_size(), 0u);
  }
}

// §7: Scheme 3 admits every serializable stream — a π-consistent polite
// stream never puts a ser operation into WAIT.
TEST(Scheme3Test, NeverWaitsOnSerializableStreams) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    SchemeDriver d(MakeScheme(SchemeKind::kScheme3));
    const int kTxns = 8;
    const int kSites = 4;
    AddRandomPopulation(&d, &rng, kTxns, kSites);
    // π = id order. Feed operations so that per-site ser order follows π
    // and the previous ser at a site is always acked first; that makes the
    // stream serializable when executed greedily.
    // Init everything up front (init order is irrelevant to Scheme 3's
    // waits), then run transactions to completion one at a time in π = id
    // order, acking each ser immediately. Per-site execution order then
    // follows π, so processing each operation on arrival is serializable.
    for (int t = 0; t < kTxns; ++t) d.Init(GlobalTxnId(t));
    for (int t = 0; t < kTxns; ++t) {
      GlobalTxnId txn{t};
      while (d.TryEnqueueNextSer(txn)) d.DeliverLastAck();
      d.Validate(txn);
      d.Fin(txn);
    }
    EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 0)
        << "Scheme 3 delayed a serializable stream (trial " << trial << ")";
    EXPECT_TRUE(d.SerScheduleSerializable());
  }
}

// Degree of concurrency (§4, §7): on identical random scenarios Scheme 3
// causes no more ser WAIT insertions than Scheme 0, and Scheme 1 no more
// than Scheme 0 (aggregate over trials; the paper's comparison).
TEST(DegreeOfConcurrencyTest, Scheme3AndScheme1WaitLessThanScheme0) {
  int64_t waits_s0 = 0, waits_s1 = 0, waits_s3 = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    for (SchemeKind kind : {SchemeKind::kScheme0, SchemeKind::kScheme1,
                            SchemeKind::kScheme3}) {
      Rng rng(seed);
      SchemeDriver d(MakeScheme(kind));
      AddRandomPopulation(&d, &rng, 8, 4);
      ASSERT_TRUE(d.RunRandomized(seed * 31));
      int64_t waits = d.gtm2().stats().ser_wait_additions;
      if (kind == SchemeKind::kScheme0) waits_s0 += waits;
      if (kind == SchemeKind::kScheme1) waits_s1 += waits;
      if (kind == SchemeKind::kScheme3) waits_s3 += waits;
    }
  }
  EXPECT_LE(waits_s3, waits_s0);
  EXPECT_LE(waits_s1, waits_s0);
  EXPECT_GT(waits_s0, 0);
}

// --------------------------------------------------------------------------
// Non-conservative baseline
// --------------------------------------------------------------------------

TEST(TicketOptimisticTest, NeverWaitsButAbortsOnCycle) {
  SchemeDriver d(std::make_unique<TicketOptimistic>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA, kB});
  d.AddTxn(g2, {kB, kA});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g1);  // G1@A.
  d.EnqueueNextSer(g2);  // G2@B — released immediately (optimism).
  EXPECT_EQ(d.gtm2().stats().ser_wait_additions, 0);
  d.DeliverAck(0);       // ack G1@A.
  d.DeliverAck(0);       // ack G2@B.
  d.EnqueueNextSer(g1);  // G1@B: observed after G2 there.
  d.DeliverAck(0);
  d.EnqueueNextSer(g2);  // G2@A: observed after G1 there.
  d.DeliverAck(0);
  // Orders: A: G1 < G2, B: G2 < G1 — a cycle. Validation must abort one.
  d.Validate(g1);
  d.Validate(g2);
  EXPECT_EQ(d.aborted().size(), 1u);
  EXPECT_EQ(d.gtm2().stats().scheme_aborts, 1);
}

TEST(TicketOptimisticTest, ConsistentOrdersValidate) {
  SchemeDriver d(std::make_unique<TicketOptimistic>());
  GlobalTxnId g1{1}, g2{2};
  d.AddTxn(g1, {kA, kB});
  d.AddTxn(g2, {kA, kB});
  d.Init(g1);
  d.Init(g2);
  d.EnqueueNextSer(g1);
  d.DeliverAck(0);
  d.EnqueueNextSer(g2);
  d.DeliverAck(0);
  d.EnqueueNextSer(g1);
  d.DeliverAck(0);
  d.EnqueueNextSer(g2);
  d.DeliverAck(0);
  d.Validate(g1);
  d.Validate(g2);
  EXPECT_TRUE(d.aborted().empty());
}

}  // namespace
}  // namespace mdbs::gtm
