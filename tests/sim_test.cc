#include <vector>

#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "sim/metrics.h"

namespace mdbs::sim {
namespace {

// --------------------------------------------------------------------------
// EventLoop
// --------------------------------------------------------------------------

TEST(EventLoopTest, StartsAtTimeZeroAndIdle) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.idle());
  EXPECT_EQ(loop.Run(), 0);
}

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(loop.Run(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoopTest, TiesBreakInSchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(7, [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, EventsMayScheduleMoreEvents) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(1, [&] {
    ++fired;
    loop.Schedule(1, [&] {
      ++fired;
      loop.Schedule(1, [&] { ++fired; });
    });
  });
  EXPECT_EQ(loop.Run(), 3);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(loop.now(), 3);
}

TEST(EventLoopTest, ZeroDelayRunsAtCurrentTime) {
  EventLoop loop;
  Time when = -1;
  loop.Schedule(50, [&] {
    loop.Schedule(0, [&] { when = loop.now(); });
  });
  loop.Run();
  EXPECT_EQ(when, 50);
}

TEST(EventLoopTest, RunUntilStopsAtDeadline) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(10, [&] { ++fired; });
  loop.Schedule(20, [&] { ++fired; });
  loop.Schedule(30, [&] { ++fired; });
  EXPECT_EQ(loop.RunUntil(20), 2);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now(), 20);
  EXPECT_EQ(loop.pending(), 1u);
  loop.Run();
  EXPECT_EQ(fired, 3);
}

TEST(EventLoopTest, RunUntilAdvancesTimeWhenIdle) {
  EventLoop loop;
  loop.RunUntil(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoopTest, RunOneStepsOneEvent) {
  EventLoop loop;
  int fired = 0;
  loop.Schedule(1, [&] { ++fired; });
  loop.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(loop.RunOne());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(loop.RunOne());
  EXPECT_FALSE(loop.RunOne());
}

TEST(EventLoopDeathTest, NegativeDelayChecks) {
  EventLoop loop;
  EXPECT_DEATH(loop.Schedule(-1, [] {}), "negative delay");
}

// --------------------------------------------------------------------------
// Summary / MetricsRegistry
// --------------------------------------------------------------------------

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
}

TEST(SummaryTest, BasicStatistics) {
  Summary s;
  for (double v : {4.0, 1.0, 3.0, 2.0}) s.Add(v);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(SummaryTest, QuantilesInterpolate) {
  Summary s;
  for (int i = 1; i <= 5; ++i) s.Add(i);  // 1..5
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.25), 2.0);
}

TEST(SummaryTest, QuantileAfterInterleavedAdds) {
  Summary s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);
  s.Add(20);
  s.Add(0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);  // Re-sorts lazily.
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Counter("x"), 0);
  registry.Increment("x");
  registry.Increment("x", 4);
  EXPECT_EQ(registry.Counter("x"), 5);
}

TEST(MetricsRegistryTest, SummariesObserve) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetSummary("lat"), nullptr);
  registry.Observe("lat", 1.0);
  registry.Observe("lat", 3.0);
  ASSERT_NE(registry.GetSummary("lat"), nullptr);
  EXPECT_DOUBLE_EQ(registry.GetSummary("lat")->mean(), 2.0);
}

TEST(MetricsRegistryTest, ReportListsEverything) {
  MetricsRegistry registry;
  registry.Increment("commits", 2);
  registry.Observe("latency", 5);
  std::string report = registry.Report();
  EXPECT_NE(report.find("commits = 2"), std::string::npos);
  EXPECT_NE(report.find("latency"), std::string::npos);
}

}  // namespace
}  // namespace mdbs::sim
