// Durability battery for the per-site write-ahead log (src/storage):
// frame/record round trips, torn-tail vs corruption discrimination, and the
// crash-point fuzz — truncate a seeded run's log at every record boundary
// (and inside frames, and under byte corruption) and check recovery restores
// exactly the committed prefix or fails loudly. The reference is an
// independent committed-prefix projection, deliberately a different
// algorithm from storage::RecoverWal (no checkpoints, no CLRs, no undo).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "sim/event_loop.h"
#include "site/local_dbms.h"
#include "storage/log_device.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace mdbs {
namespace {

using gtm::SchemeKind;
using lcc::ProtocolKind;
using storage::CheckpointImage;
using storage::MemLogDevice;
using storage::RecoveredState;
using storage::WalRecord;
using storage::WalRecordType;
using storage::WalScan;

// ----------------------------------------------------------------------
// Frame / record encoding
// ----------------------------------------------------------------------

TEST(WalEncodingTest, Crc32MatchesTheKnownTestVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(storage::Crc32("123456789", 9), 0xCBF43926u);
}

TEST(WalEncodingTest, AllRecordTypesRoundTrip) {
  MemLogDevice device;
  storage::WalWriter writer(&device);

  WalRecord begin;
  begin.type = WalRecordType::kBegin;
  begin.txn = 7;
  begin.global = 3;
  begin.clock = 41;
  writer.Append(begin);

  WalRecord write;
  write.type = WalRecordType::kWrite;
  write.txn = 7;
  write.item = 11;
  write.before = -2;
  write.value = 55;
  writer.Append(write);

  WalRecord clr;
  clr.type = WalRecordType::kClr;
  clr.txn = 7;
  clr.item = 11;
  clr.value = -2;
  writer.Append(clr);

  WalRecord commit;
  commit.type = WalRecordType::kCommit;
  commit.txn = 7;
  commit.clock = 42;
  writer.Append(commit);

  WalRecord abort;
  abort.type = WalRecordType::kAbort;
  abort.txn = 9;
  writer.Append(abort);

  WalScan scan;
  ASSERT_TRUE(ReadWal(device, &scan).ok());
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, static_cast<size_t>(device.Size()));
  EXPECT_EQ(scan.boundaries.size(), 5u);
  EXPECT_EQ(writer.records_written(), 5);
  EXPECT_EQ(writer.bytes_written(), device.Size());

  EXPECT_EQ(scan.records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(scan.records[0].txn, 7);
  EXPECT_EQ(scan.records[0].global, 3);
  EXPECT_EQ(scan.records[0].clock, 41);
  EXPECT_EQ(scan.records[1].type, WalRecordType::kWrite);
  EXPECT_EQ(scan.records[1].item, 11);
  EXPECT_EQ(scan.records[1].before, -2);
  EXPECT_EQ(scan.records[1].value, 55);
  EXPECT_EQ(scan.records[2].type, WalRecordType::kClr);
  EXPECT_EQ(scan.records[2].value, -2);
  EXPECT_EQ(scan.records[3].type, WalRecordType::kCommit);
  EXPECT_EQ(scan.records[3].clock, 42);
  EXPECT_EQ(scan.records[4].type, WalRecordType::kAbort);
  EXPECT_EQ(scan.records[4].txn, 9);
}

TEST(WalEncodingTest, CheckpointImageRoundTrips) {
  MemLogDevice device;
  storage::WalWriter writer(&device);

  WalRecord rec;
  rec.type = WalRecordType::kCheckpoint;
  rec.checkpoint.clock = 99;
  rec.checkpoint.items.push_back({1, 10, 7});
  rec.checkpoint.items.push_back({2, 20, -1});
  rec.checkpoint.mv_initial.emplace_back(1, 0);
  CheckpointImage::ActiveTxn active;
  active.txn = 5;
  active.global = 2;
  active.undo.emplace_back(2, 15);
  active.undo.emplace_back(2, 18);
  rec.checkpoint.active.push_back(active);
  writer.Append(rec);
  EXPECT_EQ(writer.records_since_checkpoint(), 0)
      << "a checkpoint must reset the interval counter";

  WalScan scan;
  ASSERT_TRUE(ReadWal(device, &scan).ok());
  ASSERT_EQ(scan.records.size(), 1u);
  const CheckpointImage& image = scan.records[0].checkpoint;
  EXPECT_EQ(image.clock, 99);
  ASSERT_EQ(image.items.size(), 2u);
  EXPECT_EQ(image.items[0].item, 1);
  EXPECT_EQ(image.items[0].value, 10);
  EXPECT_EQ(image.items[0].last_committed_writer, 7);
  EXPECT_EQ(image.items[1].last_committed_writer, -1);
  ASSERT_EQ(image.mv_initial.size(), 1u);
  ASSERT_EQ(image.active.size(), 1u);
  EXPECT_EQ(image.active[0].txn, 5);
  ASSERT_EQ(image.active[0].undo.size(), 2u);
  EXPECT_EQ(image.active[0].undo[1].second, 18);
}

TEST(WalEncodingTest, TornTailIsFlaggedAndIgnored) {
  MemLogDevice device;
  storage::WalWriter writer(&device);
  WalRecord rec;
  rec.type = WalRecordType::kBegin;
  rec.txn = 1;
  writer.Append(rec);
  int64_t boundary = device.Size();

  // A crash mid-append: only half of the next frame reached the device.
  std::vector<uint8_t> next = EncodeWalRecord(rec);
  ASSERT_TRUE(device.Append(next.data(), next.size() / 2).ok());

  WalScan scan;
  ASSERT_TRUE(ReadWal(device, &scan).ok());
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, static_cast<size_t>(boundary));
}

TEST(WalEncodingTest, CorruptedCompleteFrameFailsLoudly) {
  MemLogDevice device;
  storage::WalWriter writer(&device);
  WalRecord rec;
  rec.type = WalRecordType::kWrite;
  rec.txn = 1;
  rec.item = 4;
  rec.value = 9;
  writer.Append(rec);
  writer.Append(rec);

  // Flip one payload byte of the first frame: its CRC no longer matches,
  // and since the frame is complete this is corruption, not a torn tail.
  device.CorruptByte(10, 0x01);
  WalScan scan;
  EXPECT_FALSE(ReadWal(device, &scan).ok());

  // Same for the CRC field itself.
  MemLogDevice crc_hit(device.bytes());
  RecoveredState state;
  EXPECT_FALSE(RecoverWal(crc_hit, false, &state).ok());
}

TEST(WalRecoveryTest, EmptyLogRecoversEmptyState) {
  MemLogDevice device;
  RecoveredState state;
  ASSERT_TRUE(RecoverWal(device, false, &state).ok());
  EXPECT_TRUE(state.store.empty());
  EXPECT_EQ(state.scanned_records, 0);
  EXPECT_EQ(state.clock, 0);
}

// ----------------------------------------------------------------------
// The committed-prefix projection oracle
// ----------------------------------------------------------------------

/// Independent reference recovery: a transaction's writes count iff its
/// commit record is inside the prefix; apply them in log order. No
/// checkpoint is consulted and no undo is performed, so agreement with
/// RecoverWal exercises the checkpoint/undo machinery end to end.
std::unordered_map<int64_t, int64_t> CommittedProjection(
    const std::vector<WalRecord>& prefix) {
  std::unordered_set<int64_t> committed;
  for (const WalRecord& rec : prefix) {
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn);
  }
  std::unordered_map<int64_t, int64_t> store;
  for (const WalRecord& rec : prefix) {
    if (rec.type == WalRecordType::kWrite && committed.contains(rec.txn)) {
      store[rec.item] = rec.value;
    }
  }
  return store;
}

/// Every item mentioned anywhere in the log — the universe over which
/// recovered stores are compared by value (absent items read as 0; recovery
/// may materialize explicit zeros a crash-free store would not).
std::vector<int64_t> ItemUniverse(const std::vector<WalRecord>& records) {
  std::unordered_set<int64_t> items;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kWrite ||
        rec.type == WalRecordType::kClr) {
      items.insert(rec.item);
    }
    for (const CheckpointImage::Item& item : rec.checkpoint.items) {
      items.insert(item.item);
    }
  }
  return {items.begin(), items.end()};
}

int64_t ValueOf(const std::unordered_map<int64_t, int64_t>& store,
                int64_t item) {
  auto it = store.find(item);
  return it == store.end() ? 0 : it->second;
}

/// One finished seeded durable run (sim engine) plus site 0's log image.
struct DurableRun {
  std::shared_ptr<MemLogDevice> device;  // Site 0's WAL.
  std::unique_ptr<Mdbs> system;          // Quiesced; live stores readable.
};

/// Runs a small hot durable federation; site 0 runs `protocol`.
DurableRun RunDurableWorkload(ProtocolKind protocol, uint64_t seed,
                              int64_t checkpoint_interval) {
  DurableRun run;
  run.device = std::make_shared<MemLogDevice>();
  MdbsConfig config = MdbsConfig::Mixed(
      {protocol, ProtocolKind::kTwoPhaseLocking}, SchemeKind::kScheme3);
  config.seed = seed;
  for (site::SiteConfig& site : config.sites) {
    site.durable = true;
    site.checkpoint_interval = checkpoint_interval;
  }
  config.sites[0].wal_device = run.device;
  run.system = std::make_unique<Mdbs>(config);
  DriverConfig driver;
  driver.global_clients = 4;
  driver.local_clients_per_site = 2;
  driver.target_global_commits = 60;
  driver.global_workload.items_per_site = 12;  // Hot: plenty of aborts.
  driver.local_workload.items_per_site = 12;
  RunDriver(run.system.get(), driver, seed);
  EXPECT_TRUE(run.system->RunAuditOracle().ok());
  return run;
}

class WalFuzzTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(Protocols, WalFuzzTest,
                         ::testing::Values(ProtocolKind::kTwoPhaseLocking,
                                           ProtocolKind::kMultiversionTO,
                                           ProtocolKind::kOptimistic),
                         [](const auto& info) {
                           return std::string(
                               lcc::ProtocolKindName(info.param));
                         });

// A quiesced site's log must replay to exactly the live store.
TEST_P(WalFuzzTest, QuiescedReplayMatchesLiveStore) {
  DurableRun run = RunDurableWorkload(GetParam(), 17, 64);
  bool multiversion = GetParam() == ProtocolKind::kMultiversionTO;

  WalScan scan;
  ASSERT_TRUE(ReadWal(*run.device, &scan).ok());
  ASSERT_GT(scan.records.size(), 100u) << "workload too small to fuzz";

  RecoveredState state;
  ASSERT_TRUE(RecoverWal(*run.device, multiversion, &state).ok());
  EXPECT_EQ(state.scanned_records,
            static_cast<int64_t>(scan.records.size()));
  for (int64_t item : ItemUniverse(scan.records)) {
    EXPECT_EQ(ValueOf(state.store, item),
              run.system->site(SiteId{0}).UnsafePeek(DataItemId{item}))
        << "item " << item << " diverged from the live store";
  }
}

// The heart of the battery: cut the log at EVERY record boundary and check
// recovery restores exactly the committed prefix — with checkpoints in the
// stream, so most cuts land between a fuzzy snapshot and its undo horizon.
TEST_P(WalFuzzTest, TruncationAtEveryBoundaryRestoresCommittedPrefix) {
  std::shared_ptr<MemLogDevice> device = RunDurableWorkload(
      GetParam(), 29, 48).device;
  bool multiversion = GetParam() == ProtocolKind::kMultiversionTO;

  WalScan scan;
  ASSERT_TRUE(ReadWal(*device, &scan).ok());
  ASSERT_GE(scan.boundaries.size(), 100u)
      << "the battery must cover >= 100 truncation points";
  std::vector<int64_t> universe = ItemUniverse(scan.records);

  // Short logs get every boundary; long ones (abort-heavy protocols can
  // write tens of thousands of records) are strided to keep the battery
  // O(cuts * prefix) instead of O(records^2), never below 100 cuts.
  size_t stride = std::max<size_t>(1, scan.boundaries.size() / 150);
  std::vector<size_t> cut_indices;
  for (size_t i = 0; i <= scan.boundaries.size(); i += stride) {
    cut_indices.push_back(i);
  }
  if (cut_indices.back() != scan.boundaries.size()) {
    cut_indices.push_back(scan.boundaries.size());
  }
  ASSERT_GE(cut_indices.size(), 100u);

  size_t checkpointed_cuts = 0;
  for (size_t i : cut_indices) {
    size_t cut = i == 0 ? 0 : scan.boundaries[i - 1];
    MemLogDevice prefix(std::vector<uint8_t>(
        device->bytes().begin(), device->bytes().begin() + cut));
    RecoveredState state;
    ASSERT_TRUE(RecoverWal(prefix, multiversion, &state).ok())
        << "boundary " << i << " (byte " << cut << ") failed to recover";
    EXPECT_FALSE(state.torn_tail);
    EXPECT_EQ(state.scanned_records, static_cast<int64_t>(i));
    if (state.used_checkpoint) ++checkpointed_cuts;

    std::unordered_map<int64_t, int64_t> expected = CommittedProjection(
        {scan.records.begin(), scan.records.begin() + i});
    for (int64_t item : universe) {
      ASSERT_EQ(ValueOf(state.store, item), ValueOf(expected, item))
          << "boundary " << i << ": item " << item
          << " diverged from the committed prefix";
    }
  }
  EXPECT_GT(checkpointed_cuts, 0u)
      << "no cut exercised checkpoint-based recovery";
}

// Cuts inside a frame are the torn tail a crash mid-append leaves: recovery
// must land on the previous boundary's state and flag the tail.
TEST_P(WalFuzzTest, MidFrameCutsBehaveAsTornTail) {
  std::shared_ptr<MemLogDevice> device = RunDurableWorkload(
      GetParam(), 43, 64).device;
  bool multiversion = GetParam() == ProtocolKind::kMultiversionTO;

  WalScan scan;
  ASSERT_TRUE(ReadWal(*device, &scan).ok());
  std::vector<int64_t> universe = ItemUniverse(scan.records);

  size_t torn_cuts = 0;
  size_t frame_stride = std::max<size_t>(7, scan.boundaries.size() / 60);
  for (size_t i = 0; i + 1 < scan.boundaries.size(); i += frame_stride) {
    size_t lo = scan.boundaries[i];
    size_t hi = scan.boundaries[i + 1];
    // One cut in the frame header, one mid-payload.
    for (size_t cut : {lo + 3, lo + (hi - lo) / 2}) {
      if (cut <= lo || cut >= hi) continue;
      MemLogDevice torn(std::vector<uint8_t>(
          device->bytes().begin(), device->bytes().begin() + cut));
      RecoveredState state;
      ASSERT_TRUE(RecoverWal(torn, multiversion, &state).ok())
          << "torn cut at byte " << cut << " was treated as corruption";
      EXPECT_TRUE(state.torn_tail);
      EXPECT_EQ(state.scanned_records, static_cast<int64_t>(i + 1));
      std::unordered_map<int64_t, int64_t> expected = CommittedProjection(
          {scan.records.begin(), scan.records.begin() + i + 1});
      for (int64_t item : universe) {
        ASSERT_EQ(ValueOf(state.store, item), ValueOf(expected, item))
            << "torn cut at byte " << cut << ": item " << item;
      }
      ++torn_cuts;
    }
  }
  EXPECT_GE(torn_cuts, 20u);
}

// Byte corruption anywhere in the image must either fail loudly or behave
// as a torn tail at the corrupted frame (possible when the length field is
// hit): recovery then equals the boundary before that frame. Silent
// acceptance of a corrupted committed value is the one forbidden outcome.
TEST_P(WalFuzzTest, CorruptionFailsLoudlyOrRecoversACommittedPrefix) {
  std::shared_ptr<MemLogDevice> device = RunDurableWorkload(
      GetParam(), 57, 64).device;
  bool multiversion = GetParam() == ProtocolKind::kMultiversionTO;

  WalScan scan;
  ASSERT_TRUE(ReadWal(*device, &scan).ok());
  std::vector<int64_t> universe = ItemUniverse(scan.records);
  size_t image_size = device->bytes().size();
  ASSERT_GT(image_size, 120u);

  size_t loud = 0, torn = 0;
  size_t stride = image_size / 120;  // >= 120 corruption points.
  for (size_t offset = 0; offset < image_size; offset += stride + 1) {
    MemLogDevice corrupt(device->bytes());
    corrupt.CorruptByte(offset, 0x40);
    RecoveredState state;
    Status status = RecoverWal(corrupt, multiversion, &state);
    if (!status.ok()) {
      ++loud;
      continue;
    }
    // Find the frame holding the corrupted byte; recovery may only have
    // admitted the records strictly before it.
    size_t frame = 0;
    while (frame < scan.boundaries.size() &&
           scan.boundaries[frame] <= offset) {
      ++frame;
    }
    EXPECT_TRUE(state.torn_tail)
        << "corruption at byte " << offset
        << " was silently accepted as a complete log";
    EXPECT_LE(state.scanned_records, static_cast<int64_t>(frame));
    std::unordered_map<int64_t, int64_t> expected = CommittedProjection(
        {scan.records.begin(),
         scan.records.begin() + state.scanned_records});
    for (int64_t item : universe) {
      ASSERT_EQ(ValueOf(state.store, item), ValueOf(expected, item))
          << "corruption at byte " << offset << ": item " << item
          << " silently diverged";
    }
    ++torn;
  }
  EXPECT_GT(loud, 0u) << "no corruption was ever detected by CRC";
}

// ----------------------------------------------------------------------
// Site-level restart from a truncated image
// ----------------------------------------------------------------------

// A LocalDbms constructed over a non-empty device (a process restart, or a
// crash image a test built) must come up with exactly the committed prefix
// and answer reads from it.
TEST(WalRecoveryTest, SiteRestartFromTruncatedImageServesCommittedPrefix) {
  std::shared_ptr<MemLogDevice> device = RunDurableWorkload(
      ProtocolKind::kTwoPhaseLocking, 71, 32).device;
  WalScan scan;
  ASSERT_TRUE(ReadWal(*device, &scan).ok());
  std::vector<int64_t> universe = ItemUniverse(scan.records);
  ASSERT_GE(scan.boundaries.size(), 50u);

  for (size_t i = 0; i < scan.boundaries.size(); i += 11) {
    size_t cut = scan.boundaries[i];
    site::SiteConfig config;
    config.id = SiteId{0};
    config.protocol = ProtocolKind::kTwoPhaseLocking;
    config.durable = true;
    config.wal_device = std::make_shared<MemLogDevice>(std::vector<uint8_t>(
        device->bytes().begin(), device->bytes().begin() + cut));
    sim::EventLoop loop;
    sched::ScheduleRecorder recorder;
    site::LocalDbms dbms(config, &loop, &recorder);

    std::unordered_map<int64_t, int64_t> expected = CommittedProjection(
        {scan.records.begin(), scan.records.begin() + i + 1});
    for (int64_t item : universe) {
      ASSERT_EQ(dbms.UnsafePeek(DataItemId{item}), ValueOf(expected, item))
          << "restart at boundary " << i << ": item " << item;
    }
    EXPECT_EQ(dbms.durability_stats().recoveries, 1);

    // The restarted site is live: a fresh transaction reads the recovered
    // value and can commit a new one on top.
    TxnId txn{1'000'000};
    ASSERT_TRUE(dbms.Begin(txn, GlobalTxnId()).ok());
    Status status = Status::Internal("pending");
    int64_t seen = -1;
    dbms.Submit(txn, DataOp::Read(DataItemId{universe[0]}),
                [&](const Status& s, int64_t v) {
                  status = s;
                  seen = v;
                });
    loop.Run();
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(seen, ValueOf(expected, universe[0]));
    dbms.Commit(txn, [](const Status&) {});
    loop.Run();
  }
}

// Crash/recover at the site level: a durable crash wipes the volatile
// store (reads while down are refused, the store really is empty), and
// recovery replays committed data while undoing the in-flight loser.
TEST(WalRecoveryTest, DurableCrashLosesOnlyVolatileState) {
  site::SiteConfig config;
  config.id = SiteId{0};
  config.protocol = ProtocolKind::kTwoPhaseLocking;
  config.durable = true;
  sim::EventLoop loop;
  sched::ScheduleRecorder recorder;
  site::LocalDbms dbms(config, &loop, &recorder);

  auto run_op = [&](TxnId txn, const DataOp& op) {
    Status status = Status::Internal("pending");
    dbms.Submit(txn, op, [&](const Status& s, int64_t) { status = s; });
    loop.Run();
    return status;
  };
  TxnId committed{1};
  ASSERT_TRUE(dbms.Begin(committed, GlobalTxnId()).ok());
  ASSERT_TRUE(run_op(committed, DataOp::Write(DataItemId{1}, 7)).ok());
  Status commit_status = Status::Internal("pending");
  dbms.Commit(committed, [&](const Status& s) { commit_status = s; });
  loop.Run();
  ASSERT_TRUE(commit_status.ok());

  TxnId loser{2};
  ASSERT_TRUE(dbms.Begin(loser, GlobalTxnId()).ok());
  ASSERT_TRUE(run_op(loser, DataOp::Write(DataItemId{2}, 9)).ok());
  ASSERT_EQ(dbms.UnsafePeek(DataItemId{2}), 9) << "in-place write expected";

  dbms.Crash();
  loop.Run();  // Drain the loser's failure callback.
  EXPECT_EQ(dbms.UnsafePeek(DataItemId{1}), 0)
      << "a durable crash must wipe the volatile store";
  EXPECT_EQ(dbms.UnsafePeek(DataItemId{2}), 0);
  EXPECT_FALSE(dbms.IsActive(loser));

  dbms.Recover();
  loop.Run();
  EXPECT_FALSE(dbms.IsDown());
  EXPECT_EQ(dbms.UnsafePeek(DataItemId{1}), 7)
      << "the committed write did not survive the crash";
  EXPECT_EQ(dbms.UnsafePeek(DataItemId{2}), 0)
      << "the loser's write leaked through recovery";
  site::SiteDurabilityStats stats = dbms.durability_stats();
  EXPECT_EQ(stats.recoveries, 1);
  EXPECT_GT(stats.replay_records, 0);
  EXPECT_EQ(stats.redo_writes, 1);
  EXPECT_EQ(stats.undone_writes, 1);
}

}  // namespace
}  // namespace mdbs
