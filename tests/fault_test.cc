#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "fault/injector.h"

namespace mdbs::fault {
namespace {

TEST(FaultPlanTest, ParsesEveryDirective) {
  StatusOr<FaultPlan> plan = ParseFaultPlan(
      "crash@1000:s2:500;sweep@2000:3000:1500;req_loss=0.02;resp_loss=0.03;"
      "dup=0.01;spike=0.05:200;seed=99");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_EQ(plan->crashes[0].site, SiteId(2));
  EXPECT_EQ(plan->crashes[0].at, 1000);
  EXPECT_EQ(plan->crashes[0].duration, 500);
  ASSERT_EQ(plan->sweeps.size(), 1u);
  EXPECT_EQ(plan->sweeps[0].first_at, 2000);
  EXPECT_EQ(plan->sweeps[0].gap, 3000);
  EXPECT_EQ(plan->sweeps[0].duration, 1500);
  EXPECT_DOUBLE_EQ(plan->request_loss, 0.02);
  EXPECT_DOUBLE_EQ(plan->response_loss, 0.03);
  EXPECT_DOUBLE_EQ(plan->duplicate, 0.01);
  EXPECT_DOUBLE_EQ(plan->delay_spike, 0.05);
  EXPECT_EQ(plan->spike_ticks, 200);
  EXPECT_EQ(plan->seed, 99u);
  EXPECT_FALSE(plan->Empty());
  EXPECT_TRUE(plan->HasMessageFaults());
}

TEST(FaultPlanTest, ParsesGtmCrashDirective) {
  StatusOr<FaultPlan> plan =
      ParseFaultPlan("gtm_crash@4000:2500;gtm_crash@9000:1000");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->gtm_crashes.size(), 2u);
  EXPECT_EQ(plan->gtm_crashes[0].at, 4000);
  EXPECT_EQ(plan->gtm_crashes[0].duration, 2500);
  EXPECT_EQ(plan->gtm_crashes[1].at, 9000);
  EXPECT_EQ(plan->gtm_crashes[1].duration, 1000);
  EXPECT_FALSE(plan->Empty());
  EXPECT_FALSE(plan->HasMessageFaults());
}

TEST(FaultPlanTest, GtmCrashSpecRoundTrips) {
  StatusOr<FaultPlan> plan =
      ParseFaultPlan("crash@1000:s2:500;gtm_crash@4000:2500;req_loss=0.02");
  ASSERT_TRUE(plan.ok()) << plan.status();
  StatusOr<FaultPlan> again = ParseFaultPlan(plan->ToSpec());
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_EQ(again->gtm_crashes.size(), 1u);
  EXPECT_EQ(again->gtm_crashes[0], plan->gtm_crashes[0]);
  EXPECT_EQ(plan->ToSpec(), again->ToSpec());
}

TEST(FaultPlanTest, ValidatePlanForConfigRejectsNonDurableGtmCrash) {
  StatusOr<FaultPlan> plan = ParseFaultPlan("gtm_crash@4000:2500");
  ASSERT_TRUE(plan.ok()) << plan.status();
  Status not_durable = ValidatePlanForConfig(*plan, /*gtm_durable=*/false,
                                             /*gtm_standby=*/false);
  EXPECT_FALSE(not_durable.ok());
  EXPECT_NE(not_durable.message().find("gtm_crash"), std::string::npos);
  EXPECT_NE(not_durable.message().find("not durable"), std::string::npos);
  EXPECT_TRUE(ValidatePlanForConfig(*plan, /*gtm_durable=*/true,
                                    /*gtm_standby=*/false)
                  .ok());
  // Plans without gtm_crash directives never need a durable GTM.
  StatusOr<FaultPlan> sites_only = ParseFaultPlan("crash@1000:s0:500");
  ASSERT_TRUE(sites_only.ok());
  EXPECT_TRUE(ValidatePlanForConfig(*sites_only, false, false).ok());
}

TEST(FaultPlanTest, ParsesGtmFailoverDirective) {
  StatusOr<FaultPlan> plan = ParseFaultPlan("gtm_failover@6000:1500");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->gtm_failovers.size(), 1u);
  EXPECT_EQ(plan->gtm_failovers[0].at, 6000);
  EXPECT_EQ(plan->gtm_failovers[0].duration, 1500);
  EXPECT_FALSE(plan->Empty());
  // Round-trips through the canonical spec.
  StatusOr<FaultPlan> again = ParseFaultPlan(plan->ToSpec());
  ASSERT_TRUE(again.ok()) << again.status();
  ASSERT_EQ(again->gtm_failovers.size(), 1u);
  EXPECT_EQ(again->gtm_failovers[0], plan->gtm_failovers[0]);
  EXPECT_EQ(plan->ToSpec(), again->ToSpec());
}

TEST(FaultPlanTest, ValidatePlanForConfigGatesGtmFailover) {
  StatusOr<FaultPlan> plan = ParseFaultPlan("gtm_failover@6000:1500");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Needs both a durable GTM and a configured standby.
  Status not_durable = ValidatePlanForConfig(*plan, /*gtm_durable=*/false,
                                             /*gtm_standby=*/false);
  EXPECT_FALSE(not_durable.ok());
  EXPECT_NE(not_durable.message().find("gtm_failover"), std::string::npos);
  Status no_standby = ValidatePlanForConfig(*plan, /*gtm_durable=*/true,
                                            /*gtm_standby=*/false);
  EXPECT_FALSE(no_standby.ok());
  EXPECT_NE(no_standby.message().find("standby"), std::string::npos);
  EXPECT_TRUE(ValidatePlanForConfig(*plan, /*gtm_durable=*/true,
                                    /*gtm_standby=*/true)
                  .ok());
}

TEST(FaultPlanTest, ValidatePlanRejectsDoubleOrMixedFailover) {
  // There is exactly one standby to promote.
  StatusOr<FaultPlan> twice =
      ParseFaultPlan("gtm_failover@6000:1500;gtm_failover@20000:1500");
  ASSERT_TRUE(twice.ok()) << twice.status();
  EXPECT_FALSE(ValidatePlanForConfig(*twice, true, true).ok());
  // Mixing with gtm_crash would recover the fenced old primary: split brain.
  StatusOr<FaultPlan> mixed =
      ParseFaultPlan("gtm_crash@2000:500;gtm_failover@6000:1500");
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  Status status = ValidatePlanForConfig(*mixed, true, true);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("split brain"), std::string::npos);
}

TEST(FaultPlanTest, SpecRoundTrips) {
  const std::string spec =
      "crash@1000:s2:500;sweep@2000:3000:1500;req_loss=0.02;resp_loss=0.03;"
      "dup=0.01;spike=0.05:200;seed=99";
  StatusOr<FaultPlan> plan = ParseFaultPlan(spec);
  ASSERT_TRUE(plan.ok());
  StatusOr<FaultPlan> again = ParseFaultPlan(plan->ToSpec());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(plan->ToSpec(), again->ToSpec());
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  StatusOr<FaultPlan> plan = ParseFaultPlan("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->Empty());
  EXPECT_EQ(plan->ToSpec(), "");
}

TEST(FaultPlanTest, RejectsMalformedDirectives) {
  for (const char* bad :
       {"crash@1000:500", "crash@1000:x2:500", "crash@1000:s2:0",
        "sweep@10:20", "gtm_crash@1000", "gtm_crash@1000:0",
        "gtm_crash@1000:2000:3000", "gtm_crash@x:100",
        "gtm_failover@1000", "gtm_failover@1000:0",
        "gtm_failover@1000:2000:3000", "gtm_failover@x:100",
        "req_loss=1.5", "resp_loss=-0.1", "dup=x",
        "spike=0.1", "spike=0.1:0", "seed=", "nonsense", "foo=1"}) {
    StatusOr<FaultPlan> plan = ParseFaultPlan(bad);
    EXPECT_FALSE(plan.ok()) << "accepted '" << bad << "'";
  }
}

TEST(FaultPlanTest, ReadsPlanFromFileWithCommentsAndNewlines) {
  std::string path = ::testing::TempDir() + "/fault_plan_test.txt";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# a crash sweep with some message chaos\n"
        << "sweep@2000:3000:1500\n"
        << "req_loss=0.02\n"
        << "\n"
        << "dup=0.01  \n";
  }
  StatusOr<FaultPlan> plan = ParseFaultPlan(path);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->sweeps.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->request_loss, 0.02);
  EXPECT_DOUBLE_EQ(plan->duplicate, 0.01);
  std::remove(path.c_str());
}

TEST(FaultPlanTest, ResolveSweepsExpandsAndSortsDeterministically) {
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{SiteId(1), 7000, 100});
  plan.sweeps.push_back(SweepEvent{2000, 3000, 1500});
  FaultPlan resolved = ResolveSweeps(plan, 3);
  EXPECT_TRUE(resolved.sweeps.empty());
  ASSERT_EQ(resolved.crashes.size(), 4u);
  // Sorted by (at, site): sweep hits 2000/5000/8000, explicit crash at 7000.
  EXPECT_EQ(resolved.crashes[0].at, 2000);
  EXPECT_EQ(resolved.crashes[0].site, SiteId(0));
  EXPECT_EQ(resolved.crashes[1].at, 5000);
  EXPECT_EQ(resolved.crashes[2].at, 7000);
  EXPECT_EQ(resolved.crashes[2].site, SiteId(1));
  EXPECT_EQ(resolved.crashes[3].at, 8000);
  EXPECT_EQ(resolved.crashes[3].site, SiteId(2));
}

TEST(FaultPlanTest, CrashSweepCoversEverySiteOnce) {
  FaultPlan plan = FaultPlan::CrashSweep(4, 1000, 2000, 500);
  ASSERT_EQ(plan.crashes.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(plan.crashes[i].site, SiteId(i));
    EXPECT_EQ(plan.crashes[i].at, 1000 + i * 2000);
    EXPECT_EQ(plan.crashes[i].duration, 500);
  }
}

std::vector<MessageFate> DrawSequence(const FaultPlan& plan, uint64_t seed,
                                      int n) {
  FaultInjector injector(plan, seed);
  std::vector<MessageFate> fates;
  for (int i = 0; i < n; ++i) {
    fates.push_back(i % 2 == 0 ? injector.RequestFate()
                               : injector.ResponseFate());
  }
  return fates;
}

TEST(FaultInjectorTest, SameSeedDrawsIdenticalFates) {
  FaultPlan plan;
  plan.request_loss = 0.1;
  plan.response_loss = 0.1;
  plan.duplicate = 0.1;
  plan.delay_spike = 0.2;
  plan.spike_ticks = 50;
  std::vector<MessageFate> first = DrawSequence(plan, 17, 500);
  std::vector<MessageFate> second = DrawSequence(plan, 17, 500);
  ASSERT_EQ(first.size(), second.size());
  bool anything_happened = false;
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].lost, second[i].lost) << "at " << i;
    EXPECT_EQ(first[i].duplicated, second[i].duplicated) << "at " << i;
    EXPECT_EQ(first[i].extra_delay, second[i].extra_delay) << "at " << i;
    EXPECT_EQ(first[i].duplicate_lag, second[i].duplicate_lag) << "at " << i;
    anything_happened = anything_happened || first[i].lost ||
                        first[i].duplicated || first[i].extra_delay > 0;
  }
  EXPECT_TRUE(anything_happened) << "rates set but nothing was injected";
}

TEST(FaultInjectorTest, PlanSeedOverridesFallbackSeed) {
  FaultPlan plan;
  plan.request_loss = 0.5;
  plan.seed = 1234;
  std::vector<MessageFate> a = DrawSequence(plan, 1, 100);
  std::vector<MessageFate> b = DrawSequence(plan, 2, 100);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].lost, b[i].lost) << "fallback seed leaked in at " << i;
  }
}

TEST(FaultInjectorTest, CountsWhatItInjects) {
  FaultPlan plan;
  plan.request_loss = 0.3;
  plan.response_loss = 0.3;
  plan.duplicate = 0.3;
  plan.delay_spike = 0.3;
  plan.spike_ticks = 10;
  FaultInjector injector(plan, 5);
  for (int i = 0; i < 200; ++i) {
    injector.RequestFate();
    injector.ResponseFate();
  }
  FaultStats stats = injector.stats();
  EXPECT_GT(stats.requests_lost, 0);
  EXPECT_GT(stats.responses_lost, 0);
  EXPECT_GT(stats.duplicates_injected, 0);
  EXPECT_GT(stats.delay_spikes, 0);
  EXPECT_EQ(stats.duplicates_suppressed, 0);
  injector.CountSuppressedDuplicate();
  injector.CountPlanCrash();
  EXPECT_EQ(injector.stats().duplicates_suppressed, 1);
  EXPECT_EQ(injector.stats().plan_crashes, 1);
}

TEST(FaultInjectorTest, ProbesAreNeverDuplicated) {
  FaultPlan plan;
  plan.duplicate = 1.0;
  plan.request_loss = 0.2;
  FaultInjector injector(plan, 7);
  for (int i = 0; i < 200; ++i) {
    MessageFate fate = injector.ProbeFate(i % 2 == 0);
    EXPECT_FALSE(fate.duplicated);
    EXPECT_EQ(fate.duplicate_lag, 0);
  }
  EXPECT_EQ(injector.stats().duplicates_injected, 0);
}

TEST(FaultInjectorTest, ZeroRatesInjectNothing) {
  FaultInjector injector(FaultPlan{}, 42);
  for (int i = 0; i < 100; ++i) {
    MessageFate fate = injector.RequestFate();
    EXPECT_FALSE(fate.lost);
    EXPECT_FALSE(fate.duplicated);
    EXPECT_EQ(fate.extra_delay, 0);
  }
  FaultStats stats = injector.stats();
  EXPECT_EQ(stats.requests_lost + stats.responses_lost +
                stats.duplicates_injected + stats.delay_spikes,
            0);
}

}  // namespace
}  // namespace mdbs::fault
