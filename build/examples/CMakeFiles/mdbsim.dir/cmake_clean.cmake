file(REMOVE_RECURSE
  "CMakeFiles/mdbsim.dir/mdbsim.cpp.o"
  "CMakeFiles/mdbsim.dir/mdbsim.cpp.o.d"
  "mdbsim"
  "mdbsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
