# Empty compiler generated dependencies file for mdbsim.
# This may be replaced when dependencies are built.
