# Empty compiler generated dependencies file for mdbs_sched.
# This may be replaced when dependencies are built.
