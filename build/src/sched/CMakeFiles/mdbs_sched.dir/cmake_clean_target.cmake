file(REMOVE_RECURSE
  "libmdbs_sched.a"
)
