
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/graph.cc" "src/sched/CMakeFiles/mdbs_sched.dir/graph.cc.o" "gcc" "src/sched/CMakeFiles/mdbs_sched.dir/graph.cc.o.d"
  "/root/repo/src/sched/schedule.cc" "src/sched/CMakeFiles/mdbs_sched.dir/schedule.cc.o" "gcc" "src/sched/CMakeFiles/mdbs_sched.dir/schedule.cc.o.d"
  "/root/repo/src/sched/serializability.cc" "src/sched/CMakeFiles/mdbs_sched.dir/serializability.cc.o" "gcc" "src/sched/CMakeFiles/mdbs_sched.dir/serializability.cc.o.d"
  "/root/repo/src/sched/stats.cc" "src/sched/CMakeFiles/mdbs_sched.dir/stats.cc.o" "gcc" "src/sched/CMakeFiles/mdbs_sched.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
