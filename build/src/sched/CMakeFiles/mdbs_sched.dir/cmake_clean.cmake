file(REMOVE_RECURSE
  "CMakeFiles/mdbs_sched.dir/graph.cc.o"
  "CMakeFiles/mdbs_sched.dir/graph.cc.o.d"
  "CMakeFiles/mdbs_sched.dir/schedule.cc.o"
  "CMakeFiles/mdbs_sched.dir/schedule.cc.o.d"
  "CMakeFiles/mdbs_sched.dir/serializability.cc.o"
  "CMakeFiles/mdbs_sched.dir/serializability.cc.o.d"
  "CMakeFiles/mdbs_sched.dir/stats.cc.o"
  "CMakeFiles/mdbs_sched.dir/stats.cc.o.d"
  "libmdbs_sched.a"
  "libmdbs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
