file(REMOVE_RECURSE
  "libmdbs_common.a"
)
