file(REMOVE_RECURSE
  "CMakeFiles/mdbs_common.dir/logging.cc.o"
  "CMakeFiles/mdbs_common.dir/logging.cc.o.d"
  "CMakeFiles/mdbs_common.dir/rng.cc.o"
  "CMakeFiles/mdbs_common.dir/rng.cc.o.d"
  "CMakeFiles/mdbs_common.dir/status.cc.o"
  "CMakeFiles/mdbs_common.dir/status.cc.o.d"
  "libmdbs_common.a"
  "libmdbs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
