# Empty dependencies file for mdbs_common.
# This may be replaced when dependencies are built.
