file(REMOVE_RECURSE
  "libmdbs_gtm.a"
)
