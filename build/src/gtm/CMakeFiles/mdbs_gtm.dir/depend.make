# Empty dependencies file for mdbs_gtm.
# This may be replaced when dependencies are built.
