
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gtm/baselines.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/baselines.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/baselines.cc.o.d"
  "/root/repo/src/gtm/gtm1.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/gtm1.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/gtm1.cc.o.d"
  "/root/repo/src/gtm/gtm2.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/gtm2.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/gtm2.cc.o.d"
  "/root/repo/src/gtm/queue_op.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/queue_op.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/queue_op.cc.o.d"
  "/root/repo/src/gtm/scheme0.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme0.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme0.cc.o.d"
  "/root/repo/src/gtm/scheme1.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme1.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme1.cc.o.d"
  "/root/repo/src/gtm/scheme2.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme2.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme2.cc.o.d"
  "/root/repo/src/gtm/scheme3.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme3.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme3.cc.o.d"
  "/root/repo/src/gtm/scheme_factory.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme_factory.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/scheme_factory.cc.o.d"
  "/root/repo/src/gtm/serialization_function.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/serialization_function.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/serialization_function.cc.o.d"
  "/root/repo/src/gtm/synthetic.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/synthetic.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/synthetic.cc.o.d"
  "/root/repo/src/gtm/tsg.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/tsg.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/tsg.cc.o.d"
  "/root/repo/src/gtm/tsgd.cc" "src/gtm/CMakeFiles/mdbs_gtm.dir/tsgd.cc.o" "gcc" "src/gtm/CMakeFiles/mdbs_gtm.dir/tsgd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdbs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/lcc/CMakeFiles/mdbs_lcc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mdbs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdbs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
