file(REMOVE_RECURSE
  "CMakeFiles/mdbs_gtm.dir/baselines.cc.o"
  "CMakeFiles/mdbs_gtm.dir/baselines.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/gtm1.cc.o"
  "CMakeFiles/mdbs_gtm.dir/gtm1.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/gtm2.cc.o"
  "CMakeFiles/mdbs_gtm.dir/gtm2.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/queue_op.cc.o"
  "CMakeFiles/mdbs_gtm.dir/queue_op.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/scheme0.cc.o"
  "CMakeFiles/mdbs_gtm.dir/scheme0.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/scheme1.cc.o"
  "CMakeFiles/mdbs_gtm.dir/scheme1.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/scheme2.cc.o"
  "CMakeFiles/mdbs_gtm.dir/scheme2.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/scheme3.cc.o"
  "CMakeFiles/mdbs_gtm.dir/scheme3.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/scheme_factory.cc.o"
  "CMakeFiles/mdbs_gtm.dir/scheme_factory.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/serialization_function.cc.o"
  "CMakeFiles/mdbs_gtm.dir/serialization_function.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/synthetic.cc.o"
  "CMakeFiles/mdbs_gtm.dir/synthetic.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/tsg.cc.o"
  "CMakeFiles/mdbs_gtm.dir/tsg.cc.o.d"
  "CMakeFiles/mdbs_gtm.dir/tsgd.cc.o"
  "CMakeFiles/mdbs_gtm.dir/tsgd.cc.o.d"
  "libmdbs_gtm.a"
  "libmdbs_gtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_gtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
