# CMake generated Testfile for 
# Source directory: /root/repo/src/gtm
# Build directory: /root/repo/build/src/gtm
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
