file(REMOVE_RECURSE
  "libmdbs_mdbs.a"
)
