file(REMOVE_RECURSE
  "CMakeFiles/mdbs_mdbs.dir/driver.cc.o"
  "CMakeFiles/mdbs_mdbs.dir/driver.cc.o.d"
  "CMakeFiles/mdbs_mdbs.dir/mdbs.cc.o"
  "CMakeFiles/mdbs_mdbs.dir/mdbs.cc.o.d"
  "CMakeFiles/mdbs_mdbs.dir/workload.cc.o"
  "CMakeFiles/mdbs_mdbs.dir/workload.cc.o.d"
  "libmdbs_mdbs.a"
  "libmdbs_mdbs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_mdbs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
