# Empty compiler generated dependencies file for mdbs_mdbs.
# This may be replaced when dependencies are built.
