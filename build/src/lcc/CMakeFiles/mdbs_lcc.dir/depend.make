# Empty dependencies file for mdbs_lcc.
# This may be replaced when dependencies are built.
