
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lcc/lock_manager.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/lock_manager.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/lock_manager.cc.o.d"
  "/root/repo/src/lcc/mvto.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/mvto.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/mvto.cc.o.d"
  "/root/repo/src/lcc/occ.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/occ.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/occ.cc.o.d"
  "/root/repo/src/lcc/protocol.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/protocol.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/protocol.cc.o.d"
  "/root/repo/src/lcc/sgt.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/sgt.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/sgt.cc.o.d"
  "/root/repo/src/lcc/timestamp_ordering.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/timestamp_ordering.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/timestamp_ordering.cc.o.d"
  "/root/repo/src/lcc/two_phase_locking.cc" "src/lcc/CMakeFiles/mdbs_lcc.dir/two_phase_locking.cc.o" "gcc" "src/lcc/CMakeFiles/mdbs_lcc.dir/two_phase_locking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mdbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
