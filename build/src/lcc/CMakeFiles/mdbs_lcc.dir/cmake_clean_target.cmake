file(REMOVE_RECURSE
  "libmdbs_lcc.a"
)
