file(REMOVE_RECURSE
  "CMakeFiles/mdbs_lcc.dir/lock_manager.cc.o"
  "CMakeFiles/mdbs_lcc.dir/lock_manager.cc.o.d"
  "CMakeFiles/mdbs_lcc.dir/mvto.cc.o"
  "CMakeFiles/mdbs_lcc.dir/mvto.cc.o.d"
  "CMakeFiles/mdbs_lcc.dir/occ.cc.o"
  "CMakeFiles/mdbs_lcc.dir/occ.cc.o.d"
  "CMakeFiles/mdbs_lcc.dir/protocol.cc.o"
  "CMakeFiles/mdbs_lcc.dir/protocol.cc.o.d"
  "CMakeFiles/mdbs_lcc.dir/sgt.cc.o"
  "CMakeFiles/mdbs_lcc.dir/sgt.cc.o.d"
  "CMakeFiles/mdbs_lcc.dir/timestamp_ordering.cc.o"
  "CMakeFiles/mdbs_lcc.dir/timestamp_ordering.cc.o.d"
  "CMakeFiles/mdbs_lcc.dir/two_phase_locking.cc.o"
  "CMakeFiles/mdbs_lcc.dir/two_phase_locking.cc.o.d"
  "libmdbs_lcc.a"
  "libmdbs_lcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_lcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
