file(REMOVE_RECURSE
  "CMakeFiles/mdbs_sim.dir/event_loop.cc.o"
  "CMakeFiles/mdbs_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/mdbs_sim.dir/metrics.cc.o"
  "CMakeFiles/mdbs_sim.dir/metrics.cc.o.d"
  "libmdbs_sim.a"
  "libmdbs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
