file(REMOVE_RECURSE
  "libmdbs_sim.a"
)
