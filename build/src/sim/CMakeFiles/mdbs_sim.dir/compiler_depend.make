# Empty compiler generated dependencies file for mdbs_sim.
# This may be replaced when dependencies are built.
