file(REMOVE_RECURSE
  "libmdbs_site.a"
)
