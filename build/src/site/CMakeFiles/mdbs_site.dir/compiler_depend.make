# Empty compiler generated dependencies file for mdbs_site.
# This may be replaced when dependencies are built.
