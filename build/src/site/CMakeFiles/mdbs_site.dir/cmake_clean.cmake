file(REMOVE_RECURSE
  "CMakeFiles/mdbs_site.dir/local_dbms.cc.o"
  "CMakeFiles/mdbs_site.dir/local_dbms.cc.o.d"
  "libmdbs_site.a"
  "libmdbs_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
