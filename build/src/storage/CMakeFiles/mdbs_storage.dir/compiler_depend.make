# Empty compiler generated dependencies file for mdbs_storage.
# This may be replaced when dependencies are built.
