file(REMOVE_RECURSE
  "libmdbs_storage.a"
)
