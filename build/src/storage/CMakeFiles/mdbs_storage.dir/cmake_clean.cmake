file(REMOVE_RECURSE
  "CMakeFiles/mdbs_storage.dir/kv_store.cc.o"
  "CMakeFiles/mdbs_storage.dir/kv_store.cc.o.d"
  "libmdbs_storage.a"
  "libmdbs_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
