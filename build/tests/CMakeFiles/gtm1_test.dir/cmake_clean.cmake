file(REMOVE_RECURSE
  "CMakeFiles/gtm1_test.dir/gtm1_test.cc.o"
  "CMakeFiles/gtm1_test.dir/gtm1_test.cc.o.d"
  "gtm1_test"
  "gtm1_test.pdb"
  "gtm1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtm1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
