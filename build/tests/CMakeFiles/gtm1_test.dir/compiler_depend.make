# Empty compiler generated dependencies file for gtm1_test.
# This may be replaced when dependencies are built.
