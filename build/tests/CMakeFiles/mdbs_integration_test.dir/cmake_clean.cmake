file(REMOVE_RECURSE
  "CMakeFiles/mdbs_integration_test.dir/mdbs_integration_test.cc.o"
  "CMakeFiles/mdbs_integration_test.dir/mdbs_integration_test.cc.o.d"
  "mdbs_integration_test"
  "mdbs_integration_test.pdb"
  "mdbs_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdbs_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
