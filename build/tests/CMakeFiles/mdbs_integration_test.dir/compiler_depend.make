# Empty compiler generated dependencies file for mdbs_integration_test.
# This may be replaced when dependencies are built.
