file(REMOVE_RECURSE
  "CMakeFiles/lcc_protocols_test.dir/lcc_protocols_test.cc.o"
  "CMakeFiles/lcc_protocols_test.dir/lcc_protocols_test.cc.o.d"
  "lcc_protocols_test"
  "lcc_protocols_test.pdb"
  "lcc_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcc_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
