# Empty dependencies file for lcc_protocols_test.
# This may be replaced when dependencies are built.
