file(REMOVE_RECURSE
  "CMakeFiles/local_dbms_test.dir/local_dbms_test.cc.o"
  "CMakeFiles/local_dbms_test.dir/local_dbms_test.cc.o.d"
  "local_dbms_test"
  "local_dbms_test.pdb"
  "local_dbms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_dbms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
