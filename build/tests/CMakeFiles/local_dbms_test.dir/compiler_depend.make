# Empty compiler generated dependencies file for local_dbms_test.
# This may be replaced when dependencies are built.
