# Empty compiler generated dependencies file for gtm2_driver_test.
# This may be replaced when dependencies are built.
