file(REMOVE_RECURSE
  "CMakeFiles/gtm2_driver_test.dir/gtm2_driver_test.cc.o"
  "CMakeFiles/gtm2_driver_test.dir/gtm2_driver_test.cc.o.d"
  "gtm2_driver_test"
  "gtm2_driver_test.pdb"
  "gtm2_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtm2_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
