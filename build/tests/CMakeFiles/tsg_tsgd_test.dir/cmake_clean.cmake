file(REMOVE_RECURSE
  "CMakeFiles/tsg_tsgd_test.dir/tsg_tsgd_test.cc.o"
  "CMakeFiles/tsg_tsgd_test.dir/tsg_tsgd_test.cc.o.d"
  "tsg_tsgd_test"
  "tsg_tsgd_test.pdb"
  "tsg_tsgd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsg_tsgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
