# Empty dependencies file for tsg_tsgd_test.
# This may be replaced when dependencies are built.
