# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_test[1]_include.cmake")
include("/root/repo/build/tests/lcc_protocols_test[1]_include.cmake")
include("/root/repo/build/tests/local_dbms_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/tsg_tsgd_test[1]_include.cmake")
include("/root/repo/build/tests/scheme_test[1]_include.cmake")
include("/root/repo/build/tests/gtm1_test[1]_include.cmake")
include("/root/repo/build/tests/mdbs_integration_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/gtm2_driver_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/mvto_test[1]_include.cmake")
include("/root/repo/build/tests/prevention_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/lock_manager_model_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
