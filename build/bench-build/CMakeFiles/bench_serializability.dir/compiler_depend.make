# Empty compiler generated dependencies file for bench_serializability.
# This may be replaced when dependencies are built.
