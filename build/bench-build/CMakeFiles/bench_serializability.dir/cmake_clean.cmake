file(REMOVE_RECURSE
  "../bench/bench_serializability"
  "../bench/bench_serializability.pdb"
  "CMakeFiles/bench_serializability.dir/bench_serializability.cc.o"
  "CMakeFiles/bench_serializability.dir/bench_serializability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serializability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
