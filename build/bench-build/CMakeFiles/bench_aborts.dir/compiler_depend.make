# Empty compiler generated dependencies file for bench_aborts.
# This may be replaced when dependencies are built.
