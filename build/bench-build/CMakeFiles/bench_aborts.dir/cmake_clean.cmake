file(REMOVE_RECURSE
  "../bench/bench_aborts"
  "../bench/bench_aborts.pdb"
  "CMakeFiles/bench_aborts.dir/bench_aborts.cc.o"
  "CMakeFiles/bench_aborts.dir/bench_aborts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aborts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
