file(REMOVE_RECURSE
  "../bench/bench_concurrency_degree"
  "../bench/bench_concurrency_degree.pdb"
  "CMakeFiles/bench_concurrency_degree.dir/bench_concurrency_degree.cc.o"
  "CMakeFiles/bench_concurrency_degree.dir/bench_concurrency_degree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_concurrency_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
