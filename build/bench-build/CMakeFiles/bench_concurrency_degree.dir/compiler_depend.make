# Empty compiler generated dependencies file for bench_concurrency_degree.
# This may be replaced when dependencies are built.
