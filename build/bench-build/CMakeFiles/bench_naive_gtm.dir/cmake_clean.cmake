file(REMOVE_RECURSE
  "../bench/bench_naive_gtm"
  "../bench/bench_naive_gtm.pdb"
  "CMakeFiles/bench_naive_gtm.dir/bench_naive_gtm.cc.o"
  "CMakeFiles/bench_naive_gtm.dir/bench_naive_gtm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_naive_gtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
