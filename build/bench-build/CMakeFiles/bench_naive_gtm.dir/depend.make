# Empty dependencies file for bench_naive_gtm.
# This may be replaced when dependencies are built.
