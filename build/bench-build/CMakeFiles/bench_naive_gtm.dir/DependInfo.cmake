
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_naive_gtm.cc" "bench-build/CMakeFiles/bench_naive_gtm.dir/bench_naive_gtm.cc.o" "gcc" "bench-build/CMakeFiles/bench_naive_gtm.dir/bench_naive_gtm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mdbs/CMakeFiles/mdbs_mdbs.dir/DependInfo.cmake"
  "/root/repo/build/src/gtm/CMakeFiles/mdbs_gtm.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/mdbs_site.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mdbs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/lcc/CMakeFiles/mdbs_lcc.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mdbs_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mdbs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mdbs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
