file(REMOVE_RECURSE
  "../bench/bench_minimality"
  "../bench/bench_minimality.pdb"
  "CMakeFiles/bench_minimality.dir/bench_minimality.cc.o"
  "CMakeFiles/bench_minimality.dir/bench_minimality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
