#!/usr/bin/env python3
"""Schema check for mdbsim observability output (stdlib only).

Usage:
  tools/check_trace.py TRACE.json [METRICS.json]

Validates the Chrome trace-event JSON written by --trace_out= (the subset
of the spec Perfetto/chrome://tracing require to load a file) and, when
given, the structured run report written by --metrics_out=. Also checks the
fault/retry sub-schema: crash "DOWN" spans must live on a site track (never
the GTM's), attempt numbers must be monotonically increasing per global
transaction, and net_fault/site_* instants must be well-formed. Exits
non-zero with a message on the first violation, so CI can gate on it.

The static-analysis/downgrade sub-schema (mdbsim --analyze
--auto_downgrade) is checked too: "downgrade" instants live on the GTM
track; downgrade events may only appear in a run whose report carries a
robust verdict with its certificate (and such a run must not emit a single
ser operation); a non-robust verdict must instead carry a witness cycle
and no downgrade events. When both files are given, the trace's downgrade
count must match the report's events.downgrade counter.

The durability sub-schema (mdbsim --durable): "RECOVERY" spans live on
site tracks only and strictly inside that site's crash DOWN window (WAL
replay happens while the site is still down, and finishes before it comes
back up); recover instants carry non-negative replay counters. When both
files are given and the report has durable counters, the trace's RECOVERY
span count must equal site.recoveries and the summed replayed records of
its recover instants must equal site.wal_replay_records.
"""

import json
import re
import sys

VALID_PHASES = {"b", "e", "i", "C", "M"}

# GTM renders as tid 1; site k renders as tid k + 2 (trace_export.cc).
GTM_TID = 1
FIRST_SITE_TID = 2

NET_FAULT_DETAILS = {"req_lost", "resp_lost", "dup", "dup_suppressed",
                     "spike"}
SITE_HEALTH_EVENTS = {"site_suspect", "site_down", "site_up"}

ATTEMPT_NAME = re.compile(r"^G(\d+) attempt (\d+)$")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)  # json.load itself rejects malformed JSON.
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")

    open_async = {}  # (cat, id, pid) -> begin count
    thread_names = set()
    counts = {ph: 0 for ph in VALID_PHASES}
    last_attempt = {}  # global txn id -> last attempt number seen
    fault_counts = {"crash_spans": 0, "net_faults": 0, "resubmits": 0}
    downgrades = 0
    open_crash = {}  # tid -> open DOWN spans (for RECOVERY nesting)
    open_recovery = {}  # tid -> open RECOVERY spans
    recovery_spans = 0
    replayed_records = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event {i} is not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{path}: event {i} has unexpected ph={ph!r}")
        counts[ph] += 1
        if ph != "M":
            for key in ("ts", "pid", "tid"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(f"{path}: event {i} ({ph}) lacks numeric '{key}'")
            if ev["ts"] < 0:
                fail(f"{path}: event {i} has negative timestamp")
        if "name" not in ev:
            fail(f"{path}: event {i} has no name")
        if ph in ("b", "e"):
            if "id" not in ev or "cat" not in ev:
                fail(f"{path}: async event {i} lacks id/cat")
            key = (ev["cat"], ev["id"], ev["pid"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
                if ev["cat"] == "crash":
                    # Outage windows belong to the crashed site's own track,
                    # never the GTM's.
                    if ev["tid"] < FIRST_SITE_TID:
                        fail(f"{path}: event {i} crash span on tid "
                             f"{ev['tid']} (not a site track)")
                    if ev["name"] != "DOWN":
                        fail(f"{path}: event {i} crash span named "
                             f"{ev['name']!r}, expected 'DOWN'")
                    fault_counts["crash_spans"] += 1
                    open_crash[ev["tid"]] = open_crash.get(ev["tid"], 0) + 1
                elif ev["cat"] == "recovery":
                    # WAL replay runs on the crashed site while it is still
                    # down: a RECOVERY span may only open on a site track
                    # inside that site's own DOWN window.
                    if ev["tid"] < FIRST_SITE_TID:
                        fail(f"{path}: event {i} RECOVERY span on tid "
                             f"{ev['tid']} (not a site track)")
                    if ev["name"] != "RECOVERY":
                        fail(f"{path}: event {i} recovery span named "
                             f"{ev['name']!r}, expected 'RECOVERY'")
                    if open_crash.get(ev["tid"], 0) <= 0:
                        fail(f"{path}: event {i} RECOVERY span on tid "
                             f"{ev['tid']} outside a DOWN window")
                    open_recovery[ev["tid"]] = \
                        open_recovery.get(ev["tid"], 0) + 1
                    recovery_spans += 1
                elif ev["cat"] == "attempt":
                    m = ATTEMPT_NAME.match(ev["name"])
                    if not m:
                        fail(f"{path}: event {i} attempt span named "
                             f"{ev['name']!r}, expected 'G<id> attempt <n>'")
                    if ev["tid"] != GTM_TID:
                        fail(f"{path}: event {i} attempt span on tid "
                             f"{ev['tid']}, expected the GTM track")
                    gid, attempt = int(m.group(1)), int(m.group(2))
                    if attempt <= last_attempt.get(gid, 0):
                        fail(f"{path}: event {i} G{gid} attempt {attempt} "
                             f"not after attempt {last_attempt[gid]}")
                    last_attempt[gid] = attempt
            else:
                if open_async.get(key, 0) <= 0:
                    fail(f"{path}: event {i} ends never-begun span {key}")
                open_async[key] -= 1
                if ev["cat"] == "recovery":
                    open_recovery[ev["tid"]] = \
                        open_recovery.get(ev["tid"], 0) - 1
                elif ev["cat"] == "crash":
                    # Replay finishes before the site comes back up: the
                    # RECOVERY span must close before its DOWN span does.
                    if open_recovery.get(ev["tid"], 0) > 0:
                        fail(f"{path}: event {i} DOWN span on tid "
                             f"{ev['tid']} closed with RECOVERY still open")
                    open_crash[ev["tid"]] = open_crash.get(ev["tid"], 0) - 1
        elif ph == "i":
            name, args = ev["name"], ev.get("args", {})
            if name == "net_fault":
                if args.get("detail") not in NET_FAULT_DETAILS:
                    fail(f"{path}: event {i} net_fault with detail "
                         f"{args.get('detail')!r}")
                fault_counts["net_faults"] += 1
            elif name in SITE_HEALTH_EVENTS:
                site = args.get("site")
                if not isinstance(site, int) or site < 0:
                    fail(f"{path}: event {i} {name} without a site")
                if ev["tid"] != site + FIRST_SITE_TID:
                    fail(f"{path}: event {i} {name} for site {site} on tid "
                         f"{ev['tid']}, expected {site + FIRST_SITE_TID}")
            elif name in ("recover", "recovery_begin"):
                site = args.get("site")
                if not isinstance(site, int) or site < 0:
                    fail(f"{path}: event {i} {name} without a site")
                if ev["tid"] != site + FIRST_SITE_TID:
                    fail(f"{path}: event {i} {name} for site {site} on tid "
                         f"{ev['tid']}, expected {site + FIRST_SITE_TID}")
                if name == "recover":
                    for counter in ("a", "b"):
                        if not isinstance(args.get(counter), int) or \
                                args[counter] < 0:
                            fail(f"{path}: event {i} recover with bad "
                                 f"replay counter {counter}="
                                 f"{args.get(counter)!r}")
                    replayed_records += args["a"]
            elif name == "txn_resubmit":
                if not isinstance(args.get("a"), int) or args["a"] < 1:
                    fail(f"{path}: event {i} txn_resubmit with bad "
                         f"resubmission number {args.get('a')!r}")
                fault_counts["resubmits"] += 1
            elif name == "downgrade":
                # A fast-path attempt is a GTM decision; it renders on the
                # GTM track and names the job it belongs to.
                if ev["tid"] != GTM_TID:
                    fail(f"{path}: event {i} downgrade on tid {ev['tid']}, "
                         f"expected the GTM track")
                if not isinstance(args.get("a"), int) or args["a"] < 0:
                    fail(f"{path}: event {i} downgrade with bad job id "
                         f"{args.get('a')!r}")
                downgrades += 1
        elif ph == "C":
            if not isinstance(ev.get("args"), dict) or not ev["args"]:
                fail(f"{path}: counter event {i} needs non-empty args")
        elif ph == "M":
            if ev.get("name") == "thread_name":
                thread_names.add((ev.get("pid"), ev.get("tid")))

    unclosed = {k: n for k, n in open_async.items() if n != 0}
    if unclosed:
        fail(f"{path}: {len(unclosed)} async spans never closed: "
             f"{list(unclosed)[:5]}")
    if not thread_names:
        fail(f"{path}: no thread_name metadata (tracks would be unlabeled)")
    print(f"check_trace: {path}: {len(events)} events OK "
          f"(spans={counts['b']}, instants={counts['i']}, "
          f"counters={counts['C']}, tracks={len(thread_names)}, "
          f"crashes={fault_counts['crash_spans']}, "
          f"net_faults={fault_counts['net_faults']}, "
          f"resubmits={fault_counts['resubmits']}, "
          f"downgrades={downgrades}, recoveries={recovery_spans})")
    return {"downgrades": downgrades, "recovery_spans": recovery_spans,
            "replayed_records": replayed_records}


def check_analysis(path, doc, trace_downgrades):
    """The robustness-analyzer sub-schema over the run report."""
    info, counters = doc["info"], doc["counters"]
    downgrades = counters.get("events.downgrade", 0)
    verdict = info.get("analysis.verdict")
    if trace_downgrades is not None and downgrades != trace_downgrades:
        fail(f"{path}: events.downgrade={downgrades} but the trace has "
             f"{trace_downgrades} downgrade instants")
    if downgrades > 0:
        # Fast-path attempts are only legal under a certified robust
        # verdict, and a certified run must never route a ser operation.
        if verdict != "robust":
            fail(f"{path}: {downgrades} downgrade events but "
                 f"analysis.verdict={verdict!r} (expected 'robust')")
        if not info.get("analysis.certificate"):
            fail(f"{path}: downgrade events without analysis.certificate")
        if info.get("analysis.downgraded") != "1":
            fail(f"{path}: downgrade events but analysis.downgraded="
                 f"{info.get('analysis.downgraded')!r}")
        for counter in ("events.ser_release", "events.ser_bef_seed"):
            if counters.get(counter, 0):
                fail(f"{path}: certified fast-path run emitted "
                     f"{counters[counter]} {counter} events")
        if counters.get("gtm2.ser_wait_additions", 0):
            fail(f"{path}: certified fast-path run delayed ser operations")
    if verdict == "not_robust":
        # Every non-robust verdict must be explainable, and must not have
        # triggered the fast path.
        if not info.get("analysis.witness"):
            fail(f"{path}: analysis.verdict=not_robust without a witness")
        if downgrades:
            fail(f"{path}: non-robust run has {downgrades} downgrade events")
        if info.get("analysis.downgraded") == "1":
            fail(f"{path}: non-robust run claims analysis.downgraded=1")
    if verdict is not None:
        print(f"check_trace: {path}: analysis verdict '{verdict}' "
              f"consistent (downgrades={downgrades})")


def check_recovery(path, doc, trace_stats):
    """The durability sub-schema over the run report."""
    info, counters = doc["info"], doc["counters"]
    recoveries = counters.get("site.recoveries", 0)
    replayed = counters.get("site.wal_replay_records", 0)
    if recoveries and not counters.get("site.wal_records", 0):
        fail(f"{path}: {recoveries} recoveries but no WAL records written")
    if trace_stats is not None:
        if trace_stats["recovery_spans"] != recoveries:
            fail(f"{path}: site.recoveries={recoveries} but the trace has "
                 f"{trace_stats['recovery_spans']} RECOVERY spans")
        if trace_stats["replayed_records"] != replayed:
            fail(f"{path}: site.wal_replay_records={replayed} but the "
                 f"trace's recover instants replayed "
                 f"{trace_stats['replayed_records']} records")
    if recoveries:
        summary = doc["summaries"].get("recovery.time")
        if not summary or summary["count"] != recoveries:
            fail(f"{path}: {recoveries} recoveries but recovery.time "
                 f"summary has count="
                 f"{summary['count'] if summary else 'missing'}")
    if info.get("durable") == "1" or recoveries:
        print(f"check_trace: {path}: durability counters consistent "
              f"(recoveries={recoveries}, replayed={replayed})")


def check_metrics(path, trace_stats=None):
    with open(path) as f:
        doc = json.load(f)
    for key in ("info", "counters", "summaries"):
        if not isinstance(doc.get(key), dict):
            fail(f"{path}: missing object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int):
            fail(f"{path}: counter {name} is not an integer")
    for name, summary in doc["summaries"].items():
        for key in ("count", "mean", "min", "max", "quantiles", "histogram"):
            if key not in summary:
                fail(f"{path}: summary {name} lacks '{key}'")
        if summary["count"] < 0:
            fail(f"{path}: summary {name} has negative count")
        for q in ("p50", "p90", "p95", "p99"):
            if q not in summary["quantiles"]:
                fail(f"{path}: summary {name} lacks quantile {q}")
        histogram = summary["histogram"]
        if not isinstance(histogram, list):
            fail(f"{path}: summary {name} histogram is not an array")
        total = 0
        for bucket in histogram:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: summary {name} has a malformed bucket")
            total += bucket["count"]
        retained = min(summary["count"], 4096)  # Reservoir cap.
        if histogram and total != retained:
            fail(f"{path}: summary {name} histogram counts {total} != "
                 f"retained samples {retained}")
    required = {"phase.submit_to_commit"}
    missing = required - set(doc["summaries"])
    if missing:
        fail(f"{path}: expected summaries missing: {sorted(missing)}")
    check_analysis(path, doc,
                   trace_stats["downgrades"] if trace_stats else None)
    check_recovery(path, doc, trace_stats)
    print(f"check_trace: {path}: {len(doc['counters'])} counters, "
          f"{len(doc['summaries'])} summaries OK")


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    trace_stats = check_trace(sys.argv[1])
    if len(sys.argv) == 3:
        check_metrics(sys.argv[2], trace_stats=trace_stats)


if __name__ == "__main__":
    main()
