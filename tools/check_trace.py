#!/usr/bin/env python3
"""Schema check for mdbsim observability output (stdlib only).

Usage:
  tools/check_trace.py TRACE.json [METRICS.json]

Validates the Chrome trace-event JSON written by --trace_out= (the subset
of the spec Perfetto/chrome://tracing require to load a file) and, when
given, the structured run report written by --metrics_out=. Exits non-zero
with a message on the first violation, so CI can gate on it.
"""

import json
import sys

VALID_PHASES = {"b", "e", "i", "C", "M"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)  # json.load itself rejects malformed JSON.
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")

    open_async = {}  # (cat, id, pid) -> begin count
    thread_names = set()
    counts = {ph: 0 for ph in VALID_PHASES}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event {i} is not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{path}: event {i} has unexpected ph={ph!r}")
        counts[ph] += 1
        if ph != "M":
            for key in ("ts", "pid", "tid"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(f"{path}: event {i} ({ph}) lacks numeric '{key}'")
            if ev["ts"] < 0:
                fail(f"{path}: event {i} has negative timestamp")
        if "name" not in ev:
            fail(f"{path}: event {i} has no name")
        if ph in ("b", "e"):
            if "id" not in ev or "cat" not in ev:
                fail(f"{path}: async event {i} lacks id/cat")
            key = (ev["cat"], ev["id"], ev["pid"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
            else:
                if open_async.get(key, 0) <= 0:
                    fail(f"{path}: event {i} ends never-begun span {key}")
                open_async[key] -= 1
        elif ph == "C":
            if not isinstance(ev.get("args"), dict) or not ev["args"]:
                fail(f"{path}: counter event {i} needs non-empty args")
        elif ph == "M":
            if ev.get("name") == "thread_name":
                thread_names.add((ev.get("pid"), ev.get("tid")))

    unclosed = {k: n for k, n in open_async.items() if n != 0}
    if unclosed:
        fail(f"{path}: {len(unclosed)} async spans never closed: "
             f"{list(unclosed)[:5]}")
    if not thread_names:
        fail(f"{path}: no thread_name metadata (tracks would be unlabeled)")
    print(f"check_trace: {path}: {len(events)} events OK "
          f"(spans={counts['b']}, instants={counts['i']}, "
          f"counters={counts['C']}, tracks={len(thread_names)})")


def check_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    for key in ("info", "counters", "summaries"):
        if not isinstance(doc.get(key), dict):
            fail(f"{path}: missing object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int):
            fail(f"{path}: counter {name} is not an integer")
    for name, summary in doc["summaries"].items():
        for key in ("count", "mean", "min", "max", "quantiles", "histogram"):
            if key not in summary:
                fail(f"{path}: summary {name} lacks '{key}'")
        if summary["count"] < 0:
            fail(f"{path}: summary {name} has negative count")
        for q in ("p50", "p90", "p95", "p99"):
            if q not in summary["quantiles"]:
                fail(f"{path}: summary {name} lacks quantile {q}")
        histogram = summary["histogram"]
        if not isinstance(histogram, list):
            fail(f"{path}: summary {name} histogram is not an array")
        total = 0
        for bucket in histogram:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: summary {name} has a malformed bucket")
            total += bucket["count"]
        retained = min(summary["count"], 4096)  # Reservoir cap.
        if histogram and total != retained:
            fail(f"{path}: summary {name} histogram counts {total} != "
                 f"retained samples {retained}")
    required = {"phase.submit_to_commit"}
    missing = required - set(doc["summaries"])
    if missing:
        fail(f"{path}: expected summaries missing: {sorted(missing)}")
    print(f"check_trace: {path}: {len(doc['counters'])} counters, "
          f"{len(doc['summaries'])} summaries OK")


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_trace(sys.argv[1])
    if len(sys.argv) == 3:
        check_metrics(sys.argv[2])


if __name__ == "__main__":
    main()
