#!/usr/bin/env python3
"""Schema check for mdbsim observability output (stdlib only).

Usage:
  tools/check_trace.py TRACE.json [METRICS.json]

Validates the Chrome trace-event JSON written by --trace_out= (the subset
of the spec Perfetto/chrome://tracing require to load a file) and, when
given, the structured run report written by --metrics_out=. Also checks the
fault/retry sub-schema: crash "DOWN" spans must live on a site track (never
the GTM's), attempt numbers must be monotonically increasing per global
transaction, and net_fault/site_* instants must be well-formed. Exits
non-zero with a message on the first violation, so CI can gate on it.

The static-analysis/downgrade sub-schema (mdbsim --analyze
--auto_downgrade) is checked too: "downgrade" instants live on the GTM
track; downgrade events may only appear in a run whose report carries a
robust verdict with its certificate (and such a run must not emit a single
ser operation); a non-robust verdict must instead carry a witness cycle
and no downgrade events. When both files are given, the trace's downgrade
count must match the report's events.downgrade counter.

The durability sub-schema (mdbsim --durable): "RECOVERY" spans live on
site tracks only and strictly inside that site's crash DOWN window (WAL
replay happens while the site is still down, and finishes before it comes
back up); recover instants carry non-negative replay counters. When both
files are given and the report has durable counters, the trace's RECOVERY
span count must equal site.recoveries and the summed replayed records of
its recover instants must equal site.wal_replay_records.

The GTM-recovery sub-schema (mdbsim --gtm_durable with a gtm_crash fault
plan): the GTM outage renders as a "GTM DOWN" span on the GTM track (never
a site's), opened by a gtm_crash instant and closed by the matching
gtm_recover instant; both instants live on the GTM track and carry
non-negative counters (gtm_recover's "a" is the number of WAL records
replayed). A trace may hold at most as many gtm_recover as gtm_crash
instants (a run can end mid-outage, never the reverse). When both files
are given, the instant counts must equal the report's gtm_wal.crashes and
gtm_wal.recoveries and the summed replay counters must equal
gtm_wal.replayed_records. Attempt-number monotonicity per global
transaction is enforced across GTM restarts by the same check as for
ordinary retries: recovery must resume the WAL's attempt counter, not
restart it.

The failover sub-schema (mdbsim --gtm_standby with a gtm_failover fault
plan): the takeover renders as a "FAILOVER" span on the GTM track only,
nested inside the "GTM DOWN" span the primary's crash opened (it must
close before the outage does). Its gtm_promote_begin instant carries the
new fencing epoch in "a" — strictly greater than any epoch seen before,
so a replayed or split-brain promotion is caught — and the durable tail
in "b"; the matching gtm_promote instant's "a" counts the tail records
applied, which join gtm_recover's replay counters in the
gtm_wal.replayed_records cross-check. When both files are given, the
trace's promotion count, final epoch and tail must equal the report's
gtm_standby.promotions, gtm_standby.fencing_epoch and
gtm_standby.lag_records, and a report can only claim promotions in a run
marked gtm_standby.

The metrics-engine sub-schema (always-on unless --metrics=0): the report's
"metrics" section must carry zero balance violations, per-phase ticks that
sum EXACTLY to the total measured lifetime, the full nine-phase taxonomy,
a bottleneck that really is the argmax phase, and a timeline whose windows
increase strictly and whose per-window counters re-add to the run totals.
The "trace" section's dropped counter is reported loudly (a warning, not a
failure: dropping is legal, hiding it is not). Histogram bucket counts
must now sum to the summary's exact count — the engine keeps every sample
in log-linear buckets, there is no reservoir to cap at.
"""

import json
import re
import sys

VALID_PHASES = {"b", "e", "i", "C", "M"}

# GTM renders as tid 1; site k renders as tid k + 2 (trace_export.cc).
GTM_TID = 1
FIRST_SITE_TID = 2

NET_FAULT_DETAILS = {"req_lost", "resp_lost", "dup", "dup_suppressed",
                     "spike"}
SITE_HEALTH_EVENTS = {"site_suspect", "site_down", "site_up"}

ATTEMPT_NAME = re.compile(r"^G(\d+) attempt (\d+)$")


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)  # json.load itself rejects malformed JSON.
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: 'traceEvents' must be a non-empty array")

    open_async = {}  # (cat, id, pid) -> begin count
    thread_names = set()
    counts = {ph: 0 for ph in VALID_PHASES}
    last_attempt = {}  # global txn id -> last attempt number seen
    fault_counts = {"crash_spans": 0, "net_faults": 0, "resubmits": 0}
    downgrades = 0
    open_crash = {}  # tid -> open DOWN spans (for RECOVERY nesting)
    open_recovery = {}  # tid -> open RECOVERY spans
    recovery_spans = 0
    replayed_records = 0
    open_gtm_down = 0
    gtm_crashes = 0
    gtm_recovers = 0
    gtm_replayed = 0
    open_failover = 0
    promote_begins = 0
    promotes = 0
    promote_replayed = 0
    last_epoch = 0
    promote_tail = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: event {i} is not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{path}: event {i} has unexpected ph={ph!r}")
        counts[ph] += 1
        if ph != "M":
            for key in ("ts", "pid", "tid"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(f"{path}: event {i} ({ph}) lacks numeric '{key}'")
            if ev["ts"] < 0:
                fail(f"{path}: event {i} has negative timestamp")
        if "name" not in ev:
            fail(f"{path}: event {i} has no name")
        if ph in ("b", "e"):
            if "id" not in ev or "cat" not in ev:
                fail(f"{path}: async event {i} lacks id/cat")
            key = (ev["cat"], ev["id"], ev["pid"])
            if ph == "b":
                open_async[key] = open_async.get(key, 0) + 1
                if ev["cat"] == "crash":
                    # Outage windows belong to the crashed site's own track,
                    # never the GTM's.
                    if ev["tid"] < FIRST_SITE_TID:
                        fail(f"{path}: event {i} crash span on tid "
                             f"{ev['tid']} (not a site track)")
                    if ev["name"] != "DOWN":
                        fail(f"{path}: event {i} crash span named "
                             f"{ev['name']!r}, expected 'DOWN'")
                    fault_counts["crash_spans"] += 1
                    open_crash[ev["tid"]] = open_crash.get(ev["tid"], 0) + 1
                elif ev["cat"] == "recovery":
                    # WAL replay runs on the crashed site while it is still
                    # down: a RECOVERY span may only open on a site track
                    # inside that site's own DOWN window.
                    if ev["tid"] < FIRST_SITE_TID:
                        fail(f"{path}: event {i} RECOVERY span on tid "
                             f"{ev['tid']} (not a site track)")
                    if ev["name"] != "RECOVERY":
                        fail(f"{path}: event {i} recovery span named "
                             f"{ev['name']!r}, expected 'RECOVERY'")
                    if open_crash.get(ev["tid"], 0) <= 0:
                        fail(f"{path}: event {i} RECOVERY span on tid "
                             f"{ev['tid']} outside a DOWN window")
                    open_recovery[ev["tid"]] = \
                        open_recovery.get(ev["tid"], 0) + 1
                    recovery_spans += 1
                elif ev["cat"] == "gtm_crash":
                    # The GTM outage is a GTM-track span — a site track
                    # carrying it would misattribute the outage.
                    if ev["tid"] != GTM_TID:
                        fail(f"{path}: event {i} GTM DOWN span on tid "
                             f"{ev['tid']}, expected the GTM track")
                    if ev["name"] != "GTM DOWN":
                        fail(f"{path}: event {i} gtm_crash span named "
                             f"{ev['name']!r}, expected 'GTM DOWN'")
                    open_gtm_down += 1
                elif ev["cat"] == "gtm_failover":
                    # The takeover is GTM work nested inside the outage it
                    # repairs: a FAILOVER span on any other track, or
                    # outside a GTM DOWN window, misattributes it.
                    if ev["tid"] != GTM_TID:
                        fail(f"{path}: event {i} FAILOVER span on tid "
                             f"{ev['tid']}, expected the GTM track")
                    if ev["name"] != "FAILOVER":
                        fail(f"{path}: event {i} gtm_failover span named "
                             f"{ev['name']!r}, expected 'FAILOVER'")
                    if open_gtm_down <= 0:
                        fail(f"{path}: event {i} FAILOVER span outside a "
                             f"GTM DOWN window")
                    open_failover += 1
                elif ev["cat"] == "attempt":
                    m = ATTEMPT_NAME.match(ev["name"])
                    if not m:
                        fail(f"{path}: event {i} attempt span named "
                             f"{ev['name']!r}, expected 'G<id> attempt <n>'")
                    if ev["tid"] != GTM_TID:
                        fail(f"{path}: event {i} attempt span on tid "
                             f"{ev['tid']}, expected the GTM track")
                    gid, attempt = int(m.group(1)), int(m.group(2))
                    if attempt <= last_attempt.get(gid, 0):
                        fail(f"{path}: event {i} G{gid} attempt {attempt} "
                             f"not after attempt {last_attempt[gid]}")
                    last_attempt[gid] = attempt
            else:
                if open_async.get(key, 0) <= 0:
                    fail(f"{path}: event {i} ends never-begun span {key}")
                open_async[key] -= 1
                if ev["cat"] == "recovery":
                    open_recovery[ev["tid"]] = \
                        open_recovery.get(ev["tid"], 0) - 1
                elif ev["cat"] == "crash":
                    # Replay finishes before the site comes back up: the
                    # RECOVERY span must close before its DOWN span does.
                    if open_recovery.get(ev["tid"], 0) > 0:
                        fail(f"{path}: event {i} DOWN span on tid "
                             f"{ev['tid']} closed with RECOVERY still open")
                    open_crash[ev["tid"]] = open_crash.get(ev["tid"], 0) - 1
                elif ev["cat"] == "gtm_crash":
                    # Promotion finishes before the outage ends: the
                    # FAILOVER span must close before its GTM DOWN does.
                    if open_failover > 0:
                        fail(f"{path}: event {i} GTM DOWN span closed with "
                             f"a FAILOVER span still open")
                    open_gtm_down -= 1
                elif ev["cat"] == "gtm_failover":
                    open_failover -= 1
        elif ph == "i":
            name, args = ev["name"], ev.get("args", {})
            if name == "net_fault":
                if args.get("detail") not in NET_FAULT_DETAILS:
                    fail(f"{path}: event {i} net_fault with detail "
                         f"{args.get('detail')!r}")
                fault_counts["net_faults"] += 1
            elif name in SITE_HEALTH_EVENTS:
                site = args.get("site")
                if not isinstance(site, int) or site < 0:
                    fail(f"{path}: event {i} {name} without a site")
                if ev["tid"] != site + FIRST_SITE_TID:
                    fail(f"{path}: event {i} {name} for site {site} on tid "
                         f"{ev['tid']}, expected {site + FIRST_SITE_TID}")
            elif name in ("recover", "recovery_begin"):
                site = args.get("site")
                if not isinstance(site, int) or site < 0:
                    fail(f"{path}: event {i} {name} without a site")
                if ev["tid"] != site + FIRST_SITE_TID:
                    fail(f"{path}: event {i} {name} for site {site} on tid "
                         f"{ev['tid']}, expected {site + FIRST_SITE_TID}")
                if name == "recover":
                    for counter in ("a", "b"):
                        if not isinstance(args.get(counter), int) or \
                                args[counter] < 0:
                            fail(f"{path}: event {i} recover with bad "
                                 f"replay counter {counter}="
                                 f"{args.get(counter)!r}")
                    replayed_records += args["a"]
            elif name == "txn_resubmit":
                if not isinstance(args.get("a"), int) or args["a"] < 1:
                    fail(f"{path}: event {i} txn_resubmit with bad "
                         f"resubmission number {args.get('a')!r}")
                fault_counts["resubmits"] += 1
            elif name == "downgrade":
                # A fast-path attempt is a GTM decision; it renders on the
                # GTM track and names the job it belongs to.
                if ev["tid"] != GTM_TID:
                    fail(f"{path}: event {i} downgrade on tid {ev['tid']}, "
                         f"expected the GTM track")
                if not isinstance(args.get("a"), int) or args["a"] < 0:
                    fail(f"{path}: event {i} downgrade with bad job id "
                         f"{args.get('a')!r}")
                downgrades += 1
            elif name in ("gtm_crash", "gtm_recover"):
                if ev["tid"] != GTM_TID:
                    fail(f"{path}: event {i} {name} on tid {ev['tid']}, "
                         f"expected the GTM track")
                for counter in ("a", "b"):
                    if not isinstance(args.get(counter), int) or \
                            args[counter] < 0:
                        fail(f"{path}: event {i} {name} with bad counter "
                             f"{counter}={args.get(counter)!r}")
                if name == "gtm_crash":
                    # The crash instant opens the outage: its GTM DOWN span
                    # must already be in flight at this point in the stream.
                    if open_gtm_down <= 0:
                        fail(f"{path}: event {i} gtm_crash instant outside "
                             f"a GTM DOWN span")
                    gtm_crashes += 1
                else:
                    gtm_recovers += 1
                    gtm_replayed += args["a"]
                    if gtm_recovers > gtm_crashes:
                        fail(f"{path}: event {i} gtm_recover without a "
                             f"preceding gtm_crash")
            elif name in ("gtm_promote_begin", "gtm_promote"):
                if ev["tid"] != GTM_TID:
                    fail(f"{path}: event {i} {name} on tid {ev['tid']}, "
                         f"expected the GTM track")
                for counter in ("a", "b"):
                    if not isinstance(args.get(counter), int) or \
                            args[counter] < 0:
                        fail(f"{path}: event {i} {name} with bad counter "
                             f"{counter}={args.get(counter)!r}")
                if name == "gtm_promote_begin":
                    if open_failover <= 0:
                        fail(f"{path}: event {i} gtm_promote_begin outside "
                             f"a FAILOVER span")
                    # The fencing epoch only ever moves forward: a repeated
                    # or stale epoch here is split brain in the making.
                    if args["a"] <= last_epoch:
                        fail(f"{path}: event {i} gtm_promote_begin epoch "
                             f"{args['a']} not above previous epoch "
                             f"{last_epoch}")
                    last_epoch = args["a"]
                    promote_tail = args["b"]
                    promote_begins += 1
                else:
                    promotes += 1
                    promote_replayed += args["a"]
                    if promotes > promote_begins:
                        fail(f"{path}: event {i} gtm_promote without a "
                             f"preceding gtm_promote_begin")
        elif ph == "C":
            if not isinstance(ev.get("args"), dict) or not ev["args"]:
                fail(f"{path}: counter event {i} needs non-empty args")
        elif ph == "M":
            if ev.get("name") == "thread_name":
                thread_names.add((ev.get("pid"), ev.get("tid")))

    unclosed = {k: n for k, n in open_async.items() if n != 0}
    if unclosed:
        fail(f"{path}: {len(unclosed)} async spans never closed: "
             f"{list(unclosed)[:5]}")
    if not thread_names:
        fail(f"{path}: no thread_name metadata (tracks would be unlabeled)")
    print(f"check_trace: {path}: {len(events)} events OK "
          f"(spans={counts['b']}, instants={counts['i']}, "
          f"counters={counts['C']}, tracks={len(thread_names)}, "
          f"crashes={fault_counts['crash_spans']}, "
          f"net_faults={fault_counts['net_faults']}, "
          f"resubmits={fault_counts['resubmits']}, "
          f"downgrades={downgrades}, recoveries={recovery_spans}, "
          f"gtm_crashes={gtm_crashes}, promotions={promotes})")
    return {"downgrades": downgrades, "recovery_spans": recovery_spans,
            "replayed_records": replayed_records,
            "gtm_crashes": gtm_crashes, "gtm_recovers": gtm_recovers,
            "gtm_replayed": gtm_replayed, "promotions": promotes,
            "promote_replayed": promote_replayed,
            "last_epoch": last_epoch, "promote_tail": promote_tail}


def check_analysis(path, doc, trace_downgrades):
    """The robustness-analyzer sub-schema over the run report."""
    info, counters = doc["info"], doc["counters"]
    downgrades = counters.get("events.downgrade", 0)
    verdict = info.get("analysis.verdict")
    if trace_downgrades is not None and downgrades != trace_downgrades:
        fail(f"{path}: events.downgrade={downgrades} but the trace has "
             f"{trace_downgrades} downgrade instants")
    if downgrades > 0:
        # Fast-path attempts are only legal under a certified robust
        # verdict, and a certified run must never route a ser operation.
        if verdict != "robust":
            fail(f"{path}: {downgrades} downgrade events but "
                 f"analysis.verdict={verdict!r} (expected 'robust')")
        if not info.get("analysis.certificate"):
            fail(f"{path}: downgrade events without analysis.certificate")
        if info.get("analysis.downgraded") != "1":
            fail(f"{path}: downgrade events but analysis.downgraded="
                 f"{info.get('analysis.downgraded')!r}")
        for counter in ("events.ser_release", "events.ser_bef_seed"):
            if counters.get(counter, 0):
                fail(f"{path}: certified fast-path run emitted "
                     f"{counters[counter]} {counter} events")
        if counters.get("gtm2.ser_wait_additions", 0):
            fail(f"{path}: certified fast-path run delayed ser operations")
    if verdict == "not_robust":
        # Every non-robust verdict must be explainable, and must not have
        # triggered the fast path.
        if not info.get("analysis.witness"):
            fail(f"{path}: analysis.verdict=not_robust without a witness")
        if downgrades:
            fail(f"{path}: non-robust run has {downgrades} downgrade events")
        if info.get("analysis.downgraded") == "1":
            fail(f"{path}: non-robust run claims analysis.downgraded=1")
    if verdict is not None:
        print(f"check_trace: {path}: analysis verdict '{verdict}' "
              f"consistent (downgrades={downgrades})")


def check_recovery(path, doc, trace_stats):
    """The durability sub-schema over the run report."""
    info, counters = doc["info"], doc["counters"]
    recoveries = counters.get("site.recoveries", 0)
    replayed = counters.get("site.wal_replay_records", 0)
    if recoveries and not counters.get("site.wal_records", 0):
        fail(f"{path}: {recoveries} recoveries but no WAL records written")
    if trace_stats is not None:
        if trace_stats["recovery_spans"] != recoveries:
            fail(f"{path}: site.recoveries={recoveries} but the trace has "
                 f"{trace_stats['recovery_spans']} RECOVERY spans")
        if trace_stats["replayed_records"] != replayed:
            fail(f"{path}: site.wal_replay_records={replayed} but the "
                 f"trace's recover instants replayed "
                 f"{trace_stats['replayed_records']} records")
    if recoveries:
        summary = doc["summaries"].get("recovery.time")
        if not summary or summary["count"] != recoveries:
            fail(f"{path}: {recoveries} recoveries but recovery.time "
                 f"summary has count="
                 f"{summary['count'] if summary else 'missing'}")
    if info.get("durable") == "1" or recoveries:
        print(f"check_trace: {path}: durability counters consistent "
              f"(recoveries={recoveries}, replayed={replayed})")


def check_gtm_recovery(path, doc, trace_stats):
    """The GTM-durability sub-schema over the run report."""
    info, counters = doc["info"], doc["counters"]
    crashes = counters.get("gtm_wal.crashes", 0)
    recoveries = counters.get("gtm_wal.recoveries", 0)
    replayed = counters.get("gtm_wal.replayed_records", 0)
    if recoveries > crashes:
        fail(f"{path}: gtm_wal.recoveries={recoveries} exceeds "
             f"gtm_wal.crashes={crashes}")
    if recoveries and not counters.get("gtm_wal.records", 0):
        fail(f"{path}: {recoveries} GTM recoveries but no GTM WAL records "
             f"written")
    if crashes and not info.get("gtm_durable"):
        fail(f"{path}: {crashes} GTM crashes in a run not marked "
             f"gtm_durable (a non-durable GTM must reject gtm_crash plans)")
    if trace_stats is not None:
        if trace_stats["gtm_crashes"] != crashes:
            fail(f"{path}: gtm_wal.crashes={crashes} but the trace has "
                 f"{trace_stats['gtm_crashes']} gtm_crash instants")
        if trace_stats["gtm_recovers"] != recoveries:
            fail(f"{path}: gtm_wal.recoveries={recoveries} but the trace "
                 f"has {trace_stats['gtm_recovers']} gtm_recover instants")
        traced = trace_stats["gtm_replayed"] + trace_stats["promote_replayed"]
        if traced != replayed:
            fail(f"{path}: gtm_wal.replayed_records={replayed} but the "
                 f"trace's gtm_recover and gtm_promote instants replayed "
                 f"{traced} records")
    if info.get("gtm_durable") == "1" or crashes:
        print(f"check_trace: {path}: GTM durability counters consistent "
              f"(crashes={crashes}, recoveries={recoveries}, "
              f"replayed={replayed})")


def check_failover(path, doc, trace_stats):
    """The warm-standby failover sub-schema over the run report."""
    info, counters = doc["info"], doc["counters"]
    promotions = counters.get("gtm_standby.promotions", 0)
    epoch = counters.get("gtm_standby.fencing_epoch", 0)
    shipped = counters.get("gtm_standby.shipped_records", 0)
    applied = counters.get("gtm_standby.applied_records", 0)
    if promotions and info.get("gtm_standby") != "1":
        fail(f"{path}: {promotions} promotions in a run not marked "
             f"gtm_standby (only a warm standby can be promoted)")
    if epoch != promotions:
        # Each promotion bumps the fencing epoch exactly once; any other
        # relation means a promotion was replayed or an epoch skipped.
        fail(f"{path}: gtm_standby.fencing_epoch={epoch} != "
             f"gtm_standby.promotions={promotions}")
    if applied > shipped:
        fail(f"{path}: gtm_standby.applied_records={applied} exceeds "
             f"shipped_records={shipped}")
    if trace_stats is not None:
        if trace_stats["promotions"] != promotions:
            fail(f"{path}: gtm_standby.promotions={promotions} but the "
                 f"trace has {trace_stats['promotions']} gtm_promote "
                 f"instants")
        if promotions and trace_stats["last_epoch"] != epoch:
            fail(f"{path}: gtm_standby.fencing_epoch={epoch} but the "
                 f"trace's last promotion announced epoch "
                 f"{trace_stats['last_epoch']}")
        if promotions and trace_stats["promote_tail"] != \
                counters.get("gtm_standby.lag_records", 0):
            fail(f"{path}: gtm_standby.lag_records="
                 f"{counters.get('gtm_standby.lag_records', 0)} but the "
                 f"trace's promotion carried a tail of "
                 f"{trace_stats['promote_tail']} records")
    if info.get("gtm_standby") == "1" or promotions:
        print(f"check_trace: {path}: failover counters consistent "
              f"(promotions={promotions}, epoch={epoch}, "
              f"shipped={shipped}, applied={applied})")


TXN_PHASES = ("admission", "scheme", "ser_wait", "ticket", "network",
              "site_exec", "backoff", "parked", "recovery")

TIMELINE_COUNTERS = ("submitted", "committed", "failed", "attempt_aborts",
                     "max_queue_depth", "max_wait_depth", "max_parked",
                     "site_down_events")


def check_metrics_engine(path, doc):
    """The always-on metrics-engine sub-schema over the run report."""
    if "trace" in doc:
        trace = doc["trace"]
        for key in ("recorded", "dropped"):
            if not isinstance(trace.get(key), int) or trace[key] < 0:
                fail(f"{path}: trace.{key} must be a non-negative integer")
        if trace["dropped"] > 0:
            # Dropping under a bounded buffer is legal; silence is not.
            print(f"check_trace: {path}: WARNING: trace sink dropped "
                  f"{trace['dropped']} events (recorded "
                  f"{trace['recorded']}) — raise --trace_buffer",
                  file=sys.stderr)
    if "metrics" not in doc:
        return
    m = doc["metrics"]
    for key in ("window_size", "finished", "committed", "lifetime_ticks"):
        if not isinstance(m.get(key), int) or m[key] < 0:
            fail(f"{path}: metrics.{key} must be a non-negative integer")
    finished = m["finished"]
    if m["committed"] > finished:
        fail(f"{path}: metrics.committed={m['committed']} exceeds "
             f"finished={finished}")

    # The balance invariant is the engine's core guarantee: every finished
    # transaction's exclusive phases partition its lifetime exactly.
    balance = m.get("balance", {})
    if balance.get("violations") != 0 or balance.get("max_error") != 0:
        fail(f"{path}: phase balance violated: {balance!r}")
    if set(m.get("phases", {})) != set(TXN_PHASES):
        fail(f"{path}: metrics.phases keys {sorted(m.get('phases', {}))} "
             f"!= the phase taxonomy {sorted(TXN_PHASES)}")
    phase_ticks = {}
    for name in TXN_PHASES:
        phase = m["phases"][name]
        for key in ("ticks", "count"):
            if not isinstance(phase.get(key), int) or phase[key] < 0:
                fail(f"{path}: phase {name}.{key} must be a non-negative "
                     f"integer")
        if not 0.0 <= phase.get("share", -1.0) <= 1.0:
            fail(f"{path}: phase {name} share {phase.get('share')!r} "
                 f"outside [0,1]")
        if phase["count"] != finished:
            # Every phase summary gets one sample per finished transaction
            # (zero dwell records as zero), so the counts must all agree.
            fail(f"{path}: phase {name} count {phase['count']} != "
                 f"finished {finished}")
        for q in ("p50", "p95", "p99", "p999"):
            if q not in phase.get("quantiles", {}):
                fail(f"{path}: phase {name} lacks quantile {q}")
        phase_ticks[name] = phase["ticks"]
    if sum(phase_ticks.values()) != m["lifetime_ticks"]:
        fail(f"{path}: phase ticks sum {sum(phase_ticks.values())} != "
             f"lifetime_ticks {m['lifetime_ticks']}")

    bottleneck = m.get("bottleneck", {})
    if bottleneck.get("phase") not in TXN_PHASES:
        fail(f"{path}: bottleneck phase {bottleneck.get('phase')!r} not in "
             f"the taxonomy")
    if finished and phase_ticks[bottleneck["phase"]] != max(
            phase_ticks.values()):
        fail(f"{path}: bottleneck {bottleneck['phase']} is not the argmax "
             f"phase ({phase_ticks})")

    timeline = m.get("timeline")
    if not isinstance(timeline, list):
        fail(f"{path}: metrics.timeline is not an array")
    prev_window = None
    totals = {"submitted": 0, "committed": 0}
    for i, point in enumerate(timeline):
        for key in TIMELINE_COUNTERS:
            if not isinstance(point.get(key), int) or point[key] < 0:
                fail(f"{path}: timeline[{i}].{key} must be a non-negative "
                     f"integer")
        if prev_window is not None and point["window"] <= prev_window:
            fail(f"{path}: timeline windows not strictly increasing at "
                 f"[{i}]: {point['window']} after {prev_window}")
        prev_window = point["window"]
        if point.get("start") != point["window"] * m["window_size"]:
            fail(f"{path}: timeline[{i}] start {point.get('start')!r} != "
                 f"window*window_size")
        if not isinstance(point.get("p99_latency"), (int, float)) or \
                point["p99_latency"] < 0:
            fail(f"{path}: timeline[{i}] has bad p99_latency")
        totals["submitted"] += point["submitted"]
        totals["committed"] += point["committed"]
    # Windowed counts are a partition of the run: they re-add to the totals.
    if totals["submitted"] != finished:
        fail(f"{path}: timeline submitted sum {totals['submitted']} != "
             f"finished {finished}")
    if totals["committed"] != m["committed"]:
        fail(f"{path}: timeline committed sum {totals['committed']} != "
             f"committed {m['committed']}")

    # Cross-check against the flat registry the same report carries.
    counters, summaries = doc["counters"], doc["summaries"]
    if counters.get("metrics.finished", finished) != finished:
        fail(f"{path}: counters['metrics.finished']="
             f"{counters['metrics.finished']} != metrics.finished "
             f"{finished}")
    lifetime = summaries.get("txn.lifetime")
    if lifetime is not None and lifetime["count"] != finished:
        fail(f"{path}: txn.lifetime summary count {lifetime['count']} != "
             f"metrics.finished {finished}")
    print(f"check_trace: {path}: metrics engine consistent "
          f"(finished={finished}, committed={m['committed']}, "
          f"bottleneck={bottleneck['phase']} "
          f"{bottleneck.get('share', 0.0):.0%}, "
          f"windows={len(timeline)})")


def check_metrics(path, trace_stats=None):
    with open(path) as f:
        doc = json.load(f)
    for key in ("info", "counters", "summaries"):
        if not isinstance(doc.get(key), dict):
            fail(f"{path}: missing object '{key}'")
    for name, value in doc["counters"].items():
        if not isinstance(value, int):
            fail(f"{path}: counter {name} is not an integer")
    for name, summary in doc["summaries"].items():
        for key in ("count", "mean", "min", "max", "quantiles", "histogram"):
            if key not in summary:
                fail(f"{path}: summary {name} lacks '{key}'")
        if summary["count"] < 0:
            fail(f"{path}: summary {name} has negative count")
        for q in ("p50", "p90", "p95", "p99", "p999"):
            if q not in summary["quantiles"]:
                fail(f"{path}: summary {name} lacks quantile {q}")
        histogram = summary["histogram"]
        if not isinstance(histogram, list):
            fail(f"{path}: summary {name} histogram is not an array")
        total = 0
        for bucket in histogram:
            if "le" not in bucket or "count" not in bucket:
                fail(f"{path}: summary {name} has a malformed bucket")
            total += bucket["count"]
        # Log-linear histograms count every sample — no reservoir cap.
        if histogram and total != summary["count"]:
            fail(f"{path}: summary {name} histogram counts {total} != "
                 f"count {summary['count']}")
    required = {"phase.submit_to_commit"}
    missing = required - set(doc["summaries"])
    if missing:
        fail(f"{path}: expected summaries missing: {sorted(missing)}")
    check_analysis(path, doc,
                   trace_stats["downgrades"] if trace_stats else None)
    check_recovery(path, doc, trace_stats)
    check_gtm_recovery(path, doc, trace_stats)
    check_failover(path, doc, trace_stats)
    check_metrics_engine(path, doc)
    print(f"check_trace: {path}: {len(doc['counters'])} counters, "
          f"{len(doc['summaries'])} summaries OK")


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    trace_stats = check_trace(sys.argv[1])
    if len(sys.argv) == 3:
        check_metrics(sys.argv[2], trace_stats=trace_stats)


if __name__ == "__main__":
    main()
