// mdbsim — command-line MDBS simulator. Assemble a federation from the
// command line, run a mixed workload, verify serializability, and print
// the full report. Useful for exploring the scheme/protocol/contention
// space without writing code.
//
// Usage:
//   mdbsim [--sites=2pl,to,sgt,occ,mvto,2plww,2plwd]
//          [--scheme=0|1|2|3|ticket|none]
//          [--global-clients=8] [--local-clients=1] [--commits=200]
//          [--items=100] [--dav=2-3] [--read-ratio=0.5] [--zipf=0.0]
//          [--seed=42] [--crash-interval=0] [--timeout=200000]
//          [--fault_plan=SPEC|FILE] [--retry=MAX,BACKOFF]
//          [--dump-schedule=0]
//
// Example:
//   ./build/examples/mdbsim --sites=2pl,mvto,sgt --scheme=3
//       --global-clients=12 --commits=500 --items=20 --zipf=0.9

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/capability.h"
#include "analysis/robustness.h"
#include "analysis/template.h"
#include "gtm/robust_fast_path.h"
#include "mdbs/driver.h"
#include "mdbs/mdbs.h"
#include "mdbs/threaded_driver.h"
#include "obs/report.h"
#include "obs/trace_export.h"
#include "sched/stats.h"
#include "storage/framing.h"
#include "storage/log_device.h"

namespace {

using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

struct Options {
  std::vector<ProtocolKind> sites = {ProtocolKind::kTwoPhaseLocking,
                                     ProtocolKind::kTimestampOrdering,
                                     ProtocolKind::kSerializationGraph};
  SchemeKind scheme = SchemeKind::kScheme3;
  int global_clients = 8;
  int local_clients = 1;
  int64_t commits = 200;
  int64_t items = 100;
  int dav_min = 2;
  int dav_max = 3;
  double read_ratio = 0.5;
  double zipf = 0.0;
  uint64_t seed = 42;
  double loss = 0.0;
  mdbs::sim::Time crash_interval = 0;
  mdbs::sim::Time timeout = 200'000;
  int dump_schedule = 0;
  bool threaded = false;
  std::string fault_plan;
  int retry_max = 0;
  mdbs::sim::Time retry_backoff = 1000;
  std::string trace_out;
  std::string metrics_out;
  bool metrics = true;
  mdbs::sim::Time metrics_window = 5000;
  bool phase_breakdown = false;
  int64_t trace_buffer = 0;
  std::string templates_file;
  bool analyze = false;
  bool auto_downgrade = false;
  bool durable = false;
  int64_t checkpoint_interval = 256;
  mdbs::sim::Time recovery_cost = 0;
  std::string wal_dir;
  bool gtm_durable = false;
  int64_t gtm_checkpoint_interval = 256;
  mdbs::sim::Time gtm_recovery_cost = 0;
  std::string gtm_wal_dir;
  bool gtm_standby = false;
  mdbs::sim::Time standby_lag = 10;
  std::string wal_fsync;
};

bool ParseProtocol(const std::string& name, ProtocolKind* out) {
  if (name == "2pl") *out = ProtocolKind::kTwoPhaseLocking;
  else if (name == "2plww") *out = ProtocolKind::kTwoPhaseLockingWoundWait;
  else if (name == "2plwd") *out = ProtocolKind::kTwoPhaseLockingWaitDie;
  else if (name == "to") *out = ProtocolKind::kTimestampOrdering;
  else if (name == "sgt") *out = ProtocolKind::kSerializationGraph;
  else if (name == "occ") *out = ProtocolKind::kOptimistic;
  else if (name == "mvto") *out = ProtocolKind::kMultiversionTO;
  else return false;
  return true;
}

bool ParseScheme(const std::string& name, SchemeKind* out) {
  if (name == "0") *out = SchemeKind::kScheme0;
  else if (name == "1") *out = SchemeKind::kScheme1;
  else if (name == "2") *out = SchemeKind::kScheme2;
  else if (name == "3") *out = SchemeKind::kScheme3;
  else if (name == "ticket") *out = SchemeKind::kTicketOptimistic;
  else if (name == "none") *out = SchemeKind::kNone;
  else return false;
  return true;
}

bool ParseOptions(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value_of = [&arg](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--sites=", 0) == 0) {
      options->sites.clear();
      std::string list = value_of("--sites=");
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string token = list.substr(
            start, comma == std::string::npos ? comma : comma - start);
        ProtocolKind kind;
        if (!ParseProtocol(token, &kind)) {
          std::fprintf(stderr, "unknown protocol '%s'\n", token.c_str());
          return false;
        }
        options->sites.push_back(kind);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg.rfind("--scheme=", 0) == 0) {
      if (!ParseScheme(value_of("--scheme="), &options->scheme)) {
        std::fprintf(stderr, "unknown scheme\n");
        return false;
      }
    } else if (arg.rfind("--global-clients=", 0) == 0) {
      options->global_clients = std::atoi(value_of("--global-clients=").c_str());
    } else if (arg.rfind("--local-clients=", 0) == 0) {
      options->local_clients = std::atoi(value_of("--local-clients=").c_str());
    } else if (arg.rfind("--commits=", 0) == 0) {
      options->commits = std::atoll(value_of("--commits=").c_str());
    } else if (arg.rfind("--items=", 0) == 0) {
      options->items = std::atoll(value_of("--items=").c_str());
    } else if (arg.rfind("--dav=", 0) == 0) {
      std::string range = value_of("--dav=");
      size_t dash = range.find('-');
      if (dash == std::string::npos) {
        options->dav_min = options->dav_max = std::atoi(range.c_str());
      } else {
        options->dav_min = std::atoi(range.substr(0, dash).c_str());
        options->dav_max = std::atoi(range.substr(dash + 1).c_str());
      }
    } else if (arg.rfind("--read-ratio=", 0) == 0) {
      options->read_ratio = std::atof(value_of("--read-ratio=").c_str());
    } else if (arg.rfind("--zipf=", 0) == 0) {
      options->zipf = std::atof(value_of("--zipf=").c_str());
    } else if (arg.rfind("--seed=", 0) == 0) {
      options->seed = std::strtoull(value_of("--seed=").c_str(), nullptr, 10);
    } else if (arg.rfind("--loss=", 0) == 0) {
      options->loss = std::atof(value_of("--loss=").c_str());
    } else if (arg.rfind("--crash-interval=", 0) == 0) {
      options->crash_interval =
          std::atoll(value_of("--crash-interval=").c_str());
    } else if (arg.rfind("--timeout=", 0) == 0) {
      options->timeout = std::atoll(value_of("--timeout=").c_str());
    } else if (arg.rfind("--dump-schedule=", 0) == 0) {
      options->dump_schedule = std::atoi(value_of("--dump-schedule=").c_str());
    } else if (arg.rfind("--threaded=", 0) == 0) {
      options->threaded = std::atoi(value_of("--threaded=").c_str()) != 0;
    } else if (arg.rfind("--fault_plan=", 0) == 0) {
      options->fault_plan = value_of("--fault_plan=");
    } else if (arg.rfind("--retry=", 0) == 0) {
      // --retry=MAX[,BASE_BACKOFF]
      std::string spec = value_of("--retry=");
      size_t comma = spec.find(',');
      options->retry_max = std::atoi(spec.substr(0, comma).c_str());
      if (comma != std::string::npos) {
        options->retry_backoff = std::atoll(spec.substr(comma + 1).c_str());
      }
      if (options->retry_max < 0 || options->retry_backoff <= 0) {
        std::fprintf(stderr, "bad --retry spec '%s'\n", spec.c_str());
        return false;
      }
    } else if (arg.rfind("--trace_out=", 0) == 0) {
      options->trace_out = value_of("--trace_out=");
    } else if (arg.rfind("--metrics_out=", 0) == 0) {
      options->metrics_out = value_of("--metrics_out=");
    } else if (arg.rfind("--metrics=", 0) == 0) {
      options->metrics = std::atoi(value_of("--metrics=").c_str()) != 0;
    } else if (arg.rfind("--metrics_window=", 0) == 0) {
      options->metrics_window =
          std::atoll(value_of("--metrics_window=").c_str());
      if (options->metrics_window <= 0) {
        std::fprintf(stderr, "--metrics_window must be positive\n");
        return false;
      }
    } else if (arg == "--phase_breakdown") {
      options->phase_breakdown = true;
    } else if (arg.rfind("--trace_buffer=", 0) == 0) {
      options->trace_buffer = std::atoll(value_of("--trace_buffer=").c_str());
      if (options->trace_buffer <= 0) {
        std::fprintf(stderr, "--trace_buffer must be positive\n");
        return false;
      }
    } else if (arg.rfind("--templates=", 0) == 0) {
      options->templates_file = value_of("--templates=");
    } else if (arg == "--analyze") {
      options->analyze = true;
    } else if (arg == "--auto_downgrade") {
      options->auto_downgrade = true;
    } else if (arg == "--durable") {
      options->durable = true;
    } else if (arg.rfind("--checkpoint_interval=", 0) == 0) {
      options->checkpoint_interval =
          std::atoll(value_of("--checkpoint_interval=").c_str());
      options->durable = true;
    } else if (arg.rfind("--recovery_cost=", 0) == 0) {
      options->recovery_cost = std::atoll(value_of("--recovery_cost=").c_str());
      options->durable = true;
    } else if (arg.rfind("--wal_dir=", 0) == 0) {
      options->wal_dir = value_of("--wal_dir=");
      options->durable = true;
    } else if (arg == "--gtm_durable") {
      options->gtm_durable = true;
    } else if (arg.rfind("--gtm_checkpoint_interval=", 0) == 0) {
      options->gtm_checkpoint_interval =
          std::atoll(value_of("--gtm_checkpoint_interval=").c_str());
      options->gtm_durable = true;
    } else if (arg.rfind("--gtm_recovery_cost=", 0) == 0) {
      options->gtm_recovery_cost =
          std::atoll(value_of("--gtm_recovery_cost=").c_str());
      options->gtm_durable = true;
    } else if (arg.rfind("--gtm_wal_dir=", 0) == 0) {
      options->gtm_wal_dir = value_of("--gtm_wal_dir=");
      options->gtm_durable = true;
    } else if (arg == "--gtm_standby") {
      options->gtm_standby = true;
      options->gtm_durable = true;
    } else if (arg.rfind("--standby_lag=", 0) == 0) {
      options->standby_lag = std::atoll(value_of("--standby_lag=").c_str());
      options->gtm_standby = true;
      options->gtm_durable = true;
      if (options->standby_lag < 0) {
        std::fprintf(stderr, "--standby_lag must be >= 0\n");
        return false;
      }
    } else if (arg.rfind("--wal_fsync=", 0) == 0) {
      options->wal_fsync = value_of("--wal_fsync=");
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void PrintUsage() {
  std::printf(
      "mdbsim — multidatabase concurrency control simulator\n"
      "  --sites=2pl,to,sgt,occ,mvto,2plww,2plwd\n"
      "                                site protocols (comma list)\n"
      "  --scheme=0|1|2|3|ticket|none  GTM2 scheme\n"
      "  --global-clients=N            closed-loop global clients\n"
      "  --local-clients=N             local clients per site\n"
      "  --commits=N                   stop after N finished global txns\n"
      "  --items=N                     items per site\n"
      "  --dav=LO-HI                   sites per global txn\n"
      "  --read-ratio=R --zipf=THETA   access mix and skew\n"
      "  --seed=S                      RNG seed (runs are deterministic)\n"
      "  --loss=P                      drop op responses with prob P\n"
      "  --crash-interval=T            inject a site crash every T ticks\n"
      "  --fault_plan=SPEC|FILE        deterministic fault plan, e.g.\n"
      "                                'sweep@2000:3000:1500;req_loss=0.02;\n"
      "                                dup=0.01;spike=0.05:200' (see\n"
      "                                src/fault/fault_plan.h)\n"
      "  --retry=MAX[,BACKOFF]         client-level resubmissions of failed\n"
      "                                retry-safe global txns\n"
      "  --timeout=T                   per-attempt timeout (ticks)\n"
      "  --dump-schedule=N             print the first N recorded ops\n"
      "  --threaded=0|1                engine: simulator (0) or real\n"
      "                                threads, ticks = microseconds (1)\n"
      "  --trace_out=PATH              write a Chrome/Perfetto trace JSON\n"
      "  --trace_buffer=N              per-thread trace buffer capacity\n"
      "                                (events beyond it are dropped and\n"
      "                                counted, never silently)\n"
      "  --metrics_out=PATH            write the structured JSON run report\n"
      "  --metrics=0|1                 always-on metrics engine (default 1;\n"
      "                                0 for overhead A/B runs, see\n"
      "                                EXPERIMENTS E14)\n"
      "  --metrics_window=T            timeline window width in ticks\n"
      "                                (default 5000)\n"
      "  --phase_breakdown             print the per-phase latency\n"
      "                                decomposition table after the run\n"
      "  --templates=FILE              drive global clients from declared\n"
      "                                transaction templates (src/analysis\n"
      "                                mix language)\n"
      "  --durable                     sites keep a per-site WAL + fuzzy\n"
      "                                checkpoints; crashes wipe volatile\n"
      "                                state and recovery replays the log\n"
      "  --checkpoint_interval=N       log records between fuzzy\n"
      "                                checkpoints (0 = never; implies\n"
      "                                --durable)\n"
      "  --recovery_cost=T             modeled replay ticks per scanned log\n"
      "                                record during recovery (implies\n"
      "                                --durable; see EXPERIMENTS E13)\n"
      "  --wal_dir=PATH                back each site's WAL with a file\n"
      "                                PATH/s<k>.wal that survives process\n"
      "                                restarts (implies --durable)\n"
      "  --gtm_durable                 the GTM write-ahead logs every state\n"
      "                                transition; gtm_crash@T:D fault-plan\n"
      "                                directives crash it at T and replay\n"
      "                                the log D ticks later (DESIGN §12)\n"
      "  --gtm_checkpoint_interval=N   GTM log records between checkpoints\n"
      "                                (0 = replay from the log head;\n"
      "                                implies --gtm_durable)\n"
      "  --gtm_recovery_cost=T         modeled replay ticks per scanned GTM\n"
      "                                log record (implies --gtm_durable;\n"
      "                                see EXPERIMENTS E15)\n"
      "  --gtm_wal_dir=PATH            back the GTM WAL with PATH/gtm.wal\n"
      "                                (implies --gtm_durable)\n"
      "  --gtm_standby                 warm-standby GTM pair: the primary\n"
      "                                ships every WAL frame to a passive\n"
      "                                twin; gtm_failover@T:D fault-plan\n"
      "                                directives crash the primary at T and\n"
      "                                promote the standby (fenced) D ticks\n"
      "                                later (implies --gtm_durable)\n"
      "  --standby_lag=T               one-way WAL-frame shipping delay to\n"
      "                                the standby (default 10; implies\n"
      "                                --gtm_standby)\n"
      "  --wal_fsync=POLICY            WAL flush/sync policy for sites and\n"
      "                                the GTM: every_commit (default),\n"
      "                                interval:N, or off; forced barriers\n"
      "                                are reported as wal.syncs\n"
      "  --analyze                     run the static conflict-robustness\n"
      "                                analyzer on the mix and print the\n"
      "                                verdict (certificate or witness)\n"
      "  --auto_downgrade              when the analyzer certifies the mix,\n"
      "                                run the GTM's certified fast path:\n"
      "                                no ser delays, no tickets (the audit\n"
      "                                oracle stays on as cross-check)\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!ParseOptions(argc, argv, &options)) {
    PrintUsage();
    return 2;
  }

  mdbs::MdbsConfig config =
      mdbs::MdbsConfig::Mixed(options.sites, options.scheme);
  config.seed = options.seed;
  config.gtm.attempt_timeout = options.timeout;
  config.response_loss_probability = options.loss;
  config.threaded = options.threaded;
  if (!options.fault_plan.empty()) {
    mdbs::StatusOr<mdbs::fault::FaultPlan> plan =
        mdbs::fault::ParseFaultPlan(options.fault_plan);
    if (!plan.ok()) {
      std::fprintf(stderr, "--fault_plan: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    config.fault_plan = *plan;
  }
  mdbs::storage::WalSyncConfig wal_sync;
  if (!options.wal_fsync.empty()) {
    mdbs::StatusOr<mdbs::storage::WalSyncConfig> parsed =
        mdbs::storage::ParseWalSyncSpec(options.wal_fsync);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--wal_fsync: %s\n",
                   parsed.status().ToString().c_str());
      return 2;
    }
    wal_sync = *parsed;
  }
  if (options.durable) {
    for (size_t i = 0; i < config.sites.size(); ++i) {
      mdbs::site::SiteConfig& site = config.sites[i];
      site.durable = true;
      site.checkpoint_interval = options.checkpoint_interval;
      site.recovery_time_per_record = options.recovery_cost;
      site.wal_sync = wal_sync;
      if (!options.wal_dir.empty()) {
        site.wal_device = std::make_shared<mdbs::storage::FileLogDevice>(
            options.wal_dir + "/s" + std::to_string(i) + ".wal");
      }
    }
  }
  if (options.gtm_durable) {
    config.gtm.durable = true;
    config.gtm.checkpoint_interval = options.gtm_checkpoint_interval;
    config.gtm.recovery_time_per_record = options.gtm_recovery_cost;
    config.gtm.wal_sync = wal_sync;
    if (!options.gtm_wal_dir.empty()) {
      config.gtm.wal_device = std::make_shared<mdbs::storage::FileLogDevice>(
          options.gtm_wal_dir + "/gtm.wal");
    }
  }
  if (options.gtm_standby) {
    config.gtm_standby = true;
    config.standby_lag = options.standby_lag;
    if (!options.gtm_wal_dir.empty() &&
        config.gtm.wal_device->Size() != 0) {
      std::fprintf(stderr,
                   "--gtm_standby: %s/gtm.wal is non-empty; warm standby "
                   "needs a fresh GTM WAL (shipped frame sequence numbers "
                   "are log positions from zero)\n",
                   options.gtm_wal_dir.c_str());
      return 2;
    }
  }
  // A gtm_crash/gtm_failover the configuration can't honor is rejected here
  // (exit 2) rather than tripping the same check fatally inside the Mdbs
  // constructor.
  mdbs::Status plan_ok = mdbs::fault::ValidatePlanForConfig(
      config.fault_plan, config.gtm.durable, config.gtm_standby);
  if (!plan_ok.ok()) {
    std::fprintf(stderr, "--fault_plan: %s\n", plan_ok.ToString().c_str());
    return 2;
  }
  bool want_trace =
      !options.trace_out.empty() || !options.metrics_out.empty();
  if (want_trace && !mdbs::obs::kTraceCompiledIn) {
    std::fprintf(stderr,
                 "warning: tracing requested but compiled out "
                 "(rebuild with -DMDBS_TRACE=ON)\n");
  }
  config.trace.enabled = want_trace;
  if (options.trace_buffer > 0) {
    config.trace.buffer_capacity = static_cast<size_t>(options.trace_buffer);
  }
  config.metrics.enabled = options.metrics;
  config.metrics.timeline_window = options.metrics_window;

  // Template mix + static robustness analysis (src/analysis). The analyzer
  // must run before the system is assembled: a certified downgrade changes
  // the GTM configuration.
  std::optional<mdbs::analysis::TemplateMix> mix;
  std::optional<mdbs::analysis::AnalysisReport> analysis;
  bool downgraded = false;
  if ((options.analyze || options.auto_downgrade) &&
      options.templates_file.empty()) {
    std::fprintf(stderr,
                 "--analyze/--auto_downgrade require --templates=FILE\n");
    return 2;
  }
  if (!options.templates_file.empty()) {
    mdbs::StatusOr<mdbs::analysis::TemplateMix> loaded =
        mdbs::analysis::LoadTemplateMixFile(options.templates_file);
    if (!loaded.ok()) {
      std::fprintf(stderr, "--templates: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    mix = std::move(loaded).value();
    // The verdict certifies the declared mix; undeclared local clients
    // would void it, so their presence is folded into the declaration.
    if (options.local_clients > 0) mix->local_txns = true;
    for (const auto& tmpl : mix->templates) {
      for (const mdbs::analysis::TemplateOp& op : tmpl.ops) {
        if (op.site.value() >= static_cast<int64_t>(options.sites.size())) {
          std::fprintf(stderr, "--templates: %s refers to undeclared site\n",
                       op.ToString().c_str());
          return 2;
        }
      }
    }
  }
  if (options.analyze || options.auto_downgrade) {
    analysis = mdbs::analysis::Analyze(
        *mix, mdbs::analysis::BuildCapabilityMatrix(config.sites));
    if (options.analyze) {
      std::printf("-- static robustness analysis --\n%s%s\n",
                  mix->ToString().c_str(),
                  analysis->ToString(*mix).c_str());
    }
    if (options.auto_downgrade && analysis->fast_path_robust) {
      downgraded = true;
      config.gtm.certified_fast_path = true;
      config.gtm.scheme_factory = [scheme = options.scheme]() {
        return mdbs::gtm::MakeRobustFastPath(scheme);
      };
      std::printf(
          "auto_downgrade: mix certified robust; running the GTM fast path "
          "(no ser delays, no tickets)\n");
    } else if (options.auto_downgrade) {
      std::printf(
          "auto_downgrade: mix NOT robust; keeping scheme %s\n",
          mdbs::gtm::SchemeKindName(options.scheme));
    }
  }

  mdbs::Mdbs system(config);

  std::printf("mdbsim: %zu sites [", options.sites.size());
  for (size_t i = 0; i < options.sites.size(); ++i) {
    std::printf("%s%s", i ? "," : "",
                mdbs::lcc::ProtocolKindName(options.sites[i]));
  }
  std::printf("], scheme %s, engine %s, seed %llu\n\n",
              mdbs::gtm::SchemeKindName(options.scheme),
              options.threaded ? "threaded" : "sim",
              static_cast<unsigned long long>(options.seed));

  mdbs::DriverConfig driver;
  driver.global_clients = options.global_clients;
  driver.local_clients_per_site = options.local_clients;
  driver.target_global_commits = options.commits;
  driver.global_workload.items_per_site = options.items;
  driver.global_workload.dav_min = options.dav_min;
  driver.global_workload.dav_max = options.dav_max;
  driver.global_workload.read_ratio = options.read_ratio;
  driver.global_workload.zipf_theta = options.zipf;
  driver.local_workload.items_per_site = options.items;
  driver.local_workload.read_ratio = options.read_ratio;
  driver.local_workload.zipf_theta = options.zipf;
  driver.crash_interval = options.crash_interval;
  driver.retry.max_resubmissions = options.retry_max;
  driver.retry.backoff = options.retry_backoff;
  driver.templates = mix;

  mdbs::DriverReport report =
      options.threaded ? RunThreadedDriver(&system, driver, options.seed)
                       : RunDriver(&system, driver, options.seed);
  std::printf("%s", report.ToString().c_str());

  std::vector<mdbs::obs::TraceEvent> events;
  if (system.trace_sink() != nullptr) {
    events = system.trace_sink()->Drain();
    if (system.trace_sink()->dropped() > 0) {
      std::fprintf(
          stderr,
          "WARNING: trace buffer overflow — %lld events DROPPED "
          "(%lld recorded); trace-derived series are incomplete, raise "
          "--trace_buffer\n",
          static_cast<long long>(system.trace_sink()->dropped()),
          static_cast<long long>(system.trace_sink()->recorded()));
    }
    if (!options.trace_out.empty()) {
      mdbs::obs::ChromeTraceOptions trace_options;
      for (size_t i = 0; i < options.sites.size(); ++i) {
        trace_options.site_names.emplace_back(
            static_cast<int64_t>(i),
            "s" + std::to_string(i) + " (" +
                mdbs::lcc::ProtocolKindName(options.sites[i]) + ")");
      }
      mdbs::Status written = mdbs::obs::WriteChromeTraceFile(
          options.trace_out, events, trace_options);
      std::printf("trace: %zu events -> %s (%s)\n", events.size(),
                  options.trace_out.c_str(), written.ToString().c_str());
    }
  }

  // The metrics engine is independent of the trace sink: the snapshot,
  // breakdown table and JSON "metrics" section exist even when tracing is
  // compiled out or disabled.
  std::optional<mdbs::obs::MetricsSnapshot> snapshot;
  if (system.metrics() != nullptr) snapshot = system.metrics()->Snapshot();
  if (options.phase_breakdown) {
    if (snapshot.has_value()) {
      std::printf("\n-- phase breakdown --\n%s",
                  snapshot->BreakdownTable().c_str());
    } else {
      std::printf("\n--phase_breakdown requested but metrics are disabled "
                  "(--metrics=0)\n");
    }
  }
  if (!options.metrics_out.empty()) {
    mdbs::sim::MetricsRegistry registry;
    report.AddToRegistry(&registry);
    if (!events.empty()) mdbs::obs::AggregateTrace(events, &registry);
    if (snapshot.has_value()) {
      mdbs::obs::AddSnapshotToRegistry(*snapshot, &registry);
    }
    mdbs::obs::ReportInfo info;
    info.emplace_back("tool", "mdbsim");
    info.emplace_back("scheme",
                      mdbs::gtm::SchemeKindName(options.scheme));
    info.emplace_back("engine", options.threaded ? "threaded" : "sim");
    info.emplace_back("seed", std::to_string(options.seed));
    info.emplace_back("sites", std::to_string(options.sites.size()));
    info.emplace_back("commits", std::to_string(options.commits));
    info.emplace_back("metrics_window",
                      std::to_string(options.metrics_window));
    if (options.durable) info.emplace_back("durable", "1");
    if (options.gtm_durable) info.emplace_back("gtm_durable", "1");
    if (options.gtm_standby) {
      info.emplace_back("gtm_standby", "1");
      info.emplace_back("standby_lag", std::to_string(options.standby_lag));
    }
    if (!options.wal_fsync.empty()) {
      info.emplace_back("wal_fsync", options.wal_fsync);
    }
    if (!system.resolved_fault_plan().Empty()) {
      info.emplace_back("fault_plan", system.resolved_fault_plan().ToSpec());
    }
    if (analysis.has_value()) {
      info.emplace_back("analysis.verdict", analysis->fast_path_robust
                                                ? "robust"
                                                : "not_robust");
      if (analysis->fast_path_robust) {
        info.emplace_back("analysis.certificate", analysis->certificate);
      } else if (analysis->witness.has_value()) {
        info.emplace_back("analysis.witness",
                          analysis->witness->ToString(*mix));
      }
      info.emplace_back("analysis.downgraded", downgraded ? "1" : "0");
    }
    mdbs::obs::ReportExtras extras;
    if (snapshot.has_value()) extras.metrics = &*snapshot;
    if (system.trace_sink() != nullptr) {
      extras.trace_recorded = system.trace_sink()->recorded();
      extras.trace_dropped = system.trace_sink()->dropped();
    }
    mdbs::Status written = mdbs::obs::WriteJsonReportFile(
        options.metrics_out, info, registry, extras);
    std::printf("metrics: -> %s (%s)\n", options.metrics_out.c_str(),
                written.ToString().c_str());
  }
  if (report.crashes > 0) {
    std::printf("crashes injected: %lld\n",
                static_cast<long long>(report.crashes));
  }

  std::printf("\n%s",
              mdbs::sched::ComputeScheduleStats(system.recorder())
                  .ToString()
                  .c_str());

  if (options.dump_schedule > 0) {
    std::printf("\n-- schedule (first %d ops) --\n%s", options.dump_schedule,
                system.recorder()
                    .Dump(static_cast<size_t>(options.dump_schedule))
                    .c_str());
  }

  std::printf("\nverification:\n");
  std::printf("  local serializability:  %s\n",
              system.CheckLocallySerializable().ToString().c_str());
  std::printf("  ser-key property:       %s\n",
              system.CheckSerializationKeyProperty().ToString().c_str());
  mdbs::Status global = system.CheckGloballySerializable();
  std::printf("  global serializability: %s\n", global.ToString().c_str());
  return global.ok() ? 0 : 1;
}
