// Side-by-side comparison of the paper's four conservative schemes (plus
// the optimistic ticket baseline) on one identical mixed workload: the
// quickest way to see the complexity / concurrency trade-off of §4-§7 in
// action.
//
//   ./build/examples/scheme_comparison

#include <cstdio>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

}  // namespace

int main() {
  std::printf("One workload, five GTM schemes\n");
  std::printf("4 sites (2PL, TO, SGT, OCC) | 8 global clients | 1 local "
              "client per site | 200 global commits\n\n");
  std::printf("%-18s %9s %9s %9s %10s %9s %8s %9s\n", "scheme", "thruput",
              "p50", "p95", "ser_waits", "aborts", "retries", "glob-CSR");

  for (SchemeKind scheme :
       {SchemeKind::kScheme0, SchemeKind::kScheme1, SchemeKind::kScheme2,
        SchemeKind::kScheme3, SchemeKind::kTicketOptimistic}) {
    mdbs::MdbsConfig config = mdbs::MdbsConfig::Mixed(
        {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
         ProtocolKind::kSerializationGraph, ProtocolKind::kOptimistic},
        scheme);
    config.seed = 31;
    config.gtm.attempt_timeout = 30'000;
    mdbs::Mdbs system(config);

    mdbs::DriverConfig driver;
    driver.global_clients = 8;
    driver.local_clients_per_site = 1;
    driver.target_global_commits = 200;
    driver.global_workload.items_per_site = 100;
    driver.global_workload.dav_min = 2;
    driver.global_workload.dav_max = 3;
    driver.local_workload.items_per_site = 100;
    mdbs::DriverReport report = RunDriver(&system, driver, 31);

    std::printf("%-18s %9.1f %9.0f %9.0f %10lld %9lld %8lld %9s\n",
                mdbs::gtm::SchemeKindName(scheme), report.global_throughput,
                report.global_response.Median(), report.global_response.P95(),
                static_cast<long long>(report.gtm2.ser_wait_additions),
                static_cast<long long>(report.gtm1.scheme_aborts),
                static_cast<long long>(report.gtm1.aborted_attempts),
                system.CheckGloballySerializable().ok() ? "ok" : "VIOLATED");
  }
  std::printf("\nthruput = committed global txns per Mtick; aborts = GTM "
              "scheme-demanded aborts; retries = all aborted attempts\n");
  return 0;
}
