// Travel booking across autonomous reservation systems — the second classic
// MDBS workload. An airline (2PL), a hotel chain (OCC) and a car-rental
// agency (SGT) each run their own pre-existing DBMS. A trip books one seat,
// one room and one car atomically-in-effect through the GTM: every booking
// is a read-modify-write on an inventory counter, so any lost update would
// oversell.
//
// Because inventory cannot go negative, each booking transaction reads the
// counter and writes counter-1; the example finally audits that
//   initial_inventory - bookings == remaining
// at every resource, which only holds under global serializability.
//
//   ./build/examples/travel_booking

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::DataItemId;
using mdbs::SiteId;
using mdbs::gtm::GlobalOp;
using mdbs::gtm::GlobalTxnSpec;
using mdbs::gtm::ReadContext;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

const SiteId kAirline{0};
const SiteId kHotel{1};
const SiteId kCars{2};

constexpr int kFlights = 6;   // Items 0..5 at the airline: seat counters.
constexpr int kHotels = 6;    // Items 0..5 at the hotel: room counters.
constexpr int kStations = 6;  // Items 0..5 at the rental: car counters.
constexpr int64_t kSeats = 200;
constexpr int64_t kRooms = 150;
constexpr int64_t kCarsAvail = 100;

GlobalOp DecrementCounter(SiteId site, DataItemId item) {
  return GlobalOp::WriteFn(site, item, [site, item](const ReadContext& reads) {
    return reads.at({site, item}) - 1;
  });
}

GlobalTxnSpec MakeTrip(int flight, int hotel, int station) {
  // Read all three counters first (the agent shows availability), then
  // decrement each — a realistic multi-site read-then-write pattern.
  //
  // The hotel runs OCC, the only protocol here that can refuse a commit
  // (validation). GTM1 commits subtransactions in first-touch order, so
  // the trip touches the hotel FIRST: if hotel validation fails, nothing
  // has committed anywhere and the whole trip retries cleanly instead of
  // partially committing (atomic commitment is outside the paper's scope;
  // see DESIGN.md).
  GlobalTxnSpec spec;
  DataItemId f{flight}, h{hotel}, s{station};
  spec.ops.push_back(GlobalOp::Read(kHotel, h));
  spec.ops.push_back(GlobalOp::Read(kAirline, f));
  spec.ops.push_back(GlobalOp::Read(kCars, s));
  spec.ops.push_back(DecrementCounter(kHotel, h));
  spec.ops.push_back(DecrementCounter(kAirline, f));
  spec.ops.push_back(DecrementCounter(kCars, s));
  return spec;
}

}  // namespace

int main() {
  mdbs::MdbsConfig config = mdbs::MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kOptimistic,
       ProtocolKind::kSerializationGraph},
      SchemeKind::kScheme3);
  config.seed = 99;
  mdbs::Mdbs system(config);

  for (int i = 0; i < kFlights; ++i) {
    system.site(kAirline).UnsafePoke(DataItemId(i), kSeats);
  }
  for (int i = 0; i < kHotels; ++i) {
    system.site(kHotel).UnsafePoke(DataItemId(i), kRooms);
  }
  for (int i = 0; i < kStations; ++i) {
    system.site(kCars).UnsafePoke(DataItemId(i), kCarsAvail);
  }

  // 300 trip bookings dispatched through a small worker pool (a booking
  // frontend would throttle the same way: hundreds of *simultaneous*
  // all-conflicting bookings would just thrash the OCC hotel with
  // validation failures).
  mdbs::Rng rng(12345);
  int booked = 0, refused = 0;
  std::vector<int> flight_bookings(kFlights, 0);
  std::vector<int> hotel_bookings(kHotels, 0);
  std::vector<int> car_bookings(kStations, 0);
  int issued = 0;
  const int kTrips = 300;
  const int kWorkers = 6;
  std::function<void()> issue_next = [&]() {
    if (issued++ >= kTrips) return;
    int flight = static_cast<int>(rng.NextBelow(kFlights));
    int hotel = static_cast<int>(rng.NextBelow(kHotels));
    int station = static_cast<int>(rng.NextBelow(kStations));
    system.gtm().Submit(
        MakeTrip(flight, hotel, station),
        [&, flight, hotel, station](const mdbs::gtm::GlobalTxnResult& r) {
          if (r.status.ok()) {
            ++booked;
            ++flight_bookings[flight];
            ++hotel_bookings[hotel];
            ++car_bookings[station];
          } else {
            ++refused;
          }
          issue_next();
        });
  };
  for (int w = 0; w < kWorkers; ++w) issue_next();
  system.RunUntilIdle();

  std::printf("trips booked: %d, refused: %d\n", booked, refused);

  bool consistent = true;
  auto audit = [&](const char* what, SiteId site, int count, int64_t initial,
                   const std::vector<int>& bookings) {
    for (int i = 0; i < count; ++i) {
      int64_t remaining = system.site(site).UnsafePeek(DataItemId(i));
      int64_t expected = initial - bookings[i];
      if (remaining != expected) {
        std::printf("OVERSOLD %s %d: remaining %lld, expected %lld\n", what,
                    i, static_cast<long long>(remaining),
                    static_cast<long long>(expected));
        consistent = false;
      }
    }
  };
  audit("flight", kAirline, kFlights, kSeats, flight_bookings);
  audit("hotel", kHotel, kHotels, kRooms, hotel_bookings);
  audit("station", kCars, kStations, kCarsAvail, car_bookings);

  std::printf("inventory audit: %s\n", consistent ? "CONSISTENT" : "BROKEN");
  std::printf("global serializability: %s\n",
              system.CheckGloballySerializable().ToString().c_str());
  std::printf("gtm: %lld attempts for %lld commits, %lld partial\n",
              static_cast<long long>(system.gtm().stats().attempts),
              static_cast<long long>(system.gtm().stats().committed),
              static_cast<long long>(system.gtm().stats().partial_commits));
  return consistent && system.CheckGloballySerializable().ok() ? 0 : 1;
}
