// Quickstart: build a 3-site multidatabase with heterogeneous local
// protocols (2PL, TO, SGT), run a handful of global transactions under
// Scheme 3 alongside local transactions the GTM never sees, and verify that
// the execution is globally serializable.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

int main() {
  using mdbs::gtm::SchemeKind;
  using mdbs::lcc::ProtocolKind;

  // 1. Assemble the MDBS: three pre-existing local DBMSs, each with its own
  //    concurrency control protocol, under one GTM running Scheme 3.
  mdbs::MdbsConfig config = mdbs::MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      SchemeKind::kScheme3);
  config.seed = 7;
  mdbs::Mdbs system(config);

  // 2. Submit one hand-written global transaction: read x0 at site 0,
  //    write the value + 1 to y0 at site 1.
  mdbs::gtm::GlobalTxnSpec spec;
  const mdbs::SiteId kSite0{0};
  const mdbs::SiteId kSite1{1};
  const mdbs::DataItemId kX{0};
  const mdbs::DataItemId kY{1};
  system.site(kSite0).UnsafePoke(kX, 41);
  spec.ops.push_back(mdbs::gtm::GlobalOp::Read(kSite0, kX));
  spec.ops.push_back(mdbs::gtm::GlobalOp::WriteFn(
      kSite1, kY, [=](const mdbs::gtm::ReadContext& reads) {
        return reads.at({kSite0, kX}) + 1;
      }));

  bool done = false;
  system.gtm().Submit(std::move(spec),
                      [&](const mdbs::gtm::GlobalTxnResult& result) {
                        std::printf("hand-written txn: %s (attempts=%d)\n",
                                    result.status.ToString().c_str(),
                                    result.attempts);
                        done = true;
                      });
  system.RunUntilIdle();
  std::printf("y at site 1 = %ld (expected 42), done=%d\n",
              static_cast<long>(system.site(kSite1).UnsafePeek(kY)), done);

  // 3. Run a mixed random workload: 6 concurrent global clients plus 2
  //    local clients per site.
  mdbs::DriverConfig driver;
  driver.global_clients = 6;
  driver.target_global_commits = 100;
  driver.global_workload.items_per_site = 50;  // Plenty of conflicts.
  driver.local_workload.items_per_site = 50;
  mdbs::DriverReport report = RunDriver(&system, driver, /*seed=*/123);
  std::printf("%s", report.ToString().c_str());

  // 4. Verify serializability — local, global, and the serialization-key
  //    property the GTM's correctness rests on.
  std::printf("local CSR:  %s\n",
              system.CheckLocallySerializable().ToString().c_str());
  std::printf("ser-key:    %s\n",
              system.CheckSerializationKeyProperty().ToString().c_str());
  std::printf("global CSR: %s\n",
              system.CheckGloballySerializable().ToString().c_str());
  return system.CheckGloballySerializable().ok() ? 0 : 1;
}
