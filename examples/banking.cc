// Banking across autonomous banks — the classic MDBS motivation. Three
// pre-existing banks run different DBMSs (strict 2PL, strict TO, SGT); a
// global funds-transfer service moves money between accounts at different
// banks through the GTM while each bank's own tellers (local transactions)
// keep working directly against their DBMS, invisible to the GTM.
//
// The audit at the end exercises exactly what global serializability buys:
// every transfer is read-modify-write, so a lost update anywhere would
// break conservation of the total balance.
//
//   ./build/examples/banking [scheme:0|1|2|3]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "mdbs/mdbs.h"

namespace {

using mdbs::DataItemId;
using mdbs::SiteId;
using mdbs::gtm::GlobalOp;
using mdbs::gtm::GlobalTxnSpec;
using mdbs::gtm::ReadContext;
using mdbs::gtm::SchemeKind;
using mdbs::lcc::ProtocolKind;

constexpr int kAccountsPerBank = 16;
constexpr int64_t kInitialBalance = 10'000;

GlobalTxnSpec MakeTransfer(SiteId from_bank, DataItemId from_acct,
                           SiteId to_bank, DataItemId to_acct,
                           int64_t amount) {
  GlobalTxnSpec spec;
  spec.ops.push_back(GlobalOp::Read(from_bank, from_acct));
  spec.ops.push_back(GlobalOp::WriteFn(
      from_bank, from_acct,
      [from_bank, from_acct, amount](const ReadContext& reads) {
        return reads.at({from_bank, from_acct}) - amount;
      }));
  spec.ops.push_back(GlobalOp::Read(to_bank, to_acct));
  spec.ops.push_back(GlobalOp::WriteFn(
      to_bank, to_acct, [to_bank, to_acct, amount](const ReadContext& reads) {
        return reads.at({to_bank, to_acct}) + amount;
      }));
  return spec;
}

// A bank teller moving money between two accounts of the *same* bank,
// talking to the local DBMS directly (the GTM never sees it). Runs a
// read(a), write(a - x), read(b), write(b + x), commit state machine.
struct Teller {
  Teller(mdbs::Mdbs* system_in, SiteId bank_in, uint64_t seed,
         int transfers)
      : system(system_in), bank(bank_in), rng(seed), remaining(transfers) {}

  mdbs::Mdbs* system;
  SiteId bank;
  mdbs::Rng rng;
  int remaining;
  int64_t moved = 0;

  mdbs::TxnId txn;
  DataItemId a, b;
  int64_t amount = 0;
  int64_t balance_a = 0, balance_b = 0;
  int stage = 0;

  void Go() {
    if (remaining-- <= 0) return;
    a = DataItemId(static_cast<int64_t>(rng.NextBelow(kAccountsPerBank)));
    b = DataItemId(static_cast<int64_t>(rng.NextBelow(kAccountsPerBank)));
    if (a == b) b = DataItemId((a.value() + 1) % kAccountsPerBank);
    amount = static_cast<int64_t>(1 + rng.NextBelow(100));
    mdbs::StatusOr<mdbs::TxnId> begun = system->BeginLocal(bank);
    if (!begun.ok()) return Retry();
    txn = *begun;
    stage = 0;
    Step();
  }

  void Step() {
    auto& dbms = system->site(bank);
    auto next = [this](const mdbs::Status& status, int64_t value) {
      if (!status.ok()) return Retry();
      if (stage == 0) balance_a = value;
      if (stage == 2) balance_b = value;
      ++stage;
      Step();
    };
    switch (stage) {
      case 0: dbms.Submit(txn, mdbs::DataOp::Read(a), next); return;
      case 1:
        dbms.Submit(txn, mdbs::DataOp::Write(a, balance_a - amount), next);
        return;
      case 2: dbms.Submit(txn, mdbs::DataOp::Read(b), next); return;
      case 3:
        dbms.Submit(txn, mdbs::DataOp::Write(b, balance_b + amount), next);
        return;
      default:
        dbms.Commit(txn, [this](const mdbs::Status& status) {
          if (!status.ok()) return Retry();
          moved += amount;
          Go();
        });
    }
  }

  void Retry() {
    ++remaining;  // The aborted teller just tries again.
    system->loop().Schedule(100, [this] { Go(); });
  }
};

}  // namespace

int main(int argc, char** argv) {
  SchemeKind scheme = SchemeKind::kScheme3;
  if (argc > 1) {
    switch (std::atoi(argv[1])) {
      case 0: scheme = SchemeKind::kScheme0; break;
      case 1: scheme = SchemeKind::kScheme1; break;
      case 2: scheme = SchemeKind::kScheme2; break;
      default: scheme = SchemeKind::kScheme3; break;
    }
  }
  std::printf("Banking MDBS under %s\n", mdbs::gtm::SchemeKindName(scheme));

  mdbs::MdbsConfig config = mdbs::MdbsConfig::Mixed(
      {ProtocolKind::kTwoPhaseLocking, ProtocolKind::kTimestampOrdering,
       ProtocolKind::kSerializationGraph},
      scheme);
  config.seed = 2026;
  mdbs::Mdbs system(config);

  // Fund every account.
  for (SiteId bank : system.site_ids()) {
    for (int acct = 0; acct < kAccountsPerBank; ++acct) {
      system.site(bank).UnsafePoke(DataItemId(acct), kInitialBalance);
    }
  }
  const int64_t kExpectedTotal =
      static_cast<int64_t>(system.site_ids().size()) * kAccountsPerBank *
      kInitialBalance;

  // Local tellers at each bank.
  std::vector<Teller> tellers;
  tellers.reserve(system.site_ids().size());
  uint64_t teller_seed = 1;
  for (SiteId bank : system.site_ids()) {
    tellers.emplace_back(&system, bank, teller_seed++, 60);
  }
  for (Teller& teller : tellers) teller.Go();

  // Cross-bank wire transfers through the GTM.
  mdbs::Rng rng(7);
  int committed = 0, failed = 0;
  for (int i = 0; i < 120; ++i) {
    SiteId from = system.site_ids()[rng.NextBelow(3)];
    SiteId to = system.site_ids()[rng.NextBelow(3)];
    if (from == to) to = system.site_ids()[(from.value() + 1) % 3];
    DataItemId src{static_cast<int64_t>(rng.NextBelow(kAccountsPerBank))};
    DataItemId dst{static_cast<int64_t>(rng.NextBelow(kAccountsPerBank))};
    int64_t amount = static_cast<int64_t>(1 + rng.NextBelow(500));
    system.gtm().Submit(
        MakeTransfer(from, src, to, dst, amount),
        [&](const mdbs::gtm::GlobalTxnResult& result) {
          result.status.ok() ? ++committed : ++failed;
        });
  }
  system.RunUntilIdle();

  // Audit.
  int64_t total = 0;
  for (SiteId bank : system.site_ids()) {
    for (int acct = 0; acct < kAccountsPerBank; ++acct) {
      total += system.site(bank).UnsafePeek(DataItemId(acct));
    }
  }
  int64_t teller_moved = 0;
  for (const Teller& teller : tellers) teller_moved += teller.moved;

  std::printf("wire transfers: %d committed, %d failed\n", committed, failed);
  std::printf("teller volume:  %lld moved locally\n",
              static_cast<long long>(teller_moved));
  std::printf("audit: total balance %lld (expected %lld) -> %s\n",
              static_cast<long long>(total),
              static_cast<long long>(kExpectedTotal),
              total == kExpectedTotal ? "CONSERVED" : "BROKEN");
  std::printf("global serializability: %s\n",
              system.CheckGloballySerializable().ToString().c_str());
  return (total == kExpectedTotal &&
          system.CheckGloballySerializable().ok())
             ? 0
             : 1;
}
