#include "mdbs/health.h"

#include <utility>

namespace mdbs {

HealthMonitor::HealthMonitor(const HealthConfig& config,
                             sim::TaskRunner* runner, std::vector<SiteId> sites,
                             Callbacks callbacks)
    : config_(config),
      runner_(runner),
      callbacks_(std::move(callbacks)),
      sites_(std::move(sites)) {
  for (SiteId site : sites_) entries_[site] = Entry{};
}

void HealthMonitor::Activity() {
  if (!config_.enabled || running_) return;
  running_ = true;
  // Restart the grace period: the monitor may have been stopped for a long
  // idle stretch, and silence while nobody probed proves nothing.
  for (SiteId site : sites_) entries_[site].last_ack = runner_->now();
  runner_->Schedule(0, [this]() { Tick(); });
}

void HealthMonitor::Tick() {
  if (!callbacks_.keep_probing()) {
    // Nothing in flight: stop so the run can quiesce. The next Submit's
    // Activity() restarts probing.
    running_ = false;
    return;
  }
  sim::Time now = runner_->now();
  for (SiteId site : sites_) {
    callbacks_.probe(site, [this, site]() { OnAck(site); });
    Entry& entry = entries_[site];
    sim::Time silent = now - entry.last_ack;
    if (entry.state == SiteState::kUp && silent >= config_.suspect_after) {
      entry.state = SiteState::kSuspect;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kSiteSuspect, -1, site.value(),
                       silent);
      }
    }
    if (entry.state != SiteState::kDown && silent >= config_.down_after) {
      entry.state = SiteState::kDown;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kSiteDown, -1, site.value(),
                       silent);
      }
      callbacks_.site_down(site);
    }
  }
  runner_->Schedule(config_.probe_interval, [this]() { Tick(); });
}

void HealthMonitor::OnAck(SiteId site) {
  Entry& entry = entries_[site];
  entry.last_ack = runner_->now();
  SiteState previous = entry.state;
  entry.state = SiteState::kUp;
  if (previous == SiteState::kDown) {
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kSiteUp, -1, site.value());
    }
    callbacks_.site_up(site);
  }
}

}  // namespace mdbs
