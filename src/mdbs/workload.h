#ifndef MDBS_MDBS_WORKLOAD_H_
#define MDBS_MDBS_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "gtm/global_txn.h"

namespace mdbs {

/// Shape of randomly generated global transactions.
struct GlobalWorkloadConfig {
  /// Number of sites a transaction touches: uniform in [dav_min, dav_max]
  /// (the paper's dav is the mean).
  int dav_min = 2;
  int dav_max = 3;
  /// Data operations per touched site: uniform in [min, max].
  int ops_per_site_min = 2;
  int ops_per_site_max = 4;
  /// Items addressable at each site (ticket item excluded automatically).
  int64_t items_per_site = 1000;
  /// Zipf skew over items; 0 = uniform.
  double zipf_theta = 0.0;
  /// Fraction of operations that are reads.
  double read_ratio = 0.5;
  /// When true, a transaction's operations interleave across its sites
  /// randomly; when false they are grouped site by site.
  bool interleave_sites = true;
};

/// Shape of randomly generated local transactions.
struct LocalWorkloadConfig {
  int ops_min = 2;
  int ops_max = 5;
  int64_t items_per_site = 1000;
  double zipf_theta = 0.0;
  double read_ratio = 0.5;
};

/// Generates one random global transaction over `sites`.
gtm::GlobalTxnSpec MakeGlobalTxn(const GlobalWorkloadConfig& config,
                                 const std::vector<SiteId>& sites, Rng* rng);

/// Generates one random local transaction's operations.
std::vector<DataOp> MakeLocalTxn(const LocalWorkloadConfig& config, Rng* rng);

}  // namespace mdbs

#endif  // MDBS_MDBS_WORKLOAD_H_
