#include "mdbs/driver.h"

#include <memory>
#include <sstream>

#include "common/logging.h"

namespace mdbs {

namespace {

struct RunState {
  Mdbs* mdbs = nullptr;
  DriverConfig config;
  int64_t global_committed = 0;
  int64_t global_failed = 0;
  int64_t local_committed = 0;
  int64_t local_failed = 0;
  int64_t local_retries = 0;
  int64_t global_resubmissions = 0;
  int64_t global_retry_unsafe = 0;
  int64_t txns_failed_permanently = 0;
  sim::Summary response;
  sim::Summary attempts;
  bool stop_issuing = false;

  bool TargetReached() const {
    return global_committed + global_failed >=
           config.target_global_commits;
  }
};

void GlobalClientIssue(const std::shared_ptr<RunState>& state,
                       const std::shared_ptr<Rng>& rng);

/// One logical global transaction across client-level resubmissions. The
/// spec is kept so a failed-but-retry-safe outcome can be resubmitted as a
/// fresh GTM job; attempts aggregate across resubmissions.
struct GlobalTxnTry {
  std::shared_ptr<RunState> state;
  std::shared_ptr<Rng> rng;
  gtm::GlobalTxnSpec spec;
  sim::Time start = 0;
  int resubmissions = 0;
  int attempts_total = 0;
};

void SubmitGlobalTry(const std::shared_ptr<GlobalTxnTry>& txn) {
  gtm::GlobalTxnSpec spec = txn->spec;
  txn->state->mdbs->gtm().Submit(
      std::move(spec), [txn](const gtm::GlobalTxnResult& result) {
        RunState& state = *txn->state;
        txn->attempts_total += result.attempts;
        if (result.status.ok()) {
          ++state.global_committed;
          state.response.Add(
              static_cast<double>(result.finish_time - txn->start));
          state.attempts.Add(txn->attempts_total);
        } else if (result.retry_safe && !state.stop_issuing &&
                   txn->resubmissions <
                       state.config.retry.max_resubmissions) {
          ++txn->resubmissions;
          ++state.global_resubmissions;
          if (obs::TraceSink* sink = state.mdbs->trace_sink()) {
            sink->Record(obs::TraceEventKind::kTxnResubmit, -1, -1,
                         txn->resubmissions, txn->attempts_total);
          }
          // Doubling backoff (capped at 8x) with jitter before the fresh
          // submission.
          sim::Time base = state.config.retry.backoff;
          for (int i = 1; i < txn->resubmissions && i < 4; ++i) base *= 2;
          state.mdbs->loop().Schedule(
              base + static_cast<sim::Time>(txn->rng->NextBelow(
                         static_cast<uint64_t>(base) + 1)),
              [txn]() { SubmitGlobalTry(txn); });
          return;
        } else {
          if (!result.retry_safe) {
            ++state.global_retry_unsafe;
          } else if (!state.stop_issuing) {
            // A retry-safe failure with the resubmission budget spent: the
            // client gives up permanently.
            ++state.txns_failed_permanently;
          }
          ++state.global_failed;
        }
        if (state.TargetReached()) {
          state.stop_issuing = true;
          return;
        }
        state.mdbs->loop().Schedule(
            state.config.global_think,
            [state_ptr = txn->state, rng = txn->rng]() {
              GlobalClientIssue(state_ptr, rng);
            });
      });
}

/// One closed-loop global client.
void GlobalClientIssue(const std::shared_ptr<RunState>& state,
                       const std::shared_ptr<Rng>& rng) {
  if (state->stop_issuing) return;
  auto txn = std::make_shared<GlobalTxnTry>();
  txn->state = state;
  txn->rng = rng;
  if (state->config.templates.has_value()) {
    const analysis::TemplateMix& mix = *state->config.templates;
    txn->spec = analysis::Instantiate(
        mix.templates[analysis::SampleTemplate(mix, rng.get())], mix,
        rng.get());
  } else {
    txn->spec = MakeGlobalTxn(state->config.global_workload,
                              state->mdbs->site_ids(), rng.get());
  }
  txn->start = state->mdbs->loop().now();
  SubmitGlobalTry(txn);
}

/// One closed-loop local client at `site`. Submits operations one at a
/// time; retries the whole transaction on a local abort.
struct LocalTxnRun {
  std::shared_ptr<RunState> state;
  std::shared_ptr<Rng> rng;
  SiteId site;
  std::vector<DataOp> ops;
  size_t next_op = 0;
  TxnId txn;
  int attempt = 0;
};

void LocalClientIssue(const std::shared_ptr<RunState>& state,
                      const std::shared_ptr<Rng>& rng, SiteId site);

void LocalTxnStep(const std::shared_ptr<LocalTxnRun>& run);

void LocalTxnRetryOrFinish(const std::shared_ptr<LocalTxnRun>& run,
                           bool committed) {
  auto& state = *run->state;
  if (committed) {
    ++state.local_committed;
  } else if (run->attempt >= state.config.local_max_attempts) {
    ++state.local_failed;
  } else {
    // Retry the same operations after a randomized backoff.
    ++state.local_retries;
    run->next_op = 0;
    state.mdbs->loop().Schedule(
        static_cast<sim::Time>(50 + run->rng->NextBelow(100)),
        [run]() {
          StatusOr<TxnId> txn = run->state->mdbs->BeginLocal(run->site);
          if (!txn.ok()) {
            // Site down: count the attempt and keep retrying.
            ++run->attempt;
            LocalTxnRetryOrFinish(run, /*committed=*/false);
            return;
          }
          run->txn = *txn;
          ++run->attempt;
          LocalTxnStep(run);
        });
    return;
  }
  if (state.stop_issuing) return;
  state.mdbs->loop().Schedule(state.config.local_think,
                              [state_ptr = run->state, rng = run->rng,
                               site = run->site]() {
                                LocalClientIssue(state_ptr, rng, site);
                              });
}

void LocalTxnStep(const std::shared_ptr<LocalTxnRun>& run) {
  Mdbs* mdbs = run->state->mdbs;
  if (run->next_op == run->ops.size()) {
    mdbs->site(run->site).Commit(run->txn, [run](const Status& status) {
      LocalTxnRetryOrFinish(run, status.ok());
    });
    return;
  }
  const DataOp& op = run->ops[run->next_op];
  mdbs->site(run->site).Submit(
      run->txn, op, [run](const Status& status, int64_t) {
        if (!status.ok()) {
          LocalTxnRetryOrFinish(run, /*committed=*/false);
          return;
        }
        ++run->next_op;
        LocalTxnStep(run);
      });
}

void LocalClientIssue(const std::shared_ptr<RunState>& state,
                      const std::shared_ptr<Rng>& rng, SiteId site) {
  if (state->stop_issuing) return;
  auto run = std::make_shared<LocalTxnRun>();
  run->state = state;
  run->rng = rng;
  run->site = site;
  run->ops = MakeLocalTxn(state->config.local_workload, rng.get());
  if (run->ops.empty()) run->ops.push_back(DataOp::Read(DataItemId(0)));
  StatusOr<TxnId> txn = state->mdbs->BeginLocal(site);
  if (!txn.ok()) {
    // Site down right now; try again shortly.
    state->mdbs->loop().Schedule(
        static_cast<sim::Time>(200 + rng->NextBelow(200)),
        [state, rng, site]() { LocalClientIssue(state, rng, site); });
    return;
  }
  run->txn = *txn;
  run->attempt = 1;
  LocalTxnStep(run);
}

/// Failure injection: every crash_interval ticks, crash a random up-site
/// and recover it crash_duration later, until the run stops issuing work.
void ArmCrashInjection(const std::shared_ptr<RunState>& state,
                       const std::shared_ptr<Rng>& rng) {
  if (state->stop_issuing) return;
  Mdbs* mdbs = state->mdbs;
  mdbs->loop().Schedule(state->config.crash_interval, [state, rng]() {
    if (state->stop_issuing) return;
    Mdbs* inner = state->mdbs;
    SiteId victim =
        inner->site_ids()[rng->NextBelow(inner->site_ids().size())];
    if (!inner->site(victim).IsDown()) {
      inner->site(victim).Crash();
      inner->loop().Schedule(
          state->config.crash_duration,
          [state, victim]() { state->mdbs->site(victim).Recover(); });
    }
    ArmCrashInjection(state, rng);
  });
}

}  // namespace

std::string DriverReport::ToString() const {
  std::ostringstream os;
  os << "global: committed=" << global_committed << " failed=" << global_failed
     << " throughput=" << global_throughput << "/Mtick\n"
     << "  response: " << global_response.ToString() << "\n"
     << "  attempts: " << global_attempts.ToString() << "\n"
     << "  resubmissions=" << global_resubmissions
     << " retry_unsafe=" << global_retry_unsafe
     << " failed_permanently=" << txns_failed_permanently << "\n"
     << "local: committed=" << local_committed << " failed=" << local_failed
     << " retries=" << local_abort_retries << "\n"
     << "gtm1: attempts=" << gtm1.attempts
     << " aborted=" << gtm1.aborted_attempts
     << " scheme_aborts=" << gtm1.scheme_aborts
     << " timeouts=" << gtm1.timeouts
     << " partial_commits=" << gtm1.partial_commits
     << " site_down_aborts=" << gtm1.site_down_aborts
     << " parked=" << gtm1.parked << "\n"
     << "gtm2: processed=" << gtm2.processed_ops
     << " waits=" << gtm2.wait_additions
     << " ser_waits=" << gtm2.ser_wait_additions << "\n"
     << "sites: blocked=" << site_blocked << " local_aborts=" << site_aborts
     << " crashes=" << crashes << "\n"
     << "faults: " << faults.ToString() << "\n";
  if (durability.wal_records > 0 || durability.recoveries > 0) {
    os << "wal: records=" << durability.wal_records
       << " bytes=" << durability.wal_bytes
       << " checkpoints=" << durability.checkpoints
       << " recoveries=" << durability.recoveries
       << " replayed=" << durability.replay_records
       << " redone=" << durability.redo_writes
       << " undone=" << durability.undone_writes
       << " syncs=" << durability.wal_syncs
       << " recovery_ticks=" << durability.recovery_ticks << "\n";
  }
  if (gtm_durability.wal_records > 0 || gtm_durability.recoveries > 0) {
    os << "gtm_wal: records=" << gtm_durability.wal_records
       << " bytes=" << gtm_durability.wal_bytes
       << " checkpoints=" << gtm_durability.checkpoints
       << " crashes=" << gtm_durability.crashes
       << " recoveries=" << gtm_durability.recoveries
       << " replayed=" << gtm_durability.replayed_records
       << " replayed_enqueues=" << gtm_durability.replayed_enqueues
       << " resumed_commits=" << gtm_durability.resumed_commits
       << " recovery_aborts=" << gtm_durability.recovery_aborted_attempts
       << " buffered_submits=" << gtm_durability.buffered_submits
       << " syncs=" << gtm_durability.wal_syncs
       << " recovery_ticks=" << gtm_durability.recovery_ticks << "\n";
  }
  if (gtm_standby.shipped_records > 0 || gtm_standby.promotions > 0) {
    os << "gtm_standby: shipped=" << gtm_standby.shipped_records << "/"
       << gtm_standby.shipped_bytes << "B"
       << " applied=" << gtm_standby.applied_records << "/"
       << gtm_standby.applied_bytes << "B"
       << " lag=" << gtm_standby.lag_records << "/" << gtm_standby.lag_bytes
       << "B"
       << " promotions=" << gtm_standby.promotions
       << " epoch=" << gtm_standby.fencing_epoch
       << " stale_rejections=" << gtm_standby.stale_rejections
       << " dropped_frames=" << gtm_standby.dropped_frames << "\n";
  }
  os << "duration=" << duration << " ticks\n";
  return os.str();
}

void DriverReport::AddToRegistry(sim::MetricsRegistry* registry) const {
  registry->Increment("driver.global_committed", global_committed);
  registry->Increment("driver.global_failed", global_failed);
  registry->Increment("driver.local_committed", local_committed);
  registry->Increment("driver.local_failed", local_failed);
  registry->Increment("driver.local_abort_retries", local_abort_retries);
  registry->Increment("driver.duration_ticks", duration);
  registry->Increment("driver.site_blocked", site_blocked);
  registry->Increment("driver.site_aborts", site_aborts);
  registry->Increment("driver.crashes", crashes);
  registry->Increment("driver.global_resubmissions", global_resubmissions);
  registry->Increment("driver.global_retry_unsafe", global_retry_unsafe);
  registry->Increment("driver.txn_failed_permanently",
                      txns_failed_permanently);
  registry->Increment("fault.requests_lost", faults.requests_lost);
  registry->Increment("fault.responses_lost", faults.responses_lost);
  registry->Increment("fault.duplicates_injected", faults.duplicates_injected);
  registry->Increment("fault.duplicates_suppressed",
                      faults.duplicates_suppressed);
  registry->Increment("fault.delay_spikes", faults.delay_spikes);
  registry->Increment("fault.plan_crashes", faults.plan_crashes);
  registry->Increment("site.wal_records", durability.wal_records);
  registry->Increment("site.wal_bytes", durability.wal_bytes);
  registry->Increment("site.wal_checkpoints", durability.checkpoints);
  registry->Increment("site.recoveries", durability.recoveries);
  registry->Increment("site.wal_replay_records", durability.replay_records);
  registry->Increment("site.wal_replay_bytes", durability.replay_bytes);
  registry->Increment("site.wal_redo_writes", durability.redo_writes);
  registry->Increment("site.wal_undone_writes", durability.undone_writes);
  registry->Increment("site.recovery_ticks", durability.recovery_ticks);
  registry->Increment("site.wal_syncs", durability.wal_syncs);
  registry->Observe("driver.global_throughput_per_mtick", global_throughput);
  registry->Put("driver.global_response", global_response);
  registry->Put("driver.global_attempts", global_attempts);
  registry->Increment("gtm1.submitted", gtm1.submitted);
  registry->Increment("gtm1.committed", gtm1.committed);
  registry->Increment("gtm1.failed", gtm1.failed);
  registry->Increment("gtm1.attempts", gtm1.attempts);
  registry->Increment("gtm1.aborted_attempts", gtm1.aborted_attempts);
  registry->Increment("gtm1.scheme_aborts", gtm1.scheme_aborts);
  registry->Increment("gtm1.timeouts", gtm1.timeouts);
  registry->Increment("gtm1.partial_commits", gtm1.partial_commits);
  registry->Increment("gtm1.site_down_aborts", gtm1.site_down_aborts);
  registry->Increment("gtm1.parked", gtm1.parked);
  registry->Increment("gtm1.unparked", gtm1.unparked);
  registry->Increment("gtm1.park_timeouts", gtm1.park_timeouts);
  registry->Increment("gtm1.fast_path_attempts", gtm1.fast_path_attempts);
  registry->Increment("gtm_wal.records", gtm_durability.wal_records);
  registry->Increment("gtm_wal.bytes", gtm_durability.wal_bytes);
  registry->Increment("gtm_wal.checkpoints", gtm_durability.checkpoints);
  registry->Increment("gtm_wal.crashes", gtm_durability.crashes);
  registry->Increment("gtm_wal.recoveries", gtm_durability.recoveries);
  registry->Increment("gtm_wal.replayed_records",
                      gtm_durability.replayed_records);
  registry->Increment("gtm_wal.replayed_bytes",
                      gtm_durability.replayed_bytes);
  registry->Increment("gtm_wal.replayed_enqueues",
                      gtm_durability.replayed_enqueues);
  registry->Increment("gtm_wal.resumed_commits",
                      gtm_durability.resumed_commits);
  registry->Increment("gtm_wal.recovery_aborted_attempts",
                      gtm_durability.recovery_aborted_attempts);
  registry->Increment("gtm_wal.buffered_submits",
                      gtm_durability.buffered_submits);
  registry->Increment("gtm_wal.recovery_ticks",
                      gtm_durability.recovery_ticks);
  registry->Increment("gtm_wal.syncs", gtm_durability.wal_syncs);
  registry->Increment("gtm_standby.shipped_records",
                      gtm_standby.shipped_records);
  registry->Increment("gtm_standby.shipped_bytes", gtm_standby.shipped_bytes);
  registry->Increment("gtm_standby.applied_records",
                      gtm_standby.applied_records);
  registry->Increment("gtm_standby.applied_bytes", gtm_standby.applied_bytes);
  registry->Increment("gtm_standby.lag_records", gtm_standby.lag_records);
  registry->Increment("gtm_standby.lag_bytes", gtm_standby.lag_bytes);
  registry->Increment("gtm_standby.promotions", gtm_standby.promotions);
  registry->Increment("gtm_standby.fencing_epoch", gtm_standby.fencing_epoch);
  registry->Increment("gtm_standby.stale_rejections",
                      gtm_standby.stale_rejections);
  registry->Increment("gtm_standby.dropped_frames",
                      gtm_standby.dropped_frames);
  registry->Increment("gtm2.processed_ops", gtm2.processed_ops);
  registry->Increment("gtm2.wait_additions", gtm2.wait_additions);
  registry->Increment("gtm2.ser_wait_additions", gtm2.ser_wait_additions);
  registry->Increment("gtm2.cond_evaluations", gtm2.cond_evaluations);
  registry->Increment("gtm2.failed_rescan_steps", gtm2.failed_rescan_steps);
}

DriverReport RunDriver(Mdbs* mdbs, const DriverConfig& config,
                       uint64_t seed) {
  auto state = std::make_shared<RunState>();
  state->mdbs = mdbs;
  state->config = config;
  Rng root(seed);

  sim::Time start_time = mdbs->loop().now();
  for (int i = 0; i < config.global_clients; ++i) {
    auto rng = std::make_shared<Rng>(root.Fork());
    mdbs->loop().Schedule(static_cast<sim::Time>(i),
                          [state, rng]() { GlobalClientIssue(state, rng); });
  }
  if (config.local_clients_per_site > 0) {
    for (SiteId site : mdbs->site_ids()) {
      for (int i = 0; i < config.local_clients_per_site; ++i) {
        auto rng = std::make_shared<Rng>(root.Fork());
        mdbs->loop().Schedule(
            static_cast<sim::Time>(i),
            [state, rng, site]() { LocalClientIssue(state, rng, site); });
      }
    }
  }
  if (config.crash_interval > 0) {
    auto crash_rng = std::make_shared<Rng>(root.Fork());
    ArmCrashInjection(state, crash_rng);
  }

  mdbs->RunUntilIdle();

  // End-of-run oracle: the recorded schedules must satisfy the paper's
  // correctness criteria. Violations are reported through the auditor
  // (fail-fast in tests); the returned status is also checked by callers
  // that audit with fail_fast off.
  if (mdbs->audit_enabled()) (void)mdbs->RunAuditOracle();

  DriverReport report;
  report.global_committed = state->global_committed;
  report.global_failed = state->global_failed;
  report.local_committed = state->local_committed;
  report.local_failed = state->local_failed;
  report.local_abort_retries = state->local_retries;
  report.global_resubmissions = state->global_resubmissions;
  report.global_retry_unsafe = state->global_retry_unsafe;
  report.txns_failed_permanently = state->txns_failed_permanently;
  report.faults = mdbs->fault_stats();
  report.duration = mdbs->loop().now() - start_time;
  if (report.duration > 0) {
    report.global_throughput = 1e6 *
                               static_cast<double>(report.global_committed) /
                               static_cast<double>(report.duration);
  }
  report.global_response = state->response;
  report.global_attempts = state->attempts;
  report.gtm1 = mdbs->gtm().stats();
  report.gtm2 = mdbs->gtm().gtm2().stats();
  report.gtm_durability = mdbs->gtm_durability_stats();
  report.gtm_standby = mdbs->gtm_standby_stats();
  for (SiteId site : mdbs->site_ids()) {
    report.site_blocked += mdbs->site(site).blocked_count();
    report.site_aborts += mdbs->site(site).abort_count();
    report.crashes += mdbs->site(site).crash_count();
    site::SiteDurabilityStats wal = mdbs->site(site).durability_stats();
    report.durability.wal_records += wal.wal_records;
    report.durability.wal_bytes += wal.wal_bytes;
    report.durability.checkpoints += wal.checkpoints;
    report.durability.recoveries += wal.recoveries;
    report.durability.replay_records += wal.replay_records;
    report.durability.replay_bytes += wal.replay_bytes;
    report.durability.redo_writes += wal.redo_writes;
    report.durability.undone_writes += wal.undone_writes;
    report.durability.recovery_ticks += wal.recovery_ticks;
    report.durability.wal_syncs += wal.wal_syncs;
  }
  return report;
}

}  // namespace mdbs
