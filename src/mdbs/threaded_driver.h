#ifndef MDBS_MDBS_THREADED_DRIVER_H_
#define MDBS_MDBS_THREADED_DRIVER_H_

#include "mdbs/driver.h"
#include "mdbs/mdbs.h"

namespace mdbs {

/// Runs the closed-loop experiment of RunDriver against a *threaded* Mdbs
/// (MdbsConfig::threaded = true): every global client and every local client
/// is a real std::thread issuing blocking requests against the thread-safe
/// stack, and the crash injector is a thread of its own. The same
/// DriverConfig is accepted — its tick-denominated knobs (think times, crash
/// interval/duration) are interpreted as real microseconds — so a workload
/// can be executed by both engines and compared (tests/threaded_vs_sim).
///
/// The run finishes like the simulated one: clients stop issuing once
/// `target_global_commits` global transactions finished, in-flight work
/// drains (Mdbs::FinishThreadedRun), the audit oracle replays the recorded
/// schedule, and the report's duration/throughput are wall-clock
/// microseconds / transactions per second.
///
/// `seed` shapes the workload (each client thread gets a forked Rng), but —
/// unlike the simulator — the interleaving is the hardware's, so two runs
/// with one seed may commit in different orders. That is the point: the
/// paper's schemes must keep the schedule serializable under real
/// interleavings, not only simulated ones.
DriverReport RunThreadedDriver(Mdbs* mdbs, const DriverConfig& config,
                               uint64_t seed);

}  // namespace mdbs

#endif  // MDBS_MDBS_THREADED_DRIVER_H_
