#include "mdbs/threaded_driver.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mdbs {

namespace {

void SleepTicks(sim::Time ticks) {
  if (ticks <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(ticks));
}

/// Shared run state; the driver mutex only guards the tallies, never any
/// part of the execution stack.
struct RunState {
  Mdbs* mdbs = nullptr;
  DriverConfig config;

  std::mutex mu;
  int64_t global_committed = 0;
  int64_t global_failed = 0;
  int64_t local_committed = 0;
  int64_t local_failed = 0;
  int64_t local_retries = 0;
  int64_t global_resubmissions = 0;
  int64_t global_retry_unsafe = 0;
  int64_t txns_failed_permanently = 0;
  sim::Summary response;
  sim::Summary attempts;

  std::atomic<bool> stop{false};

  bool TargetReachedLocked() const {
    return global_committed + global_failed >=
           config.target_global_commits;
  }
};

/// Submits one global transaction and blocks until its final outcome.
gtm::GlobalTxnResult SubmitGlobalAndWait(Mdbs* mdbs, gtm::GlobalTxnSpec spec) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  gtm::GlobalTxnResult result;
  mdbs->SubmitGlobal(std::move(spec),
                     [&](const gtm::GlobalTxnResult& final_result) {
                       // Notify under the lock: the waiter owns cv/mu on its
                       // stack and destroys them as soon as it observes
                       // `done`, which the mutex orders after this signal.
                       std::lock_guard<std::mutex> lock(mu);
                       result = final_result;
                       done = true;
                       cv.notify_one();
                     });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  return result;
}

/// Submits one local data operation and blocks until the site answered
/// (possibly after lock waits at the site).
Status SubmitLocalAndWait(site::LocalDbms* dbms, TxnId txn, const DataOp& op) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status result = Status::OK();
  dbms->Submit(txn, op, [&](const Status& status, int64_t) {
    std::lock_guard<std::mutex> lock(mu);  // Notify under the lock: the
    result = status;                       // waiter destroys cv on wake.
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  return result;
}

Status CommitLocalAndWait(site::LocalDbms* dbms, TxnId txn) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status result = Status::OK();
  dbms->Commit(txn, [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mu);  // Notify under the lock: the
    result = status;                       // waiter destroys cv on wake.
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  return result;
}

/// One closed-loop global client: keeps one global transaction in flight
/// until the commit target is reached. A failed-but-retry-safe outcome is
/// resubmitted as a fresh GTM job (same spec), with doubling backoff,
/// mirroring the simulated driver's retry layer.
void GlobalClientMain(RunState* state, Rng rng) {
  Mdbs* mdbs = state->mdbs;
  while (!state->stop.load(std::memory_order_relaxed)) {
    gtm::GlobalTxnSpec spec;
    if (state->config.templates.has_value()) {
      const analysis::TemplateMix& mix = *state->config.templates;
      spec = analysis::Instantiate(
          mix.templates[analysis::SampleTemplate(mix, &rng)], mix, &rng);
    } else {
      spec = MakeGlobalTxn(state->config.global_workload, mdbs->site_ids(),
                           &rng);
    }
    sim::Time start = mdbs->NowTicks();
    int resubmissions = 0;
    int attempts_total = 0;
    gtm::GlobalTxnResult result;
    for (;;) {
      gtm::GlobalTxnSpec submit_spec = spec;
      result = SubmitGlobalAndWait(mdbs, std::move(submit_spec));
      attempts_total += result.attempts;
      if (result.status.ok() || !result.retry_safe ||
          resubmissions >= state->config.retry.max_resubmissions ||
          state->stop.load(std::memory_order_relaxed)) {
        break;
      }
      ++resubmissions;
      {
        std::lock_guard<std::mutex> lock(state->mu);
        ++state->global_resubmissions;
      }
      if (obs::TraceSink* sink = mdbs->trace_sink()) {
        sink->Record(obs::TraceEventKind::kTxnResubmit, -1, -1,
                     resubmissions, attempts_total);
      }
      sim::Time base = state->config.retry.backoff;
      for (int i = 1; i < resubmissions && i < 4; ++i) base *= 2;
      SleepTicks(base + static_cast<sim::Time>(rng.NextBelow(
                            static_cast<uint64_t>(base) + 1)));
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (result.status.ok()) {
        ++state->global_committed;
        state->response.Add(
            static_cast<double>(result.finish_time - start));
        state->attempts.Add(attempts_total);
      } else {
        if (!result.retry_safe) {
          ++state->global_retry_unsafe;
        } else if (!state->stop.load(std::memory_order_relaxed)) {
          // Retry-safe failure with the resubmission budget spent: the
          // client gives up permanently.
          ++state->txns_failed_permanently;
        }
        ++state->global_failed;
      }
      if (state->TargetReachedLocked()) {
        state->stop.store(true, std::memory_order_relaxed);
      }
    }
    if (state->stop.load(std::memory_order_relaxed)) return;
    SleepTicks(state->config.global_think);
  }
}

/// One closed-loop local client at `site`: the pre-existing local
/// application the GTM never sees. Retries a transaction's operations after
/// local aborts, like its simulated counterpart.
void LocalClientMain(RunState* state, Rng rng, SiteId site) {
  Mdbs* mdbs = state->mdbs;
  site::LocalDbms* dbms = &mdbs->site(site);
  while (!state->stop.load(std::memory_order_relaxed)) {
    std::vector<DataOp> ops =
        MakeLocalTxn(state->config.local_workload, &rng);
    if (ops.empty()) ops.push_back(DataOp::Read(DataItemId(0)));

    bool committed = false;
    int attempt = 0;
    while (!committed && attempt < state->config.local_max_attempts) {
      StatusOr<TxnId> txn = mdbs->BeginLocal(site);
      if (!txn.ok()) {
        // Site down right now; try again shortly (counts as an attempt
        // only once the transaction got going at least once).
        if (attempt == 0) {
          if (state->stop.load(std::memory_order_relaxed)) break;
          SleepTicks(static_cast<sim::Time>(200 + rng.NextBelow(200)));
          continue;
        }
        ++attempt;
        continue;
      }
      ++attempt;
      bool aborted = false;
      for (const DataOp& op : ops) {
        if (!SubmitLocalAndWait(dbms, *txn, op).ok()) {
          aborted = true;
          break;
        }
      }
      if (!aborted && CommitLocalAndWait(dbms, *txn).ok()) {
        committed = true;
        break;
      }
      // Local abort: retry the same operations after a randomized backoff.
      if (attempt < state->config.local_max_attempts) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          ++state->local_retries;
        }
        SleepTicks(static_cast<sim::Time>(50 + rng.NextBelow(100)));
      }
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      if (committed) {
        ++state->local_committed;
      } else if (attempt > 0) {  // Never-begun transactions don't count.
        ++state->local_failed;
      }
    }
    if (state->stop.load(std::memory_order_relaxed)) return;
    SleepTicks(state->config.local_think);
  }
}

/// Failure injection: every crash_interval microseconds, crash a random
/// site and recover it crash_duration later.
void CrashInjectorMain(RunState* state, Rng rng) {
  Mdbs* mdbs = state->mdbs;
  while (!state->stop.load(std::memory_order_relaxed)) {
    SleepTicks(state->config.crash_interval);
    if (state->stop.load(std::memory_order_relaxed)) return;
    SiteId victim =
        mdbs->site_ids()[rng.NextBelow(mdbs->site_ids().size())];
    mdbs->InjectCrash(victim, state->config.crash_duration);
  }
}

}  // namespace

DriverReport RunThreadedDriver(Mdbs* mdbs, const DriverConfig& config,
                               uint64_t seed) {
  MDBS_CHECK(mdbs->threaded())
      << "RunThreadedDriver needs MdbsConfig::threaded = true";
  RunState state;
  state.mdbs = mdbs;
  state.config = config;
  Rng root(seed);

  sim::Time start_time = mdbs->NowTicks();
  std::vector<std::thread> clients;
  for (int i = 0; i < config.global_clients; ++i) {
    clients.emplace_back(GlobalClientMain, &state, root.Fork());
  }
  if (config.local_clients_per_site > 0) {
    for (SiteId site : mdbs->site_ids()) {
      for (int i = 0; i < config.local_clients_per_site; ++i) {
        clients.emplace_back(LocalClientMain, &state, root.Fork(), site);
      }
    }
  }
  std::thread injector;
  if (config.crash_interval > 0) {
    injector = std::thread(CrashInjectorMain, &state, root.Fork());
  }
  // With tracing on, a sampler thread gauges every strand's queue depth
  // once a millisecond — the kStrandBacklog series in the trace/report.
  std::thread backlog_sampler;
  if (mdbs->trace_sink() != nullptr) {
    backlog_sampler = std::thread([mdbs, &state]() {
      while (!state.stop.load(std::memory_order_relaxed)) {
        mdbs->SampleStrandBacklogs();
        SleepTicks(1000);
      }
    });
  }

  for (std::thread& client : clients) client.join();
  state.stop.store(true, std::memory_order_relaxed);
  if (injector.joinable()) injector.join();
  if (backlog_sampler.joinable()) backlog_sampler.join();
  sim::Time end_time = mdbs->NowTicks();

  // Drain in-flight tails (fire-and-forget aborts, last acknowledgements)
  // and stop the strands; from here on the stack is single-threaded.
  mdbs->FinishThreadedRun();

  // End-of-run oracle: the recorded real interleaving must satisfy the
  // paper's correctness criteria, exactly as in the simulated driver.
  if (mdbs->audit_enabled()) (void)mdbs->RunAuditOracle();

  DriverReport report;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    report.global_committed = state.global_committed;
    report.global_failed = state.global_failed;
    report.local_committed = state.local_committed;
    report.local_failed = state.local_failed;
    report.local_abort_retries = state.local_retries;
    report.global_resubmissions = state.global_resubmissions;
    report.global_retry_unsafe = state.global_retry_unsafe;
    report.txns_failed_permanently = state.txns_failed_permanently;
    report.global_response = state.response;
    report.global_attempts = state.attempts;
  }
  report.faults = mdbs->fault_stats();
  report.duration = end_time - start_time;
  if (report.duration > 0) {
    // Ticks are microseconds here, so "per Mtick" is per second.
    report.global_throughput = 1e6 *
                               static_cast<double>(report.global_committed) /
                               static_cast<double>(report.duration);
  }
  report.gtm1 = mdbs->gtm().stats();
  report.gtm2 = mdbs->gtm().gtm2().stats();
  report.gtm_durability = mdbs->gtm_durability_stats();
  report.gtm_standby = mdbs->gtm_standby_stats();
  for (SiteId site : mdbs->site_ids()) {
    report.site_blocked += mdbs->site(site).blocked_count();
    report.site_aborts += mdbs->site(site).abort_count();
    report.crashes += mdbs->site(site).crash_count();
    site::SiteDurabilityStats wal = mdbs->site(site).durability_stats();
    report.durability.wal_records += wal.wal_records;
    report.durability.wal_bytes += wal.wal_bytes;
    report.durability.checkpoints += wal.checkpoints;
    report.durability.recoveries += wal.recoveries;
    report.durability.replay_records += wal.replay_records;
    report.durability.replay_bytes += wal.replay_bytes;
    report.durability.redo_writes += wal.redo_writes;
    report.durability.undone_writes += wal.undone_writes;
    report.durability.recovery_ticks += wal.recovery_ticks;
    report.durability.wal_syncs += wal.wal_syncs;
  }
  return report;
}

}  // namespace mdbs
