#ifndef MDBS_MDBS_DRIVER_H_
#define MDBS_MDBS_DRIVER_H_

#include <string>

#include "mdbs/mdbs.h"
#include "mdbs/workload.h"
#include "sim/metrics.h"

namespace mdbs {

/// A closed-loop experiment: `global_clients` clients each keep one global
/// transaction in flight (multiprogramming level), while
/// `local_clients_per_site` clients per site run local transactions that
/// the GTM never sees — the source of indirect conflicts. The run stops
/// once `target_global_commits` global transactions committed and all
/// in-flight work drained.
struct DriverConfig {
  int global_clients = 8;
  int local_clients_per_site = 2;
  int64_t target_global_commits = 200;
  /// Think time between a client's transactions.
  sim::Time global_think = 50;
  sim::Time local_think = 50;
  /// Give up on a local transaction after this many aborts.
  int local_max_attempts = 50;
  /// Failure injection: every `crash_interval` ticks a random site crashes
  /// for `crash_duration` ticks (all its active transactions abort; the
  /// GTM retries). 0 disables.
  sim::Time crash_interval = 0;
  sim::Time crash_duration = 2000;
  GlobalWorkloadConfig global_workload;
  LocalWorkloadConfig local_workload;
};

/// Results of one driver run.
struct DriverReport {
  int64_t global_committed = 0;
  int64_t global_failed = 0;
  int64_t local_committed = 0;
  int64_t local_failed = 0;
  int64_t local_abort_retries = 0;
  sim::Time duration = 0;
  /// Committed global transactions per million ticks.
  double global_throughput = 0;
  sim::Summary global_response;  // Submit-to-commit latency.
  sim::Summary global_attempts;  // Attempts per committed transaction.
  gtm::Gtm1Stats gtm1;
  gtm::Gtm2Stats gtm2;
  int64_t site_blocked = 0;  // Blocked operations across sites.
  int64_t site_aborts = 0;   // Local protocol aborts across sites.
  int64_t crashes = 0;       // Injected site crashes.

  std::string ToString() const;

  /// Contributes the report's counters and latency summaries to `registry`
  /// under "driver." / "gtm1." / "gtm2." names, so the JSON run report
  /// (src/obs/report) carries driver-level results next to the trace-derived
  /// phase metrics.
  void AddToRegistry(sim::MetricsRegistry* registry) const;
};

/// Runs the closed-loop experiment on `mdbs`. Deterministic given `seed`.
DriverReport RunDriver(Mdbs* mdbs, const DriverConfig& config, uint64_t seed);

}  // namespace mdbs

#endif  // MDBS_MDBS_DRIVER_H_
