#ifndef MDBS_MDBS_DRIVER_H_
#define MDBS_MDBS_DRIVER_H_

#include <optional>
#include <string>

#include "analysis/template.h"
#include "mdbs/mdbs.h"
#include "mdbs/workload.h"
#include "sim/metrics.h"

namespace mdbs {

/// A closed-loop experiment: `global_clients` clients each keep one global
/// transaction in flight (multiprogramming level), while
/// `local_clients_per_site` clients per site run local transactions that
/// the GTM never sees — the source of indirect conflicts. The run stops
/// once `target_global_commits` global transactions committed and all
/// in-flight work drained.
/// Client-level retry policy on top of the GTM's own attempts: a failed
/// global transaction is resubmitted (as a fresh GTM job, same spec) up to
/// `max_resubmissions` times, with doubling backoff from `backoff`.
/// Resubmission is guarded by GlobalTxnResult::retry_safe — a partial
/// commit is never resubmitted, since that would double-apply the committed
/// sites' effects. A retry-safe failure that exhausts the budget is counted
/// as failed permanently (DriverReport::txns_failed_permanently).
struct RetryConfig {
  /// Resubmission budget per logical transaction. 0 disables client
  /// retries.
  int max_resubmissions = 0;
  /// Initial backoff before a resubmission; doubles per resubmission
  /// (capped at 8x), plus uniform jitter of up to one base interval.
  sim::Time backoff = 1000;
};

struct DriverConfig {
  int global_clients = 8;
  int local_clients_per_site = 2;
  int64_t target_global_commits = 200;
  /// Think time between a client's transactions.
  sim::Time global_think = 50;
  sim::Time local_think = 50;
  /// Give up on a local transaction after this many aborts.
  int local_max_attempts = 50;
  /// Failure injection: every `crash_interval` ticks a random site crashes
  /// for `crash_duration` ticks (all its active transactions abort; the
  /// GTM retries). 0 disables. Scripted alternative: MdbsConfig::fault_plan.
  sim::Time crash_interval = 0;
  sim::Time crash_duration = 2000;
  /// Client-level retry layer (see RetryConfig).
  RetryConfig retry;
  GlobalWorkloadConfig global_workload;
  LocalWorkloadConfig local_workload;
  /// When set, global clients instantiate these declared templates
  /// (weighted draw) instead of the random `global_workload` — the subject
  /// of the static robustness analyzer (src/analysis). A certified
  /// fast-path run is only sound while every submitted transaction comes
  /// from the certified mix, which this guarantees. Both engines honor it.
  std::optional<analysis::TemplateMix> templates;
};

/// Results of one driver run.
struct DriverReport {
  int64_t global_committed = 0;
  int64_t global_failed = 0;
  int64_t local_committed = 0;
  int64_t local_failed = 0;
  int64_t local_abort_retries = 0;
  sim::Time duration = 0;
  /// Committed global transactions per million ticks.
  double global_throughput = 0;
  sim::Summary global_response;  // Submit-to-commit latency.
  sim::Summary global_attempts;  // Attempts per committed transaction.
  gtm::Gtm1Stats gtm1;
  gtm::Gtm2Stats gtm2;
  int64_t site_blocked = 0;  // Blocked operations across sites.
  int64_t site_aborts = 0;   // Local protocol aborts across sites.
  int64_t crashes = 0;       // Injected site crashes.
  /// Client-level resubmissions of failed-but-retry-safe transactions.
  int64_t global_resubmissions = 0;
  /// Failures not resubmitted because retry_safe was false (partial
  /// commits).
  int64_t global_retry_unsafe = 0;
  /// Retry-safe failures that exhausted RetryConfig::max_resubmissions:
  /// the client gave up on the transaction for good. Excludes failures
  /// after the run stopped issuing (those are drain artifacts, not budget
  /// exhaustion).
  int64_t txns_failed_permanently = 0;
  /// What the fault layer injected/suppressed (losses, dups, spikes,
  /// plan crashes).
  fault::FaultStats faults;
  /// WAL/recovery activity summed across durable sites (zeros otherwise).
  site::SiteDurabilityStats durability;
  /// The durable GTM's own WAL/crash/replay activity (zeros when the GTM
  /// is not durable or no gtm_crash was injected). With a warm standby
  /// this is the pair's sum, continuous across a failover.
  gtm::GtmDurabilityStats gtm_durability;
  /// Warm-standby shipping/failover counters (zeros without a standby).
  gtm::GtmStandbyStats gtm_standby;

  std::string ToString() const;

  /// Contributes the report's counters and latency summaries to `registry`
  /// under "driver." / "gtm1." / "gtm2." names, so the JSON run report
  /// (src/obs/report) carries driver-level results next to the trace-derived
  /// phase metrics.
  void AddToRegistry(sim::MetricsRegistry* registry) const;
};

/// Runs the closed-loop experiment on `mdbs`. Deterministic given `seed`.
DriverReport RunDriver(Mdbs* mdbs, const DriverConfig& config, uint64_t seed);

}  // namespace mdbs

#endif  // MDBS_MDBS_DRIVER_H_
