#include "mdbs/mdbs.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>

#include "common/logging.h"

namespace mdbs {

MdbsConfig MdbsConfig::Uniform(int count, lcc::ProtocolKind protocol,
                               gtm::SchemeKind scheme) {
  MdbsConfig config;
  for (int i = 0; i < count; ++i) {
    site::SiteConfig site;
    site.id = SiteId(i);
    site.protocol = protocol;
    config.sites.push_back(site);
  }
  config.gtm.scheme = scheme;
  return config;
}

MdbsConfig MdbsConfig::Mixed(const std::vector<lcc::ProtocolKind>& protocols,
                             gtm::SchemeKind scheme) {
  MdbsConfig config;
  for (size_t i = 0; i < protocols.size(); ++i) {
    site::SiteConfig site;
    site.id = SiteId(static_cast<int64_t>(i));
    site.protocol = protocols[i];
    config.sites.push_back(site);
  }
  config.gtm.scheme = scheme;
  return config;
}

Mdbs::Mdbs(const MdbsConfig& config)
    : config_(config),
      auditor_(config.audit),
      audit_enabled_(audit::kAuditCompiledIn && config.audit.enabled),
      threaded_(config.threaded) {
  MDBS_CHECK(!config.sites.empty()) << "an MDBS needs at least one site";
  if (threaded_) {
    ticker_ = std::make_unique<sim::RealTicker>();
    for (const site::SiteConfig& site_config : config.sites) {
      site_strands_[site_config.id] = std::make_unique<sim::RealStrand>(
          ticker_.get(), "site-" + ToString(site_config.id));
    }
    gtm_strand_ = std::make_unique<sim::RealStrand>(ticker_.get(), "gtm");
  }
  for (const site::SiteConfig& site_config : config.sites) {
    MDBS_CHECK(!sites_.contains(site_config.id))
        << "duplicate site " << site_config.id;
    sites_[site_config.id] = std::make_unique<site::LocalDbms>(
        site_config, SiteRunner(site_config.id), &recorder_);
    site_ids_.push_back(site_config.id);
  }
  gtm::Gtm1Config gtm_config = config.gtm;
  if (config.gtm_standby) {
    MDBS_CHECK(config.gtm.durable)
        << "a warm-standby GTM requires GTM durability (--gtm_durable)";
    MDBS_CHECK(config.gtm.wal_device == nullptr ||
               config.gtm.wal_device->Size() == 0)
        << "warm standby requires an empty GTM WAL: shipped frame sequence "
        << "numbers are log positions counted from zero";
    // One fencing token spans the pair; the primary starts holding epoch 0.
    fence_ = std::make_shared<gtm::FencingToken>();
    gtm_config.fence = fence_;
  }
  gtm1_ =
      std::make_unique<gtm::Gtm1>(gtm_config, GtmRunner(), this, config.seed);
  if (config.gtm_standby) {
    gtm::Gtm1Config standby_config = gtm_config;
    standby_config.standby = true;
    // The standby owns a fresh WAL (seeded with a checkpoint at promotion);
    // the primary's device must not be shared into it.
    standby_config.wal_device = nullptr;
    gtm_standby_ = std::make_unique<gtm::Gtm1>(standby_config, GtmRunner(),
                                               this, config.seed + 1);
    // Shipping tap: runs synchronously after each durable append on the GTM
    // strand; the frame crosses the modeled network and lands back on the
    // same strand standby_lag later (equal delays on one FIFO strand keep
    // frames in order).
    gtm1_->SetWalShipper([this](int64_t seq, std::vector<uint8_t> frame) {
      ++shipped_records_;
      shipped_bytes_ += static_cast<int64_t>(frame.size());
      GtmRunner()->Schedule(
          config_.standby_lag,
          [this, seq, frame = std::move(frame)]() mutable {
            gtm_standby_->ReceiveShippedFrame(seq, std::move(frame));
          });
    });
  }
  active_gtm_ = gtm1_.get();
  if (audit_enabled_) {
    // The standby's shadow GTM2 is NOT audited while passive: its replayed
    // mutations mirror transitions the primary's audit already saw.
    // PromoteStandby() turns auditing on the instant it goes live.
    gtm1_->mutable_gtm2().EnableAudit(config.audit, &auditor_);
    if (config.audit.check_lock_table) {
      for (SiteId id : site_ids_) sites_.at(id)->EnableAudit(&auditor_);
    }
  }
  if (obs::kTraceCompiledIn && config.trace.enabled) {
    trace_ = std::make_unique<obs::TraceSink>(
        config.trace, [this]() { return NowTicks(); });
    gtm1_->EnableTrace(trace_.get());
    if (gtm_standby_ != nullptr) gtm_standby_->EnableTrace(trace_.get());
    for (SiteId id : site_ids_) sites_.at(id)->EnableTrace(trace_.get());
  }
  if (config.metrics.enabled) {
    metrics_ = std::make_unique<obs::MetricsEngine>(
        config.metrics, [this]() { return NowTicks(); }, site_ids_);
    gtm1_->EnableMetrics(metrics_.get());
    if (gtm_standby_ != nullptr) gtm_standby_->EnableMetrics(metrics_.get());
    for (SiteId id : site_ids_) sites_.at(id)->EnableMetrics(metrics_.get());
  }

  // Fault layer: resolve sweeps against the real site count, fold the
  // legacy response-loss knob in, then arm the crash windows now so a
  // (plan, seed) pair replays identically.
  fault::FaultPlan plan = fault::ResolveSweeps(
      config.fault_plan, static_cast<int>(site_ids_.size()));
  if (config.response_loss_probability > 0 && plan.response_loss <= 0) {
    plan.response_loss = config.response_loss_probability;
  }
  Status plan_ok = fault::ValidatePlanForConfig(plan, config.gtm.durable,
                                                config.gtm_standby);
  MDBS_CHECK(plan_ok.ok()) << plan_ok.message();
  injector_ = std::make_unique<fault::FaultInjector>(plan, config.seed);
  ArmPlanCrashes();
  ArmGtmCrashes();
  ArmGtmFailovers();

  HealthMonitor::Callbacks health_callbacks;
  health_callbacks.probe = [this](SiteId site, std::function<void()> ack) {
    ProbeSite(site, std::move(ack));
  };
  // Health events route to whichever GTM is live at delivery time — after a
  // failover the promoted standby owns the quarantine set.
  health_callbacks.site_down = [this](SiteId site) {
    active_gtm_->OnSiteDown(site);
  };
  health_callbacks.site_up = [this](SiteId site) {
    active_gtm_->OnSiteUp(site);
  };
  health_callbacks.keep_probing = [this]() {
    return active_gtm_->InFlight() > 0;
  };
  health_ = std::make_unique<HealthMonitor>(
      config.health, GtmRunner(), site_ids_, std::move(health_callbacks));
  if (trace_ != nullptr) health_->EnableTrace(trace_.get());
  gtm1_->SetActivityHook([this]() { health_->Activity(); });
  if (gtm_standby_ != nullptr) {
    gtm_standby_->SetActivityHook([this]() { health_->Activity(); });
  }
}

void Mdbs::ArmPlanCrashes() {
  for (const fault::CrashEvent& crash : injector_->plan().crashes) {
    if (!sites_.contains(crash.site)) continue;  // Plan outlived the config.
    SiteRunner(crash.site)->Schedule(crash.at, [this, crash]() {
      site::LocalDbms& dbms = *sites_.at(crash.site);
      if (dbms.IsDown()) return;  // Overlapping windows merge.
      injector_->CountPlanCrash();
      dbms.Crash();
      SiteRunner(crash.site)->Schedule(crash.duration, [this, crash]() {
        sites_.at(crash.site)->Recover();
      });
    });
  }
}

void Mdbs::ArmGtmCrashes() {
  for (const fault::GtmCrashEvent& event : injector_->plan().gtm_crashes) {
    GtmRunner()->Schedule(event.at, [this, event]() {
      if (gtm1_->IsDown()) return;  // Overlapping windows merge.
      gtm1_->Crash();
      GtmRunner()->Schedule(event.duration, [this]() {
        gtm1_->Recover(CurrentlyDownSites());
      });
    });
  }
}

void Mdbs::ArmGtmFailovers() {
  for (const fault::GtmFailoverEvent& event : injector_->plan().gtm_failovers) {
    GtmRunner()->Schedule(event.at, [this, event]() {
      // Kill the primary for good; `duration` models failure detection
      // (health-check timeouts), after which the standby takes over.
      if (!gtm1_->IsDown()) gtm1_->Crash();
      GtmRunner()->Schedule(event.duration, [this]() { PromoteStandby(); });
    });
  }
}

void Mdbs::PromoteStandby() {
  MDBS_CHECK(gtm_standby_ != nullptr)
      << "PromoteStandby without a configured standby";
  if (!gtm_standby_->IsStandby()) return;  // Already promoted.
  gtm_standby_->Promote(gtm1_.get(), CurrentlyDownSites());
  if (audit_enabled_) {
    // The shadow GTM2 starts reporting to the auditor the instant it goes
    // live; its passive replay history was covered by the primary's audit.
    gtm_standby_->mutable_gtm2().EnableAudit(config_.audit, &auditor_);
  }
  active_gtm_ = gtm_standby_.get();
}

gtm::GtmStandbyStats Mdbs::gtm_standby_stats() const {
  if (gtm_standby_ == nullptr) return {};
  gtm::GtmStandbyStats stats = gtm_standby_->standby_stats();
  stats.shipped_records = shipped_records_;
  stats.shipped_bytes = shipped_bytes_;
  return stats;
}

gtm::GtmDurabilityStats Mdbs::gtm_durability_stats() const {
  gtm::GtmDurabilityStats total = gtm1_->durability_stats();
  if (gtm_standby_ == nullptr) return total;
  // One logical durable GTM, two physical instances: report the pair's sums
  // so counters stay continuous across a failover.
  gtm::GtmDurabilityStats s = gtm_standby_->durability_stats();
  total.wal_records += s.wal_records;
  total.wal_bytes += s.wal_bytes;
  total.checkpoints += s.checkpoints;
  total.crashes += s.crashes;
  total.recoveries += s.recoveries;
  total.replayed_records += s.replayed_records;
  total.replayed_bytes += s.replayed_bytes;
  total.replayed_enqueues += s.replayed_enqueues;
  total.resumed_commits += s.resumed_commits;
  total.recovery_aborted_attempts += s.recovery_aborted_attempts;
  total.buffered_submits += s.buffered_submits;
  total.recovery_ticks += s.recovery_ticks;
  total.wal_syncs += s.wal_syncs;
  return total;
}

std::vector<SiteId> Mdbs::CurrentlyDownSites() const {
  std::vector<SiteId> down;
  for (SiteId id : site_ids_) {
    if (health_->state(id) == HealthMonitor::SiteState::kDown) {
      down.push_back(id);
    }
  }
  return down;
}

Mdbs::~Mdbs() { StopStrands(); }

sim::TaskRunner* Mdbs::SiteRunner(SiteId site) {
  if (!threaded_) return &loop_;
  return site_strands_.at(site).get();
}

sim::TaskRunner* Mdbs::GtmRunner() {
  if (!threaded_) return &loop_;
  return gtm_strand_.get();
}

sim::Time Mdbs::NowTicks() const {
  return threaded_ ? ticker_->NowMicros() : loop_.now();
}

void Mdbs::SubmitGlobal(gtm::GlobalTxnSpec spec, gtm::Gtm1::ResultCallback cb) {
  if (!threaded_) {
    active_gtm_->Submit(std::move(spec), std::move(cb));
    return;
  }
  // Stamp the client-side enqueue time so the metrics engine can charge the
  // GTM-strand queueing delay to the admission phase. The live GTM is
  // resolved on the GTM strand, where failovers also happen — a submission
  // racing a promotion lands on whichever instance owns the epoch when its
  // turn runs.
  GtmRunner()->Schedule(
      0, [this, enqueued = NowTicks(), spec = std::move(spec),
          cb = std::move(cb)]() mutable {
        if (metrics_ != nullptr) metrics_->StageAdmission(enqueued);
        active_gtm_->Submit(std::move(spec), std::move(cb));
      });
}

void Mdbs::InjectCrash(SiteId site, sim::Time recover_after) {
  SiteRunner(site)->Schedule(0, [this, site, recover_after]() {
    site::LocalDbms& dbms = *sites_.at(site);
    if (dbms.IsDown()) return;
    dbms.Crash();
    SiteRunner(site)->Schedule(recover_after,
                               [this, site]() { sites_.at(site)->Recover(); });
  });
}

void Mdbs::FinishThreadedRun() {
  if (!threaded_ || strands_stopped_) return;
  // Quiescence sweep. The horizon must exceed every short-lived internal
  // delay (network hops, service times, retry backoff, crash recovery) so
  // in-flight chains count as busy, while the only far-future timers —
  // attempt timeouts of already-finished transactions — don't keep the run
  // alive for hundreds of milliseconds. Observing strand A idle
  // happens-after any task it posted to strand B was enqueued (A's mutex,
  // then B's mutex), so a sweep where every strand is quiescent beyond the
  // horizon is a true fixpoint once no external thread submits work.
  sim::Time horizon_ticks = 2 * config_.net_delay + 1000;
  horizon_ticks = std::max<sim::Time>(horizon_ticks,
                                      2 * config_.gtm.retry_backoff + 100);
  // An active health monitor's next probe tick must count as busy so it can
  // run, observe nothing in flight, and stop itself.
  horizon_ticks = std::max<sim::Time>(
      horizon_ticks, 2 * config_.health.probe_interval + 100);
  // A durable site's modeled replay delay must count as busy, or the sweep
  // could declare quiescence with a recovery timer still pending.
  for (const site::SiteConfig& site : config_.sites) {
    if (site.durable) {
      horizon_ticks = std::max<sim::Time>(
          horizon_ticks, 2 * site.recovery_base_time + 100);
    }
  }
  // A pending GTM crash/recovery window must count as busy: while the GTM
  // is down, in-flight transactions are waiting on its recovery timer.
  for (const fault::GtmCrashEvent& event : config_.fault_plan.gtm_crashes) {
    horizon_ticks = std::max<sim::Time>(horizon_ticks, 2 * event.duration +
                                                          100);
  }
  // A failover's detection window keeps in-flight work waiting the same way
  // a crash outage does; the promotion timer is armed inside it.
  for (const fault::GtmFailoverEvent& event :
       config_.fault_plan.gtm_failovers) {
    horizon_ticks = std::max<sim::Time>(horizon_ticks, 2 * event.duration +
                                                          100);
  }
  if (config_.gtm.durable) {
    horizon_ticks = std::max<sim::Time>(
        horizon_ticks, 2 * config_.gtm.recovery_base_time + 100);
  }
  // In-flight shipped frames must count as busy so the standby's shadow
  // state catches up before the run is declared quiescent.
  if (config_.gtm_standby) {
    horizon_ticks = std::max<sim::Time>(horizon_ticks,
                                        2 * config_.standby_lag + 100);
  }
  for (;;) {
    sim::Time horizon = ticker_->NowMicros() + horizon_ticks;
    bool all_quiescent = gtm_strand_->QuiescentBeyond(horizon);
    for (const auto& [id, strand] : site_strands_) {
      all_quiescent = all_quiescent && strand->QuiescentBeyond(horizon);
    }
    if (all_quiescent) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  StopStrands();
}

void Mdbs::SampleStrandBacklogs() {
  if (!threaded_ || trace_ == nullptr) return;
  trace_->Record(obs::TraceEventKind::kStrandBacklog, -1, -1,
                 gtm_strand_->PendingTasks());
  for (const auto& [id, strand] : site_strands_) {
    trace_->Record(obs::TraceEventKind::kStrandBacklog, -1, id.value(),
                   strand->PendingTasks());
  }
}

void Mdbs::StopStrands() {
  if (!threaded_ || strands_stopped_) return;
  // Joining the workers makes everything they wrote visible to this thread.
  gtm_strand_->Stop();
  for (auto& [id, strand] : site_strands_) strand->Stop();
  strands_stopped_ = true;
}

Status Mdbs::RunAuditOracle() {
  if (!audit_enabled_ || !config_.audit.run_oracle) return Status::OK();
  Status first = Status::OK();
  auto report = [&](const char* invariant, const Status& status) {
    if (status.ok()) return;
    if (first.ok()) first = status;
    auditor_.Report(audit::AuditViolation{invariant, status.message(), {}});
  };
  report("oracle-local-csr", CheckLocallySerializable());
  report("oracle-ser-key", CheckSerializationKeyProperty());
  report("oracle-strictness", CheckStrictness());
  if (active_gtm_->gtm2().scheme().kind() != gtm::SchemeKind::kNone) {
    report("oracle-global-csr", CheckGloballySerializable());
  }
  return first;
}

StatusOr<TxnId> Mdbs::BeginLocal(SiteId site) {
  TxnId txn = TxnId(next_local_txn_id_++);
  if (!threaded_) {
    Status status = sites_.at(site)->Begin(txn, GlobalTxnId());
    if (!status.ok()) return status;
    return txn;
  }
  // The site's state belongs to its strand; run the begin there and block
  // until it answered. The references stay valid because this frame waits.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status status = Status::OK();
  SiteRunner(site)->Schedule(0, [&]() {
    Status begin_status = sites_.at(site)->Begin(txn, GlobalTxnId());
    // Notify under the lock: this frame destroys cv/mu the moment it
    // observes `done`, which the mutex orders after the signal.
    std::lock_guard<std::mutex> lock(mu);
    status = begin_status;
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
  if (!status.ok()) return status;
  return txn;
}

std::vector<SiteId> Mdbs::MultiversionSites() const {
  std::vector<SiteId> result;
  for (SiteId id : site_ids_) {
    if (sites_.at(id)->protocol().IsMultiversion()) result.push_back(id);
  }
  return result;
}

Status Mdbs::CheckLocallySerializable() const {
  for (SiteId id : site_ids_) {
    sched::SerializabilityResult result =
        sites_.at(id)->protocol().IsMultiversion()
            ? sched::CheckMultiversionSerializability(recorder_, id)
            : sched::CheckLocalSerializability(recorder_, id);
    if (!result.serializable) {
      return Status::Internal("local schedule at " + ToString(id) + " " +
                              result.ToString());
    }
  }
  return Status::OK();
}

Status Mdbs::CheckSerializationKeyProperty() const {
  for (SiteId id : site_ids_) {
    // Multiversion sites legitimately violate single-version conflict
    // order (old-version reads); their MVSG check subsumes the property.
    if (sites_.at(id)->protocol().IsMultiversion()) continue;
    MDBS_RETURN_IF_ERROR(
        sched::CheckSerializationKeyProperty(recorder_, id));
  }
  return Status::OK();
}

Status Mdbs::CheckStrictness() const {
  for (SiteId id : site_ids_) {
    MDBS_RETURN_IF_ERROR(sched::CheckStrictness(
        recorder_, id, sites_.at(id)->protocol().IsMultiversion()));
  }
  return Status::OK();
}

Status Mdbs::CheckGloballySerializable() const {
  sched::SerializabilityResult result = GlobalSerializabilityResult();
  if (!result.serializable) {
    return Status::Internal("global schedule " + result.ToString());
  }
  return Status::OK();
}

sched::SerializabilityResult Mdbs::GlobalSerializabilityResult() const {
  std::vector<SiteId> mv_sites = MultiversionSites();
  if (mv_sites.empty()) {
    return sched::CheckGlobalSerializability(recorder_);
  }
  return sched::CheckGlobalSerializabilityMixed(recorder_, mv_sites);
}

lcc::ProtocolKind Mdbs::ProtocolAt(SiteId site) const {
  return sites_.at(site)->protocol_kind();
}

// The gateway models the paper's servers: a request hops to the site's
// strand after a network delay, the site answers on its own strand, and the
// response hops back to the GTM's strand. In simulation mode both strands
// are the event loop, reproducing the seed behavior exactly. The fault
// injector sits on both legs of the begin/data paths: a lost leg leaves the
// operation possibly executed (GTM1's timeout recovers), a duplicated leg
// is suppressed by the receiver-side guard, a spiked leg just arrives late.

void Mdbs::SendFaulty(sim::TaskRunner* runner, bool request, SiteId site,
                      int64_t txn, std::function<void()> deliver) {
  fault::MessageFate fate =
      request ? injector_->RequestFate() : injector_->ResponseFate();
  if (fate.lost) {
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kNetFault, txn, site.value(), 0, 0,
                     request ? "req_lost" : "resp_lost");
    }
    return;  // GTM1's timeout takes it from here.
  }
  if (fate.extra_delay > 0 && trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kNetFault, txn, site.value(),
                   fate.extra_delay, 0, "spike");
  }
  sim::Time delay = config_.net_delay + fate.extra_delay;
  if (!fate.duplicated) {
    runner->Schedule(delay, std::move(deliver));
    return;
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kNetFault, txn, site.value(), 0, 0,
                   "dup");
  }
  // Both copies land on the same strand, so the guard needs no lock.
  auto guard = std::make_shared<bool>(false);
  auto shared = std::make_shared<std::function<void()>>(std::move(deliver));
  auto once = [this, guard, shared, txn, site]() {
    if (*guard) {
      injector_->CountSuppressedDuplicate();
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kNetFault, txn, site.value(), 0,
                       0, "dup_suppressed");
      }
      return;
    }
    *guard = true;
    (*shared)();
  };
  runner->Schedule(delay, once);
  runner->Schedule(delay + fate.duplicate_lag, once);
}

void Mdbs::ProbeSite(SiteId site, std::function<void()> ack) {
  fault::MessageFate out = injector_->ProbeFate(/*request=*/true);
  if (out.lost) return;
  SiteRunner(site)->Schedule(
      config_.net_delay + out.extra_delay,
      [this, site, ack = std::move(ack)]() {
        if (sites_.at(site)->IsDown()) return;  // A down site never acks.
        fault::MessageFate back = injector_->ProbeFate(/*request=*/false);
        if (back.lost) return;
        GtmRunner()->Schedule(config_.net_delay + back.extra_delay,
                              std::move(ack));
      });
}

void Mdbs::Begin(SiteId site, TxnId txn, GlobalTxnId global, TxnCallback cb) {
  SendFaulty(SiteRunner(site), /*request=*/true, site, txn.value(),
             [this, site, txn, global, cb = std::move(cb)]() {
               Status status = sites_.at(site)->Begin(txn, global);
               SendFaulty(GtmRunner(), /*request=*/false, site, txn.value(),
                          [status, cb = std::move(cb)]() { cb(status); });
             });
}

void Mdbs::Submit(SiteId site, TxnId txn, const DataOp& op, OpCallback cb) {
  SendFaulty(
      SiteRunner(site), /*request=*/true, site, txn.value(),
      [this, site, txn, op, cb = std::move(cb)]() {
        // Site-side busy time (service + local lock/validation blocking) is
        // measured on the site's strand; the response leg stages it right
        // before the GTM-side callback so the round trip can be split into
        // site-execution and network time.
        sim::Time delivered = NowTicks();
        sites_.at(site)->Submit(
            txn, op,
            [this, site, txn, delivered, cb = std::move(cb)](
                const Status& status, int64_t value) {
              sim::Time busy = NowTicks() - delivered;
              if (metrics_ != nullptr) metrics_->RecordSiteExec(site, busy);
              SendFaulty(GtmRunner(), /*request=*/false, site, txn.value(),
                         [this, txn, busy, status, value,
                          cb = std::move(cb)]() {
                           if (metrics_ != nullptr) {
                             metrics_->StageSiteWork(txn, busy);
                           }
                           cb(status, value);
                         });
            });
      });
}

void Mdbs::Commit(SiteId site, TxnId txn, TxnCallback cb) {
  SiteRunner(site)->Schedule(config_.net_delay, [this, site, txn,
                                                 cb = std::move(cb)]() {
    sim::Time delivered = NowTicks();
    sites_.at(site)->Commit(
        txn, [this, site, txn, delivered,
              cb = std::move(cb)](const Status& status) {
          sim::Time busy = NowTicks() - delivered;
          if (metrics_ != nullptr) metrics_->RecordSiteExec(site, busy);
          GtmRunner()->Schedule(
              config_.net_delay, [this, txn, busy, status,
                                  cb = std::move(cb)]() {
                if (metrics_ != nullptr) metrics_->StageSiteWork(txn, busy);
                cb(status);
              });
        });
  });
}

void Mdbs::Abort(SiteId site, TxnId txn, TxnCallback cb) {
  SiteRunner(site)->Schedule(config_.net_delay, [this, site, txn,
                                                 cb = std::move(cb)]() {
    sites_.at(site)->Abort(
        txn, [this, cb = std::move(cb)](const Status& status) {
          GtmRunner()->Schedule(config_.net_delay,
                                [status, cb = std::move(cb)]() { cb(status); });
        });
  });
}

}  // namespace mdbs
