#include "mdbs/mdbs.h"

#include "common/logging.h"

namespace mdbs {

MdbsConfig MdbsConfig::Uniform(int count, lcc::ProtocolKind protocol,
                               gtm::SchemeKind scheme) {
  MdbsConfig config;
  for (int i = 0; i < count; ++i) {
    site::SiteConfig site;
    site.id = SiteId(i);
    site.protocol = protocol;
    config.sites.push_back(site);
  }
  config.gtm.scheme = scheme;
  return config;
}

MdbsConfig MdbsConfig::Mixed(const std::vector<lcc::ProtocolKind>& protocols,
                             gtm::SchemeKind scheme) {
  MdbsConfig config;
  for (size_t i = 0; i < protocols.size(); ++i) {
    site::SiteConfig site;
    site.id = SiteId(static_cast<int64_t>(i));
    site.protocol = protocols[i];
    config.sites.push_back(site);
  }
  config.gtm.scheme = scheme;
  return config;
}

Mdbs::Mdbs(const MdbsConfig& config)
    : config_(config),
      auditor_(config.audit),
      audit_enabled_(audit::kAuditCompiledIn && config.audit.enabled),
      net_rng_(config.seed ^ 0x9e3779b97f4a7c15ULL) {
  MDBS_CHECK(!config.sites.empty()) << "an MDBS needs at least one site";
  for (const site::SiteConfig& site_config : config.sites) {
    MDBS_CHECK(!sites_.contains(site_config.id))
        << "duplicate site " << site_config.id;
    sites_[site_config.id] =
        std::make_unique<site::LocalDbms>(site_config, &loop_, &recorder_);
    site_ids_.push_back(site_config.id);
  }
  gtm1_ = std::make_unique<gtm::Gtm1>(config.gtm, &loop_, this, config.seed);
  if (audit_enabled_) {
    gtm1_->mutable_gtm2().EnableAudit(config.audit, &auditor_);
    if (config.audit.check_lock_table) {
      for (SiteId id : site_ids_) sites_.at(id)->EnableAudit(&auditor_);
    }
  }
}

Status Mdbs::RunAuditOracle() {
  if (!audit_enabled_ || !config_.audit.run_oracle) return Status::OK();
  Status first = Status::OK();
  auto report = [&](const char* invariant, const Status& status) {
    if (status.ok()) return;
    if (first.ok()) first = status;
    auditor_.Report(audit::AuditViolation{invariant, status.message(), {}});
  };
  report("oracle-local-csr", CheckLocallySerializable());
  report("oracle-ser-key", CheckSerializationKeyProperty());
  report("oracle-strictness", CheckStrictness());
  if (gtm1_->gtm2().scheme().kind() != gtm::SchemeKind::kNone) {
    report("oracle-global-csr", CheckGloballySerializable());
  }
  return first;
}

StatusOr<TxnId> Mdbs::BeginLocal(SiteId site) {
  TxnId txn = TxnId(next_local_txn_id_++);
  Status status = sites_.at(site)->Begin(txn, GlobalTxnId());
  if (!status.ok()) return status;
  return txn;
}

std::vector<SiteId> Mdbs::MultiversionSites() const {
  std::vector<SiteId> result;
  for (SiteId id : site_ids_) {
    if (sites_.at(id)->protocol().IsMultiversion()) result.push_back(id);
  }
  return result;
}

Status Mdbs::CheckLocallySerializable() const {
  for (SiteId id : site_ids_) {
    sched::SerializabilityResult result =
        sites_.at(id)->protocol().IsMultiversion()
            ? sched::CheckMultiversionSerializability(recorder_, id)
            : sched::CheckLocalSerializability(recorder_, id);
    if (!result.serializable) {
      return Status::Internal("local schedule at " + ToString(id) + " " +
                              result.ToString());
    }
  }
  return Status::OK();
}

Status Mdbs::CheckSerializationKeyProperty() const {
  for (SiteId id : site_ids_) {
    // Multiversion sites legitimately violate single-version conflict
    // order (old-version reads); their MVSG check subsumes the property.
    if (sites_.at(id)->protocol().IsMultiversion()) continue;
    MDBS_RETURN_IF_ERROR(
        sched::CheckSerializationKeyProperty(recorder_, id));
  }
  return Status::OK();
}

Status Mdbs::CheckStrictness() const {
  for (SiteId id : site_ids_) {
    MDBS_RETURN_IF_ERROR(sched::CheckStrictness(
        recorder_, id, sites_.at(id)->protocol().IsMultiversion()));
  }
  return Status::OK();
}

Status Mdbs::CheckGloballySerializable() const {
  sched::SerializabilityResult result = GlobalSerializabilityResult();
  if (!result.serializable) {
    return Status::Internal("global schedule " + result.ToString());
  }
  return Status::OK();
}

sched::SerializabilityResult Mdbs::GlobalSerializabilityResult() const {
  std::vector<SiteId> mv_sites = MultiversionSites();
  if (mv_sites.empty()) {
    return sched::CheckGlobalSerializability(recorder_);
  }
  return sched::CheckGlobalSerializabilityMixed(recorder_, mv_sites);
}

lcc::ProtocolKind Mdbs::ProtocolAt(SiteId site) const {
  return sites_.at(site)->protocol_kind();
}

bool Mdbs::LoseResponse() {
  return config_.response_loss_probability > 0 &&
         net_rng_.NextBernoulli(config_.response_loss_probability);
}

void Mdbs::Begin(SiteId site, TxnId txn, GlobalTxnId global, TxnCallback cb) {
  loop_.Schedule(config_.net_delay, [this, site, txn, global,
                                     cb = std::move(cb)]() {
    Status status = sites_.at(site)->Begin(txn, global);
    if (LoseResponse()) return;  // GTM1's timeout takes it from here.
    loop_.Schedule(config_.net_delay,
                   [status, cb = std::move(cb)]() { cb(status); });
  });
}

void Mdbs::Submit(SiteId site, TxnId txn, const DataOp& op, OpCallback cb) {
  loop_.Schedule(config_.net_delay, [this, site, txn, op,
                                     cb = std::move(cb)]() {
    sites_.at(site)->Submit(
        txn, op,
        [this, cb = std::move(cb)](const Status& status, int64_t value) {
          if (LoseResponse()) return;
          loop_.Schedule(config_.net_delay, [status, value,
                                             cb = std::move(cb)]() {
            cb(status, value);
          });
        });
  });
}

void Mdbs::Commit(SiteId site, TxnId txn, TxnCallback cb) {
  loop_.Schedule(config_.net_delay, [this, site, txn, cb = std::move(cb)]() {
    sites_.at(site)->Commit(
        txn, [this, cb = std::move(cb)](const Status& status) {
          loop_.Schedule(config_.net_delay,
                         [status, cb = std::move(cb)]() { cb(status); });
        });
  });
}

void Mdbs::Abort(SiteId site, TxnId txn, TxnCallback cb) {
  loop_.Schedule(config_.net_delay, [this, site, txn, cb = std::move(cb)]() {
    sites_.at(site)->Abort(
        txn, [this, cb = std::move(cb)](const Status& status) {
          loop_.Schedule(config_.net_delay,
                         [status, cb = std::move(cb)]() { cb(status); });
        });
  });
}

}  // namespace mdbs
