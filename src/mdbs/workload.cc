#include "mdbs/workload.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs {

gtm::GlobalTxnSpec MakeGlobalTxn(const GlobalWorkloadConfig& config,
                                 const std::vector<SiteId>& sites,
                                 Rng* rng) {
  MDBS_CHECK(!sites.empty());
  int dav_hi = static_cast<int>(std::min<int64_t>(
      config.dav_max, static_cast<int64_t>(sites.size())));
  int dav_lo = std::min(config.dav_min, dav_hi);
  int dav = std::max(
      1, static_cast<int>(rng->NextInRange(dav_lo, dav_hi)));

  // Choose `dav` distinct sites.
  std::vector<SiteId> chosen = sites;
  rng->Shuffle(&chosen);
  chosen.resize(static_cast<size_t>(dav));

  ZipfGenerator zipf(static_cast<uint64_t>(config.items_per_site),
                     config.zipf_theta);

  gtm::GlobalTxnSpec spec;
  std::vector<std::vector<gtm::GlobalOp>> per_site;
  for (SiteId site : chosen) {
    int ops = static_cast<int>(
        rng->NextInRange(config.ops_per_site_min, config.ops_per_site_max));
    std::vector<gtm::GlobalOp> list;
    for (int i = 0; i < ops; ++i) {
      DataItemId item{static_cast<int64_t>(zipf.Next(rng))};
      if (rng->NextBernoulli(config.read_ratio)) {
        list.push_back(gtm::GlobalOp::Read(site, item));
      } else {
        list.push_back(gtm::GlobalOp::Write(
            site, item, static_cast<int64_t>(rng->Next() >> 16)));
      }
    }
    per_site.push_back(std::move(list));
  }

  if (!config.interleave_sites) {
    for (auto& list : per_site) {
      for (auto& op : list) spec.ops.push_back(std::move(op));
    }
    return spec;
  }
  // Random interleaving preserving per-site order.
  std::vector<size_t> cursor(per_site.size(), 0);
  size_t remaining = 0;
  for (const auto& list : per_site) remaining += list.size();
  while (remaining > 0) {
    size_t pick = rng->NextBelow(per_site.size());
    if (cursor[pick] < per_site[pick].size()) {
      spec.ops.push_back(std::move(per_site[pick][cursor[pick]++]));
      --remaining;
    }
  }
  return spec;
}

std::vector<DataOp> MakeLocalTxn(const LocalWorkloadConfig& config,
                                 Rng* rng) {
  int ops = static_cast<int>(rng->NextInRange(config.ops_min, config.ops_max));
  ZipfGenerator zipf(static_cast<uint64_t>(config.items_per_site),
                     config.zipf_theta);
  std::vector<DataOp> result;
  for (int i = 0; i < ops; ++i) {
    DataItemId item{static_cast<int64_t>(zipf.Next(rng))};
    if (rng->NextBernoulli(config.read_ratio)) {
      result.push_back(DataOp::Read(item));
    } else {
      result.push_back(
          DataOp::Write(item, static_cast<int64_t>(rng->Next() >> 16)));
    }
  }
  return result;
}

}  // namespace mdbs
