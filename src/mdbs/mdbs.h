#ifndef MDBS_MDBS_MDBS_H_
#define MDBS_MDBS_MDBS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "common/status.h"
#include "gtm/gtm1.h"
#include "sched/schedule.h"
#include "sched/serializability.h"
#include "sim/event_loop.h"
#include "site/local_dbms.h"

namespace mdbs {

/// Top-level configuration of a simulated multidatabase.
struct MdbsConfig {
  std::vector<site::SiteConfig> sites;
  gtm::Gtm1Config gtm;
  /// One-way GTM <-> site network delay.
  sim::Time net_delay = 5;
  /// Probability that a site's response to a begin/data operation is lost
  /// in transit (the operation may still have executed!); GTM1's timeout
  /// aborts and retries the attempt. Commit/abort acknowledgements are
  /// assumed reliable — losing them would need an atomic commitment
  /// protocol, which the paper leaves out of scope.
  double response_loss_probability = 0;
  uint64_t seed = 42;
  /// Invariant auditor wiring (GTM2 driver, 2PL lock tables, end-of-run
  /// oracle). Enabled by default when compiled in; benchmarks turn it off.
  audit::AuditConfig audit;

  /// Convenience: `count` sites with the given protocols round-robin.
  static MdbsConfig Uniform(int count, lcc::ProtocolKind protocol,
                            gtm::SchemeKind scheme);
  static MdbsConfig Mixed(const std::vector<lcc::ProtocolKind>& protocols,
                          gtm::SchemeKind scheme);
};

/// The assembled multidatabase: local DBMSs, the GTM (GTM1+GTM2), the
/// simulation event loop and the verification recorder. Also implements the
/// SiteGateway ("servers") with network delays.
///
/// Typical use:
///   Mdbs mdbs(MdbsConfig::Mixed({k2PL, kTO, kSGT}, SchemeKind::kScheme3));
///   mdbs.gtm().Submit(spec, [&](const gtm::GlobalTxnResult& r) {...});
///   mdbs.RunUntilIdle();
///   ASSERT_TRUE(mdbs.CheckGloballySerializable().ok());
class Mdbs : public gtm::SiteGateway {
 public:
  explicit Mdbs(const MdbsConfig& config);
  ~Mdbs() override = default;

  Mdbs(const Mdbs&) = delete;
  Mdbs& operator=(const Mdbs&) = delete;

  sim::EventLoop& loop() { return loop_; }
  sched::ScheduleRecorder& recorder() { return recorder_; }
  gtm::Gtm1& gtm() { return *gtm1_; }
  const gtm::Gtm1& gtm() const { return *gtm1_; }
  site::LocalDbms& site(SiteId id) { return *sites_.at(id); }
  const std::vector<SiteId>& site_ids() const { return site_ids_; }
  const MdbsConfig& config() const { return config_; }

  /// Runs the simulation until no events remain.
  void RunUntilIdle() { loop_.Run(); }

  /// Begins a purely local transaction at `site` (a pre-existing local
  /// application: invisible to the GTM). Returns the fresh transaction id,
  /// or TransactionAborted while the site is down.
  StatusOr<TxnId> BeginLocal(SiteId site);

  /// Verification: local CSR at every site, the serialization-key property
  /// at every site, and global CSR across sites.
  Status CheckLocallySerializable() const;
  Status CheckSerializationKeyProperty() const;
  Status CheckGloballySerializable() const;
  /// No dirty reads / dirty overwrites anywhere (all protocols promise it).
  Status CheckStrictness() const;
  sched::SerializabilityResult GlobalSerializabilityResult() const;

  /// End-of-run audit oracle: runs the serializability/strictness checkers
  /// above against the recorded schedules and reports failures through the
  /// auditor ("oracle-local-csr", "oracle-ser-key", "oracle-strictness",
  /// "oracle-global-csr"). Global CSR is skipped for SchemeKind::kNone —
  /// the no-control strawman violates it by design (paper §3). Returns the
  /// first failure (or OK) so callers without an auditor can assert on it.
  Status RunAuditOracle();

  bool audit_enabled() const { return audit_enabled_; }
  audit::Auditor& auditor() { return auditor_; }
  const audit::Auditor& auditor() const { return auditor_; }

  /// Sites running a multiversion protocol (verified via MVSG).
  std::vector<SiteId> MultiversionSites() const;

  // SiteGateway (network-delayed access to the local DBMSs):
  lcc::ProtocolKind ProtocolAt(SiteId site) const override;
  void Begin(SiteId site, TxnId txn, GlobalTxnId global,
             TxnCallback cb) override;
  void Submit(SiteId site, TxnId txn, const DataOp& op,
              OpCallback cb) override;
  void Commit(SiteId site, TxnId txn, TxnCallback cb) override;
  void Abort(SiteId site, TxnId txn, TxnCallback cb) override;

 private:
  /// Local transactions allocate ids from this base; GTM1's subtransaction
  /// ids are small sequential integers, so the ranges never collide.
  static constexpr int64_t kLocalTxnIdBase = 1'000'000'000;

  /// True when this response should be dropped (lossy network injection).
  bool LoseResponse();

  MdbsConfig config_;
  audit::Auditor auditor_;
  bool audit_enabled_ = false;
  sim::EventLoop loop_;
  Rng net_rng_;
  sched::ScheduleRecorder recorder_;
  std::unordered_map<SiteId, std::unique_ptr<site::LocalDbms>> sites_;
  std::vector<SiteId> site_ids_;
  std::unique_ptr<gtm::Gtm1> gtm1_;
  int64_t next_local_txn_id_ = kLocalTxnIdBase;
};

}  // namespace mdbs

#endif  // MDBS_MDBS_MDBS_H_
