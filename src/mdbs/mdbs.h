#ifndef MDBS_MDBS_MDBS_H_
#define MDBS_MDBS_MDBS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "common/rng.h"
#include "common/status.h"
#include "fault/fault_plan.h"
#include "fault/injector.h"
#include "gtm/gtm1.h"
#include "mdbs/health.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/schedule.h"
#include "sched/serializability.h"
#include "sim/event_loop.h"
#include "sim/real_strand.h"
#include "site/local_dbms.h"

namespace mdbs {

/// Top-level configuration of a simulated multidatabase.
struct MdbsConfig {
  std::vector<site::SiteConfig> sites;
  gtm::Gtm1Config gtm;
  /// One-way GTM <-> site network delay.
  sim::Time net_delay = 5;
  /// Legacy knob, equivalent to fault_plan.response_loss (used when the
  /// plan itself sets no response loss). Prefer the fault plan.
  double response_loss_probability = 0;
  /// Deterministic fault-injection plan: scheduled site crashes plus
  /// request/response loss, duplicate delivery and delay spikes on the
  /// begin/data paths. Losing a request or response leaves the operation
  /// possibly executed at the site; GTM1's timeout aborts and retries the
  /// attempt, and receiver-side dedup guards keep duplicated deliveries
  /// from double-applying. Commit/abort messages stay reliable — losing
  /// them would need an atomic commitment protocol, which the paper leaves
  /// out of scope. Sweeps are resolved against the actual site count here.
  fault::FaultPlan fault_plan;
  /// Warm-standby GTM pair: construct a second, passive Gtm1 that receives
  /// every primary WAL frame over the modeled network (`standby_lag` one-way
  /// shipping delay) and applies it into a live shadow GTM2. A
  /// `gtm_failover@T:D` fault directive (or PromoteStandby()) then performs
  /// a fenced takeover whose unavailability is bounded by the shipping lag,
  /// not the log length. Requires gtm.durable; gtm.wal_device must start
  /// empty (frame sequence numbers are log positions from zero).
  bool gtm_standby = false;
  /// One-way WAL-frame shipping delay from primary to standby.
  sim::Time standby_lag = 10;
  /// Heartbeat-based site failure detector feeding Gtm1::OnSiteDown/Up.
  HealthConfig health;
  uint64_t seed = 42;
  /// Invariant auditor wiring (GTM2 driver, 2PL lock tables, end-of-run
  /// oracle). Enabled by default when compiled in; benchmarks turn it off.
  audit::AuditConfig audit;
  /// Tracing/metrics wiring (src/obs). Off by default — when enabled (and
  /// MDBS_TRACE compiled in) every tier records lifecycle events into one
  /// TraceSink, drained via trace_sink() after the run.
  obs::TraceConfig trace;
  /// Always-on metrics engine (src/obs/metrics): per-transaction phase
  /// decomposition, windowed timeline, per-site execution histograms. On by
  /// default and independent of the trace sink — it has no compile gate and
  /// its overhead budget is <2% (EXPERIMENTS E14).
  obs::MetricsConfig metrics;
  /// Execution mode. false: the single-threaded discrete-event simulator
  /// (deterministic; drive it with RunUntilIdle). true: real threads — one
  /// RealStrand per site plus one for the GTM — with ticks interpreted as
  /// real microseconds; drive it with RunThreadedDriver (or SubmitGlobal +
  /// your own threads) and finish with FinishThreadedRun.
  bool threaded = false;

  /// Convenience: `count` sites with the given protocols round-robin.
  static MdbsConfig Uniform(int count, lcc::ProtocolKind protocol,
                            gtm::SchemeKind scheme);
  static MdbsConfig Mixed(const std::vector<lcc::ProtocolKind>& protocols,
                          gtm::SchemeKind scheme);
};

/// The assembled multidatabase: local DBMSs, the GTM (GTM1+GTM2), the
/// simulation event loop and the verification recorder. Also implements the
/// SiteGateway ("servers") with network delays.
///
/// Typical use:
///   Mdbs mdbs(MdbsConfig::Mixed({k2PL, kTO, kSGT}, SchemeKind::kScheme3));
///   mdbs.gtm().Submit(spec, [&](const gtm::GlobalTxnResult& r) {...});
///   mdbs.RunUntilIdle();
///   ASSERT_TRUE(mdbs.CheckGloballySerializable().ok());
class Mdbs : public gtm::SiteGateway {
 public:
  explicit Mdbs(const MdbsConfig& config);
  /// Threaded mode: stops the strands (joining their workers) before any
  /// member is destroyed.
  ~Mdbs() override;

  Mdbs(const Mdbs&) = delete;
  Mdbs& operator=(const Mdbs&) = delete;

  sim::EventLoop& loop() { return loop_; }
  sched::ScheduleRecorder& recorder() { return recorder_; }
  /// The active GTM: the primary until a standby promotion, the promoted
  /// standby after. Resolve at use — don't cache across a failover.
  gtm::Gtm1& gtm() { return *active_gtm_; }
  const gtm::Gtm1& gtm() const { return *active_gtm_; }
  /// The warm standby (pre- or post-promotion), or null when
  /// MdbsConfig::gtm_standby is off.
  gtm::Gtm1* standby_gtm() { return gtm_standby_.get(); }
  /// The original primary, regardless of who is active (tests poke it).
  gtm::Gtm1& primary_gtm() { return *gtm1_; }

  /// Promotes the warm standby (no-op if already promoted). The primary
  /// must already be down. Scripted alternative: a gtm_failover@T:D fault
  /// directive. GTM strand only (schedule via the facade in threaded mode).
  void PromoteStandby();

  /// Standby shipping/failover counters with the facade-side shipped_*
  /// fields overlaid; all-zero when no standby is configured.
  gtm::GtmStandbyStats gtm_standby_stats() const;

  /// GTM durability counters summed across the primary and the standby, so
  /// WAL/checkpoint/recovery accounting stays continuous across a failover.
  gtm::GtmDurabilityStats gtm_durability_stats() const;
  site::LocalDbms& site(SiteId id) { return *sites_.at(id); }
  const std::vector<SiteId>& site_ids() const { return site_ids_; }
  const MdbsConfig& config() const { return config_; }
  bool threaded() const { return threaded_; }

  /// Runs the simulation until no events remain (simulation mode only).
  void RunUntilIdle() { loop_.Run(); }

  /// Current time: virtual ticks (simulation) or real microseconds since
  /// construction (threaded). Safe from any thread.
  sim::Time NowTicks() const;

  /// Submits a global transaction on the GTM's strand; `cb` fires once,
  /// on the GTM strand, with the final outcome. Safe from any thread in
  /// threaded mode; equivalent to gtm().Submit in simulation mode.
  void SubmitGlobal(gtm::GlobalTxnSpec spec, gtm::Gtm1::ResultCallback cb);

  /// Begins a purely local transaction at `site` (a pre-existing local
  /// application: invisible to the GTM). Returns the fresh transaction id,
  /// or TransactionAborted while the site is down. In threaded mode this
  /// blocks the calling thread until the site's strand ran the begin.
  StatusOr<TxnId> BeginLocal(SiteId site);

  /// Crashes `site` (if up) on its strand and schedules its recovery
  /// `recover_after` ticks later. Safe from any thread in threaded mode.
  /// Scripted alternative: MdbsConfig::fault_plan crashes, armed at
  /// construction.
  void InjectCrash(SiteId site, sim::Time recover_after);

  /// The site health monitor (always constructed; probing is lazy and
  /// gated on HealthConfig::enabled).
  HealthMonitor& health_monitor() { return *health_; }

  /// What the fault layer actually injected/suppressed this run.
  fault::FaultStats fault_stats() const { return injector_->stats(); }
  /// The plan after sweep resolution and legacy-knob folding.
  const fault::FaultPlan& resolved_fault_plan() const {
    return injector_->plan();
  }

  /// Threaded mode: waits until every strand is quiescent (nothing running
  /// and nothing due within a short horizon — stale far-future timers such
  /// as attempt timeouts for finished transactions don't count), then stops
  /// all strands. After it returns the object is single-threaded again, so
  /// stats, the recorder, and the oracle can be read plainly. Callers must
  /// have stopped submitting work (all clients joined). Idempotent; no-op
  /// in simulation mode.
  void FinishThreadedRun();

  /// Verification: local CSR at every site, the serialization-key property
  /// at every site, and global CSR across sites.
  Status CheckLocallySerializable() const;
  Status CheckSerializationKeyProperty() const;
  Status CheckGloballySerializable() const;
  /// No dirty reads / dirty overwrites anywhere (all protocols promise it).
  Status CheckStrictness() const;
  sched::SerializabilityResult GlobalSerializabilityResult() const;

  /// End-of-run audit oracle: runs the serializability/strictness checkers
  /// above against the recorded schedules and reports failures through the
  /// auditor ("oracle-local-csr", "oracle-ser-key", "oracle-strictness",
  /// "oracle-global-csr"). Global CSR is skipped for SchemeKind::kNone —
  /// the no-control strawman violates it by design (paper §3). Returns the
  /// first failure (or OK) so callers without an auditor can assert on it.
  Status RunAuditOracle();

  bool audit_enabled() const { return audit_enabled_; }
  audit::Auditor& auditor() { return auditor_; }
  const audit::Auditor& auditor() const { return auditor_; }

  /// The run's trace sink, or nullptr when tracing is off (not configured
  /// or compiled out). Drain() it only after the run is quiescent.
  obs::TraceSink* trace_sink() { return trace_.get(); }

  /// The always-on metrics engine, or nullptr when disabled via
  /// config.metrics.enabled = false. Snapshot() it only after the run is
  /// quiescent (RunUntilIdle returned / FinishThreadedRun completed).
  obs::MetricsEngine* metrics() { return metrics_.get(); }

  /// Records one kStrandBacklog sample per strand (GTM + sites). Threaded
  /// mode with tracing on only; safe from any thread (a sampler thread
  /// calls it periodically). No-op otherwise.
  void SampleStrandBacklogs();

  /// Sites running a multiversion protocol (verified via MVSG).
  std::vector<SiteId> MultiversionSites() const;

  // SiteGateway (network-delayed access to the local DBMSs):
  lcc::ProtocolKind ProtocolAt(SiteId site) const override;
  void Begin(SiteId site, TxnId txn, GlobalTxnId global,
             TxnCallback cb) override;
  void Submit(SiteId site, TxnId txn, const DataOp& op,
              OpCallback cb) override;
  void Commit(SiteId site, TxnId txn, TxnCallback cb) override;
  void Abort(SiteId site, TxnId txn, TxnCallback cb) override;

 private:
  /// Local transactions allocate ids from this base; GTM1's subtransaction
  /// ids are small sequential integers, so the ranges never collide.
  static constexpr int64_t kLocalTxnIdBase = 1'000'000'000;

  /// Applies one drawn message fate and delivers `deliver` on `runner`
  /// after net_delay (+ any spike). A duplicated message is scheduled
  /// twice; the shared guard runs `deliver` exactly once — both copies land
  /// on the same strand, so the guard needs no lock. A lost message is
  /// simply never scheduled. `txn` labels kNetFault trace events.
  void SendFaulty(sim::TaskRunner* runner, bool request, SiteId site,
                  int64_t txn, std::function<void()> deliver);

  /// Health-probe transport: `ack` fires on the GTM strand iff the site is
  /// up and neither probe leg was lost. Probe legs share the injector's
  /// loss/spike rates but are never duplicated.
  void ProbeSite(SiteId site, std::function<void()> ack);

  /// Schedules the resolved plan's crash/recovery windows on the site
  /// strands (construction time, so replays align).
  void ArmPlanCrashes();

  /// Schedules the plan's gtm_crash windows on the GTM strand. The recovery
  /// leg hands Gtm1::Recover the health monitor's *current* down set — the
  /// log's quarantine view is stale by however long the outage lasted.
  void ArmGtmCrashes();

  /// Schedules the plan's gtm_failover windows on the GTM strand: crash the
  /// primary at `at`, promote the standby `duration` (detection delay)
  /// ticks later.
  void ArmGtmFailovers();

  /// Sites the health monitor currently declares down (GTM strand only).
  std::vector<SiteId> CurrentlyDownSites() const;

  /// The strand owning `site`'s state (the shared loop in simulation mode).
  sim::TaskRunner* SiteRunner(SiteId site);
  /// The strand owning the GTM's state.
  sim::TaskRunner* GtmRunner();
  /// Stops all strands without the quiescence sweep (destructor path).
  void StopStrands();

  MdbsConfig config_;
  audit::Auditor auditor_;
  std::unique_ptr<obs::TraceSink> trace_;
  std::unique_ptr<obs::MetricsEngine> metrics_;
  bool audit_enabled_ = false;
  bool threaded_ = false;
  sim::EventLoop loop_;
  /// Threaded-mode machinery; unused (null/empty) in simulation mode.
  std::unique_ptr<sim::RealTicker> ticker_;
  std::unordered_map<SiteId, std::unique_ptr<sim::RealStrand>> site_strands_;
  std::unique_ptr<sim::RealStrand> gtm_strand_;
  bool strands_stopped_ = false;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<HealthMonitor> health_;
  sched::ScheduleRecorder recorder_;
  std::unordered_map<SiteId, std::unique_ptr<site::LocalDbms>> sites_;
  std::vector<SiteId> site_ids_;
  std::unique_ptr<gtm::Gtm1> gtm1_;
  /// Warm standby (config_.gtm_standby only) and the failover plumbing.
  /// active_gtm_ flips from gtm1_ to gtm_standby_ at PromoteStandby(), on
  /// the GTM strand; shipped_* are counted in the shipper tap (GTM strand).
  std::unique_ptr<gtm::Gtm1> gtm_standby_;
  gtm::Gtm1* active_gtm_ = nullptr;
  std::shared_ptr<gtm::FencingToken> fence_;
  int64_t shipped_records_ = 0;
  int64_t shipped_bytes_ = 0;
  std::atomic<int64_t> next_local_txn_id_{kLocalTxnIdBase};
};

}  // namespace mdbs

#endif  // MDBS_MDBS_MDBS_H_
