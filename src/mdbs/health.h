#ifndef MDBS_MDBS_HEALTH_H_
#define MDBS_MDBS_HEALTH_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "obs/trace.h"
#include "sim/task_runner.h"

namespace mdbs {

/// Heartbeat configuration of the GTM-side site health monitor.
struct HealthConfig {
  bool enabled = true;
  /// Gap between probe rounds while the GTM has transactions in flight.
  sim::Time probe_interval = 500;
  /// No ack for this long marks the site suspect (informational).
  sim::Time suspect_after = 1500;
  /// No ack for this long declares the site down: the GTM aborts affected
  /// attempts and quarantines the site. Must comfortably exceed the probe
  /// round-trip so loss alone (probes ride the lossy network) does not
  /// false-positive.
  sim::Time down_after = 4000;
};

/// GTM-side failure detector. Probes every site over the (lossy, delayed)
/// network and turns missing acknowledgements into suspect/down
/// declarations, and a returning acknowledgement into an up declaration.
///
/// All state lives on the GTM's runner: Activity(), Tick() and probe acks
/// run there, in simulation mode as ordinary loop events (deterministic)
/// and in threaded mode on the GTM strand.
///
/// Probing is lazy: it starts on GTM activity (a Submit) and stops as soon
/// as `keep_probing` reports nothing in flight, so an idle multidatabase
/// has no perpetual timers and the simulator's RunUntilIdle terminates.
class HealthMonitor {
 public:
  enum class SiteState { kUp, kSuspect, kDown };

  struct Callbacks {
    /// Send one probe to `site`; invoke `ack` on the monitor's runner iff
    /// the site answered (a down site, or a lost probe leg, never acks).
    std::function<void(SiteId, std::function<void()> ack)> probe;
    /// The monitor declared the site down / saw it answer again.
    std::function<void(SiteId)> site_down;
    std::function<void(SiteId)> site_up;
    /// Probe rounds continue while this returns true.
    std::function<bool()> keep_probing;
  };

  HealthMonitor(const HealthConfig& config, sim::TaskRunner* runner,
                std::vector<SiteId> sites, Callbacks callbacks);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// GTM activity notification (wired to Gtm1's activity hook). Starts the
  /// probe loop when it is not already running. Must run on the runner.
  void Activity();

  /// Records site_suspect/site_down/site_up events (nullptr disables).
  void EnableTrace(obs::TraceSink* sink) { trace_ = sink; }

  bool running() const { return running_; }
  SiteState state(SiteId site) const { return entries_.at(site).state; }

 private:
  struct Entry {
    sim::Time last_ack = 0;
    SiteState state = SiteState::kUp;
  };

  void Tick();
  void OnAck(SiteId site);

  const HealthConfig config_;
  sim::TaskRunner* runner_;
  Callbacks callbacks_;
  obs::TraceSink* trace_ = nullptr;
  std::vector<SiteId> sites_;
  std::unordered_map<SiteId, Entry> entries_;
  bool running_ = false;
};

}  // namespace mdbs

#endif  // MDBS_MDBS_HEALTH_H_
