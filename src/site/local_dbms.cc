#include "site/local_dbms.h"

#include "common/logging.h"
#include "lcc/mvto.h"
#include "lcc/occ.h"
#include "lcc/sgt.h"
#include "lcc/timestamp_ordering.h"
#include "lcc/two_phase_locking.h"

namespace mdbs::site {

std::unique_ptr<lcc::ConcurrencyControl> MakeProtocol(
    lcc::ProtocolKind kind, lcc::ProtocolHost* host) {
  switch (kind) {
    case lcc::ProtocolKind::kTwoPhaseLocking:
      return std::make_unique<lcc::TwoPhaseLocking>(host);
    case lcc::ProtocolKind::kTimestampOrdering:
      return std::make_unique<lcc::TimestampOrdering>(host);
    case lcc::ProtocolKind::kSerializationGraph:
      return std::make_unique<lcc::SerializationGraphTesting>(host);
    case lcc::ProtocolKind::kOptimistic:
      return std::make_unique<lcc::OptimisticConcurrencyControl>();
    case lcc::ProtocolKind::kMultiversionTO:
      return std::make_unique<lcc::MultiversionTimestampOrdering>(host);
    case lcc::ProtocolKind::kTwoPhaseLockingWoundWait:
      return std::make_unique<lcc::TwoPhaseLocking>(
          host, lcc::DeadlockPolicy::kWoundWait);
    case lcc::ProtocolKind::kTwoPhaseLockingWaitDie:
      return std::make_unique<lcc::TwoPhaseLocking>(
          host, lcc::DeadlockPolicy::kWaitDie);
  }
  return nullptr;
}

LocalDbms::LocalDbms(const SiteConfig& config, sim::TaskRunner* loop,
                     sched::ScheduleRecorder* recorder)
    : config_(config), loop_(loop), recorder_(recorder) {
  protocol_ = MakeProtocol(config.protocol, this);
  MDBS_CHECK(protocol_ != nullptr);
  if (config_.durable) {
    wal_device_ = config_.wal_device != nullptr
                      ? config_.wal_device
                      : std::make_shared<storage::MemLogDevice>();
    wal_ = std::make_unique<storage::WalWriter>(wal_device_.get());
    wal_->SetSyncConfig(config_.wal_sync);
    if (wal_device_->Size() > 0) {
      // A pre-existing log (process restart over --wal_dir, or a test
      // seeding a crash image): recover before serving anything.
      ReplayAndInstall();
    }
  }
}

Status LocalDbms::Begin(TxnId txn, GlobalTxnId global) {
  if (down_) {
    return Status::TransactionAborted(ToString(config_.id) + " is down");
  }
  if (txns_.contains(txn)) {
    return Status::FailedPrecondition(ToString(txn) + " already active");
  }
  txns_[txn].global = global;
  protocol_->OnBegin(txn);
  if (wal_ != nullptr) {
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kBegin;
    rec.txn = txn.value();
    rec.global = global.value();
    rec.clock = protocol_->DurableClock();
    wal_->Append(rec);
    MaybeCheckpoint();
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSiteBegin, txn.value(),
                   config_.id.value(), global.value());
  }
  if (recorder_ != nullptr) recorder_->RecordBegin(config_.id, txn, global);
  return Status::OK();
}

void LocalDbms::Submit(TxnId txn, const DataOp& op, OpCallback cb) {
  loop_->Schedule(config_.op_service_time,
                  [this, txn, op, cb = std::move(cb)]() mutable {
                    ProcessOp(txn, op, std::move(cb));
                  });
}

void LocalDbms::ProcessOp(TxnId txn, const DataOp& op, OpCallback cb) {
  if (down_) {
    cb(Status::TransactionAborted(ToString(config_.id) + " is down"), 0);
    return;
  }
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    // The transaction died (deadlock victim / client abort) while this
    // operation was queued or blocked.
    cb(Status::TransactionAborted(ToString(txn) + " is not active"), 0);
    return;
  }
  TxnState& state = it->second;
  switch (protocol_->OnAccess(txn, op)) {
    case lcc::AccessDecision::kProceed: {
      int64_t value = ApplyOp(txn, &state, op);
      protocol_->OnAccessApplied(txn, op);
      cb(Status::OK(), value);
      return;
    }
    case lcc::AccessDecision::kBlock: {
      ++blocked_count_;
      MDBS_CHECK(!state.pending_op.has_value())
          << ToString(txn) << " blocked with an operation already pending";
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kOpBlocked, txn.value(),
                       config_.id.value(), state.global.value(),
                       op.item.value());
      }
      state.pending_op = op;
      state.pending_cb = std::move(cb);
      return;
    }
    case lcc::AccessDecision::kAbort: {
      ++abort_count_;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kLocalAbort, txn.value(),
                       config_.id.value(), state.global.value(),
                       op.item.value());
      }
      DoAbort(txn, &state);
      txns_.erase(txn);
      cb(Status::TransactionAborted("local protocol abort at " +
                                    ToString(config_.id)),
         0);
      return;
    }
  }
}

int64_t LocalDbms::ApplyOp(TxnId txn, TxnState* state, const DataOp& op) {
  (void)txn;
  if (op.type == OpType::kRead) {
    int64_t value;
    TxnId read_from;
    if (std::optional<lcc::ResolvedRead> versioned =
            protocol_->ResolveRead(txn, op.item);
        versioned.has_value()) {
      value = versioned->value;  // Multiversion protocols answer directly.
      read_from = versioned->writer;
    } else if (!protocol_->WritesInPlace() &&
               state->write_buffer.contains(op.item)) {
      value = state->write_buffer.at(op.item);  // Read-your-own-writes.
      read_from = txn;
    } else if (protocol_->IsMultiversion() &&
               mv_initial_images_.contains(op.item)) {
      // Initial-version read after newer versions committed to the store.
      value = mv_initial_images_.at(op.item);
    } else {
      value = store_.Get(op.item);
    }
    if (recorder_ != nullptr) {
      DataOp observed = op;
      observed.value = value;
      recorder_->RecordOp(config_.id, txn, observed, loop_->now(),
                          read_from);
    }
    return value;
  }
  // Write.
  if (protocol_->WritesInPlace()) {
    int64_t before = store_.Put(op.item, op.value);
    state->undo_log.emplace_back(op.item, before);
    if (wal_ != nullptr) {
      storage::WalRecord rec;
      rec.type = storage::WalRecordType::kWrite;
      rec.txn = txn.value();
      rec.item = op.item.value();
      rec.before = before;
      rec.value = op.value;
      wal_->Append(rec);
      MaybeCheckpoint();
    }
    if (recorder_ != nullptr) {
      recorder_->RecordOp(config_.id, txn, op, loop_->now());
    }
  } else {
    auto [buf_it, inserted] = state->write_buffer.try_emplace(op.item);
    buf_it->second = op.value;
    if (inserted) state->write_order.push_back(op.item);
    // Deferred writes are recorded when applied at commit, which is when
    // they become visible and conflict-ordered.
  }
  return op.value;
}

void LocalDbms::Commit(TxnId txn, TxnCallback cb) {
  loop_->Schedule(config_.commit_service_time,
                  [this, txn, cb = std::move(cb)]() mutable {
                    ProcessCommit(txn, std::move(cb));
                  });
}

void LocalDbms::ProcessCommit(TxnId txn, TxnCallback cb) {
  if (down_) {
    cb(Status::TransactionAborted(ToString(config_.id) + " is down"));
    return;
  }
  if (committed_txns_.count(txn) > 0) {
    // Duplicate Commit — the durable GTM re-drives its fan-out from the
    // logged cursor after a crash. Acknowledge without re-recording.
    cb(Status::OK());
    return;
  }
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    cb(Status::TransactionAborted(ToString(txn) + " is not active"));
    return;
  }
  TxnState& state = it->second;
  MDBS_CHECK(!state.pending_op.has_value())
      << ToString(txn) << " committing with a blocked operation";
  if (protocol_->OnValidate(txn) == lcc::AccessDecision::kAbort) {
    ++abort_count_;
    DoAbort(txn, &state);
    txns_.erase(txn);
    cb(Status::TransactionAborted("validation failed at " +
                                  ToString(config_.id)));
    return;
  }
  // Install deferred writes in submission order; they become visible (and
  // conflict-ordered) here. Multiversion installs carry the writer's
  // timestamp: version order can trail commit order, and both the WAL and
  // the mv-latest table must know which version is newest for readers.
  int64_t writer_ts = 0;
  if (protocol_->IsMultiversion()) {
    writer_ts = protocol_->SerializationKey(txn).value_or(0);
  }
  for (DataItemId item : state.write_order) {
    int64_t before = store_.Put(item, state.write_buffer.at(item));
    if (protocol_->IsMultiversion()) {
      mv_initial_images_.try_emplace(item, before);
      MvLatest candidate{writer_ts, txn, state.write_buffer.at(item)};
      auto [latest, inserted] = mv_latest_.try_emplace(item, candidate);
      if (!inserted && writer_ts >= latest->second.wts) {
        latest->second = candidate;
      }
    }
    if (wal_ != nullptr) {
      storage::WalRecord rec;
      rec.type = storage::WalRecordType::kWrite;
      rec.txn = txn.value();
      rec.item = item.value();
      rec.before = before;
      rec.value = state.write_buffer.at(item);
      rec.clock = writer_ts;
      wal_->Append(rec);
    }
    if (recorder_ != nullptr) {
      recorder_->RecordOp(config_.id, txn,
                          DataOp::Write(item, state.write_buffer.at(item)),
                          loop_->now());
    }
  }
  protocol_->OnFinish(txn, TxnOutcome::kCommitted);
  if (wal_ != nullptr) {
    // The commit record hits the log before the ack callback fires — a
    // crash can only lose unacknowledged commits.
    for (const auto& [item, before] : state.undo_log) {
      last_writer_[item] = txn;
    }
    for (DataItemId item : state.write_order) last_writer_[item] = txn;
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kCommit;
    rec.txn = txn.value();
    rec.clock = protocol_->DurableClock();
    wal_->Append(rec);
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSiteCommit, txn.value(),
                   config_.id.value(), state.global.value());
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFinish(txn, TxnOutcome::kCommitted,
                            protocol_->SerializationKey(txn));
  }
  committed_txns_.insert(txn);
  txns_.erase(txn);
  // Checkpoint only after the committed transaction is fully retired: a
  // snapshot taken earlier would list it as active (with undo entries)
  // behind a commit record already in the log, and recovery would roll
  // back a committed write.
  MaybeCheckpoint();
  cb(Status::OK());
}

void LocalDbms::Abort(TxnId txn, TxnCallback cb) {
  loop_->Schedule(config_.commit_service_time,
                  [this, txn, cb = std::move(cb)]() mutable {
                    auto it = txns_.find(txn);
                    if (it == txns_.end()) {
                      cb(Status::OK());  // Already gone; abort is idempotent.
                      return;
                    }
                    DoAbort(txn, &it->second);
                    txns_.erase(it);
                    cb(Status::OK());
                  });
}

void LocalDbms::DoAbort(TxnId txn, TxnState* state) {
  // Undo in-place writes in reverse order, logging each restore as a
  // compensation record so replay repeats the rollback.
  for (auto undo_it = state->undo_log.rbegin();
       undo_it != state->undo_log.rend(); ++undo_it) {
    store_.Restore(undo_it->first, undo_it->second);
    if (wal_ != nullptr) {
      storage::WalRecord rec;
      rec.type = storage::WalRecordType::kClr;
      rec.txn = txn.value();
      rec.item = undo_it->first.value();
      rec.value = undo_it->second;
      wal_->Append(rec);
    }
  }
  if (wal_ != nullptr) {
    // No checkpoint here: the aborting transaction is still in txns_, and
    // a snapshot listing it as active would be stale. The counter still
    // advances; the next begin/write/commit triggers the checkpoint.
    storage::WalRecord rec;
    rec.type = storage::WalRecordType::kAbort;
    rec.txn = txn.value();
    wal_->Append(rec);
  }
  protocol_->OnFinish(txn, TxnOutcome::kAborted);
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSiteAbort, txn.value(),
                   config_.id.value(), state->global.value());
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFinish(txn, TxnOutcome::kAborted, std::nullopt);
  }
  // Fail the blocked operation's caller, if any.
  if (state->pending_op.has_value()) {
    OpCallback cb = std::move(state->pending_cb);
    state->pending_op.reset();
    loop_->Schedule(0, [cb = std::move(cb), txn]() {
      cb(Status::TransactionAborted(ToString(txn) + " aborted while blocked"),
         0);
    });
  }
}

void LocalDbms::AbortTransaction(TxnId txn, const std::string& reason) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;  // Already gone.
  (void)reason;
  ++abort_count_;
  DoAbort(txn, &it->second);
  txns_.erase(it);
}

void LocalDbms::Crash() {
  down_ = true;
  ++crash_count_;
  ++abort_count_;
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kCrash, -1, config_.id.value(),
                   static_cast<int64_t>(txns_.size()));
  }
  std::vector<TxnId> active;
  active.reserve(txns_.size());
  for (const auto& [txn, state] : txns_) active.push_back(txn);
  if (!config_.durable) {
    // Legacy model: abort every active transaction — uncommitted in-place
    // writes roll back, committed data stands (the store is our "stable
    // storage").
    for (TxnId txn : active) {
      auto it = txns_.find(txn);
      if (it == txns_.end()) continue;
      DoAbort(txn, &it->second);
      txns_.erase(it);
    }
    return;
  }
  // Durable model: ALL volatile state vanishes — store, protocol state,
  // transaction table. Nothing is logged (the crash is the log ending
  // abruptly); active transactions are losers for the replay to undo.
  // Their outcome is still recorded and their blocked callers still fail,
  // exactly as a rollback-abort would report them.
  for (TxnId txn : active) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) continue;
    TxnState& state = it->second;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kSiteAbort, txn.value(),
                     config_.id.value(), state.global.value());
    }
    if (recorder_ != nullptr) {
      recorder_->RecordFinish(txn, TxnOutcome::kAborted, std::nullopt);
    }
    if (state.pending_op.has_value()) {
      OpCallback cb = std::move(state.pending_cb);
      state.pending_op.reset();
      loop_->Schedule(0, [cb = std::move(cb), txn]() {
        cb(Status::TransactionAborted(ToString(txn) +
                                      " aborted while blocked"),
           0);
      });
    }
    txns_.erase(it);
  }
  store_.Clear();
  mv_initial_images_.clear();
  last_writer_.clear();
  mv_latest_.clear();
  committed_txns_.clear();
  // The stale protocol instance stays (nothing touches it while down_);
  // Recover() builds the replacement.
}

void LocalDbms::Recover() {
  if (!config_.durable) {
    down_ = false;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kRecover, -1, config_.id.value());
    }
    return;
  }
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kRecoveryBegin, -1,
                   config_.id.value());
  }
  storage::RecoveredState recovered = ReplayAndInstall();
  // The site stays down for the modeled replay time; with the default of
  // zero it resumes at the tick Recover() ran, exactly like a non-durable
  // site (which is what makes crash-free-reference differentials exact).
  sim::Time replay_time =
      config_.recovery_base_time +
      config_.recovery_time_per_record * recovered.scanned_records;
  durability_stats_.recovery_ticks += replay_time;
  if (metrics_ != nullptr && replay_time > 0) {
    sim::Time now = loop_->now();
    metrics_->AddRecoveryWindow(config_.id, now, now + replay_time);
  }
  auto finish = [this, records = recovered.scanned_records,
                 bytes = recovered.scanned_bytes]() {
    down_ = false;
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kRecover, -1, config_.id.value(),
                     records, bytes);
    }
  };
  if (replay_time == 0) {
    finish();
  } else {
    loop_->Schedule(replay_time, std::move(finish));
  }
}

storage::RecoveredState LocalDbms::ReplayAndInstall() {
  // A fresh protocol instance: the old one's volatile state died with the
  // site. Rebuild before replay so its multiversion-ness drives it.
  protocol_ = MakeProtocol(config_.protocol, this);
  MDBS_CHECK(protocol_ != nullptr);
  if (auditor_ != nullptr) protocol_->EnableAudit(auditor_);
  if (trace_ != nullptr) protocol_->EnableTrace(trace_, config_.id);

  storage::RecoveredState recovered;
  Status replayed = storage::RecoverWal(
      *wal_device_, protocol_->IsMultiversion(), &recovered);
  MDBS_CHECK(replayed.ok()) << ToString(config_.id)
                            << " WAL replay failed: " << replayed.message();
  if (recovered.torn_tail) {
    // Drop the torn frame so future appends start at a record boundary.
    wal_device_->Truncate(recovered.scanned_bytes);
  }

  store_.Clear();
  mv_initial_images_.clear();
  last_writer_.clear();
  mv_latest_.clear();
  for (const auto& [item, value] : recovered.store) {
    store_.Put(DataItemId(item), value);
  }
  for (const auto& [item, value] : recovered.mv_initial) {
    mv_initial_images_[DataItemId(item)] = value;
  }
  for (const auto& [item, writer] : recovered.last_writer) {
    last_writer_[DataItemId(item)] = TxnId(writer);
  }
  for (const auto& [item, v] : recovered.mv_latest) {
    mv_latest_[DataItemId(item)] = MvLatest{v.wts, TxnId(v.writer), v.value};
  }
  committed_txns_.clear();
  for (int64_t txn : recovered.committed_set) {
    committed_txns_.insert(TxnId(txn));
  }

  protocol_->RecoverClock(recovered.clock);
  if (protocol_->IsMultiversion()) {
    // Reseed the latest committed version per item, in sorted order for
    // reproducibility. The mv-latest table (timestamp order) decides which
    // value readers observe — the commit-order store value can belong to a
    // lower-timestamped writer that committed later, and serving it would
    // break serializability. Items the table does not cover (test pokes)
    // seed an anonymous version readers treat like the initial version.
    std::vector<std::pair<int64_t, int64_t>> items(recovered.store.begin(),
                                                   recovered.store.end());
    std::sort(items.begin(), items.end());
    for (const auto& [item, value] : items) {
      auto latest = recovered.mv_latest.find(item);
      if (latest != recovered.mv_latest.end()) {
        protocol_->RecoverCommittedVersion(DataItemId(item),
                                           latest->second.value,
                                           TxnId(latest->second.writer));
        continue;
      }
      auto writer = recovered.last_writer.find(item);
      protocol_->RecoverCommittedVersion(
          DataItemId(item), value,
          writer != recovered.last_writer.end() ? TxnId(writer->second)
                                                : TxnId());
    }
  }

  ++durability_stats_.recoveries;
  durability_stats_.replay_records += recovered.scanned_records;
  durability_stats_.replay_bytes += recovered.scanned_bytes;
  durability_stats_.redo_writes += recovered.redo_writes;
  durability_stats_.undone_writes += recovered.undone_writes;
  return recovered;
}

void LocalDbms::MaybeCheckpoint() {
  if (wal_ == nullptr || config_.checkpoint_interval <= 0 ||
      wal_->records_since_checkpoint() < config_.checkpoint_interval) {
    return;
  }
  storage::WalRecord rec;
  rec.type = storage::WalRecordType::kCheckpoint;
  storage::CheckpointImage& image = rec.checkpoint;
  image.clock = protocol_->DurableClock();
  for (TxnId txn : committed_txns_) image.committed.push_back(txn.value());
  std::sort(image.committed.begin(), image.committed.end());
  for (const auto& [item, value] : store_.items()) {
    storage::CheckpointImage::Item entry;
    entry.item = item.value();
    entry.value = value;
    auto writer = last_writer_.find(item);
    entry.last_committed_writer =
        writer != last_writer_.end() ? writer->second.value() : -1;
    image.items.push_back(entry);
  }
  std::sort(image.items.begin(), image.items.end(),
            [](const auto& a, const auto& b) { return a.item < b.item; });
  for (const auto& [item, value] : mv_initial_images_) {
    image.mv_initial.emplace_back(item.value(), value);
  }
  std::sort(image.mv_initial.begin(), image.mv_initial.end());
  for (const auto& [item, latest] : mv_latest_) {
    storage::CheckpointImage::MvVersion v;
    v.item = item.value();
    v.wts = latest.wts;
    v.writer = latest.writer.value();
    v.value = latest.value;
    image.mv_latest.push_back(v);
  }
  std::sort(image.mv_latest.begin(), image.mv_latest.end(),
            [](const auto& a, const auto& b) { return a.item < b.item; });
  for (const auto& [txn, state] : txns_) {
    storage::CheckpointImage::ActiveTxn active;
    active.txn = txn.value();
    active.global = state.global.value();
    for (const auto& [item, before] : state.undo_log) {
      active.undo.emplace_back(item.value(), before);
    }
    image.active.push_back(std::move(active));
  }
  std::sort(image.active.begin(), image.active.end(),
            [](const auto& a, const auto& b) { return a.txn < b.txn; });
  wal_->Append(rec);
  ++durability_stats_.checkpoints;
}

void LocalDbms::ResumeTransaction(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;  // Woken after finishing: ignore.
  TxnState& state = it->second;
  if (!state.pending_op.has_value() || state.resume_scheduled) return;
  state.resume_scheduled = true;
  loop_->Schedule(0, [this, txn]() {
    auto resume_it = txns_.find(txn);
    if (resume_it == txns_.end()) return;
    TxnState& resume_state = resume_it->second;
    resume_state.resume_scheduled = false;
    if (!resume_state.pending_op.has_value()) return;
    DataOp op = *resume_state.pending_op;
    OpCallback cb = std::move(resume_state.pending_cb);
    resume_state.pending_op.reset();
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kOpResumed, txn.value(),
                     config_.id.value(), resume_state.global.value(),
                     op.item.value());
    }
    ProcessOp(txn, op, std::move(cb));
  });
}

}  // namespace mdbs::site
