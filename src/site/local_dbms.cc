#include "site/local_dbms.h"

#include "common/logging.h"
#include "lcc/mvto.h"
#include "lcc/occ.h"
#include "lcc/sgt.h"
#include "lcc/timestamp_ordering.h"
#include "lcc/two_phase_locking.h"

namespace mdbs::site {

std::unique_ptr<lcc::ConcurrencyControl> MakeProtocol(
    lcc::ProtocolKind kind, lcc::ProtocolHost* host) {
  switch (kind) {
    case lcc::ProtocolKind::kTwoPhaseLocking:
      return std::make_unique<lcc::TwoPhaseLocking>(host);
    case lcc::ProtocolKind::kTimestampOrdering:
      return std::make_unique<lcc::TimestampOrdering>(host);
    case lcc::ProtocolKind::kSerializationGraph:
      return std::make_unique<lcc::SerializationGraphTesting>(host);
    case lcc::ProtocolKind::kOptimistic:
      return std::make_unique<lcc::OptimisticConcurrencyControl>();
    case lcc::ProtocolKind::kMultiversionTO:
      return std::make_unique<lcc::MultiversionTimestampOrdering>(host);
    case lcc::ProtocolKind::kTwoPhaseLockingWoundWait:
      return std::make_unique<lcc::TwoPhaseLocking>(
          host, lcc::DeadlockPolicy::kWoundWait);
    case lcc::ProtocolKind::kTwoPhaseLockingWaitDie:
      return std::make_unique<lcc::TwoPhaseLocking>(
          host, lcc::DeadlockPolicy::kWaitDie);
  }
  return nullptr;
}

LocalDbms::LocalDbms(const SiteConfig& config, sim::TaskRunner* loop,
                     sched::ScheduleRecorder* recorder)
    : config_(config), loop_(loop), recorder_(recorder) {
  protocol_ = MakeProtocol(config.protocol, this);
  MDBS_CHECK(protocol_ != nullptr);
}

Status LocalDbms::Begin(TxnId txn, GlobalTxnId global) {
  if (down_) {
    return Status::TransactionAborted(ToString(config_.id) + " is down");
  }
  if (txns_.contains(txn)) {
    return Status::FailedPrecondition(ToString(txn) + " already active");
  }
  txns_[txn].global = global;
  protocol_->OnBegin(txn);
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSiteBegin, txn.value(),
                   config_.id.value(), global.value());
  }
  if (recorder_ != nullptr) recorder_->RecordBegin(config_.id, txn, global);
  return Status::OK();
}

void LocalDbms::Submit(TxnId txn, const DataOp& op, OpCallback cb) {
  loop_->Schedule(config_.op_service_time,
                  [this, txn, op, cb = std::move(cb)]() mutable {
                    ProcessOp(txn, op, std::move(cb));
                  });
}

void LocalDbms::ProcessOp(TxnId txn, const DataOp& op, OpCallback cb) {
  if (down_) {
    cb(Status::TransactionAborted(ToString(config_.id) + " is down"), 0);
    return;
  }
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    // The transaction died (deadlock victim / client abort) while this
    // operation was queued or blocked.
    cb(Status::TransactionAborted(ToString(txn) + " is not active"), 0);
    return;
  }
  TxnState& state = it->second;
  switch (protocol_->OnAccess(txn, op)) {
    case lcc::AccessDecision::kProceed: {
      int64_t value = ApplyOp(txn, &state, op);
      protocol_->OnAccessApplied(txn, op);
      cb(Status::OK(), value);
      return;
    }
    case lcc::AccessDecision::kBlock: {
      ++blocked_count_;
      MDBS_CHECK(!state.pending_op.has_value())
          << ToString(txn) << " blocked with an operation already pending";
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kOpBlocked, txn.value(),
                       config_.id.value(), state.global.value(),
                       op.item.value());
      }
      state.pending_op = op;
      state.pending_cb = std::move(cb);
      return;
    }
    case lcc::AccessDecision::kAbort: {
      ++abort_count_;
      if (trace_ != nullptr) {
        trace_->Record(obs::TraceEventKind::kLocalAbort, txn.value(),
                       config_.id.value(), state.global.value(),
                       op.item.value());
      }
      DoAbort(txn, &state);
      txns_.erase(txn);
      cb(Status::TransactionAborted("local protocol abort at " +
                                    ToString(config_.id)),
         0);
      return;
    }
  }
}

int64_t LocalDbms::ApplyOp(TxnId txn, TxnState* state, const DataOp& op) {
  (void)txn;
  if (op.type == OpType::kRead) {
    int64_t value;
    TxnId read_from;
    if (std::optional<lcc::ResolvedRead> versioned =
            protocol_->ResolveRead(txn, op.item);
        versioned.has_value()) {
      value = versioned->value;  // Multiversion protocols answer directly.
      read_from = versioned->writer;
    } else if (!protocol_->WritesInPlace() &&
               state->write_buffer.contains(op.item)) {
      value = state->write_buffer.at(op.item);  // Read-your-own-writes.
      read_from = txn;
    } else if (protocol_->IsMultiversion() &&
               mv_initial_images_.contains(op.item)) {
      // Initial-version read after newer versions committed to the store.
      value = mv_initial_images_.at(op.item);
    } else {
      value = store_.Get(op.item);
    }
    if (recorder_ != nullptr) {
      DataOp observed = op;
      observed.value = value;
      recorder_->RecordOp(config_.id, txn, observed, loop_->now(),
                          read_from);
    }
    return value;
  }
  // Write.
  if (protocol_->WritesInPlace()) {
    int64_t before = store_.Put(op.item, op.value);
    state->undo_log.emplace_back(op.item, before);
    if (recorder_ != nullptr) {
      recorder_->RecordOp(config_.id, txn, op, loop_->now());
    }
  } else {
    auto [buf_it, inserted] = state->write_buffer.try_emplace(op.item);
    buf_it->second = op.value;
    if (inserted) state->write_order.push_back(op.item);
    // Deferred writes are recorded when applied at commit, which is when
    // they become visible and conflict-ordered.
  }
  return op.value;
}

void LocalDbms::Commit(TxnId txn, TxnCallback cb) {
  loop_->Schedule(config_.commit_service_time,
                  [this, txn, cb = std::move(cb)]() mutable {
                    ProcessCommit(txn, std::move(cb));
                  });
}

void LocalDbms::ProcessCommit(TxnId txn, TxnCallback cb) {
  if (down_) {
    cb(Status::TransactionAborted(ToString(config_.id) + " is down"));
    return;
  }
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    cb(Status::TransactionAborted(ToString(txn) + " is not active"));
    return;
  }
  TxnState& state = it->second;
  MDBS_CHECK(!state.pending_op.has_value())
      << ToString(txn) << " committing with a blocked operation";
  if (protocol_->OnValidate(txn) == lcc::AccessDecision::kAbort) {
    ++abort_count_;
    DoAbort(txn, &state);
    txns_.erase(txn);
    cb(Status::TransactionAborted("validation failed at " +
                                  ToString(config_.id)));
    return;
  }
  // Install deferred writes in submission order; they become visible (and
  // conflict-ordered) here.
  for (DataItemId item : state.write_order) {
    int64_t before = store_.Put(item, state.write_buffer.at(item));
    if (protocol_->IsMultiversion()) {
      mv_initial_images_.try_emplace(item, before);
    }
    if (recorder_ != nullptr) {
      recorder_->RecordOp(config_.id, txn,
                          DataOp::Write(item, state.write_buffer.at(item)),
                          loop_->now());
    }
  }
  protocol_->OnFinish(txn, TxnOutcome::kCommitted);
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSiteCommit, txn.value(),
                   config_.id.value(), state.global.value());
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFinish(txn, TxnOutcome::kCommitted,
                            protocol_->SerializationKey(txn));
  }
  txns_.erase(txn);
  cb(Status::OK());
}

void LocalDbms::Abort(TxnId txn, TxnCallback cb) {
  loop_->Schedule(config_.commit_service_time,
                  [this, txn, cb = std::move(cb)]() mutable {
                    auto it = txns_.find(txn);
                    if (it == txns_.end()) {
                      cb(Status::OK());  // Already gone; abort is idempotent.
                      return;
                    }
                    DoAbort(txn, &it->second);
                    txns_.erase(it);
                    cb(Status::OK());
                  });
}

void LocalDbms::DoAbort(TxnId txn, TxnState* state) {
  // Undo in-place writes in reverse order.
  for (auto undo_it = state->undo_log.rbegin();
       undo_it != state->undo_log.rend(); ++undo_it) {
    store_.Restore(undo_it->first, undo_it->second);
  }
  protocol_->OnFinish(txn, TxnOutcome::kAborted);
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kSiteAbort, txn.value(),
                   config_.id.value(), state->global.value());
  }
  if (recorder_ != nullptr) {
    recorder_->RecordFinish(txn, TxnOutcome::kAborted, std::nullopt);
  }
  // Fail the blocked operation's caller, if any.
  if (state->pending_op.has_value()) {
    OpCallback cb = std::move(state->pending_cb);
    state->pending_op.reset();
    loop_->Schedule(0, [cb = std::move(cb), txn]() {
      cb(Status::TransactionAborted(ToString(txn) + " aborted while blocked"),
         0);
    });
  }
}

void LocalDbms::AbortTransaction(TxnId txn, const std::string& reason) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;  // Already gone.
  (void)reason;
  ++abort_count_;
  DoAbort(txn, &it->second);
  txns_.erase(it);
}

void LocalDbms::Crash() {
  down_ = true;
  ++crash_count_;
  ++abort_count_;
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kCrash, -1, config_.id.value(),
                   static_cast<int64_t>(txns_.size()));
  }
  // Abort every active transaction; uncommitted in-place writes roll back,
  // committed data stands (the store is our "stable storage").
  std::vector<TxnId> active;
  active.reserve(txns_.size());
  for (const auto& [txn, state] : txns_) active.push_back(txn);
  for (TxnId txn : active) {
    auto it = txns_.find(txn);
    if (it == txns_.end()) continue;
    DoAbort(txn, &it->second);
    txns_.erase(it);
  }
}

void LocalDbms::Recover() {
  down_ = false;
  if (trace_ != nullptr) {
    trace_->Record(obs::TraceEventKind::kRecover, -1, config_.id.value());
  }
}

void LocalDbms::ResumeTransaction(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) return;  // Woken after finishing: ignore.
  TxnState& state = it->second;
  if (!state.pending_op.has_value() || state.resume_scheduled) return;
  state.resume_scheduled = true;
  loop_->Schedule(0, [this, txn]() {
    auto resume_it = txns_.find(txn);
    if (resume_it == txns_.end()) return;
    TxnState& resume_state = resume_it->second;
    resume_state.resume_scheduled = false;
    if (!resume_state.pending_op.has_value()) return;
    DataOp op = *resume_state.pending_op;
    OpCallback cb = std::move(resume_state.pending_cb);
    resume_state.pending_op.reset();
    if (trace_ != nullptr) {
      trace_->Record(obs::TraceEventKind::kOpResumed, txn.value(),
                     config_.id.value(), resume_state.global.value(),
                     op.item.value());
    }
    ProcessOp(txn, op, std::move(cb));
  });
}

}  // namespace mdbs::site
