#ifndef MDBS_SITE_LOCAL_DBMS_H_
#define MDBS_SITE_LOCAL_DBMS_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/types.h"
#include "lcc/protocol.h"
#include "obs/trace.h"
#include "sched/schedule.h"
#include "sim/task_runner.h"
#include "storage/kv_store.h"

namespace mdbs::site {

/// Static description of one local DBMS.
struct SiteConfig {
  SiteId id;
  lcc::ProtocolKind protocol = lcc::ProtocolKind::kTwoPhaseLocking;
  /// Virtual service time charged per data operation.
  sim::Time op_service_time = 10;
  /// Virtual service time charged per commit/abort.
  sim::Time commit_service_time = 20;
};

/// A pre-existing, autonomous local DBMS: storage plus one concurrency
/// control protocol, executing operations asynchronously on the simulation
/// event loop. It does not distinguish local transactions from global
/// subtransactions (paper §2.1) — `GlobalTxnId` is threaded through solely
/// for the verification recorder.
///
/// Interface contract (one operation in flight per transaction):
///   Begin -> Submit* -> Commit | Abort
/// Each Submit/Commit answers exactly once through its callback, possibly
/// after blocking delays, with OK or TransactionAborted.
class LocalDbms : public lcc::ProtocolHost {
 public:
  /// Callback for a data operation: status plus the value observed (reads)
  /// or installed (writes).
  using OpCallback = std::function<void(const Status&, int64_t value)>;
  using TxnCallback = std::function<void(const Status&)>;

  /// `loop` is this site's strand: the simulation loop, or — in threaded
  /// mode — the site's own RealStrand. All state-touching work runs there;
  /// Submit/Commit/Abort only post to it and are safe from any thread.
  LocalDbms(const SiteConfig& config, sim::TaskRunner* loop,
            sched::ScheduleRecorder* recorder);
  ~LocalDbms() override = default;

  LocalDbms(const LocalDbms&) = delete;
  LocalDbms& operator=(const LocalDbms&) = delete;

  SiteId id() const { return config_.id; }
  lcc::ProtocolKind protocol_kind() const { return config_.protocol; }
  const lcc::ConcurrencyControl& protocol() const { return *protocol_; }

  /// Forwards invariant auditing to the protocol (no-op for protocols
  /// without an audit surface).
  void EnableAudit(audit::Auditor* auditor) { protocol_->EnableAudit(auditor); }

  /// Records site lifecycle events (begin/commit/abort, blocked operations,
  /// crashes) into `sink` (nullptr disables) and forwards to the protocol
  /// for its lock-wait / wound / validation events.
  void EnableTrace(obs::TraceSink* sink) {
    trace_ = sink;
    protocol_->EnableTrace(sink, config_.id);
  }

  /// Starts a transaction. `global` is invalid for purely local ones.
  Status Begin(TxnId txn, GlobalTxnId global);

  /// Submits one data operation. The callback fires through the event loop
  /// after at least `op_service_time`, later if the protocol blocks it.
  void Submit(TxnId txn, const DataOp& op, OpCallback cb);

  /// Requests commit; the protocol may still reject (OCC validation).
  void Commit(TxnId txn, TxnCallback cb);

  /// Client-initiated abort; always succeeds.
  void Abort(TxnId txn, TxnCallback cb);

  /// Crashes the site: every active transaction aborts (in-place writes are
  /// rolled back — committed state survives, as from stable storage), and
  /// until Recover() all requests are refused with TransactionAborted.
  /// Models the failure mode the paper defers to future work.
  void Crash();
  void Recover();
  bool IsDown() const { return down_; }
  int64_t crash_count() const { return crash_count_; }

  /// True while `txn` is active (begun, not finished).
  bool IsActive(TxnId txn) const { return txns_.contains(txn); }

  /// Direct store access for test setup and invariant checks; bypasses
  /// concurrency control, so only use it while the site is quiescent.
  int64_t UnsafePeek(DataItemId item) const { return store_.Get(item); }
  void UnsafePoke(DataItemId item, int64_t value) { store_.Put(item, value); }

  // ProtocolHost:
  void ResumeTransaction(TxnId txn) override;
  void AbortTransaction(TxnId txn, const std::string& reason) override;

  /// Counters: blocked operation instances, protocol-initiated aborts.
  int64_t blocked_count() const { return blocked_count_; }
  int64_t abort_count() const { return abort_count_; }

 private:
  struct TxnState {
    GlobalTxnId global;
    /// Blocked operation awaiting resume, if any.
    std::optional<DataOp> pending_op;
    OpCallback pending_cb;
    bool resume_scheduled = false;
    /// Undo log for in-place protocols (item, before-image) in apply order.
    std::vector<std::pair<DataItemId, int64_t>> undo_log;
    /// Deferred-write buffer (OCC/MVTO): last value per item + apply order.
    std::unordered_map<DataItemId, int64_t> write_buffer;
    std::vector<DataItemId> write_order;
  };

  void ProcessOp(TxnId txn, const DataOp& op, OpCallback cb);
  void ProcessCommit(TxnId txn, TxnCallback cb);

  /// Applies the operation (visibility per protocol), records it, and
  /// returns the value read/written.
  int64_t ApplyOp(TxnId txn, TxnState* state, const DataOp& op);

  /// Rolls back and finishes the transaction as aborted.
  void DoAbort(TxnId txn, TxnState* state);

  SiteConfig config_;
  sim::TaskRunner* loop_;
  sched::ScheduleRecorder* recorder_;
  obs::TraceSink* trace_ = nullptr;
  storage::KvStore store_;
  std::unique_ptr<lcc::ConcurrencyControl> protocol_;
  std::unordered_map<TxnId, TxnState> txns_;
  /// Multiversion sites: value an item had before its first committed
  /// write — the "initial version" readers with very old timestamps must
  /// observe after the store has moved on.
  std::unordered_map<DataItemId, int64_t> mv_initial_images_;
  bool down_ = false;
  int64_t crash_count_ = 0;
  int64_t blocked_count_ = 0;
  int64_t abort_count_ = 0;
};

/// Factory for the protocol implementations in src/lcc.
std::unique_ptr<lcc::ConcurrencyControl> MakeProtocol(lcc::ProtocolKind kind,
                                                      lcc::ProtocolHost* host);

}  // namespace mdbs::site

#endif  // MDBS_SITE_LOCAL_DBMS_H_
