#ifndef MDBS_SITE_LOCAL_DBMS_H_
#define MDBS_SITE_LOCAL_DBMS_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/types.h"
#include "lcc/protocol.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/schedule.h"
#include "sim/task_runner.h"
#include "storage/kv_store.h"
#include "storage/log_device.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace mdbs::site {

/// Static description of one local DBMS.
struct SiteConfig {
  SiteId id;
  lcc::ProtocolKind protocol = lcc::ProtocolKind::kTwoPhaseLocking;
  /// Virtual service time charged per data operation.
  sim::Time op_service_time = 10;
  /// Virtual service time charged per commit/abort.
  sim::Time commit_service_time = 20;
  /// Durability. With `durable` set the site keeps a write-ahead log (every
  /// commit is logged before its ack leaves the site) plus periodic fuzzy
  /// checkpoints; Crash() then honestly wipes the volatile store and
  /// Recover() replays the log. Without it, crashes keep the legacy model:
  /// the in-memory store doubles as stable storage.
  bool durable = false;
  /// Non-checkpoint log records between fuzzy checkpoints (0 = never).
  /// Count-based so both engines checkpoint at identical log positions.
  int64_t checkpoint_interval = 256;
  /// Modeled replay latency: recovery holds the site down for
  /// `recovery_base_time + recovery_time_per_record * replayed records`.
  /// Zero (the default) makes a durable run byte-identical to a
  /// non-durable run of the same seed — the chaos tests' differential
  /// oracle — while non-zero values make recovery time vs checkpoint
  /// interval measurable (EXPERIMENTS E13).
  sim::Time recovery_base_time = 0;
  sim::Time recovery_time_per_record = 0;
  /// The log's backing device; defaults to a fresh in-memory device. A
  /// FileLogDevice persists across process restarts (mdbsim --wal_dir=).
  std::shared_ptr<storage::LogDevice> wal_device;
  /// When to force the device to stable storage (mdbsim --wal_fsync=).
  storage::WalSyncConfig wal_sync;
};

/// Per-site durability counters, summed into the driver report.
struct SiteDurabilityStats {
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t checkpoints = 0;
  int64_t recoveries = 0;
  int64_t replay_records = 0;
  int64_t replay_bytes = 0;
  int64_t redo_writes = 0;
  int64_t undone_writes = 0;
  /// Modeled ticks spent replaying, summed over recoveries.
  int64_t recovery_ticks = 0;
  /// Sync barriers forced by the flush policy (`--wal_fsync=`).
  int64_t wal_syncs = 0;
};

/// A pre-existing, autonomous local DBMS: storage plus one concurrency
/// control protocol, executing operations asynchronously on the simulation
/// event loop. It does not distinguish local transactions from global
/// subtransactions (paper §2.1) — `GlobalTxnId` is threaded through solely
/// for the verification recorder.
///
/// Interface contract (one operation in flight per transaction):
///   Begin -> Submit* -> Commit | Abort
/// Each Submit/Commit answers exactly once through its callback, possibly
/// after blocking delays, with OK or TransactionAborted.
class LocalDbms : public lcc::ProtocolHost {
 public:
  /// Callback for a data operation: status plus the value observed (reads)
  /// or installed (writes).
  using OpCallback = std::function<void(const Status&, int64_t value)>;
  using TxnCallback = std::function<void(const Status&)>;

  /// `loop` is this site's strand: the simulation loop, or — in threaded
  /// mode — the site's own RealStrand. All state-touching work runs there;
  /// Submit/Commit/Abort only post to it and are safe from any thread.
  LocalDbms(const SiteConfig& config, sim::TaskRunner* loop,
            sched::ScheduleRecorder* recorder);
  ~LocalDbms() override = default;

  LocalDbms(const LocalDbms&) = delete;
  LocalDbms& operator=(const LocalDbms&) = delete;

  SiteId id() const { return config_.id; }
  lcc::ProtocolKind protocol_kind() const { return config_.protocol; }
  const lcc::ConcurrencyControl& protocol() const { return *protocol_; }

  /// Forwards invariant auditing to the protocol (no-op for protocols
  /// without an audit surface). Remembered so a protocol instance rebuilt
  /// by durable recovery is re-audited.
  void EnableAudit(audit::Auditor* auditor) {
    auditor_ = auditor;
    protocol_->EnableAudit(auditor);
  }

  /// Records site lifecycle events (begin/commit/abort, blocked operations,
  /// crashes) into `sink` (nullptr disables) and forwards to the protocol
  /// for its lock-wait / wound / validation events.
  void EnableTrace(obs::TraceSink* sink) {
    trace_ = sink;
    protocol_->EnableTrace(sink, config_.id);
  }

  /// Reports durable-recovery replay windows to the always-on metrics
  /// engine (nullptr disables), so parked global transactions overlapping a
  /// replay are attributed to the recovery phase instead of plain parking.
  void EnableMetrics(obs::MetricsEngine* engine) { metrics_ = engine; }

  /// Starts a transaction. `global` is invalid for purely local ones.
  Status Begin(TxnId txn, GlobalTxnId global);

  /// Submits one data operation. The callback fires through the event loop
  /// after at least `op_service_time`, later if the protocol blocks it.
  void Submit(TxnId txn, const DataOp& op, OpCallback cb);

  /// Requests commit; the protocol may still reject (OCC validation).
  void Commit(TxnId txn, TxnCallback cb);

  /// Client-initiated abort; always succeeds.
  void Abort(TxnId txn, TxnCallback cb);

  /// Crashes the site: every active transaction aborts, and until Recover()
  /// all requests are refused with TransactionAborted. Non-durable sites
  /// roll back in-place writes and keep committed state (the in-memory
  /// store doubles as stable storage); durable sites lose ALL volatile
  /// state — store, protocol, transaction table — keeping only the log.
  /// Models the failure mode the paper defers to future work.
  void Crash();
  /// Brings the site back. Durable sites replay the log first (ARIES-style
  /// analysis/redo/undo, see storage::RecoverWal), stay down for the
  /// modeled replay time, and resume with committed data intact and the
  /// protocol clock fast-forwarded past every pre-crash serialization key.
  void Recover();
  bool IsDown() const { return down_; }
  int64_t crash_count() const { return crash_count_; }

  bool durable() const { return config_.durable; }
  SiteDurabilityStats durability_stats() const {
    SiteDurabilityStats stats = durability_stats_;
    if (wal_ != nullptr) {
      stats.wal_records = wal_->records_written();
      stats.wal_bytes = wal_->bytes_written();
      stats.wal_syncs = wal_->syncs();
    }
    return stats;
  }
  /// The log's backing device (null when not durable); tests snapshot,
  /// truncate and corrupt it.
  storage::LogDevice* wal_device() { return wal_device_.get(); }

  /// True while `txn` is active (begun, not finished).
  bool IsActive(TxnId txn) const { return txns_.contains(txn); }

  /// Direct store access for test setup and invariant checks; bypasses
  /// concurrency control, so only use it while the site is quiescent.
  int64_t UnsafePeek(DataItemId item) const { return store_.Get(item); }
  void UnsafePoke(DataItemId item, int64_t value) { store_.Put(item, value); }

  // ProtocolHost:
  void ResumeTransaction(TxnId txn) override;
  void AbortTransaction(TxnId txn, const std::string& reason) override;

  /// Counters: blocked operation instances, protocol-initiated aborts.
  int64_t blocked_count() const { return blocked_count_; }
  int64_t abort_count() const { return abort_count_; }

 private:
  struct TxnState {
    GlobalTxnId global;
    /// Blocked operation awaiting resume, if any.
    std::optional<DataOp> pending_op;
    OpCallback pending_cb;
    bool resume_scheduled = false;
    /// Undo log for in-place protocols (item, before-image) in apply order.
    std::vector<std::pair<DataItemId, int64_t>> undo_log;
    /// Deferred-write buffer (OCC/MVTO): last value per item + apply order.
    std::unordered_map<DataItemId, int64_t> write_buffer;
    std::vector<DataItemId> write_order;
  };

  void ProcessOp(TxnId txn, const DataOp& op, OpCallback cb);
  void ProcessCommit(TxnId txn, TxnCallback cb);

  /// Applies the operation (visibility per protocol), records it, and
  /// returns the value read/written.
  int64_t ApplyOp(TxnId txn, TxnState* state, const DataOp& op);

  /// Rolls back and finishes the transaction as aborted.
  void DoAbort(TxnId txn, TxnState* state);

  /// Appends a fuzzy checkpoint when `checkpoint_interval` non-checkpoint
  /// records accumulated since the last one. No-op when not durable.
  void MaybeCheckpoint();

  /// Durable restart: replays the log, reinstalls the store / writer map /
  /// mv images, rebuilds the protocol with its clock fast-forwarded, and
  /// reseeds multiversion versions. Returns the replay result for the
  /// caller's trace/delay handling. Crashes the process on log corruption —
  /// a durable site cannot silently diverge.
  storage::RecoveredState ReplayAndInstall();

  SiteConfig config_;
  sim::TaskRunner* loop_;
  sched::ScheduleRecorder* recorder_;
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsEngine* metrics_ = nullptr;
  audit::Auditor* auditor_ = nullptr;
  storage::KvStore store_;
  std::unique_ptr<lcc::ConcurrencyControl> protocol_;
  std::unordered_map<TxnId, TxnState> txns_;
  /// Every transaction committed here. Makes Commit idempotent: the durable
  /// GTM forward-rolls its commit fan-out after its own crash, so a site can
  /// legitimately see Commit twice for one sub-transaction. Persisted in
  /// checkpoints and rebuilt by replay on durable sites; survives a
  /// non-durable crash like the store does.
  std::unordered_set<TxnId> committed_txns_;
  /// Multiversion sites: value an item had before its first committed
  /// write — the "initial version" readers with very old timestamps must
  /// observe after the store has moved on.
  std::unordered_map<DataItemId, int64_t> mv_initial_images_;
  /// Durable mode: last committed writer per item, persisted in checkpoints
  /// and rebuilt by replay (reseeds multiversion protocols on recovery).
  std::unordered_map<DataItemId, TxnId> last_writer_;
  struct MvLatest {
    int64_t wts = 0;
    TxnId writer;
    int64_t value = 0;
  };
  /// Durable multiversion sites: latest committed version per item in
  /// TIMESTAMP order, which commit order (`store_`, `last_writer_`) can
  /// disagree with when a lower-timestamped writer commits later. The
  /// protocol's readers are reseeded from this table on recovery; seeding
  /// the commit-order value would serve a version the pre-crash site never
  /// did and break serializability.
  std::unordered_map<DataItemId, MvLatest> mv_latest_;
  std::shared_ptr<storage::LogDevice> wal_device_;
  std::unique_ptr<storage::WalWriter> wal_;
  SiteDurabilityStats durability_stats_;
  bool down_ = false;
  int64_t crash_count_ = 0;
  int64_t blocked_count_ = 0;
  int64_t abort_count_ = 0;
};

/// Factory for the protocol implementations in src/lcc.
std::unique_ptr<lcc::ConcurrencyControl> MakeProtocol(lcc::ProtocolKind kind,
                                                      lcc::ProtocolHost* host);

}  // namespace mdbs::site

#endif  // MDBS_SITE_LOCAL_DBMS_H_
