#ifndef MDBS_AUDIT_AUDIT_H_
#define MDBS_AUDIT_AUDIT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mdbs::audit {

/// Compile-time master switch. `-DMDBS_AUDIT=OFF` at configure time compiles
/// every audit hook down to a constant-false branch; with the default ON the
/// hooks exist and are toggled per component at runtime via AuditConfig.
#ifdef MDBS_AUDIT_ENABLED
inline constexpr bool kAuditCompiledIn = true;
#else
inline constexpr bool kAuditCompiledIn = false;
#endif

/// Runtime toggles of the invariant auditor. One instance travels from the
/// top-level configuration (MdbsConfig::audit) into every hooked component.
struct AuditConfig {
  /// Master runtime switch; defaults to on whenever the hooks are compiled
  /// in. Benchmarks turn it off — auditing is for correctness runs.
  bool enabled = kAuditCompiledIn;
  /// Abort the process on the first violation (the behavior tests want:
  /// fail at the faulty act, with the witness in the log, not thousands of
  /// events later). Mutation tests collect instead.
  bool fail_fast = true;
  /// Re-check the released-operation discipline of the scheme on every
  /// ser release (Schemes 0-3: cond must genuinely hold at act time).
  bool check_release_discipline = true;
  /// Maintain the abstract ser(S) graph across released ser operations and
  /// re-check acyclicity incrementally (Theorems 1-3).
  bool check_ser_graph = true;
  /// Run the scheme's structural self-check (TSG/TSGD/queue consistency)
  /// after every act.
  bool check_scheme_structure = true;
  /// Lock-table consistency + waits-for acyclicity after every lock event.
  bool check_lock_table = true;
  /// End-of-run oracle (local CSR, serialization-key property, strictness,
  /// global CSR) after a driver run.
  bool run_oracle = true;
  /// Violations stored beyond this count are counted but not retained.
  int64_t max_stored_violations = 64;
};

/// One detected invariant violation: which invariant, a human-readable
/// account, and (when the invariant is a graph property) the witness cycle
/// as a sequence of node keys.
struct AuditViolation {
  /// Stable invariant identifier, e.g. "conservative-discipline",
  /// "ser-graph-acyclic", "scheme-structure", "lock-table".
  std::string invariant;
  std::string message;
  std::vector<int64_t> witness;
  /// Transaction on whose behalf the violating event executed — under
  /// threaded execution, the transaction the reporting thread was serving.
  /// Makes concurrent stress failures attributable without decoding the
  /// witness; -1 when no single transaction owns the event (end-of-run
  /// oracle findings).
  int64_t offending_txn = -1;

  std::string ToString() const;
};

/// Collects violations, logs each through common/logging, and — in
/// fail-fast mode — aborts the process so tests fail at the faulty event.
/// Report and the read accessors are serialized by an internal mutex: one
/// auditor is shared by the GTM strand and every site strand (lock-table
/// audits) under threaded execution.
class Auditor {
 public:
  Auditor() = default;
  explicit Auditor(AuditConfig config) : config_(config) {}

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  /// Records `violation`. Logs at Error level; aborts when fail_fast.
  void Report(AuditViolation violation);

  bool clean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_reported_ == 0;
  }
  int64_t total_reported() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_reported_;
  }
  /// Only safe once no thread is reporting (post-run) — the reference
  /// outlives the lock.
  const std::vector<AuditViolation>& violations() const {
    return violations_;
  }
  /// Violations recorded for `invariant`.
  int64_t CountFor(const std::string& invariant) const;

  void Clear();

  const AuditConfig& config() const { return config_; }
  AuditConfig& mutable_config() { return config_; }

  /// Process-wide fail-fast instance, used by components whose owner did
  /// not supply an auditor of its own.
  static Auditor* Default();

 private:
  mutable std::mutex mu_;
  AuditConfig config_;
  std::vector<AuditViolation> violations_;
  int64_t total_reported_ = 0;
};

}  // namespace mdbs::audit

#endif  // MDBS_AUDIT_AUDIT_H_
