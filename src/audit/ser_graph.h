#ifndef MDBS_AUDIT_SER_GRAPH_H_
#define MDBS_AUDIT_SER_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mdbs::audit {

/// Incremental auditor of the abstract ser(S) graph (paper §3): every pair
/// of ser operations at a site conflicts, so the order in which the GTM
/// releases ser operations at each site induces edges between global
/// transactions, and the union over sites must stay acyclic for the
/// schedule of serialization functions to be serializable (Theorems 1-2).
///
/// Conservative schemes (Theorems 3, 5, 8) promise this by construction;
/// the auditor re-derives it independently from the release events alone.
/// A transaction is removed when it finishes — new edges only ever point
/// *into* newly released operations, so a finished transaction can no
/// longer join a cycle and forgetting it keeps the graph bounded by the
/// number of in-flight transactions.
class SerGraphAudit {
 public:
  /// Records the release of ser(txn @ site): adds an edge prior -> txn for
  /// every transaction previously released at `site` and still active.
  /// Returns a witness cycle (txn keys, first == last) when an added edge
  /// closes one, nullopt otherwise. The offending edges are still added so
  /// auditing can continue after a report.
  std::optional<std::vector<int64_t>> RecordRelease(int64_t txn,
                                                    int64_t site);

  /// Forgets `txn` (finished or aborted); no-op when unknown.
  void RemoveTxn(int64_t txn);

  size_t ActiveTxnCount() const { return txn_sites_.size(); }
  size_t EdgeCount() const { return edge_count_; }
  bool HasEdge(int64_t from, int64_t to) const;

 private:
  /// DFS from `from` towards `target`; fills `path` with the node sequence
  /// from -> ... -> target when found.
  bool FindPath(int64_t from, int64_t target,
                std::unordered_set<int64_t>* visited,
                std::vector<int64_t>* path) const;

  std::unordered_map<int64_t, std::unordered_set<int64_t>> adj_;
  std::unordered_map<int64_t, std::unordered_set<int64_t>> radj_;
  /// Release order per site, restricted to active transactions.
  std::unordered_map<int64_t, std::vector<int64_t>> site_released_;
  /// Sites each active transaction was released at (for removal).
  std::unordered_map<int64_t, std::unordered_set<int64_t>> txn_sites_;
  size_t edge_count_ = 0;
};

}  // namespace mdbs::audit

#endif  // MDBS_AUDIT_SER_GRAPH_H_
