#include "audit/ser_graph.h"

#include <algorithm>

namespace mdbs::audit {

bool SerGraphAudit::FindPath(int64_t from, int64_t target,
                             std::unordered_set<int64_t>* visited,
                             std::vector<int64_t>* path) const {
  path->push_back(from);
  if (from == target) return true;
  if (visited->insert(from).second) {
    auto it = adj_.find(from);
    if (it != adj_.end()) {
      for (int64_t next : it->second) {
        if (FindPath(next, target, visited, path)) return true;
      }
    }
  }
  path->pop_back();
  return false;
}

std::optional<std::vector<int64_t>> SerGraphAudit::RecordRelease(
    int64_t txn, int64_t site) {
  std::optional<std::vector<int64_t>> witness;
  std::vector<int64_t>& order = site_released_[site];
  for (int64_t prior : order) {
    if (prior == txn || adj_[prior].contains(txn)) continue;
    // Adding prior -> txn closes a cycle iff txn already reaches prior.
    if (!witness.has_value()) {
      std::unordered_set<int64_t> visited;
      std::vector<int64_t> path;
      if (FindPath(txn, prior, &visited, &path)) {
        path.push_back(txn);  // prior -> txn closes the cycle.
        witness = std::move(path);
      }
    }
    adj_[prior].insert(txn);
    radj_[txn].insert(prior);
    ++edge_count_;
  }
  if (std::find(order.begin(), order.end(), txn) == order.end()) {
    order.push_back(txn);
  }
  txn_sites_[txn].insert(site);
  return witness;
}

void SerGraphAudit::RemoveTxn(int64_t txn) {
  auto sites_it = txn_sites_.find(txn);
  if (sites_it == txn_sites_.end()) return;
  for (int64_t site : sites_it->second) {
    auto order_it = site_released_.find(site);
    if (order_it == site_released_.end()) continue;
    std::vector<int64_t>& order = order_it->second;
    order.erase(std::remove(order.begin(), order.end(), txn), order.end());
    if (order.empty()) site_released_.erase(order_it);
  }
  txn_sites_.erase(sites_it);
  if (auto it = adj_.find(txn); it != adj_.end()) {
    for (int64_t succ : it->second) {
      radj_[succ].erase(txn);
      --edge_count_;
    }
    adj_.erase(it);
  }
  if (auto it = radj_.find(txn); it != radj_.end()) {
    for (int64_t pred : it->second) {
      adj_[pred].erase(txn);
      --edge_count_;
    }
    radj_.erase(it);
  }
}

bool SerGraphAudit::HasEdge(int64_t from, int64_t to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.contains(to);
}

}  // namespace mdbs::audit
