#include "audit/audit.h"

#include <sstream>

#include "common/logging.h"

namespace mdbs::audit {

std::string AuditViolation::ToString() const {
  std::ostringstream os;
  os << "[" << invariant << "]";
  if (offending_txn >= 0) os << " txn=" << offending_txn;
  os << " " << message;
  if (!witness.empty()) {
    os << " witness:";
    for (int64_t node : witness) os << " " << node;
  }
  return os.str();
}

void Auditor::Report(AuditViolation violation) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_reported_;
  MDBS_LOG(Error) << "audit violation: " << violation.ToString();
  MDBS_CHECK(!config_.fail_fast)
      << "audit fail-fast: " << violation.ToString();
  if (static_cast<int64_t>(violations_.size()) <
      config_.max_stored_violations) {
    violations_.push_back(std::move(violation));
  }
}

int64_t Auditor::CountFor(const std::string& invariant) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t count = 0;
  for (const AuditViolation& v : violations_) {
    if (v.invariant == invariant) ++count;
  }
  return count;
}

void Auditor::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  violations_.clear();
  total_reported_ = 0;
}

Auditor* Auditor::Default() {
  static Auditor* instance = new Auditor();
  return instance;
}

}  // namespace mdbs::audit
