#ifndef MDBS_COMMON_LOGGING_H_
#define MDBS_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>

namespace mdbs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Receives every emitted log line (already formatted, newline-terminated).
/// `level` allows sinks to route/filter; the line carries the standard
/// prefix: "[LEVEL timestamp tid file:line] message".
using LogSink = std::function<void(LogLevel level, const std::string& line)>;

/// Replaces the process-wide sink (default: one locked write to stderr per
/// line, so threaded-engine lines never interleave). Pass nullptr to
/// restore the default. Thread-safe against concurrent logging: the sink
/// pointer is swapped atomically (acquire/release), so worker strands
/// logging mid-swap see either the old or the new sink, never a torn one.
/// Each installed sink is intentionally kept alive for the process
/// lifetime (sinks are swapped a handful of times per run, so the leak is
/// bounded) — freeing the old sink would race a logger still invoking it.
void SetLogSink(LogSink sink);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

/// Swallows log statements below the active level without evaluating the
/// streamed expressions' insertion.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace mdbs

#define MDBS_LOG(level)                                                \
  if (::mdbs::LogLevel::k##level < ::mdbs::GetLogLevel()) {            \
  } else                                                               \
    ::mdbs::internal_logging::LogMessage(::mdbs::LogLevel::k##level,   \
                                         __FILE__, __LINE__)           \
        .stream()

/// Fatal invariant check: logs and aborts when `cond` is false. Used for
/// internal invariants that indicate bugs, never for user errors.
#define MDBS_CHECK(cond)                                                    \
  if (cond) {                                                               \
  } else                                                                    \
    ::mdbs::internal_logging::LogMessage(::mdbs::LogLevel::kError,          \
                                         __FILE__, __LINE__, /*fatal=*/true) \
        .stream()                                                           \
        << "Check failed: " #cond " "

#endif  // MDBS_COMMON_LOGGING_H_
