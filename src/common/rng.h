#ifndef MDBS_COMMON_RNG_H_
#define MDBS_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mdbs {

/// Deterministic 64-bit PRNG (xoshiro256**). All randomness in the library
/// flows through explicitly seeded instances so every experiment is
/// reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each component its
  /// own stream so adding randomness in one place does not perturb others.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Zipf(theta) sampler over {0, ..., n-1} using the classic Gray et al.
/// rejection-free method with precomputed constants. theta = 0 is uniform.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace mdbs

#endif  // MDBS_COMMON_RNG_H_
