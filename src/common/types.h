#ifndef MDBS_COMMON_TYPES_H_
#define MDBS_COMMON_TYPES_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "common/ids.h"

namespace mdbs {

/// Kind of a data operation executed at a local DBMS.
enum class OpType { kRead, kWrite };

inline const char* OpTypeName(OpType type) {
  return type == OpType::kRead ? "r" : "w";
}

/// A single read or write on a data item. Values are opaque 64-bit payloads;
/// reads carry the value observed, writes the value installed.
struct DataOp {
  OpType type = OpType::kRead;
  DataItemId item;
  int64_t value = 0;  // Ignored for reads at submission time.

  static DataOp Read(DataItemId item) {
    return DataOp{OpType::kRead, item, 0};
  }
  static DataOp Write(DataItemId item, int64_t value) {
    return DataOp{OpType::kWrite, item, value};
  }

  bool ConflictsWith(const DataOp& other) const {
    return item == other.item &&
           (type == OpType::kWrite || other.type == OpType::kWrite);
  }

  std::string ToString() const {
    std::string s = OpTypeName(type);
    s += "[" + mdbs::ToString(item);
    if (type == OpType::kWrite) s += "=" + std::to_string(value);
    s += "]";
    return s;
  }
};

inline std::ostream& operator<<(std::ostream& os, const DataOp& op) {
  return os << op.ToString();
}

/// How a transaction finished at a local DBMS.
enum class TxnOutcome { kActive, kCommitted, kAborted };

inline const char* TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kActive:
      return "active";
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kAborted:
      return "aborted";
  }
  return "?";
}

}  // namespace mdbs

#endif  // MDBS_COMMON_TYPES_H_
