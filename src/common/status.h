#ifndef MDBS_COMMON_STATUS_H_
#define MDBS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace mdbs {

/// Error taxonomy for the MDBS library. Public APIs never throw; they return
/// `Status` (or `StatusOr<T>`) in the style of Arrow/RocksDB.
enum class StatusCode {
  kOk = 0,
  /// The request referenced an entity that does not exist.
  kNotFound,
  /// The request is malformed or violates an API precondition.
  kInvalidArgument,
  /// The operation cannot run in the current state (e.g. operation on a
  /// transaction that already committed).
  kFailedPrecondition,
  /// The local DBMS aborted the transaction (deadlock victim, timestamp
  /// violation, SGT cycle, failed optimistic validation). Retryable.
  kTransactionAborted,
  /// An internal invariant was violated; indicates a bug.
  kInternal,
};

/// Returns a short human-readable name ("OK", "NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status TransactionAborted(std::string msg) {
    return Status(StatusCode::kTransactionAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsTransactionAborted() const {
    return code_ == StatusCode::kTransactionAborted;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. `value()` must only be
/// called when `ok()`.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mdbs

/// Propagates a non-OK Status from an expression to the caller.
#define MDBS_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::mdbs::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (false)

#endif  // MDBS_COMMON_STATUS_H_
