#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>

namespace mdbs {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Microseconds since the first log statement — short, monotonic, and
/// directly comparable to the threaded engine's NowTicks() timebase.
int64_t MicrosSinceStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Small per-thread number (registration order), far more readable than
/// the hashed std::thread::id.
int64_t ThisThreadNumber() {
  static std::atomic<int64_t> next{0};
  thread_local int64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

void DefaultSink(LogLevel /*level*/, const std::string& line) {
  // One locked write per line: site strands, GTM strand and client threads
  // log concurrently, and partial-line interleaving makes traces useless.
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

/// Current sink, nullptr meaning DefaultSink. An atomic pointer rather
/// than a mutable std::function: ~LogMessage runs on every worker strand,
/// and assigning a std::function while another thread invokes it is a data
/// race (torn reads of the function's storage).
std::atomic<const LogSink*>& GlobalSinkPtr() {
  static std::atomic<const LogSink*> sink{nullptr};
  return sink;
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  const LogSink* next =
      sink != nullptr ? new LogSink(std::move(sink)) : nullptr;
  // The previous sink is intentionally never freed: a concurrent logger may
  // hold it past this store. Sinks are installed a handful of times per
  // process, so the leak is bounded.
  GlobalSinkPtr().store(next, std::memory_order_release);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  int64_t micros = MicrosSinceStart();
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s %lld.%06llds t%lld %s:%d] ",
                LevelName(level_),
                static_cast<long long>(micros / 1'000'000),
                static_cast<long long>(micros % 1'000'000),
                static_cast<long long>(ThisThreadNumber()), base, line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  const LogSink* sink = GlobalSinkPtr().load(std::memory_order_acquire);
  if (sink != nullptr) {
    (*sink)(level_, stream_.str());
  } else {
    DefaultSink(level_, stream_.str());
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace mdbs
