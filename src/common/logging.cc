#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>

namespace mdbs {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Microseconds since the first log statement — short, monotonic, and
/// directly comparable to the threaded engine's NowTicks() timebase.
int64_t MicrosSinceStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Small per-thread number (registration order), far more readable than
/// the hashed std::thread::id.
int64_t ThisThreadNumber() {
  static std::atomic<int64_t> next{0};
  thread_local int64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

void DefaultSink(LogLevel /*level*/, const std::string& line) {
  // One locked write per line: site strands, GTM strand and client threads
  // log concurrently, and partial-line interleaving makes traces useless.
  std::lock_guard<std::mutex> lock(SinkMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

LogSink& GlobalSink() {
  static LogSink sink = DefaultSink;
  return sink;
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  GlobalSink() = sink != nullptr ? std::move(sink) : DefaultSink;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  int64_t micros = MicrosSinceStart();
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s %lld.%06llds t%lld %s:%d] ",
                LevelName(level_),
                static_cast<long long>(micros / 1'000'000),
                static_cast<long long>(micros % 1'000'000),
                static_cast<long long>(ThisThreadNumber()), base, line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  GlobalSink()(level_, stream_.str());
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace mdbs
