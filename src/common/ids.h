#ifndef MDBS_COMMON_IDS_H_
#define MDBS_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace mdbs {

/// Strongly-typed integral identifier. `Tag` only distinguishes types;
/// it is never instantiated.
template <typename Tag>
class Id {
 public:
  constexpr Id() : value_(kInvalidValue) {}
  constexpr explicit Id(int64_t value) : value_(value) {}

  constexpr bool valid() const { return value_ != kInvalidValue; }
  constexpr int64_t value() const { return value_; }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << Tag::Prefix() << "<invalid>";
    return os << Tag::Prefix() << id.value_;
  }

 private:
  static constexpr int64_t kInvalidValue = -1;
  int64_t value_;
};

struct SiteTag {
  static constexpr const char* Prefix() { return "s"; }
};
struct TxnTag {
  static constexpr const char* Prefix() { return "T"; }
};
struct GlobalTxnTag {
  static constexpr const char* Prefix() { return "G"; }
};
struct DataItemTag {
  static constexpr const char* Prefix() { return "x"; }
};

/// Identifies a local DBMS site (the paper's s_k).
using SiteId = Id<SiteTag>;
/// Identifies a transaction as seen by one local DBMS (a local transaction or
/// one global subtransaction).
using TxnId = Id<TxnTag>;
/// Identifies a global transaction across the whole MDBS (the paper's G_i).
using GlobalTxnId = Id<GlobalTxnTag>;
/// Identifies a data item within a site.
using DataItemId = Id<DataItemTag>;

template <typename Tag>
std::string ToString(Id<Tag> id) {
  if (!id.valid()) return std::string(Tag::Prefix()) + "<invalid>";
  return std::string(Tag::Prefix()) + std::to_string(id.value());
}

}  // namespace mdbs

namespace std {
template <typename Tag>
struct hash<mdbs::Id<Tag>> {
  size_t operator()(mdbs::Id<Tag> id) const noexcept {
    return std::hash<int64_t>()(id.value());
  }
};
}  // namespace std

#endif  // MDBS_COMMON_IDS_H_
