#include "common/status.h"

namespace mdbs {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTransactionAborted:
      return "TransactionAborted";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mdbs
