#ifndef MDBS_FAULT_INJECTOR_H_
#define MDBS_FAULT_INJECTOR_H_

#include <mutex>

#include "common/rng.h"
#include "fault/fault_plan.h"
#include "sim/task_runner.h"

namespace mdbs::fault {

/// The fate the injector assigns to one message (a request on its way to a
/// site, or a response on its way back to the GTM).
struct MessageFate {
  /// Message never arrives. GTM1's attempt timeout is the recovery path.
  bool lost = false;
  /// Message arrives twice (at-least-once delivery); the receiver's dedup
  /// guard must suppress the second copy.
  bool duplicated = false;
  /// Extra network delay on top of the configured hop latency (gray
  /// failure); applies to every delivered copy.
  sim::Time extra_delay = 0;
  /// Lag of the duplicate copy behind the first, when duplicated.
  sim::Time duplicate_lag = 0;
};

/// Counters of everything the fault layer actually did during a run. The
/// dedup counter is fed back by the receiving side (Mdbs), the rest by the
/// injector itself.
struct FaultStats {
  int64_t requests_lost = 0;
  int64_t responses_lost = 0;
  int64_t duplicates_injected = 0;
  int64_t duplicates_suppressed = 0;
  int64_t delay_spikes = 0;
  int64_t plan_crashes = 0;

  std::string ToString() const;
};

/// Draws per-message fates from one seeded stream. Thread-safe: in threaded
/// mode the GTM strand draws request fates while site strands draw response
/// fates concurrently. In the simulator every draw happens on the single
/// event-loop thread in event order, so a (plan, seed) pair replays
/// byte-for-byte.
class FaultInjector {
 public:
  /// `fallback_seed` is used when the plan's own seed is 0, so the stream
  /// follows the run seed unless pinned explicitly.
  FaultInjector(const FaultPlan& plan, uint64_t fallback_seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Fate of a begin/data request (loss applies with request_loss).
  MessageFate RequestFate() {
    return DrawFate(plan_.request_loss, true, true);
  }
  /// Fate of a begin/data response (loss applies with response_loss).
  MessageFate ResponseFate() {
    return DrawFate(plan_.response_loss, false, true);
  }
  /// Fate of a health probe leg: loss + spikes, never duplicated (probes
  /// are idempotent, duplicating them proves nothing).
  MessageFate ProbeFate(bool request);

  /// Called by a receiver's dedup guard when it suppressed a duplicate.
  void CountSuppressedDuplicate();
  /// Called when a scheduled plan crash fires.
  void CountPlanCrash();

  FaultStats stats() const;

 private:
  MessageFate DrawFate(double loss_probability, bool request,
                       bool allow_duplicate);

  const FaultPlan plan_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultStats stats_;
};

}  // namespace mdbs::fault

#endif  // MDBS_FAULT_INJECTOR_H_
