#ifndef MDBS_FAULT_FAULT_PLAN_H_
#define MDBS_FAULT_FAULT_PLAN_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "sim/task_runner.h"

namespace mdbs::fault {

/// One scheduled site crash: the site goes down at `at` and recovers
/// `duration` ticks later. Committed state survives (stable storage);
/// everything active at the site aborts.
struct CrashEvent {
  SiteId site;
  sim::Time at = 0;
  sim::Time duration = 0;

  friend bool operator==(const CrashEvent&, const CrashEvent&) = default;
};

/// One scheduled GTM crash: the global transaction manager loses all
/// volatile state at `at` and starts recovery (WAL replay, then resume)
/// `duration` ticks later. Requires a durable GTM — armed plans are
/// validated against the multidatabase config and rejected loudly when the
/// GTM has no log to replay.
struct GtmCrashEvent {
  sim::Time at = 0;
  sim::Time duration = 0;

  friend bool operator==(const GtmCrashEvent&, const GtmCrashEvent&) = default;
};

/// One scheduled GTM failover: the primary GTM crashes at `at` and — after
/// `duration` ticks of detection delay — the warm standby is promoted in
/// its place (fenced takeover, see gtm::Gtm1::Promote). Requires both a
/// durable GTM and a configured standby; at most one per plan, and never
/// mixed with gtm_crash directives (the fenced old primary must stay dead —
/// recovering it alongside the promoted standby would be split brain).
struct GtmFailoverEvent {
  sim::Time at = 0;
  sim::Time duration = 0;

  friend bool operator==(const GtmFailoverEvent&,
                         const GtmFailoverEvent&) = default;
};

/// A crash sweep over every site, resolved against the actual site count
/// when the multidatabase is built: site i crashes at `first_at + i * gap`
/// for `duration` ticks.
struct SweepEvent {
  sim::Time first_at = 0;
  sim::Time gap = 0;
  sim::Time duration = 0;

  friend bool operator==(const SweepEvent&, const SweepEvent&) = default;
};

/// A deterministic, seedable fault-injection plan for one run. The plan has
/// two layers:
///   - scheduled crashes (`crashes`, `sweeps`): armed when the multidatabase
///     is built, so the same plan reproduces the same outage windows
///     tick-for-tick in the simulator;
///   - per-message fault rates, drawn from one seeded stream by the
///     FaultInjector: request loss, response loss, duplicate delivery
///     (at-least-once networks) and delay spikes (gray failure — the message
///     arrives, late).
/// The paper defers failures to future work; this plan is the knob that
/// brings them in without giving up replayability.
struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<SweepEvent> sweeps;
  std::vector<GtmCrashEvent> gtm_crashes;
  std::vector<GtmFailoverEvent> gtm_failovers;
  /// Probability a begin/data request is lost before reaching the site.
  double request_loss = 0;
  /// Probability the site's response is lost on the way back.
  double response_loss = 0;
  /// Probability a delivered message arrives twice (dedup guards at both
  /// receivers keep delivery effectively exactly-once).
  double duplicate = 0;
  /// Probability a delivered message is delayed by an extra uniform
  /// [1, spike_ticks] ticks (gray-failure slowdown).
  double delay_spike = 0;
  sim::Time spike_ticks = 0;
  /// Seed for the injector's message-fate stream. 0 means "derive from the
  /// multidatabase seed", so a plan embedded in a config stays reproducible
  /// without repeating the seed.
  uint64_t seed = 0;

  /// True when the plan injects nothing.
  bool Empty() const;

  /// True when any message-level fault rate is set.
  bool HasMessageFaults() const;

  /// Canonical spec string; ParseFaultPlan(ToSpec()) round-trips.
  std::string ToSpec() const;

  /// A plan that crashes every one of `num_sites` sites exactly once:
  /// site i goes down at `first_at + i * gap` for `duration` ticks. The
  /// acceptance scenario of the failure-recovery tests.
  static FaultPlan CrashSweep(int num_sites, sim::Time first_at, sim::Time gap,
                              sim::Time duration);
};

/// Parses a fault-plan spec. `text` is either the spec itself or the path of
/// a file holding it (detected by attempting to open it). Directives are
/// separated by ';' (or newlines in a file):
///   crash@T:sN:D   crash site N at tick T for D ticks
///   sweep@T:G:D    crash every site once: site i at T + i*G for D ticks
///                  (expanded against the actual site count at build time)
///   gtm_crash@T:D  crash the GTM at tick T; recovery starts D ticks later
///                  (durable GTM only — rejected otherwise at build time)
///   gtm_failover@T:D  crash the primary GTM at tick T; promote the warm
///                  standby D ticks later (durable GTM + standby only; at
///                  most one per plan, never mixed with gtm_crash)
///   req_loss=P     drop requests with probability P
///   resp_loss=P    drop responses with probability P
///   dup=P          duplicate delivered messages with probability P
///   spike=P:D      delay delivered messages by up to D extra ticks, prob P
///   seed=S         message-fate stream seed (default: the run's seed)
/// Example: "sweep@2000:3000:1500;req_loss=0.02;dup=0.01;spike=0.05:200"
StatusOr<FaultPlan> ParseFaultPlan(const std::string& text);

/// Expands the plan's sweeps against `num_sites` into concrete CrashEvents
/// (appended to `crashes`, sweeps cleared). Crash events are returned sorted
/// by (at, site) so arming order is deterministic.
FaultPlan ResolveSweeps(const FaultPlan& plan, int num_sites);

/// Checks the plan against the target configuration. A plan with
/// gtm_crash directives is only runnable when the GTM is durable — a
/// non-durable GTM has no log to replay, so "crash and recover it" would
/// silently drop every in-flight global transaction. gtm_failover
/// additionally requires a configured warm standby, allows at most one
/// failover per plan (there is one standby to promote), and must not be
/// mixed with gtm_crash (the fenced old primary must stay dead). Fails
/// loudly instead of degrading.
Status ValidatePlanForConfig(const FaultPlan& plan, bool gtm_durable,
                             bool gtm_standby);

}  // namespace mdbs::fault

#endif  // MDBS_FAULT_FAULT_PLAN_H_
