#include "fault/injector.h"

#include <sstream>

namespace mdbs::fault {

std::string FaultStats::ToString() const {
  std::ostringstream os;
  os << "req_lost=" << requests_lost << " resp_lost=" << responses_lost
     << " dups=" << duplicates_injected
     << " dups_suppressed=" << duplicates_suppressed
     << " spikes=" << delay_spikes << " plan_crashes=" << plan_crashes;
  return os.str();
}

FaultInjector::FaultInjector(const FaultPlan& plan, uint64_t fallback_seed)
    : plan_(plan),
      rng_((plan.seed != 0 ? plan.seed : fallback_seed) ^
           0xd1b54a32d192ed03ULL) {}

MessageFate FaultInjector::DrawFate(double loss_probability, bool request,
                                    bool allow_duplicate) {
  MessageFate fate;
  if (loss_probability <= 0 && plan_.duplicate <= 0 && plan_.delay_spike <= 0) {
    return fate;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Draw every coin unconditionally so the stream consumed per message is
  // fixed — replays stay aligned even if one probability is zero.
  bool lose = rng_.NextBernoulli(loss_probability);
  bool dup = rng_.NextBernoulli(plan_.duplicate);
  bool spike = rng_.NextBernoulli(plan_.delay_spike);
  sim::Time spike_ticks =
      plan_.spike_ticks > 0
          ? static_cast<sim::Time>(
                1 + rng_.NextBelow(static_cast<uint64_t>(plan_.spike_ticks)))
          : 0;
  if (lose) {
    fate.lost = true;
    ++(request ? stats_.requests_lost : stats_.responses_lost);
    return fate;
  }
  if (dup && allow_duplicate) {
    fate.duplicated = true;
    fate.duplicate_lag = 1 + spike_ticks;
    ++stats_.duplicates_injected;
  }
  if (spike) {
    fate.extra_delay = spike_ticks;
    ++stats_.delay_spikes;
  }
  return fate;
}

MessageFate FaultInjector::ProbeFate(bool request) {
  return DrawFate(request ? plan_.request_loss : plan_.response_loss, request,
                  /*allow_duplicate=*/false);
}

void FaultInjector::CountSuppressedDuplicate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.duplicates_suppressed;
}

void FaultInjector::CountPlanCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.plan_crashes;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mdbs::fault
