#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mdbs::fault {

namespace {

/// Splits on any of ';' and '\n', trimming surrounding whitespace and
/// dropping empty tokens and '#'-comments (file specs may be commented).
std::vector<std::string> SplitDirectives(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  auto flush = [&]() {
    size_t begin = current.find_first_not_of(" \t\r");
    size_t end = current.find_last_not_of(" \t\r");
    if (begin != std::string::npos && current[begin] != '#') {
      out.push_back(current.substr(begin, end - begin + 1));
    }
    current.clear();
  };
  for (char c : text) {
    if (c == ';' || c == '\n') {
      flush();
    } else {
      current.push_back(c);
    }
  }
  flush();
  return out;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseTicks(const std::string& s, sim::Time* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size() && *out >= 0;
}

std::vector<std::string> SplitColons(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t colon = s.find(':', start);
    parts.push_back(s.substr(start, colon == std::string::npos
                                        ? colon
                                        : colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  return parts;
}

Status ParseOneDirective(const std::string& token, FaultPlan* plan) {
  auto malformed = [&token]() {
    return Status::InvalidArgument("malformed fault directive '" + token +
                                   "'");
  };
  if (token.rfind("crash@", 0) == 0) {
    // crash@T:sN:D
    std::vector<std::string> parts = SplitColons(token.substr(6));
    sim::Time at = 0;
    sim::Time duration = 0;
    if (parts.size() != 3 || !ParseTicks(parts[0], &at) ||
        parts[1].size() < 2 || parts[1][0] != 's' ||
        !ParseTicks(parts[2], &duration) || duration <= 0) {
      return malformed();
    }
    sim::Time site = 0;
    if (!ParseTicks(parts[1].substr(1), &site)) return malformed();
    plan->crashes.push_back(CrashEvent{SiteId(site), at, duration});
    return Status::OK();
  }
  if (token.rfind("gtm_crash@", 0) == 0) {
    // gtm_crash@T:D
    std::vector<std::string> parts = SplitColons(token.substr(10));
    GtmCrashEvent event;
    if (parts.size() != 2 || !ParseTicks(parts[0], &event.at) ||
        !ParseTicks(parts[1], &event.duration) || event.duration <= 0) {
      return malformed();
    }
    plan->gtm_crashes.push_back(event);
    return Status::OK();
  }
  if (token.rfind("gtm_failover@", 0) == 0) {
    // gtm_failover@T:D
    std::vector<std::string> parts = SplitColons(token.substr(13));
    GtmFailoverEvent event;
    if (parts.size() != 2 || !ParseTicks(parts[0], &event.at) ||
        !ParseTicks(parts[1], &event.duration) || event.duration <= 0) {
      return malformed();
    }
    plan->gtm_failovers.push_back(event);
    return Status::OK();
  }
  if (token.rfind("sweep@", 0) == 0) {
    // sweep@T:G:D
    std::vector<std::string> parts = SplitColons(token.substr(6));
    SweepEvent sweep;
    if (parts.size() != 3 || !ParseTicks(parts[0], &sweep.first_at) ||
        !ParseTicks(parts[1], &sweep.gap) ||
        !ParseTicks(parts[2], &sweep.duration) || sweep.duration <= 0) {
      return malformed();
    }
    plan->sweeps.push_back(sweep);
    return Status::OK();
  }
  size_t eq = token.find('=');
  if (eq == std::string::npos) return malformed();
  std::string key = token.substr(0, eq);
  std::string value = token.substr(eq + 1);
  double p = 0;
  if (key == "req_loss" || key == "resp_loss" || key == "dup") {
    if (!ParseDouble(value, &p) || p < 0 || p > 1) return malformed();
    if (key == "req_loss") plan->request_loss = p;
    if (key == "resp_loss") plan->response_loss = p;
    if (key == "dup") plan->duplicate = p;
    return Status::OK();
  }
  if (key == "spike") {
    // spike=P:D
    size_t colon = value.find(':');
    if (colon == std::string::npos) return malformed();
    sim::Time ticks = 0;
    if (!ParseDouble(value.substr(0, colon), &p) || p < 0 || p > 1 ||
        !ParseTicks(value.substr(colon + 1), &ticks) || ticks <= 0) {
      return malformed();
    }
    plan->delay_spike = p;
    plan->spike_ticks = ticks;
    return Status::OK();
  }
  if (key == "seed") {
    char* end = nullptr;
    plan->seed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size()) {
      return malformed();
    }
    return Status::OK();
  }
  return malformed();
}

}  // namespace

bool FaultPlan::Empty() const {
  return crashes.empty() && sweeps.empty() && gtm_crashes.empty() &&
         gtm_failovers.empty() && !HasMessageFaults();
}

bool FaultPlan::HasMessageFaults() const {
  return request_loss > 0 || response_loss > 0 || duplicate > 0 ||
         delay_spike > 0;
}

std::string FaultPlan::ToSpec() const {
  std::ostringstream os;
  const char* sep = "";
  for (const CrashEvent& c : crashes) {
    os << sep << "crash@" << c.at << ":s" << c.site.value() << ":"
       << c.duration;
    sep = ";";
  }
  for (const SweepEvent& s : sweeps) {
    os << sep << "sweep@" << s.first_at << ":" << s.gap << ":" << s.duration;
    sep = ";";
  }
  for (const GtmCrashEvent& g : gtm_crashes) {
    os << sep << "gtm_crash@" << g.at << ":" << g.duration;
    sep = ";";
  }
  for (const GtmFailoverEvent& f : gtm_failovers) {
    os << sep << "gtm_failover@" << f.at << ":" << f.duration;
    sep = ";";
  }
  if (request_loss > 0) {
    os << sep << "req_loss=" << request_loss;
    sep = ";";
  }
  if (response_loss > 0) {
    os << sep << "resp_loss=" << response_loss;
    sep = ";";
  }
  if (duplicate > 0) {
    os << sep << "dup=" << duplicate;
    sep = ";";
  }
  if (delay_spike > 0) {
    os << sep << "spike=" << delay_spike << ":" << spike_ticks;
    sep = ";";
  }
  if (seed != 0) os << sep << "seed=" << seed;
  return os.str();
}

FaultPlan FaultPlan::CrashSweep(int num_sites, sim::Time first_at,
                                sim::Time gap, sim::Time duration) {
  FaultPlan plan;
  for (int i = 0; i < num_sites; ++i) {
    plan.crashes.push_back(
        CrashEvent{SiteId(i), first_at + i * gap, duration});
  }
  return plan;
}

StatusOr<FaultPlan> ParseFaultPlan(const std::string& text) {
  // A spec that names a readable file is read from the file; directives
  // never contain '/' or look like paths, so the probe is unambiguous
  // enough for a CLI.
  std::string spec = text;
  {
    std::ifstream file(text);
    if (file) {
      std::ostringstream content;
      content << file.rdbuf();
      spec = content.str();
    }
  }
  FaultPlan plan;
  for (const std::string& token : SplitDirectives(spec)) {
    MDBS_RETURN_IF_ERROR(ParseOneDirective(token, &plan));
  }
  return plan;
}

FaultPlan ResolveSweeps(const FaultPlan& plan, int num_sites) {
  FaultPlan resolved = plan;
  resolved.sweeps.clear();
  for (const SweepEvent& sweep : plan.sweeps) {
    for (int i = 0; i < num_sites; ++i) {
      resolved.crashes.push_back(CrashEvent{
          SiteId(i), sweep.first_at + i * sweep.gap, sweep.duration});
    }
  }
  std::sort(resolved.crashes.begin(), resolved.crashes.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.site.value() < b.site.value();
            });
  return resolved;
}

Status ValidatePlanForConfig(const FaultPlan& plan, bool gtm_durable,
                             bool gtm_standby) {
  if (!plan.gtm_crashes.empty() && !gtm_durable) {
    return Status::InvalidArgument(
        "fault plan schedules a gtm_crash but the GTM is not durable: a "
        "non-durable GTM cannot replay its state, so recovery would drop "
        "every in-flight global transaction; enable GTM durability "
        "(--gtm_durable) or remove the gtm_crash directive");
  }
  for (const GtmCrashEvent& event : plan.gtm_crashes) {
    if (event.duration <= 0) {
      return Status::InvalidArgument("gtm_crash outage must be positive");
    }
  }
  if (!plan.gtm_failovers.empty()) {
    if (!gtm_durable) {
      return Status::InvalidArgument(
          "fault plan schedules a gtm_failover but the GTM is not durable: "
          "warm-standby promotion replays the primary's WAL tail, so there "
          "must be a WAL; enable GTM durability (--gtm_durable)");
    }
    if (!gtm_standby) {
      return Status::InvalidArgument(
          "fault plan schedules a gtm_failover but no warm standby is "
          "configured; enable it (--gtm_standby) or remove the directive");
    }
    if (plan.gtm_failovers.size() > 1) {
      return Status::InvalidArgument(
          "fault plan schedules more than one gtm_failover, but there is "
          "exactly one standby to promote");
    }
    if (!plan.gtm_crashes.empty()) {
      return Status::InvalidArgument(
          "fault plan mixes gtm_failover with gtm_crash: after a failover "
          "the fenced old primary must stay dead, so a scheduled "
          "crash-and-recover of 'the GTM' is ambiguous at best and split "
          "brain at worst; use one or the other");
    }
  }
  for (const GtmFailoverEvent& event : plan.gtm_failovers) {
    if (event.duration <= 0) {
      return Status::InvalidArgument(
          "gtm_failover detection delay must be positive");
    }
  }
  return Status::OK();
}

}  // namespace mdbs::fault
