#include "sim/event_loop.h"

#include "common/logging.h"

namespace mdbs::sim {

void EventLoop::Schedule(Time delay, Callback cb) {
  MDBS_CHECK(delay >= 0) << "negative delay " << delay;
  ScheduleAt(now_ + delay, std::move(cb));
}

void EventLoop::ScheduleAt(Time at, Callback cb) {
  MDBS_CHECK(at >= now_) << "scheduling in the past: " << at << " < " << now_;
  queue_.push(Event{at, next_seq_++, std::move(cb)});
}

int64_t EventLoop::Run() {
  int64_t count = 0;
  while (RunOne()) ++count;
  return count;
}

int64_t EventLoop::RunUntil(Time deadline) {
  int64_t count = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    RunOne();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool EventLoop::RunOne() {
  if (queue_.empty()) return false;
  // Moving out of the priority queue requires a const_cast because top() is
  // const; the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.at;
  event.cb();
  return true;
}

}  // namespace mdbs::sim
