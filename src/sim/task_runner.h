#ifndef MDBS_SIM_TASK_RUNNER_H_
#define MDBS_SIM_TASK_RUNNER_H_

#include <cstdint>
#include <functional>

namespace mdbs::sim {

/// Virtual time in abstract "ticks". The discrete-event simulator advances
/// it event by event; the threaded engine equates one tick with one real
/// microsecond, so configurations (service times, think times, timeouts)
/// carry over between the two execution modes unchanged.
using Time = int64_t;

/// Where a component runs its deferred work. Every component of the stack
/// (local DBMS, GTM, the network hops between them) schedules all of its
/// state-touching continuations on exactly one TaskRunner — its "strand".
/// Two implementations exist:
///   - sim::EventLoop: the single-threaded deterministic simulator; every
///     strand is the same loop, so all callbacks trivially serialize.
///   - sim::RealStrand: a worker thread draining a timed task queue; one
///     strand per site plus one for the GTM gives real parallelism while
///     each component's state stays single-threaded.
/// `Schedule` is safe to call from any thread on a RealStrand; the returned
/// ordering guarantee is FIFO among tasks with equal due times, so message
/// order between a fixed (sender strand, receiver strand) pair with a fixed
/// delay is preserved — the property the GTM relies on for ser_k delivery.
class TaskRunner {
 public:
  using Callback = std::function<void()>;

  virtual ~TaskRunner() = default;

  /// Current time on this strand's clock (virtual ticks or real
  /// microseconds since the multidatabase started).
  virtual Time now() const = 0;

  /// Runs `cb` on this strand `delay` ticks from now (delay >= 0).
  virtual void Schedule(Time delay, Callback cb) = 0;
};

}  // namespace mdbs::sim

#endif  // MDBS_SIM_TASK_RUNNER_H_
