#ifndef MDBS_SIM_EVENT_LOOP_H_
#define MDBS_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/task_runner.h"

namespace mdbs::sim {

/// Deterministic discrete-event simulation loop. Events scheduled for the
/// same time fire in scheduling order (a monotone sequence number breaks
/// ties), so a run is a pure function of its inputs and seeds. As the
/// TaskRunner of every component in simulation mode, it serializes the whole
/// multidatabase on the calling thread.
class EventLoop : public TaskRunner {
 public:
  EventLoop() = default;
  ~EventLoop() override = default;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.
  Time now() const override { return now_; }

  /// Schedules `cb` to run `delay` ticks from now (delay >= 0).
  void Schedule(Time delay, Callback cb) override;

  /// Schedules `cb` at absolute time `at` (>= now()).
  void ScheduleAt(Time at, Callback cb);

  /// Runs events until the queue drains. Returns the number of events run.
  int64_t Run();

  /// Runs events until the queue drains or virtual time would exceed
  /// `deadline`; events after the deadline remain queued.
  int64_t RunUntil(Time deadline);

  /// Runs a single event if one is pending. Returns false when idle.
  bool RunOne();

  bool idle() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    int64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  int64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mdbs::sim

#endif  // MDBS_SIM_EVENT_LOOP_H_
