#ifndef MDBS_SIM_REAL_STRAND_H_
#define MDBS_SIM_REAL_STRAND_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/task_runner.h"

namespace mdbs::sim {

/// Shared real-time clock for a family of strands: microseconds since its
/// construction, measured on the steady clock. All strands of one
/// multidatabase share a ticker so their `now()` values are comparable (the
/// recorder's timestamps, response-time measurements).
class RealTicker {
 public:
  RealTicker() : epoch_(std::chrono::steady_clock::now()) {}

  Time NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  std::chrono::steady_clock::time_point ToTimePoint(Time at) const {
    return epoch_ + std::chrono::microseconds(at);
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// A TaskRunner backed by one worker thread draining a timed task queue —
/// the threaded engine's unit of mutual exclusion. Tasks run strictly one
/// at a time on the worker, so state touched only from one strand needs no
/// further locking; `Schedule` may be called from any thread. Due tasks run
/// in (due time, submission order), matching EventLoop's tie-breaking, so a
/// sender posting two tasks with the same delay is guaranteed in-order
/// delivery — the property GTM2's ser_k release order relies on.
class RealStrand final : public TaskRunner {
 public:
  /// `ticker` must outlive the strand. `name` labels the worker for logs.
  RealStrand(const RealTicker* ticker, std::string name);

  /// Stops the worker (discarding queued tasks) if Stop was not called.
  ~RealStrand() override;

  RealStrand(const RealStrand&) = delete;
  RealStrand& operator=(const RealStrand&) = delete;

  Time now() const override { return ticker_->NowMicros(); }

  /// Thread-safe; `cb` runs on the worker no earlier than `delay`
  /// microseconds from now. Tasks scheduled after Stop are dropped.
  void Schedule(Time delay, Callback cb) override;

  /// True when no task is executing and nothing is due before `horizon`
  /// (absolute ticker time). Used by the shutdown sweep: once every strand
  /// is quiescent beyond a horizon and no external thread is submitting,
  /// only far-future timers (stale attempt timeouts) remain.
  bool QuiescentBeyond(Time horizon) const;

  /// Finishes the in-flight task, discards the rest of the queue, and joins
  /// the worker. Idempotent. After Stop the object is inert: pending and
  /// future Schedule calls are dropped.
  void Stop();

  /// Tasks executed so far (approximate while running; exact after Stop).
  int64_t executed() const;

  /// Tasks currently queued (due or timed). A sampled snapshot — the
  /// observability backlog gauge in threaded runs.
  int64_t PendingTasks() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int64_t>(queue_.size());
  }

 private:
  struct Task {
    Time at;
    int64_t seq;
    Callback cb;
  };
  /// Min-heap order on (at, seq) for std::push_heap/pop_heap.
  struct Later {
    bool operator()(const Task& a, const Task& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void ThreadMain();

  const RealTicker* ticker_;
  std::string name_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Task> queue_;  // Heap ordered by Later.
  int64_t next_seq_ = 0;
  bool stopping_ = false;
  bool running_task_ = false;
  int64_t executed_ = 0;

  std::thread worker_;
};

}  // namespace mdbs::sim

#endif  // MDBS_SIM_REAL_STRAND_H_
