#include "sim/real_strand.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace mdbs::sim {

RealStrand::RealStrand(const RealTicker* ticker, std::string name)
    : ticker_(ticker), name_(std::move(name)) {
  MDBS_CHECK(ticker_ != nullptr);
  worker_ = std::thread([this]() { ThreadMain(); });
}

RealStrand::~RealStrand() { Stop(); }

void RealStrand::Schedule(Time delay, Callback cb) {
  MDBS_CHECK(delay >= 0) << "negative delay on strand " << name_;
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return;
  queue_.push_back(Task{ticker_->NowMicros() + delay, next_seq_++,
                        std::move(cb)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  cv_.notify_all();
}

bool RealStrand::QuiescentBeyond(Time horizon) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_task_) return false;
  return queue_.empty() || queue_.front().at > horizon;
}

void RealStrand::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second caller: fall through to join below only if the first caller
      // already joined; joining twice is invalid.
    }
    stopping_ = true;
    cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
}

int64_t RealStrand::executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

void RealStrand::ThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    if (queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    Time due = queue_.front().at;
    if (due > ticker_->NowMicros()) {
      cv_.wait_until(lock, ticker_->ToTimePoint(due));
      continue;
    }
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Task task = std::move(queue_.back());
    queue_.pop_back();
    running_task_ = true;
    lock.unlock();
    task.cb();
    lock.lock();
    running_task_ = false;
    ++executed_;
  }
}

}  // namespace mdbs::sim
