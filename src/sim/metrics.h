#ifndef MDBS_SIM_METRICS_H_
#define MDBS_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdbs::sim {

/// Fixed-bucket log-linear histogram (HDR-style) over non-negative integer
/// values. Each power-of-two octave [2^m, 2^(m+1)) is split into
/// kSubBucketCount linear sub-buckets, so values below kSubBucketCount*2
/// are counted exactly and larger values with relative error at most
/// 1/kSubBucketCount (~1.6%). Record() is allocation-free after the first
/// call and touches exactly one bucket; Merge() is a bucket-wise add, which
/// is what lets per-thread shards be combined at drain time without any
/// hot-path synchronization.
class LogLinearHistogram {
 public:
  static constexpr int kSubBucketBits = 6;
  static constexpr int64_t kSubBucketCount = int64_t{1} << kSubBucketBits;
  /// Highest octave: positive int64 values have msb <= 62.
  static constexpr int kMaxOctave = 62;
  static constexpr size_t kBucketCount = static_cast<size_t>(
      kSubBucketCount + (kMaxOctave - kSubBucketBits + 1) * kSubBucketCount);

  /// Counts `value` (negatives clamp to 0). Allocation-free once the bucket
  /// array exists.
  void Record(int64_t value);

  /// Bucket-wise add of another histogram.
  void Merge(const LogLinearHistogram& other);

  int64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Value at (possibly fractional) rank `pos` in [0, total-1], linearly
  /// interpolated within the containing bucket. For values inside the exact
  /// region this reproduces sorted-vector interpolation exactly.
  double ValueAtRank(double pos) const;

  /// Bucket geometry (index space is identical for every instance).
  static size_t BucketIndex(int64_t value);
  static int64_t BucketLower(size_t index);
  /// Exclusive upper bound of the bucket.
  static int64_t BucketUpper(size_t index);

  /// Calls fn(lower, upper_exclusive, count) for every non-empty bucket in
  /// increasing value order.
  template <typename Fn>
  void ForEachNonEmpty(Fn&& fn) const {
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] != 0) fn(BucketLower(i), BucketUpper(i), buckets_[i]);
    }
  }

 private:
  /// Lazily sized to kBucketCount on first Record; empty histograms stay
  /// cheap (registries hold many never-touched summaries).
  std::vector<int64_t> buckets_;
  int64_t total_ = 0;
};

/// Streaming summary of a scalar series: exact count/sum/min/max plus
/// quantiles from a LogLinearHistogram over the full series — every
/// observation is counted (no reservoir sampling), so count is exact and
/// quantile error is bounded by the histogram's bucket resolution
/// (exact below 2*kSubBucketCount, <=1/kSubBucketCount relative beyond,
/// p999 included). Fully deterministic: the same insertion multiset yields
/// identical buckets and report bytes regardless of order.
class Summary {
 public:
  void Add(double value);

  /// Combines another summary into this one (bucket-wise histogram add);
  /// how per-thread shards are folded together at drain time.
  void Merge(const Summary& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// q in [0, 1]. Exact for integer-valued series below
  /// 2*LogLinearHistogram::kSubBucketCount; bounded-relative-error beyond.
  /// Results are clamped to [min(), max()], so single-sample and extreme
  /// quantiles stay exact.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }
  double P999() const { return Quantile(0.999); }

  const LogLinearHistogram& histogram() const { return hist_; }

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  LogLinearHistogram hist_;
};

/// Named counters + summaries for one simulation run.
class MetricsRegistry {
 public:
  void Increment(const std::string& name, int64_t delta = 1);
  int64_t Counter(const std::string& name) const;

  void Observe(const std::string& name, double value);
  const Summary* GetSummary(const std::string& name) const;

  /// Installs a fully-populated summary wholesale (overwriting any existing
  /// one) — how run reports adopt summaries built elsewhere, e.g. the
  /// driver's response-time series.
  void Put(const std::string& name, const Summary& summary) {
    summaries_[name] = summary;
  }

  /// Multi-line human-readable dump, sorted by name.
  std::string Report() const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace mdbs::sim

#endif  // MDBS_SIM_METRICS_H_
