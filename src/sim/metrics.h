#ifndef MDBS_SIM_METRICS_H_
#define MDBS_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdbs::sim {

/// Streaming summary of a scalar series: count/mean/min/max plus quantiles
/// from retained samples. Memory is bounded: beyond kReservoirCapacity
/// observations, Algorithm-R reservoir sampling keeps a uniform subset, so a
/// million-transaction run costs the same as a thousand-transaction one.
/// The reservoir RNG is seeded with a fixed constant — given the same
/// insertion order the retained set (and thus every quantile and report
/// byte) is identical, which the determinism tests rely on.
class Summary {
 public:
  /// Retained-sample cap. Below it quantiles are exact; above it they are
  /// estimates over a uniform sample (error ~1/sqrt(4096) ≈ 1.6%).
  static constexpr size_t kReservoirCapacity = 4096;

  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// q in [0, 1]. Exact while count() <= kReservoirCapacity, a reservoir
  /// estimate beyond that. min()/max()/mean() stay exact regardless.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  /// The retained (possibly reservoir-sampled) observations, unordered.
  /// Exporters use this for histograms; do not assume sortedness.
  const std::vector<double>& retained_samples() const { return samples_; }

  std::string ToString() const;

 private:
  /// xorshift64 over rng_state_; cheap and deterministically seeded.
  uint64_t NextRandom();

  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ULL;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Named counters + summaries for one simulation run.
class MetricsRegistry {
 public:
  void Increment(const std::string& name, int64_t delta = 1);
  int64_t Counter(const std::string& name) const;

  void Observe(const std::string& name, double value);
  const Summary* GetSummary(const std::string& name) const;

  /// Installs a fully-populated summary wholesale (overwriting any existing
  /// one) — how run reports adopt summaries built elsewhere, e.g. the
  /// driver's response-time series.
  void Put(const std::string& name, const Summary& summary) {
    summaries_[name] = summary;
  }

  /// Multi-line human-readable dump, sorted by name.
  std::string Report() const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  const std::map<std::string, Summary>& summaries() const {
    return summaries_;
  }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace mdbs::sim

#endif  // MDBS_SIM_METRICS_H_
