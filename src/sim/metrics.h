#ifndef MDBS_SIM_METRICS_H_
#define MDBS_SIM_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mdbs::sim {

/// Streaming summary of a scalar series: count/mean/min/max plus quantiles
/// from retained samples. Small enough for per-experiment use; not intended
/// for unbounded production telemetry.
class Summary {
 public:
  void Add(double value);

  int64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// q in [0, 1]. Exact over retained samples.
  double Quantile(double q) const;
  double Median() const { return Quantile(0.5); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Named counters + summaries for one simulation run.
class MetricsRegistry {
 public:
  void Increment(const std::string& name, int64_t delta = 1);
  int64_t Counter(const std::string& name) const;

  void Observe(const std::string& name, double value);
  const Summary* GetSummary(const std::string& name) const;

  /// Multi-line human-readable dump, sorted by name.
  std::string Report() const;

  const std::map<std::string, int64_t>& counters() const { return counters_; }

 private:
  std::map<std::string, int64_t> counters_;
  std::map<std::string, Summary> summaries_;
};

}  // namespace mdbs::sim

#endif  // MDBS_SIM_METRICS_H_
