#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mdbs::sim {

namespace {

int MostSignificantBit(uint64_t value) {
  int msb = 0;
  while (value >>= 1) ++msb;
  return msb;
}

}  // namespace

size_t LogLinearHistogram::BucketIndex(int64_t value) {
  if (value < 0) value = 0;
  if (value < kSubBucketCount) return static_cast<size_t>(value);
  int msb = MostSignificantBit(static_cast<uint64_t>(value));
  // Octave [2^msb, 2^(msb+1)) split into kSubBucketCount equal sub-buckets
  // of width 2^(msb - kSubBucketBits).
  int64_t sub =
      (value >> (msb - kSubBucketBits)) - kSubBucketCount;  // in [0, 64)
  return static_cast<size_t>(kSubBucketCount +
                             int64_t{msb - kSubBucketBits} * kSubBucketCount +
                             sub);
}

int64_t LogLinearHistogram::BucketLower(size_t index) {
  if (index < static_cast<size_t>(kSubBucketCount)) {
    return static_cast<int64_t>(index);
  }
  size_t slot = index - static_cast<size_t>(kSubBucketCount);
  int octave = static_cast<int>(slot >> kSubBucketBits);  // msb - kSubBucketBits
  int64_t sub = static_cast<int64_t>(slot & (kSubBucketCount - 1));
  return (int64_t{1} << (kSubBucketBits + octave)) + (sub << octave);
}

int64_t LogLinearHistogram::BucketUpper(size_t index) {
  if (index < static_cast<size_t>(kSubBucketCount)) {
    return static_cast<int64_t>(index) + 1;
  }
  size_t slot = index - static_cast<size_t>(kSubBucketCount);
  int octave = static_cast<int>(slot >> kSubBucketBits);
  return BucketLower(index) + (int64_t{1} << octave);
}

void LogLinearHistogram::Record(int64_t value) {
  if (buckets_.empty()) buckets_.resize(kBucketCount, 0);
  ++buckets_[BucketIndex(value)];
  ++total_;
}

void LogLinearHistogram::Merge(const LogLinearHistogram& other) {
  if (other.total_ == 0) return;
  if (buckets_.empty()) buckets_.resize(kBucketCount, 0);
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

double LogLinearHistogram::ValueAtRank(double pos) const {
  if (total_ == 0) return 0.0;
  if (pos < 0) pos = 0;
  if (pos > static_cast<double>(total_ - 1)) {
    pos = static_cast<double>(total_ - 1);
  }
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(cumulative + buckets_[i]) > pos) {
      // Rank `pos` lands inside this bucket; spread the bucket's samples
      // evenly over [lower, upper) and interpolate. For width-1 buckets
      // (the exact region) this reproduces sorted-vector interpolation.
      double frac = (pos - static_cast<double>(cumulative)) /
                    static_cast<double>(buckets_[i]);
      int64_t lower = BucketLower(i);
      int64_t width = BucketUpper(i) - lower;
      return static_cast<double>(lower) + frac * static_cast<double>(width);
    }
    cumulative += buckets_[i];
  }
  return static_cast<double>(BucketUpper(buckets_.size() - 1));
}

void Summary::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  hist_.Record(static_cast<int64_t>(std::floor(value)));
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  hist_.Merge(other.hist_);
}

double Summary::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  double pos = q * static_cast<double>(count_ - 1);
  double value = hist_.ValueAtRank(pos);
  // The histogram floors fractional observations, so pin the result back
  // into the observed range; this also keeps extreme quantiles exact.
  return std::clamp(value, min_, max_);
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " min=" << min()
     << " p50=" << Median() << " p95=" << P95() << " max=" << max();
  return os.str();
}

void MetricsRegistry::Increment(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

int64_t MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  summaries_[name].Add(value);
}

const Summary* MetricsRegistry::GetSummary(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::Report() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, summary] : summaries_) {
    os << name << ": " << summary.ToString() << "\n";
  }
  return os.str();
}

}  // namespace mdbs::sim
