#include "sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mdbs::sim {

uint64_t Summary::NextRandom() {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

void Summary::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (samples_.size() < kReservoirCapacity) {
    samples_.push_back(value);
    sorted_ = false;
    return;
  }
  // Algorithm R: the i-th observation (1-based) replaces a random slot with
  // probability capacity/i, keeping the reservoir a uniform sample.
  uint64_t slot = NextRandom() % static_cast<uint64_t>(count_);
  if (slot < kReservoirCapacity) {
    samples_[slot] = value;
    sorted_ = false;
  }
}

double Summary::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  double pos = q * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<size_t>(std::floor(pos));
  auto hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " min=" << min()
     << " p50=" << Median() << " p95=" << P95() << " max=" << max();
  return os.str();
}

void MetricsRegistry::Increment(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

int64_t MetricsRegistry::Counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  summaries_[name].Add(value);
}

const Summary* MetricsRegistry::GetSummary(const std::string& name) const {
  auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

std::string MetricsRegistry::Report() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, summary] : summaries_) {
    os << name << ": " << summary.ToString() << "\n";
  }
  return os.str();
}

}  // namespace mdbs::sim
