#include "analysis/interference.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mdbs::analysis {

const char* InterferenceCauseName(InterferenceCause cause) {
  switch (cause) {
    case InterferenceCause::kDirect:
      return "direct";
    case InterferenceCause::kIndirect:
      return "indirect";
    case InterferenceCause::kTicket:
      return "ticket";
  }
  return "?";
}

std::string InterferenceEdge::ToString(const TemplateMix& mix) const {
  std::string s = a < mix.templates.size() ? mix.templates[a].name
                                           : std::to_string(a);
  s += " -- ";
  s += b < mix.templates.size() ? mix.templates[b].name : std::to_string(b);
  s += " @" + mdbs::ToString(site);
  s += " (";
  s += InterferenceCauseName(cause);
  s += ")";
  return s;
}

std::string InterferenceGraph::ToString(const TemplateMix& mix) const {
  std::string s;
  for (const InterferenceEdge& edge : edges) {
    s += edge.ToString(mix) + "\n";
  }
  return s;
}

LiftedGraph InterferenceGraph::Lift(size_t template_count,
                                    bool include_ticket_edges) const {
  LiftedGraph lifted;
  for (size_t i = 0; i < template_count; ++i) {
    lifted.graph.AddNode(static_cast<int64_t>(2 * i));
    lifted.graph.AddNode(static_cast<int64_t>(2 * i + 1));
  }
  for (size_t index = 0; index < edges.size(); ++index) {
    const InterferenceEdge& edge = edges[index];
    if (!include_ticket_edges && edge.cause == InterferenceCause::kTicket) {
      continue;
    }
    auto add = [&](size_t u, size_t v) {
      lifted.graph.AddEdge(static_cast<int64_t>(u), static_cast<int64_t>(v),
                           edge.site.value());
      lifted.edge_origin.push_back(index);
    };
    if (edge.a == edge.b) {
      // Self-interference: the two concurrent copies conflict.
      add(2 * edge.a, 2 * edge.a + 1);
    } else {
      // Every distinct copy pair can realize the conflict.
      add(2 * edge.a, 2 * edge.b);
      add(2 * edge.a, 2 * edge.b + 1);
      add(2 * edge.a + 1, 2 * edge.b);
      add(2 * edge.a + 1, 2 * edge.b + 1);
    }
  }
  return lifted;
}

namespace {

// Does the template write any key class at `site`? Then two concurrent
// instances can conflict there (at minimum on the written class).
bool WritesAt(const TxnTemplate& tmpl, SiteId site) {
  for (const TemplateOp& op : tmpl.ops) {
    if (op.site == site && op.type == OpType::kWrite) return true;
  }
  return false;
}

// Can instances of `a` and `b` conflict directly at `site`: a shared key
// class there with at least one side writing it.
bool DirectConflictAt(const TxnTemplate& a, const TxnTemplate& b,
                      SiteId site) {
  for (const TemplateOp& op_a : a.ops) {
    if (op_a.site != site) continue;
    for (const TemplateOp& op_b : b.ops) {
      if (op_b.site != site || op_b.key_class != op_a.key_class) continue;
      if (op_a.type == OpType::kWrite || op_b.type == OpType::kWrite) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

InterferenceGraph BuildInterferenceGraph(
    const TemplateMix& mix, const std::vector<SiteCapability>& matrix) {
  InterferenceGraph graph;
  for (const SiteCapability& cap : matrix) {
    for (size_t i = 0; i < mix.templates.size(); ++i) {
      const TxnTemplate& a = mix.templates[i];
      for (size_t j = i; j < mix.templates.size(); ++j) {
        const TxnTemplate& b = mix.templates[j];
        bool direct = i == j ? WritesAt(a, cap.site)
                             : DirectConflictAt(a, b, cap.site);
        if (direct) {
          graph.edges.push_back(
              InterferenceEdge{i, j, cap.site, InterferenceCause::kDirect});
        }
        bool both_touch = a.TouchesSite(cap.site) && b.TouchesSite(cap.site);
        if (both_touch && mix.local_txns) {
          graph.edges.push_back(
              InterferenceEdge{i, j, cap.site, InterferenceCause::kIndirect});
        }
        if (both_touch && cap.needs_ticket) {
          graph.edges.push_back(
              InterferenceEdge{i, j, cap.site, InterferenceCause::kTicket});
        }
      }
    }
  }
  return graph;
}

}  // namespace mdbs::analysis
