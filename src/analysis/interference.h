#ifndef MDBS_ANALYSIS_INTERFERENCE_H_
#define MDBS_ANALYSIS_INTERFERENCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/capability.h"
#include "analysis/template.h"
#include "sched/graph.h"

namespace mdbs::analysis {

/// Why two template instances may become ordered at a site in some
/// execution.
enum class InterferenceCause {
  /// They access a common key class at the site and at least one writes:
  /// instances can conflict directly.
  kDirect,
  /// Both touch the site and GTM-invisible local transactions run there:
  /// a local transaction can conflict with each and bridge them (the
  /// paper's §3 indirect-conflict scenario).
  kIndirect,
  /// Both touch a ticket site: GTM1 injects a ticket write into each
  /// subtransaction, forcing a write-write conflict regardless of their
  /// declared accesses.
  kTicket,
};

const char* InterferenceCauseName(InterferenceCause cause);

/// One undirected interference edge between two templates (indices into
/// the mix), attributable to one site. `a == b` declares self-interference:
/// two concurrent instances of the same template can become ordered at the
/// site. Deduplicated on (a, b, site, cause); the site labels are what the
/// robustness verdict reasons about.
struct InterferenceEdge {
  size_t a = 0;
  size_t b = 0;
  SiteId site;
  InterferenceCause cause = InterferenceCause::kDirect;

  std::string ToString(const TemplateMix& mix) const;
};

/// The 2-copy instance lift of an interference graph: node 2i and 2i + 1
/// are two concurrent instances of template i, every template edge lifts
/// to all distinct instance pairs, labels are site ids. Two copies suffice:
/// any realizable interference cycle among unboundedly many instances can
/// be folded into one visiting each template at most twice, so the lift's
/// simple cycles are exactly the candidate global ser(S) cycles.
struct LiftedGraph {
  sched::UndirectedMultigraph graph;
  /// Maps each lifted edge (by index into graph.edges()) back to the
  /// interference edge (by index into InterferenceGraph::edges) it lifts.
  std::vector<size_t> edge_origin;
};

/// The static cross-site interference graph of a mix: nodes are templates,
/// edges the possible pairwise instance orderings with their site of
/// origin.
struct InterferenceGraph {
  std::vector<InterferenceEdge> edges;

  /// Builds the 2-copy lift, optionally without the ticket-induced edges —
  /// the certified fast path skips ticket injection, so its verdict must
  /// hold on the graph without them.
  LiftedGraph Lift(size_t template_count, bool include_ticket_edges) const;

  std::string ToString(const TemplateMix& mix) const;
};

/// Builds the interference graph of `mix` over the sites in `matrix`.
InterferenceGraph BuildInterferenceGraph(
    const TemplateMix& mix, const std::vector<SiteCapability>& matrix);

}  // namespace mdbs::analysis

#endif  // MDBS_ANALYSIS_INTERFERENCE_H_
