#include "analysis/template.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace mdbs::analysis {

namespace {

// Non-throwing full-string integer parse; the repo's no-exceptions idiom.
bool ParseInt(const std::string& s, int64_t* out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

// Splits on whitespace; drops everything from '#' to end of line first.
std::vector<std::string> Tokenize(const std::string& line) {
  std::string stripped = line.substr(0, line.find('#'));
  std::istringstream in(stripped);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

// Parses "key=value" into its parts; returns false when '=' is absent.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

StatusOr<TemplateOp> ParseAccess(const std::string& token, int line_no) {
  auto bad = [&](const std::string& why) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": bad access '" + token + "': " + why);
  };
  if (token.size() < 4) return bad("too short");
  OpType type;
  if (token[0] == 'r') {
    type = OpType::kRead;
  } else if (token[0] == 'w') {
    type = OpType::kWrite;
  } else {
    return bad("must start with 'r' or 'w'");
  }
  size_t at = token.find("@s");
  if (at == std::string::npos || at == 1) return bad("expected <class>@s<site>");
  int64_t key_class = 0;
  int64_t site = 0;
  if (!ParseInt(token.substr(1, at - 1), &key_class) ||
      !ParseInt(token.substr(at + 2), &site)) {
    return bad("non-numeric class or site");
  }
  if (key_class < 0 || site < 0) return bad("negative class or site");
  return TemplateOp{SiteId(site), key_class, type};
}

}  // namespace

std::string TemplateOp::ToString() const {
  return std::string(OpTypeName(type)) + std::to_string(key_class) + "@" +
         mdbs::ToString(site);
}

std::vector<SiteId> TxnTemplate::Sites() const {
  std::vector<SiteId> sites;
  for (const TemplateOp& op : ops) {
    bool seen = false;
    for (SiteId site : sites) {
      if (site == op.site) seen = true;
    }
    if (!seen) sites.push_back(op.site);
  }
  return sites;
}

bool TxnTemplate::TouchesSite(SiteId site) const {
  for (const TemplateOp& op : ops) {
    if (op.site == site) return true;
  }
  return false;
}

bool TxnTemplate::ReadOnlyAt(SiteId site) const {
  for (const TemplateOp& op : ops) {
    if (op.site == site && op.type == OpType::kWrite) return false;
  }
  return true;
}

std::string TxnTemplate::ToString() const {
  std::string s = "template " + name;
  char buf[32];
  std::snprintf(buf, sizeof(buf), " weight=%g :", weight);
  s += buf;
  for (const TemplateOp& op : ops) s += " " + op.ToString();
  return s;
}

std::string TemplateMix::ToString() const {
  std::string s = "mix keys_per_class=" + std::to_string(keys_per_class) +
                  " local_txns=" + (local_txns ? "1" : "0") + "\n";
  for (const TxnTemplate& tmpl : templates) s += tmpl.ToString() + "\n";
  return s;
}

StatusOr<TemplateMix> ParseTemplateMix(const std::string& text) {
  TemplateMix mix;
  bool saw_mix_line = false;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     why);
    };
    if (tokens[0] == "mix") {
      if (saw_mix_line) return bad("duplicate mix line");
      saw_mix_line = true;
      for (size_t i = 1; i < tokens.size(); ++i) {
        std::string key, value;
        if (!SplitKeyValue(tokens[i], &key, &value)) {
          return bad("expected key=value, got '" + tokens[i] + "'");
        }
        int64_t number = 0;
        if (!ParseInt(value, &number)) {
          return bad("non-numeric value for '" + key + "'");
        }
        if (key == "keys_per_class") {
          if (number < 1) return bad("keys_per_class must be >=1");
          mix.keys_per_class = number;
        } else if (key == "local_txns") {
          mix.local_txns = number != 0;
        } else {
          return bad("unknown mix option '" + key + "'");
        }
      }
      continue;
    }
    if (tokens[0] != "template") {
      return bad("expected 'template' or 'mix', got '" + tokens[0] + "'");
    }
    if (tokens.size() < 2) return bad("template needs a name");
    TxnTemplate tmpl;
    tmpl.name = tokens[1];
    for (const TxnTemplate& existing : mix.templates) {
      if (existing.name == tmpl.name) {
        return bad("duplicate template name '" + tmpl.name + "'");
      }
    }
    size_t i = 2;
    // Optional weight=<w> before the ':' separator.
    for (; i < tokens.size() && tokens[i] != ":"; ++i) {
      std::string key, value;
      if (!SplitKeyValue(tokens[i], &key, &value) || key != "weight") {
        return bad("expected weight=<w> or ':', got '" + tokens[i] + "'");
      }
      if (!ParseDouble(value, &tmpl.weight)) return bad("non-numeric weight");
      if (!(tmpl.weight > 0)) return bad("weight must be > 0");
    }
    if (i >= tokens.size()) return bad("template needs ': <accesses>'");
    ++i;  // skip ':'
    for (; i < tokens.size(); ++i) {
      StatusOr<TemplateOp> op = ParseAccess(tokens[i], line_no);
      if (!op.ok()) return op.status();
      tmpl.ops.push_back(*op);
    }
    if (tmpl.ops.empty()) return bad("template has no accesses");
    mix.templates.push_back(std::move(tmpl));
  }
  if (mix.templates.empty()) {
    return Status::InvalidArgument("template mix declares no templates");
  }
  return mix;
}

StatusOr<TemplateMix> LoadTemplateMixFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open template file: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ParseTemplateMix(text);
}

size_t SampleTemplate(const TemplateMix& mix, Rng* rng) {
  double total = 0;
  for (const TxnTemplate& tmpl : mix.templates) total += tmpl.weight;
  double draw = rng->NextDouble() * total;
  for (size_t i = 0; i < mix.templates.size(); ++i) {
    draw -= mix.templates[i].weight;
    if (draw < 0) return i;
  }
  return mix.templates.size() - 1;
}

gtm::GlobalTxnSpec Instantiate(const TxnTemplate& tmpl, const TemplateMix& mix,
                               Rng* rng) {
  gtm::GlobalTxnSpec spec;
  for (const TemplateOp& op : tmpl.ops) {
    DataItemId item(op.key_class * mix.keys_per_class +
                    static_cast<int64_t>(
                        rng->NextBelow(static_cast<uint64_t>(mix.keys_per_class))));
    if (op.type == OpType::kRead) {
      spec.ops.push_back(gtm::GlobalOp::Read(op.site, item));
    } else {
      spec.ops.push_back(gtm::GlobalOp::Write(
          op.site, item, static_cast<int64_t>(rng->NextBelow(1'000'000))));
    }
  }
  return spec;
}

}  // namespace mdbs::analysis
