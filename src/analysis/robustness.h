#ifndef MDBS_ANALYSIS_ROBUSTNESS_H_
#define MDBS_ANALYSIS_ROBUSTNESS_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "analysis/capability.h"
#include "analysis/interference.h"
#include "analysis/template.h"
#include "gtm/scheme.h"

namespace mdbs::analysis {

/// One hop of a witness cycle: a template instance (template index plus
/// copy 0/1) and the interference edge ordering it before the next hop's
/// instance. The hops form a closed cycle (the last conflicts with the
/// first).
struct WitnessHop {
  size_t template_index = 0;
  int copy = 0;
  SiteId site;
  InterferenceCause cause = InterferenceCause::kDirect;
};

/// A concrete counter-example shape: a vertex-simple cycle of template
/// instances whose consecutive pairs interfere, spanning at least two
/// sites — the static image of a global ser(S) cycle the GTM would not
/// see without ser-op control. Checkable: every hop's edge must exist in
/// the interference graph and the site labels must not all match.
struct Witness {
  std::vector<WitnessHop> hops;

  /// Distinct sites among the hops.
  std::vector<SiteId> Sites() const;
  std::string ToString(const TemplateMix& mix) const;
};

/// Robustness verdict for one GTM scheme: whether the declared mix stays
/// globally serializable when this scheme's ser-op control is removed.
struct SchemeVerdict {
  gtm::SchemeKind scheme = gtm::SchemeKind::kScheme3;
  bool robust = false;
  /// Present exactly when !robust.
  std::optional<Witness> witness;
};

/// The full analyzer output for one mix over one site configuration.
struct AnalysisReport {
  std::vector<SiteCapability> capabilities;
  /// Interference edges including ticket-induced ones.
  InterferenceGraph graph;

  /// The downgrade decision: running with NO ser-op delays and NO ticket
  /// injection keeps every possible execution of the declared mix globally
  /// serializable. When true, `certificate` names the per-component single
  /// sites; when false, `witness` is the counter-example cycle.
  bool fast_path_robust = false;
  std::string certificate;
  std::optional<Witness> witness;

  /// Per-scheme verdicts. Schemes 0-3 share the fast-path verdict (their
  /// control removed means no ser delays and no tickets); kNone keeps
  /// ticket edges, describing the existing no-control strawman.
  std::vector<SchemeVerdict> per_scheme;

  std::string ToString(const TemplateMix& mix) const;
};

/// Validates that `witness` is checkable against `graph`: a closed
/// instance cycle (no instance repeated, length >= 2) whose every hop is
/// an edge of the graph and whose site labels span >= 2 sites. Used by the
/// fuzz battery and check_trace validation.
bool CheckWitness(const Witness& witness, const InterferenceGraph& graph);

/// Runs the static analysis: capability matrix -> interference graph ->
/// per-scheme robustness verdicts with certificate or witness.
///
/// Decision procedure: on the 2-copy instance lift of the interference
/// graph, the mix is robust iff every connected component's edges carry a
/// single site label. Soundness: a global ser(S) cycle among instances
/// maps onto a closed walk in one lifted component, and a monochromatic
/// component confines the whole cycle to one site, where local CSR (which
/// every site certifies) forbids it. Conversely any component carrying two
/// labels yields a vertex-simple mixed cycle through two differently
/// labeled edges — the emitted witness. The verdict is deliberately
/// conservative: it never reasons about lock-based temporal blocking, so
/// some all-2PL mixes are declared non-robust that rigorous locking would
/// in fact serialize.
AnalysisReport Analyze(const TemplateMix& mix,
                       const std::vector<SiteCapability>& matrix);

}  // namespace mdbs::analysis

#endif  // MDBS_ANALYSIS_ROBUSTNESS_H_
