#ifndef MDBS_ANALYSIS_CAPABILITY_H_
#define MDBS_ANALYSIS_CAPABILITY_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "gtm/serialization_function.h"
#include "lcc/protocol.h"
#include "site/local_dbms.h"

namespace mdbs::analysis {

/// What one site's local protocol certifies, as far as the static analyzer
/// is concerned. Derived purely from the protocol kind — every protocol in
/// src/lcc guarantees local CSR and strictness; the distinctions that
/// matter to robustness are which serialization point GTM1 would use, and
/// whether histories are multiversion (MVSG instead of CSR as the local
/// oracle).
struct SiteCapability {
  SiteId site;
  lcc::ProtocolKind protocol = lcc::ProtocolKind::kTwoPhaseLocking;
  /// Serialization point GTM1 uses at this site (begin / last op / ticket).
  gtm::SerPointKind ser_point = gtm::SerPointKind::kLastOp;
  /// Local histories are guaranteed conflict-serializable (all protocols).
  bool certifies_csr = true;
  /// Strict/rigorous: no dirty reads or dirty overwrites (all protocols).
  bool certifies_strict = true;
  /// Multiversion reads: commit order and version order may diverge from
  /// any single-version conflict order; the local oracle is MVSG.
  bool multiversion = false;
  /// GTM1 must inject ticket writes here (no usable serialization
  /// function, SGT/OCC) — relevant because tickets force write-write
  /// conflicts between every pair of globals touching the site.
  bool needs_ticket = false;

  std::string ToString() const;
};

/// The per-site capability row for `protocol`.
SiteCapability CapabilityFor(SiteId site, lcc::ProtocolKind protocol);

/// Capability rows for a whole MDBS configuration, in site order.
std::vector<SiteCapability> BuildCapabilityMatrix(
    const std::vector<site::SiteConfig>& sites);

}  // namespace mdbs::analysis

#endif  // MDBS_ANALYSIS_CAPABILITY_H_
