#ifndef MDBS_ANALYSIS_TEMPLATE_H_
#define MDBS_ANALYSIS_TEMPLATE_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "gtm/global_txn.h"

namespace mdbs::analysis {

/// One access of a transaction template: a read or write of a symbolic key
/// class at a site. Key classes are disjoint item ranges — two accesses can
/// conflict only when site and key class both match (and one writes).
struct TemplateOp {
  SiteId site;
  int64_t key_class = 0;
  OpType type = OpType::kRead;

  std::string ToString() const;
};

/// A declared global-transaction shape: an ordered list of key-class
/// accesses over sites, as submitted by the application mix. The runtime
/// instantiates it by drawing concrete items from each key class.
struct TxnTemplate {
  std::string name;
  std::vector<TemplateOp> ops;
  /// Relative sampling weight when the driver draws from the mix.
  double weight = 1.0;

  /// Distinct sites in first-touch order.
  std::vector<SiteId> Sites() const;
  bool TouchesSite(SiteId site) const;
  /// True when every access at `site` is a read.
  bool ReadOnlyAt(SiteId site) const;

  std::string ToString() const;
};

/// A declared transaction mix: the templates plus the workload facts the
/// analyzer's verdict is conditioned on. The verdict certifies THIS mix —
/// running other transactions (or undeclared local ones) voids it.
struct TemplateMix {
  std::vector<TxnTemplate> templates;
  /// Items per key class; key class c maps to items
  /// [c * keys_per_class, (c + 1) * keys_per_class).
  int64_t keys_per_class = 16;
  /// Declared: GTM-invisible local transactions run at the sites. When
  /// true, any two globals sharing a site can become indirectly ordered
  /// through local conflicts the GTM never sees (paper §3).
  bool local_txns = false;

  std::string ToString() const;
};

/// Parses the template-mix language (one declaration per line, '#'
/// comments):
///
///   mix keys_per_class=16 local_txns=0
///   template transfer weight=2 : r0@s0 w0@s0 r1@s1 w1@s1
///   template audit : r0@s0 r1@s1 r2@s2
///
/// Each access token is r<class>@s<site> or w<class>@s<site>; operations
/// keep their declared order. The `mix` line is optional and may appear at
/// most once.
StatusOr<TemplateMix> ParseTemplateMix(const std::string& text);

/// ParseTemplateMix over the contents of `path`.
StatusOr<TemplateMix> LoadTemplateMixFile(const std::string& path);

/// Draws one template index from the mix by weight.
size_t SampleTemplate(const TemplateMix& mix, Rng* rng);

/// Instantiates a template into a concrete global transaction: each access
/// draws a uniform item from its key class's range; writes carry a random
/// payload.
gtm::GlobalTxnSpec Instantiate(const TxnTemplate& tmpl,
                               const TemplateMix& mix, Rng* rng);

}  // namespace mdbs::analysis

#endif  // MDBS_ANALYSIS_TEMPLATE_H_
