#include "analysis/robustness.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace mdbs::analysis {

std::vector<SiteId> Witness::Sites() const {
  std::vector<SiteId> sites;
  for (const WitnessHop& hop : hops) {
    if (std::find(sites.begin(), sites.end(), hop.site) == sites.end()) {
      sites.push_back(hop.site);
    }
  }
  return sites;
}

std::string Witness::ToString(const TemplateMix& mix) const {
  std::string s;
  for (const WitnessHop& hop : hops) {
    const std::string& name = hop.template_index < mix.templates.size()
                                  ? mix.templates[hop.template_index].name
                                  : std::to_string(hop.template_index);
    s += name + "#" + std::to_string(hop.copy) + " -[" +
         mdbs::ToString(hop.site) + "," + InterferenceCauseName(hop.cause) +
         "]-> ";
  }
  if (!hops.empty()) {
    const std::string& name = hops[0].template_index < mix.templates.size()
                                  ? mix.templates[hops[0].template_index].name
                                  : std::to_string(hops[0].template_index);
    s += name + "#" + std::to_string(hops[0].copy);
  }
  return s;
}

bool CheckWitness(const Witness& witness, const InterferenceGraph& graph) {
  size_t n = witness.hops.size();
  if (n < 2) return false;
  // Vertex-simple: no instance appears twice.
  std::set<std::pair<size_t, int>> instances;
  for (const WitnessHop& hop : witness.hops) {
    if (hop.copy != 0 && hop.copy != 1) return false;
    if (!instances.emplace(hop.template_index, hop.copy).second) return false;
  }
  // Every hop must be backed by an interference edge.
  for (size_t i = 0; i < n; ++i) {
    const WitnessHop& from = witness.hops[i];
    const WitnessHop& to = witness.hops[(i + 1) % n];
    if (from.template_index == to.template_index && from.copy == to.copy) {
      return false;
    }
    bool backed = false;
    for (const InterferenceEdge& edge : graph.edges) {
      if (edge.site != from.site || edge.cause != from.cause) continue;
      bool matches =
          (edge.a == from.template_index && edge.b == to.template_index) ||
          (edge.a == to.template_index && edge.b == from.template_index);
      if (matches) {
        backed = true;
        break;
      }
    }
    if (!backed) return false;
  }
  return witness.Sites().size() >= 2;
}

namespace {

/// Verdict over one lifted graph.
struct LiftScan {
  bool robust = true;
  std::optional<Witness> witness;
  std::string certificate;
};

// Union-find over the lifted nodes (contiguous 0..2n-1).
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// Turns an edge-index cycle from FindCycleThrough into witness hops:
// recover the vertex sequence, then label each hop with its edge's origin.
Witness WitnessFromCycle(const std::vector<size_t>& cycle,
                         const LiftedGraph& lifted,
                         const InterferenceGraph& graph) {
  const auto& edges = lifted.graph.edges();
  auto shares = [&](size_t e, int64_t v) {
    return edges[e].u == v || edges[e].v == v;
  };
  // First vertex: the endpoint of cycle[0] also incident to the closing
  // edge (for 2-cycles both are; either works).
  int64_t v0 = shares(cycle.back(), edges[cycle[0]].u) ? edges[cycle[0]].u
                                                       : edges[cycle[0]].v;
  Witness witness;
  int64_t v = v0;
  for (size_t e : cycle) {
    const InterferenceEdge& origin = graph.edges[lifted.edge_origin[e]];
    witness.hops.push_back(WitnessHop{static_cast<size_t>(v / 2),
                                      static_cast<int>(v % 2), origin.site,
                                      origin.cause});
    v = edges[e].u == v ? edges[e].v : edges[e].u;
  }
  return witness;
}

LiftScan ScanLift(const InterferenceGraph& graph, const LiftedGraph& lifted,
                  const TemplateMix& mix) {
  LiftScan scan;
  const auto& edges = lifted.graph.edges();
  Dsu dsu(2 * mix.templates.size());
  for (const sched::LabeledEdge& edge : edges) {
    dsu.Union(static_cast<size_t>(edge.u), static_cast<size_t>(edge.v));
  }
  // Component root -> indices of its lifted edges.
  std::unordered_map<size_t, std::vector<size_t>> component_edges;
  for (size_t e = 0; e < edges.size(); ++e) {
    component_edges[dsu.Find(static_cast<size_t>(edges[e].u))].push_back(e);
  }
  for (auto& [root, members] : component_edges) {
    // Two differently labeled edges in one component break robustness.
    size_t first = members[0];
    for (size_t e : members) {
      if (edges[e].label == edges[first].label) continue;
      scan.robust = false;
      // Both endpoints are in one connected 2-copy component, so a
      // vertex-simple cycle through both edges exists; the step budget is
      // ample for the analyzer's small graphs.
      std::optional<std::vector<size_t>> cycle =
          lifted.graph.FindCycleThrough(first, e);
      if (cycle.has_value()) {
        scan.witness = WitnessFromCycle(*cycle, lifted, graph);
        return scan;
      }
    }
  }
  // Robust: name the single site of every interfering component.
  if (component_edges.empty()) {
    scan.certificate = "no interference between template instances";
    return scan;
  }
  // Deterministic order: by smallest template index in the component.
  std::vector<std::pair<size_t, size_t>> ordered;  // (min node, root)
  for (const auto& [root, members] : component_edges) {
    int64_t min_node = edges[members[0]].u;
    for (size_t e : members) {
      min_node = std::min({min_node, edges[e].u, edges[e].v});
    }
    ordered.emplace_back(static_cast<size_t>(min_node), root);
  }
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [min_node, root] : ordered) {
    const std::vector<size_t>& members = component_edges[root];
    std::set<size_t> templates;
    for (size_t e : members) {
      templates.insert(static_cast<size_t>(edges[e].u / 2));
      templates.insert(static_cast<size_t>(edges[e].v / 2));
    }
    if (!scan.certificate.empty()) scan.certificate += "; ";
    scan.certificate += "{";
    bool first_name = true;
    for (size_t t : templates) {
      if (!first_name) scan.certificate += ",";
      first_name = false;
      scan.certificate += t < mix.templates.size() ? mix.templates[t].name
                                                   : std::to_string(t);
    }
    scan.certificate += "} only at " + mdbs::ToString(SiteId(
                            edges[members[0]].label));
  }
  return scan;
}

}  // namespace

std::string AnalysisReport::ToString(const TemplateMix& mix) const {
  std::string s = "capabilities:\n";
  for (const SiteCapability& cap : capabilities) {
    s += "  " + cap.ToString() + "\n";
  }
  s += "interference (" + std::to_string(graph.edges.size()) + " edges):\n";
  for (const InterferenceEdge& edge : graph.edges) {
    s += "  " + edge.ToString(mix) + "\n";
  }
  s += std::string("fast-path verdict: ") +
       (fast_path_robust ? "robust" : "not robust") + "\n";
  if (fast_path_robust) {
    s += "  certificate: " + certificate + "\n";
  } else if (witness.has_value()) {
    s += "  witness: " + witness->ToString(mix) + "\n";
  }
  for (const SchemeVerdict& verdict : per_scheme) {
    s += std::string("  ") + gtm::SchemeKindName(verdict.scheme) + ": " +
         (verdict.robust ? "robust" : "not robust") + "\n";
  }
  return s;
}

AnalysisReport Analyze(const TemplateMix& mix,
                       const std::vector<SiteCapability>& matrix) {
  AnalysisReport report;
  report.capabilities = matrix;
  report.graph = BuildInterferenceGraph(mix, matrix);

  // The certified fast path drops ser delays AND ticket injection, so its
  // verdict reads the graph without ticket edges.
  LiftedGraph no_tickets = report.graph.Lift(mix.templates.size(), false);
  LiftScan fast = ScanLift(report.graph, no_tickets, mix);
  report.fast_path_robust = fast.robust;
  report.certificate = fast.certificate;
  report.witness = fast.witness;

  for (gtm::SchemeKind scheme :
       {gtm::SchemeKind::kScheme0, gtm::SchemeKind::kScheme1,
        gtm::SchemeKind::kScheme2, gtm::SchemeKind::kScheme3}) {
    report.per_scheme.push_back(
        SchemeVerdict{scheme, fast.robust, fast.witness});
  }
  // kNone still injects tickets at SGT/OCC sites, so its verdict keeps the
  // ticket-induced edges.
  LiftedGraph with_tickets = report.graph.Lift(mix.templates.size(), true);
  LiftScan none = ScanLift(report.graph, with_tickets, mix);
  report.per_scheme.push_back(
      SchemeVerdict{gtm::SchemeKind::kNone, none.robust, none.witness});
  return report;
}

}  // namespace mdbs::analysis
