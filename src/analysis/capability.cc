#include "analysis/capability.h"

namespace mdbs::analysis {

std::string SiteCapability::ToString() const {
  std::string s = mdbs::ToString(site);
  s += ": ";
  s += lcc::ProtocolKindName(protocol);
  s += " ser_point=";
  s += gtm::SerPointKindName(ser_point);
  if (multiversion) s += " multiversion";
  if (needs_ticket) s += " ticket";
  return s;
}

SiteCapability CapabilityFor(SiteId site, lcc::ProtocolKind protocol) {
  SiteCapability cap;
  cap.site = site;
  cap.protocol = protocol;
  cap.ser_point = gtm::SerPointKindFor(protocol);
  cap.needs_ticket = cap.ser_point == gtm::SerPointKind::kTicket;
  cap.multiversion = protocol == lcc::ProtocolKind::kMultiversionTO;
  return cap;
}

std::vector<SiteCapability> BuildCapabilityMatrix(
    const std::vector<site::SiteConfig>& sites) {
  std::vector<SiteCapability> matrix;
  matrix.reserve(sites.size());
  for (const site::SiteConfig& site : sites) {
    matrix.push_back(CapabilityFor(site.id, site.protocol));
  }
  return matrix;
}

}  // namespace mdbs::analysis
