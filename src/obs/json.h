#ifndef MDBS_OBS_JSON_H_
#define MDBS_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mdbs::obs {

/// `s` with JSON string escaping applied (no surrounding quotes).
std::string EscapeJson(std::string_view s);

/// Minimal streaming JSON writer: objects, arrays, scalars, automatic comma
/// placement. No pretty-printing beyond optional newlines between the
/// elements of arrays opened with BeginArray(/*one_per_line=*/true) — the
/// shape Chrome trace viewers stream-parse happily.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(bool one_per_line = false);
  JsonWriter& EndArray();

  /// Next value is the member named `name` of the open object.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

 private:
  struct Scope {
    bool first = true;
    bool one_per_line = false;
  };

  /// Comma/newline bookkeeping before a value or key is emitted.
  void BeforeValue();

  std::ostream& os_;
  std::vector<Scope> scopes_;
  bool key_pending_ = false;
};

}  // namespace mdbs::obs

#endif  // MDBS_OBS_JSON_H_
