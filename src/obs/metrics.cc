#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace mdbs::obs {

namespace {

std::atomic<uint64_t> g_next_sharded_id{1};

/// p-th quantile of an unsorted sample vector (sorted-vector interpolation,
/// matching sim::Summary semantics). Consumes `values`.
double QuantileOf(std::vector<int64_t>* values, double q) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  double pos = q * static_cast<double>(values->size() - 1);
  auto lo = static_cast<size_t>(std::floor(pos));
  auto hi = static_cast<size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return static_cast<double>((*values)[lo]) * (1 - frac) +
         static_cast<double>((*values)[hi]) * frac;
}

}  // namespace

const char* TxnPhaseName(TxnPhase phase) {
  switch (phase) {
    case TxnPhase::kAdmission:
      return "admission";
    case TxnPhase::kScheme:
      return "scheme";
    case TxnPhase::kSerWait:
      return "ser_wait";
    case TxnPhase::kTicket:
      return "ticket";
    case TxnPhase::kNetwork:
      return "network";
    case TxnPhase::kSiteExec:
      return "site_exec";
    case TxnPhase::kBackoff:
      return "backoff";
    case TxnPhase::kParked:
      return "parked";
    case TxnPhase::kRecovery:
      return "recovery";
  }
  return "unknown";
}

std::string MetricsSnapshot::BreakdownTable() const {
  std::ostringstream os;
  int64_t total = 0;
  for (int64_t ticks : phase_ticks) total += ticks;
  os << std::left << std::setw(11) << "phase" << std::right << std::setw(9)
     << "count" << std::setw(14) << "total_ticks" << std::setw(8) << "share"
     << std::setw(10) << "p50" << std::setw(10) << "p95" << std::setw(10)
     << "p99" << std::setw(10) << "p999" << "\n";
  for (int i = 0; i < kTxnPhaseCount; ++i) {
    const sim::Summary& s = phases[i];
    double share =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(phase_ticks[i]) /
                         static_cast<double>(total);
    os << std::left << std::setw(11) << TxnPhaseName(static_cast<TxnPhase>(i))
       << std::right << std::setw(9) << s.count() << std::setw(14)
       << phase_ticks[i] << std::setw(7) << std::fixed << std::setprecision(1)
       << share << "%" << std::setw(10) << std::setprecision(0) << s.Median()
       << std::setw(10) << s.P95() << std::setw(10) << s.P99() << std::setw(10)
       << s.P999() << "\n";
  }
  os << std::left << std::setw(11) << "lifetime" << std::right << std::setw(9)
     << lifetime.count() << std::setw(14) << lifetime_ticks << std::setw(8)
     << " " << std::setw(10) << std::setprecision(0) << lifetime.Median()
     << std::setw(10) << lifetime.P95() << std::setw(10) << lifetime.P99()
     << std::setw(10) << lifetime.P999() << "\n";
  os << "bottleneck: " << TxnPhaseName(bottleneck) << " ("
     << std::setprecision(1) << 100.0 * bottleneck_share
     << "% of attributed ticks), balance violations: " << balance_violations
     << "\n";
  return os.str();
}

ShardedSummary::ShardedSummary() : id_(g_next_sharded_id.fetch_add(1)) {}

ShardedSummary::Shard* ShardedSummary::LocalShard() {
  thread_local std::unordered_map<uint64_t, Shard*> cache;
  auto it = cache.find(id_);
  if (it != cache.end()) return it->second;
  auto owned = std::make_unique<Shard>();
  Shard* shard = owned.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    shards_.push_back(std::move(owned));
  }
  cache[id_] = shard;
  return shard;
}

void ShardedSummary::Record(double value) { LocalShard()->summary.Add(value); }

sim::Summary ShardedSummary::Drain() const {
  sim::Summary merged;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& shard : shards_) merged.Merge(shard->summary);
  return merged;
}

MetricsEngine::MetricsEngine(const MetricsConfig& config, Clock clock,
                             std::vector<SiteId> sites)
    : config_(config), clock_(std::move(clock)), site_ids_(std::move(sites)) {
  if (config_.timeline_window <= 0) config_.timeline_window = 5000;
  site_exec_.reserve(site_ids_.size());
  for (size_t i = 0; i < site_ids_.size(); ++i) {
    site_index_[site_ids_[i]] = i;
    site_exec_.push_back(std::make_unique<ShardedSummary>());
  }
}

MetricsEngine::TxnState* MetricsEngine::Find(int64_t job) {
  auto it = txns_.find(job);
  return it == txns_.end() ? nullptr : &it->second;
}

MetricsEngine::WindowAcc& MetricsEngine::Window(sim::Time at) {
  int64_t index = at < 0 ? 0 : at / config_.timeline_window;
  WindowAcc& acc = timeline_[index];
  acc.point.window = index;
  return acc;
}

void MetricsEngine::ClosePhase(TxnState* state, sim::Time now) {
  sim::Time duration = now - state->phase_start;
  if (duration > 0) {
    if (state->phase == TxnPhase::kParked) {
      sim::Time recovered =
          RecoveryOverlap(state->sites, state->phase_start, now);
      state->acc[static_cast<int>(TxnPhase::kRecovery)] += recovered;
      state->acc[static_cast<int>(TxnPhase::kParked)] += duration - recovered;
    } else {
      state->acc[static_cast<int>(state->phase)] += duration;
    }
  }
  state->phase_start = now;
}

sim::Time MetricsEngine::RecoveryOverlap(const std::vector<SiteId>& sites,
                                         sim::Time begin,
                                         sim::Time end) const {
  std::vector<std::pair<sim::Time, sim::Time>> clipped;
  {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    for (SiteId site : sites) {
      auto it = recovery_windows_.find(site);
      if (it == recovery_windows_.end()) continue;
      for (const auto& [wb, we] : it->second) {
        sim::Time lo = std::max(begin, wb);
        sim::Time hi = std::min(end, we);
        if (lo < hi) clipped.emplace_back(lo, hi);
      }
    }
  }
  if (clipped.empty()) return 0;
  std::sort(clipped.begin(), clipped.end());
  sim::Time covered = 0;
  sim::Time cur_begin = clipped[0].first;
  sim::Time cur_end = clipped[0].second;
  for (size_t i = 1; i < clipped.size(); ++i) {
    if (clipped[i].first > cur_end) {
      covered += cur_end - cur_begin;
      cur_begin = clipped[i].first;
      cur_end = clipped[i].second;
    } else {
      cur_end = std::max(cur_end, clipped[i].second);
    }
  }
  covered += cur_end - cur_begin;
  return covered;
}

void MetricsEngine::StageAdmission(sim::Time enqueue_time) {
  if (!config_.enabled) return;
  staged_admission_ = enqueue_time;
}

void MetricsEngine::TxnSubmitted(int64_t job, std::vector<SiteId> sites) {
  if (!config_.enabled) return;
  sim::Time now = Now();
  TxnState state;
  // A staged admission stamp (threaded client) starts the lifetime at the
  // client-side enqueue; min() guards against cross-thread clock skew.
  state.submit =
      staged_admission_ ? std::min(*staged_admission_, now) : now;
  staged_admission_.reset();
  state.phase = TxnPhase::kAdmission;
  state.phase_start = state.submit;
  state.sites = std::move(sites);
  txns_[job] = std::move(state);
  ++Window(now).point.submitted;
}

void MetricsEngine::AttemptStarted(GlobalTxnId attempt, int64_t job) {
  if (!config_.enabled) return;
  attempt_job_[attempt] = job;
}

void MetricsEngine::AttemptEnded(GlobalTxnId attempt) {
  if (!config_.enabled) return;
  attempt_job_.erase(attempt);
}

void MetricsEngine::AttemptAborted(int64_t job) {
  if (!config_.enabled) return;
  (void)job;
  ++Window(Now()).point.attempt_aborts;
}

void MetricsEngine::Transition(int64_t job, TxnPhase next) {
  if (!config_.enabled) return;
  TxnState* state = Find(job);
  if (state == nullptr) return;
  sim::Time now = Now();
  if (state->phase != TxnPhase::kParked && next == TxnPhase::kParked) {
    ++parked_now_;
    WindowAcc& window = Window(now);
    window.point.max_parked = std::max(window.point.max_parked, parked_now_);
  } else if (state->phase == TxnPhase::kParked && next != TxnPhase::kParked) {
    --parked_now_;
  }
  ClosePhase(state, now);
  state->phase = next;
}

void MetricsEngine::WaitEnter(GlobalTxnId attempt) {
  if (!config_.enabled) return;
  auto it = attempt_job_.find(attempt);
  if (it == attempt_job_.end()) return;
  TxnState* state = Find(it->second);
  // Only the critical path is tracked: an init op can sit in WAIT while a
  // site round trip is in flight — the round trip keeps the phase.
  if (state == nullptr || state->phase != TxnPhase::kScheme) return;
  ClosePhase(state, Now());
  state->phase = TxnPhase::kSerWait;
}

void MetricsEngine::WaitExit(GlobalTxnId attempt) {
  if (!config_.enabled) return;
  auto it = attempt_job_.find(attempt);
  if (it == attempt_job_.end()) return;
  TxnState* state = Find(it->second);
  if (state == nullptr || state->phase != TxnPhase::kSerWait) return;
  ClosePhase(state, Now());
  state->phase = TxnPhase::kScheme;
}

void MetricsEngine::StageSiteWork(TxnId sub, sim::Time busy) {
  if (!config_.enabled) return;
  staged_sub_ = sub;
  staged_busy_ = busy;
}

void MetricsEngine::EndRoundTrip(int64_t job, TxnId sub) {
  if (!config_.enabled) return;
  TxnState* state = Find(job);
  sim::Time busy = 0;
  if (staged_sub_.valid() && staged_sub_ == sub) busy = staged_busy_;
  staged_sub_ = TxnId();
  staged_busy_ = 0;
  if (state == nullptr) return;
  sim::Time now = Now();
  sim::Time interval = now - state->phase_start;
  if (interval < 0) interval = 0;
  busy = std::min(busy, interval);
  // The site-measured busy slice belongs to the current phase (site_exec or
  // ticket); the rest of the round trip is network transit.
  state->acc[static_cast<int>(state->phase)] += busy;
  state->acc[static_cast<int>(TxnPhase::kNetwork)] += interval - busy;
  state->phase_start = now;
}

void MetricsEngine::TxnFinished(int64_t job, bool committed) {
  if (!config_.enabled) return;
  TxnState* state = Find(job);
  if (state == nullptr) return;
  sim::Time now = Now();
  if (state->phase == TxnPhase::kParked) --parked_now_;
  ClosePhase(state, now);
  sim::Time lifetime = now - state->submit;
  sim::Time attributed = 0;
  for (sim::Time ticks : state->acc) attributed += ticks;
  if (attributed != lifetime) {
    ++balance_violations_;
    max_balance_error_ =
        std::max(max_balance_error_, std::abs(attributed - lifetime));
  }
  lifetime_.Add(static_cast<double>(lifetime));
  lifetime_ticks_ += lifetime;
  for (int i = 0; i < kTxnPhaseCount; ++i) {
    phase_summaries_[i].Add(static_cast<double>(state->acc[i]));
    phase_ticks_[i] += state->acc[i];
  }
  ++finished_;
  WindowAcc& window = Window(now);
  if (committed) {
    ++committed_;
    ++window.point.committed;
    window.latencies.push_back(lifetime);
  } else {
    ++window.point.failed;
  }
  txns_.erase(job);
}

void MetricsEngine::SampleGtm2Depth(int64_t queue_depth, int64_t wait_depth) {
  if (!config_.enabled) return;
  WindowAcc& window = Window(Now());
  window.point.max_queue_depth =
      std::max(window.point.max_queue_depth, queue_depth);
  window.point.max_wait_depth =
      std::max(window.point.max_wait_depth, wait_depth);
}

void MetricsEngine::SiteDownEvent() {
  if (!config_.enabled) return;
  ++Window(Now()).point.site_down_events;
}

void MetricsEngine::RecordSiteExec(SiteId site, sim::Time busy) {
  if (!config_.enabled) return;
  auto it = site_index_.find(site);
  if (it == site_index_.end()) return;
  site_exec_[it->second]->Record(static_cast<double>(busy));
}

void MetricsEngine::AddRecoveryWindow(SiteId site, sim::Time begin,
                                      sim::Time end) {
  if (!config_.enabled || end <= begin) return;
  std::lock_guard<std::mutex> lock(recovery_mu_);
  recovery_windows_[site].emplace_back(begin, end);
}

MetricsSnapshot MetricsEngine::Snapshot() const {
  MetricsSnapshot snapshot;
  snapshot.enabled = config_.enabled;
  snapshot.window_size = config_.timeline_window;
  if (!config_.enabled) return snapshot;
  snapshot.lifetime = lifetime_;
  snapshot.phases = phase_summaries_;
  snapshot.phase_ticks = phase_ticks_;
  snapshot.lifetime_ticks = lifetime_ticks_;
  snapshot.finished = finished_;
  snapshot.committed = committed_;
  snapshot.balance_violations = balance_violations_;
  snapshot.max_balance_error = max_balance_error_;
  for (size_t i = 0; i < site_ids_.size(); ++i) {
    snapshot.site_exec.emplace_back(site_ids_[i], site_exec_[i]->Drain());
  }
  snapshot.timeline.reserve(timeline_.size());
  for (const auto& [index, acc] : timeline_) {
    TimelinePoint point = acc.point;
    std::vector<int64_t> latencies = acc.latencies;
    point.p99_latency = QuantileOf(&latencies, 0.99);
    snapshot.timeline.push_back(point);
  }
  int64_t total = 0;
  for (int64_t ticks : phase_ticks_) total += ticks;
  int best = static_cast<int>(TxnPhase::kSiteExec);
  if (total > 0) {
    best = 0;
    for (int i = 1; i < kTxnPhaseCount; ++i) {
      if (phase_ticks_[i] > phase_ticks_[best]) best = i;
    }
    snapshot.bottleneck_share =
        static_cast<double>(phase_ticks_[best]) / static_cast<double>(total);
  }
  snapshot.bottleneck = static_cast<TxnPhase>(best);
  return snapshot;
}

void AddSnapshotToRegistry(const MetricsSnapshot& snapshot,
                           sim::MetricsRegistry* registry) {
  if (!snapshot.enabled) return;
  registry->Put("txn.lifetime", snapshot.lifetime);
  for (int i = 0; i < kTxnPhaseCount; ++i) {
    registry->Put(
        std::string("txn.phase.") + TxnPhaseName(static_cast<TxnPhase>(i)),
        snapshot.phases[i]);
    registry->Increment(
        std::string("metrics.phase_ticks.") +
            TxnPhaseName(static_cast<TxnPhase>(i)),
        snapshot.phase_ticks[i]);
  }
  for (const auto& [site, summary] : snapshot.site_exec) {
    if (summary.count() > 0) {
      registry->Put("site.exec." + ToString(site), summary);
    }
  }
  registry->Increment("metrics.finished", snapshot.finished);
  registry->Increment("metrics.committed", snapshot.committed);
  registry->Increment("metrics.lifetime_ticks", snapshot.lifetime_ticks);
  registry->Increment("metrics.balance_violations",
                      snapshot.balance_violations);
}

}  // namespace mdbs::obs
