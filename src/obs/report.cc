#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <unordered_map>

#include "obs/json.h"

namespace mdbs::obs {
namespace {

std::string WaitKey(const TraceEvent& e) {
  return std::to_string(e.txn) + ":" + std::to_string(e.site) + ":" +
         (e.detail != nullptr ? e.detail : "?");
}

/// Per-attempt lifecycle timestamps, filled in as the scan encounters them.
struct AttemptTimes {
  sim::Time start = -1;
  sim::Time init = -1;
  sim::Time last_ser = -1;
  sim::Time last_ack = -1;
};

}  // namespace

void AggregateTrace(const std::vector<TraceEvent>& events,
                    sim::MetricsRegistry* registry) {
  std::unordered_map<int64_t, sim::Time> submit_time;   // job id -> time
  std::unordered_map<int64_t, int64_t> attempt_job;     // attempt -> job id
  std::unordered_map<int64_t, AttemptTimes> attempts;   // attempt id
  std::unordered_map<std::string, sim::Time> wait_since;
  std::unordered_map<int64_t, sim::Time> recovery_since;  // site -> time

  for (const TraceEvent& e : events) {
    registry->Increment(std::string("events.") + TraceEventKindName(e.kind));
    switch (e.kind) {
      case TraceEventKind::kSubmit:
        submit_time[e.txn] = e.time;
        break;
      case TraceEventKind::kAttemptStart:
        attempt_job[e.txn] = e.a;
        attempts[e.txn].start = e.time;
        break;
      case TraceEventKind::kInit: {
        AttemptTimes& t = attempts[e.txn];
        if (t.init < 0) t.init = e.time;
        if (t.start >= 0) {
          registry->Observe("phase.attempt_to_init",
                            static_cast<double>(e.time - t.start));
        }
        break;
      }
      case TraceEventKind::kSerRelease: {
        AttemptTimes& t = attempts[e.txn];
        t.last_ser = e.time;
        if (t.init >= 0) {
          registry->Observe("phase.init_to_ser",
                            static_cast<double>(e.time - t.init));
        }
        break;
      }
      case TraceEventKind::kAck: {
        AttemptTimes& t = attempts[e.txn];
        t.last_ack = e.time;
        if (t.last_ser >= 0) {
          registry->Observe("phase.ser_to_ack",
                            static_cast<double>(e.time - t.last_ser));
        }
        break;
      }
      case TraceEventKind::kFin: {
        AttemptTimes& t = attempts[e.txn];
        if (t.last_ack >= 0) {
          registry->Observe("phase.ack_to_fin",
                            static_cast<double>(e.time - t.last_ack));
        }
        break;
      }
      case TraceEventKind::kTxnCommit: {
        auto job = attempt_job.find(e.txn);
        int64_t job_id = job == attempt_job.end() ? e.a : job->second;
        auto submitted = submit_time.find(job_id);
        if (submitted != submit_time.end()) {
          registry->Observe("phase.submit_to_commit",
                            static_cast<double>(e.time - submitted->second));
        }
        break;
      }
      case TraceEventKind::kWaitEnter:
        wait_since[WaitKey(e)] = e.time;
        break;
      case TraceEventKind::kWaitExit:
      case TraceEventKind::kWaitAbandon: {
        auto it = wait_since.find(WaitKey(e));
        if (it != wait_since.end()) {
          const char* op = e.detail != nullptr ? e.detail : "?";
          std::string name =
              e.kind == TraceEventKind::kWaitExit
                  ? std::string("wait.dwell.") + op
                  : std::string("wait.dwell.abandoned.") + op;
          registry->Observe(name, static_cast<double>(e.time - it->second));
          wait_since.erase(it);
        }
        break;
      }
      case TraceEventKind::kRecoveryBegin:
        recovery_since[e.site] = e.time;
        break;
      case TraceEventKind::kRecover: {
        // Durable recovery: RECOVERY-span duration (the modeled replay
        // time) plus the replayed volume carried on the recover instant.
        auto it = recovery_since.find(e.site);
        if (it != recovery_since.end()) {
          registry->Observe("recovery.time",
                            static_cast<double>(e.time - it->second));
          registry->Observe("recovery.replay_records",
                            static_cast<double>(e.a));
          registry->Observe("recovery.replay_bytes",
                            static_cast<double>(e.b));
          recovery_since.erase(it);
        }
        break;
      }
      case TraceEventKind::kQueueDepth:
        registry->Observe("gtm2.queue_depth", static_cast<double>(e.a));
        registry->Observe("gtm2.wait_depth", static_cast<double>(e.b));
        break;
      case TraceEventKind::kStrandBacklog:
        registry->Observe(e.site >= 0
                              ? "strand.backlog.s" + std::to_string(e.site)
                              : std::string("strand.backlog.gtm"),
                          static_cast<double>(e.a));
        break;
      default:
        break;
    }
  }
}

namespace {

/// Power-of-two histogram over retained samples: bucket k holds values in
/// (2^(k-1), 2^k], bucket "0" holds values <= 0 and (0, 1].
void WriteHistogram(JsonWriter& w, const std::vector<double>& samples) {
  std::map<int, int64_t> buckets;
  for (double v : samples) {
    int bucket = 0;
    if (v > 1.0) bucket = static_cast<int>(std::ceil(std::log2(v)));
    ++buckets[bucket];
  }
  w.BeginArray();
  for (const auto& [exp, count] : buckets) {
    w.BeginObject();
    w.Key("le").Double(exp == 0 ? 1.0 : std::exp2(exp));
    w.Key("count").Int(count);
    w.EndObject();
  }
  w.EndArray();
}

}  // namespace

void WriteJsonReport(std::ostream& os, const ReportInfo& info,
                     const sim::MetricsRegistry& registry) {
  JsonWriter w(os);
  w.BeginObject();

  w.Key("info").BeginObject();
  for (const auto& [key, value] : info) w.Key(key).String(value);
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : registry.counters()) {
    w.Key(name).Int(value);
  }
  w.EndObject();

  w.Key("summaries").BeginObject();
  for (const auto& [name, summary] : registry.summaries()) {
    w.Key(name).BeginObject();
    w.Key("count").Int(summary.count());
    w.Key("mean").Double(summary.mean());
    w.Key("min").Double(summary.min());
    w.Key("max").Double(summary.max());
    w.Key("quantiles").BeginObject();
    w.Key("p50").Double(summary.Quantile(0.5));
    w.Key("p90").Double(summary.Quantile(0.9));
    w.Key("p95").Double(summary.Quantile(0.95));
    w.Key("p99").Double(summary.Quantile(0.99));
    w.EndObject();
    w.Key("histogram");
    WriteHistogram(w, summary.retained_samples());
    w.EndObject();
  }
  w.EndObject();

  w.EndObject();
  os << "\n";
}

Status WriteJsonReportFile(const std::string& path, const ReportInfo& info,
                           const sim::MetricsRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open report output file: " + path);
  }
  WriteJsonReport(out, info, registry);
  out.flush();
  if (!out) return Status::Internal("short write to report file: " + path);
  return Status::OK();
}

}  // namespace mdbs::obs
