#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <unordered_map>

#include "obs/json.h"

namespace mdbs::obs {
namespace {

std::string WaitKey(const TraceEvent& e) {
  return std::to_string(e.txn) + ":" + std::to_string(e.site) + ":" +
         (e.detail != nullptr ? e.detail : "?");
}

/// Per-attempt lifecycle timestamps, filled in as the scan encounters them.
struct AttemptTimes {
  sim::Time start = -1;
  sim::Time init = -1;
  sim::Time last_ser = -1;
  sim::Time last_ack = -1;
};

}  // namespace

void AggregateTrace(const std::vector<TraceEvent>& events,
                    sim::MetricsRegistry* registry) {
  std::unordered_map<int64_t, sim::Time> submit_time;   // job id -> time
  std::unordered_map<int64_t, int64_t> attempt_job;     // attempt -> job id
  std::unordered_map<int64_t, AttemptTimes> attempts;   // attempt id
  std::unordered_map<std::string, sim::Time> wait_since;
  std::unordered_map<int64_t, sim::Time> recovery_since;  // site -> time

  for (const TraceEvent& e : events) {
    registry->Increment(std::string("events.") + TraceEventKindName(e.kind));
    switch (e.kind) {
      case TraceEventKind::kSubmit:
        submit_time[e.txn] = e.time;
        break;
      case TraceEventKind::kAttemptStart:
        attempt_job[e.txn] = e.a;
        attempts[e.txn].start = e.time;
        break;
      case TraceEventKind::kInit: {
        AttemptTimes& t = attempts[e.txn];
        if (t.init < 0) t.init = e.time;
        if (t.start >= 0) {
          registry->Observe("phase.attempt_to_init",
                            static_cast<double>(e.time - t.start));
        }
        break;
      }
      case TraceEventKind::kSerRelease: {
        AttemptTimes& t = attempts[e.txn];
        t.last_ser = e.time;
        if (t.init >= 0) {
          registry->Observe("phase.init_to_ser",
                            static_cast<double>(e.time - t.init));
        }
        break;
      }
      case TraceEventKind::kAck: {
        AttemptTimes& t = attempts[e.txn];
        t.last_ack = e.time;
        if (t.last_ser >= 0) {
          registry->Observe("phase.ser_to_ack",
                            static_cast<double>(e.time - t.last_ser));
        }
        break;
      }
      case TraceEventKind::kFin: {
        AttemptTimes& t = attempts[e.txn];
        if (t.last_ack >= 0) {
          registry->Observe("phase.ack_to_fin",
                            static_cast<double>(e.time - t.last_ack));
        }
        break;
      }
      case TraceEventKind::kTxnCommit: {
        auto job = attempt_job.find(e.txn);
        int64_t job_id = job == attempt_job.end() ? e.a : job->second;
        auto submitted = submit_time.find(job_id);
        if (submitted != submit_time.end()) {
          registry->Observe("phase.submit_to_commit",
                            static_cast<double>(e.time - submitted->second));
        }
        break;
      }
      case TraceEventKind::kWaitEnter:
        wait_since[WaitKey(e)] = e.time;
        break;
      case TraceEventKind::kWaitExit:
      case TraceEventKind::kWaitAbandon: {
        auto it = wait_since.find(WaitKey(e));
        if (it != wait_since.end()) {
          const char* op = e.detail != nullptr ? e.detail : "?";
          std::string name =
              e.kind == TraceEventKind::kWaitExit
                  ? std::string("wait.dwell.") + op
                  : std::string("wait.dwell.abandoned.") + op;
          registry->Observe(name, static_cast<double>(e.time - it->second));
          wait_since.erase(it);
        }
        break;
      }
      case TraceEventKind::kRecoveryBegin:
        recovery_since[e.site] = e.time;
        break;
      case TraceEventKind::kRecover: {
        // Durable recovery: RECOVERY-span duration (the modeled replay
        // time) plus the replayed volume carried on the recover instant.
        auto it = recovery_since.find(e.site);
        if (it != recovery_since.end()) {
          registry->Observe("recovery.time",
                            static_cast<double>(e.time - it->second));
          registry->Observe("recovery.replay_records",
                            static_cast<double>(e.a));
          registry->Observe("recovery.replay_bytes",
                            static_cast<double>(e.b));
          recovery_since.erase(it);
        }
        break;
      }
      case TraceEventKind::kQueueDepth:
        registry->Observe("gtm2.queue_depth", static_cast<double>(e.a));
        registry->Observe("gtm2.wait_depth", static_cast<double>(e.b));
        break;
      case TraceEventKind::kStrandBacklog:
        registry->Observe(e.site >= 0
                              ? "strand.backlog.s" + std::to_string(e.site)
                              : std::string("strand.backlog.gtm"),
                          static_cast<double>(e.a));
        break;
      default:
        break;
    }
  }
}

namespace {

/// Power-of-two histogram from the summary's log-linear buckets: bucket k
/// holds values in (2^(k-1), 2^k], bucket "0" holds values <= 1. Fine
/// buckets are merged by the octave of their lower bound, so counts sum to
/// the summary's exact count.
void WriteHistogram(JsonWriter& w, const sim::Summary& summary) {
  std::map<int, int64_t> buckets;
  summary.histogram().ForEachNonEmpty(
      [&buckets](int64_t lower, int64_t /*upper*/, int64_t count) {
        int exp = 0;
        if (lower > 1) exp = static_cast<int>(std::ceil(std::log2(lower)));
        buckets[exp] += count;
      });
  w.BeginArray();
  for (const auto& [exp, count] : buckets) {
    w.BeginObject();
    w.Key("le").Double(exp == 0 ? 1.0 : std::exp2(exp));
    w.Key("count").Int(count);
    w.EndObject();
  }
  w.EndArray();
}

void WriteSummaryObject(JsonWriter& w, const sim::Summary& summary) {
  w.BeginObject();
  w.Key("count").Int(summary.count());
  w.Key("mean").Double(summary.mean());
  w.Key("min").Double(summary.min());
  w.Key("max").Double(summary.max());
  w.Key("quantiles").BeginObject();
  w.Key("p50").Double(summary.Quantile(0.5));
  w.Key("p90").Double(summary.Quantile(0.9));
  w.Key("p95").Double(summary.Quantile(0.95));
  w.Key("p99").Double(summary.Quantile(0.99));
  w.Key("p999").Double(summary.Quantile(0.999));
  w.EndObject();
  w.Key("histogram");
  WriteHistogram(w, summary);
  w.EndObject();
}

void WriteMetricsSection(JsonWriter& w, const MetricsSnapshot& m) {
  w.BeginObject();
  w.Key("window_size").Int(m.window_size);
  w.Key("finished").Int(m.finished);
  w.Key("committed").Int(m.committed);
  w.Key("lifetime_ticks").Int(m.lifetime_ticks);
  w.Key("balance").BeginObject();
  w.Key("violations").Int(m.balance_violations);
  w.Key("max_error").Int(m.max_balance_error);
  w.EndObject();

  int64_t total_phase_ticks = 0;
  for (int64_t t : m.phase_ticks) total_phase_ticks += t;
  w.Key("phases").BeginObject();
  for (int i = 0; i < kTxnPhaseCount; ++i) {
    const sim::Summary& s = m.phases[static_cast<size_t>(i)];
    w.Key(TxnPhaseName(static_cast<TxnPhase>(i))).BeginObject();
    w.Key("ticks").Int(m.phase_ticks[static_cast<size_t>(i)]);
    w.Key("share").Double(
        total_phase_ticks == 0
            ? 0.0
            : static_cast<double>(m.phase_ticks[static_cast<size_t>(i)]) /
                  static_cast<double>(total_phase_ticks));
    w.Key("count").Int(s.count());
    w.Key("mean").Double(s.mean());
    w.Key("max").Double(s.max());
    w.Key("quantiles").BeginObject();
    w.Key("p50").Double(s.Quantile(0.5));
    w.Key("p95").Double(s.Quantile(0.95));
    w.Key("p99").Double(s.Quantile(0.99));
    w.Key("p999").Double(s.Quantile(0.999));
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();

  w.Key("bottleneck").BeginObject();
  w.Key("phase").String(TxnPhaseName(m.bottleneck));
  w.Key("share").Double(m.bottleneck_share);
  w.EndObject();

  w.Key("timeline").BeginArray(/*one_per_line=*/true);
  for (const TimelinePoint& p : m.timeline) {
    w.BeginObject();
    w.Key("window").Int(p.window);
    w.Key("start").Int(p.window * m.window_size);
    w.Key("submitted").Int(p.submitted);
    w.Key("committed").Int(p.committed);
    w.Key("failed").Int(p.failed);
    w.Key("attempt_aborts").Int(p.attempt_aborts);
    w.Key("max_queue_depth").Int(p.max_queue_depth);
    w.Key("max_wait_depth").Int(p.max_wait_depth);
    w.Key("max_parked").Int(p.max_parked);
    w.Key("site_down_events").Int(p.site_down_events);
    w.Key("p99_latency").Double(p.p99_latency);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace

void WriteJsonReport(std::ostream& os, const ReportInfo& info,
                     const sim::MetricsRegistry& registry,
                     const ReportExtras& extras) {
  JsonWriter w(os);
  w.BeginObject();

  w.Key("info").BeginObject();
  for (const auto& [key, value] : info) w.Key(key).String(value);
  w.EndObject();

  w.Key("counters").BeginObject();
  for (const auto& [name, value] : registry.counters()) {
    w.Key(name).Int(value);
  }
  w.EndObject();

  w.Key("summaries").BeginObject();
  for (const auto& [name, summary] : registry.summaries()) {
    w.Key(name);
    WriteSummaryObject(w, summary);
  }
  w.EndObject();

  if (extras.metrics != nullptr && extras.metrics->enabled) {
    w.Key("metrics");
    WriteMetricsSection(w, *extras.metrics);
  }
  if (extras.trace_recorded >= 0) {
    w.Key("trace").BeginObject();
    w.Key("recorded").Int(extras.trace_recorded);
    w.Key("dropped").Int(extras.trace_dropped);
    w.EndObject();
  }

  w.EndObject();
  os << "\n";
}

Status WriteJsonReportFile(const std::string& path, const ReportInfo& info,
                           const sim::MetricsRegistry& registry,
                           const ReportExtras& extras) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open report output file: " + path);
  }
  WriteJsonReport(out, info, registry, extras);
  out.flush();
  if (!out) return Status::Internal("short write to report file: " + path);
  return Status::OK();
}

}  // namespace mdbs::obs
