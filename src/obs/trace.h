#ifndef MDBS_OBS_TRACE_H_
#define MDBS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/task_runner.h"

namespace mdbs::obs {

/// Compile-time master switch. `-DMDBS_TRACE=OFF` at configure time compiles
/// every trace hook down to a constant-false branch; with the default ON the
/// hooks exist and are toggled per run via TraceConfig (off by default, so
/// hot paths pay one predictable null-pointer branch).
#ifdef MDBS_TRACE_ENABLED
inline constexpr bool kTraceCompiledIn = true;
#else
inline constexpr bool kTraceCompiledIn = false;
#endif

/// Every instrumented point in the stack. The taxonomy mirrors the paper's
/// vocabulary: one global transaction flows submit -> attempt -> per-site
/// init/ser/ack -> validate -> fin, with WAIT dwell and scheme data-structure
/// churn (marked edges, dependencies) in between, plus the local-DBMS events
/// (lock waits, wounds, validation failures) that cause the retries.
enum class TraceEventKind : uint8_t {
  // GTM1 — transaction lifecycle. txn = attempt id unless noted.
  kSubmit,          // txn = job id (stable across attempts)
  kAttemptStart,    // a = job id, b = attempt number (1-based)
  kAttemptTimeout,  // the per-attempt timeout fired
  kAttemptAbort,    // a = job id, detail = "scheme" | "site" | "timeout"
  kTxnCommit,       // a = job id, b = attempts used
  kTxnFail,         // gave up / partial commit; a = job id

  // GTM2 — Basic_Scheme driver. site is invalid for init/validate/fin.
  kInit,         // act(init) ran; a = number of sites
  kSerRelease,   // act(ser) ran, operation released to its site
  kAck,          // act(ack) ran, acknowledgement forwarded to GTM1
  kValidate,     // act(validate) ran
  kFin,          // act(fin) ran, DS cleaned up
  kWaitEnter,    // cond failed, op joined WAIT; detail = op kind, a = |WAIT|
  kWaitExit,     // cond now holds, op left WAIT; detail = op kind, a = |WAIT|
  kWaitAbandon,  // op purged from WAIT by an abort; detail = op kind
  kSchemeAbort,  // the scheme demanded an abort (non-conservative only)
  kQueueDepth,   // sampled at enqueue; a = |QUEUE|, b = |WAIT|

  // Scheme data structures (paper §5-§7).
  kEdgeMark,    // Scheme 1: edge (txn, site) marked at init (on a TSG cycle)
  kEdgeUnmark,  // Scheme 1: marked edge retired (acked / txn removed)
  kDepAdd,      // Scheme 2: dependency (a, site) -> (site, b) added;
                //   detail = "executed" | "delta" | "order"
  kDepDrop,     // Scheme 2: txn removed, a = dependencies dropped with it
  kSerBefSeed,  // Scheme 3: ser_bef seeded at init; a = |ser_bef|

  // Local DBMS / LCC. txn = local TxnId value, a = global txn id or -1.
  kSiteBegin,        // subtransaction (or local txn) began at site
  kSiteCommit,       // committed at site
  kSiteAbort,        // rolled back at site
  kOpBlocked,        // operation blocked (lock conflict, TO wait, ...)
  kOpResumed,        // blocked operation woken for retry
  kLocalAbort,       // protocol demanded an abort at access time
  kValidationFail,   // commit-time certification failed (OCC / SGT)
  kLockWait,         // lock manager queued the request; b = item id
  kDeadlock,         // waits-for cycle; requester is the victim; b = item id
  kWound,            // wound-wait preemption; txn = victim, b = aggressor
  kCrash,            // site crashed (a = active txns aborted)
  kRecoveryBegin,    // durable site started WAL replay (still down)
  kRecover,          // site recovered; durable: a = replayed records,
                     //   b = replayed log bytes

  // Failure handling — health monitor, quarantine, retry layer.
  kSiteSuspect,   // probe overdue; a = ticks since last ack
  kSiteDown,      // monitor declared the site down; a = ticks since last ack
  kSiteUp,        // monitor saw the site answer again
  kTxnParked,     // txn = job id; a = attempts so far (waiting on quarantine)
  kTxnUnparked,   // txn = job id; a = attempts so far (site back up)
  kTxnResubmit,   // driver retry layer resubmitted; txn = driver txn id,
                  //   a = resubmission number, b = attempts used so far
  kNetFault,      // injected message fault; detail = "req_lost" |
                  //   "resp_lost" | "dup" | "dup_suppressed" | "spike"
  kGtmCrash,      // durable GTM crashed; a = live attempts lost,
                  //   b = in-flight jobs carried into recovery
  kGtmRecover,    // durable GTM back up after WAL replay; a = replayed
                  //   records, b = jobs resumed

  // Engine. site = strand owner (-1 = GTM strand).
  kStrandBacklog,  // threaded mode: a = tasks queued on the strand

  // Static analysis / certified fast path (src/analysis).
  kDowngrade,  // attempt ran the certified fast path: no ser delays, no
               //   tickets; txn = attempt id, a = job id

  // Warm-standby failover (appended so earlier kinds keep their values).
  kGtmPromoteBegin,  // standby starts taking over; a = new fencing epoch,
                     //   b = unshipped WAL tail records to apply
  kGtmPromote,       // promoted standby is live; a = tail records applied,
                     //   b = jobs resumed
};

const char* TraceEventKindName(TraceEventKind kind);

/// One recorded event. `time` is NowTicks() of the owning multidatabase —
/// virtual ticks under the simulator, real microseconds under the threaded
/// engine — so one format covers both. `seq` is a process-wide monotone
/// tie-breaker: simulator pumps execute many events at one tick, and the
/// span well-formedness checks (submit < init <= ser <= ack <= fin) are
/// defined over (time, seq).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kSubmit;
  sim::Time time = 0;
  int64_t seq = 0;
  int64_t txn = -1;
  int64_t site = -1;
  int64_t a = 0;
  int64_t b = 0;
  /// Kind-specific label. MUST be a string literal (or otherwise immortal):
  /// events outlive the call site and are never deep-copied.
  const char* detail = nullptr;
};

/// Runtime configuration of one TraceSink.
struct TraceConfig {
  /// Master runtime switch; leave false for untraced runs so every hook is
  /// a null-pointer check.
  bool enabled = false;
  /// Events retained per recording thread. A full buffer drops further
  /// events (counted, reported by dropped()) rather than blocking or
  /// reallocating on the hot path.
  size_t buffer_capacity = 1 << 18;
};

/// Collects TraceEvents from every strand and client thread of one
/// multidatabase run. Each recording thread appends to its own buffer under
/// its own (uncontended) mutex — "lock-free-ish": the fast path never blocks
/// on another thread — and Drain() merges all buffers into (time, seq)
/// order once the run is quiescent.
///
/// Timestamps come from `clock`, which must be callable from any thread
/// (Mdbs::NowTicks is). Thread-buffer slots are keyed by a process-unique
/// sink id, so a thread that outlives one sink and records into another
/// never touches freed memory.
class TraceSink {
 public:
  using Clock = std::function<sim::Time()>;

  TraceSink(const TraceConfig& config, Clock clock);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  bool enabled() const { return kTraceCompiledIn && config_.enabled; }

  /// Records one event stamped with clock() and the next global sequence
  /// number. Thread-safe; drops (and counts) when the calling thread's
  /// buffer is full or the sink is disabled.
  void Record(TraceEventKind kind, int64_t txn, int64_t site, int64_t a = 0,
              int64_t b = 0, const char* detail = nullptr);

  /// Merges every thread's buffer into (time, seq) order and clears them.
  /// Call only when no thread is recording (post-run).
  std::vector<TraceEvent> Drain();

  /// Events dropped on full buffers so far.
  int64_t dropped() const;
  /// Events recorded (excluding drops) so far.
  int64_t recorded() const;

 private:
  struct Buffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    int64_t dropped = 0;
  };

  /// The calling thread's buffer, allocated on first use.
  Buffer* LocalBuffer();

  TraceConfig config_;
  Clock clock_;
  uint64_t id_;
  std::atomic<int64_t> next_seq_{0};
  std::atomic<int64_t> recorded_{0};
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace mdbs::obs

#endif  // MDBS_OBS_TRACE_H_
