#ifndef MDBS_OBS_METRICS_H_
#define MDBS_OBS_METRICS_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "sim/metrics.h"
#include "sim/task_runner.h"

namespace mdbs::obs {

/// Exclusive phases of a global transaction's lifetime. Every tick between
/// submit and finish is attributed to exactly one phase, so the per-phase
/// accumulators of one transaction sum to its measured lifetime (the
/// balance invariant checked by tools/check_trace.py and the tests).
enum class TxnPhase : uint8_t {
  /// Client submit to first GTM-strand processing (admission queue; zero in
  /// the discrete-event engine where submission runs in the same tick).
  kAdmission = 0,
  /// GTM-side decision work: building steps, scheme cond/act processing,
  /// validate handling, commit-chain bookkeeping between site round trips.
  kScheme,
  /// A ser operation of the critical path sitting in GTM2's WAIT list.
  kSerWait,
  /// Site-side execution of ticket reads/writes (the forced-conflict
  /// latch), split out from plain data execution.
  kTicket,
  /// Both legs of site round trips: transit delay, loss-induced silence,
  /// duplicate suppression — everything between dispatch and the site
  /// starting work, plus the response leg.
  kNetwork,
  /// Site-side execution of data operations and commits, including local
  /// lock/validation blocking inside the site.
  kSiteExec,
  /// Randomized retry backoff between failed attempts.
  kBackoff,
  /// Parked on a quarantined site, excluding durable-recovery overlap.
  kParked,
  /// The part of a park overlapping a site's durable WAL replay window.
  kRecovery,
};

inline constexpr int kTxnPhaseCount = 9;

const char* TxnPhaseName(TxnPhase phase);

struct MetricsConfig {
  /// Always-on by default — the engine is cheap enough to leave enabled
  /// (EXPERIMENTS E14 measures the overhead); disable for A/B runs.
  bool enabled = true;
  /// Width of one timeline window in ticks (virtual ticks in the simulator,
  /// microseconds in the threaded engine).
  sim::Time timeline_window = 5000;
};

/// One window of the run timeline. `window * window_size` is its start
/// tick; windows with no activity are omitted from the series.
struct TimelinePoint {
  int64_t window = 0;
  int64_t submitted = 0;
  int64_t committed = 0;
  int64_t failed = 0;
  int64_t attempt_aborts = 0;
  int64_t max_queue_depth = 0;
  int64_t max_wait_depth = 0;
  int64_t max_parked = 0;
  int64_t site_down_events = 0;
  /// p99 of global-txn lifetimes committing in this window (0 if none).
  double p99_latency = 0;
};

/// Immutable result of MetricsEngine::Snapshot(), taken once the run is
/// quiescent. Feeds the JSON run report and bench output.
struct MetricsSnapshot {
  bool enabled = false;
  sim::Time window_size = 0;
  /// Lifetime (submit to finish) over all finished global transactions.
  sim::Summary lifetime;
  /// Per-phase durations; every finished transaction contributes one
  /// observation to every phase (zeros included), so each summary's count
  /// equals `finished`.
  std::array<sim::Summary, kTxnPhaseCount> phases;
  /// Site-side busy time per round trip, per site (measured on the site's
  /// own strand; includes local blocking).
  std::vector<std::pair<SiteId, sim::Summary>> site_exec;
  /// Exact per-phase tick totals and their lifetime counterpart; the
  /// balance invariant is sum(phase_ticks) == lifetime_ticks.
  std::array<int64_t, kTxnPhaseCount> phase_ticks{};
  int64_t lifetime_ticks = 0;
  int64_t finished = 0;
  int64_t committed = 0;
  /// Transactions whose phases did not sum to their lifetime (always 0;
  /// kept loud in the report so a wiring regression cannot hide).
  int64_t balance_violations = 0;
  int64_t max_balance_error = 0;
  std::vector<TimelinePoint> timeline;
  /// Phase with the largest total across all transactions.
  TxnPhase bottleneck = TxnPhase::kSiteExec;
  double bottleneck_share = 0;

  /// Human-readable per-phase table (mdbsim --phase_breakdown).
  std::string BreakdownTable() const;
};

/// A Summary recorded from many threads without hot-path synchronization:
/// each thread owns a private shard (registered once under a mutex, then
/// written lock-free) and Drain() folds the shards bucket-wise. The drain
/// contract is the TraceSink one: call only after every recording thread
/// has been joined or the run is otherwise quiescent — the join provides
/// the happens-before edge, so no atomics are needed on the record path.
class ShardedSummary {
 public:
  ShardedSummary();

  ShardedSummary(const ShardedSummary&) = delete;
  ShardedSummary& operator=(const ShardedSummary&) = delete;

  /// Thread-safe; allocation-free after the calling thread's first Record.
  void Record(double value);

  /// Folds all shards into one summary. Quiescence required (see above).
  sim::Summary Drain() const;

 private:
  struct Shard {
    sim::Summary summary;
  };

  Shard* LocalShard();

  /// Distinguishes this instance in the thread-local shard cache (instances
  /// can die and the heap can recycle addresses; ids cannot collide).
  uint64_t id_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Always-on metrics engine: per-transaction latency decomposition, windowed
/// timeline, and per-site execution histograms, independent of the
/// compile-time-gated trace sink.
///
/// Threading model. All transaction accounting entry points (TxnSubmitted
/// through TxnFinished) MUST be called on the GTM strand — the same strand
/// that runs every GTM1/GTM2 state transition — which makes the per-job
/// phase state machine single-writer and lock-free. RecordSiteExec runs on
/// site strands through per-thread shards. AddRecoveryWindow is rare
/// (durable crash recovery) and takes a mutex. Snapshot() requires
/// quiescence (strands stopped or the simulator idle).
class MetricsEngine {
 public:
  using Clock = std::function<sim::Time()>;

  MetricsEngine(const MetricsConfig& config, Clock clock,
                std::vector<SiteId> sites);

  MetricsEngine(const MetricsEngine&) = delete;
  MetricsEngine& operator=(const MetricsEngine&) = delete;

  bool enabled() const { return config_.enabled; }

  // --- GTM-strand entry points -------------------------------------------

  /// Threaded admission: the client thread stamped `enqueue_time` before
  /// posting to the GTM strand; the next TxnSubmitted starts the lifetime
  /// there and charges the gap to kAdmission.
  void StageAdmission(sim::Time enqueue_time);

  /// A new global transaction entered the GTM. Starts its lifetime clock
  /// (at the staged admission time if one is pending) in phase kAdmission.
  void TxnSubmitted(int64_t job, std::vector<SiteId> sites);

  /// Attempt bookkeeping: GTM2 reports WAIT dwell keyed by attempt id, so
  /// the engine keeps an attempt -> job map.
  void AttemptStarted(GlobalTxnId attempt, int64_t job);
  void AttemptEnded(GlobalTxnId attempt);

  /// Attempt-level abort (retry or give-up); timeline counter only.
  void AttemptAborted(int64_t job);

  /// Moves the transaction into `next`, charging the elapsed interval to
  /// the phase it leaves. Unknown jobs are ignored (metrics never throw).
  void Transition(int64_t job, TxnPhase next);

  /// A ser operation of `attempt` entered / left GTM2's WAIT list. Applied
  /// only when the transaction currently sits in the matching phase: an
  /// init op can WAIT while a site round trip is in flight, and the round
  /// trip — not the waiting side op — is the critical path.
  void WaitEnter(GlobalTxnId attempt);
  void WaitExit(GlobalTxnId attempt);

  /// Site round trips. The gateway measures the site-side busy time on the
  /// site's strand and stages it (same GTM-strand task as the response
  /// callback); EndRoundTrip consumes the staged value if it matches
  /// `sub` — charging min(busy, interval) to the current phase and the
  /// remainder to kNetwork — or attributes the whole interval to kNetwork
  /// (e.g. a synchronous Begin). Lost responses never reach here; their
  /// interval stays on the current phase until the attempt times out.
  void StageSiteWork(TxnId sub, sim::Time busy);
  void EndRoundTrip(int64_t job, TxnId sub);

  /// Final outcome; closes the open phase (splitting any park overlap with
  /// durable recovery windows into kRecovery), checks the balance
  /// invariant, folds the decomposition into the run summaries, and drops
  /// the per-job state.
  void TxnFinished(int64_t job, bool committed);

  /// GTM2 queue/wait depth at enqueue time; per-window maxima.
  void SampleGtm2Depth(int64_t queue_depth, int64_t wait_depth);

  /// Health layer: a site was declared down (timeline counter).
  void SiteDownEvent();

  // --- site-strand entry points ------------------------------------------

  /// Site-side busy time of one round trip (delivery to response), recorded
  /// on the site's own strand into a per-thread shard.
  void RecordSiteExec(SiteId site, sim::Time busy);

  /// Durable recovery: `site` replays its WAL during [begin, end); parks
  /// overlapping this window count as kRecovery, not kParked. Any strand.
  void AddRecoveryWindow(SiteId site, sim::Time begin, sim::Time end);

  // --- drain -------------------------------------------------------------

  /// Folds everything into an immutable snapshot. Quiescence required.
  MetricsSnapshot Snapshot() const;

 private:
  struct TxnState {
    sim::Time submit = 0;
    sim::Time phase_start = 0;
    TxnPhase phase = TxnPhase::kAdmission;
    std::array<sim::Time, kTxnPhaseCount> acc{};
    std::vector<SiteId> sites;
  };

  struct WindowAcc {
    TimelinePoint point;
    /// Lifetimes of commits in this window; p99 computed at Snapshot().
    std::vector<int64_t> latencies;
  };

  sim::Time Now() const { return clock_(); }
  TxnState* Find(int64_t job);
  WindowAcc& Window(sim::Time at);
  /// Closes the open phase interval at `now`, splitting parked time against
  /// recovery windows.
  void ClosePhase(TxnState* state, sim::Time now);
  /// Total length of [begin, end) covered by the union of the sites'
  /// recovery windows.
  sim::Time RecoveryOverlap(const std::vector<SiteId>& sites, sim::Time begin,
                            sim::Time end) const;

  MetricsConfig config_;
  Clock clock_;

  // GTM-strand state (single writer, no locks).
  std::unordered_map<int64_t, TxnState> txns_;
  std::unordered_map<GlobalTxnId, int64_t> attempt_job_;
  std::optional<sim::Time> staged_admission_;
  TxnId staged_sub_;
  sim::Time staged_busy_ = 0;
  sim::Summary lifetime_;
  std::array<sim::Summary, kTxnPhaseCount> phase_summaries_;
  std::array<int64_t, kTxnPhaseCount> phase_ticks_{};
  int64_t lifetime_ticks_ = 0;
  int64_t finished_ = 0;
  int64_t committed_ = 0;
  int64_t balance_violations_ = 0;
  int64_t max_balance_error_ = 0;
  int64_t parked_now_ = 0;
  std::map<int64_t, WindowAcc> timeline_;

  // Site-strand state (the maps are built in the constructor and read-only
  // afterwards; each ShardedSummary handles its own thread safety).
  std::vector<SiteId> site_ids_;
  std::unordered_map<SiteId, size_t> site_index_;
  std::vector<std::unique_ptr<ShardedSummary>> site_exec_;

  // Rare cross-strand state (durable recovery windows).
  mutable std::mutex recovery_mu_;
  std::unordered_map<SiteId, std::vector<std::pair<sim::Time, sim::Time>>>
      recovery_windows_;
};

/// Installs the snapshot's summaries and counters into a run-report
/// registry under the txn.lifetime / txn.phase.* / site.exec.* names.
void AddSnapshotToRegistry(const MetricsSnapshot& snapshot,
                           sim::MetricsRegistry* registry);

}  // namespace mdbs::obs

#endif  // MDBS_OBS_METRICS_H_
