#ifndef MDBS_OBS_REPORT_H_
#define MDBS_OBS_REPORT_H_

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/metrics.h"

namespace mdbs::obs {

/// Derives run-level series from a drained (time, seq)-sorted trace into
/// `registry`:
///   - `events.<kind>` counters, one per TraceEventKind seen;
///   - `phase.submit_to_commit`, `phase.attempt_to_init`, `phase.init_to_ser`,
///     `phase.ser_to_ack`, `phase.ack_to_fin` latency summaries (ticks),
///     linking each committed attempt back through its lifecycle events;
///   - `wait.dwell.<op-kind>` — how long operations sat in GTM2's WAIT,
///     split by the operation kind whose cond failed (plus
///     `wait.dwell.abandoned.<op-kind>` for waits cut short by an abort);
///   - `gtm2.queue_depth` / `gtm2.wait_depth` sampled at every enqueue;
///   - `strand.backlog.gtm` / `strand.backlog.s<k>` in threaded runs.
/// Composes with counters already in the registry (e.g. driver stats).
void AggregateTrace(const std::vector<TraceEvent>& events,
                    sim::MetricsRegistry* registry);

/// Ordered (key, value) pairs describing the run (scheme, engine, seed...).
using ReportInfo = std::vector<std::pair<std::string, std::string>>;

/// Optional run-report sections beyond the registry.
struct ReportExtras {
  /// Metrics-engine snapshot -> "metrics" section: per-phase breakdown with
  /// exact tick totals, the balance invariant, the windowed timeline and the
  /// bottleneck verdict. Null omits the section.
  const MetricsSnapshot* metrics = nullptr;
  /// Trace-sink integrity -> "trace" section (recorded vs dropped events,
  /// so a silently-truncated trace is visible in the report). Negative
  /// `trace_recorded` omits the section.
  int64_t trace_recorded = -1;
  int64_t trace_dropped = 0;
};

/// Writes the structured JSON run report:
///   {"info": {...},
///    "counters": {name: n, ...},
///    "summaries": {name: {count, mean, min, max,
///                         quantiles: {p50, p90, p95, p99, p999},
///                         histogram: [{le, count}, ...]}, ...},
///    "metrics": {...}?, "trace": {recorded, dropped}?}
/// Histograms are the summaries' log-linear buckets merged to power-of-two
/// resolution; every observation is counted (no sampling), so the bucket
/// counts sum to `count` exactly.
void WriteJsonReport(std::ostream& os, const ReportInfo& info,
                     const sim::MetricsRegistry& registry,
                     const ReportExtras& extras = {});

/// WriteJsonReport into `path`; fails on I/O errors.
Status WriteJsonReportFile(const std::string& path, const ReportInfo& info,
                           const sim::MetricsRegistry& registry,
                           const ReportExtras& extras = {});

}  // namespace mdbs::obs

#endif  // MDBS_OBS_REPORT_H_
