#include "obs/trace_export.h"

#include <fstream>
#include <map>
#include <string>
#include <unordered_map>

#include "obs/json.h"

namespace mdbs::obs {
namespace {

/// tid 0 is the GTM track; site k renders as tid k + 1.
int64_t TidFor(const TraceEvent& e) { return e.site >= 0 ? e.site + 2 : 1; }

constexpr int64_t kPid = 1;

/// Emits one event header (common fields); the caller finishes the object.
void BeginEvent(JsonWriter& w, const char* ph, const char* name, int64_t tid,
                sim::Time ts) {
  w.BeginObject();
  w.Key("name").String(name);
  w.Key("ph").String(ph);
  w.Key("pid").Int(kPid);
  w.Key("tid").Int(tid);
  w.Key("ts").Int(ts);
}

struct OpenSpan {
  std::string name;
  const char* cat;
  int64_t tid;
  sim::Time begin;
};

/// Async-span bookkeeping: Chrome's "b"/"e" events pair up by (cat, id), and
/// async is the right phase here because many spans of one category overlap
/// on one track at a time (e.g. dozens of ops in WAIT at once).
class SpanTable {
 public:
  explicit SpanTable(JsonWriter& w) : w_(w) {}

  void Open(const std::string& id, std::string name, const char* cat,
            int64_t tid, sim::Time ts) {
    // Re-opening an id (e.g. a retried local txn reusing its key) force-ends
    // the stale span so begins and ends stay balanced.
    Close(id, ts);
    Emit("b", name, cat, id, tid, ts);
    open_.emplace(id, OpenSpan{std::move(name), cat, tid, ts});
  }

  bool Close(const std::string& id, sim::Time ts) {
    auto it = open_.find(id);
    if (it == open_.end()) return false;
    Emit("e", it->second.name, it->second.cat, id, it->second.tid, ts);
    open_.erase(it);
    return true;
  }

  /// Ends every span still open (a run can finish with ops parked in WAIT).
  void CloseAll(sim::Time ts) {
    // Deterministic order: open_ is an ordered map keyed by span id.
    for (const auto& [id, span] : open_) {
      Emit("e", span.name, span.cat, id, span.tid, ts);
    }
    open_.clear();
  }

 private:
  void Emit(const char* ph, const std::string& name, const char* cat,
            const std::string& id, int64_t tid, sim::Time ts) {
    BeginEvent(w_, ph, name.c_str(), tid, ts);
    w_.Key("cat").String(cat);
    w_.Key("id").String(id);
    w_.EndObject();
  }

  JsonWriter& w_;
  std::map<std::string, OpenSpan> open_;
};

void EmitThreadName(JsonWriter& w, int64_t tid, const std::string& name) {
  w.BeginObject();
  w.Key("name").String("thread_name");
  w.Key("ph").String("M");
  w.Key("pid").Int(kPid);
  w.Key("tid").Int(tid);
  w.Key("args").BeginObject();
  w.Key("name").String(name);
  w.EndObject();
  w.EndObject();
}

void EmitCounter(JsonWriter& w, const char* name, sim::Time ts,
                 std::initializer_list<std::pair<const char*, int64_t>> args) {
  BeginEvent(w, "C", name, 1, ts);
  w.Key("args").BeginObject();
  for (const auto& [key, value] : args) w.Key(key).Int(value);
  w.EndObject();
  w.EndObject();
}

void EmitInstant(JsonWriter& w, const TraceEvent& e) {
  BeginEvent(w, "i", TraceEventKindName(e.kind), TidFor(e), e.time);
  w.Key("s").String("t");  // thread-scoped instant
  w.Key("args").BeginObject();
  w.Key("txn").Int(e.txn);
  if (e.site >= 0) w.Key("site").Int(e.site);
  w.Key("a").Int(e.a);
  w.Key("b").Int(e.b);
  if (e.detail != nullptr) w.Key("detail").String(e.detail);
  w.EndObject();
  w.EndObject();
}

std::string AttemptKey(int64_t attempt) { return "a" + std::to_string(attempt); }

std::string WaitKey(const TraceEvent& e) {
  return "w" + std::to_string(e.txn) + ":" + std::to_string(e.site) + ":" +
         (e.detail != nullptr ? e.detail : "?");
}

std::string SubtxnKey(int64_t site, int64_t txn) {
  return "t" + std::to_string(site) + ":" + std::to_string(txn);
}

std::string BlockKey(int64_t site, int64_t txn) {
  return "blk" + std::to_string(site) + ":" + std::to_string(txn);
}

std::string CrashKey(int64_t site) { return "crash" + std::to_string(site); }

std::string RecoveryKey(int64_t site) { return "rcv" + std::to_string(site); }

}  // namespace

void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                      const ChromeTraceOptions& options) {
  JsonWriter w(os);
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray(/*one_per_line=*/true);

  EmitThreadName(w, 1, "GTM");
  std::map<int64_t, std::string> site_names(options.site_names.begin(),
                                            options.site_names.end());
  for (const TraceEvent& e : events) {
    if (e.site >= 0 && !site_names.count(e.site)) {
      site_names.emplace(e.site, "site-" + std::to_string(e.site));
    }
  }
  for (const auto& [site, name] : site_names) {
    EmitThreadName(w, site + 2, name);
  }

  sim::Time end_ts = 0;
  for (const TraceEvent& e : events) end_ts = std::max(end_ts, e.time);

  SpanTable spans(w);
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEventKind::kAttemptStart:
        spans.Open(AttemptKey(e.txn),
                   "G" + std::to_string(e.a) + " attempt " +
                       std::to_string(e.b),
                   "attempt", 1, e.time);
        break;
      case TraceEventKind::kTxnCommit:
      case TraceEventKind::kAttemptAbort:
        spans.Close(AttemptKey(e.txn), e.time);
        EmitInstant(w, e);
        break;

      case TraceEventKind::kWaitEnter:
        spans.Open(WaitKey(e),
                   std::string("WAIT ") + (e.detail != nullptr ? e.detail : "?"),
                   "wait", 1, e.time);
        break;
      case TraceEventKind::kWaitExit:
      case TraceEventKind::kWaitAbandon:
        spans.Close(WaitKey(e), e.time);
        if (e.kind == TraceEventKind::kWaitAbandon) EmitInstant(w, e);
        break;

      case TraceEventKind::kSiteBegin:
        spans.Open(SubtxnKey(e.site, e.txn),
                   e.a >= 0 ? "G" + std::to_string(e.a)
                            : "local T" + std::to_string(e.txn),
                   "subtxn", TidFor(e), e.time);
        break;
      case TraceEventKind::kSiteCommit:
      case TraceEventKind::kSiteAbort:
        // An abort (or commit) also retires any still-blocked operation.
        spans.Close(BlockKey(e.site, e.txn), e.time);
        spans.Close(SubtxnKey(e.site, e.txn), e.time);
        if (e.kind == TraceEventKind::kSiteAbort) EmitInstant(w, e);
        break;

      case TraceEventKind::kOpBlocked:
        spans.Open(BlockKey(e.site, e.txn), "blocked", "block", TidFor(e),
                   e.time);
        break;
      case TraceEventKind::kOpResumed:
        spans.Close(BlockKey(e.site, e.txn), e.time);
        break;

      case TraceEventKind::kCrash:
        // The outage window renders as a span on the crashed site's own
        // track, so the lock waits and aborts it causes line up under it.
        spans.Open(CrashKey(e.site), "DOWN", "crash", TidFor(e), e.time);
        EmitInstant(w, e);
        break;
      case TraceEventKind::kRecoveryBegin:
        // WAL replay renders as a RECOVERY span nested inside the DOWN
        // window on the same site track.
        spans.Open(RecoveryKey(e.site), "RECOVERY", "recovery", TidFor(e),
                   e.time);
        EmitInstant(w, e);
        break;
      case TraceEventKind::kRecover:
        spans.Close(RecoveryKey(e.site), e.time);
        spans.Close(CrashKey(e.site), e.time);
        EmitInstant(w, e);
        break;

      case TraceEventKind::kGtmCrash:
        // The GTM outage renders as a span on the GTM track; WAL replay
        // and the resumed/aborted attempts it causes line up under it.
        spans.Open("gtmdown", "GTM DOWN", "gtm_crash", 1, e.time);
        EmitInstant(w, e);
        break;
      case TraceEventKind::kGtmRecover:
        spans.Close("gtmdown", e.time);
        EmitInstant(w, e);
        break;
      case TraceEventKind::kGtmPromoteBegin:
        // Failover renders as its own span on the GTM track, nested under
        // the GTM DOWN span the primary's crash opened: the visible gap
        // between them is the detection delay, and the FAILOVER span's
        // width is the tail-bounded takeover work.
        spans.Open("failover", "FAILOVER", "gtm_failover", 1, e.time);
        EmitInstant(w, e);
        break;
      case TraceEventKind::kGtmPromote:
        spans.Close("failover", e.time);
        spans.Close("gtmdown", e.time);
        EmitInstant(w, e);
        break;

      case TraceEventKind::kQueueDepth:
        EmitCounter(w, "gtm2 depth", e.time,
                    {{"queue", e.a}, {"wait", e.b}});
        break;
      case TraceEventKind::kStrandBacklog:
        EmitCounter(w,
                    e.site >= 0
                        ? ("backlog s" + std::to_string(e.site)).c_str()
                        : "backlog gtm",
                    e.time, {{"tasks", e.a}});
        break;

      default:
        EmitInstant(w, e);
        break;
    }
  }
  spans.CloseAll(end_ts);

  w.EndArray();
  w.EndObject();
  os << "\n";
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events,
                            const ChromeTraceOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace output file: " + path);
  }
  WriteChromeTrace(out, events, options);
  out.flush();
  if (!out) return Status::Internal("short write to trace file: " + path);
  return Status::OK();
}

}  // namespace mdbs::obs
