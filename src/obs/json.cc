#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace mdbs::obs {

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (key_pending_) {
    key_pending_ = false;
    return;  // The comma was emitted before the key.
  }
  if (scopes_.empty()) return;
  Scope& scope = scopes_.back();
  if (!scope.first) os_ << ",";
  if (scope.one_per_line) os_ << "\n";
  scope.first = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  os_ << "{";
  scopes_.push_back(Scope{});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  scopes_.pop_back();
  os_ << "}";
  return *this;
}

JsonWriter& JsonWriter::BeginArray(bool one_per_line) {
  BeforeValue();
  os_ << "[";
  scopes_.push_back(Scope{true, one_per_line});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  bool one_per_line = scopes_.back().one_per_line;
  bool empty = scopes_.back().first;
  scopes_.pop_back();
  if (one_per_line && !empty) os_ << "\n";
  os_ << "]";
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  BeforeValue();
  os_ << "\"" << EscapeJson(name) << "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  os_ << "\"" << EscapeJson(value) << "\"";
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    os_ << "null";  // JSON has no Inf/NaN.
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  os_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  os_ << "null";
  return *this;
}

}  // namespace mdbs::obs
