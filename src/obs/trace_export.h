#ifndef MDBS_OBS_TRACE_EXPORT_H_
#define MDBS_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace mdbs::obs {

struct ChromeTraceOptions {
  /// (site id, human label) pairs; sites become one track each (tid =
  /// site id + 1), the GTM is tid 0. Sites appearing only in events get a
  /// default "site-N" label.
  std::vector<std::pair<int64_t, std::string>> site_names;
};

/// Serializes a drained trace as Chrome trace-event JSON — loadable in
/// chrome://tracing and Perfetto (https://ui.perfetto.dev). Layout:
///   - one track per site plus one for the GTM (thread_name metadata);
///   - async spans ("b"/"e") for attempts, WAIT dwell, per-site
///     subtransactions and blocked operations — async because many overlap
///     on one track at once;
///   - instant events ("i") for point happenings (marked edges,
///     dependencies, wounds, deadlocks, validation failures, crashes);
///   - counter events ("C") for GTM2 queue depths and strand backlog.
/// Timestamps are NowTicks() values used as microseconds: exact wall time
/// under the threaded engine, virtual ticks under the simulator.
void WriteChromeTrace(std::ostream& os, const std::vector<TraceEvent>& events,
                      const ChromeTraceOptions& options);

/// WriteChromeTrace into `path`; fails on I/O errors.
Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events,
                            const ChromeTraceOptions& options);

}  // namespace mdbs::obs

#endif  // MDBS_OBS_TRACE_EXPORT_H_
