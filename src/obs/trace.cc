#include "obs/trace.h"

#include <algorithm>

namespace mdbs::obs {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmit:
      return "submit";
    case TraceEventKind::kAttemptStart:
      return "attempt_start";
    case TraceEventKind::kAttemptTimeout:
      return "attempt_timeout";
    case TraceEventKind::kAttemptAbort:
      return "attempt_abort";
    case TraceEventKind::kTxnCommit:
      return "txn_commit";
    case TraceEventKind::kTxnFail:
      return "txn_fail";
    case TraceEventKind::kInit:
      return "init";
    case TraceEventKind::kSerRelease:
      return "ser_release";
    case TraceEventKind::kAck:
      return "ack";
    case TraceEventKind::kValidate:
      return "validate";
    case TraceEventKind::kFin:
      return "fin";
    case TraceEventKind::kWaitEnter:
      return "wait_enter";
    case TraceEventKind::kWaitExit:
      return "wait_exit";
    case TraceEventKind::kWaitAbandon:
      return "wait_abandon";
    case TraceEventKind::kSchemeAbort:
      return "scheme_abort";
    case TraceEventKind::kQueueDepth:
      return "queue_depth";
    case TraceEventKind::kEdgeMark:
      return "edge_mark";
    case TraceEventKind::kEdgeUnmark:
      return "edge_unmark";
    case TraceEventKind::kDepAdd:
      return "dep_add";
    case TraceEventKind::kDepDrop:
      return "dep_drop";
    case TraceEventKind::kSerBefSeed:
      return "ser_bef_seed";
    case TraceEventKind::kSiteBegin:
      return "site_begin";
    case TraceEventKind::kSiteCommit:
      return "site_commit";
    case TraceEventKind::kSiteAbort:
      return "site_abort";
    case TraceEventKind::kOpBlocked:
      return "op_blocked";
    case TraceEventKind::kOpResumed:
      return "op_resumed";
    case TraceEventKind::kLocalAbort:
      return "local_abort";
    case TraceEventKind::kValidationFail:
      return "validation_fail";
    case TraceEventKind::kLockWait:
      return "lock_wait";
    case TraceEventKind::kDeadlock:
      return "deadlock";
    case TraceEventKind::kWound:
      return "wound";
    case TraceEventKind::kCrash:
      return "crash";
    case TraceEventKind::kRecoveryBegin:
      return "recovery_begin";
    case TraceEventKind::kRecover:
      return "recover";
    case TraceEventKind::kSiteSuspect:
      return "site_suspect";
    case TraceEventKind::kSiteDown:
      return "site_down";
    case TraceEventKind::kSiteUp:
      return "site_up";
    case TraceEventKind::kTxnParked:
      return "txn_parked";
    case TraceEventKind::kTxnUnparked:
      return "txn_unparked";
    case TraceEventKind::kTxnResubmit:
      return "txn_resubmit";
    case TraceEventKind::kNetFault:
      return "net_fault";
    case TraceEventKind::kGtmCrash:
      return "gtm_crash";
    case TraceEventKind::kGtmRecover:
      return "gtm_recover";
    case TraceEventKind::kStrandBacklog:
      return "strand_backlog";
    case TraceEventKind::kDowngrade:
      return "downgrade";
    case TraceEventKind::kGtmPromoteBegin:
      return "gtm_promote_begin";
    case TraceEventKind::kGtmPromote:
      return "gtm_promote";
  }
  return "?";
}

namespace {
std::atomic<uint64_t> g_next_sink_id{1};
}  // namespace

TraceSink::TraceSink(const TraceConfig& config, Clock clock)
    : config_(config),
      clock_(std::move(clock)),
      id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceSink::Buffer* TraceSink::LocalBuffer() {
  // Cache the (sink id -> buffer) mapping per thread; the id — never reused
  // across sink instances — guards against a stale pointer into a sink that
  // died at this address and was replaced by another.
  thread_local uint64_t cached_id = 0;
  thread_local Buffer* cached_buffer = nullptr;
  if (cached_id == id_) return cached_buffer;
  auto owned = std::make_unique<Buffer>();
  owned->events.reserve(std::min<size_t>(config_.buffer_capacity, 4096));
  Buffer* buffer = owned.get();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(std::move(owned));
  }
  cached_id = id_;
  cached_buffer = buffer;
  return buffer;
}

void TraceSink::Record(TraceEventKind kind, int64_t txn, int64_t site,
                       int64_t a, int64_t b, const char* detail) {
  if (!enabled()) return;
  TraceEvent event;
  event.kind = kind;
  event.time = clock_();
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.txn = txn;
  event.site = site;
  event.a = a;
  event.b = b;
  event.detail = detail;
  Buffer* buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= config_.buffer_capacity) {
    ++buffer->dropped;
    return;
  }
  buffer->events.push_back(event);
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceSink::Drain() {
  std::vector<TraceEvent> merged;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const std::unique_ptr<Buffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
    buffer->events.clear();
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.time != y.time) return x.time < y.time;
              return x.seq < y.seq;
            });
  return merged;
}

int64_t TraceSink::dropped() const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const std::unique_ptr<Buffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->dropped;
  }
  return total;
}

int64_t TraceSink::recorded() const {
  return recorded_.load(std::memory_order_relaxed);
}

}  // namespace mdbs::obs
