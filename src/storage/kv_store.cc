#include "storage/kv_store.h"

namespace mdbs::storage {

int64_t KvStore::Get(DataItemId item) const {
  auto it = data_.find(item);
  return it == data_.end() ? 0 : it->second;
}

int64_t KvStore::Put(DataItemId item, int64_t value) {
  auto [it, inserted] = data_.try_emplace(item, 0);
  int64_t before = it->second;
  it->second = value;
  return before;
}

void KvStore::Restore(DataItemId item, int64_t before_image) {
  data_[item] = before_image;
}

}  // namespace mdbs::storage
