#include "storage/recovery.h"

#include <unordered_set>
#include <utility>
#include <vector>

namespace mdbs::storage {

Status RecoverWal(const LogDevice& device, bool multiversion,
                  RecoveredState* out) {
  *out = RecoveredState{};
  WalScan scan;
  Status read = ReadWal(device, &scan);
  if (!read.ok()) return read;
  out->scanned_records = static_cast<int64_t>(scan.records.size());
  out->scanned_bytes = static_cast<int64_t>(scan.valid_bytes);
  out->torn_tail = scan.torn_tail;

  // The last complete checkpoint bounds the replay window.
  size_t start = 0;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    if (scan.records[i].type == WalRecordType::kCheckpoint) start = i + 1;
  }
  /// Per-active-txn undo entries (item, before) in apply order: seeded from
  /// the checkpoint, extended by post-checkpoint writes of unresolved txns.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>> active;
  if (start > 0) {
    const CheckpointImage& image = scan.records[start - 1].checkpoint;
    out->used_checkpoint = true;
    out->clock = image.clock;
    for (const CheckpointImage::Item& item : image.items) {
      out->store[item.item] = item.value;
      if (item.last_committed_writer >= 0) {
        out->last_writer[item.item] = item.last_committed_writer;
      }
    }
    for (const auto& [item, value] : image.mv_initial) {
      out->mv_initial[item] = value;
    }
    for (const CheckpointImage::MvVersion& v : image.mv_latest) {
      out->mv_latest[v.item] =
          RecoveredState::MvVersion{v.wts, v.writer, v.value};
    }
    for (const CheckpointImage::ActiveTxn& txn : image.active) {
      active[txn.txn] = txn.undo;
    }
    for (int64_t txn : image.committed) out->committed_set.insert(txn);
  }

  // Analysis: who committed, who finished aborting, within the window.
  std::unordered_set<int64_t> committed, aborted;
  for (size_t i = start; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    switch (rec.type) {
      case WalRecordType::kBegin:
        active.try_emplace(rec.txn);
        out->clock = std::max(out->clock, rec.clock);
        break;
      case WalRecordType::kCommit:
        committed.insert(rec.txn);
        out->clock = std::max(out->clock, rec.clock);
        break;
      case WalRecordType::kAbort:
        aborted.insert(rec.txn);
        break;
      default:
        break;
    }
  }

  // Redo: committed writes and every compensation record, in log order.
  // Loser/aborted writes are skipped — sound under strictness (no other
  // transaction ever overwrote them), and their CLRs (or the undo pass)
  // restore whatever the checkpoint snapshot may carry of them.
  for (size_t i = start; i < scan.records.size(); ++i) {
    const WalRecord& rec = scan.records[i];
    switch (rec.type) {
      case WalRecordType::kWrite:
        if (committed.contains(rec.txn)) {
          out->store[rec.item] = rec.value;
          out->last_writer[rec.item] = rec.txn;
          if (multiversion) {
            out->mv_initial.try_emplace(rec.item, rec.before);
            // Keep the timestamp-order latest, not the log-order latest:
            // a lower-timestamped writer committing later must not shadow
            // the version pre-crash readers were already being served.
            RecoveredState::MvVersion v{rec.clock, rec.txn, rec.value};
            auto [it, inserted] = out->mv_latest.try_emplace(rec.item, v);
            if (!inserted && rec.clock >= it->second.wts) it->second = v;
          }
          ++out->redo_writes;
        } else {
          active.try_emplace(rec.txn);
          active[rec.txn].emplace_back(rec.item, rec.before);
        }
        break;
      case WalRecordType::kClr:
        out->store[rec.item] = rec.value;
        ++out->clr_replays;
        break;
      default:
        break;
    }
  }

  // Undo: transactions neither committed nor fully aborted lost their race
  // with the crash. Roll each back through its before-images in reverse
  // apply order — post-checkpoint entries are no-ops (their writes were
  // never redone), checkpoint-carried entries scrub the fuzzy snapshot.
  out->committed_txns = static_cast<int64_t>(committed.size());
  for (int64_t txn : committed) out->committed_set.insert(txn);
  for (const auto& [txn, undo] : active) {
    if (committed.contains(txn) || aborted.contains(txn)) continue;
    ++out->loser_txns;
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      out->store[it->first] = it->second;
      ++out->undone_writes;
    }
  }
  return Status::OK();
}

}  // namespace mdbs::storage
