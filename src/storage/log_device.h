#ifndef MDBS_STORAGE_LOG_DEVICE_H_
#define MDBS_STORAGE_LOG_DEVICE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace mdbs::storage {

/// Append-only byte device backing one site's write-ahead log. The interface
/// is deliberately tiny — append bytes, read everything back — because the
/// durability model is fsync-free and deterministic: a "crash" loses exactly
/// the bytes that were never appended, never a suffix of what was. Torn
/// writes are modeled explicitly by tests truncating the image mid-frame.
class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Appends `data` at the end of the device. Appends are atomic at this
  /// layer; partial appends only exist as test-constructed images.
  virtual Status Append(const void* data, size_t size) = 0;

  /// Forces everything appended so far to stable storage. The default is a
  /// no-op: the in-memory device IS stable storage under the deterministic
  /// crash model. The file device flushes its stream — a modeled sync
  /// barrier, counted by FrameWriter so the run report states what policy
  /// actually ran (`wal.syncs`).
  virtual Status Sync() { return Status::OK(); }

  /// Bytes currently on the device.
  virtual int64_t Size() const = 0;

  /// The whole device image, front to back.
  virtual Status ReadAll(std::vector<uint8_t>* out) const = 0;

  /// Cuts the device to its first `size` bytes. Recovery truncates a torn
  /// tail here before appending new records; tests build crash points.
  virtual void Truncate(int64_t size) = 0;
};

/// The default "disk": an in-memory byte vector. Both engines replay it
/// byte-for-byte, and recovery tests snapshot/truncate/corrupt it freely.
class MemLogDevice : public LogDevice {
 public:
  MemLogDevice() = default;
  /// Seeds the device with an existing image (prefix-truncation fuzzing).
  explicit MemLogDevice(std::vector<uint8_t> image)
      : bytes_(std::move(image)) {}

  Status Append(const void* data, size_t size) override;
  int64_t Size() const override { return static_cast<int64_t>(bytes_.size()); }
  Status ReadAll(std::vector<uint8_t>* out) const override;

  void Truncate(int64_t size) override;

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  /// XORs one byte of the image (corruption fuzzing).
  void CorruptByte(size_t offset, uint8_t mask = 0xFF);

 private:
  std::vector<uint8_t> bytes_;
};

/// A real append-only file, for `mdbsim --wal_dir=`. Writes are flushed per
/// append (no fsync — the determinism contract is the byte stream, not the
/// kernel's cache behavior); an existing file is recovered from, not
/// truncated.
class FileLogDevice : public LogDevice {
 public:
  /// Opens (creating if absent) `path` for appending.
  explicit FileLogDevice(const std::string& path);

  Status Append(const void* data, size_t size) override;
  Status Sync() override;
  int64_t Size() const override;
  Status ReadAll(std::vector<uint8_t>* out) const override;
  void Truncate(int64_t size) override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::fstream file_;
  int64_t size_ = 0;
  bool open_failed_ = false;
};

}  // namespace mdbs::storage

#endif  // MDBS_STORAGE_LOG_DEVICE_H_
