#ifndef MDBS_STORAGE_WAL_H_
#define MDBS_STORAGE_WAL_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "storage/framing.h"
#include "storage/log_device.h"

namespace mdbs::storage {

/// Write-ahead log record types. The log is logical-physical: redo carries
/// after-images, undo carries before-images, and compensation records (CLR)
/// make abort rollbacks repeatable on replay.
enum class WalRecordType : uint8_t {
  kBegin = 1,       // txn began; carries the global id and the protocol clock
  kWrite = 2,       // one write: item, before-image, after-image
  kClr = 3,         // rollback restored `item` to `value` (compensation)
  kCommit = 4,      // txn committed; carries the protocol clock
  kAbort = 5,       // txn abort completed (all its CLRs precede this)
  kCheckpoint = 6,  // fuzzy checkpoint image (store + active-txn undo)
};

const char* WalRecordTypeName(WalRecordType type);

/// A fuzzy checkpoint: the store as of the checkpoint (which may contain
/// uncommitted in-place writes), the undo entries needed to roll those back,
/// and everything recovery needs to avoid reading the log's prefix again.
/// All vectors are sorted so the encoded image is deterministic.
struct CheckpointImage {
  struct Item {
    int64_t item = 0;
    int64_t value = 0;
    int64_t last_committed_writer = -1;
  };
  struct ActiveTxn {
    int64_t txn = -1;
    int64_t global = -1;
    /// (item, before-image) in apply order — the txn's undo log so far.
    std::vector<std::pair<int64_t, int64_t>> undo;
  };
  struct MvVersion {
    int64_t item = 0;
    int64_t wts = 0;
    int64_t writer = -1;
    int64_t value = 0;
  };

  int64_t clock = 0;  // Protocol clock at checkpoint time.
  std::vector<Item> items;
  /// Every transaction committed at this site so far, sorted. Carried so a
  /// restarted site still answers a duplicate Commit idempotently — the
  /// durable GTM forward-rolls its commit fan-out after its own crash, and
  /// the re-driven Commit may target a sub-transaction that committed (and
  /// was retired from the active table) before the site went down.
  std::vector<int64_t> committed;
  /// Multiversion sites: pre-first-committed-write images (item, value).
  std::vector<std::pair<int64_t, int64_t>> mv_initial;
  /// Multiversion sites: latest committed version per item in TIMESTAMP
  /// order, which can trail commit order (`items` is the commit-order
  /// mirror). Restarted readers must be reseeded from this table — serving
  /// the commit-order value would expose a version the pre-crash protocol
  /// never served and break serializability.
  std::vector<MvVersion> mv_latest;
  std::vector<ActiveTxn> active;
};

/// One decoded log record. Fields are meaningful per `type`; unused ones
/// keep their defaults.
struct WalRecord {
  WalRecordType type = WalRecordType::kBegin;
  int64_t txn = -1;
  int64_t global = -1;
  /// kBegin / kCommit: protocol clock. kWrite on multiversion sites: the
  /// writer's timestamp — version order, which can differ from log order.
  int64_t clock = 0;
  int64_t item = 0;    // kWrite / kClr
  int64_t before = 0;  // kWrite
  int64_t value = 0;   // kWrite after-image; kClr restored value
  CheckpointImage checkpoint;  // kCheckpoint only
};

/// Encodes one record as a CRC-framed byte string:
///   [u32 payload_len][u32 crc32(payload)][payload]
/// payload = [u8 type][little-endian fixed-width fields...]
std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);

/// Result of scanning a device image front to back.
struct WalScan {
  std::vector<WalRecord> records;
  /// Byte offset just past record i — the admissible truncation points.
  std::vector<size_t> boundaries;
  /// Bytes covered by complete, CRC-valid frames.
  size_t valid_bytes = 0;
  /// True when trailing bytes form an incomplete frame — the torn tail a
  /// crash mid-append legitimately leaves. The tail is ignored.
  bool torn_tail = false;
};

/// Decodes every complete frame. A complete frame whose CRC or structure is
/// invalid is corruption — returns a non-OK status (recovery must fail
/// loudly, never silently diverge). An incomplete trailing frame is a torn
/// tail: admitted, flagged, ignored.
Status ReadWal(const LogDevice& device, WalScan* out);

/// Append-side of the log: encodes and appends records, counting bytes and
/// records for the checkpoint trigger and the run report. A thin record
/// schema over the shared CRC framing (storage::FrameWriter).
class WalWriter {
 public:
  explicit WalWriter(LogDevice* device) : frames_(device) {}

  /// Replaces the sync policy (default: every commit point). Commit points
  /// here are kCommit and kCheckpoint records — the records whose loss
  /// would lose an acknowledged commit.
  void SetSyncConfig(const WalSyncConfig& config) {
    frames_.SetSyncConfig(config);
  }

  /// Appends `record`; crashes the process on device errors (the in-memory
  /// device cannot fail; the file device failing is non-recoverable here).
  void Append(const WalRecord& record);

  int64_t records_written() const { return frames_.records_written(); }
  int64_t bytes_written() const { return frames_.bytes_written(); }
  /// Records appended since the last checkpoint record.
  int64_t records_since_checkpoint() const {
    return frames_.records_since_checkpoint();
  }
  /// Sync barriers forced by the policy so far.
  int64_t syncs() const { return frames_.syncs(); }

 private:
  FrameWriter frames_;
};

}  // namespace mdbs::storage

#endif  // MDBS_STORAGE_WAL_H_
