#ifndef MDBS_STORAGE_FRAMING_H_
#define MDBS_STORAGE_FRAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/log_device.h"

namespace mdbs::storage {

/// CRC-32 (IEEE 802.3, reflected) over `size` bytes.
uint32_t Crc32(const void* data, size_t size);

/// Little-endian fixed-width encoding, independent of host byte order so a
/// log written on one machine replays byte-for-byte on another.
void PutU8(std::vector<uint8_t>* out, uint8_t v);
void PutU32(std::vector<uint8_t>* out, uint32_t v);
void PutI64(std::vector<uint8_t>* out, int64_t v);

/// Bounds-checked little-endian decoding cursor. A structural overrun in a
/// CRC-valid payload still counts as corruption (ok() goes false).
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() {
    if (pos_ + 1 > size_) return Fail<uint8_t>();
    return data_[pos_++];
  }
  uint32_t U32() {
    if (pos_ + 4 > size_) return Fail<uint32_t>();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  int64_t I64() {
    if (pos_ + 8 > size_) return Fail<int64_t>();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return static_cast<int64_t>(v);
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    return T{};
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Wraps one payload as a CRC frame:
///   [u32 payload_len][u32 crc32(payload)][payload]
/// This is the one framing implementation shared by the site WAL and the
/// GTM log; the two differ only in their payload (record) schemas.
std::vector<uint8_t> FramePayload(const std::vector<uint8_t>& payload);

/// Result of scanning a framed device image front to back, before any
/// payload decoding.
struct FrameScan {
  /// (offset, length) of each complete, CRC-valid payload in the image.
  std::vector<std::pair<size_t, size_t>> payloads;
  /// Byte offset just past frame i — the admissible truncation points.
  std::vector<size_t> boundaries;
  /// Bytes covered by complete, CRC-valid frames.
  size_t valid_bytes = 0;
  /// True when trailing bytes form an incomplete frame — the torn tail a
  /// crash mid-append legitimately leaves. The tail is ignored.
  bool torn_tail = false;
};

/// Splits `image` into frames. A complete frame whose CRC is invalid is
/// corruption — returns a non-OK status (recovery must fail loudly, never
/// silently diverge). An incomplete trailing frame is a torn tail:
/// admitted, flagged, ignored.
Status ScanFrames(const std::vector<uint8_t>& image, FrameScan* out);

/// When the log's backing device distinguishes "appended" from "on stable
/// storage" (the file device), this decides when the writer forces a sync
/// barrier. The in-memory device is stable by construction, so the policy
/// only changes the `wal.syncs` counter there — which is exactly the point:
/// the report states what policy actually ran.
enum class WalSyncPolicy : uint8_t {
  kEveryCommit,  // sync at every commit-point record (commits, checkpoints)
  kInterval,     // sync every `interval` records, commit or not
  kOff,          // never sync explicitly (device-level flushing only)
};

struct WalSyncConfig {
  WalSyncPolicy policy = WalSyncPolicy::kEveryCommit;
  /// Records per sync under kInterval (must be >= 1 there; ignored
  /// otherwise).
  int64_t interval = 64;
};

/// Parses `every_commit` | `interval:N` | `off` (the `--wal_fsync=` flag
/// language). N must be a positive integer.
StatusOr<WalSyncConfig> ParseWalSyncSpec(const std::string& spec);

/// Append-side shared by both logs: frames and appends payloads, counting
/// bytes and records for the checkpoint trigger and the run report.
class FrameWriter {
 public:
  explicit FrameWriter(LogDevice* device) : device_(device) {}

  /// Replaces the sync policy (default: every commit point).
  void SetSyncConfig(const WalSyncConfig& config) { sync_ = config; }

  /// Frames and appends `payload`; crashes the process on device errors
  /// (the in-memory device cannot fail; the file device failing is
  /// non-recoverable here). `is_commit_point` marks records whose loss
  /// would lose an acknowledged decision (commits, checkpoints) — the sync
  /// policy's kEveryCommit trigger.
  void AppendPayload(const std::vector<uint8_t>& payload, bool is_checkpoint,
                     bool is_commit_point = false);

  int64_t records_written() const { return records_written_; }
  int64_t bytes_written() const { return bytes_written_; }
  /// Records appended since the last checkpoint record.
  int64_t records_since_checkpoint() const {
    return records_since_checkpoint_;
  }
  /// Sync barriers forced so far (`wal.syncs` in the run report).
  int64_t syncs() const { return syncs_; }

 private:
  LogDevice* device_;
  WalSyncConfig sync_;
  int64_t records_written_ = 0;
  int64_t bytes_written_ = 0;
  int64_t records_since_checkpoint_ = 0;
  int64_t records_since_sync_ = 0;
  int64_t syncs_ = 0;
};

}  // namespace mdbs::storage

#endif  // MDBS_STORAGE_FRAMING_H_
