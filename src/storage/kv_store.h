#ifndef MDBS_STORAGE_KV_STORE_H_
#define MDBS_STORAGE_KV_STORE_H_

#include <cstdint>
#include <unordered_map>

#include "common/ids.h"
#include "common/status.h"

namespace mdbs::storage {

/// In-memory key-value store backing one local DBMS site. Items are 64-bit
/// integers keyed by DataItemId; absent items read as 0 (the whole id space
/// is logically pre-initialized), which lets workloads address large key
/// spaces without materializing them.
///
/// The store is policy-free: visibility, locking and undo are the concurrency
/// control protocol's job. It provides before-image capture so protocols that
/// update in place can roll back.
class KvStore {
 public:
  KvStore() = default;

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Current value of `item` (0 if never written).
  int64_t Get(DataItemId item) const;

  /// Installs `value`, returning the before-image.
  int64_t Put(DataItemId item, int64_t value);

  /// Restores a before-image captured by Put.
  void Restore(DataItemId item, int64_t before_image);

  /// Number of items that have been materialized by writes.
  size_t MaterializedCount() const { return data_.size(); }

  /// Wipes every materialized item — a durable site losing its volatile
  /// store at crash (recovery reloads it from the log).
  void Clear() { data_.clear(); }

  /// The materialized items, for checkpoint snapshots and state-equality
  /// checks. Unordered — sort before anything determinism-sensitive.
  const std::unordered_map<DataItemId, int64_t>& items() const {
    return data_;
  }

 private:
  std::unordered_map<DataItemId, int64_t> data_;
};

}  // namespace mdbs::storage

#endif  // MDBS_STORAGE_KV_STORE_H_
