#include "storage/framing.h"

#include <array>
#include <string>

#include "common/logging.h"

namespace mdbs::storage {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out->push_back((u >> (8 * i)) & 0xFF);
}

std::vector<uint8_t> FramePayload(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 8);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Status ScanFrames(const std::vector<uint8_t>& image, FrameScan* out) {
  *out = FrameScan{};
  size_t pos = 0;
  while (pos < image.size()) {
    if (image.size() - pos < 8) {
      out->torn_tail = true;  // Not even a full header.
      break;
    }
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= uint32_t{image[pos + i]} << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= uint32_t{image[pos + 4 + i]} << (8 * i);
    if (image.size() - pos - 8 < len) {
      out->torn_tail = true;  // Frame extends past the end of the device.
      break;
    }
    const uint8_t* payload = image.data() + pos + 8;
    if (Crc32(payload, len) != crc) {
      return Status::Internal("log corruption: CRC mismatch in frame at byte " +
                              std::to_string(pos));
    }
    out->payloads.emplace_back(pos + 8, len);
    pos += 8 + len;
    out->boundaries.push_back(pos);
    out->valid_bytes = pos;
  }
  return Status::OK();
}

StatusOr<WalSyncConfig> ParseWalSyncSpec(const std::string& spec) {
  WalSyncConfig config;
  if (spec == "every_commit") {
    config.policy = WalSyncPolicy::kEveryCommit;
    return config;
  }
  if (spec == "off") {
    config.policy = WalSyncPolicy::kOff;
    return config;
  }
  constexpr const char* kIntervalPrefix = "interval:";
  if (spec.rfind(kIntervalPrefix, 0) == 0) {
    std::string digits = spec.substr(std::string(kIntervalPrefix).size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument("bad wal sync interval: '" + spec + "'");
    }
    config.policy = WalSyncPolicy::kInterval;
    config.interval = std::stoll(digits);
    if (config.interval < 1) {
      return Status::InvalidArgument("wal sync interval must be >= 1: '" +
                                     spec + "'");
    }
    return config;
  }
  return Status::InvalidArgument(
      "bad wal sync spec '" + spec +
      "' (want every_commit | interval:N | off)");
}

void FrameWriter::AppendPayload(const std::vector<uint8_t>& payload,
                                bool is_checkpoint, bool is_commit_point) {
  std::vector<uint8_t> frame = FramePayload(payload);
  Status appended = device_->Append(frame.data(), frame.size());
  MDBS_CHECK(appended.ok()) << appended.message();
  ++records_written_;
  bytes_written_ += static_cast<int64_t>(frame.size());
  if (is_checkpoint) {
    records_since_checkpoint_ = 0;
  } else {
    ++records_since_checkpoint_;
  }
  ++records_since_sync_;
  bool sync_now = false;
  switch (sync_.policy) {
    case WalSyncPolicy::kEveryCommit:
      sync_now = is_commit_point;
      break;
    case WalSyncPolicy::kInterval:
      sync_now = records_since_sync_ >= sync_.interval;
      break;
    case WalSyncPolicy::kOff:
      break;
  }
  if (sync_now) {
    Status synced = device_->Sync();
    MDBS_CHECK(synced.ok()) << synced.message();
    ++syncs_;
    records_since_sync_ = 0;
  }
}

}  // namespace mdbs::storage
