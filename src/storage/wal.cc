#include "storage/wal.h"

#include <cstring>

#include "common/logging.h"
#include "storage/framing.h"

namespace mdbs::storage {
namespace {

void EncodePayload(const WalRecord& record, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kBegin:
      PutI64(out, record.txn);
      PutI64(out, record.global);
      PutI64(out, record.clock);
      break;
    case WalRecordType::kWrite:
      PutI64(out, record.txn);
      PutI64(out, record.item);
      PutI64(out, record.before);
      PutI64(out, record.value);
      PutI64(out, record.clock);
      break;
    case WalRecordType::kClr:
      PutI64(out, record.txn);
      PutI64(out, record.item);
      PutI64(out, record.value);
      break;
    case WalRecordType::kCommit:
      PutI64(out, record.txn);
      PutI64(out, record.clock);
      break;
    case WalRecordType::kAbort:
      PutI64(out, record.txn);
      break;
    case WalRecordType::kCheckpoint: {
      const CheckpointImage& image = record.checkpoint;
      PutI64(out, image.clock);
      PutU32(out, static_cast<uint32_t>(image.committed.size()));
      for (int64_t txn : image.committed) PutI64(out, txn);
      PutU32(out, static_cast<uint32_t>(image.items.size()));
      for (const CheckpointImage::Item& item : image.items) {
        PutI64(out, item.item);
        PutI64(out, item.value);
        PutI64(out, item.last_committed_writer);
      }
      PutU32(out, static_cast<uint32_t>(image.mv_initial.size()));
      for (const auto& [item, value] : image.mv_initial) {
        PutI64(out, item);
        PutI64(out, value);
      }
      PutU32(out, static_cast<uint32_t>(image.mv_latest.size()));
      for (const CheckpointImage::MvVersion& v : image.mv_latest) {
        PutI64(out, v.item);
        PutI64(out, v.wts);
        PutI64(out, v.writer);
        PutI64(out, v.value);
      }
      PutU32(out, static_cast<uint32_t>(image.active.size()));
      for (const CheckpointImage::ActiveTxn& txn : image.active) {
        PutI64(out, txn.txn);
        PutI64(out, txn.global);
        PutU32(out, static_cast<uint32_t>(txn.undo.size()));
        for (const auto& [item, before] : txn.undo) {
          PutI64(out, item);
          PutI64(out, before);
        }
      }
      break;
    }
  }
}

bool DecodePayload(const uint8_t* data, size_t size, WalRecord* out) {
  Cursor c(data, size);
  uint8_t raw_type = c.U8();
  if (!c.ok()) return false;
  switch (static_cast<WalRecordType>(raw_type)) {
    case WalRecordType::kBegin:
      out->type = WalRecordType::kBegin;
      out->txn = c.I64();
      out->global = c.I64();
      out->clock = c.I64();
      break;
    case WalRecordType::kWrite:
      out->type = WalRecordType::kWrite;
      out->txn = c.I64();
      out->item = c.I64();
      out->before = c.I64();
      out->value = c.I64();
      out->clock = c.I64();
      break;
    case WalRecordType::kClr:
      out->type = WalRecordType::kClr;
      out->txn = c.I64();
      out->item = c.I64();
      out->value = c.I64();
      break;
    case WalRecordType::kCommit:
      out->type = WalRecordType::kCommit;
      out->txn = c.I64();
      out->clock = c.I64();
      break;
    case WalRecordType::kAbort:
      out->type = WalRecordType::kAbort;
      out->txn = c.I64();
      break;
    case WalRecordType::kCheckpoint: {
      out->type = WalRecordType::kCheckpoint;
      CheckpointImage& image = out->checkpoint;
      image.clock = c.I64();
      uint32_t n_committed = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_committed && c.ok(); ++i) {
        image.committed.push_back(c.I64());
      }
      uint32_t n_items = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_items && c.ok(); ++i) {
        CheckpointImage::Item item;
        item.item = c.I64();
        item.value = c.I64();
        item.last_committed_writer = c.I64();
        image.items.push_back(item);
      }
      uint32_t n_mv = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_mv && c.ok(); ++i) {
        int64_t item = c.I64();
        int64_t value = c.I64();
        image.mv_initial.emplace_back(item, value);
      }
      uint32_t n_latest = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_latest && c.ok(); ++i) {
        CheckpointImage::MvVersion v;
        v.item = c.I64();
        v.wts = c.I64();
        v.writer = c.I64();
        v.value = c.I64();
        image.mv_latest.push_back(v);
      }
      uint32_t n_active = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_active && c.ok(); ++i) {
        CheckpointImage::ActiveTxn txn;
        txn.txn = c.I64();
        txn.global = c.I64();
        uint32_t n_undo = c.U32();
        if (!c.ok()) return false;
        for (uint32_t j = 0; j < n_undo && c.ok(); ++j) {
          int64_t item = c.I64();
          int64_t before = c.I64();
          txn.undo.emplace_back(item, before);
        }
        image.active.push_back(std::move(txn));
      }
      break;
    }
    default:
      return false;  // Unknown type in a CRC-valid frame: corruption.
  }
  return c.ok() && c.exhausted();
}

}  // namespace

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kBegin:
      return "begin";
    case WalRecordType::kWrite:
      return "write";
    case WalRecordType::kClr:
      return "clr";
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kAbort:
      return "abort";
    case WalRecordType::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  std::vector<uint8_t> payload;
  EncodePayload(record, &payload);
  return FramePayload(payload);
}

Status ReadWal(const LogDevice& device, WalScan* out) {
  *out = WalScan{};
  std::vector<uint8_t> image;
  Status read = device.ReadAll(&image);
  if (!read.ok()) return read;
  FrameScan frames;
  Status scanned = ScanFrames(image, &frames);
  if (!scanned.ok()) return scanned;
  for (const auto& [offset, len] : frames.payloads) {
    WalRecord record;
    if (!DecodePayload(image.data() + offset, len, &record)) {
      return Status::Internal("WAL corruption: undecodable frame at byte " +
                              std::to_string(offset - 8));
    }
    out->records.push_back(std::move(record));
  }
  out->boundaries = std::move(frames.boundaries);
  out->valid_bytes = frames.valid_bytes;
  out->torn_tail = frames.torn_tail;
  return Status::OK();
}

void WalWriter::Append(const WalRecord& record) {
  std::vector<uint8_t> payload;
  EncodePayload(record, &payload);
  bool is_checkpoint = record.type == WalRecordType::kCheckpoint;
  bool is_commit_point =
      is_checkpoint || record.type == WalRecordType::kCommit;
  frames_.AppendPayload(payload, is_checkpoint, is_commit_point);
}

}  // namespace mdbs::storage
