#include "storage/wal.h"

#include <array>
#include <cstring>

#include "common/logging.h"

namespace mdbs::storage {
namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
    }
    table[i] = crc;
  }
  return table;
}

/// Little-endian fixed-width encoding, independent of host byte order so a
/// log written on one machine replays byte-for-byte on another.
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xFF);
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  uint64_t u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out->push_back((u >> (8 * i)) & 0xFF);
}

/// Bounds-checked little-endian decoding cursor. A structural overrun in a
/// CRC-valid payload still counts as corruption (ok_ goes false).
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t U8() {
    if (pos_ + 1 > size_) return Fail<uint8_t>();
    return data_[pos_++];
  }
  uint32_t U32() {
    if (pos_ + 4 > size_) return Fail<uint32_t>();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{data_[pos_ + i]} << (8 * i);
    pos_ += 4;
    return v;
  }
  int64_t I64() {
    if (pos_ + 8 > size_) return Fail<int64_t>();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += 8;
    return static_cast<int64_t>(v);
  }

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    return T{};
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

void EncodePayload(const WalRecord& record, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kBegin:
      PutI64(out, record.txn);
      PutI64(out, record.global);
      PutI64(out, record.clock);
      break;
    case WalRecordType::kWrite:
      PutI64(out, record.txn);
      PutI64(out, record.item);
      PutI64(out, record.before);
      PutI64(out, record.value);
      PutI64(out, record.clock);
      break;
    case WalRecordType::kClr:
      PutI64(out, record.txn);
      PutI64(out, record.item);
      PutI64(out, record.value);
      break;
    case WalRecordType::kCommit:
      PutI64(out, record.txn);
      PutI64(out, record.clock);
      break;
    case WalRecordType::kAbort:
      PutI64(out, record.txn);
      break;
    case WalRecordType::kCheckpoint: {
      const CheckpointImage& image = record.checkpoint;
      PutI64(out, image.clock);
      PutU32(out, static_cast<uint32_t>(image.items.size()));
      for (const CheckpointImage::Item& item : image.items) {
        PutI64(out, item.item);
        PutI64(out, item.value);
        PutI64(out, item.last_committed_writer);
      }
      PutU32(out, static_cast<uint32_t>(image.mv_initial.size()));
      for (const auto& [item, value] : image.mv_initial) {
        PutI64(out, item);
        PutI64(out, value);
      }
      PutU32(out, static_cast<uint32_t>(image.mv_latest.size()));
      for (const CheckpointImage::MvVersion& v : image.mv_latest) {
        PutI64(out, v.item);
        PutI64(out, v.wts);
        PutI64(out, v.writer);
        PutI64(out, v.value);
      }
      PutU32(out, static_cast<uint32_t>(image.active.size()));
      for (const CheckpointImage::ActiveTxn& txn : image.active) {
        PutI64(out, txn.txn);
        PutI64(out, txn.global);
        PutU32(out, static_cast<uint32_t>(txn.undo.size()));
        for (const auto& [item, before] : txn.undo) {
          PutI64(out, item);
          PutI64(out, before);
        }
      }
      break;
    }
  }
}

bool DecodePayload(const uint8_t* data, size_t size, WalRecord* out) {
  Cursor c(data, size);
  uint8_t raw_type = c.U8();
  if (!c.ok()) return false;
  switch (static_cast<WalRecordType>(raw_type)) {
    case WalRecordType::kBegin:
      out->type = WalRecordType::kBegin;
      out->txn = c.I64();
      out->global = c.I64();
      out->clock = c.I64();
      break;
    case WalRecordType::kWrite:
      out->type = WalRecordType::kWrite;
      out->txn = c.I64();
      out->item = c.I64();
      out->before = c.I64();
      out->value = c.I64();
      out->clock = c.I64();
      break;
    case WalRecordType::kClr:
      out->type = WalRecordType::kClr;
      out->txn = c.I64();
      out->item = c.I64();
      out->value = c.I64();
      break;
    case WalRecordType::kCommit:
      out->type = WalRecordType::kCommit;
      out->txn = c.I64();
      out->clock = c.I64();
      break;
    case WalRecordType::kAbort:
      out->type = WalRecordType::kAbort;
      out->txn = c.I64();
      break;
    case WalRecordType::kCheckpoint: {
      out->type = WalRecordType::kCheckpoint;
      CheckpointImage& image = out->checkpoint;
      image.clock = c.I64();
      uint32_t n_items = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_items && c.ok(); ++i) {
        CheckpointImage::Item item;
        item.item = c.I64();
        item.value = c.I64();
        item.last_committed_writer = c.I64();
        image.items.push_back(item);
      }
      uint32_t n_mv = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_mv && c.ok(); ++i) {
        int64_t item = c.I64();
        int64_t value = c.I64();
        image.mv_initial.emplace_back(item, value);
      }
      uint32_t n_latest = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_latest && c.ok(); ++i) {
        CheckpointImage::MvVersion v;
        v.item = c.I64();
        v.wts = c.I64();
        v.writer = c.I64();
        v.value = c.I64();
        image.mv_latest.push_back(v);
      }
      uint32_t n_active = c.U32();
      if (!c.ok()) return false;
      for (uint32_t i = 0; i < n_active && c.ok(); ++i) {
        CheckpointImage::ActiveTxn txn;
        txn.txn = c.I64();
        txn.global = c.I64();
        uint32_t n_undo = c.U32();
        if (!c.ok()) return false;
        for (uint32_t j = 0; j < n_undo && c.ok(); ++j) {
          int64_t item = c.I64();
          int64_t before = c.I64();
          txn.undo.emplace_back(item, before);
        }
        image.active.push_back(std::move(txn));
      }
      break;
    }
    default:
      return false;  // Unknown type in a CRC-valid frame: corruption.
  }
  return c.ok() && c.exhausted();
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* WalRecordTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kBegin:
      return "begin";
    case WalRecordType::kWrite:
      return "write";
    case WalRecordType::kClr:
      return "clr";
    case WalRecordType::kCommit:
      return "commit";
    case WalRecordType::kAbort:
      return "abort";
    case WalRecordType::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  std::vector<uint8_t> payload;
  EncodePayload(record, &payload);
  std::vector<uint8_t> frame;
  frame.reserve(payload.size() + 8);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Status ReadWal(const LogDevice& device, WalScan* out) {
  *out = WalScan{};
  std::vector<uint8_t> image;
  Status read = device.ReadAll(&image);
  if (!read.ok()) return read;
  size_t pos = 0;
  while (pos < image.size()) {
    if (image.size() - pos < 8) {
      out->torn_tail = true;  // Not even a full header.
      break;
    }
    uint32_t len = 0, crc = 0;
    for (int i = 0; i < 4; ++i) len |= uint32_t{image[pos + i]} << (8 * i);
    for (int i = 0; i < 4; ++i) crc |= uint32_t{image[pos + 4 + i]} << (8 * i);
    if (image.size() - pos - 8 < len) {
      out->torn_tail = true;  // Frame extends past the end of the device.
      break;
    }
    const uint8_t* payload = image.data() + pos + 8;
    if (Crc32(payload, len) != crc) {
      return Status::Internal("WAL corruption: CRC mismatch in frame at byte " +
                              std::to_string(pos));
    }
    WalRecord record;
    if (!DecodePayload(payload, len, &record)) {
      return Status::Internal("WAL corruption: undecodable frame at byte " +
                              std::to_string(pos));
    }
    pos += 8 + len;
    out->records.push_back(std::move(record));
    out->boundaries.push_back(pos);
    out->valid_bytes = pos;
  }
  return Status::OK();
}

void WalWriter::Append(const WalRecord& record) {
  std::vector<uint8_t> frame = EncodeWalRecord(record);
  Status appended = device_->Append(frame.data(), frame.size());
  MDBS_CHECK(appended.ok()) << appended.message();
  ++records_written_;
  bytes_written_ += static_cast<int64_t>(frame.size());
  if (record.type == WalRecordType::kCheckpoint) {
    records_since_checkpoint_ = 0;
  } else {
    ++records_since_checkpoint_;
  }
}

}  // namespace mdbs::storage
