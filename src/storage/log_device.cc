#include "storage/log_device.h"

#include <cstring>
#include <filesystem>
#include <system_error>

namespace mdbs::storage {

Status MemLogDevice::Append(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
  return Status::OK();
}

Status MemLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  *out = bytes_;
  return Status::OK();
}

void MemLogDevice::Truncate(int64_t size) {
  if (size >= 0 && static_cast<size_t>(size) < bytes_.size()) {
    bytes_.resize(static_cast<size_t>(size));
  }
}

void MemLogDevice::CorruptByte(size_t offset, uint8_t mask) {
  if (offset < bytes_.size()) bytes_[offset] ^= mask;
}

FileLogDevice::FileLogDevice(const std::string& path) : path_(path) {
  // Open read/write without truncation; create the file first if needed.
  file_.open(path_, std::ios::in | std::ios::out | std::ios::binary);
  if (!file_.is_open()) {
    file_.clear();
    file_.open(path_, std::ios::out | std::ios::binary);
    file_.close();
    file_.open(path_, std::ios::in | std::ios::out | std::ios::binary);
  }
  if (!file_.is_open()) {
    open_failed_ = true;
    return;
  }
  file_.seekg(0, std::ios::end);
  size_ = static_cast<int64_t>(file_.tellg());
}

Status FileLogDevice::Append(const void* data, size_t size) {
  if (open_failed_) {
    return Status::InvalidArgument("cannot open WAL file: " + path_);
  }
  file_.clear();
  file_.seekp(0, std::ios::end);
  file_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  file_.flush();
  if (!file_) return Status::Internal("short append to WAL file: " + path_);
  size_ += static_cast<int64_t>(size);
  return Status::OK();
}

Status FileLogDevice::Sync() {
  if (open_failed_) {
    return Status::InvalidArgument("cannot open WAL file: " + path_);
  }
  file_.flush();
  if (!file_) return Status::Internal("sync failed for WAL file: " + path_);
  return Status::OK();
}

int64_t FileLogDevice::Size() const { return open_failed_ ? 0 : size_; }

void FileLogDevice::Truncate(int64_t size) {
  if (open_failed_ || size < 0 || size >= size_) return;
  std::error_code ec;
  std::filesystem::resize_file(path_, static_cast<uintmax_t>(size), ec);
  if (!ec) size_ = size;
}

Status FileLogDevice::ReadAll(std::vector<uint8_t>* out) const {
  out->clear();
  if (open_failed_) {
    return Status::InvalidArgument("cannot open WAL file: " + path_);
  }
  file_.clear();
  file_.seekg(0, std::ios::beg);
  out->resize(static_cast<size_t>(size_));
  if (size_ > 0) {
    file_.read(reinterpret_cast<char*>(out->data()),
               static_cast<std::streamsize>(size_));
    if (!file_) return Status::Internal("short read from WAL file: " + path_);
  }
  return Status::OK();
}

}  // namespace mdbs::storage
