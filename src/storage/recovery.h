#ifndef MDBS_STORAGE_RECOVERY_H_
#define MDBS_STORAGE_RECOVERY_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "storage/wal.h"

namespace mdbs::storage {

/// Everything restart recovery reconstructs from one site's log.
struct RecoveredState {
  /// The committed store: item -> value. Items absent here read as 0, like
  /// the live store. May materialize items a crash-free store would not
  /// (values rolled back to 0) — value-equal, not map-equal.
  std::unordered_map<int64_t, int64_t> store;
  /// item -> last committed writer (for reseeding multiversion protocols).
  std::unordered_map<int64_t, int64_t> last_writer;
  /// Multiversion sites: pre-first-committed-write images.
  std::unordered_map<int64_t, int64_t> mv_initial;
  struct MvVersion {
    int64_t wts = 0;
    int64_t writer = -1;
    int64_t value = 0;
  };
  /// Multiversion sites: latest committed version per item in TIMESTAMP
  /// order. Can disagree with `store` (the commit-order mirror) when a
  /// lower-timestamped writer committed later; readers must be reseeded
  /// from this table, not from `store`.
  std::unordered_map<int64_t, MvVersion> mv_latest;
  /// Protocol clock to resume from: max clock persisted anywhere in the log.
  /// Counters recovered to >= this value keep timestamps / lock-point
  /// sequences / commit numbers monotone across the restart.
  int64_t clock = 0;
  /// Every transaction ever committed at this site (checkpoint-carried set
  /// plus kCommit records in the replay window) — restores the site's
  /// duplicate-Commit idempotency filter.
  std::unordered_set<int64_t> committed_set;

  // Replay statistics (surfaced in traces and the run report).
  int64_t scanned_records = 0;
  int64_t scanned_bytes = 0;
  int64_t redo_writes = 0;
  int64_t clr_replays = 0;
  int64_t undone_writes = 0;
  int64_t committed_txns = 0;
  int64_t loser_txns = 0;
  bool used_checkpoint = false;
  bool torn_tail = false;
};

/// Replays `device` ARIES-style: analysis from the last complete checkpoint
/// (who committed, who aborted, who was still active — the losers), redo of
/// committed writes and of every compensation record, then undo of the
/// losers' writes from their before-images (checkpoint-carried entries
/// included). Selective redo is sound here because every local protocol is
/// strict — an uncommitted write is never overwritten by another
/// transaction, so skipping loser writes cannot skip a committed value.
///
/// Corruption (a complete frame failing CRC or decode) returns a non-OK
/// status; a torn tail is admitted and flagged. `multiversion` selects
/// whether commit replay maintains the mv-initial-image table, mirroring
/// what the live site does.
Status RecoverWal(const LogDevice& device, bool multiversion,
                  RecoveredState* out);

}  // namespace mdbs::storage

#endif  // MDBS_STORAGE_RECOVERY_H_
