#include "sched/serializability.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>
#include <utility>

#include "common/logging.h"

namespace mdbs::sched {

namespace {

struct ItemAccess {
  int64_t seq;
  TxnId txn;
  OpType type;
};

/// Committed accesses grouped per (site, item), in execution order.
std::map<std::pair<int64_t, int64_t>, std::vector<ItemAccess>>
GroupCommittedAccesses(const ScheduleRecorder& recorder,
                       std::optional<SiteId> only_site) {
  std::map<std::pair<int64_t, int64_t>, std::vector<ItemAccess>> groups;
  for (const RecordedOp& op : recorder.ops()) {
    if (only_site.has_value() && op.site != *only_site) continue;
    const TxnRecord* record = recorder.FindTxn(op.txn);
    if (record == nullptr || record->outcome != TxnOutcome::kCommitted) {
      continue;
    }
    groups[{op.site.value(), op.op.item.value()}].push_back(
        ItemAccess{op.seq, op.txn, op.op.type});
  }
  return groups;
}

/// Adds conflict edges within each group. Instead of all O(k^2) conflicting
/// pairs, the reduced set — last writer -> next access, readers since the
/// last write -> next writer — is emitted; it has the same reachability
/// relation as the full conflict graph (every omitted edge follows a chain
/// of emitted ones), hence the same cycles, and any per-edge monotonicity
/// over it extends to all conflict pairs by transitivity.
void AddConflictEdges(
    const std::map<std::pair<int64_t, int64_t>, std::vector<ItemAccess>>&
        groups,
    const std::function<int64_t(TxnId)>& node_key, DirectedGraph* graph) {
  auto add_edge = [&](TxnId from_txn, TxnId to_txn) {
    if (from_txn == to_txn) return;
    int64_t from = node_key(from_txn);
    int64_t to = node_key(to_txn);
    if (from != to) graph->AddEdge(from, to);
  };
  for (const auto& [key, accesses] : groups) {
    std::optional<TxnId> last_writer;
    std::vector<TxnId> readers_since_write;
    for (const ItemAccess& access : accesses) {
      if (access.type == OpType::kRead) {
        if (last_writer.has_value()) add_edge(*last_writer, access.txn);
        readers_since_write.push_back(access.txn);
        continue;
      }
      if (last_writer.has_value()) add_edge(*last_writer, access.txn);
      for (TxnId reader : readers_since_write) add_edge(reader, access.txn);
      readers_since_write.clear();
      last_writer = access.txn;
    }
  }
}

SerializabilityResult CheckGraph(const DirectedGraph& graph) {
  SerializabilityResult result;
  result.nodes = graph.NodeCount();
  result.edges = graph.EdgeCount();
  result.cycle = graph.FindCycle();
  result.serializable = !result.cycle.has_value();
  return result;
}

/// Adds the multiversion serialization-graph edges of `site` to `graph`,
/// mapping transactions through `node_key`. Version order is the writers'
/// serialization-key (timestamp) order.
void AddMvsgEdges(const ScheduleRecorder& recorder, SiteId site,
                  const std::function<int64_t(TxnId)>& node_key,
                  DirectedGraph* graph) {
  auto committed = [&recorder](TxnId txn) -> const TxnRecord* {
    const TxnRecord* record = recorder.FindTxn(txn);
    return (record != nullptr && record->outcome == TxnOutcome::kCommitted)
               ? record
               : nullptr;
  };
  auto add_edge = [&](TxnId from, TxnId to) {
    if (from == to) return;
    int64_t a = node_key(from);
    int64_t b = node_key(to);
    if (a != b) graph->AddEdge(a, b);
  };

  // Committed writers per item, ordered by serialization key.
  struct VersionInfo {
    int64_t key;
    TxnId writer;
  };
  std::map<int64_t, std::vector<VersionInfo>> versions_by_item;
  for (const RecordedOp& op : recorder.ops()) {
    if (op.site != site || op.op.type != OpType::kWrite) continue;
    const TxnRecord* record = committed(op.txn);
    if (record == nullptr) continue;
    MDBS_CHECK(record->serialization_key.has_value())
        << "multiversion site writer without a timestamp";
    auto& versions = versions_by_item[op.op.item.value()];
    bool seen = false;
    for (const VersionInfo& info : versions) {
      if (info.writer == op.txn) seen = true;
    }
    if (!seen) {
      versions.push_back(VersionInfo{*record->serialization_key, op.txn});
    }
  }
  for (auto& [item, versions] : versions_by_item) {
    std::sort(versions.begin(), versions.end(),
              [](const VersionInfo& a, const VersionInfo& b) {
                return a.key < b.key;
              });
    // Version-order edges.
    for (size_t i = 1; i < versions.size(); ++i) {
      add_edge(versions[i - 1].writer, versions[i].writer);
    }
  }

  // Read edges: reads-from plus reader-before-next-version.
  for (const RecordedOp& op : recorder.ops()) {
    if (op.site != site || op.op.type != OpType::kRead) continue;
    if (committed(op.txn) == nullptr) continue;
    auto item_it = versions_by_item.find(op.op.item.value());
    const std::vector<VersionInfo>* versions =
        item_it == versions_by_item.end() ? nullptr : &item_it->second;

    if (op.read_from.valid() && op.read_from != op.txn) {
      add_edge(op.read_from, op.txn);  // Reads-from.
    }
    if (versions == nullptr || versions->empty()) continue;
    // Successor version after the one read (initial version = before all).
    size_t successor = 0;
    if (op.read_from.valid()) {
      const TxnRecord* writer = committed(op.read_from);
      if (writer == nullptr) continue;  // Own/uncommitted: no constraint.
      int64_t read_key = writer->serialization_key.value_or(-1);
      while (successor < versions->size() &&
             (*versions)[successor].key <= read_key) {
        ++successor;
      }
    }
    if (successor < versions->size()) {
      add_edge(op.txn, (*versions)[successor].writer);
    }
  }
}

}  // namespace

std::string SerializabilityResult::ToString() const {
  std::ostringstream os;
  os << (serializable ? "serializable" : "NOT serializable") << " (nodes="
     << nodes << " edges=" << edges;
  if (cycle.has_value()) {
    os << " cycle=[";
    for (size_t i = 0; i < cycle->size(); ++i) {
      if (i > 0) os << " ";
      os << (*cycle)[i];
    }
    os << "]";
  }
  os << ")";
  return os.str();
}

int64_t GlobalNodeKey(const TxnRecord& record) {
  if (record.global.valid()) return record.global.value() * 2;
  return record.txn.value() * 2 + 1;
}

DirectedGraph BuildLocalConflictGraph(const ScheduleRecorder& recorder,
                                      SiteId site) {
  DirectedGraph graph;
  for (const TxnRecord* record : recorder.TxnsAtSite(site)) {
    if (record->outcome == TxnOutcome::kCommitted) {
      graph.AddNode(record->txn.value());
    }
  }
  auto groups = GroupCommittedAccesses(recorder, site);
  AddConflictEdges(groups, [](TxnId txn) { return txn.value(); }, &graph);
  return graph;
}

SerializabilityResult CheckLocalSerializability(
    const ScheduleRecorder& recorder, SiteId site) {
  return CheckGraph(BuildLocalConflictGraph(recorder, site));
}

DirectedGraph BuildGlobalConflictGraph(const ScheduleRecorder& recorder) {
  DirectedGraph graph;
  for (const auto& [txn, record] : recorder.txns()) {
    if (record.outcome == TxnOutcome::kCommitted) {
      graph.AddNode(GlobalNodeKey(record));
    }
  }
  auto groups = GroupCommittedAccesses(recorder, std::nullopt);
  AddConflictEdges(
      groups,
      [&recorder](TxnId txn) {
        return GlobalNodeKey(*recorder.FindTxn(txn));
      },
      &graph);
  return graph;
}

SerializabilityResult CheckGlobalSerializability(
    const ScheduleRecorder& recorder) {
  return CheckGraph(BuildGlobalConflictGraph(recorder));
}

DirectedGraph BuildMultiversionSerializationGraph(
    const ScheduleRecorder& recorder, SiteId site) {
  DirectedGraph graph;
  for (const TxnRecord* record : recorder.TxnsAtSite(site)) {
    if (record->outcome == TxnOutcome::kCommitted) {
      graph.AddNode(record->txn.value());
    }
  }
  AddMvsgEdges(recorder, site, [](TxnId txn) { return txn.value(); },
               &graph);
  return graph;
}

SerializabilityResult CheckMultiversionSerializability(
    const ScheduleRecorder& recorder, SiteId site) {
  return CheckGraph(BuildMultiversionSerializationGraph(recorder, site));
}

SerializabilityResult CheckGlobalSerializabilityMixed(
    const ScheduleRecorder& recorder,
    const std::vector<SiteId>& mv_sites) {
  DirectedGraph graph;
  for (const auto& [txn, record] : recorder.txns()) {
    if (record.outcome == TxnOutcome::kCommitted) {
      graph.AddNode(GlobalNodeKey(record));
    }
  }
  auto node_key = [&recorder](TxnId txn) {
    return GlobalNodeKey(*recorder.FindTxn(txn));
  };
  auto is_mv = [&mv_sites](SiteId site) {
    for (SiteId mv : mv_sites) {
      if (mv == site) return true;
    }
    return false;
  };
  // Conflict edges for single-version sites only.
  auto groups = GroupCommittedAccesses(recorder, std::nullopt);
  std::map<std::pair<int64_t, int64_t>, std::vector<ItemAccess>> sv_groups;
  for (auto& [key, accesses] : groups) {
    if (!is_mv(SiteId(key.first))) sv_groups[key] = std::move(accesses);
  }
  AddConflictEdges(sv_groups, node_key, &graph);
  for (SiteId site : mv_sites) {
    AddMvsgEdges(recorder, site, node_key, &graph);
  }
  return CheckGraph(graph);
}

Status CheckStrictness(const ScheduleRecorder& recorder, SiteId site,
                       bool multiversion) {
  auto finished_before = [&recorder](TxnId txn, int64_t seq) {
    const TxnRecord* record = recorder.FindTxn(txn);
    return record != nullptr && record->finish_seq >= 0 &&
           record->finish_seq < seq;
  };
  auto violation = [&site](const RecordedOp& op, TxnId writer) {
    std::ostringstream os;
    os << "strictness violated at " << ToString(site) << ": "
       << op.ToString() << " touched data of unfinished "
       << ToString(writer);
    return Status::Internal(os.str());
  };

  std::unordered_map<int64_t, TxnId> last_writer;
  for (const RecordedOp& op : recorder.ops()) {
    if (op.site != site) continue;
    if (op.op.type == OpType::kRead) {
      if (multiversion) {
        // The version read must come from a committed-and-finished writer
        // (or be the reader's own, or the initial version).
        if (op.read_from.valid() && op.read_from != op.txn &&
            !finished_before(op.read_from, op.seq)) {
          return violation(op, op.read_from);
        }
        continue;
      }
      auto it = last_writer.find(op.op.item.value());
      if (it != last_writer.end() && it->second != op.txn &&
          !finished_before(it->second, op.seq)) {
        return violation(op, it->second);
      }
      continue;
    }
    // Write.
    if (!multiversion) {
      auto it = last_writer.find(op.op.item.value());
      if (it != last_writer.end() && it->second != op.txn &&
          !finished_before(it->second, op.seq)) {
        return violation(op, it->second);
      }
      last_writer[op.op.item.value()] = op.txn;
    }
  }
  return Status::OK();
}

Status CheckSerializationKeyProperty(const ScheduleRecorder& recorder,
                                     SiteId site) {
  DirectedGraph graph = BuildLocalConflictGraph(recorder, site);
  for (const TxnRecord* from : recorder.TxnsAtSite(site)) {
    if (from->outcome != TxnOutcome::kCommitted ||
        !from->serialization_key.has_value()) {
      continue;
    }
    for (int64_t to_key : graph.Successors(from->txn.value())) {
      const TxnRecord* to = recorder.FindTxn(TxnId(to_key));
      if (to == nullptr || !to->serialization_key.has_value()) continue;
      if (*from->serialization_key >= *to->serialization_key) {
        std::ostringstream os;
        os << "serialization-key property violated at " << ToString(site)
           << ": " << ToString(from->txn) << " (key "
           << *from->serialization_key << ") conflicts-before "
           << ToString(to->txn) << " (key " << *to->serialization_key << ")";
        return Status::Internal(os.str());
      }
    }
  }
  return Status::OK();
}

}  // namespace mdbs::sched
