#ifndef MDBS_SCHED_GRAPH_H_
#define MDBS_SCHED_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mdbs::sched {

/// One edge of an UndirectedMultigraph: endpoints plus an int64 label
/// (static analysis labels edges with the site the interference happens at).
/// Parallel edges — same endpoints, different labels — are distinct edges.
struct LabeledEdge {
  int64_t u = 0;
  int64_t v = 0;
  int64_t label = 0;
};

/// Small undirected multigraph over int64 node keys with labeled edges,
/// biconnected-component decomposition and constrained cycle search; the
/// static conflict-robustness analyzer (src/analysis) builds its
/// cross-site interference graph on it. Self-loops are not supported.
class UndirectedMultigraph {
 public:
  void AddNode(int64_t node);
  /// Adds an edge and returns its index into edges(). Endpoints must
  /// differ; parallel edges are kept separate.
  size_t AddEdge(int64_t u, int64_t v, int64_t label);

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edges_.size(); }
  const std::vector<LabeledEdge>& edges() const { return edges_; }
  std::vector<int64_t> Nodes() const;

  /// Partitions the edges into biconnected components (edge-index groups).
  /// Every simple cycle lies entirely within one component; a bridge forms
  /// a singleton component of its own.
  std::vector<std::vector<size_t>> BiconnectedComponents() const;

  /// A vertex-simple cycle through both edges, as an ordered edge-index
  /// sequence (consecutive edges share an endpoint, last wraps to first),
  /// or nullopt when none exists. `e1` and `e2` must be distinct indices.
  /// Exhaustive backtracking: intended for the analyzer's small template
  /// graphs, capped at an internal step budget.
  std::optional<std::vector<size_t>> FindCycleThrough(size_t e1,
                                                      size_t e2) const;

 private:
  std::unordered_map<int64_t, std::vector<size_t>> incidence_;
  std::vector<int64_t> nodes_;  // insertion order, for deterministic output
  std::vector<LabeledEdge> edges_;
};

/// Small directed graph over int64 node keys with cycle detection and
/// topological ordering; used for serialization graphs of all flavors.
class DirectedGraph {
 public:
  void AddNode(int64_t node);
  void AddEdge(int64_t from, int64_t to);

  bool HasNode(int64_t node) const { return adj_.contains(node); }
  bool HasEdge(int64_t from, int64_t to) const;

  size_t NodeCount() const { return adj_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  /// True iff the graph contains a directed cycle (self-loops count).
  bool HasCycle() const;

  /// A cycle as a node sequence (first == last), if one exists.
  std::optional<std::vector<int64_t>> FindCycle() const;

  /// Topological order; nullopt when cyclic.
  std::optional<std::vector<int64_t>> TopologicalOrder() const;

  const std::unordered_set<int64_t>& Successors(int64_t node) const;

 private:
  std::unordered_map<int64_t, std::unordered_set<int64_t>> adj_;
  size_t edge_count_ = 0;
};

}  // namespace mdbs::sched

#endif  // MDBS_SCHED_GRAPH_H_
