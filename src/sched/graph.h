#ifndef MDBS_SCHED_GRAPH_H_
#define MDBS_SCHED_GRAPH_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mdbs::sched {

/// Small directed graph over int64 node keys with cycle detection and
/// topological ordering; used for serialization graphs of all flavors.
class DirectedGraph {
 public:
  void AddNode(int64_t node);
  void AddEdge(int64_t from, int64_t to);

  bool HasNode(int64_t node) const { return adj_.contains(node); }
  bool HasEdge(int64_t from, int64_t to) const;

  size_t NodeCount() const { return adj_.size(); }
  size_t EdgeCount() const { return edge_count_; }

  /// True iff the graph contains a directed cycle (self-loops count).
  bool HasCycle() const;

  /// A cycle as a node sequence (first == last), if one exists.
  std::optional<std::vector<int64_t>> FindCycle() const;

  /// Topological order; nullopt when cyclic.
  std::optional<std::vector<int64_t>> TopologicalOrder() const;

  const std::unordered_set<int64_t>& Successors(int64_t node) const;

 private:
  std::unordered_map<int64_t, std::unordered_set<int64_t>> adj_;
  size_t edge_count_ = 0;
};

}  // namespace mdbs::sched

#endif  // MDBS_SCHED_GRAPH_H_
