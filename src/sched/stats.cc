#include "sched/stats.h"

#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace mdbs::sched {

ScheduleStats ComputeScheduleStats(const ScheduleRecorder& recorder) {
  ScheduleStats stats;
  std::unordered_map<SiteId, std::unordered_set<int64_t>> items;
  for (const RecordedOp& op : recorder.ops()) {
    SiteScheduleStats& site = stats.per_site[op.site];
    if (op.op.type == OpType::kRead) {
      ++site.reads;
    } else {
      ++site.writes;
    }
    items[op.site].insert(op.op.item.value());
    ++stats.total_ops;
  }
  std::set<int64_t> committed_globals;
  for (const auto& [txn, record] : recorder.txns()) {
    SiteScheduleStats& site = stats.per_site[record.site];
    if (record.outcome == TxnOutcome::kCommitted) {
      ++site.committed_txns;
      if (record.global.valid()) {
        ++site.global_subtxns;
        committed_globals.insert(record.global.value());
      } else {
        ++stats.committed_local_txns;
      }
    } else if (record.outcome == TxnOutcome::kAborted) {
      ++site.aborted_txns;
    }
  }
  stats.committed_global_txns =
      static_cast<int64_t>(committed_globals.size());
  for (auto& [site, site_stats] : stats.per_site) {
    site_stats.distinct_items =
        static_cast<int64_t>(items[site].size());
  }
  return stats;
}

std::string ScheduleStats::ToString() const {
  std::ostringstream os;
  os << "schedule: " << total_ops << " ops, " << committed_global_txns
     << " global txns, " << committed_local_txns
     << " local txns committed\n";
  for (const auto& [site, s] : per_site) {
    os << "  " << mdbs::ToString(site) << ": r=" << s.reads
       << " w=" << s.writes << " committed=" << s.committed_txns << " ("
       << s.global_subtxns << " global)"
       << " aborted=" << s.aborted_txns << " items=" << s.distinct_items
       << "\n";
  }
  return os.str();
}

}  // namespace mdbs::sched
