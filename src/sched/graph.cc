#include "sched/graph.h"

#include <algorithm>

namespace mdbs::sched {

namespace {
const std::unordered_set<int64_t>& EmptySet() {
  static const std::unordered_set<int64_t>& empty =
      *new std::unordered_set<int64_t>();
  return empty;
}
}  // namespace

void DirectedGraph::AddNode(int64_t node) { adj_.try_emplace(node); }

void DirectedGraph::AddEdge(int64_t from, int64_t to) {
  AddNode(from);
  AddNode(to);
  if (adj_[from].insert(to).second) ++edge_count_;
}

bool DirectedGraph::HasEdge(int64_t from, int64_t to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.contains(to);
}

const std::unordered_set<int64_t>& DirectedGraph::Successors(
    int64_t node) const {
  auto it = adj_.find(node);
  return it == adj_.end() ? EmptySet() : it->second;
}

bool DirectedGraph::HasCycle() const { return FindCycle().has_value(); }

std::optional<std::vector<int64_t>> DirectedGraph::FindCycle() const {
  // Iterative three-color DFS keeping the current path for cycle extraction.
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<int64_t, Color> color;
  for (const auto& [node, _] : adj_) color[node] = Color::kWhite;

  for (const auto& [start, _] : adj_) {
    if (color[start] != Color::kWhite) continue;
    // Stack frames: (node, iterator position over successors).
    std::vector<std::pair<int64_t, std::vector<int64_t>>> stack;
    std::vector<int64_t> path;
    auto push = [&](int64_t node) {
      const auto& succ = Successors(node);
      stack.emplace_back(node,
                         std::vector<int64_t>(succ.begin(), succ.end()));
      path.push_back(node);
      color[node] = Color::kGray;
    };
    push(start);
    while (!stack.empty()) {
      auto& [node, succs] = stack.back();
      if (succs.empty()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      int64_t next = succs.back();
      succs.pop_back();
      if (color[next] == Color::kGray) {
        // Extract the cycle from the path.
        std::vector<int64_t> cycle;
        auto it = std::find(path.begin(), path.end(), next);
        cycle.assign(it, path.end());
        cycle.push_back(next);
        return cycle;
      }
      if (color[next] == Color::kWhite) push(next);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<int64_t>> DirectedGraph::TopologicalOrder() const {
  std::unordered_map<int64_t, size_t> in_degree;
  for (const auto& [node, _] : adj_) in_degree.try_emplace(node, 0);
  for (const auto& [node, succs] : adj_) {
    for (int64_t succ : succs) ++in_degree[succ];
  }
  std::vector<int64_t> ready;
  for (const auto& [node, deg] : in_degree) {
    if (deg == 0) ready.push_back(node);
  }
  std::vector<int64_t> order;
  order.reserve(adj_.size());
  while (!ready.empty()) {
    int64_t node = ready.back();
    ready.pop_back();
    order.push_back(node);
    for (int64_t succ : Successors(node)) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  if (order.size() != adj_.size()) return std::nullopt;
  return order;
}

}  // namespace mdbs::sched
