#include "sched/graph.h"

#include <algorithm>
#include <functional>

namespace mdbs::sched {

namespace {
const std::unordered_set<int64_t>& EmptySet() {
  static const std::unordered_set<int64_t>& empty =
      *new std::unordered_set<int64_t>();
  return empty;
}
}  // namespace

void UndirectedMultigraph::AddNode(int64_t node) {
  if (incidence_.try_emplace(node).second) nodes_.push_back(node);
}

size_t UndirectedMultigraph::AddEdge(int64_t u, int64_t v, int64_t label) {
  AddNode(u);
  AddNode(v);
  size_t index = edges_.size();
  edges_.push_back(LabeledEdge{u, v, label});
  incidence_[u].push_back(index);
  incidence_[v].push_back(index);
  return index;
}

std::vector<int64_t> UndirectedMultigraph::Nodes() const { return nodes_; }

std::vector<std::vector<size_t>>
UndirectedMultigraph::BiconnectedComponents() const {
  // Iterative Hopcroft–Tarjan: DFS keeping discovery/low values and a stack
  // of tree/back edges; when a child cannot reach above its parent, the
  // edges accumulated since it was entered form one biconnected component.
  std::vector<std::vector<size_t>> components;
  std::unordered_map<int64_t, int> disc;
  std::unordered_map<int64_t, int> low;
  std::vector<size_t> edge_stack;
  int timer = 0;

  struct Frame {
    int64_t node;
    int64_t parent_edge;  // edge index used to enter, -1 at roots
    size_t next_incident = 0;
  };

  for (int64_t root : nodes_) {
    if (disc.contains(root)) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{root, -1});
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const std::vector<size_t>& incident = incidence_.at(frame.node);
      if (frame.next_incident < incident.size()) {
        size_t edge_index = incident[frame.next_incident++];
        if (static_cast<int64_t>(edge_index) == frame.parent_edge) continue;
        const LabeledEdge& edge = edges_[edge_index];
        int64_t other = edge.u == frame.node ? edge.v : edge.u;
        if (!disc.contains(other)) {
          edge_stack.push_back(edge_index);
          disc[other] = low[other] = timer++;
          stack.push_back(Frame{other, static_cast<int64_t>(edge_index)});
        } else if (disc[other] < disc[frame.node]) {
          // Back edge (each undirected edge is considered once, from the
          // endpoint discovered later).
          edge_stack.push_back(edge_index);
          low[frame.node] = std::min(low[frame.node], disc[other]);
        }
        continue;
      }
      // frame.node is finished; propagate low and maybe cut a component.
      int64_t child = frame.node;
      int64_t entry_edge = frame.parent_edge;
      stack.pop_back();
      if (stack.empty()) continue;
      Frame& parent = stack.back();
      low[parent.node] = std::min(low[parent.node], low[child]);
      if (low[child] >= disc[parent.node]) {
        // Pop the component delimited by the tree edge into `child`.
        std::vector<size_t> component;
        while (!edge_stack.empty()) {
          size_t edge_index = edge_stack.back();
          edge_stack.pop_back();
          component.push_back(edge_index);
          if (static_cast<int64_t>(edge_index) == entry_edge) break;
        }
        components.push_back(std::move(component));
      }
    }
  }
  return components;
}

std::optional<std::vector<size_t>> UndirectedMultigraph::FindCycleThrough(
    size_t e1, size_t e2) const {
  if (e1 == e2 || e1 >= edges_.size() || e2 >= edges_.size()) {
    return std::nullopt;
  }
  const LabeledEdge& first = edges_[e1];
  // Parallel edges close a 2-cycle immediately.
  const LabeledEdge& second = edges_[e2];
  if ((first.u == second.u && first.v == second.v) ||
      (first.u == second.v && first.v == second.u)) {
    return std::vector<size_t>{e1, e2};
  }
  // Orient e1 as start -> cur and search a vertex-simple path back to
  // `start` that traverses e2. Exhaustive backtracking with a step budget;
  // the analyzer's graphs have at most a few dozen nodes.
  int64_t steps_left = 1 << 20;
  std::vector<size_t> path{e1};
  std::unordered_set<int64_t> visited;
  std::function<bool(int64_t, int64_t, bool)> dfs =
      [&](int64_t start, int64_t cur, bool used_e2) -> bool {
    if (--steps_left <= 0) return false;
    if (cur == start) return used_e2;
    visited.insert(cur);
    for (size_t edge_index : incidence_.at(cur)) {
      if (edge_index == e1) continue;
      const LabeledEdge& edge = edges_[edge_index];
      int64_t other = edge.u == cur ? edge.v : edge.u;
      if (other != start && visited.contains(other)) continue;
      path.push_back(edge_index);
      if (dfs(start, other, used_e2 || edge_index == e2)) return true;
      path.pop_back();
    }
    visited.erase(cur);
    return false;
  };
  if (dfs(first.u, first.v, false)) return path;
  return std::nullopt;
}

void DirectedGraph::AddNode(int64_t node) { adj_.try_emplace(node); }

void DirectedGraph::AddEdge(int64_t from, int64_t to) {
  AddNode(from);
  AddNode(to);
  if (adj_[from].insert(to).second) ++edge_count_;
}

bool DirectedGraph::HasEdge(int64_t from, int64_t to) const {
  auto it = adj_.find(from);
  return it != adj_.end() && it->second.contains(to);
}

const std::unordered_set<int64_t>& DirectedGraph::Successors(
    int64_t node) const {
  auto it = adj_.find(node);
  return it == adj_.end() ? EmptySet() : it->second;
}

bool DirectedGraph::HasCycle() const { return FindCycle().has_value(); }

std::optional<std::vector<int64_t>> DirectedGraph::FindCycle() const {
  // Iterative three-color DFS keeping the current path for cycle extraction.
  enum class Color { kWhite, kGray, kBlack };
  std::unordered_map<int64_t, Color> color;
  for (const auto& [node, _] : adj_) color[node] = Color::kWhite;

  for (const auto& [start, _] : adj_) {
    if (color[start] != Color::kWhite) continue;
    // Stack frames: (node, iterator position over successors).
    std::vector<std::pair<int64_t, std::vector<int64_t>>> stack;
    std::vector<int64_t> path;
    auto push = [&](int64_t node) {
      const auto& succ = Successors(node);
      stack.emplace_back(node,
                         std::vector<int64_t>(succ.begin(), succ.end()));
      path.push_back(node);
      color[node] = Color::kGray;
    };
    push(start);
    while (!stack.empty()) {
      auto& [node, succs] = stack.back();
      if (succs.empty()) {
        color[node] = Color::kBlack;
        stack.pop_back();
        path.pop_back();
        continue;
      }
      int64_t next = succs.back();
      succs.pop_back();
      if (color[next] == Color::kGray) {
        // Extract the cycle from the path.
        std::vector<int64_t> cycle;
        auto it = std::find(path.begin(), path.end(), next);
        cycle.assign(it, path.end());
        cycle.push_back(next);
        return cycle;
      }
      if (color[next] == Color::kWhite) push(next);
    }
  }
  return std::nullopt;
}

std::optional<std::vector<int64_t>> DirectedGraph::TopologicalOrder() const {
  std::unordered_map<int64_t, size_t> in_degree;
  for (const auto& [node, _] : adj_) in_degree.try_emplace(node, 0);
  for (const auto& [node, succs] : adj_) {
    for (int64_t succ : succs) ++in_degree[succ];
  }
  std::vector<int64_t> ready;
  for (const auto& [node, deg] : in_degree) {
    if (deg == 0) ready.push_back(node);
  }
  std::vector<int64_t> order;
  order.reserve(adj_.size());
  while (!ready.empty()) {
    int64_t node = ready.back();
    ready.pop_back();
    order.push_back(node);
    for (int64_t succ : Successors(node)) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  if (order.size() != adj_.size()) return std::nullopt;
  return order;
}

}  // namespace mdbs::sched
