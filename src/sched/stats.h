#ifndef MDBS_SCHED_STATS_H_
#define MDBS_SCHED_STATS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/ids.h"
#include "sched/schedule.h"

namespace mdbs::sched {

/// Per-site aggregate of a recorded schedule.
struct SiteScheduleStats {
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t committed_txns = 0;
  int64_t aborted_txns = 0;
  int64_t global_subtxns = 0;  // Of the committed ones.
  int64_t distinct_items = 0;
};

/// Whole-schedule aggregate, for reports and the mdbsim frontend.
struct ScheduleStats {
  std::map<SiteId, SiteScheduleStats> per_site;
  int64_t total_ops = 0;
  int64_t committed_global_txns = 0;
  int64_t committed_local_txns = 0;

  std::string ToString() const;
};

ScheduleStats ComputeScheduleStats(const ScheduleRecorder& recorder);

}  // namespace mdbs::sched

#endif  // MDBS_SCHED_STATS_H_
