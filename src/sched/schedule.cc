#include "sched/schedule.h"

#include <sstream>

#include "common/logging.h"

namespace mdbs::sched {

std::string RecordedOp::ToString() const {
  std::ostringstream os;
  os << "#" << seq << " t=" << time << " " << mdbs::ToString(site) << " "
     << mdbs::ToString(txn) << " " << op.ToString();
  return os.str();
}

void ScheduleRecorder::RecordBegin(SiteId site, TxnId txn,
                                   GlobalTxnId global) {
  std::lock_guard<std::mutex> lock(mu_);
  MDBS_CHECK(!txns_.contains(txn)) << txn << " began twice in recorder";
  txns_[txn] =
      TxnRecord{txn, site, global, TxnOutcome::kActive, std::nullopt, -1};
}

void ScheduleRecorder::RecordOp(SiteId site, TxnId txn, const DataOp& op,
                                int64_t time, TxnId read_from) {
  std::lock_guard<std::mutex> lock(mu_);
  ops_.push_back(RecordedOp{next_seq_++, time, site, txn, op, read_from});
}

void ScheduleRecorder::RecordFinish(
    TxnId txn, TxnOutcome outcome,
    std::optional<int64_t> serialization_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  MDBS_CHECK(it != txns_.end()) << txn << " finished but never began";
  it->second.outcome = outcome;
  it->second.serialization_key = serialization_key;
  it->second.finish_seq = next_seq_++;
}

const TxnRecord* ScheduleRecorder::FindTxn(TxnId txn) const {
  auto it = txns_.find(txn);
  return it == txns_.end() ? nullptr : &it->second;
}

std::vector<const TxnRecord*> ScheduleRecorder::TxnsAtSite(
    SiteId site) const {
  std::vector<const TxnRecord*> result;
  for (const auto& [txn, record] : txns_) {
    if (record.site == site) result.push_back(&record);
  }
  return result;
}

int64_t ScheduleRecorder::CommittedCount() const {
  int64_t count = 0;
  for (const auto& [txn, record] : txns_) {
    if (record.outcome == TxnOutcome::kCommitted) ++count;
  }
  return count;
}

int64_t ScheduleRecorder::AbortedCount() const {
  int64_t count = 0;
  for (const auto& [txn, record] : txns_) {
    if (record.outcome == TxnOutcome::kAborted) ++count;
  }
  return count;
}

std::string ScheduleRecorder::Dump(size_t limit) const {
  std::ostringstream os;
  for (size_t i = 0; i < ops_.size() && i < limit; ++i) {
    os << ops_[i].ToString() << "\n";
  }
  if (ops_.size() > limit) {
    os << "... (" << ops_.size() - limit << " more)\n";
  }
  return os.str();
}

}  // namespace mdbs::sched
