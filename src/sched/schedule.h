#ifndef MDBS_SCHED_SCHEDULE_H_
#define MDBS_SCHED_SCHEDULE_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/types.h"

namespace mdbs::sched {

/// One data operation as it executed at a local DBMS, in global execution
/// order (`seq` is a total order across all sites; within a site it matches
/// the local total order <_Sk of the paper).
struct RecordedOp {
  int64_t seq = 0;
  int64_t time = 0;  // Virtual time of execution.
  SiteId site;
  TxnId txn;
  DataOp op;
  /// For versioned reads at multiversion sites: the transaction whose
  /// version was observed (invalid = the initial version / not versioned).
  TxnId read_from;

  std::string ToString() const;
};

/// Per-transaction bookkeeping captured by the recorder.
struct TxnRecord {
  TxnId txn;
  SiteId site;
  /// Parent global transaction for subtransactions; invalid for purely local
  /// transactions.
  GlobalTxnId global;
  TxnOutcome outcome = TxnOutcome::kActive;
  /// The local protocol's serialization key at finish, when defined.
  std::optional<int64_t> serialization_key;
  /// Position of the commit/abort in the global operation sequence
  /// (shares the counter with RecordedOp::seq); -1 while active. Lets the
  /// strictness checker order finishes against data operations.
  int64_t finish_seq = -1;
};

/// Captures the global schedule S: every executed data operation at every
/// site plus transaction begin/finish outcomes. The verification layer
/// replays it to check local, global, and ser(S) serializability. Purely
/// observational — the recorder never influences execution.
///
/// The three Record* entry points are thread-safe: in threaded execution
/// every site strand records concurrently, and the shared `seq` counter is
/// what turns the real interleaving into the total order the checkers
/// verify. The read accessors are not synchronized — call them only after
/// the run settled (Mdbs::FinishThreadedRun in threaded mode).
class ScheduleRecorder {
 public:
  ScheduleRecorder() = default;

  ScheduleRecorder(const ScheduleRecorder&) = delete;
  ScheduleRecorder& operator=(const ScheduleRecorder&) = delete;

  void RecordBegin(SiteId site, TxnId txn, GlobalTxnId global);
  void RecordOp(SiteId site, TxnId txn, const DataOp& op, int64_t time,
                TxnId read_from = TxnId());
  void RecordFinish(TxnId txn, TxnOutcome outcome,
                    std::optional<int64_t> serialization_key);

  const std::vector<RecordedOp>& ops() const { return ops_; }

  /// Record for `txn`; nullptr when unknown.
  const TxnRecord* FindTxn(TxnId txn) const;

  /// All transactions that ran at `site`.
  std::vector<const TxnRecord*> TxnsAtSite(SiteId site) const;

  /// All recorded transactions.
  const std::unordered_map<TxnId, TxnRecord>& txns() const { return txns_; }

  /// Number of committed / aborted transactions.
  int64_t CommittedCount() const;
  int64_t AbortedCount() const;

  /// Human-readable dump of the first `limit` operations.
  std::string Dump(size_t limit = 200) const;

 private:
  std::mutex mu_;
  int64_t next_seq_ = 0;
  std::vector<RecordedOp> ops_;
  std::unordered_map<TxnId, TxnRecord> txns_;
};

}  // namespace mdbs::sched

#endif  // MDBS_SCHED_SCHEDULE_H_
