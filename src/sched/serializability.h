#ifndef MDBS_SCHED_SERIALIZABILITY_H_
#define MDBS_SCHED_SERIALIZABILITY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sched/graph.h"
#include "sched/schedule.h"

namespace mdbs::sched {

/// Outcome of a conflict-serializability (CSR) check.
struct SerializabilityResult {
  bool serializable = false;
  /// A witness cycle of node keys when not serializable.
  std::optional<std::vector<int64_t>> cycle;
  size_t nodes = 0;
  size_t edges = 0;

  std::string ToString() const;
};

/// Node key of a transaction in the *global* serialization graph:
/// subtransactions collapse into their parent global transaction, purely
/// local transactions stand alone. Even keys are globals, odd keys locals.
int64_t GlobalNodeKey(const TxnRecord& record);

/// Conflict graph of the committed transactions at one site, each
/// subtransaction its own node (the paper's local schedule S_k).
DirectedGraph BuildLocalConflictGraph(const ScheduleRecorder& recorder,
                                      SiteId site);

/// Checks that the local schedule at `site` is CSR — every local DBMS must
/// guarantee this on its own (paper §2.1).
SerializabilityResult CheckLocalSerializability(
    const ScheduleRecorder& recorder, SiteId site);

/// Conflict graph of the committed projection of the global schedule S:
/// union over sites of local conflict edges, with subtransactions mapped to
/// their global transaction via GlobalNodeKey.
DirectedGraph BuildGlobalConflictGraph(const ScheduleRecorder& recorder);

/// Checks global serializability — the property Theorems 1-2 reduce to
/// ser(S) serializability and that the GTM schemes must guarantee.
SerializabilityResult CheckGlobalSerializability(
    const ScheduleRecorder& recorder);

/// Verifies the serialization-function property at `site`: for every local
/// conflict edge Ti -> Tj between committed transactions that both have a
/// protocol serialization key, key(Ti) < key(Tj). Sites whose protocol
/// defines no key (SGT) trivially pass.
Status CheckSerializationKeyProperty(const ScheduleRecorder& recorder,
                                     SiteId site);

/// Multiversion serialization graph (MVSG) of the committed transactions
/// at `site`, for sites running a multiversion protocol (MVTO). Versions
/// are ordered by the writers' serialization keys (their timestamps);
/// edges are version order, reads-from, and reader-before-next-version.
/// Acyclicity is equivalent to one-copy serializability for the given
/// version order.
DirectedGraph BuildMultiversionSerializationGraph(
    const ScheduleRecorder& recorder, SiteId site);

SerializabilityResult CheckMultiversionSerializability(
    const ScheduleRecorder& recorder, SiteId site);

/// Global serializability for a mix of single-version and multiversion
/// sites: CSR conflict edges at regular sites, MVSG edges at `mv_sites`,
/// all mapped onto global transaction nodes.
SerializabilityResult CheckGlobalSerializabilityMixed(
    const ScheduleRecorder& recorder,
    const std::vector<SiteId>& mv_sites);

/// Verifies strictness (no dirty reads, no overwriting of uncommitted
/// data) of the recorded schedule at `site`: every operation on an item
/// follows the previous writer's finish unless it is the writer itself.
/// All the implemented protocols promise this — 2PL/TO/SGT via locks or
/// latches, OCC/MVTO via deferred commit-time writes (for `multiversion`
/// sites reads are checked against their recorded version instead of the
/// store order).
Status CheckStrictness(const ScheduleRecorder& recorder, SiteId site,
                       bool multiversion);

}  // namespace mdbs::sched

#endif  // MDBS_SCHED_SERIALIZABILITY_H_
