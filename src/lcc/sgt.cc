#include "lcc/sgt.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::lcc {

namespace {
constexpr int64_t kGcPeriod = 64;  // Finishes between garbage collections.
}

void SerializationGraphTesting::OnBegin(TxnId txn) {
  MDBS_CHECK(!nodes_.contains(txn)) << txn << " began twice";
  nodes_.emplace(txn, TxnNode{});
}

std::vector<TxnId> SerializationGraphTesting::EdgeSources(
    TxnId txn, const DataOp& op) const {
  std::vector<TxnId> sources;
  auto it = items_.find(op.item);
  if (it == items_.end()) return sources;
  const ItemState& state = it->second;
  auto add = [&](TxnId src) {
    if (src.valid() && src != txn && nodes_.contains(src)) {
      sources.push_back(src);
    }
  };
  // The latch guarantees at most one uncommitted writer, and accessors that
  // get here hold no conflict with an uncommitted writer other than txn.
  add(state.committed_writer);
  if (op.type == OpType::kWrite) {
    for (TxnId reader : state.readers) add(reader);
  }
  return sources;
}

bool SerializationGraphTesting::Reaches(TxnId from, TxnId to) const {
  if (from == to) return true;
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> stack{from};
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) continue;
    for (TxnId next : it->second.out) {
      if (next == to) return true;
      stack.push_back(next);
    }
  }
  return false;
}

bool SerializationGraphTesting::LatchWaitCycle(TxnId txn, TxnId writer) const {
  // Each blocked transaction waits on exactly one latch holder, so the wait
  // graph is a union of chains; follow the chain from `writer`.
  std::unordered_set<TxnId> visited;
  TxnId cur = writer;
  while (cur.valid()) {
    if (cur == txn) return true;
    if (!visited.insert(cur).second) return false;
    auto it = latch_waiting_for_.find(cur);
    if (it == latch_waiting_for_.end()) return false;
    cur = it->second;
  }
  return false;
}

AccessDecision SerializationGraphTesting::OnAccess(TxnId txn,
                                                   const DataOp& op) {
  ItemState& state = items_[op.item];

  if (state.active_writer.valid() && state.active_writer != txn) {
    if (LatchWaitCycle(txn, state.active_writer)) {
      return AccessDecision::kAbort;
    }
    state.latch_waiters.push_back(txn);
    latch_waiting_for_[txn] = state.active_writer;
    return AccessDecision::kBlock;
  }

  // SGT certification: adding edges src -> txn closes a cycle iff txn
  // already reaches some src.
  std::vector<TxnId> sources = EdgeSources(txn, op);
  for (TxnId src : sources) {
    if (Reaches(txn, src)) return AccessDecision::kAbort;
  }
  TxnNode& node = nodes_.at(txn);
  for (TxnId src : sources) {
    nodes_.at(src).out.insert(txn);
    node.in.insert(src);
  }
  return AccessDecision::kProceed;
}

void SerializationGraphTesting::OnAccessApplied(TxnId txn, const DataOp& op) {
  ItemState& state = items_[op.item];
  if (op.type == OpType::kRead) {
    if (std::find(state.readers.begin(), state.readers.end(), txn) ==
        state.readers.end()) {
      state.readers.push_back(txn);
    }
    return;
  }
  if (state.active_writer != txn) {
    state.active_writer = txn;
    written_[txn].push_back(op.item);
  }
}

AccessDecision SerializationGraphTesting::OnValidate(TxnId) {
  return AccessDecision::kProceed;
}

void SerializationGraphTesting::OnFinish(TxnId txn, TxnOutcome outcome) {
  auto written_it = written_.find(txn);
  if (written_it != written_.end()) {
    for (DataItemId item : written_it->second) {
      ItemState& state = items_[item];
      if (state.active_writer != txn) continue;
      state.active_writer = TxnId();
      if (outcome == TxnOutcome::kCommitted) {
        state.committed_writer = txn;
        state.readers.clear();
      }
      std::deque<TxnId> waiters;
      waiters.swap(state.latch_waiters);
      for (TxnId waiter : waiters) {
        latch_waiting_for_.erase(waiter);
        host_->ResumeTransaction(waiter);
      }
    }
    written_.erase(written_it);
  }

  latch_waiting_for_.erase(txn);  // It may have died while latch-blocked.

  auto node_it = nodes_.find(txn);
  MDBS_CHECK(node_it != nodes_.end()) << txn << " finished but never began";
  if (outcome == TxnOutcome::kAborted) {
    RemoveNode(txn);
  } else {
    node_it->second.outcome = TxnOutcome::kCommitted;
  }

  if (++finishes_since_gc_ >= kGcPeriod) {
    finishes_since_gc_ = 0;
    CollectGarbage();
  }
}

void SerializationGraphTesting::RemoveNode(TxnId txn) {
  auto it = nodes_.find(txn);
  if (it == nodes_.end()) return;
  for (TxnId succ : it->second.out) {
    auto succ_it = nodes_.find(succ);
    if (succ_it != nodes_.end()) succ_it->second.in.erase(txn);
  }
  for (TxnId pred : it->second.in) {
    auto pred_it = nodes_.find(pred);
    if (pred_it != nodes_.end()) pred_it->second.out.erase(txn);
  }
  nodes_.erase(it);
}

void SerializationGraphTesting::CollectGarbage() {
  // A committed node with no in-edges can never join a cycle again (new
  // edges only point at the accessing — active — transaction), so it can be
  // dropped; removal may expose further droppable nodes.
  std::vector<TxnId> removable;
  for (const auto& [txn, node] : nodes_) {
    if (node.outcome == TxnOutcome::kCommitted && node.in.empty()) {
      removable.push_back(txn);
    }
  }
  while (!removable.empty()) {
    TxnId txn = removable.back();
    removable.pop_back();
    auto it = nodes_.find(txn);
    if (it == nodes_.end()) continue;
    std::vector<TxnId> successors(it->second.out.begin(),
                                  it->second.out.end());
    RemoveNode(txn);
    for (TxnId succ : successors) {
      auto succ_it = nodes_.find(succ);
      if (succ_it != nodes_.end() &&
          succ_it->second.outcome == TxnOutcome::kCommitted &&
          succ_it->second.in.empty()) {
        removable.push_back(succ);
      }
    }
  }
}

}  // namespace mdbs::lcc
