#include "lcc/protocol.h"

#include "common/logging.h"

namespace mdbs::lcc {

void ProtocolHost::AbortTransaction(TxnId txn, const std::string& reason) {
  MDBS_CHECK(false) << "host cannot preempt " << txn << ": " << reason;
}

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kTwoPhaseLocking:
      return "2PL";
    case ProtocolKind::kTimestampOrdering:
      return "TO";
    case ProtocolKind::kSerializationGraph:
      return "SGT";
    case ProtocolKind::kOptimistic:
      return "OCC";
    case ProtocolKind::kMultiversionTO:
      return "MVTO";
    case ProtocolKind::kTwoPhaseLockingWoundWait:
      return "2PL-WW";
    case ProtocolKind::kTwoPhaseLockingWaitDie:
      return "2PL-WD";
  }
  return "?";
}

}  // namespace mdbs::lcc
