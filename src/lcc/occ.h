#ifndef MDBS_LCC_OCC_H_
#define MDBS_LCC_OCC_H_

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcc/protocol.h"

namespace mdbs::lcc {

/// Backward-validation optimistic concurrency control (BOCC). Reads execute
/// against the committed store, writes are buffered by the host
/// (WritesInPlace() == false) and installed atomically after validation. A
/// transaction validates against every transaction that committed during its
/// lifetime: any overlap between its read set and their write sets aborts it.
///
/// The local serialization order equals the commit-number order, but the
/// commit number is only known at commit — there is no *operation* of the
/// transaction usable as a serialization function a priori, so OCC sites use
/// tickets in the MDBS (§2.2), like SGT sites.
class OptimisticConcurrencyControl : public ConcurrencyControl {
 public:
  OptimisticConcurrencyControl() = default;

  ProtocolKind kind() const override { return ProtocolKind::kOptimistic; }
  const char* Name() const override { return "BOCC"; }

  void OnBegin(TxnId txn) override;
  AccessDecision OnAccess(TxnId txn, const DataOp& op) override;
  void OnAccessApplied(TxnId txn, const DataOp& op) override;
  AccessDecision OnValidate(TxnId txn) override;
  void OnFinish(TxnId txn, TxnOutcome outcome) override;

  bool WritesInPlace() const override { return false; }

  std::optional<int64_t> SerializationKey(TxnId txn) const override;

  /// Commit numbers are the serialization keys; recovered transactions must
  /// start (and commit) past every pre-crash number. The committed log
  /// restarting empty is safe: no pre-crash committed write set can overlap
  /// a post-recovery read set's lifetime.
  int64_t DurableClock() const override { return commit_counter_; }
  void RecoverClock(int64_t clock) override {
    commit_counter_ = std::max(commit_counter_, clock);
  }

  /// Validation-log length (tests/GC).
  size_t LogSize() const { return committed_log_.size(); }

  void EnableTrace(obs::TraceSink* sink, SiteId site) override {
    trace_ = sink;
    trace_site_ = site;
  }

 private:
  struct ActiveTxn {
    int64_t start_cn = 0;
    std::unordered_set<DataItemId> read_set;
    std::unordered_set<DataItemId> write_set;
  };
  struct CommittedEntry {
    int64_t cn = 0;
    std::vector<DataItemId> write_set;
  };

  void CollectGarbage();

  obs::TraceSink* trace_ = nullptr;
  SiteId trace_site_;
  int64_t commit_counter_ = 0;
  std::unordered_map<TxnId, ActiveTxn> active_;
  std::deque<CommittedEntry> committed_log_;
  std::unordered_map<TxnId, int64_t> commit_number_;
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_OCC_H_
