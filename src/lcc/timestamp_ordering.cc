#include "lcc/timestamp_ordering.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::lcc {

void TimestampOrdering::OnBegin(TxnId txn) {
  MDBS_CHECK(!ts_.contains(txn)) << txn << " began twice";
  ts_[txn] = next_ts_++;
}

int64_t TimestampOrdering::TimestampOf(TxnId txn) const {
  auto it = ts_.find(txn);
  MDBS_CHECK(it != ts_.end()) << txn << " has no timestamp";
  return it->second;
}

AccessDecision TimestampOrdering::OnAccess(TxnId txn, const DataOp& op) {
  int64_t ts = TimestampOf(txn);
  ItemMeta& meta = items_[op.item];

  if (op.type == OpType::kRead) {
    if (ts < meta.write_ts) return AccessDecision::kAbort;
    if (meta.uncommitted_writer.valid() && meta.uncommitted_writer != txn) {
      // ts >= write_ts here, so the reader is younger than the latching
      // writer: wait for the writer to finish (strictness).
      meta.waiters.push_back(txn);
      return AccessDecision::kBlock;
    }
    return AccessDecision::kProceed;
  }

  // Write.
  if (ts < meta.read_ts || ts < meta.write_ts) return AccessDecision::kAbort;
  if (meta.uncommitted_writer.valid() && meta.uncommitted_writer != txn) {
    meta.waiters.push_back(txn);
    return AccessDecision::kBlock;
  }
  return AccessDecision::kProceed;
}

void TimestampOrdering::OnAccessApplied(TxnId txn, const DataOp& op) {
  int64_t ts = TimestampOf(txn);
  ItemMeta& meta = items_[op.item];
  if (op.type == OpType::kRead) {
    meta.read_ts = std::max(meta.read_ts, ts);
    return;
  }
  meta.write_ts = ts;
  if (meta.uncommitted_writer != txn) {
    meta.uncommitted_writer = txn;
    written_[txn].push_back(op.item);
  }
}

AccessDecision TimestampOrdering::OnValidate(TxnId) {
  return AccessDecision::kProceed;
}

void TimestampOrdering::OnFinish(TxnId txn, TxnOutcome outcome) {
  (void)outcome;  // Timestamps of aborted writes are conservatively kept.
  auto it = written_.find(txn);
  if (it != written_.end()) {
    for (DataItemId item : it->second) {
      ItemMeta& meta = items_[item];
      if (meta.uncommitted_writer == txn) {
        meta.uncommitted_writer = TxnId();
        std::deque<TxnId> waiters;
        waiters.swap(meta.waiters);
        for (TxnId waiter : waiters) host_->ResumeTransaction(waiter);
      }
    }
    written_.erase(it);
  }
  // ts_ is retained so SerializationKey stays answerable after commit; the
  // verification layer reads it when checking the ser-function property.
}

std::optional<int64_t> TimestampOrdering::SerializationKey(TxnId txn) const {
  auto it = ts_.find(txn);
  if (it == ts_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mdbs::lcc
