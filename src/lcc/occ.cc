#include "lcc/occ.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace mdbs::lcc {

void OptimisticConcurrencyControl::OnBegin(TxnId txn) {
  MDBS_CHECK(!active_.contains(txn)) << txn << " began twice";
  active_[txn].start_cn = commit_counter_;
}

AccessDecision OptimisticConcurrencyControl::OnAccess(TxnId, const DataOp&) {
  return AccessDecision::kProceed;  // All checks happen at validation.
}

void OptimisticConcurrencyControl::OnAccessApplied(TxnId txn,
                                                   const DataOp& op) {
  ActiveTxn& state = active_.at(txn);
  if (op.type == OpType::kRead) {
    state.read_set.insert(op.item);
  } else {
    state.write_set.insert(op.item);
  }
}

AccessDecision OptimisticConcurrencyControl::OnValidate(TxnId txn) {
  const ActiveTxn& state = active_.at(txn);
  for (const CommittedEntry& entry : committed_log_) {
    if (entry.cn <= state.start_cn) continue;
    for (DataItemId item : entry.write_set) {
      if (state.read_set.contains(item)) {
        if (trace_ != nullptr) {
          trace_->Record(obs::TraceEventKind::kValidationFail, txn.value(),
                         trace_site_.value(), -1, item.value(), "occ");
        }
        return AccessDecision::kAbort;
      }
    }
  }
  return AccessDecision::kProceed;
}

void OptimisticConcurrencyControl::OnFinish(TxnId txn, TxnOutcome outcome) {
  auto it = active_.find(txn);
  MDBS_CHECK(it != active_.end()) << txn << " finished but never began";
  if (outcome == TxnOutcome::kCommitted) {
    int64_t cn = ++commit_counter_;
    commit_number_[txn] = cn;
    committed_log_.push_back(CommittedEntry{
        cn, std::vector<DataItemId>(it->second.write_set.begin(),
                                    it->second.write_set.end())});
  }
  active_.erase(it);
  CollectGarbage();
}

void OptimisticConcurrencyControl::CollectGarbage() {
  // Entries at or before every active transaction's start are unreachable by
  // any future validation.
  int64_t min_start = commit_counter_;
  for (const auto& [txn, state] : active_) {
    min_start = std::min(min_start, state.start_cn);
  }
  while (!committed_log_.empty() && committed_log_.front().cn <= min_start) {
    committed_log_.pop_front();
  }
}

std::optional<int64_t> OptimisticConcurrencyControl::SerializationKey(
    TxnId txn) const {
  auto it = commit_number_.find(txn);
  if (it == commit_number_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mdbs::lcc
