#ifndef MDBS_LCC_MVTO_H_
#define MDBS_LCC_MVTO_H_

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "lcc/protocol.h"

namespace mdbs::lcc {

/// Multiversion timestamp ordering (MVTO). Transactions get a timestamp at
/// begin; writes create new versions tagged with the writer's timestamp,
/// and a read by T observes the newest version with wts <= ts(T). A write
/// is rejected (abort) when a younger transaction already read the version
/// it would overwrite; reads of uncommitted versions wait for the writer
/// to finish (recoverability), which can never deadlock because waits
/// always point from younger readers to strictly older writers.
///
/// MVTO guarantees one-copy serializability in timestamp order, so — like
/// single-version TO — the begin operation is a serialization function for
/// MVTO sites (paper §2.2). Local schedules are *not* single-version
/// conflict serializable in general (old-version reads execute "late");
/// the verification layer checks MVTO sites with the multiversion
/// serialization graph instead.
///
/// The protocol goes beyond the paper's protocol list and demonstrates
/// that the serialization-function framework extends to multiversion
/// local DBMSs unchanged.
class MultiversionTimestampOrdering : public ConcurrencyControl {
 public:
  explicit MultiversionTimestampOrdering(ProtocolHost* host) : host_(host) {}

  ProtocolKind kind() const override { return ProtocolKind::kMultiversionTO; }
  const char* Name() const override { return "MVTO"; }

  void OnBegin(TxnId txn) override;
  AccessDecision OnAccess(TxnId txn, const DataOp& op) override;
  void OnAccessApplied(TxnId txn, const DataOp& op) override;
  AccessDecision OnValidate(TxnId txn) override;
  void OnFinish(TxnId txn, TxnOutcome outcome) override;

  bool WritesInPlace() const override { return false; }
  bool IsMultiversion() const override { return true; }
  std::optional<ResolvedRead> ResolveRead(TxnId txn,
                                          DataItemId item) override;

  std::optional<int64_t> SerializationKey(TxnId txn) const override;

  int64_t DurableClock() const override { return next_ts_; }
  void RecoverClock(int64_t clock) override {
    next_ts_ = std::max(next_ts_, clock);
  }
  /// Reinstates the latest committed version of `item` as of the crash,
  /// tagged wts = next_ts_ - 1 so every post-recovery reader (ts >=
  /// next_ts_) observes it — and records the right reads-from writer for
  /// the multiversion serialization graph. Called once per item, before
  /// any post-recovery transaction begins.
  void RecoverCommittedVersion(DataItemId item, int64_t value,
                               TxnId writer) override;

  /// Total retained versions across items (tests/GC).
  size_t VersionCount() const;

 private:
  struct Version {
    int64_t wts = 0;
    TxnId writer;
    int64_t value = 0;
    bool committed = false;
    int64_t max_rts = -1;
  };
  struct ItemState {
    /// Sorted ascending by wts; wts are unique (one per writer timestamp).
    std::vector<Version> versions;
    /// Max timestamp that read the (implicit) initial version.
    int64_t initial_max_rts = -1;
    std::deque<TxnId> waiters;
  };

  /// Index of the newest version with wts <= ts, or -1 for the initial one.
  static int FindVersion(const ItemState& state, int64_t ts);

  void WakeWaiters(ItemState* state);
  void CollectGarbage();

  ProtocolHost* host_;
  int64_t next_ts_ = 0;
  std::unordered_map<TxnId, int64_t> ts_;
  std::unordered_map<TxnId, std::vector<DataItemId>> written_;
  std::unordered_map<DataItemId, ItemState> items_;
  std::unordered_map<TxnId, int64_t> active_;  // txn -> ts, for GC.
  int64_t finishes_since_gc_ = 0;
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_MVTO_H_
