#include "lcc/lock_manager.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::lcc {

const char* LockModeName(LockMode mode) {
  return mode == LockMode::kShared ? "S" : "X";
}

std::optional<LockMode> LockManager::HeldMode(const ItemLock& entry,
                                              TxnId txn) const {
  for (const Request& r : entry.granted) {
    if (r.txn == txn) return r.mode;
  }
  return std::nullopt;
}

std::vector<TxnId> LockManager::Blockers(const ItemLock& entry, TxnId txn,
                                         LockMode mode) const {
  std::vector<TxnId> blockers;
  for (const Request& r : entry.granted) {
    if (r.txn != txn && !Compatible(r.mode, mode)) blockers.push_back(r.txn);
  }
  // A new request queues at the back, so every already-queued conflicting
  // request is "ahead" of it. (Upgrades queue at the front but an upgrader,
  // by definition, already holds the lock, so it is covered above as a
  // holder when modes conflict.)
  for (const Request& r : entry.waiting) {
    if (r.txn != txn && !Compatible(r.mode, mode)) blockers.push_back(r.txn);
  }
  return blockers;
}

bool LockManager::WaitsForReaches(TxnId from, TxnId target,
                                  std::unordered_set<TxnId>* visited) const {
  if (from == target) return true;
  if (!visited->insert(from).second) return false;
  auto wait_it = waiting_on_.find(from);
  if (wait_it == waiting_on_.end()) return false;
  auto table_it = table_.find(wait_it->second);
  if (table_it == table_.end()) return false;
  const ItemLock& entry = table_it->second;
  // Find from's queued request to know its mode and queue position.
  LockMode mode = LockMode::kShared;
  size_t pos = entry.waiting.size();
  for (size_t i = 0; i < entry.waiting.size(); ++i) {
    if (entry.waiting[i].txn == from) {
      mode = entry.waiting[i].mode;
      pos = i;
      break;
    }
  }
  for (const Request& r : entry.granted) {
    if (r.txn != from && !Compatible(r.mode, mode) &&
        WaitsForReaches(r.txn, target, visited)) {
      return true;
    }
  }
  for (size_t i = 0; i < pos && i < entry.waiting.size(); ++i) {
    const Request& r = entry.waiting[i];
    if (r.txn != from && !Compatible(r.mode, mode) &&
        WaitsForReaches(r.txn, target, visited)) {
      return true;
    }
  }
  return false;
}

LockResult LockManager::Acquire(TxnId txn, DataItemId item, LockMode mode) {
  if (auditor_ != nullptr && released_.contains(txn)) {
    auditor_->Report(audit::AuditViolation{
        "strict-2pl-phase",
        ToString(txn) + " acquires " + LockModeName(mode) + " on " +
            ToString(item) + " after its shrink phase began",
        {txn.value()},
        txn.value()});
  }
  LockResult result = AcquireImpl(txn, item, mode);
  if (trace_ != nullptr) {
    if (result == LockResult::kWaiting) {
      trace_->Record(obs::TraceEventKind::kLockWait, txn.value(),
                     trace_site_.value(), 0, item.value(),
                     LockModeName(mode));
    } else if (result == LockResult::kDeadlock) {
      trace_->Record(obs::TraceEventKind::kDeadlock, txn.value(),
                     trace_site_.value(), 0, item.value(),
                     LockModeName(mode));
    }
  }
  AuditTable("Acquire", txn);
  return result;
}

LockResult LockManager::AcquireImpl(TxnId txn, DataItemId item,
                                    LockMode mode) {
  MDBS_CHECK(!waiting_on_.contains(txn))
      << txn << " already has an outstanding lock request";
  ItemLock& entry = table_[item];

  std::optional<LockMode> held = HeldMode(entry, txn);
  if (held.has_value()) {
    if (*held == LockMode::kExclusive || mode == LockMode::kShared) {
      return LockResult::kGranted;  // Already covered.
    }
    // Upgrade S -> X: immediate if sole holder, else wait at queue front.
    if (entry.granted.size() == 1) {
      entry.granted[0].mode = LockMode::kExclusive;
      RecordGrant(txn, item);
      return LockResult::kGranted;
    }
    // Deadlock test: would any conflicting holder (transitively) wait for us?
    for (const Request& r : entry.granted) {
      if (r.txn == txn) continue;
      std::unordered_set<TxnId> visited;
      if (WaitsForReaches(r.txn, txn, &visited)) return LockResult::kDeadlock;
    }
    entry.waiting.push_front(Request{txn, LockMode::kExclusive, true});
    waiting_on_[txn] = item;
    return LockResult::kWaiting;
  }

  bool conflict = false;
  for (const Request& r : entry.granted) {
    if (!Compatible(r.mode, mode)) conflict = true;
  }
  if (!conflict && entry.waiting.empty()) {
    entry.granted.push_back(Request{txn, mode, false});
    RecordGrant(txn, item);
    return LockResult::kGranted;
  }
  // Must wait (either a conflicting holder, or FIFO fairness behind queued
  // requests). Deadlock test first: does any blocker reach us?
  for (TxnId blocker : Blockers(entry, txn, mode)) {
    std::unordered_set<TxnId> visited;
    if (WaitsForReaches(blocker, txn, &visited)) return LockResult::kDeadlock;
  }
  entry.waiting.push_back(Request{txn, mode, false});
  waiting_on_[txn] = item;
  return LockResult::kWaiting;
}

void LockManager::GrantFromQueue(DataItemId item, ItemLock* entry,
                                 std::vector<TxnId>* granted_out) {
  while (!entry->waiting.empty()) {
    const Request& front = entry->waiting.front();
    if (front.is_upgrade) {
      // Grantable when the upgrader is the sole remaining holder.
      if (entry->granted.size() == 1 && entry->granted[0].txn == front.txn) {
        entry->granted[0].mode = LockMode::kExclusive;
      } else {
        break;
      }
    } else {
      bool compatible = true;
      for (const Request& g : entry->granted) {
        if (!Compatible(g.mode, front.mode)) compatible = false;
      }
      if (!compatible) break;
      entry->granted.push_back(front);
    }
    TxnId txn = front.txn;
    entry->waiting.pop_front();
    waiting_on_.erase(txn);
    RecordGrant(txn, item);
    granted_out->push_back(txn);
  }
}

std::vector<TxnId> LockManager::ReleaseAll(TxnId txn) {
  std::vector<TxnId> granted;
  if (auditor_ != nullptr) released_.insert(txn);

  // Remove a waiting request, if any (txn aborted while blocked). Its
  // removal can unblock requests queued behind it, so re-evaluate.
  auto wait_it = waiting_on_.find(txn);
  if (wait_it != waiting_on_.end()) {
    DataItemId item = wait_it->second;
    waiting_on_.erase(wait_it);
    auto table_it = table_.find(item);
    if (table_it != table_.end()) {
      auto& waiting = table_it->second.waiting;
      waiting.erase(std::remove_if(waiting.begin(), waiting.end(),
                                   [txn](const Request& r) {
                                     return r.txn == txn;
                                   }),
                    waiting.end());
      GrantFromQueue(item, &table_it->second, &granted);
      if (table_it->second.granted.empty() &&
          table_it->second.waiting.empty()) {
        table_.erase(table_it);
      }
    }
  }

  auto held_it = held_items_.find(txn);
  if (held_it != held_items_.end()) {
    for (DataItemId item : held_it->second) {
      auto table_it = table_.find(item);
      if (table_it == table_.end()) continue;
      ItemLock& entry = table_it->second;
      entry.granted.erase(std::remove_if(entry.granted.begin(),
                                         entry.granted.end(),
                                         [txn](const Request& r) {
                                           return r.txn == txn;
                                         }),
                          entry.granted.end());
      GrantFromQueue(item, &entry, &granted);
      if (entry.granted.empty() && entry.waiting.empty()) {
        table_.erase(table_it);
      }
    }
    held_items_.erase(held_it);
  }
  lock_point_.erase(txn);
  AuditTable("ReleaseAll", txn);
  return granted;
}

bool LockManager::Holds(TxnId txn, DataItemId item, LockMode mode) const {
  auto it = table_.find(item);
  if (it == table_.end()) return false;
  std::optional<LockMode> held = HeldMode(it->second, txn);
  if (!held.has_value()) return false;
  return *held == LockMode::kExclusive || mode == LockMode::kShared;
}

std::optional<int64_t> LockManager::LockPoint(TxnId txn) const {
  auto it = lock_point_.find(txn);
  if (it == lock_point_.end()) return std::nullopt;
  return it->second;
}

std::vector<TxnId> LockManager::BlockersOf(TxnId txn, DataItemId item,
                                           LockMode mode) const {
  auto it = table_.find(item);
  if (it == table_.end()) return {};
  // A held exclusive (or covering) lock has no blockers for re-requests.
  std::optional<LockMode> held = HeldMode(it->second, txn);
  if (held.has_value() &&
      (*held == LockMode::kExclusive || mode == LockMode::kShared)) {
    return {};
  }
  return Blockers(it->second, txn, mode);
}

std::optional<DataItemId> LockManager::WaitingOn(TxnId txn) const {
  auto it = waiting_on_.find(txn);
  if (it == waiting_on_.end()) return std::nullopt;
  return it->second;
}

void LockManager::RecordGrant(TxnId txn, DataItemId item) {
  held_items_[txn].insert(item);
  lock_point_[txn] = next_grant_seq_++;
}

Status LockManager::CheckTableInvariants() const {
  size_t granted_total = 0;
  for (const auto& [item, entry] : table_) {
    if (entry.granted.empty() && entry.waiting.empty()) {
      return Status::Internal("lock table: empty entry retained for " +
                              ToString(item));
    }
    bool exclusive = false;
    std::unordered_set<TxnId> holders;
    for (const Request& r : entry.granted) {
      ++granted_total;
      if (!holders.insert(r.txn).second) {
        return Status::Internal("lock table: " + ToString(r.txn) +
                                " granted twice on " + ToString(item));
      }
      if (r.mode == LockMode::kExclusive) exclusive = true;
      auto held_it = held_items_.find(r.txn);
      if (held_it == held_items_.end() || !held_it->second.contains(item)) {
        return Status::Internal("lock table: grant of " + ToString(item) +
                                " to " + ToString(r.txn) +
                                " missing from held_items");
      }
      if (!lock_point_.contains(r.txn)) {
        return Status::Internal("lock table: holder " + ToString(r.txn) +
                                " has no lock point");
      }
    }
    if (exclusive && entry.granted.size() > 1) {
      return Status::Internal("lock table: S/X co-grant on " +
                              ToString(item));
    }
    for (size_t i = 0; i < entry.waiting.size(); ++i) {
      const Request& r = entry.waiting[i];
      auto wait_it = waiting_on_.find(r.txn);
      if (wait_it == waiting_on_.end() || wait_it->second != item) {
        return Status::Internal("lock table: queued request of " +
                                ToString(r.txn) + " on " + ToString(item) +
                                " not registered in waiting_on");
      }
      if (r.is_upgrade) {
        if (i != 0) {
          return Status::Internal("lock table: upgrade request of " +
                                  ToString(r.txn) + " on " + ToString(item) +
                                  " not at the queue front");
        }
        if (!holders.contains(r.txn)) {
          return Status::Internal("lock table: upgrader " + ToString(r.txn) +
                                  " no longer holds " + ToString(item));
        }
      } else if (holders.contains(r.txn)) {
        return Status::Internal("lock table: holder " + ToString(r.txn) +
                                " queued non-upgrade on " + ToString(item));
      }
    }
  }
  // held_items_ and lock_point_ mirror the granted lists.
  size_t held_total = 0;
  for (const auto& [txn, items] : held_items_) {
    if (items.empty()) {
      return Status::Internal("lock table: empty held set retained for " +
                              ToString(txn));
    }
    held_total += items.size();
    for (DataItemId item : items) {
      auto table_it = table_.find(item);
      if (table_it == table_.end() ||
          !HeldMode(table_it->second, txn).has_value()) {
        return Status::Internal("lock table: held_items claims " +
                                ToString(txn) + " holds " + ToString(item) +
                                " but the table disagrees");
      }
    }
    if (!lock_point_.contains(txn)) {
      return Status::Internal("lock table: " + ToString(txn) +
                              " holds locks but has no lock point");
    }
  }
  if (held_total != granted_total) {
    return Status::Internal(
        "lock table: granted count " + std::to_string(granted_total) +
        " != held_items count " + std::to_string(held_total));
  }
  for (const auto& [txn, point] : lock_point_) {
    (void)point;
    if (!held_items_.contains(txn)) {
      return Status::Internal("lock table: lock point retained for " +
                              ToString(txn) + " which holds nothing");
    }
  }
  // waiting_on_ side of the mirror + waits-for acyclicity.
  for (const auto& [txn, item] : waiting_on_) {
    auto table_it = table_.find(item);
    bool queued = false;
    if (table_it != table_.end()) {
      for (const Request& r : table_it->second.waiting) {
        if (r.txn == txn) queued = true;
      }
    }
    if (!queued) {
      return Status::Internal("lock table: waiting_on claims " +
                              ToString(txn) + " waits on " + ToString(item) +
                              " but no queued request exists");
    }
    std::unordered_set<TxnId> visited{txn};
    if (table_it != table_.end()) {
      const ItemLock& entry = table_it->second;
      LockMode mode = LockMode::kShared;
      size_t pos = entry.waiting.size();
      for (size_t i = 0; i < entry.waiting.size(); ++i) {
        if (entry.waiting[i].txn == txn) {
          mode = entry.waiting[i].mode;
          pos = i;
          break;
        }
      }
      for (const Request& r : entry.granted) {
        if (r.txn != txn && !Compatible(r.mode, mode) &&
            WaitsForReaches(r.txn, txn, &visited)) {
          return Status::Internal("lock table: waits-for cycle through " +
                                  ToString(txn) + " on " + ToString(item));
        }
      }
      for (size_t i = 0; i < pos; ++i) {
        const Request& r = entry.waiting[i];
        if (r.txn != txn && !Compatible(r.mode, mode) &&
            WaitsForReaches(r.txn, txn, &visited)) {
          return Status::Internal("lock table: waits-for cycle through " +
                                  ToString(txn) + " on " + ToString(item));
        }
      }
    }
  }
  return Status::OK();
}

void LockManager::EnableAudit(audit::Auditor* auditor) {
  if (!audit::kAuditCompiledIn) return;
  auditor_ = auditor != nullptr ? auditor : audit::Auditor::Default();
}

void LockManager::TestOnlyCorruptGrant(TxnId txn, DataItemId item,
                                       LockMode mode) {
  table_[item].granted.push_back(Request{txn, mode, false});
}

void LockManager::AuditTable(const char* after, TxnId txn) {
  if (auditor_ == nullptr) return;
  Status status = CheckTableInvariants();
  if (!status.ok()) {
    auditor_->Report(audit::AuditViolation{
        "lock-table",
        status.message() + " (after " + std::string(after) + " by " +
            ToString(txn) + ")",
        {},
        txn.value()});
  }
}

}  // namespace mdbs::lcc
