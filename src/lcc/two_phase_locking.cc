#include "lcc/two_phase_locking.h"

#include <string>
#include <vector>

#include "common/logging.h"

namespace mdbs::lcc {

const char* DeadlockPolicyName(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kWaitDie:
      return "wait-die";
  }
  return "?";
}

const char* TwoPhaseLocking::Name() const {
  switch (policy_) {
    case DeadlockPolicy::kDetect:
      return "strict-2PL";
    case DeadlockPolicy::kWoundWait:
      return "strict-2PL/wound-wait";
    case DeadlockPolicy::kWaitDie:
      return "strict-2PL/wait-die";
  }
  return "strict-2PL";
}

void TwoPhaseLocking::OnBegin(TxnId txn) {
  if (policy_ != DeadlockPolicy::kDetect) age_[txn] = next_age_++;
}

AccessDecision TwoPhaseLocking::OnAccess(TxnId txn, const DataOp& op) {
  LockMode mode =
      op.type == OpType::kRead ? LockMode::kShared : LockMode::kExclusive;

  if (policy_ != DeadlockPolicy::kDetect) {
    int64_t my_age = age_.at(txn);
    std::vector<TxnId> blockers =
        lock_manager_.BlockersOf(txn, op.item, mode);
    if (policy_ == DeadlockPolicy::kWaitDie) {
      for (TxnId blocker : blockers) {
        // Die when blocked by anyone older; only older-waits-for-younger
        // waits remain, which cannot cycle.
        if (age_.at(blocker) < my_age) return AccessDecision::kAbort;
      }
    } else {  // Wound-wait.
      for (TxnId blocker : blockers) {
        // A holder queued behind its own upgrade appears twice in the
        // blocker list (once granted, once waiting); wounding it on the
        // first occurrence erases its age, so a repeat must be skipped.
        auto age_it = age_.find(blocker);
        if (age_it == age_.end()) continue;
        if (age_it->second > my_age) {
          ++wounds_inflicted_;
          if (trace_ != nullptr) {
            trace_->Record(obs::TraceEventKind::kWound, blocker.value(),
                           trace_site_.value(), -1, txn.value());
          }
          host_->AbortTransaction(
              blocker, "wounded by older " + ToString(txn));
        }
      }
    }
  }

  switch (lock_manager_.Acquire(txn, op.item, mode)) {
    case LockResult::kGranted:
      return AccessDecision::kProceed;
    case LockResult::kWaiting:
      return AccessDecision::kBlock;
    case LockResult::kDeadlock:
      // Unreachable under the prevention policies (their waits are
      // age-monotone); the detection policy aborts the requester.
      return AccessDecision::kAbort;
  }
  return AccessDecision::kAbort;
}

void TwoPhaseLocking::OnAccessApplied(TxnId, const DataOp&) {}

AccessDecision TwoPhaseLocking::OnValidate(TxnId) {
  return AccessDecision::kProceed;
}

void TwoPhaseLocking::OnFinish(TxnId txn, TxnOutcome outcome) {
  if (outcome == TxnOutcome::kCommitted) {
    if (auto point = lock_manager_.LockPoint(txn); point.has_value()) {
      final_lock_point_[txn] = *point;
    }
  }
  age_.erase(txn);
  for (TxnId granted : lock_manager_.ReleaseAll(txn)) {
    host_->ResumeTransaction(granted);
  }
}

std::optional<int64_t> TwoPhaseLocking::SerializationKey(TxnId txn) const {
  auto it = final_lock_point_.find(txn);
  if (it != final_lock_point_.end()) return it->second;
  return lock_manager_.LockPoint(txn);
}

}  // namespace mdbs::lcc
