#ifndef MDBS_LCC_TWO_PHASE_LOCKING_H_
#define MDBS_LCC_TWO_PHASE_LOCKING_H_

#include <algorithm>
#include <unordered_map>

#include "lcc/lock_manager.h"
#include "lcc/protocol.h"

namespace mdbs::lcc {

/// How a 2PL site resolves (or prevents) deadlocks.
enum class DeadlockPolicy {
  /// Waits-for-graph detection at request time; the requester whose wait
  /// would close a cycle aborts.
  kDetect,
  /// Wound-wait prevention: an older requester preempts ("wounds") younger
  /// conflicting holders; a younger requester waits. Waits always point
  /// from younger to older, so no cycles form.
  kWoundWait,
  /// Wait-die prevention: an older requester waits; a younger one aborts
  /// ("dies") immediately. Waits always point from older to younger.
  kWaitDie,
};

const char* DeadlockPolicyName(DeadlockPolicy policy);

/// Strict two-phase locking: shared locks for reads, exclusive for writes,
/// all locks held until the transaction finishes. Deadlocks are handled
/// per the configured policy; wound-wait additionally requires the host to
/// support preemptive aborts (ProtocolHost::AbortTransaction).
///
/// Under strict 2PL the serialization order follows lock points; with
/// predeclared operation lists the lock point is reached at the last data
/// operation, so the last operation is a serialization function for 2PL
/// sites (paper §2.2) regardless of the deadlock policy.
class TwoPhaseLocking : public ConcurrencyControl {
 public:
  explicit TwoPhaseLocking(ProtocolHost* host,
                           DeadlockPolicy policy = DeadlockPolicy::kDetect)
      : host_(host), policy_(policy) {}

  ProtocolKind kind() const override {
    switch (policy_) {
      case DeadlockPolicy::kWoundWait:
        return ProtocolKind::kTwoPhaseLockingWoundWait;
      case DeadlockPolicy::kWaitDie:
        return ProtocolKind::kTwoPhaseLockingWaitDie;
      case DeadlockPolicy::kDetect:
        break;
    }
    return ProtocolKind::kTwoPhaseLocking;
  }
  const char* Name() const override;

  void OnBegin(TxnId txn) override;
  AccessDecision OnAccess(TxnId txn, const DataOp& op) override;
  void OnAccessApplied(TxnId txn, const DataOp& op) override;
  AccessDecision OnValidate(TxnId txn) override;
  void OnFinish(TxnId txn, TxnOutcome outcome) override;

  std::optional<int64_t> SerializationKey(TxnId txn) const override;

  /// Keys come from the lock manager's grant sequence; ages drive the
  /// prevention policies. Both must stay monotone across a restart.
  int64_t DurableClock() const override {
    return std::max(next_age_, lock_manager_.NextGrantSeq());
  }
  void RecoverClock(int64_t clock) override {
    next_age_ = std::max(next_age_, clock);
    lock_manager_.RecoverGrantSeq(clock);
  }

  void EnableAudit(audit::Auditor* auditor) override {
    lock_manager_.EnableAudit(auditor);
  }

  void EnableTrace(obs::TraceSink* sink, SiteId site) override {
    trace_ = sink;
    trace_site_ = site;
    lock_manager_.EnableTrace(sink, site);
  }

  const LockManager& lock_manager() const { return lock_manager_; }
  DeadlockPolicy policy() const { return policy_; }
  int64_t wounds_inflicted() const { return wounds_inflicted_; }

 private:
  ProtocolHost* host_;
  DeadlockPolicy policy_;
  LockManager lock_manager_;
  obs::TraceSink* trace_ = nullptr;
  SiteId trace_site_;
  /// Age (begin order) for the prevention policies; smaller = older.
  std::unordered_map<TxnId, int64_t> age_;
  int64_t next_age_ = 0;
  int64_t wounds_inflicted_ = 0;
  /// Lock points of finished transactions (captured before release).
  std::unordered_map<TxnId, int64_t> final_lock_point_;
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_TWO_PHASE_LOCKING_H_
