#include "lcc/mvto.h"

#include <algorithm>

#include "common/logging.h"

namespace mdbs::lcc {

namespace {
constexpr int64_t kGcPeriod = 256;
}

void MultiversionTimestampOrdering::OnBegin(TxnId txn) {
  MDBS_CHECK(!ts_.contains(txn)) << txn << " began twice";
  int64_t ts = next_ts_++;
  ts_[txn] = ts;
  active_[txn] = ts;
}

int MultiversionTimestampOrdering::FindVersion(const ItemState& state,
                                               int64_t ts) {
  int best = -1;
  for (size_t i = 0; i < state.versions.size(); ++i) {
    if (state.versions[i].wts <= ts) {
      best = static_cast<int>(i);
    } else {
      break;  // Sorted ascending.
    }
  }
  return best;
}

AccessDecision MultiversionTimestampOrdering::OnAccess(TxnId txn,
                                                       const DataOp& op) {
  int64_t ts = ts_.at(txn);
  ItemState& state = items_[op.item];
  int index = FindVersion(state, ts);

  if (op.type == OpType::kRead) {
    if (index >= 0) {
      const Version& version = state.versions[static_cast<size_t>(index)];
      if (!version.committed && version.writer != txn) {
        // Wait for the (strictly older) writer to finish.
        state.waiters.push_back(txn);
        return AccessDecision::kBlock;
      }
    }
    return AccessDecision::kProceed;
  }

  // Write: rejected when a younger transaction already read the version
  // this write would follow.
  int64_t read_watermark =
      index >= 0 ? state.versions[static_cast<size_t>(index)].max_rts
                 : state.initial_max_rts;
  if (read_watermark > ts) return AccessDecision::kAbort;
  return AccessDecision::kProceed;
}

std::optional<ResolvedRead> MultiversionTimestampOrdering::ResolveRead(
    TxnId txn, DataItemId item) {
  int64_t ts = ts_.at(txn);
  const ItemState& state = items_.at(item);
  int index = FindVersion(state, ts);
  if (index < 0) return std::nullopt;  // Initial version: host reads store.
  const Version& version = state.versions[static_cast<size_t>(index)];
  return ResolvedRead{version.value, version.writer};
}

void MultiversionTimestampOrdering::OnAccessApplied(TxnId txn,
                                                    const DataOp& op) {
  int64_t ts = ts_.at(txn);
  ItemState& state = items_[op.item];
  int index = FindVersion(state, ts);

  if (op.type == OpType::kRead) {
    if (index >= 0) {
      Version& version = state.versions[static_cast<size_t>(index)];
      version.max_rts = std::max(version.max_rts, ts);
    } else {
      state.initial_max_rts = std::max(state.initial_max_rts, ts);
    }
    return;
  }

  // Install (or overwrite own) version at wts == ts, keeping order.
  if (index >= 0 &&
      state.versions[static_cast<size_t>(index)].wts == ts) {
    MDBS_CHECK(state.versions[static_cast<size_t>(index)].writer == txn)
        << "duplicate version timestamp from a different writer";
    state.versions[static_cast<size_t>(index)].value = op.value;
    return;
  }
  Version version;
  version.wts = ts;
  version.writer = txn;
  version.value = op.value;
  version.committed = false;
  state.versions.insert(
      state.versions.begin() + static_cast<ptrdiff_t>(index + 1), version);
  written_[txn].push_back(op.item);
}

AccessDecision MultiversionTimestampOrdering::OnValidate(TxnId) {
  return AccessDecision::kProceed;
}

void MultiversionTimestampOrdering::OnFinish(TxnId txn, TxnOutcome outcome) {
  auto written_it = written_.find(txn);
  if (written_it != written_.end()) {
    for (DataItemId item : written_it->second) {
      ItemState& state = items_.at(item);
      for (auto it = state.versions.begin(); it != state.versions.end();) {
        if (it->writer == txn) {
          if (outcome == TxnOutcome::kCommitted) {
            it->committed = true;
            ++it;
          } else {
            it = state.versions.erase(it);
          }
        } else {
          ++it;
        }
      }
      WakeWaiters(&state);
    }
    written_.erase(written_it);
  }
  active_.erase(txn);
  // ts_ is retained: SerializationKey answers after commit.
  if (++finishes_since_gc_ >= kGcPeriod) {
    finishes_since_gc_ = 0;
    CollectGarbage();
  }
}

void MultiversionTimestampOrdering::WakeWaiters(ItemState* state) {
  std::deque<TxnId> waiters;
  waiters.swap(state->waiters);
  for (TxnId waiter : waiters) host_->ResumeTransaction(waiter);
}

void MultiversionTimestampOrdering::CollectGarbage() {
  // Keep, per item, the newest committed version below the oldest active
  // timestamp (the "floor" every live reader can still need) and drop
  // everything older.
  int64_t min_active = next_ts_;
  for (const auto& [txn, ts] : active_) min_active = std::min(min_active, ts);
  for (auto& [item, state] : items_) {
    int floor = -1;
    for (size_t i = 0; i < state.versions.size(); ++i) {
      if (state.versions[i].wts < min_active && state.versions[i].committed) {
        floor = static_cast<int>(i);
      }
      if (state.versions[i].wts >= min_active) break;
    }
    if (floor > 0) {
      state.versions.erase(state.versions.begin(),
                           state.versions.begin() + floor);
    }
  }
}

std::optional<int64_t> MultiversionTimestampOrdering::SerializationKey(
    TxnId txn) const {
  auto it = ts_.find(txn);
  if (it == ts_.end()) return std::nullopt;
  return it->second;
}

void MultiversionTimestampOrdering::RecoverCommittedVersion(DataItemId item,
                                                            int64_t value,
                                                            TxnId writer) {
  MDBS_CHECK(next_ts_ > 0) << "recovered a version before RecoverClock";
  ItemState& state = items_[item];
  MDBS_CHECK(state.versions.empty())
      << "item " << item << " recovered twice";
  Version version;
  // wts = next_ts_ - 1: below every post-recovery timestamp (so all new
  // readers see it) and unique per item (the only pre-recovery version).
  version.wts = next_ts_ - 1;
  version.writer = writer;
  version.value = value;
  version.committed = true;
  version.max_rts = -1;
  state.versions.push_back(version);
}

size_t MultiversionTimestampOrdering::VersionCount() const {
  size_t count = 0;
  for (const auto& [item, state] : items_) count += state.versions.size();
  return count;
}

}  // namespace mdbs::lcc
