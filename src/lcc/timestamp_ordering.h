#ifndef MDBS_LCC_TIMESTAMP_ORDERING_H_
#define MDBS_LCC_TIMESTAMP_ORDERING_H_

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "lcc/protocol.h"

namespace mdbs::lcc {

/// Strict timestamp ordering. Transactions receive a timestamp at begin; an
/// access that arrives "too late" (reading an item already written by a
/// younger transaction, or writing an item already read/written by a younger
/// one) aborts the transaction. Strictness: an item with an uncommitted
/// write is latched by its writer, and later-timestamped accesses by other
/// transactions wait for the writer to finish, which keeps in-place writes
/// recoverable. Waits always point from younger to older transactions, so
/// strict TO never deadlocks.
///
/// Because timestamps are assigned at begin, the begin operation is a
/// serialization function for TO sites (paper §2.2).
class TimestampOrdering : public ConcurrencyControl {
 public:
  explicit TimestampOrdering(ProtocolHost* host) : host_(host) {}

  ProtocolKind kind() const override {
    return ProtocolKind::kTimestampOrdering;
  }
  const char* Name() const override { return "strict-TO"; }

  void OnBegin(TxnId txn) override;
  AccessDecision OnAccess(TxnId txn, const DataOp& op) override;
  void OnAccessApplied(TxnId txn, const DataOp& op) override;
  AccessDecision OnValidate(TxnId txn) override;
  void OnFinish(TxnId txn, TxnOutcome outcome) override;

  std::optional<int64_t> SerializationKey(TxnId txn) const override;

  /// Recovered timestamps dominate every pre-crash read_ts/write_ts, so the
  /// (volatile, lost) item table restarting empty is safe.
  int64_t DurableClock() const override { return next_ts_; }
  void RecoverClock(int64_t clock) override {
    next_ts_ = std::max(next_ts_, clock);
  }

  /// Timestamp assigned to `txn` at begin; asserts it began.
  int64_t TimestampOf(TxnId txn) const;

 private:
  struct ItemMeta {
    int64_t read_ts = -1;
    int64_t write_ts = -1;
    TxnId uncommitted_writer;  // Invalid when no write latch is held.
    std::deque<TxnId> waiters;
  };

  ProtocolHost* host_;
  int64_t next_ts_ = 0;
  std::unordered_map<TxnId, int64_t> ts_;
  std::unordered_map<TxnId, std::vector<DataItemId>> written_;
  std::unordered_map<DataItemId, ItemMeta> items_;
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_TIMESTAMP_ORDERING_H_
