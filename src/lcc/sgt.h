#ifndef MDBS_LCC_SGT_H_
#define MDBS_LCC_SGT_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lcc/protocol.h"

namespace mdbs::lcc {

/// Serialization-graph testing (SGT certification). The protocol maintains
/// the conflict serialization graph over transactions; an access whose
/// conflict edges would close a cycle aborts the requester.
///
/// For recoverability the implementation adds commit-duration write latches:
/// an item with an uncommitted write blocks other accessors until the writer
/// finishes (a waits-for cycle among latch waiters aborts the requester).
/// This keeps in-place writes and before-image undo sound without cascading
/// aborts.
///
/// SGT is the paper's example of a protocol with NO serialization function
/// derivable from a fixed operation: the serialization order is any
/// topological order of the graph, fixed by neither begin nor commit order.
/// SGT sites therefore require GTM-forced conflicts (tickets, §2.2).
class SerializationGraphTesting : public ConcurrencyControl {
 public:
  explicit SerializationGraphTesting(ProtocolHost* host) : host_(host) {}

  ProtocolKind kind() const override {
    return ProtocolKind::kSerializationGraph;
  }
  const char* Name() const override { return "SGT"; }

  void OnBegin(TxnId txn) override;
  AccessDecision OnAccess(TxnId txn, const DataOp& op) override;
  void OnAccessApplied(TxnId txn, const DataOp& op) override;
  AccessDecision OnValidate(TxnId txn) override;
  void OnFinish(TxnId txn, TxnOutcome outcome) override;

  std::optional<int64_t> SerializationKey(TxnId) const override {
    return std::nullopt;  // SGT fixes no serialization point.
  }

  /// Number of transaction nodes currently retained (tests/GC).
  size_t GraphSize() const { return nodes_.size(); }

 private:
  struct TxnNode {
    TxnOutcome outcome = TxnOutcome::kActive;
    std::unordered_set<TxnId> out;
    std::unordered_set<TxnId> in;
  };
  struct ItemState {
    TxnId committed_writer;          // Last committed writer, if any.
    TxnId active_writer;             // Latch holder, if any.
    std::vector<TxnId> readers;      // Readers since last committed write.
    std::deque<TxnId> latch_waiters;
  };

  /// Conflict-edge sources for `op` by `txn` (excluding txn itself and
  /// transactions no longer in the graph).
  std::vector<TxnId> EdgeSources(TxnId txn, const DataOp& op) const;

  /// True if `from` reaches `to` via out-edges.
  bool Reaches(TxnId from, TxnId to) const;

  /// True if blocking `txn` on latch-holder `writer` would close a cycle in
  /// the latch waits-for graph.
  bool LatchWaitCycle(TxnId txn, TxnId writer) const;

  void RemoveNode(TxnId txn);
  void CollectGarbage();

  ProtocolHost* host_;
  std::unordered_map<TxnId, TxnNode> nodes_;
  std::unordered_map<DataItemId, ItemState> items_;
  std::unordered_map<TxnId, std::vector<DataItemId>> written_;
  std::unordered_map<TxnId, TxnId> latch_waiting_for_;
  int64_t finishes_since_gc_ = 0;
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_SGT_H_
