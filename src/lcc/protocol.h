#ifndef MDBS_LCC_PROTOCOL_H_
#define MDBS_LCC_PROTOCOL_H_

#include <optional>
#include <string>

#include "common/ids.h"
#include "common/types.h"

namespace mdbs::audit {
class Auditor;
}  // namespace mdbs::audit

namespace mdbs::obs {
class TraceSink;
}  // namespace mdbs::obs

namespace mdbs::lcc {

/// The concurrency control protocols a local DBMS may run. The MDBS cannot
/// change them — heterogeneity across sites is the premise of the paper.
enum class ProtocolKind {
  kTwoPhaseLocking,     // strict 2PL, waits-for deadlock detection
  kTimestampOrdering,   // basic/strict TO, timestamps at begin
  kSerializationGraph,  // SGT certification, abort on cycle
  kOptimistic,          // backward-validation OCC
  kMultiversionTO,      // MVTO: versioned reads, timestamps at begin
  kTwoPhaseLockingWoundWait,  // strict 2PL, wound-wait prevention
  kTwoPhaseLockingWaitDie,    // strict 2PL, wait-die prevention
};

const char* ProtocolKindName(ProtocolKind kind);

/// Verdict of the protocol on an access or a commit request.
enum class AccessDecision {
  /// The operation may execute now.
  kProceed,
  /// The operation must wait; the protocol will call
  /// ProtocolHost::ResumeTransaction when it can be retried.
  kBlock,
  /// The transaction must abort (deadlock victim, timestamp violation,
  /// serialization-graph cycle, failed validation).
  kAbort,
};

/// A versioned read answered by a multiversion protocol: the value and the
/// transaction that wrote the version (invalid for the initial version).
struct ResolvedRead {
  int64_t value = 0;
  TxnId writer;
};

/// Callbacks from a protocol into the hosting local DBMS.
class ProtocolHost {
 public:
  virtual ~ProtocolHost() = default;

  /// The transaction's blocked operation may now be retried. The host
  /// re-submits the operation; the protocol re-decides.
  virtual void ResumeTransaction(TxnId txn) = 0;

  /// The protocol demands the asynchronous abort of a transaction *other
  /// than the requester* (wound-wait preemption). The host rolls it back,
  /// calls OnFinish(kAborted) and fails its pending/next operation. The
  /// default dies: only hosts that opt in support preemption.
  virtual void AbortTransaction(TxnId txn, const std::string& reason);
};

/// A local DBMS concurrency control protocol. Implementations are
/// single-threaded (the simulation kernel serializes all calls) and decide,
/// per access and per commit, whether to proceed, wait, or abort.
///
/// Write visibility is split between protocol and host: when
/// `WritesInPlace()` is true the host applies writes directly to the store
/// (keeping an undo log); when false the host buffers them privately and
/// applies them after a successful `OnValidate` (OCC-style).
class ConcurrencyControl {
 public:
  virtual ~ConcurrencyControl() = default;

  virtual ProtocolKind kind() const = 0;
  virtual const char* Name() const = 0;

  /// A new transaction starts. Protocols needing begin-time state (TO
  /// timestamps, OCC start numbers) capture it here.
  virtual void OnBegin(TxnId txn) = 0;

  /// Decides whether `txn` may perform `op` now. For kBlock the host parks
  /// the operation and retries it (calling OnAccess again) after
  /// ResumeTransaction. For kAbort the host aborts the transaction.
  virtual AccessDecision OnAccess(TxnId txn, const DataOp& op) = 0;

  /// Called after the access executed against the store (or write buffer).
  virtual void OnAccessApplied(TxnId txn, const DataOp& op) = 0;

  /// Commit-time certification; kBlock is not a legal result here.
  virtual AccessDecision OnValidate(TxnId txn) = 0;

  /// Transaction ended (commit or abort): release locks and wake waiters.
  /// Called exactly once per transaction that began.
  virtual void OnFinish(TxnId txn, TxnOutcome outcome) = 0;

  /// True when writes are applied to the store at access time (host keeps an
  /// undo log); false when they are buffered until after validation.
  virtual bool WritesInPlace() const { return true; }

  /// Multiversion protocols answer reads from their version store; a
  /// nullopt (the default, and the answer for items without versions)
  /// makes the host read the single-version store instead. Called after
  /// OnAccess returned kProceed for the read.
  virtual std::optional<ResolvedRead> ResolveRead(TxnId txn,
                                                  DataItemId item) {
    (void)txn;
    (void)item;
    return std::nullopt;
  }

  /// True for multiversion protocols: their local schedules are verified
  /// with the multiversion serialization graph, not single-version CSR.
  virtual bool IsMultiversion() const { return false; }

  /// A value whose order over committed transactions equals this protocol's
  /// local serialization order, when the protocol defines one (TO: the
  /// timestamp; 2PL: lock-point sequence; OCC: commit number). SGT returns
  /// nullopt — precisely the case where the GTM must force conflicts via
  /// tickets. Used by verification and tests, never by the GTM itself.
  virtual std::optional<int64_t> SerializationKey(TxnId txn) const = 0;

  /// The protocol's monotone logical clock — the source its serialization
  /// keys are drawn from (TO/MVTO: next timestamp; 2PL: next age/grant
  /// sequence; OCC: next commit number). Durable sites persist it in log
  /// records so a recovered protocol instance never reissues a value a
  /// pre-crash committed transaction already serialized under. Protocols
  /// without one (SGT) return 0.
  virtual int64_t DurableClock() const { return 0; }

  /// Restart recovery: fast-forwards every internal counter to at least
  /// `clock` (a DurableClock value persisted before the crash). Default:
  /// no-op.
  virtual void RecoverClock(int64_t clock) { (void)clock; }

  /// Restart recovery for multiversion protocols: reinstates the latest
  /// committed version of `item` so post-crash readers observe the correct
  /// writer (the multiversion serialization graph is built from reads-from
  /// edges). Called after RecoverClock, once per recovered item. Default:
  /// no-op (single-version protocols read the recovered store directly).
  virtual void RecoverCommittedVersion(DataItemId item, int64_t value,
                                       TxnId writer) {
    (void)item;
    (void)value;
    (void)writer;
  }

  /// Turns on invariant auditing for protocols that support it (2PL audits
  /// its lock table and the strict-2PL phase discipline). Default: no-op.
  virtual void EnableAudit(audit::Auditor* auditor) { (void)auditor; }

  /// Records protocol-level events (lock waits, deadlocks, wounds,
  /// validation failures) into `sink`; `site` labels them with the owning
  /// local DBMS. nullptr disables. Default: no-op.
  virtual void EnableTrace(obs::TraceSink* sink, SiteId site) {
    (void)sink;
    (void)site;
  }
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_PROTOCOL_H_
