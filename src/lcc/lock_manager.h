#ifndef MDBS_LCC_LOCK_MANAGER_H_
#define MDBS_LCC_LOCK_MANAGER_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/audit.h"
#include "common/ids.h"
#include "common/status.h"
#include "obs/trace.h"

namespace mdbs::lcc {

enum class LockMode { kShared, kExclusive };

const char* LockModeName(LockMode mode);

/// Result of a lock request.
enum class LockResult {
  /// The lock is held by the requester on return.
  kGranted,
  /// The request was queued; the requester must wait. It will appear in the
  /// grant list of a later ReleaseAll call.
  kWaiting,
  /// Granting would deadlock (the new wait edge closes a waits-for cycle);
  /// the request was NOT queued and the requester should abort.
  kDeadlock,
};

/// A strict two-phase lock table with shared/exclusive modes, FIFO wait
/// queues, upgrade support, and waits-for-graph deadlock detection performed
/// at request time (the requester is the victim, so deadlock never involves
/// asynchronously aborting a third party).
class LockManager {
 public:
  LockManager() = default;

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Requests `mode` on `item` for `txn`. Re-requesting a mode already
  /// covered by a held lock returns kGranted without side effects.
  /// A transaction may have at most one outstanding (waiting) request.
  LockResult Acquire(TxnId txn, DataItemId item, LockMode mode);

  /// Releases all locks held by `txn` and removes any waiting request it
  /// has. Returns the transactions whose waiting request became granted as
  /// a consequence, in grant order.
  std::vector<TxnId> ReleaseAll(TxnId txn);

  /// True when `txn` holds a lock on `item` covering `mode` (X covers S).
  bool Holds(TxnId txn, DataItemId item, LockMode mode) const;

  /// Monotone sequence number of the last lock grant to `txn` — its lock
  /// point once the transaction stops acquiring. nullopt before any grant.
  std::optional<int64_t> LockPoint(TxnId txn) const;

  /// Item the transaction is currently waiting on, if any.
  std::optional<DataItemId> WaitingOn(TxnId txn) const;

  /// Transactions a request by `txn` for `mode` on `item` would wait for:
  /// conflicting holders plus conflicting queued requests ahead of it.
  /// Used by prevention policies (wound-wait / wait-die) to decide before
  /// acquiring.
  std::vector<TxnId> BlockersOf(TxnId txn, DataItemId item,
                                LockMode mode) const;

  /// Number of items with a non-empty lock entry (for tests).
  size_t ActiveItemCount() const { return table_.size(); }

  /// The next grant sequence number — the 2PL durable clock component that
  /// keeps post-recovery lock points after every pre-crash one.
  int64_t NextGrantSeq() const { return next_grant_seq_; }
  void RecoverGrantSeq(int64_t seq) {
    next_grant_seq_ = std::max(next_grant_seq_, seq);
  }

  /// Structural self-check of the lock table (audit layer):
  ///   - no empty entries are retained, no transaction is granted twice on
  ///     one item, and an exclusive grant is the sole grant (no S/X
  ///     co-grant);
  ///   - held_items_/lock_point_ mirror the granted lists exactly;
  ///   - waiting_on_ mirrors the wait queues exactly (at most one
  ///     outstanding request per transaction);
  ///   - upgrade requests sit only at the queue front and their issuer
  ///     still holds the shared lock;
  ///   - the waits-for graph is acyclic (request-time deadlock detection
  ///     means a cycle can never be committed to the table).
  Status CheckTableInvariants() const;

  /// Audits every Acquire/ReleaseAll against CheckTableInvariants and the
  /// strict-2PL phase discipline (no acquisition after the shrink phase
  /// began), reporting "lock-table" / "strict-2pl-phase" violations.
  /// `auditor` may be null, selecting the process-wide default.
  void EnableAudit(audit::Auditor* auditor);

  /// Records kLockWait / kDeadlock events into `sink` (nullptr disables);
  /// `site` labels them with the owning local DBMS.
  void EnableTrace(obs::TraceSink* sink, SiteId site) {
    trace_ = sink;
    trace_site_ = site;
  }

  /// Mutation-testing hook: injects a grant behind the bookkeeping's back
  /// so tests can prove CheckTableInvariants detects the corruption. Never
  /// called outside audit tests.
  void TestOnlyCorruptGrant(TxnId txn, DataItemId item, LockMode mode);

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool is_upgrade = false;
  };
  struct ItemLock {
    std::vector<Request> granted;
    std::deque<Request> waiting;
  };

  static bool Compatible(LockMode a, LockMode b) {
    return a == LockMode::kShared && b == LockMode::kShared;
  }

  LockResult AcquireImpl(TxnId txn, DataItemId item, LockMode mode);

  /// Mode currently held by txn on the entry, if any.
  std::optional<LockMode> HeldMode(const ItemLock& entry, TxnId txn) const;

  /// Transactions a request by `txn` for `mode` on `entry` would wait for:
  /// conflicting holders plus conflicting queued requests ahead of it.
  std::vector<TxnId> Blockers(const ItemLock& entry, TxnId txn,
                              LockMode mode) const;

  /// True if `from` can reach `target` in the waits-for graph.
  bool WaitsForReaches(TxnId from, TxnId target,
                       std::unordered_set<TxnId>* visited) const;

  /// Grants queued requests on `entry` that are now compatible, appending
  /// granted transactions to `granted_out`.
  void GrantFromQueue(DataItemId item, ItemLock* entry,
                      std::vector<TxnId>* granted_out);

  void RecordGrant(TxnId txn, DataItemId item);

  /// Runs CheckTableInvariants and reports when auditing is on; `txn` is
  /// the transaction whose request triggered the check (attributed in the
  /// violation report).
  void AuditTable(const char* after, TxnId txn);

  std::unordered_map<DataItemId, ItemLock> table_;
  std::unordered_map<TxnId, std::unordered_set<DataItemId>> held_items_;
  std::unordered_map<TxnId, DataItemId> waiting_on_;
  std::unordered_map<TxnId, int64_t> lock_point_;
  int64_t next_grant_seq_ = 0;

  audit::Auditor* auditor_ = nullptr;
  obs::TraceSink* trace_ = nullptr;
  SiteId trace_site_;
  /// Transactions already past their shrink phase (strict-2PL audit);
  /// tracked only while auditing.
  std::unordered_set<TxnId> released_;
};

}  // namespace mdbs::lcc

#endif  // MDBS_LCC_LOCK_MANAGER_H_
