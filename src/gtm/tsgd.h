#ifndef MDBS_GTM_TSGD_H_
#define MDBS_GTM_TSGD_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"

namespace mdbs::gtm {

/// A dependency (from, s) -> (s, to): ser_s(from) is (or must be) processed
/// before ser_s(to), i.e. `from` serializes before `to` at site `s`.
struct Dependency {
  SiteId site;
  GlobalTxnId from;
  GlobalTxnId to;

  friend bool operator==(const Dependency& a, const Dependency& b) {
    return a.site == b.site && a.from == b.from && a.to == b.to;
  }
};

/// The Transaction-Site Graph with Dependencies of Scheme 2 (paper §6):
/// the bipartite TSG plus a set D of dependencies between edges incident on
/// a common site node.
///
/// Cycle semantics (§6, spelled out): a *cycle* is a simple alternating
/// node cycle G_1, s_1, G_2, ..., G_p, s_p (all transaction nodes distinct,
/// all site nodes distinct, p >= 2) together with an orientation such that
/// no junction is contradicted: traversing G_i -> s_i -> G_{i+1} is
/// permitted unless D contains the opposing dependency
/// (G_{i+1}, s_i) -> (s_i, G_i). A dependency therefore *breaks* every
/// potential serialization cycle that would order its transactions the
/// other way; with no dependencies at all, every graph cycle is a TSGD
/// cycle, degenerating to Scheme 1's TSG.
class Tsgd {
 public:
  /// Inserts `txn` with one edge per site. `txn` must be absent.
  void InsertTxn(GlobalTxnId txn, const std::vector<SiteId>& sites);

  /// Removes `txn`, its edges, and every dependency involving it.
  void RemoveTxn(GlobalTxnId txn);

  bool HasTxn(GlobalTxnId txn) const { return txns_.contains(txn); }
  const std::vector<SiteId>& SitesOf(GlobalTxnId txn) const;
  /// Transactions with an edge at `site`, in id order (deterministic).
  const std::set<GlobalTxnId>& TxnsAt(SiteId site) const;

  void AddDependency(SiteId site, GlobalTxnId from, GlobalTxnId to);
  bool HasDependency(SiteId site, GlobalTxnId from, GlobalTxnId to) const;
  /// Sources of dependencies (·, site) -> (site, txn).
  std::vector<GlobalTxnId> DependenciesInto(GlobalTxnId txn,
                                            SiteId site) const;
  bool HasDependenciesInto(GlobalTxnId txn, SiteId site) const;

  size_t TxnCount() const { return txns_.size(); }
  size_t DependencyCount() const { return dep_count_; }

  /// Transaction nodes in id order (deterministic snapshot encoding).
  std::vector<GlobalTxnId> Txns() const;
  /// Every dependency, sorted by (site, from, to). Together with Txns()/
  /// SitesOf this is the whole graph; rebuilding via InsertTxn +
  /// AddDependency restores the derived maps.
  std::vector<Dependency> AllDependencies() const;

  /// Structural self-check (audit layer): adjacency maps mirror each
  /// other, every dependency connects two transactions that both have an
  /// edge at its site, deps_into_/deps_from_ are exact mirrors, counts
  /// match, and the *directed* dependency relation (from -> to, across all
  /// sites) is acyclic — a dependency cycle would deadlock cond(ser)/
  /// cond(fin) and can only arise when Eliminate_Cycles was skipped or
  /// applied inconsistently. On a dependency cycle the witness transaction
  /// ids are reported in the status message.
  Status Validate() const;

  /// Independent checker for the cycle definition above, restricted to
  /// cycles through `txn`. Exhaustive backtracking — exponential in the
  /// worst case; used by tests and the minimality experiment (E6), never on
  /// the hot path.
  bool HasCycleInvolving(GlobalTxnId txn) const;

  /// The paper's Eliminate_Cycles (Figure 4): computes a set Δ of
  /// dependencies, each of the form (v, u) -> (u, txn), such that
  /// (V, E, D ∪ Δ) contains no cycles involving `txn`. Polynomial, but Δ
  /// need not be minimal (minimality is NP-hard, Theorem 7). The returned
  /// dependencies are NOT added to D; the caller decides.
  /// `steps`, when non-null, accumulates the pair-examinations performed.
  std::vector<Dependency> EliminateCycles(GlobalTxnId txn,
                                          int64_t* steps) const;

 private:
  bool CycleSearch(GlobalTxnId origin, GlobalTxnId current,
                   std::set<GlobalTxnId>* txns_on_path,
                   std::set<SiteId>* sites_on_path) const;

  std::unordered_map<GlobalTxnId, std::vector<SiteId>> txns_;
  std::unordered_map<SiteId, std::set<GlobalTxnId>> sites_;
  /// site -> (to -> {from}) and site -> (from -> {to}).
  std::unordered_map<SiteId, std::map<GlobalTxnId, std::set<GlobalTxnId>>>
      deps_into_;
  std::unordered_map<SiteId, std::map<GlobalTxnId, std::set<GlobalTxnId>>>
      deps_from_;
  size_t dep_count_ = 0;
};

}  // namespace mdbs::gtm

#endif  // MDBS_GTM_TSGD_H_
